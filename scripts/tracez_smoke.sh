#!/bin/sh
# End-to-end smoke test for per-query tracing: boot asmserve, run a few
# /query requests, and check that /tracez shows their traces (with
# critical-path attribution and per-span counters) and that /statusz
# carries the latency quantile line. Exercises the whole span pipeline
# — serve -> volcano -> assembly -> buffer -> disk — the way an
# operator would see it.
#
# Usage: scripts/tracez_smoke.sh [port]   (default 18091)
set -eu

PORT="${1:-18091}"
BASE="http://127.0.0.1:$PORT"
WORK="$(mktemp -d)"
SRV_PID=""
cleanup() {
    [ -n "$SRV_PID" ] && kill "$SRV_PID" 2>/dev/null || true
    rm -rf "$WORK"
}
trap cleanup EXIT INT TERM

fail() {
    echo "tracez-smoke: FAIL: $*" >&2
    exit 1
}

echo "tracez-smoke: building asmserve"
go build -o "$WORK/asmserve" ./cmd/asmserve

# -once keeps the background workload from competing with the probe
# queries; -slow-query 1ns forces every query into the slow log so the
# smoke test covers that path too.
"$WORK/asmserve" -addr "127.0.0.1:$PORT" -once -scale 0.1 -slow-query 1ns \
    >"$WORK/server.log" 2>&1 &
SRV_PID=$!

up=""
for _ in $(seq 1 100); do
    if curl -fs "$BASE/statusz" >/dev/null 2>&1; then
        up=1
        break
    fi
    kill -0 "$SRV_PID" 2>/dev/null || { cat "$WORK/server.log" >&2; fail "server exited early"; }
    sleep 0.1
done
[ -n "$up" ] || fail "server never came up on $BASE"

echo "tracez-smoke: running queries"
QID=""
for i in 1 2 3; do
    QID="$(curl -fs -o /dev/null -D - "$BASE/query" | tr -d '\r' |
        awk -F': ' 'tolower($1) == "x-query-id" {print $2}')"
    [ -n "$QID" ] || fail "query $i returned no X-Query-Id header"
done

TRACEZ="$(curl -fs "$BASE/tracez")" || fail "GET /tracez failed"
echo "$TRACEZ" | grep -q "qid=$QID" || fail "/tracez is missing the last query (qid=$QID):
$TRACEZ"
echo "$TRACEZ" | grep -q "critical-path" || fail "/tracez has no critical-path attribution:
$TRACEZ"
echo "$TRACEZ" | grep -q "slow queries" || fail "/tracez has no slow-query log despite -slow-query 1ns:
$TRACEZ"
echo "$TRACEZ" | grep -Eq "latency: n=[0-9]+ p50<=" || fail "/tracez has no latency quantiles:
$TRACEZ"
echo "$TRACEZ" | grep -q "fetches=" || fail "/tracez spans carry no assembly counters:
$TRACEZ"

STATUSZ="$(curl -fs "$BASE/statusz")" || fail "GET /statusz failed"
echo "$STATUSZ" | grep -q "query latency over" || fail "/statusz is missing the latency line:
$STATUSZ"

grep -q "slow query qid=" "$WORK/server.log" || fail "no slow-query line reached the server log"

echo "tracez-smoke: PASS (last qid=$QID)"
