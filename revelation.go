// Package revelation is a from-scratch Go reproduction of "Efficient
// Assembly of Complex Objects" (Tom Keller, Goetz Graefe, David Maier;
// SIGMOD 1991): the assembly operator of the Volcano query processing
// system and every substrate it runs on — a page-addressed device
// model with seek accounting, a buffer manager, heap files, a B+-tree,
// an object layer with OIDs and pointer swizzling, and a Volcano-style
// iterator engine.
//
// The package is the supported public surface: an Engine couples a
// device, buffer pool, and object store; templates describe complex
// objects; Assemble builds the physical operator that turns a set of
// root references into pointer-swizzled in-memory complex objects.
//
//	eng, _ := revelation.New(revelation.Config{DataPages: 128})
//	defer eng.Close()
//	... eng.Put(obj) ...
//	it := eng.Assemble(roots, tmpl, revelation.Options{
//	    Window:    50,
//	    Scheduler: revelation.Elevator,
//	})
//	for inst, err := it.Next(); ... { inst.(*revelation.Instance) ... }
//
// Deeper control (custom operators, schedulers, storage layout) lives
// in the sub-packages under internal/, which examples in this
// repository use directly.
package revelation

import (
	"errors"
	"fmt"

	"revelation/internal/assembly"
	"revelation/internal/btree"
	"revelation/internal/buffer"
	"revelation/internal/disk"
	"revelation/internal/expr"
	"revelation/internal/heap"
	"revelation/internal/object"
	"revelation/internal/query"
	"revelation/internal/volcano"
)

// Re-exported core types: the object model, templates, and the
// assembled representation.
type (
	// OID is an object identifier; zero is the nil reference.
	OID = object.OID
	// Object is a storage-layer object: integer attributes plus
	// embedded inter-object references.
	Object = object.Object
	// Class describes an object's shape in the catalog.
	Class = object.Class
	// Catalog is the class registry.
	Catalog = object.Catalog
	// RID is a record's physical address.
	RID = heap.RID
	// Template drives the assembly operator: structure plus sharing
	// statistics and predicates with selectivities.
	Template = assembly.Template
	// Instance is one component of an assembled, pointer-swizzled
	// complex object.
	Instance = assembly.Instance
	// Options configure an assembly operator.
	Options = assembly.Options
	// Stats are the assembly operator's counters.
	Stats = assembly.Stats
	// Iterator is the Volcano open/next/close operator interface.
	Iterator = volcano.Iterator
	// Predicate is a condition over one object, with a selectivity
	// estimate used for scheduling.
	Predicate = expr.Predicate
	// PartialRoot is the stacked-assembly input item (Fig. 17).
	PartialRoot = assembly.PartialRoot
	// DeviceStats are the simulated device's counters (reads, seek
	// distances) — the paper's performance metric.
	DeviceStats = disk.Stats
)

// Scheduling policies (paper Section 6.2).
const (
	// DepthFirst is object-at-a-time assembly.
	DepthFirst = assembly.DepthFirst
	// BreadthFirst resolves references in discovery order across the
	// window.
	BreadthFirst = assembly.BreadthFirst
	// Elevator resolves the reference nearest the disk head (SCAN).
	Elevator = assembly.Elevator
)

// Done is returned by Iterator.Next at end of stream.
var Done = volcano.Done

// NilOID is the null object reference.
const NilOID = object.NilOID

// Config describes an engine.
type Config struct {
	// Path persists the database in a file; empty runs in memory on
	// the simulated device.
	Path string
	// PageSize defaults to the paper's 1 KB.
	PageSize int
	// BufferPages sizes the buffer pool (default 256 frames).
	BufferPages int
	// DataPages sizes the heap file extent (default 1024 pages).
	DataPages int
	// BTreeLocator stores the OID → address mapping in a disk
	// B+-tree instead of a resident map.
	BTreeLocator bool
}

// Engine couples a device, a buffer pool, and an object store into a
// ready-to-use storage stack.
type Engine struct {
	Device disk.Device
	Pool   *buffer.Pool
	Store  *object.Store

	closed bool
}

// New creates an engine per the configuration.
func New(cfg Config) (*Engine, error) {
	if cfg.PageSize <= 0 {
		cfg.PageSize = disk.DefaultPageSize
	}
	if cfg.BufferPages <= 0 {
		cfg.BufferPages = 256
	}
	if cfg.DataPages <= 0 {
		cfg.DataPages = 1024
	}
	var dev disk.Device
	if cfg.Path != "" {
		fd, err := disk.OpenFile(cfg.Path, cfg.PageSize)
		if err != nil {
			return nil, err
		}
		dev = fd
	} else {
		dev = disk.NewSim(cfg.PageSize, 0)
	}
	pool := buffer.New(dev, cfg.BufferPages, buffer.LRU)
	file, err := heap.Create(pool, cfg.DataPages)
	if err != nil {
		dev.Close()
		return nil, err
	}
	var loc object.Locator
	if cfg.BTreeLocator {
		tree, err := btree.Create(pool)
		if err != nil {
			dev.Close()
			return nil, err
		}
		loc = object.NewBTreeLocator(tree)
	} else {
		loc = object.NewMapLocator()
	}
	return &Engine{
		Device: dev,
		Pool:   pool,
		Store:  object.NewStore(file, loc, object.NewCatalog()),
	}, nil
}

// Catalog returns the engine's class catalog.
func (e *Engine) Catalog() *Catalog { return e.Store.Catalog }

// Put stores an object and registers its location.
func (e *Engine) Put(o *Object) (RID, error) { return e.Store.Put(o) }

// Get loads an object by OID.
func (e *Engine) Get(oid OID) (*Object, error) { return e.Store.Get(oid) }

// Assemble builds an assembly operator over the given root references.
// Drive it with Open/Next/Close (Next yields *Instance items), or use
// AssembleAll.
func (e *Engine) Assemble(roots []OID, tmpl *Template, opts Options) Iterator {
	items := make([]volcano.Item, len(roots))
	for i, r := range roots {
		items[i] = r
	}
	return assembly.New(volcano.NewSlice(items), e.Store, tmpl, opts)
}

// AssembleFrom builds an assembly operator over an arbitrary input
// iterator (OIDs, pre-fetched objects, partial instances, or
// PartialRoot items).
func (e *Engine) AssembleFrom(input Iterator, tmpl *Template, opts Options) Iterator {
	return assembly.New(input, e.Store, tmpl, opts)
}

// AssembleAll drains an assembly of the given roots and returns the
// assembled complex objects.
func (e *Engine) AssembleAll(roots []OID, tmpl *Template, opts Options) ([]*Instance, error) {
	it := e.Assemble(roots, tmpl, opts)
	items, err := volcano.Drain(it)
	if err != nil {
		return nil, err
	}
	out := make([]*Instance, len(items))
	for i, item := range items {
		inst, ok := item.(*Instance)
		if !ok {
			return nil, fmt.Errorf("revelation: assembly emitted %T", item)
		}
		out[i] = inst
	}
	return out, nil
}

// DeviceStats reports the device counters (reads, seek distance): the
// paper's metric is DeviceStats().AvgSeekPerRead().
func (e *Engine) DeviceStats() DeviceStats { return e.Device.Stats() }

// ResetMeasurements clears device and pool counters and parks the head
// so a measured run starts clean; set cold to also empty the buffer
// pool.
func (e *Engine) ResetMeasurements(cold bool) error {
	if cold {
		if err := e.Pool.EvictAll(); err != nil {
			return err
		}
	}
	e.Pool.ResetStats()
	e.Device.ResetStats()
	e.Device.ResetHead()
	return nil
}

// Flush writes all dirty buffered pages to the device.
func (e *Engine) Flush() error { return e.Pool.FlushAll() }

// Close flushes and releases the engine.
func (e *Engine) Close() error {
	if e.closed {
		return nil
	}
	e.closed = true
	if err := e.Pool.Close(); err != nil {
		return errors.Join(err, e.Device.Close())
	}
	return e.Device.Close()
}

// Drain pulls every item from an iterator (a convenience re-export).
func Drain(it Iterator) ([]any, error) { return volcano.Drain(it) }

// Query is a selection over a set of complex objects, in the
// Revelation style of the paper's Figure 1: run it naively
// (object-at-a-time) or reveal it into an assembly-based plan.
type Query = query.Query

// NaiveExec runs q object-at-a-time — the baseline the paper
// criticizes; useful for verifying revealed plans and for measuring
// their advantage.
func (e *Engine) NaiveExec(q *Query) ([]*Instance, error) {
	return query.NaiveExec(e.Store, q)
}

// RevealExec rewrites q into a physical plan around the assembly
// operator (predicates pushed into the template, predicate-first
// scheduling) and drains it.
func (e *Engine) RevealExec(q *Query, opts Options) ([]*Instance, error) {
	return query.RevealExec(e.Store, q, opts)
}

// Reveal returns the physical plan for q without executing it;
// volcano.Explain renders it.
func (e *Engine) Reveal(q *Query, opts Options) (Iterator, error) {
	return query.Reveal(e.Store, q, opts)
}

// Explain renders a physical plan tree as text.
func Explain(it Iterator) string { return volcano.Explain(it) }
