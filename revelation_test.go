package revelation_test

import (
	"errors"
	"path/filepath"
	"testing"

	"revelation"
)

// defineLinkedList registers a single class whose instances chain via
// reference field 0 and returns it.
func defineLinkedList(t *testing.T, eng *revelation.Engine) *revelation.Class {
	t.Helper()
	cls, err := eng.Catalog().Define(&revelation.Class{
		Name:     "Node",
		NumInts:  1,
		NumRefs:  1,
		IntNames: []string{"value"},
		RefNames: []string{"next"},
	})
	if err != nil {
		t.Fatal(err)
	}
	return cls
}

func TestEngineRoundTrip(t *testing.T) {
	eng, err := revelation.New(revelation.Config{DataPages: 16})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	cls := defineLinkedList(t, eng)
	o := &revelation.Object{OID: 1, Class: cls.ID, Ints: []int32{42}, Refs: []revelation.OID{0}}
	if _, err := eng.Put(o); err != nil {
		t.Fatal(err)
	}
	got, err := eng.Get(1)
	if err != nil {
		t.Fatal(err)
	}
	if got.Ints[0] != 42 {
		t.Errorf("Get = %+v", got)
	}
}

func TestEngineAssemble(t *testing.T) {
	eng, err := revelation.New(revelation.Config{DataPages: 32})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	cls := defineLinkedList(t, eng)
	// Three 2-node chains.
	var roots []revelation.OID
	for i := 0; i < 3; i++ {
		tail := &revelation.Object{OID: revelation.OID(10 + i), Class: cls.ID, Ints: []int32{int32(i)}, Refs: []revelation.OID{0}}
		head := &revelation.Object{OID: revelation.OID(20 + i), Class: cls.ID, Ints: []int32{int32(i)}, Refs: []revelation.OID{tail.OID}}
		for _, o := range []*revelation.Object{tail, head} {
			if _, err := eng.Put(o); err != nil {
				t.Fatal(err)
			}
		}
		roots = append(roots, head.OID)
	}
	tmpl := &revelation.Template{
		Name: "Head", Class: cls.ID, RefField: -1,
		Children: []*revelation.Template{
			{Name: "Tail", Class: cls.ID, RefField: 0, Required: true},
		},
	}
	out, err := eng.AssembleAll(roots, tmpl, revelation.Options{
		Window:    2,
		Scheduler: revelation.Elevator,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 3 {
		t.Fatalf("assembled %d", len(out))
	}
	for _, inst := range out {
		tail := inst.ChildByName("Tail")
		if tail == nil || tail.Object.OID != inst.Object.Refs[0] {
			t.Errorf("swizzling broken for %v", inst.OID())
		}
	}
	if eng.DeviceStats().Reads == 0 {
		t.Error("no device reads recorded")
	}
}

func TestEngineFileBacked(t *testing.T) {
	path := filepath.Join(t.TempDir(), "engine.db")
	eng, err := revelation.New(revelation.Config{Path: path, DataPages: 8})
	if err != nil {
		t.Fatal(err)
	}
	cls := defineLinkedList(t, eng)
	if _, err := eng.Put(&revelation.Object{OID: 7, Class: cls.ID, Ints: []int32{9}, Refs: []revelation.OID{0}}); err != nil {
		t.Fatal(err)
	}
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}
	// The file persists (reopening the full store needs the locator,
	// which the dbgen tool serializes; here we only check the device).
	eng2, err := revelation.New(revelation.Config{Path: path, DataPages: 8})
	if err == nil {
		eng2.Close()
	}
	// Re-creating over an existing file extends it; acceptable for the
	// facade. Just verify the first engine flushed something.
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
}

func TestEngineResetMeasurements(t *testing.T) {
	eng, err := revelation.New(revelation.Config{DataPages: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	cls := defineLinkedList(t, eng)
	if _, err := eng.Put(&revelation.Object{OID: 1, Class: cls.ID, Ints: []int32{1}, Refs: []revelation.OID{0}}); err != nil {
		t.Fatal(err)
	}
	if err := eng.ResetMeasurements(true); err != nil {
		t.Fatal(err)
	}
	if eng.DeviceStats().Reads != 0 {
		t.Error("stats survive reset")
	}
	if _, err := eng.Get(1); err != nil {
		t.Fatal(err)
	}
	if eng.DeviceStats().Reads == 0 {
		t.Error("cold reset did not evict the pool")
	}
}

func TestEngineAssembleIteratorProtocol(t *testing.T) {
	eng, err := revelation.New(revelation.Config{DataPages: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	cls := defineLinkedList(t, eng)
	if _, err := eng.Put(&revelation.Object{OID: 1, Class: cls.ID, Ints: []int32{1}, Refs: []revelation.OID{0}}); err != nil {
		t.Fatal(err)
	}
	tmpl := &revelation.Template{Name: "N", Class: cls.ID, RefField: -1}
	it := eng.Assemble([]revelation.OID{1}, tmpl, revelation.Options{})
	if err := it.Open(); err != nil {
		t.Fatal(err)
	}
	item, err := it.Next()
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := item.(*revelation.Instance); !ok {
		t.Fatalf("item type %T", item)
	}
	if _, err := it.Next(); !errors.Is(err, revelation.Done) {
		t.Errorf("expected Done, got %v", err)
	}
	if err := it.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestEngineQueryFacade(t *testing.T) {
	eng, err := revelation.New(revelation.Config{DataPages: 16})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	cls := defineLinkedList(t, eng)
	var roots []revelation.OID
	for i := 0; i < 10; i++ {
		tail := &revelation.Object{OID: revelation.OID(100 + i), Class: cls.ID,
			Ints: []int32{int32(i)}, Refs: []revelation.OID{0}}
		head := &revelation.Object{OID: revelation.OID(200 + i), Class: cls.ID,
			Ints: []int32{int32(i)}, Refs: []revelation.OID{tail.OID}}
		for _, o := range []*revelation.Object{tail, head} {
			if _, err := eng.Put(o); err != nil {
				t.Fatal(err)
			}
		}
		roots = append(roots, head.OID)
	}
	tmpl := &revelation.Template{Name: "Head", Class: cls.ID, RefField: -1,
		Children: []*revelation.Template{{Name: "Tail", Class: cls.ID, RefField: 0, Required: true}}}
	q := &revelation.Query{
		Template: tmpl,
		Roots:    roots,
		Where: func(in *revelation.Instance) bool {
			return in.Object.Ints[0]%2 == 0
		},
	}
	naive, err := eng.NaiveExec(q)
	if err != nil {
		t.Fatal(err)
	}
	revealed, err := eng.RevealExec(q, revelation.Options{Window: 4, Scheduler: revelation.Elevator})
	if err != nil {
		t.Fatal(err)
	}
	if len(naive) != 5 || len(revealed) != 5 {
		t.Fatalf("results: naive %d, revealed %d, want 5", len(naive), len(revealed))
	}
	plan, err := eng.Reveal(q, revelation.Options{Window: 4, Scheduler: revelation.Elevator})
	if err != nil {
		t.Fatal(err)
	}
	if out := revelation.Explain(plan); out == "" {
		t.Error("empty plan explanation")
	}
}

func TestDoubleCloseIsSafe(t *testing.T) {
	eng, err := revelation.New(revelation.Config{DataPages: 8})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}
	if err := eng.Close(); err != nil {
		t.Errorf("second Close: %v", err)
	}
}
