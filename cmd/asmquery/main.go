// Command asmquery runs a selection query against a database generated
// by cmd/dbgen, either naively (object-at-a-time) or revealed into an
// assembly-operator plan, and reports the results alongside the disk
// statistics — the Figure 1 flow from the command line.
//
// The query predicate is a comparison on the `rand` attribute
// (uniform over [0,1000)) of one template component:
//
//	asmquery -db db.pages -manifest db.manifest \
//	         -node G -field rand -lt 150 -mode both -window 50
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"strings"

	"revelation/internal/assembly"
	"revelation/internal/disk"
	"revelation/internal/expr"
	"revelation/internal/gen"
	"revelation/internal/pagesvc"
	"revelation/internal/query"
	"revelation/internal/shard"
	"revelation/internal/volcano"
)

func main() {
	dbPath := flag.String("db", "db.pages", "device file")
	manifest := flag.String("manifest", "db.manifest", "manifest file")
	node := flag.String("node", "G", "template component the predicate applies to (A..G)")
	lt := flag.Int("lt", 500, "predicate: rand < this value (0..1000)")
	mode := flag.String("mode", "both", "naive | revealed | both")
	templatePath := flag.String("template", "", "optional template JSON (see assembly.MarshalTemplateJSON); overrides the manifest template and may carry its own predicates")
	window := flag.Int("window", 50, "assembly window size")
	bufferPages := flag.Int("buffer", 256, "buffer pool pages")
	explain := flag.Bool("explain", true, "print the revealed plan")
	deadline := flag.Duration("deadline", 0, "abort the revealed query after this long (0 = unbounded)")
	pages := flag.String("pages", "", "comma-separated page-service endpoints, primary first (see cmd/asmpaged); replaces -db with networked pages, extra endpoints are hedge/failover replicas")
	shards := flag.String("shards", "", "comma-separated page-service endpoints, one per shard (see cmd/asmpaged); replaces -db with a sharded fleet behind the rendezvous router and assembles with the per-shard elevator")
	flag.Parse()

	if *pages != "" && *shards != "" {
		fail("-pages and -shards are mutually exclusive: one service with replicas, or a fleet of shards")
	}
	var db *gen.Database
	var router *shard.Router
	var err error
	switch {
	case *shards != "":
		db, router, err = openSharded(*shards, *manifest, *bufferPages)
	case *pages != "":
		db, err = openNetworked(*pages, *manifest, *bufferPages)
	default:
		db, err = gen.OpenDatabase(*dbPath, *manifest, *bufferPages)
	}
	if err != nil {
		fail("open: %v", err)
	}
	defer db.Device.Close()

	tmpl := db.Template
	if *templatePath != "" {
		data, err := os.ReadFile(*templatePath)
		if err != nil {
			fail("template: %v", err)
		}
		tmpl, err = assembly.UnmarshalTemplateJSON(data, db.Store.Catalog)
		if err != nil {
			fail("template: %v", err)
		}
	}
	target := tmpl.FindByName(*node)
	if target == nil {
		fail("no template component %q (template:\n%s)", *node, tmpl)
	}
	q := &query.Query{
		Template: tmpl,
		Roots:    db.Roots,
		NodePreds: map[string]expr.Predicate{
			*node: expr.IntCmp{Field: 1, Op: expr.LT, Value: int32(*lt), Sel: float64(*lt) / 1000},
		},
	}
	opts := assembly.Options{Window: *window, Scheduler: assembly.Elevator,
		UseSharingStats: db.Config.Sharing > 0}
	if router != nil {
		// Pending references partition by the router's assignment; each
		// shard lane keeps its own SCAN order with one read in flight.
		opts.CustomScheduler = assembly.NewShardElevator(router.Shards(), router.ShardOf)
		opts.ShardPrefetch = true
	}

	fmt.Printf("query: %s.rand < %d over %d complex objects (%v clustering)\n",
		*node, *lt, len(db.Roots), db.Config.Clustering)

	if *explain && *mode != "naive" {
		plan, err := query.Reveal(db.Store, q, opts)
		if err != nil {
			fail("reveal: %v", err)
		}
		fmt.Println("\nrevealed plan:")
		for _, line := range strings.Split(strings.TrimSpace(volcano.Explain(plan)), "\n") {
			fmt.Println("  " + line)
		}
	}

	cold := func() {
		if err := db.Pool.EvictAll(); err != nil {
			fail("evict: %v", err)
		}
		db.Pool.ResetStats()
		db.Device.ResetStats()
		db.Device.ResetHead()
	}
	fmt.Println()
	var naiveN, revN = -1, -1
	if *mode == "naive" || *mode == "both" {
		cold()
		res, err := query.NaiveExec(db.Store, q)
		if err != nil {
			fail("naive: %v", err)
		}
		st := db.Device.Stats()
		naiveN = len(res)
		fmt.Printf("naive:    %5d results, %7d reads, avg seek %8.1f pages\n",
			len(res), st.Reads, st.AvgSeekPerRead())
	}
	if *mode == "revealed" || *mode == "both" {
		cold()
		plan, err := query.Reveal(db.Store, q, opts)
		if err != nil {
			fail("reveal: %v", err)
		}
		if *deadline > 0 {
			// The whole plan — exchange producers included — observes
			// the deadline; an expired query aborts cleanly with its
			// pins and reservations released, it does not hang.
			ctx, cancel := context.WithTimeout(context.Background(), *deadline)
			defer cancel()
			volcano.Bind(ctx, plan)
		}
		res, err := volcano.Drain(plan)
		if err != nil {
			if errors.Is(err, context.DeadlineExceeded) {
				fail("revealed: deadline %v exceeded after %d results", *deadline, len(res))
			}
			fail("revealed: %v", err)
		}
		st := db.Device.Stats()
		revN = len(res)
		fmt.Printf("revealed: %5d results, %7d reads, avg seek %8.1f pages\n",
			len(res), st.Reads, st.AvgSeekPerRead())
	}
	if naiveN >= 0 && revN >= 0 && naiveN != revN {
		fail("plans disagree: naive %d, revealed %d", naiveN, revN)
	}
}

// openSharded opens the database over a fleet of page services behind
// the rendezvous router: every page access routes to the shard that
// owns the page, and the assembly above partitions its pending reads
// into per-shard elevator lanes.
func openSharded(endpoints, manifestPath string, bufferPages int) (*gen.Database, *shard.Router, error) {
	mp, err := gen.LoadManifest(manifestPath)
	if err != nil {
		return nil, nil, err
	}
	eps := strings.Split(endpoints, ",")
	members := make([]shard.Member, len(eps))
	for i, ep := range eps {
		client, err := pagesvc.Dial(pagesvc.ClientConfig{
			Primary: ep,
			Dev:     pagesvc.DataDev,
			Retry:   disk.DefaultRetryPolicy,
			Label:   fmt.Sprintf("net-s%d", i),
		})
		if err != nil {
			return nil, nil, fmt.Errorf("shard %d (%s): %w", i, ep, err)
		}
		members[i] = shard.Member{Name: fmt.Sprintf("s%d", i), Primary: client}
	}
	router, err := shard.New(shard.Config{Members: members})
	if err != nil {
		return nil, nil, err
	}
	db, err := gen.OpenDatabaseOn(router, mp, bufferPages)
	if err != nil {
		router.Close()
		return nil, nil, err
	}
	return db, router, nil
}

// openNetworked opens the database over a page service instead of a
// local device file: the buffer pool stacks on a pagesvc client, so
// the query plan below is identical — only the page source moves.
func openNetworked(endpoints, manifestPath string, bufferPages int) (*gen.Database, error) {
	eps := strings.Split(endpoints, ",")
	mp, err := gen.LoadManifest(manifestPath)
	if err != nil {
		return nil, err
	}
	client, err := pagesvc.Dial(pagesvc.ClientConfig{
		Primary:  eps[0],
		Replicas: eps[1:],
		Dev:      pagesvc.DataDev,
		Retry:    disk.DefaultRetryPolicy,
	})
	if err != nil {
		return nil, err
	}
	return gen.OpenDatabaseOn(client, mp, bufferPages)
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "asmquery: "+format+"\n", args...)
	os.Exit(1)
}
