// Command dbgen generates a benchmark database of complex objects onto
// a file-backed device, together with a manifest that cmd/asminspect
// and user programs reopen it from.
//
// Usage:
//
//	dbgen -out db.pages -manifest db.manifest \
//	      -objects 4000 -clustering inter -sharing 0.25 -seed 91
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"revelation/internal/disk"
	"revelation/internal/gen"
)

func main() {
	out := flag.String("out", "db.pages", "device file to create")
	manifest := flag.String("manifest", "db.manifest", "manifest file to create")
	objects := flag.Int("objects", 1000, "number of complex objects")
	clustering := flag.String("clustering", "unclustered", "unclustered | inter | intra")
	sharing := flag.Float64("sharing", 0, "leaf sharing degree (0 disables)")
	levels := flag.Int("levels", 3, "tree levels per complex object")
	fanout := flag.Int("fanout", 2, "children per inner component")
	seed := flag.Int64("seed", 91, "generation seed")
	flag.Parse()

	var cl gen.Clustering
	switch strings.ToLower(*clustering) {
	case "unclustered", "none":
		cl = gen.Unclustered
	case "inter", "inter-object":
		cl = gen.InterObject
	case "intra", "intra-object":
		cl = gen.IntraObject
	default:
		fmt.Fprintf(os.Stderr, "dbgen: unknown clustering %q\n", *clustering)
		os.Exit(2)
	}

	// A fresh device file: refuse to clobber silently.
	if _, err := os.Stat(*out); err == nil {
		fmt.Fprintf(os.Stderr, "dbgen: %s already exists\n", *out)
		os.Exit(1)
	}
	dev, err := disk.OpenFile(*out, disk.DefaultPageSize)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dbgen: %v\n", err)
		os.Exit(1)
	}

	db, err := gen.Build(gen.Config{
		NumComplexObjects: *objects,
		Levels:            *levels,
		Fanout:            *fanout,
		Clustering:        cl,
		Sharing:           *sharing,
		Seed:              *seed,
		Device:            dev,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "dbgen: %v\n", err)
		os.Exit(1)
	}
	if err := db.Pool.FlushAll(); err != nil {
		fmt.Fprintf(os.Stderr, "dbgen: flush: %v\n", err)
		os.Exit(1)
	}
	if err := db.SaveManifest(*manifest); err != nil {
		fmt.Fprintf(os.Stderr, "dbgen: manifest: %v\n", err)
		os.Exit(1)
	}
	if err := dev.Close(); err != nil {
		fmt.Fprintf(os.Stderr, "dbgen: close: %v\n", err)
		os.Exit(1)
	}
	n, _ := db.Store.Locator.Len()
	fmt.Printf("dbgen: %d complex objects (%d components, %d objects) on %d pages, %s clustering\n",
		*objects, db.NodesPerObject, n, db.Store.File.NumPages(), cl)
	fmt.Printf("dbgen: device %s, manifest %s\n", *out, *manifest)
}
