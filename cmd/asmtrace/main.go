// Command asmtrace replays a JSONL event trace recorded by asmbench
// (or any trace.Writer) and reconstructs, from the events alone, the
// quantities the paper's Section 6 evaluation reports: per-policy seek
// distance and read counts, window occupancy over time, and a
// flamegraph-style per-layer event summary.
//
// When a trace carries bench run markers, every run's reconstruction is
// verified against the counters the harness reported at the time; any
// mismatch makes the tool exit non-zero. That is the observability
// contract: a traced benchmark is a self-checking experiment.
//
// Usage:
//
//	asmtrace [-occupancy] [-hist] [-summary] [-q] [-query <id>] trace.jsonl
//
// With no selection flags everything is printed. -q suppresses
// per-run detail and prints only the verification verdict.
//
// -query filters the replay to the events attributed to one query id
// (events carry qid since protocol v2 of the tracing layer) and prints
// that query's reconstruction alone: what it read, how far its reads
// seeked, what it assembled, and its per-layer event census. Run
// markers are global, so per-query mode skips run verification.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"revelation/internal/trace"
)

func main() {
	occupancy := flag.Bool("occupancy", false, "print window occupancy over time per run")
	hist := flag.Bool("hist", false, "print the seek-distance histogram per run")
	summary := flag.Bool("summary", false, "print the per-layer event summary per run")
	quiet := flag.Bool("q", false, "only verify: print one verdict line per run")
	queryID := flag.Uint64("query", 0, "replay only the events attributed to this query id")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: asmtrace [-occupancy] [-hist] [-summary] [-q] [-query <id>] trace.jsonl")
		os.Exit(2)
	}
	// No selection flags: print everything.
	all := !*occupancy && !*hist && !*summary
	f, err := os.Open(flag.Arg(0))
	if err != nil {
		fmt.Fprintf(os.Stderr, "asmtrace: %v\n", err)
		os.Exit(1)
	}
	events, err := trace.ReadAll(f)
	f.Close()
	if err != nil {
		fmt.Fprintf(os.Stderr, "asmtrace: %v\n", err)
		os.Exit(1)
	}
	if *queryID != 0 {
		replayQuery(events, *queryID, *hist, *occupancy)
		return
	}
	runs := trace.SplitRuns(events)
	if len(runs) == 0 {
		fmt.Println("asmtrace: empty trace")
		return
	}

	fmt.Printf("%-42s %8s %8s %10s %9s %6s %5s  %s\n",
		"run", "events", "reads", "seek", "avg-seek", "asm", "skip", "verify")
	failures := 0
	var details strings.Builder
	for _, run := range runs {
		r, verr := run.Verify()
		verdict := "ok"
		switch {
		case run.Reported == nil:
			verdict = "unverified (no end marker)"
		case verr != nil:
			verdict = "MISMATCH"
			failures++
		}
		name := run.Name
		if name == "" {
			name = "(unnamed)"
		}
		fmt.Printf("%-42s %8d %8d %10d %9.1f %6d %5d  %s\n",
			name, r.Events, r.Reads, r.SeekReads, r.AvgSeekPerRead(),
			r.Assembled, r.Quarantined, verdict)
		if verr != nil {
			fmt.Printf("  %v\n", verr)
		}
		if *quiet {
			continue
		}
		if all || *summary {
			fmt.Fprintf(&details, "--- %s: layers ---\n%s", name, indent(r.Summary()))
		}
		if all || *hist {
			fmt.Fprintf(&details, "--- %s: seek distances ---\n%s", name, indent(r.SeekHist.String()))
		}
		if all || *occupancy {
			fmt.Fprintf(&details, "--- %s: window ---\n%s", name, indent(r.OccupancyTable(72)))
		}
	}
	if details.Len() > 0 {
		fmt.Print("\n" + details.String())
	}
	if failures > 0 {
		fmt.Fprintf(os.Stderr, "asmtrace: %d run(s) failed verification\n", failures)
		os.Exit(1)
	}
}

// replayQuery reconstructs one query from its attributed events.
func replayQuery(events []trace.Event, qid uint64, hist, occupancy bool) {
	evs := trace.FilterQuery(events, qid)
	if len(evs) == 0 {
		fmt.Fprintf(os.Stderr, "asmtrace: no events for query %d\n", qid)
		os.Exit(1)
	}
	r := trace.ReplayEvents(evs)
	fmt.Printf("query %d: %d events\n", qid, r.Events)
	fmt.Printf("  disk:     %d reads, %d seek pages (%.1f avg/read), %d faults\n",
		r.Reads, r.SeekReads, r.AvgSeekPerRead(), r.FaultsTransient+r.FaultsPermanent)
	fmt.Printf("  buffer:   %d hits, %d misses\n", r.Hits, r.Misses)
	fmt.Printf("  assembly: %d fetched, %d links, %d retries, %d stalls, %d assembled\n",
		r.Fetched, r.Links, r.Retries, r.Stalls, r.Assembled)
	if r.NetSends > 0 || r.NetRecvs > 0 {
		fmt.Printf("  net:      %d sends, %d recvs, %d timeouts, %d hedges\n",
			r.NetSends, r.NetRecvs, r.NetTimeouts, r.Hedges)
	}
	fmt.Printf("--- layers ---\n%s", indent(r.Summary()))
	if hist {
		fmt.Printf("--- seek distances ---\n%s", indent(r.SeekHist.String()))
	}
	if occupancy {
		fmt.Printf("--- window ---\n%s", indent(r.OccupancyTable(72)))
	}
}

func indent(s string) string {
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	for i, l := range lines {
		lines[i] = "  " + l
	}
	return strings.Join(lines, "\n") + "\n"
}
