// Command asmsuite runs the continuous scenario suite: named benchmark
// scenarios — OO7-style shapes, time-series appends, standing-query
// incremental re-assembly, fault injection, remote page service —
// declared in a checked-in config, measured through the shared bench
// measurement core, three-way verified (harness counters == trace
// replay == metrics registry delta), and written as a schema-versioned
// BENCH_<suite>.json trajectory.
//
// Usage:
//
//	asmsuite [-config suites/core.toml] [-suite core] [-out FILE]
//	         [-iters N] [-list] [-v]
//
// -suite selects the scenario subset (each scenario declares which
// suites it belongs to; "core" is the tracked trajectory, "smoke" the
// CI gate). -out defaults to BENCH_<suite>.json in the current
// directory; "-" writes to stdout. -iters overrides every scenario's
// iteration count (useful for quick local runs). -list prints the
// selected scenarios without running them.
package main

import (
	"flag"
	"fmt"
	"os"

	"revelation/internal/suite"
)

func main() {
	config := flag.String("config", "suites/core.toml", "scenario config file")
	suiteName := flag.String("suite", "core", "suite to run (scenario subset)")
	out := flag.String("out", "", "output file (default BENCH_<suite>.json; '-' for stdout)")
	iters := flag.Int("iters", 0, "override every scenario's iteration count")
	list := flag.Bool("list", false, "list the selected scenarios and exit")
	verbose := flag.Bool("v", false, "print one progress line per scenario")
	flag.Parse()

	src, err := os.ReadFile(*config)
	if err != nil {
		fatal(err)
	}
	scenarios, err := suite.ParseScenarios(*config, string(src))
	if err != nil {
		fatal(err)
	}

	if *list {
		n := 0
		for _, sc := range scenarios {
			if !sc.InSuite(*suiteName) {
				continue
			}
			n++
			fmt.Printf("%-32s %-11s shape=%-7s sched=%-13s backend=%-8s window=%-4d objects=%d\n",
				sc.Name, sc.Workload, sc.Shape, sc.Scheduler, sc.Backend, sc.Window, sc.Objects)
		}
		if n == 0 {
			fatal(fmt.Errorf("no scenarios in suite %q", *suiteName))
		}
		return
	}

	opt := suite.RunOptions{Suite: *suiteName, Iters: *iters}
	if *verbose {
		opt.Logf = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
	}
	rep, err := suite.Run(scenarios, opt)
	if err != nil {
		fatal(err)
	}
	data, err := rep.JSON()
	if err != nil {
		fatal(err)
	}

	dest := *out
	if dest == "" {
		dest = fmt.Sprintf("BENCH_%s.json", *suiteName)
	}
	if dest == "-" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(dest, data, 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s: %d scenarios, all three-way verified\n", dest, len(rep.Scenarios))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "asmsuite:", err)
	os.Exit(1)
}
