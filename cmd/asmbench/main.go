// Command asmbench regenerates the evaluation of "Efficient Assembly
// of Complex Objects" (Keller, Graefe, Maier, SIGMOD 1991): every
// figure of Section 6 plus this reproduction's ablations, printed as
// text tables.
//
// Usage:
//
//	asmbench [-figure all|fig11a|fig11b|fig11c|fig13a|fig13b|fig13c|
//	          fig14|fig15|fig16|footprint|buffer-window|multi-device|
//	          page-batch|faults]
//	         [-scale 1.0]
//	         [-fault-seed 91] [-fault-transient 0.10] [-fault-permanent 0.005]
//
// -scale shrinks the database sizes for quick runs (0.1 → 100–400
// complex objects); 1.0 reproduces the paper's 1000–4000. The -fault-*
// flags parameterise the 'faults' figure: the injector seed and the
// sweep's maximum transient and permanent fault rates.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"revelation/internal/bench"
)

func main() {
	figure := flag.String("figure", "all", "figure id to regenerate (fig11a..fig16, footprint, buffer-window, multi-device, page-batch, faults), or 'all'")
	scale := flag.Float64("scale", 1.0, "database size scale factor (1.0 = paper scale)")
	faultSeed := flag.Int64("fault-seed", bench.DefaultFaultOptions.Seed, "fault injector seed (figure 'faults')")
	faultTransient := flag.Float64("fault-transient", bench.DefaultFaultOptions.Transient, "maximum transient-fault rate for the sweep (figure 'faults')")
	faultPermanent := flag.Float64("fault-permanent", bench.DefaultFaultOptions.Permanent, "maximum permanent-fault rate for the sweep (figure 'faults')")
	flag.Parse()

	r := bench.NewRunner()
	start := time.Now()
	var figs []bench.Figure
	var err error
	switch strings.ToLower(*figure) {
	case "all":
		figs, err = r.AllFigures(*scale)
	case "fig11a":
		figs, err = one(r.FigScheduling(1, 'a', *scale))
	case "fig11b":
		figs, err = one(r.FigScheduling(1, 'b', *scale))
	case "fig11c":
		figs, err = one(r.FigScheduling(1, 'c', *scale))
	case "fig13a":
		figs, err = one(r.FigScheduling(50, 'a', *scale))
	case "fig13b":
		figs, err = one(r.FigScheduling(50, 'b', *scale))
	case "fig13c":
		figs, err = one(r.FigScheduling(50, 'c', *scale))
	case "fig14":
		figs, err = one(r.Fig14(*scale))
	case "fig15":
		figs, err = one(r.Fig15(*scale))
	case "fig16":
		figs, err = one(r.Fig16(*scale))
	case "footprint":
		figs, err = one(r.WindowFootprint(*scale))
	case "buffer-window":
		figs, err = one(r.BufferWindow(*scale))
	case "multi-device", "multidev":
		figs, err = one(r.MultiDevice(*scale))
	case "page-batch", "pagebatch":
		figs, err = one(r.PageBatch(*scale))
	case "faults":
		figs, err = one(r.FigFaults(*scale, bench.FaultOptions{
			Seed:      *faultSeed,
			Transient: *faultTransient,
			Permanent: *faultPermanent,
		}))
	default:
		fmt.Fprintf(os.Stderr, "asmbench: unknown figure %q\n", *figure)
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "asmbench: %v\n", err)
		os.Exit(1)
	}
	for _, f := range figs {
		fmt.Println(f.Table())
	}
	fmt.Printf("completed in %v (scale %.2f)\n", time.Since(start).Round(time.Millisecond), *scale)
}

func one(f bench.Figure, err error) ([]bench.Figure, error) {
	if err != nil {
		return nil, err
	}
	return []bench.Figure{f}, nil
}
