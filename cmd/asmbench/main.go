// Command asmbench regenerates the evaluation of "Efficient Assembly
// of Complex Objects" (Keller, Graefe, Maier, SIGMOD 1991): every
// figure of Section 6 plus this reproduction's ablations, printed as
// text tables.
//
// Usage:
//
//	asmbench [-figure all|fig11a|fig11b|fig11c|fig13a|fig13b|fig13c|
//	          fig14|fig15|fig16|footprint|buffer-window|multi-device|
//	          page-batch|faults|concurrency]
//	         [-scale 1.0] [-json] [-trace FILE]
//	         [-fault-seed 91] [-fault-transient 0.10] [-fault-permanent 0.005]
//	         [-concurrency 8] [-deadline 0]
//
// -scale shrinks the database sizes for quick runs (0.1 → 100–400
// complex objects); 1.0 reproduces the paper's 1000–4000. The -fault-*
// flags parameterise the 'faults' figure: the injector seed and the
// sweep's maximum transient and permanent fault rates.
//
// The 'concurrency' figure sweeps concurrent queries (1, 2, 4, ... up
// to -concurrency) over one shared pool with per-query reservations and
// the optional per-query -deadline, reporting wall-clock throughput; it
// is excluded from 'all' because its timing is nondeterministic.
//
// -json prints the figures as deterministic JSON instead of text tables
// (the schema the golden-file test pins). -trace FILE records every
// run's disk, buffer, and assembly events as JSONL; replay the file
// with cmd/asmtrace to reconstruct — and verify — the reported numbers.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"revelation/internal/bench"
	"revelation/internal/trace"
)

func main() {
	figure := flag.String("figure", "all", "figure id to regenerate (fig11a..fig16, footprint, buffer-window, multi-device, page-batch, faults, concurrency), or 'all'")
	scale := flag.Float64("scale", 1.0, "database size scale factor (1.0 = paper scale)")
	jsonOut := flag.Bool("json", false, "print figures as deterministic JSON instead of text tables")
	traceFile := flag.String("trace", "", "record per-event JSONL trace of every run to this file (replay with asmtrace)")
	faultSeed := flag.Int64("fault-seed", bench.DefaultFaultOptions.Seed, "fault injector seed (figure 'faults')")
	faultTransient := flag.Float64("fault-transient", bench.DefaultFaultOptions.Transient, "maximum transient-fault rate for the sweep (figure 'faults')")
	faultPermanent := flag.Float64("fault-permanent", bench.DefaultFaultOptions.Permanent, "maximum permanent-fault rate for the sweep (figure 'faults')")
	concurrency := flag.Int("concurrency", 8, "maximum concurrent queries for the 'concurrency' figure (sweep doubles up from 1)")
	deadline := flag.Duration("deadline", 0, "per-query deadline for the 'concurrency' figure (0 = unbounded)")
	flag.Parse()

	r := bench.NewRunner()
	var traceSink *trace.Writer
	if *traceFile != "" {
		f, err := os.Create(*traceFile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "asmbench: %v\n", err)
			os.Exit(1)
		}
		traceSink = trace.NewWriter(f)
		r.Tracer = trace.New(traceSink)
	}
	start := time.Now()
	var figs []bench.Figure
	var err error
	switch strings.ToLower(*figure) {
	case "all":
		figs, err = r.AllFigures(*scale)
	case "fig11a":
		figs, err = one(r.FigScheduling(1, 'a', *scale))
	case "fig11b":
		figs, err = one(r.FigScheduling(1, 'b', *scale))
	case "fig11c":
		figs, err = one(r.FigScheduling(1, 'c', *scale))
	case "fig13a":
		figs, err = one(r.FigScheduling(50, 'a', *scale))
	case "fig13b":
		figs, err = one(r.FigScheduling(50, 'b', *scale))
	case "fig13c":
		figs, err = one(r.FigScheduling(50, 'c', *scale))
	case "fig14":
		figs, err = one(r.Fig14(*scale))
	case "fig15":
		figs, err = one(r.Fig15(*scale))
	case "fig16":
		figs, err = one(r.Fig16(*scale))
	case "footprint":
		figs, err = one(r.WindowFootprint(*scale))
	case "buffer-window":
		figs, err = one(r.BufferWindow(*scale))
	case "multi-device", "multidev":
		figs, err = one(r.MultiDevice(*scale))
	case "page-batch", "pagebatch":
		figs, err = one(r.PageBatch(*scale))
	case "faults":
		figs, err = one(r.FigFaults(*scale, bench.FaultOptions{
			Seed:      *faultSeed,
			Transient: *faultTransient,
			Permanent: *faultPermanent,
		}))
	case "concurrency":
		figs, err = one(r.FigConcurrency(*scale, bench.ConcurrencyOptions{
			MaxConcurrent: *concurrency,
			Deadline:      *deadline,
		}))
	default:
		fmt.Fprintf(os.Stderr, "asmbench: unknown figure %q\n", *figure)
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "asmbench: %v\n", err)
		os.Exit(1)
	}
	if traceSink != nil {
		if cerr := traceSink.Close(); cerr != nil {
			fmt.Fprintf(os.Stderr, "asmbench: trace: %v\n", cerr)
			os.Exit(1)
		}
	}
	if *jsonOut {
		out, jerr := bench.FiguresJSON(figs)
		if jerr != nil {
			fmt.Fprintf(os.Stderr, "asmbench: %v\n", jerr)
			os.Exit(1)
		}
		os.Stdout.Write(out)
		return
	}
	for _, f := range figs {
		fmt.Println(f.Table())
	}
	fmt.Printf("completed in %v (scale %.2f)\n", time.Since(start).Round(time.Millisecond), *scale)
	if *traceFile != "" {
		fmt.Printf("trace written to %s (replay: go run ./cmd/asmtrace %s)\n", *traceFile, *traceFile)
	}
}

func one(f bench.Figure, err error) ([]bench.Figure, error) {
	if err != nil {
		return nil, err
	}
	return []bench.Figure{f}, nil
}
