// Command asmserve runs a benchmark workload in a loop while exposing
// it for live inspection:
//
//	GET /metrics       Prometheus text exposition of every counter
//	GET /statusz       human-readable snapshot with occupancy sparkline
//	GET /debug/pprof/  standard Go profiler endpoints
//
// Usage:
//
//	asmserve [-addr :8091] [-figure faults|fig13c|...] [-scale 0.5]
//	         [-interval 1s] [-once]
//
// The workload is one of asmbench's figures, re-run every -interval
// until the process is interrupted (-once stops after a single pass).
// Device, pool, and operator counters are registered in a shared
// metrics registry and never reset, so scrapes observe monotone
// counters; per-run numbers are snapshot deltas (see DESIGN.md §9).
//
//	curl -s localhost:8091/metrics | grep asm_disk
//	go tool pprof http://localhost:8091/debug/pprof/profile?seconds=5
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"time"

	"revelation/internal/bench"
	"revelation/internal/metrics"
	"revelation/internal/serve"
)

func main() {
	addr := flag.String("addr", ":8091", "HTTP listen address")
	figure := flag.String("figure", "faults", "figure id to run as the workload (see asmbench -figure)")
	scale := flag.Float64("scale", 0.5, "database size scale factor")
	interval := flag.Duration("interval", time.Second, "pause between workload passes")
	once := flag.Bool("once", false, "run the workload a single time, then keep serving")
	flag.Parse()

	reg := metrics.NewRegistry()
	runner := bench.NewRunner()
	runner.Metrics = reg

	run, err := workload(runner, *figure)
	if err != nil {
		fmt.Fprintf(os.Stderr, "asmserve: %v\n", err)
		os.Exit(2)
	}

	srv := serve.New(serve.Options{
		Registry: reg,
		// The sum over policies is the live total: at most one policy's
		// operator is mid-run at a time in this single-threaded loop.
		Occupancy: func() int64 {
			return reg.Snapshot().Sum("asm_assembly_window_occupancy")
		},
		Info: []string{
			fmt.Sprintf("workload: figure %s, scale %.2f, interval %v", *figure, *scale, *interval),
		},
	})
	srv.Start()
	defer srv.Stop()

	passCounter := reg.Counter("asm_serve_workload_passes_total", "Completed workload passes.")
	errCounter := reg.Counter("asm_serve_workload_errors_total", "Failed workload passes.")

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt)
	go func() {
		for {
			if err := run(*scale); err != nil {
				errCounter.Inc()
				fmt.Fprintf(os.Stderr, "asmserve: workload: %v\n", err)
			} else {
				passCounter.Inc()
			}
			if *once {
				return
			}
			select {
			case <-stop:
				return
			case <-time.After(*interval):
			}
		}
	}()

	fmt.Printf("asmserve: listening on %s (figure %s, scale %.2f)\n", *addr, *figure, *scale)
	fmt.Printf("asmserve: try curl -s localhost%s/metrics | grep asm_\n", *addr)
	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}
	go func() {
		<-stop
		httpSrv.Close()
	}()
	if err := httpSrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
		fmt.Fprintf(os.Stderr, "asmserve: %v\n", err)
		os.Exit(1)
	}
}

// workload maps a figure id to a closure running it once.
func workload(r *bench.Runner, figure string) (func(scale float64) error, error) {
	fig := func(f func(float64) (bench.Figure, error)) func(float64) error {
		return func(s float64) error { _, err := f(s); return err }
	}
	switch strings.ToLower(figure) {
	case "fig14":
		return fig(r.Fig14), nil
	case "fig15":
		return fig(r.Fig15), nil
	case "fig16":
		return fig(r.Fig16), nil
	case "footprint":
		return fig(r.WindowFootprint), nil
	case "buffer-window":
		return fig(r.BufferWindow), nil
	case "multi-device", "multidev":
		return fig(r.MultiDevice), nil
	case "page-batch", "pagebatch":
		return fig(r.PageBatch), nil
	case "faults":
		return func(s float64) error {
			_, err := r.FigFaults(s, bench.DefaultFaultOptions)
			return err
		}, nil
	case "fig11a", "fig11b", "fig11c", "fig13a", "fig13b", "fig13c":
		w := 1
		if figure[3] == '3' {
			w = 50
		}
		sub := figure[len(figure)-1]
		return func(s float64) error {
			_, err := r.FigScheduling(w, sub, s)
			return err
		}, nil
	default:
		return nil, fmt.Errorf("unknown figure %q (see asmbench -figure)", figure)
	}
}
