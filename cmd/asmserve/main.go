// Command asmserve runs a benchmark workload in a loop while exposing
// it for live inspection:
//
//	GET /metrics       Prometheus text exposition of every counter
//	GET /statusz       human-readable snapshot with occupancy sparkline
//	GET /tracez        recent per-query traces: timelines, critical paths
//	GET /fleetz        fleet control plane: member health, promotions
//	GET /query         run one assembly query under a deadline
//	GET /debug/pprof/  standard Go profiler endpoints
//
// Usage:
//
//	asmserve [-addr :8091] [-figure faults|fig13c|...] [-scale 0.5]
//	         [-interval 1s] [-once] [-max-concurrent 4]
//	         [-query-timeout 5s] [-query-window 10] [-slow-query 500ms]
//	         [-shards host:7070/host:7071,host:7072] [-promote-after 3s]
//
// The workload is one of asmbench's figures, re-run every -interval
// until the process is interrupted (-once stops after a single pass).
// Device, pool, and operator counters are registered in a shared
// metrics registry and never reset, so scrapes observe monotone
// counters; per-run numbers are snapshot deltas (see DESIGN.md §9).
//
// /query runs a fixed selection query against a dedicated generated
// database under the request's lifecycle: at most -max-concurrent
// requests run at once (excess answers 503 immediately), each bounded
// by -query-timeout or the ?deadline=500ms override (expiry answers
// 504), each holding a buffer-frame reservation so overload sheds at
// admission instead of thrashing the pool (DESIGN.md §11).
//
// Every /query gets a query ID (echoed in the X-Query-Id response
// header) and a span tree; /tracez shows the most recent completed
// traces with per-layer critical-path attribution, and queries slower
// than -slow-query land in its slow-query log plus one stderr line
// each (DESIGN.md §14).
//
// A -shards entry may carry a replica after a slash —
// primary:7070/replica:7071 — wiring that shard for read failover.
// With -promote-after set, a fleet controller probes every shard
// primary and, after that long a sustained outage confirmed by extra
// jittered probes, promotes the shard's replica to writable primary at
// a bumped fencing epoch (DESIGN.md §16); /fleetz shows its view.
//
//	curl -s localhost:8091/metrics | grep asm_disk
//	curl -s "localhost:8091/query?deadline=250ms"
//	curl -s localhost:8091/tracez
//	go tool pprof http://localhost:8091/debug/pprof/profile?seconds=5
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"time"

	"revelation/internal/assembly"
	"revelation/internal/bench"
	"revelation/internal/disk"
	"revelation/internal/expr"
	"revelation/internal/fleet"
	"revelation/internal/gen"
	"revelation/internal/metrics"
	"revelation/internal/pagesvc"
	"revelation/internal/qtrace"
	"revelation/internal/query"
	"revelation/internal/serve"
	"revelation/internal/shard"
	"revelation/internal/volcano"
)

func main() {
	addr := flag.String("addr", ":8091", "HTTP listen address")
	figure := flag.String("figure", "faults", "figure id to run as the workload (see asmbench -figure)")
	scale := flag.Float64("scale", 0.5, "database size scale factor")
	interval := flag.Duration("interval", time.Second, "pause between workload passes")
	once := flag.Bool("once", false, "run the workload a single time, then keep serving")
	maxConcurrent := flag.Int("max-concurrent", 4, "max in-flight /query requests; excess sheds with 503")
	queryTimeout := flag.Duration("query-timeout", 5*time.Second, "default /query deadline (?deadline= overrides)")
	queryWindow := flag.Int("query-window", 10, "assembly window for /query requests")
	pages := flag.String("pages", "", "comma-separated page-service endpoints, primary first (see cmd/asmpaged); /query pages are restored to and read from the service instead of local memory")
	shards := flag.String("shards", "", "comma-separated page-service endpoints, one per shard, each optionally primary/replica (see cmd/asmpaged); /query pages are spread over the fleet by the rendezvous router and assembled with the per-shard elevator")
	promoteAfter := flag.Duration("promote-after", 0, "promote a shard's replica after its primary has been unreachable this long (0 disables the fleet controller; needs -shards entries with replicas)")
	retryBudget := flag.Int("retry-budget", 64, "max I/O retries one /query may spend across all shards combined; 0 disables the budget")
	slowQuery := flag.Duration("slow-query", 500*time.Millisecond, "queries at least this slow land in the /tracez slow-query log and log one line; 0 disables")
	flag.Parse()

	reg := metrics.NewRegistry()
	qt := qtrace.NewCollector(0)
	qt.SetSlowThreshold(*slowQuery, func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "asmserve: "+format+"\n", args...)
	})
	runner := bench.NewRunner()
	runner.Metrics = reg

	run, err := workload(runner, *figure)
	if err != nil {
		fmt.Fprintf(os.Stderr, "asmserve: %v\n", err)
		os.Exit(2)
	}
	if *pages != "" && *shards != "" {
		fmt.Fprintln(os.Stderr, "asmserve: -pages and -shards are mutually exclusive: one service with replicas, or a fleet of shards")
		os.Exit(2)
	}
	queryFn, fleetz, err := queryWorkload(reg, *scale, *queryWindow, *pages, *shards, *promoteAfter)
	if err != nil {
		fmt.Fprintf(os.Stderr, "asmserve: %v\n", err)
		os.Exit(2)
	}

	srv := serve.New(serve.Options{
		Registry: reg,
		// The sum over policies is the live total: at most one policy's
		// operator is mid-run at a time in this single-threaded loop.
		Occupancy: func() int64 {
			return reg.Snapshot().Sum("asm_assembly_window_occupancy")
		},
		Info: []string{
			fmt.Sprintf("workload: figure %s, scale %.2f, interval %v", *figure, *scale, *interval),
			fmt.Sprintf("/query: window %d, max %d concurrent, timeout %v", *queryWindow, *maxConcurrent, *queryTimeout),
		},
		Query:         queryFn,
		MaxConcurrent: *maxConcurrent,
		QueryTimeout:  *queryTimeout,
		QTrace:        qt,
		RetryBudget:   *retryBudget,
		Fleet:         fleetz,
	})
	srv.Start()
	defer srv.Stop()

	passCounter := reg.Counter("asm_serve_workload_passes_total", "Completed workload passes.")
	errCounter := reg.Counter("asm_serve_workload_errors_total", "Failed workload passes.")

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt)
	go func() {
		for {
			if err := run(*scale); err != nil {
				errCounter.Inc()
				fmt.Fprintf(os.Stderr, "asmserve: workload: %v\n", err)
			} else {
				passCounter.Inc()
			}
			if *once {
				return
			}
			select {
			case <-stop:
				return
			case <-time.After(*interval):
			}
		}
	}()

	fmt.Printf("asmserve: listening on %s (figure %s, scale %.2f)\n", *addr, *figure, *scale)
	fmt.Printf("asmserve: try curl -s localhost%s/metrics | grep asm_\n", *addr)
	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}
	go func() {
		<-stop
		httpSrv.Close()
	}()
	if err := httpSrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
		fmt.Fprintf(os.Stderr, "asmserve: %v\n", err)
		os.Exit(1)
	}
}

// queryWorkload generates the /query database and returns the closure
// that runs one revealed selection query under the request's context,
// plus the /fleetz renderer (nil without -shards). Queries share one
// store and pool: the store is read-only after build and the pool
// serializes frame traffic, so concurrent requests are safe — the
// interesting contention (frames) is what reservations and bounded pin
// waits manage.
func queryWorkload(reg *metrics.Registry, scale float64, window int, pages, shards string, promoteAfter time.Duration) (func(ctx context.Context) (string, error), func(w io.Writer), error) {
	size := int(1000 * scale)
	if size < 100 {
		size = 100
	}
	db, err := gen.Build(gen.Config{
		NumComplexObjects: size,
		Clustering:        gen.Unclustered,
		BufferPages:       256,
		Seed:              91,
	})
	if err != nil {
		return nil, nil, err
	}
	var router *shard.Router
	var fleetz func(io.Writer)
	switch {
	case shards != "":
		// Spread the generated pages over the fleet by rendezvous
		// assignment, then reopen the database behind the router: every
		// /query from here on reads sharded pages, with breakers and the
		// per-query retry budget governing brown-outs.
		var handles *fleetHandles
		if db, handles, err = pushToShards(reg, db, shards); err != nil {
			return nil, nil, err
		}
		router = handles.router
		ctrl := startController(reg, handles, promoteAfter)
		fleetz = func(w io.Writer) {
			if ctrl != nil {
				ctrl.WriteStatus(w)
			}
			writeShardStatus(w, router)
		}
	case pages != "":
		// Restore the generated pages onto the page service through its
		// write path, then reopen the database over the network: every
		// /query from here on reads remote pages, hedging and failing
		// over exactly like the test harness.
		if db, err = pushToService(reg, db, pages); err != nil {
			return nil, nil, err
		}
	}
	db.Pool.RegisterMetrics(reg, "queryserve")
	if window < 1 {
		window = 1
	}
	reserve := window*db.NodesPerObject + 8
	return func(ctx context.Context) (string, error) {
		q := &query.Query{
			Template: db.Template,
			Roots:    db.Roots,
			NodePreds: map[string]expr.Predicate{
				"G": expr.IntCmp{Field: 1, Op: expr.LT, Value: 500, Sel: 0.5},
			},
		}
		opts := assembly.Options{
			Window:        window,
			Scheduler:     assembly.Elevator,
			ReserveFrames: reserve,
		}
		if router != nil {
			opts.CustomScheduler = assembly.NewShardElevator(router.Shards(), router.ShardOf)
			opts.ShardPrefetch = true
		}
		sp, ctx := qtrace.Start(ctx, qtrace.LayerPlan, "reveal")
		plan, err := query.Reveal(db.Store, q, opts)
		sp.End()
		if err != nil {
			return "", err
		}
		start := time.Now()
		items, err := volcano.DrainCtx(ctx, plan)
		if err != nil {
			return "", err
		}
		return fmt.Sprintf("assembled %d of %d complex objects in %s",
			len(items), len(db.Roots), time.Since(start).Round(time.Millisecond)), nil
	}, fleetz, nil
}

// fleetHandles is what the control plane needs from a shard fleet: the
// router plus the typed clients behind each member.
type fleetHandles struct {
	router    *shard.Router
	names     []string
	primaries []*pagesvc.Client
	replicas  []*pagesvc.Client // nil where the -shards entry had no replica
}

// startController wires the fleet controller over the shard fleet and
// runs it in the background, or returns nil when -promote-after is off
// or no shard has a replica to promote.
func startController(reg *metrics.Registry, h *fleetHandles, promoteAfter time.Duration) *fleet.Controller {
	if promoteAfter <= 0 {
		return nil
	}
	promotable := false
	members := make([]fleet.Member, len(h.names))
	for i := range h.names {
		i := i
		members[i] = fleet.Member{
			Name:  h.names[i],
			Probe: h.primaries[i].Ping,
			Epoch: func() uint64 { return h.router.Epoch(i) },
		}
		repl := h.replicas[i]
		if repl == nil {
			continue
		}
		promotable = true
		members[i].ReplicaLSN = func() uint64 {
			lsn, err := repl.AppliedLSN()
			if err != nil {
				return 0
			}
			return lsn
		}
		members[i].Promote = func(epoch uint64) error {
			// The replica's server goes writable at the new epoch first
			// (it starts fencing stale-epoch zombies), then the router
			// flips routing onto it.
			if err := repl.Promote(epoch, 0, true); err != nil {
				return err
			}
			_, err := h.router.PromoteReplica(i, epoch)
			if err == nil {
				fmt.Printf("asmserve: promoted %s's replica to primary at epoch %d\n", h.names[i], epoch)
			}
			return err
		}
	}
	if !promotable {
		fmt.Fprintln(os.Stderr, "asmserve: -promote-after set but no -shards entry has a replica; fleet controller disabled")
		return nil
	}
	ctrl := fleet.NewController(fleet.Config{
		Members:       members,
		SustainedLoss: promoteAfter,
		ProbeJitter:   promoteAfter / 8,
		Registry:      reg,
	})
	go ctrl.Run(promoteAfter / 4)
	fmt.Printf("asmserve: fleet controller on, promoting after %v sustained loss\n", promoteAfter)
	return ctrl
}

// writeShardStatus renders the data plane's half of /fleetz.
func writeShardStatus(w io.Writer, r *shard.Router) {
	fmt.Fprintf(w, "shards: %d members, %d pages, %d pending migration\n",
		r.Shards(), r.NumPages(), r.PendingPages())
	for i := 0; i < r.Shards(); i++ {
		replica := "-"
		if r.HasReplica(i) {
			replica = fmt.Sprintf("replica@lsn %d", r.ReplicaLSN(i))
		}
		fmt.Fprintf(w, "  %-12s epoch %-3d breaker %-8v degraded %-6d trips %-4d %s\n",
			r.MemberName(i), r.Epoch(i), r.BreakerState(i), r.DegradedReads(i), r.Trips(i), replica)
	}
}

// pushToService base-restores db's pages onto the page service at the
// first endpoint and reopens the database over a pagesvc client, so
// the pool underneath /query reads networked pages. Extra endpoints
// become hedge/failover replicas.
func pushToService(reg *metrics.Registry, db *gen.Database, endpoints string) (*gen.Database, error) {
	if err := db.Pool.FlushAll(); err != nil {
		return nil, err
	}
	eps := strings.Split(endpoints, ",")
	client, err := pagesvc.Dial(pagesvc.ClientConfig{
		Primary:  eps[0],
		Replicas: eps[1:],
		Dev:      pagesvc.DataDev,
		Retry:    disk.DefaultRetryPolicy,
		Registry: reg,
	})
	if err != nil {
		return nil, err
	}
	if db.Device.PageSize() != client.PageSize() {
		return nil, fmt.Errorf("page service serves %d-byte pages, database has %d", client.PageSize(), db.Device.PageSize())
	}
	if n := db.Device.NumPages() - client.NumPages(); n > 0 {
		if _, err := client.Allocate(n); err != nil {
			return nil, err
		}
	}
	buf := make([]byte, db.Device.PageSize())
	for p := 0; p < db.Device.NumPages(); p++ {
		if err := db.Device.ReadPage(disk.PageID(p), buf); err != nil {
			return nil, err
		}
		if err := client.WritePage(disk.PageID(p), buf); err != nil {
			return nil, err
		}
	}
	manifest := filepath.Join(os.TempDir(), fmt.Sprintf("asmserve-%d.manifest", os.Getpid()))
	if err := db.SaveManifest(manifest); err != nil {
		return nil, err
	}
	defer os.Remove(manifest)
	mp, err := gen.LoadManifest(manifest)
	if err != nil {
		return nil, err
	}
	return gen.OpenDatabaseOn(client, mp, 256)
}

// pushToShards rendezvous-spreads db's pages over a fleet of page
// services and reopens the database behind the shard router: the
// extent is allocated on every member (so page ids line up), but each
// page is written only to the shard that owns it, and the router never
// reads a page anywhere else. An endpoint written primary/replica
// wires the replica for degraded reads and controller promotion.
func pushToShards(reg *metrics.Registry, db *gen.Database, endpoints string) (*gen.Database, *fleetHandles, error) {
	if err := db.Pool.FlushAll(); err != nil {
		return nil, nil, err
	}
	eps := strings.Split(endpoints, ",")
	h := &fleetHandles{
		names:     make([]string, len(eps)),
		primaries: make([]*pagesvc.Client, len(eps)),
		replicas:  make([]*pagesvc.Client, len(eps)),
	}
	members := make([]shard.Member, len(eps))
	for i, ep := range eps {
		primary, replica, _ := strings.Cut(ep, "/")
		client, err := pagesvc.Dial(pagesvc.ClientConfig{
			Primary:  primary,
			Dev:      pagesvc.DataDev,
			Retry:    disk.DefaultRetryPolicy,
			Registry: reg,
			Label:    fmt.Sprintf("net-s%d", i),
		})
		if err != nil {
			return nil, nil, fmt.Errorf("shard %d (%s): %w", i, primary, err)
		}
		h.names[i] = fmt.Sprintf("s%d", i)
		h.primaries[i] = client
		members[i] = shard.Member{Name: h.names[i], Primary: client}
		if replica == "" {
			continue
		}
		rc, err := pagesvc.Dial(pagesvc.ClientConfig{
			Primary:  replica,
			Dev:      pagesvc.DataDev,
			Retry:    disk.DefaultRetryPolicy,
			Registry: reg,
			Label:    fmt.Sprintf("net-s%dr", i),
		})
		if err != nil {
			return nil, nil, fmt.Errorf("shard %d replica (%s): %w", i, replica, err)
		}
		h.replicas[i] = rc
		members[i].Replica = rc
		members[i].AppliedLSN = func() uint64 {
			lsn, err := rc.AppliedLSN()
			if err != nil {
				return 0
			}
			return lsn
		}
	}
	router, err := shard.New(shard.Config{Members: members, Registry: reg})
	if err != nil {
		return nil, nil, err
	}
	h.router = router
	if db.Device.PageSize() != router.PageSize() {
		router.Close()
		return nil, nil, fmt.Errorf("shard fleet serves %d-byte pages, database has %d", router.PageSize(), db.Device.PageSize())
	}
	if n := db.Device.NumPages() - router.NumPages(); n > 0 {
		if _, err := router.Allocate(n); err != nil {
			router.Close()
			return nil, nil, err
		}
	}
	buf := make([]byte, db.Device.PageSize())
	for p := 0; p < db.Device.NumPages(); p++ {
		if err := db.Device.ReadPage(disk.PageID(p), buf); err != nil {
			router.Close()
			return nil, nil, err
		}
		if err := router.WritePage(disk.PageID(p), buf); err != nil {
			router.Close()
			return nil, nil, err
		}
	}
	manifest := filepath.Join(os.TempDir(), fmt.Sprintf("asmserve-%d.manifest", os.Getpid()))
	if err := db.SaveManifest(manifest); err != nil {
		router.Close()
		return nil, nil, err
	}
	defer os.Remove(manifest)
	mp, err := gen.LoadManifest(manifest)
	if err != nil {
		router.Close()
		return nil, nil, err
	}
	ndb, err := gen.OpenDatabaseOn(router, mp, 256)
	if err != nil {
		router.Close()
		return nil, nil, err
	}
	return ndb, h, nil
}

// workload maps a figure id to a closure running it once.
func workload(r *bench.Runner, figure string) (func(scale float64) error, error) {
	fig := func(f func(float64) (bench.Figure, error)) func(float64) error {
		return func(s float64) error { _, err := f(s); return err }
	}
	switch strings.ToLower(figure) {
	case "fig14":
		return fig(r.Fig14), nil
	case "fig15":
		return fig(r.Fig15), nil
	case "fig16":
		return fig(r.Fig16), nil
	case "footprint":
		return fig(r.WindowFootprint), nil
	case "buffer-window":
		return fig(r.BufferWindow), nil
	case "multi-device", "multidev":
		return fig(r.MultiDevice), nil
	case "page-batch", "pagebatch":
		return fig(r.PageBatch), nil
	case "faults":
		return func(s float64) error {
			_, err := r.FigFaults(s, bench.DefaultFaultOptions)
			return err
		}, nil
	case "fig11a", "fig11b", "fig11c", "fig13a", "fig13b", "fig13c":
		w := 1
		if figure[3] == '3' {
			w = 50
		}
		sub := figure[len(figure)-1]
		return func(s float64) error {
			_, err := r.FigScheduling(w, sub, s)
			return err
		}, nil
	default:
		return nil, fmt.Errorf("unknown figure %q (see asmbench -figure)", figure)
	}
}
