// Command asmpaged serves a database device file (and optionally its
// WAL) over the page-service wire protocol, so compute nodes running
// asmquery/asmserve can stack their buffer pools and WAL writers on
// pages that live in another process or on another machine.
//
// Primary — serve data pages and the log:
//
//	asmpaged -addr :7070 -db db.pages -wal db.wal
//
// Read replica — keep a local copy current by following the primary's
// WAL, and serve it READ-ONLY with the applied LSN published for the
// client's failover staleness guard:
//
//	asmpaged -addr :7071 -db replica.pages -follow primary:7070
//
// A replica stays fenced against writes until a fleet controller
// promotes it (the promote RPC with writable set): it then stops
// following, serves writes at the bumped fencing epoch, and rejects
// requests still stamped with the old primary's epoch. -metrics's
// /statusz reports the live role and epoch.
//
// Seed the replica file from a base backup (cp db.pages replica.pages)
// for fast catch-up; an empty file also converges, it just replays the
// whole log. On restart the applied-LSN watermark is primed from the
// highest page LSN on the local device, so Follow resumes rather than
// replaying from zero.
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"time"

	"revelation/internal/disk"
	"revelation/internal/metrics"
	"revelation/internal/page"
	"revelation/internal/pagesvc"
	"revelation/internal/qtrace"
)

func main() {
	addr := flag.String("addr", ":7070", "address to serve the page service on")
	dbPath := flag.String("db", "db.pages", "data device file")
	walPath := flag.String("wal", "", "WAL device file (primary mode; created if missing)")
	follow := flag.String("follow", "", "primary address to follow as a read replica")
	pageSize := flag.Int("page-size", disk.DefaultPageSize, "device page size in bytes")
	metricsAddr := flag.String("metrics", "", "optional address serving /metrics (e.g. :9090)")
	brownout := flag.String("brownout", "", "arm a seeded brownout episode on the data device: start,len,ramp,stall (access ordinals and a stall duration, e.g. 200,400,100,2ms) — for exercising client breakers and failover")
	faultSeed := flag.Int64("fault-seed", 1, "seed for the brownout injector's deterministic decisions")
	flag.Parse()

	if *follow != "" && *walPath != "" {
		fail("-wal and -follow are mutually exclusive: a replica receives the log over Follow")
	}

	reg := metrics.NewRegistry()
	data, err := disk.OpenFile(*dbPath, *pageSize)
	if err != nil {
		fail("%v", err)
	}
	defer data.Close()

	serveData := disk.Device(data)
	if *brownout != "" {
		cfg, err := brownoutConfig(*brownout, *faultSeed)
		if err != nil {
			fail("%v", err)
		}
		faulty := disk.NewFaulty(data, cfg)
		// Registers the injection counters and forwards to the wrapped
		// file device, so "data" carries the whole stack.
		faulty.RegisterMetrics(reg, "data")
		serveData = faulty
		fmt.Printf("asmpaged: brownout armed: accesses [%d, %d), ramp %d, stall %v\n",
			cfg.BrownoutStart, cfg.BrownoutStart+cfg.BrownoutLen, cfg.BrownoutRamp, cfg.BrownoutStall)
	} else {
		data.RegisterMetrics(reg, "data")
	}

	devs := []disk.Device{serveData}
	// Requests arriving with a query id (protocol v2) build server-side
	// traces; the -metrics mux exposes them on /tracez.
	qt := qtrace.NewCollector(0)
	cfg := pagesvc.ServerConfig{Registry: reg, QTrace: qt}

	var repl *pagesvc.Replica
	role := "primary"
	switch {
	case *follow != "":
		repl = pagesvc.NewReplica(data, pagesvc.ReplicaConfig{
			Primary:  *follow,
			WALDev:   pagesvc.WALDev,
			Registry: reg,
		})
		repl.SetAppliedLSN(maxPageLSN(data))
		repl.Start()
		defer repl.Close()
		cfg.AppliedLSN = repl.AppliedLSN
		// A follower serves reads only; writes are fenced until a fleet
		// controller promotes it. Promotion to writable stops the
		// follower loop — the old primary's log is no longer
		// authoritative once this replica is the write master.
		cfg.ReadOnly = true
		cfg.OnPromote = func(epoch uint64, writable bool) {
			if writable {
				fmt.Printf("asmpaged: promoted to writable primary at epoch %d, stopping follower\n", epoch)
				go repl.Close()
			} else {
				fmt.Printf("asmpaged: epoch bumped to %d (still read-only)\n", epoch)
			}
		}
		role = "replica"
		fmt.Printf("asmpaged: read-only replica of %s, resuming after LSN %d\n", *follow, repl.AppliedLSN())
	case *walPath != "":
		walDev, err := disk.OpenFile(*walPath, *pageSize)
		if err != nil {
			fail("%v", err)
		}
		defer walDev.Close()
		walDev.RegisterMetrics(reg, "wal")
		devs = append(devs, walDev)
		fmt.Printf("asmpaged: primary, %d data pages, %d WAL pages\n", data.NumPages(), walDev.NumPages())
	default:
		role = "read-mostly"
		fmt.Printf("asmpaged: serving %d pages read-mostly (no WAL, no follow)\n", data.NumPages())
	}

	srv := pagesvc.NewServer(devs, cfg)
	bound, err := srv.Listen(*addr)
	if err != nil {
		fail("%v", err)
	}
	defer srv.Close()
	fmt.Printf("asmpaged: page service on %s\n", bound)

	if *metricsAddr != "" {
		mux := http.NewServeMux()
		mux.Handle("/metrics", reg.Handler())
		mux.Handle("/tracez", qtrace.Handler(qt))
		// /statusz answers the fleet-operator question "who is this
		// member right now": a promoted replica reports itself a primary
		// at its bumped epoch.
		mux.HandleFunc("/statusz", func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			liveRole := role
			if role == "replica" && !srv.ReadOnly() {
				liveRole = "promoted primary"
			}
			fmt.Fprintf(w, "role: %s\nepoch: %d\npages: %d\n", liveRole, srv.Epoch(), data.NumPages())
			if repl != nil {
				fmt.Fprintf(w, "applied lsn: %d\n", repl.AppliedLSN())
			}
		})
		go func() {
			if err := http.ListenAndServe(*metricsAddr, mux); err != nil {
				fmt.Fprintf(os.Stderr, "asmpaged: metrics: %v\n", err)
			}
		}()
		fmt.Printf("asmpaged: metrics on %s/metrics, traces on /tracez, role on /statusz\n", *metricsAddr)
	}

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt)
	<-stop
	fmt.Println("asmpaged: shutting down")
}

// brownoutConfig parses the -brownout spec "start,len,ramp,stall" into
// a fault configuration. The episode runs on the device's access clock
// (not wall time), so a client driving a steady read load sees the
// outage at a predictable point in its request stream.
func brownoutConfig(spec string, seed int64) (disk.FaultConfig, error) {
	parts := strings.Split(spec, ",")
	if len(parts) != 4 {
		return disk.FaultConfig{}, fmt.Errorf("bad -brownout %q: want start,len,ramp,stall (e.g. 200,400,100,2ms)", spec)
	}
	var nums [3]int64
	for i := 0; i < 3; i++ {
		v, err := strconv.ParseInt(strings.TrimSpace(parts[i]), 10, 64)
		if err != nil || v < 0 {
			return disk.FaultConfig{}, fmt.Errorf("bad -brownout field %q: want a non-negative access count", parts[i])
		}
		nums[i] = v
	}
	stall, err := time.ParseDuration(strings.TrimSpace(parts[3]))
	if err != nil || stall < 0 {
		return disk.FaultConfig{}, fmt.Errorf("bad -brownout stall %q: want a non-negative Go duration like 2ms", parts[3])
	}
	if nums[1] <= 0 {
		return disk.FaultConfig{}, fmt.Errorf("bad -brownout %q: len must be positive", spec)
	}
	return disk.FaultConfig{
		Seed:          seed,
		BrownoutStart: nums[0],
		BrownoutLen:   nums[1],
		BrownoutRamp:  nums[2],
		BrownoutStall: stall,
	}, nil
}

// maxPageLSN scans the device for the highest stamped page LSN — the
// conservative replication watermark after a restart: every WAL record
// at or below it has been applied to some page image on this device.
func maxPageLSN(dev disk.Device) uint64 {
	buf := make([]byte, dev.PageSize())
	var max uint64
	for p := 0; p < dev.NumPages(); p++ {
		if err := dev.ReadPage(disk.PageID(p), buf); err != nil {
			continue
		}
		if lsn := page.Wrap(buf).LSN(); lsn > max {
			max = lsn
		}
	}
	return max
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "asmpaged: "+format+"\n", args...)
	os.Exit(1)
}
