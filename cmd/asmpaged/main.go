// Command asmpaged serves a database device file (and optionally its
// WAL) over the page-service wire protocol, so compute nodes running
// asmquery/asmserve can stack their buffer pools and WAL writers on
// pages that live in another process or on another machine.
//
// Primary — serve data pages and the log:
//
//	asmpaged -addr :7070 -db db.pages -wal db.wal
//
// Read replica — keep a local copy current by following the primary's
// WAL, and serve it with the applied LSN published for the client's
// failover staleness guard:
//
//	asmpaged -addr :7071 -db replica.pages -follow primary:7070
//
// Seed the replica file from a base backup (cp db.pages replica.pages)
// for fast catch-up; an empty file also converges, it just replays the
// whole log. On restart the applied-LSN watermark is primed from the
// highest page LSN on the local device, so Follow resumes rather than
// replaying from zero.
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"

	"revelation/internal/disk"
	"revelation/internal/metrics"
	"revelation/internal/page"
	"revelation/internal/pagesvc"
	"revelation/internal/qtrace"
)

func main() {
	addr := flag.String("addr", ":7070", "address to serve the page service on")
	dbPath := flag.String("db", "db.pages", "data device file")
	walPath := flag.String("wal", "", "WAL device file (primary mode; created if missing)")
	follow := flag.String("follow", "", "primary address to follow as a read replica")
	pageSize := flag.Int("page-size", disk.DefaultPageSize, "device page size in bytes")
	metricsAddr := flag.String("metrics", "", "optional address serving /metrics (e.g. :9090)")
	flag.Parse()

	if *follow != "" && *walPath != "" {
		fail("-wal and -follow are mutually exclusive: a replica receives the log over Follow")
	}

	reg := metrics.NewRegistry()
	data, err := disk.OpenFile(*dbPath, *pageSize)
	if err != nil {
		fail("%v", err)
	}
	defer data.Close()
	data.RegisterMetrics(reg, "data")

	devs := []disk.Device{data}
	// Requests arriving with a query id (protocol v2) build server-side
	// traces; the -metrics mux exposes them on /tracez.
	qt := qtrace.NewCollector(0)
	cfg := pagesvc.ServerConfig{Registry: reg, QTrace: qt}

	var repl *pagesvc.Replica
	switch {
	case *follow != "":
		repl = pagesvc.NewReplica(data, pagesvc.ReplicaConfig{
			Primary:  *follow,
			WALDev:   pagesvc.WALDev,
			Registry: reg,
		})
		repl.SetAppliedLSN(maxPageLSN(data))
		repl.Start()
		defer repl.Close()
		cfg.AppliedLSN = repl.AppliedLSN
		fmt.Printf("asmpaged: replica of %s, resuming after LSN %d\n", *follow, repl.AppliedLSN())
	case *walPath != "":
		walDev, err := disk.OpenFile(*walPath, *pageSize)
		if err != nil {
			fail("%v", err)
		}
		defer walDev.Close()
		walDev.RegisterMetrics(reg, "wal")
		devs = append(devs, walDev)
		fmt.Printf("asmpaged: primary, %d data pages, %d WAL pages\n", data.NumPages(), walDev.NumPages())
	default:
		fmt.Printf("asmpaged: serving %d pages read-mostly (no WAL, no follow)\n", data.NumPages())
	}

	srv := pagesvc.NewServer(devs, cfg)
	bound, err := srv.Listen(*addr)
	if err != nil {
		fail("%v", err)
	}
	defer srv.Close()
	fmt.Printf("asmpaged: page service on %s\n", bound)

	if *metricsAddr != "" {
		mux := http.NewServeMux()
		mux.Handle("/metrics", reg.Handler())
		mux.Handle("/tracez", qtrace.Handler(qt))
		go func() {
			if err := http.ListenAndServe(*metricsAddr, mux); err != nil {
				fmt.Fprintf(os.Stderr, "asmpaged: metrics: %v\n", err)
			}
		}()
		fmt.Printf("asmpaged: metrics on %s/metrics, traces on /tracez\n", *metricsAddr)
	}

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt)
	<-stop
	fmt.Println("asmpaged: shutting down")
}

// maxPageLSN scans the device for the highest stamped page LSN — the
// conservative replication watermark after a restart: every WAL record
// at or below it has been applied to some page image on this device.
func maxPageLSN(dev disk.Device) uint64 {
	buf := make([]byte, dev.PageSize())
	var max uint64
	for p := 0; p < dev.NumPages(); p++ {
		if err := dev.ReadPage(disk.PageID(p), buf); err != nil {
			continue
		}
		if lsn := page.Wrap(buf).LSN(); lsn > max {
			max = lsn
		}
	}
	return max
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "asmpaged: "+format+"\n", args...)
	os.Exit(1)
}
