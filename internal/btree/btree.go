// Package btree implements a disk-resident B+-tree over the buffer
// pool. Volcano's file system offers heap files and B-trees (Section 3
// of the paper); this reproduction uses the tree for the OID → physical
// address mapping the assembly operator requires ("there is a mapping
// from object reference to physical location", footnote 1) and for
// ordered index scans.
//
// Keys and values are uint64; callers pack richer values (the object
// layer packs RIDs). The root page id is stable across splits, so a
// tree is reopened from (pool, root) alone.
package btree

import (
	"encoding/binary"
	"errors"
	"fmt"

	"revelation/internal/buffer"
	"revelation/internal/disk"
	"revelation/internal/page"
)

// KindBTree is the page-kind tag ("BT") every tree node carries in the
// common page header, so inspection tools can classify pages.
const KindBTree uint16 = 0x4254

// Node layout. Every node begins with the common page header
// (page.HeaderSize bytes: kind tag, LSN, checksum — see internal/page),
// so tree pages carry the same durability metadata as heap pages and
// the buffer pool can verify and stamp them uniformly. The node payload
// follows at nodeBase (raw bytes, little endian):
//
//	[nodeBase+0]    kind: 1 = leaf, 2 = internal
//	[nodeBase+1]    unused
//	[nodeBase+2:4)  nkeys uint16
//	[nodeBase+4:8)  next-leaf page id (leaves only; InvalidPage when none)
//	[nodeBase+8:)   entries
//
// Leaf entry i (16 bytes):    key u64, value u64
// Internal node:              child0 u32 at [nodeBase+8:12), then
//
//	entry i (12 bytes): key u64, child u32.
//
// Children hold keys >= the separator to their left.
const (
	kindLeaf     = 1
	kindInternal = 2

	nodeBase = page.HeaderSize

	offKind  = nodeBase + 0
	offNKeys = nodeBase + 2
	offNext  = nodeBase + 4

	leafHdr      = nodeBase + 8
	leafEntry    = 16
	internalHdr  = nodeBase + 12 // includes child0
	internalEntr = 12
)

// Common errors.
var (
	ErrKeyExists = errors.New("btree: key already exists")
)

// Tree is a B+-tree handle.
type Tree struct {
	pool *buffer.Pool
	root disk.PageID
	// capacity overrides for tests; zero means derive from page size.
	maxLeaf, maxInt int
}

// Create allocates and formats an empty tree, returning the handle.
func Create(pool *buffer.Pool) (*Tree, error) {
	f, err := pool.FixNew()
	if err != nil {
		return nil, err
	}
	initLeaf(f.Data())
	root := f.ID()
	if err := pool.Unfix(f, true); err != nil {
		return nil, err
	}
	return &Tree{pool: pool, root: root}, nil
}

// Open returns a handle to an existing tree rooted at root.
func Open(pool *buffer.Pool, root disk.PageID) *Tree {
	return &Tree{pool: pool, root: root}
}

// Root returns the tree's stable root page id (store it to reopen).
func (t *Tree) Root() disk.PageID { return t.root }

// setCapacity shrinks node capacities; used by tests to force deep
// trees on few pages.
func (t *Tree) setCapacity(leaf, internal int) { t.maxLeaf, t.maxInt = leaf, internal }

func (t *Tree) leafCap(pageSize int) int {
	if t.maxLeaf > 0 {
		return t.maxLeaf
	}
	return (pageSize - leafHdr) / leafEntry
}

func (t *Tree) intCap(pageSize int) int {
	if t.maxInt > 0 {
		return t.maxInt
	}
	return (pageSize - internalHdr) / internalEntr
}

func initLeaf(b []byte) {
	page.Wrap(b).Init(KindBTree)
	b[offKind] = kindLeaf
	binary.LittleEndian.PutUint32(b[offNext:], uint32(disk.InvalidPage))
}

func initInternal(b []byte) {
	page.Wrap(b).Init(KindBTree)
	b[offKind] = kindInternal
}

func nkeys(b []byte) int       { return int(binary.LittleEndian.Uint16(b[offNKeys:])) }
func setNKeys(b []byte, n int) { binary.LittleEndian.PutUint16(b[offNKeys:], uint16(n)) }
func isLeaf(b []byte) bool     { return b[offKind] == kindLeaf }

func leafNext(b []byte) disk.PageID {
	return disk.PageID(binary.LittleEndian.Uint32(b[offNext:]))
}
func setLeafNext(b []byte, id disk.PageID) {
	binary.LittleEndian.PutUint32(b[offNext:], uint32(id))
}

func leafKey(b []byte, i int) uint64 {
	return binary.LittleEndian.Uint64(b[leafHdr+i*leafEntry:])
}
func leafVal(b []byte, i int) uint64 {
	return binary.LittleEndian.Uint64(b[leafHdr+i*leafEntry+8:])
}
func setLeafKV(b []byte, i int, k, v uint64) {
	binary.LittleEndian.PutUint64(b[leafHdr+i*leafEntry:], k)
	binary.LittleEndian.PutUint64(b[leafHdr+i*leafEntry+8:], v)
}

func intKey(b []byte, i int) uint64 {
	return binary.LittleEndian.Uint64(b[internalHdr+i*internalEntr:])
}
func setIntKey(b []byte, i int, k uint64) {
	binary.LittleEndian.PutUint64(b[internalHdr+i*internalEntr:], k)
}

// child i is left of key i for i < nkeys; child nkeys is the rightmost.
func intChild(b []byte, i int) disk.PageID {
	if i == 0 {
		return disk.PageID(binary.LittleEndian.Uint32(b[nodeBase+8:]))
	}
	return disk.PageID(binary.LittleEndian.Uint32(b[internalHdr+(i-1)*internalEntr+8:]))
}
func setIntChild(b []byte, i int, c disk.PageID) {
	if i == 0 {
		binary.LittleEndian.PutUint32(b[nodeBase+8:], uint32(c))
		return
	}
	binary.LittleEndian.PutUint32(b[internalHdr+(i-1)*internalEntr+8:], uint32(c))
}

// leafSearch returns the position of the first key >= k.
func leafSearch(b []byte, k uint64) int {
	lo, hi := 0, nkeys(b)
	for lo < hi {
		mid := (lo + hi) / 2
		if leafKey(b, mid) < k {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// intSearch returns the child index to descend into for key k:
// the number of separators <= k.
func intSearch(b []byte, k uint64) int {
	lo, hi := 0, nkeys(b)
	for lo < hi {
		mid := (lo + hi) / 2
		if intKey(b, mid) <= k {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Get looks up key k, returning its value and whether it was found.
func (t *Tree) Get(k uint64) (uint64, bool, error) {
	id := t.root
	for {
		f, err := t.pool.Fix(id)
		if err != nil {
			return 0, false, err
		}
		b := f.Data()
		if isLeaf(b) {
			i := leafSearch(b, k)
			if i >= nkeys(b) {
				// k is greater than every key here. In a quiescent tree
				// that means the search is over, but after crash
				// recovery the tree may hold the prefix of an
				// interrupted split: the right sibling exists and holds
				// the moved upper keys, while the parent does not point
				// to it yet. The sibling is always on the leaf chain
				// (the split links it before the parent learns the
				// separator), so follow the chain B-link style. In a
				// consistent tree this costs at most one extra hop, and
				// only for absent keys.
				if next := leafNext(b); next != disk.InvalidPage {
					if err := t.pool.Unfix(f, false); err != nil {
						return 0, false, err
					}
					id = next
					continue
				}
			}
			var v uint64
			found := i < nkeys(b) && leafKey(b, i) == k
			if found {
				v = leafVal(b, i)
			}
			if err := t.pool.Unfix(f, false); err != nil {
				return 0, false, err
			}
			return v, found, nil
		}
		next := intChild(b, intSearch(b, k))
		if err := t.pool.Unfix(f, false); err != nil {
			return 0, false, err
		}
		id = next
	}
}

// splitResult carries a child split up to the parent.
type splitResult struct {
	split   bool
	sepKey  uint64
	newPage disk.PageID
}

// Put inserts or overwrites key k.
func (t *Tree) Put(k, v uint64) error { return t.insert(k, v, true) }

// Insert adds key k, failing with ErrKeyExists if present.
func (t *Tree) Insert(k, v uint64) error { return t.insert(k, v, false) }

func (t *Tree) insert(k, v uint64, overwrite bool) error {
	res, err := t.insertRec(t.root, k, v, overwrite)
	if err != nil {
		return err
	}
	if !res.split {
		return nil
	}
	// Root split: keep the root page id stable by moving the old root
	// contents to a fresh page and rewriting the root as an internal
	// node over (moved old root, new sibling).
	rootF, err := t.pool.Fix(t.root)
	if err != nil {
		return err
	}
	movedF, err := t.pool.FixNew()
	if err != nil {
		t.pool.Unfix(rootF, false)
		return err
	}
	copy(movedF.Data(), rootF.Data())
	b := rootF.Data()
	initInternal(b)
	setNKeys(b, 1)
	setIntChild(b, 0, movedF.ID())
	setIntKey(b, 0, res.sepKey)
	setIntChild(b, 1, res.newPage)
	if err := t.pool.Unfix(movedF, true); err != nil {
		t.pool.Unfix(rootF, true)
		return err
	}
	return t.pool.Unfix(rootF, true)
}

func (t *Tree) insertRec(id disk.PageID, k, v uint64, overwrite bool) (splitResult, error) {
	f, err := t.pool.Fix(id)
	if err != nil {
		return splitResult{}, err
	}
	b := f.Data()
	pageSize := len(b)

	if isLeaf(b) {
		i := leafSearch(b, k)
		n := nkeys(b)
		if i < n && leafKey(b, i) == k {
			if !overwrite {
				t.pool.Unfix(f, false)
				return splitResult{}, fmt.Errorf("%w: %d", ErrKeyExists, k)
			}
			setLeafKV(b, i, k, v)
			return splitResult{}, t.pool.Unfix(f, true)
		}
		if n < t.leafCap(pageSize) {
			// Shift entries right and insert.
			copy(b[leafHdr+(i+1)*leafEntry:leafHdr+(n+1)*leafEntry], b[leafHdr+i*leafEntry:leafHdr+n*leafEntry])
			setLeafKV(b, i, k, v)
			setNKeys(b, n+1)
			return splitResult{}, t.pool.Unfix(f, true)
		}
		// Split the leaf.
		newF, err := t.pool.FixNew()
		if err != nil {
			t.pool.Unfix(f, false)
			return splitResult{}, err
		}
		nb := newF.Data()
		initLeaf(nb)
		mid := (n + 1) / 2
		moved := n - mid
		copy(nb[leafHdr:leafHdr+moved*leafEntry], b[leafHdr+mid*leafEntry:leafHdr+n*leafEntry])
		setNKeys(nb, moved)
		setNKeys(b, mid)
		setLeafNext(nb, leafNext(b))
		setLeafNext(b, newF.ID())
		// Insert into the proper half.
		if i <= mid && (i < mid || k < leafKey(nb, 0)) {
			n = mid
			copy(b[leafHdr+(i+1)*leafEntry:leafHdr+(n+1)*leafEntry], b[leafHdr+i*leafEntry:leafHdr+n*leafEntry])
			setLeafKV(b, i, k, v)
			setNKeys(b, n+1)
		} else {
			j := i - mid
			copy(nb[leafHdr+(j+1)*leafEntry:leafHdr+(moved+1)*leafEntry], nb[leafHdr+j*leafEntry:leafHdr+moved*leafEntry])
			setLeafKV(nb, j, k, v)
			setNKeys(nb, moved+1)
		}
		sep := leafKey(nb, 0)
		newID := newF.ID()
		if err := t.pool.Unfix(newF, true); err != nil {
			t.pool.Unfix(f, true)
			return splitResult{}, err
		}
		if err := t.pool.Unfix(f, true); err != nil {
			return splitResult{}, err
		}
		return splitResult{split: true, sepKey: sep, newPage: newID}, nil
	}

	// Internal node: descend, then absorb any child split.
	ci := intSearch(b, k)
	child := intChild(b, ci)
	// Unfix during recursion to keep the pinned set O(1); re-fix after.
	if err := t.pool.Unfix(f, false); err != nil {
		return splitResult{}, err
	}
	res, err := t.insertRec(child, k, v, overwrite)
	if err != nil || !res.split {
		return splitResult{}, err
	}
	f, err = t.pool.Fix(id)
	if err != nil {
		return splitResult{}, err
	}
	b = f.Data()
	n := nkeys(b)
	if n < t.intCap(pageSize) {
		insertSeparator(b, ci, res.sepKey, res.newPage)
		return splitResult{}, t.pool.Unfix(f, true)
	}
	// Split the internal node. Gather keys/children, include the new
	// separator, then redistribute around a median that moves up.
	keys := make([]uint64, 0, n+1)
	children := make([]disk.PageID, 0, n+2)
	children = append(children, intChild(b, 0))
	for i := 0; i < n; i++ {
		keys = append(keys, intKey(b, i))
		children = append(children, intChild(b, i+1))
	}
	// Insert new separator at position ci.
	keys = append(keys, 0)
	copy(keys[ci+1:], keys[ci:])
	keys[ci] = res.sepKey
	children = append(children, 0)
	copy(children[ci+2:], children[ci+1:])
	children[ci+1] = res.newPage

	total := len(keys)
	midIdx := total / 2
	upKey := keys[midIdx]

	newF, err := t.pool.FixNew()
	if err != nil {
		t.pool.Unfix(f, false)
		return splitResult{}, err
	}
	nb := newF.Data()
	initInternal(nb)
	// Left keeps keys[:midIdx], children[:midIdx+1].
	initInternal(b)
	setNKeys(b, midIdx)
	setIntChild(b, 0, children[0])
	for i := 0; i < midIdx; i++ {
		setIntKey(b, i, keys[i])
		setIntChild(b, i+1, children[i+1])
	}
	// Right gets keys[midIdx+1:], children[midIdx+1:].
	rightKeys := keys[midIdx+1:]
	setNKeys(nb, len(rightKeys))
	setIntChild(nb, 0, children[midIdx+1])
	for i, rk := range rightKeys {
		setIntKey(nb, i, rk)
		setIntChild(nb, i+1, children[midIdx+2+i])
	}
	newID := newF.ID()
	if err := t.pool.Unfix(newF, true); err != nil {
		t.pool.Unfix(f, true)
		return splitResult{}, err
	}
	if err := t.pool.Unfix(f, true); err != nil {
		return splitResult{}, err
	}
	return splitResult{split: true, sepKey: upKey, newPage: newID}, nil
}

// insertSeparator adds (key, rightChild) after child index ci in a
// non-full internal node.
func insertSeparator(b []byte, ci int, key uint64, right disk.PageID) {
	n := nkeys(b)
	// Shift keys and right-children starting at position ci.
	copy(b[internalHdr+(ci+1)*internalEntr:internalHdr+(n+1)*internalEntr],
		b[internalHdr+ci*internalEntr:internalHdr+n*internalEntr])
	setIntKey(b, ci, key)
	setIntChild(b, ci+1, right)
	setNKeys(b, n+1)
}
