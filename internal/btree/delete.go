package btree

import (
	"revelation/internal/disk"
)

// Delete removes key k, reporting whether it was present. Underflowing
// nodes are rebalanced by borrowing from or merging with a sibling, so
// the tree stays within its height bounds under mixed workloads.
func (t *Tree) Delete(k uint64) (bool, error) {
	found, _, err := t.deleteRec(t.root, k)
	if err != nil || !found {
		return found, err
	}
	// Collapse the root if it is an internal node with a single child:
	// copy that child into the root page to keep the root id stable.
	f, err := t.pool.Fix(t.root)
	if err != nil {
		return true, err
	}
	b := f.Data()
	if !isLeaf(b) && nkeys(b) == 0 {
		only := intChild(b, 0)
		cf, err := t.pool.Fix(only)
		if err != nil {
			t.pool.Unfix(f, false)
			return true, err
		}
		copy(b, cf.Data())
		if err := t.pool.Unfix(cf, false); err != nil {
			t.pool.Unfix(f, true)
			return true, err
		}
		// The child's page is now garbage; a real system would return
		// it to a free list. The simulated device does not reclaim.
		return true, t.pool.Unfix(f, true)
	}
	return true, t.pool.Unfix(f, false)
}

// minLeaf/minInt are the underflow thresholds.
func (t *Tree) minLeaf(pageSize int) int { return t.leafCap(pageSize) / 2 }
func (t *Tree) minInt(pageSize int) int  { return t.intCap(pageSize) / 2 }

// deleteRec removes k from the subtree at id. It reports whether the
// key was found and whether the node at id is now under-full (the
// parent decides how to fix it).
func (t *Tree) deleteRec(id disk.PageID, k uint64) (found, underflow bool, err error) {
	f, err := t.pool.Fix(id)
	if err != nil {
		return false, false, err
	}
	b := f.Data()
	pageSize := len(b)

	if isLeaf(b) {
		i := leafSearch(b, k)
		n := nkeys(b)
		if i >= n || leafKey(b, i) != k {
			return false, false, t.pool.Unfix(f, false)
		}
		copy(b[leafHdr+i*leafEntry:leafHdr+(n-1)*leafEntry], b[leafHdr+(i+1)*leafEntry:leafHdr+n*leafEntry])
		setNKeys(b, n-1)
		under := n-1 < t.minLeaf(pageSize)
		return true, under, t.pool.Unfix(f, true)
	}

	ci := intSearch(b, k)
	child := intChild(b, ci)
	if err := t.pool.Unfix(f, false); err != nil {
		return false, false, err
	}
	found, childUnder, err := t.deleteRec(child, k)
	if err != nil || !found || !childUnder {
		return found, false, err
	}
	// Fix the under-full child by borrowing or merging.
	f, err = t.pool.Fix(id)
	if err != nil {
		return true, false, err
	}
	b = f.Data()
	under, err := t.rebalanceChild(b, ci)
	if err != nil {
		t.pool.Unfix(f, true)
		return true, false, err
	}
	return true, under && nkeys(b) < t.minInt(pageSize), t.pool.Unfix(f, true)
}

// rebalanceChild restores the invariants of the ci-th child of the
// internal node b. It returns whether b itself lost a separator (after
// a merge), which may propagate underflow upward.
func (t *Tree) rebalanceChild(b []byte, ci int) (lostSeparator bool, err error) {
	n := nkeys(b)
	// Prefer borrowing from the left sibling, then the right; merge as
	// a last resort.
	if ci > 0 {
		ok, err := t.tryBorrow(b, ci-1, ci, true)
		if err != nil || ok {
			return false, err
		}
	}
	if ci < n {
		ok, err := t.tryBorrow(b, ci, ci+1, false)
		if err != nil || ok {
			return false, err
		}
	}
	if ci > 0 {
		return true, t.merge(b, ci-1)
	}
	return true, t.merge(b, ci)
}

// tryBorrow moves one entry between the adjacent children li and ri
// (= li+1) of internal node b. intoRight=true shifts an entry from the
// left sibling into the under-full right child; intoRight=false shifts
// from the right sibling into the under-full left child. It reports
// whether a move happened (the donor must stay above its minimum).
func (t *Tree) tryBorrow(b []byte, li, ri int, intoRight bool) (bool, error) {
	lf, err := t.pool.Fix(intChild(b, li))
	if err != nil {
		return false, err
	}
	rf, err := t.pool.Fix(intChild(b, ri))
	if err != nil {
		t.pool.Unfix(lf, false)
		return false, err
	}
	lb, rb := lf.Data(), rf.Data()
	pageSize := len(lb)
	ln, rn := nkeys(lb), nkeys(rb)
	moved := false

	if isLeaf(lb) {
		minN := t.minLeaf(pageSize)
		if intoRight && ln > minN {
			// Shift right sibling, move left's last entry over.
			copy(rb[leafHdr+leafEntry:leafHdr+(rn+1)*leafEntry], rb[leafHdr:leafHdr+rn*leafEntry])
			setLeafKV(rb, 0, leafKey(lb, ln-1), leafVal(lb, ln-1))
			setNKeys(rb, rn+1)
			setNKeys(lb, ln-1)
			setIntKey(b, li, leafKey(rb, 0))
			moved = true
		} else if !intoRight && rn > minN {
			setLeafKV(lb, ln, leafKey(rb, 0), leafVal(rb, 0))
			setNKeys(lb, ln+1)
			copy(rb[leafHdr:leafHdr+(rn-1)*leafEntry], rb[leafHdr+leafEntry:leafHdr+rn*leafEntry])
			setNKeys(rb, rn-1)
			setIntKey(b, li, leafKey(rb, 0))
			moved = true
		}
	} else {
		minN := t.minInt(pageSize)
		sep := intKey(b, li)
		if intoRight && ln > minN {
			// Rotate through the parent: parent separator goes down to
			// the right child; left child's last key goes up.
			copy(rb[internalHdr+internalEntr:internalHdr+(rn+1)*internalEntr], rb[internalHdr:internalHdr+rn*internalEntr])
			// child0 of right becomes entry 0's left; old child0 shifts
			// into entry position via the copy above? Entries carry
			// (key, rightChild), so shift entries then set entry 0.
			setIntKey(rb, 0, sep)
			setIntChild(rb, 1, intChild(rb, 0))
			setIntChild(rb, 0, intChild(lb, ln))
			setNKeys(rb, rn+1)
			setIntKey(b, li, intKey(lb, ln-1))
			setNKeys(lb, ln-1)
			moved = true
		} else if !intoRight && rn > minN {
			setIntKey(lb, ln, sep)
			setIntChild(lb, ln+1, intChild(rb, 0))
			setNKeys(lb, ln+1)
			setIntKey(b, li, intKey(rb, 0))
			setIntChild(rb, 0, intChild(rb, 1))
			copy(rb[internalHdr:internalHdr+(rn-1)*internalEntr], rb[internalHdr+internalEntr:internalHdr+rn*internalEntr])
			setNKeys(rb, rn-1)
			moved = true
		}
	}

	if err := t.pool.Unfix(rf, moved); err != nil {
		t.pool.Unfix(lf, moved)
		return false, err
	}
	return moved, t.pool.Unfix(lf, moved)
}

// merge combines children li and li+1 of internal node b into the left
// child and removes separator li from b.
func (t *Tree) merge(b []byte, li int) error {
	lf, err := t.pool.Fix(intChild(b, li))
	if err != nil {
		return err
	}
	rf, err := t.pool.Fix(intChild(b, li+1))
	if err != nil {
		t.pool.Unfix(lf, false)
		return err
	}
	lb, rb := lf.Data(), rf.Data()
	ln, rn := nkeys(lb), nkeys(rb)

	if isLeaf(lb) {
		copy(lb[leafHdr+ln*leafEntry:leafHdr+(ln+rn)*leafEntry], rb[leafHdr:leafHdr+rn*leafEntry])
		setNKeys(lb, ln+rn)
		setLeafNext(lb, leafNext(rb))
	} else {
		sep := intKey(b, li)
		setIntKey(lb, ln, sep)
		setIntChild(lb, ln+1, intChild(rb, 0))
		for i := 0; i < rn; i++ {
			setIntKey(lb, ln+1+i, intKey(rb, i))
			setIntChild(lb, ln+2+i, intChild(rb, i+1))
		}
		setNKeys(lb, ln+1+rn)
	}

	// Remove separator li and the right child pointer from b.
	n := nkeys(b)
	copy(b[internalHdr+li*internalEntr:internalHdr+(n-1)*internalEntr],
		b[internalHdr+(li+1)*internalEntr:internalHdr+n*internalEntr])
	setNKeys(b, n-1)

	if err := t.pool.Unfix(rf, true); err != nil {
		t.pool.Unfix(lf, true)
		return err
	}
	return t.pool.Unfix(lf, true)
}
