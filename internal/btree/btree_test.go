package btree

import (
	"errors"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"revelation/internal/buffer"
	"revelation/internal/disk"
)

func newTree(t *testing.T, frames int) *Tree {
	t.Helper()
	d := disk.New(0)
	pool := buffer.New(d, frames, buffer.LRU)
	tr, err := Create(pool)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestEmptyTree(t *testing.T) {
	tr := newTree(t, 8)
	if _, ok, err := tr.Get(1); err != nil || ok {
		t.Errorf("Get on empty = (%v, %v)", ok, err)
	}
	if n, err := tr.Len(); err != nil || n != 0 {
		t.Errorf("Len = (%d, %v)", n, err)
	}
	if h, err := tr.Height(); err != nil || h != 1 {
		t.Errorf("Height = (%d, %v)", h, err)
	}
	if err := tr.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestInsertGetSmall(t *testing.T) {
	tr := newTree(t, 8)
	for _, k := range []uint64{5, 1, 9, 3, 7} {
		if err := tr.Insert(k, k*10); err != nil {
			t.Fatalf("Insert(%d): %v", k, err)
		}
	}
	for _, k := range []uint64{5, 1, 9, 3, 7} {
		v, ok, err := tr.Get(k)
		if err != nil || !ok || v != k*10 {
			t.Errorf("Get(%d) = (%d, %v, %v)", k, v, ok, err)
		}
	}
	if _, ok, _ := tr.Get(4); ok {
		t.Error("Get(4) found a missing key")
	}
}

func TestInsertDuplicate(t *testing.T) {
	tr := newTree(t, 8)
	if err := tr.Insert(1, 10); err != nil {
		t.Fatal(err)
	}
	if err := tr.Insert(1, 20); !errors.Is(err, ErrKeyExists) {
		t.Errorf("duplicate Insert err = %v, want ErrKeyExists", err)
	}
	if err := tr.Put(1, 30); err != nil {
		t.Errorf("Put overwrite: %v", err)
	}
	v, _, _ := tr.Get(1)
	if v != 30 {
		t.Errorf("value after Put = %d, want 30", v)
	}
}

func TestSplitsAndDepth(t *testing.T) {
	tr := newTree(t, 64)
	const n = 10000
	for i := 0; i < n; i++ {
		if err := tr.Insert(uint64(i), uint64(i)); err != nil {
			t.Fatalf("Insert(%d): %v", i, err)
		}
	}
	if got, _ := tr.Len(); got != n {
		t.Fatalf("Len = %d, want %d", got, n)
	}
	h, _ := tr.Height()
	if h < 3 {
		t.Errorf("Height = %d, expected a deep tree for %d keys", h, n)
	}
	if err := tr.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	for i := 0; i < n; i += 37 {
		v, ok, err := tr.Get(uint64(i))
		if err != nil || !ok || v != uint64(i) {
			t.Fatalf("Get(%d) = (%d, %v, %v)", i, v, ok, err)
		}
	}
}

func TestRootStableAcrossSplits(t *testing.T) {
	tr := newTree(t, 64)
	root := tr.Root()
	for i := 0; i < 5000; i++ {
		if err := tr.Insert(uint64(i), 0); err != nil {
			t.Fatal(err)
		}
	}
	if tr.Root() != root {
		t.Errorf("root moved: %d -> %d", root, tr.Root())
	}
}

func TestDescendingInsert(t *testing.T) {
	tr := newTree(t, 64)
	const n = 5000
	for i := n - 1; i >= 0; i-- {
		if err := tr.Insert(uint64(i), uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	var keys []uint64
	if err := tr.Scan(0, ^uint64(0), func(k, v uint64) bool {
		keys = append(keys, k)
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if len(keys) != n {
		t.Fatalf("scan saw %d keys, want %d", len(keys), n)
	}
	for i, k := range keys {
		if k != uint64(i) {
			t.Fatalf("keys[%d] = %d", i, k)
		}
	}
}

func TestScanRange(t *testing.T) {
	tr := newTree(t, 64)
	for i := 0; i < 1000; i += 2 { // even keys only
		if err := tr.Insert(uint64(i), uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	var got []uint64
	if err := tr.Scan(101, 111, func(k, v uint64) bool {
		got = append(got, k)
		return true
	}); err != nil {
		t.Fatal(err)
	}
	want := []uint64{102, 104, 106, 108, 110}
	if len(got) != len(want) {
		t.Fatalf("Scan(101,111) = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Scan(101,111) = %v, want %v", got, want)
		}
	}
}

func TestScanEarlyStop(t *testing.T) {
	tr := newTree(t, 64)
	for i := 0; i < 500; i++ {
		if err := tr.Insert(uint64(i), 0); err != nil {
			t.Fatal(err)
		}
	}
	n := 0
	if err := tr.Scan(0, ^uint64(0), func(k, v uint64) bool {
		n++
		return n < 10
	}); err != nil {
		t.Fatal(err)
	}
	if n != 10 {
		t.Errorf("early stop visited %d", n)
	}
}

func TestDeleteSimple(t *testing.T) {
	tr := newTree(t, 8)
	for _, k := range []uint64{1, 2, 3} {
		if err := tr.Insert(k, k); err != nil {
			t.Fatal(err)
		}
	}
	ok, err := tr.Delete(2)
	if err != nil || !ok {
		t.Fatalf("Delete(2) = (%v, %v)", ok, err)
	}
	if _, found, _ := tr.Get(2); found {
		t.Error("key 2 still present")
	}
	ok, err = tr.Delete(2)
	if err != nil || ok {
		t.Errorf("second Delete(2) = (%v, %v), want (false, nil)", ok, err)
	}
	if n, _ := tr.Len(); n != 2 {
		t.Errorf("Len = %d, want 2", n)
	}
}

func TestDeleteEverything(t *testing.T) {
	tr := newTree(t, 64)
	const n = 3000
	for i := 0; i < n; i++ {
		if err := tr.Insert(uint64(i), uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	perm := rand.New(rand.NewSource(1)).Perm(n)
	for _, i := range perm {
		ok, err := tr.Delete(uint64(i))
		if err != nil || !ok {
			t.Fatalf("Delete(%d) = (%v, %v)", i, ok, err)
		}
	}
	if got, _ := tr.Len(); got != 0 {
		t.Errorf("Len after delete-all = %d", got)
	}
	if err := tr.Validate(); err != nil {
		t.Errorf("Validate after delete-all: %v", err)
	}
	// Tree must still be usable.
	if err := tr.Insert(42, 42); err != nil {
		t.Fatal(err)
	}
	if v, ok, _ := tr.Get(42); !ok || v != 42 {
		t.Error("tree unusable after delete-all")
	}
}

func TestDeepTreeWithTinyNodes(t *testing.T) {
	// Force four-entry nodes so every code path (splits, borrows,
	// merges, root collapse) runs within a few hundred keys.
	tr := newTree(t, 64)
	tr.setCapacity(4, 4)
	const n = 300
	rng := rand.New(rand.NewSource(2))
	perm := rng.Perm(n)
	for _, i := range perm {
		if err := tr.Insert(uint64(i), uint64(i*3)); err != nil {
			t.Fatalf("Insert(%d): %v", i, err)
		}
		if i%50 == 0 {
			if err := tr.Validate(); err != nil {
				t.Fatalf("Validate during inserts: %v", err)
			}
		}
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	h, _ := tr.Height()
	if h < 4 {
		t.Errorf("Height = %d, want >= 4 with capacity 4", h)
	}
	// Delete in a different random order, validating periodically.
	perm = rng.Perm(n)
	for j, i := range perm {
		ok, err := tr.Delete(uint64(i))
		if err != nil || !ok {
			t.Fatalf("Delete(%d) = (%v, %v)", i, ok, err)
		}
		if j%25 == 0 {
			if err := tr.Validate(); err != nil {
				t.Fatalf("Validate during deletes (after %d): %v", j+1, err)
			}
		}
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

// Oracle test: a long random workload of puts, deletes, and lookups
// must match a Go map exactly, and scans must match sorted keys.
func TestRandomWorkloadAgainstMapOracle(t *testing.T) {
	tr := newTree(t, 128)
	tr.setCapacity(6, 6)
	oracle := map[uint64]uint64{}
	rng := rand.New(rand.NewSource(99))
	const keySpace = 2000
	for step := 0; step < 20000; step++ {
		k := uint64(rng.Intn(keySpace))
		switch rng.Intn(3) {
		case 0: // put
			v := rng.Uint64()
			if err := tr.Put(k, v); err != nil {
				t.Fatalf("step %d Put(%d): %v", step, k, err)
			}
			oracle[k] = v
		case 1: // delete
			ok, err := tr.Delete(k)
			if err != nil {
				t.Fatalf("step %d Delete(%d): %v", step, k, err)
			}
			_, want := oracle[k]
			if ok != want {
				t.Fatalf("step %d Delete(%d) = %v, oracle %v", step, k, ok, want)
			}
			delete(oracle, k)
		default: // get
			v, ok, err := tr.Get(k)
			if err != nil {
				t.Fatalf("step %d Get(%d): %v", step, k, err)
			}
			want, wantOK := oracle[k]
			if ok != wantOK || (ok && v != want) {
				t.Fatalf("step %d Get(%d) = (%d,%v), oracle (%d,%v)", step, k, v, ok, want, wantOK)
			}
		}
	}
	if err := tr.Validate(); err != nil {
		t.Fatalf("final Validate: %v", err)
	}
	var wantKeys []uint64
	for k := range oracle {
		wantKeys = append(wantKeys, k)
	}
	sort.Slice(wantKeys, func(i, j int) bool { return wantKeys[i] < wantKeys[j] })
	var gotKeys []uint64
	if err := tr.Scan(0, ^uint64(0), func(k, v uint64) bool {
		gotKeys = append(gotKeys, k)
		if oracle[k] != v {
			t.Fatalf("scan value mismatch at %d", k)
		}
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if len(gotKeys) != len(wantKeys) {
		t.Fatalf("scan saw %d keys, oracle has %d", len(gotKeys), len(wantKeys))
	}
	for i := range wantKeys {
		if gotKeys[i] != wantKeys[i] {
			t.Fatalf("scan key %d = %d, want %d", i, gotKeys[i], wantKeys[i])
		}
	}
}

// Property: inserting any set of distinct keys yields a tree whose scan
// returns exactly the sorted set.
func TestInsertScanProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		tr := newTreeQuick()
		seen := map[uint64]bool{}
		var want []uint64
		for _, r := range raw {
			k := uint64(r)
			if seen[k] {
				continue
			}
			seen[k] = true
			want = append(want, k)
			if err := tr.Insert(k, k+1); err != nil {
				return false
			}
		}
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		var got []uint64
		if err := tr.Scan(0, ^uint64(0), func(k, v uint64) bool {
			if v != k+1 {
				return false
			}
			got = append(got, k)
			return true
		}); err != nil {
			return false
		}
		if len(got) != len(want) {
			return false
		}
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return tr.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func newTreeQuick() *Tree {
	d := disk.New(0)
	pool := buffer.New(d, 128, buffer.LRU)
	tr, err := Create(pool)
	if err != nil {
		panic(err)
	}
	tr.setCapacity(5, 5)
	return tr
}

func TestNoPinLeaks(t *testing.T) {
	tr := newTree(t, 16)
	for i := 0; i < 2000; i++ {
		if err := tr.Insert(uint64(i), 0); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 2000; i += 2 {
		if _, err := tr.Delete(uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := tr.Scan(0, ^uint64(0), func(uint64, uint64) bool { return true }); err != nil {
		t.Fatal(err)
	}
	if n := tr.pool.PinnedFrames(); n != 0 {
		t.Errorf("pinned frames = %d, want 0", n)
	}
}

func TestTreeSmallPool(t *testing.T) {
	// Pool far smaller than the tree: every operation faults pages in
	// and out; correctness must not depend on residency.
	d := disk.New(0)
	pool := buffer.New(d, 4, buffer.LRU)
	tr, err := Create(pool)
	if err != nil {
		t.Fatal(err)
	}
	const n = 4000
	for i := 0; i < n; i++ {
		if err := tr.Insert(uint64(i*7%n), uint64(i)); err != nil {
			t.Fatalf("Insert: %v", err)
		}
	}
	if got, _ := tr.Len(); got != n {
		t.Errorf("Len = %d, want %d", got, n)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}
