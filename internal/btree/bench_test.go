package btree

import (
	"testing"

	"revelation/internal/buffer"
	"revelation/internal/disk"
)

func benchTree(b *testing.B, frames int) *Tree {
	b.Helper()
	d := disk.New(0)
	pool := buffer.New(d, frames, buffer.LRU)
	tr, err := Create(pool)
	if err != nil {
		b.Fatal(err)
	}
	return tr
}

func BenchmarkInsertSequential(b *testing.B) {
	tr := benchTree(b, 1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := tr.Insert(uint64(i), uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkInsertScattered(b *testing.B) {
	tr := benchTree(b, 1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := tr.Put(uint64(i)*2654435761%1<<30, uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGetWarm(b *testing.B) {
	tr := benchTree(b, 1024)
	const n = 100000
	for i := 0; i < n; i++ {
		if err := tr.Insert(uint64(i), uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := uint64(i*7919) % n
		v, ok, err := tr.Get(k)
		if err != nil || !ok || v != k {
			b.Fatalf("Get(%d) = (%d,%v,%v)", k, v, ok, err)
		}
	}
}

func BenchmarkGetColdSmallPool(b *testing.B) {
	// A 16-frame pool over a ~100k-key tree: most descents fault.
	d := disk.New(0)
	pool := buffer.New(d, 1024, buffer.LRU)
	tr, err := Create(pool)
	if err != nil {
		b.Fatal(err)
	}
	const n = 100000
	for i := 0; i < n; i++ {
		if err := tr.Insert(uint64(i), uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
	small := buffer.New(d, 16, buffer.LRU)
	if err := pool.FlushAll(); err != nil {
		b.Fatal(err)
	}
	cold := Open(small, tr.Root())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := uint64(i*7919) % n
		if _, _, err := cold.Get(k); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkScan(b *testing.B) {
	tr := benchTree(b, 1024)
	const n = 50000
	for i := 0; i < n; i++ {
		if err := tr.Insert(uint64(i), uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		count := 0
		if err := tr.Scan(0, ^uint64(0), func(uint64, uint64) bool {
			count++
			return true
		}); err != nil {
			b.Fatal(err)
		}
		if count != n {
			b.Fatalf("scan saw %d", count)
		}
	}
}

func BenchmarkDelete(b *testing.B) {
	tr := benchTree(b, 2048)
	for i := 0; i < b.N; i++ {
		if err := tr.Insert(uint64(i), uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tr.Delete(uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
}
