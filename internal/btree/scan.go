package btree

import (
	"fmt"

	"revelation/internal/disk"
)

// Scan visits every (key, value) with from <= key <= to in ascending
// key order, following leaf sibling links. fn returning false stops the
// scan early.
func (t *Tree) Scan(from, to uint64, fn func(k, v uint64) bool) error {
	// Descend to the leaf that could contain `from`.
	id := t.root
	for {
		f, err := t.pool.Fix(id)
		if err != nil {
			return err
		}
		b := f.Data()
		if isLeaf(b) {
			if err := t.pool.Unfix(f, false); err != nil {
				return err
			}
			break
		}
		next := intChild(b, intSearch(b, from))
		if err := t.pool.Unfix(f, false); err != nil {
			return err
		}
		id = next
	}
	// Walk the leaf chain.
	for id != disk.InvalidPage {
		f, err := t.pool.Fix(id)
		if err != nil {
			return err
		}
		b := f.Data()
		n := nkeys(b)
		i := leafSearch(b, from)
		for ; i < n; i++ {
			k := leafKey(b, i)
			if k > to {
				return t.pool.Unfix(f, false)
			}
			if !fn(k, leafVal(b, i)) {
				return t.pool.Unfix(f, false)
			}
		}
		next := leafNext(b)
		if err := t.pool.Unfix(f, false); err != nil {
			return err
		}
		id = next
	}
	return nil
}

// Len counts the keys in the tree (a full leaf-chain walk).
func (t *Tree) Len() (int, error) {
	n := 0
	err := t.Scan(0, ^uint64(0), func(uint64, uint64) bool { n++; return true })
	return n, err
}

// Height returns the number of levels (1 for a lone leaf root).
func (t *Tree) Height() (int, error) {
	h := 1
	id := t.root
	for {
		f, err := t.pool.Fix(id)
		if err != nil {
			return 0, err
		}
		b := f.Data()
		leaf := isLeaf(b)
		next := disk.InvalidPage
		if !leaf {
			next = intChild(b, 0)
		}
		if err := t.pool.Unfix(f, false); err != nil {
			return 0, err
		}
		if leaf {
			return h, nil
		}
		h++
		id = next
	}
}

// Validate checks the structural invariants of the whole tree: key
// ordering within nodes, separator bounds, uniform leaf depth, and
// minimum fill of non-root nodes. It returns a descriptive error on the
// first violation; tests lean on it after randomized workloads.
func (t *Tree) Validate() error {
	depth := -1
	var check func(id disk.PageID, lo, hi uint64, isRoot bool, level int) error
	check = func(id disk.PageID, lo, hi uint64, isRoot bool, level int) error {
		f, err := t.pool.Fix(id)
		if err != nil {
			return err
		}
		defer t.pool.Unfix(f, false)
		b := f.Data()
		n := nkeys(b)
		pageSize := len(b)
		if isLeaf(b) {
			if depth == -1 {
				depth = level
			} else if depth != level {
				return fmt.Errorf("btree: leaf %d at depth %d, expected %d", id, level, depth)
			}
			if !isRoot && n < t.minLeaf(pageSize) {
				return fmt.Errorf("btree: leaf %d under-full: %d keys", id, n)
			}
			var prev uint64
			for i := 0; i < n; i++ {
				k := leafKey(b, i)
				if i > 0 && k <= prev {
					return fmt.Errorf("btree: leaf %d keys out of order at %d", id, i)
				}
				if k < lo {
					return fmt.Errorf("btree: leaf %d key %d below bound %d", id, k, lo)
				}
				if k > hi {
					return fmt.Errorf("btree: leaf %d key %d above bound %d", id, k, hi)
				}
				prev = k
			}
			return nil
		}
		if !isRoot && n < t.minInt(pageSize) {
			return fmt.Errorf("btree: internal %d under-full: %d keys", id, n)
		}
		if n == 0 && !isRoot {
			return fmt.Errorf("btree: internal %d empty", id)
		}
		prevKey := lo
		for i := 0; i < n; i++ {
			k := intKey(b, i)
			if i > 0 && k <= prevKey {
				return fmt.Errorf("btree: internal %d separators out of order at %d", id, i)
			}
			prevKey = k
		}
		for i := 0; i <= n; i++ {
			clo, chi := lo, hi
			if i > 0 {
				clo = intKey(b, i-1)
			}
			if i < n {
				chi = intKey(b, i) - 1
			}
			if err := check(intChild(b, i), clo, chi, false, level+1); err != nil {
				return err
			}
		}
		return nil
	}
	return check(t.root, 0, ^uint64(0), true, 0)
}
