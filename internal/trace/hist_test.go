package trace

import (
	"strings"
	"testing"
)

// Quantile is the quantile estimator behind /tracez and /statusz
// latency lines, so its contract gets spelled out in full: it returns
// the exclusive upper edge of the power-of-two bucket holding the
// q-quantile sample — an upper bound with factor-of-two resolution.

func TestQuantileEmpty(t *testing.T) {
	var h Hist
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if got := h.Quantile(q); got != 0 {
			t.Errorf("empty hist Quantile(%g) = %d, want 0", q, got)
		}
	}
}

func TestQuantileSingleSample(t *testing.T) {
	cases := []struct {
		v, want int64
	}{
		{0, 0}, // bucket 0 is exact
		{1, 2}, // [1,2) rounds up to its edge
		{2, 4}, // [2,4)
		{3, 4},
		{100, 128}, // [64,128)
	}
	for _, c := range cases {
		var h Hist
		h.Add(c.v)
		for _, q := range []float64{0.01, 0.5, 0.99, 1} {
			if got := h.Quantile(q); got != c.want {
				t.Errorf("hist{%d}.Quantile(%g) = %d, want %d", c.v, q, got, c.want)
			}
		}
	}
}

func TestQuantileUpperBoundInvariant(t *testing.T) {
	// Whatever the mix, Quantile(q) must bound at least ceil(q*n)
	// samples from above: count samples <= the returned edge.
	var h Hist
	samples := []int64{0, 1, 1, 3, 7, 9, 15, 100, 1000, 4096}
	for _, v := range samples {
		h.Add(v)
	}
	for _, q := range []float64{0.1, 0.25, 0.5, 0.9, 0.99, 1} {
		edge := h.Quantile(q)
		covered := 0
		for _, v := range samples {
			if v <= edge {
				covered++
			}
		}
		want := int(q * float64(len(samples)))
		if want < 1 {
			want = 1
		}
		if covered < want {
			t.Errorf("Quantile(%g) = %d covers %d of %d samples, want >= %d",
				q, edge, covered, len(samples), want)
		}
	}
}

func TestQuantileBucketEdges(t *testing.T) {
	// Ten samples spread 1..10: p50's sample lands in [4,8), p100's in
	// [8,16). The estimator answers with those buckets' upper edges.
	var h Hist
	for v := int64(1); v <= 10; v++ {
		h.Add(v)
	}
	if got := h.Quantile(0.5); got != 8 {
		t.Errorf("p50 = %d, want 8", got)
	}
	if got := h.Quantile(1); got != 16 {
		t.Errorf("p100 = %d, want 16", got)
	}
	// 10% of ten samples is exactly the first: value 1, bucket [1,2).
	if got := h.Quantile(0.1); got != 2 {
		t.Errorf("p10 = %d, want 2", got)
	}
}

func TestQuantileTinyQClampsToFirstSample(t *testing.T) {
	// q so small that q*n rounds to zero still answers from the first
	// occupied bucket, never from thin air.
	var h Hist
	h.Add(5)
	h.Add(1000)
	if got := h.Quantile(0.0001); got != 8 {
		t.Errorf("Quantile(0.0001) = %d, want 8 (edge of [4,8) holding 5)", got)
	}
}

func TestQuantileSkewedMass(t *testing.T) {
	// 99 zeros and one huge outlier: every quantile up to p99 is 0, and
	// only the very top feels the outlier.
	var h Hist
	for i := 0; i < 99; i++ {
		h.Add(0)
	}
	h.Add(1 << 30)
	if got := h.Quantile(0.5); got != 0 {
		t.Errorf("p50 = %d, want 0", got)
	}
	if got := h.Quantile(0.99); got != 0 {
		t.Errorf("p99 = %d, want 0", got)
	}
	if got := h.Quantile(1); got != 1<<31 {
		t.Errorf("p100 = %d, want %d", got, int64(1)<<31)
	}
}

func TestQuantileAfterMerge(t *testing.T) {
	var a, b Hist
	for i := 0; i < 50; i++ {
		a.Add(1)  // bucket [1,2)
		b.Add(64) // bucket [64,128)
	}
	a.Merge(b)
	if a.Count != 100 {
		t.Fatalf("merged count %d, want 100", a.Count)
	}
	if got := a.Quantile(0.5); got != 2 {
		t.Errorf("merged p50 = %d, want 2", got)
	}
	if got := a.Quantile(0.9); got != 128 {
		t.Errorf("merged p90 = %d, want 128", got)
	}
	if a.Max != 64 {
		t.Errorf("merged max %d, want 64", a.Max)
	}
}

func TestQuantileNegativeSamplesClamp(t *testing.T) {
	var h Hist
	h.Add(-17)
	if h.Count != 1 || h.Sum != 0 || h.Max != 0 {
		t.Fatalf("negative add booked count=%d sum=%d max=%d, want 1/0/0", h.Count, h.Sum, h.Max)
	}
	if got := h.Quantile(0.5); got != 0 {
		t.Errorf("p50 = %d, want 0", got)
	}
}

func TestHistStringQuotesQuantiles(t *testing.T) {
	var h Hist
	for v := int64(1); v <= 10; v++ {
		h.Add(v)
	}
	s := h.String()
	if !strings.Contains(s, "p50<=8") || !strings.Contains(s, "p99<=16") {
		t.Errorf("String() missing quantile summary:\n%s", s)
	}
}
