package trace_test

import (
	"testing"

	"revelation/internal/assembly"
	"revelation/internal/gen"
	"revelation/internal/trace"
)

// elevatorModel replays the assembly-layer events of an elevator run
// against a model of the SCAN discipline: a multiset of pending pages
// (fed by pend events, drained by choose events) and a sweep direction.
// Every choose must pick the nearest pending page in the current
// direction; the direction may change only when the current sweep has
// no pending page left — never mid-sweep.
//
// The run must be abort-, fault-, and batch-free so that pend/choose
// events pair one-to-one and no dead references linger in the model.
func elevatorModel(t *testing.T, events []trace.Event) {
	t.Helper()
	pending := map[int64]int{}
	// candidates returns the nearest pending page at or above h (the
	// up candidate) and the farthest-advanced one below h (down).
	candidates := func(h int64) (up, down int64, hasUp, hasDown bool) {
		for p, n := range pending {
			if n <= 0 {
				continue
			}
			if p >= h {
				if !hasUp || p < up {
					up, hasUp = p, true
				}
			} else {
				if !hasDown || p > down {
					down, hasDown = p, true
				}
			}
		}
		return
	}
	dirUp := true
	chooses := 0
	for _, e := range events {
		if e.Layer != trace.LayerAssembly {
			continue
		}
		switch e.Kind {
		case trace.KindPend:
			pending[e.Page]++
		case trace.KindTake:
			t.Fatalf("seq %d: page-batch take in a batch-free run", e.Seq)
		case trace.KindChoose:
			chooses++
			h, p := e.Head, e.Page
			up, down, hasUp, hasDown := candidates(h)
			if !hasUp && !hasDown {
				t.Fatalf("seq %d: choose page %d with empty pending set", e.Seq, p)
			}
			if dirUp {
				if hasUp {
					if p != up {
						t.Fatalf("seq %d: sweeping up from head %d, chose page %d, nearest pending above is %d", e.Seq, h, p, up)
					}
				} else {
					// Legal reversal: nothing left above the head.
					if p != down {
						t.Fatalf("seq %d: reversing down from head %d, chose page %d, want %d", e.Seq, h, p, down)
					}
					dirUp = false
				}
			} else {
				if hasDown {
					// Exact hits are served in place regardless of
					// direction; otherwise the sweep continues down.
					want := down
					if hasUp && up == h {
						want = h
					}
					if p != want {
						t.Fatalf("seq %d: sweeping down from head %d, chose page %d, want %d", e.Seq, h, p, want)
					}
				} else {
					if p != up {
						t.Fatalf("seq %d: reversing up from head %d, chose page %d, want %d", e.Seq, h, p, up)
					}
					dirUp = true
				}
			}
			if pending[p] <= 0 {
				t.Fatalf("seq %d: chose page %d that was never pended", e.Seq, p)
			}
			pending[p]--
		}
	}
	if chooses == 0 {
		t.Fatal("trace contains no scheduling decisions")
	}
	for p, n := range pending {
		if n != 0 {
			t.Errorf("page %d left with %d unresolved pends after the run", p, n)
		}
	}
}

// TestElevatorSweepProperty checks the elevator invariant on a real
// traced run across the clustering policies: the head never reverses
// direction while the current sweep still has pending work.
func TestElevatorSweepProperty(t *testing.T) {
	for _, cl := range []gen.Clustering{gen.Unclustered, gen.InterObject, gen.IntraObject} {
		t.Run(cl.String(), func(t *testing.T) {
			db, err := gen.Build(gen.Config{
				NumComplexObjects: 150,
				Clustering:        cl,
				Seed:              91,
			})
			if err != nil {
				t.Fatalf("gen.Build: %v", err)
			}
			coldStart(t, db)
			r, events, _, _ := tracedAssembly(t, db, assembly.Options{Window: 10, Scheduler: assembly.Elevator})
			elevatorModel(t, events)
			if r.PeakWindow > 10 {
				t.Errorf("peak window occupancy %d exceeds configured window 10", r.PeakWindow)
			}
		})
	}
}

// TestWindowOccupancyBound checks the second window property across
// schedulers and window sizes: replayed occupancy never exceeds the
// configured W, and every admitted object eventually leaves the window.
func TestWindowOccupancyBound(t *testing.T) {
	db, err := gen.Build(gen.Config{
		NumComplexObjects: 150,
		Clustering:        gen.Unclustered,
		Seed:              91,
	})
	if err != nil {
		t.Fatalf("gen.Build: %v", err)
	}
	for _, kind := range []assembly.SchedulerKind{
		assembly.DepthFirst, assembly.BreadthFirst, assembly.Elevator,
	} {
		for _, w := range []int{1, 7, 50} {
			coldStart(t, db)
			r, _, _, _ := tracedAssembly(t, db, assembly.Options{Window: w, Scheduler: kind})
			if r.PeakWindow > w {
				t.Errorf("%s W=%d: peak occupancy %d exceeds window", kind, w, r.PeakWindow)
			}
			if r.PeakWindow == 0 {
				t.Errorf("%s W=%d: no occupancy recorded", kind, w)
			}
			if last := r.Occupancy[len(r.Occupancy)-1].Live; last != 0 {
				t.Errorf("%s W=%d: window not empty at end of run: %d live", kind, w, last)
			}
			if r.Admitted != 150 || r.Assembled != 150 {
				t.Errorf("%s W=%d: admitted %d assembled %d, want 150/150", kind, w, r.Admitted, r.Assembled)
			}
		}
	}
}
