package trace

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// Replay is the reconstruction of one run from its event stream alone.
// For a correctly instrumented run every field equals the counter the
// live layers reported — that equality is what turns a traced benchmark
// into a self-checking experiment.
type Replay struct {
	Events int
	// Counts is the per layer/kind event census, keyed "layer/kind".
	Counts map[string]int64

	// Disk reconstruction.
	Reads, Writes        int64
	SeekTotal, SeekReads int64
	MaxSeek              int64
	// Reversals counts head direction changes across consecutive reads
	// — the quantity elevator scheduling exists to minimize.
	Reversals int
	// SeekHist is the seek-distance distribution over reads and writes.
	SeekHist Hist

	// Buffer reconstruction.
	Hits, Misses, Evictions, Flushes, Unfixes int64
	ChecksumFails                             int64

	// Fault reconstruction.
	FaultsTransient, FaultsPermanent int64

	// Durability reconstruction.
	WALAppends, WALFsyncs, Redone int64

	// Network reconstruction (page-service client events).
	NetSends, NetRecvs, NetErrors int64
	NetTimeouts                   int64
	Hedges, Failovers, Reconnects int64
	// Fleet control-plane activity: replica promotions and resharding
	// cutovers (pages flipped to their new owner).
	Promotions, PagesMigrated int64

	// Assembly reconstruction.
	Admitted, Assembled, Aborted, Quarantined int
	Retries, Stalls, Fetched, Links, Chosen   int

	// Window occupancy over time: one point per change, plus the peak.
	Occupancy  []OccPoint
	PeakWindow int
}

// OccPoint is the window occupancy after the event at Seq.
type OccPoint struct {
	Seq  uint64
	Live int
}

// AvgSeekPerRead is the paper's metric, reconstructed: read-attributed
// seek distance over reads.
func (r *Replay) AvgSeekPerRead() float64 {
	if r.Reads == 0 {
		return 0
	}
	return float64(r.SeekReads) / float64(r.Reads)
}

// Stats summarizes the reconstruction in RunStats form for comparison
// against a harness-reported snapshot.
func (r *Replay) Stats() RunStats {
	return RunStats{
		Reads:     r.Reads,
		SeekReads: r.SeekReads,
		SeekTotal: r.SeekTotal,
		Assembled: r.Assembled,
		Aborted:   r.Aborted,
		Skipped:   r.Quarantined,
		Retries:   r.Retries,
		Stalls:    r.Stalls,
	}
}

// ReplayEvents reconstructs a run from its events.
func ReplayEvents(events []Event) *Replay {
	r := &Replay{Counts: map[string]int64{}}
	live := 0
	lastDir := 0 // -1 down, +1 up, 0 unknown
	occ := func(seq uint64, delta int) {
		live += delta
		if live > r.PeakWindow {
			r.PeakWindow = live
		}
		r.Occupancy = append(r.Occupancy, OccPoint{Seq: seq, Live: live})
	}
	for _, e := range events {
		r.Events++
		r.Counts[e.Layer+"/"+e.Kind]++
		switch e.Layer {
		case LayerDisk:
			switch e.Kind {
			case KindRead:
				r.Reads++
				r.SeekTotal += e.Dist
				r.SeekReads += e.Dist
				if e.Dist > r.MaxSeek {
					r.MaxSeek = e.Dist
				}
				r.SeekHist.Add(e.Dist)
				if e.Dist != 0 {
					dir := 1
					if e.Page < e.Head {
						dir = -1
					}
					if lastDir != 0 && dir != lastDir {
						r.Reversals++
					}
					lastDir = dir
				}
			case KindWrite:
				r.Writes++
				r.SeekTotal += e.Dist
				if e.Dist > r.MaxSeek {
					r.MaxSeek = e.Dist
				}
				r.SeekHist.Add(e.Dist)
			case KindFault:
				if e.Note == "permanent" {
					r.FaultsPermanent++
				} else {
					r.FaultsTransient++
				}
			}
		case LayerBuffer:
			switch e.Kind {
			case KindHit:
				r.Hits++
			case KindMiss:
				r.Misses++
			case KindEvict:
				r.Evictions++
			case KindFlush:
				r.Flushes++
			case KindUnfix:
				r.Unfixes++
			case KindChecksumFail:
				r.ChecksumFails++
			}
		case LayerWAL:
			switch e.Kind {
			case KindAppend:
				r.WALAppends++
			case KindFsync:
				r.WALFsyncs++
			}
		case LayerRecover:
			if e.Kind == KindRedo {
				r.Redone++
			}
		case LayerNet:
			switch e.Kind {
			case KindSend:
				r.NetSends++
			case KindRecv:
				r.NetRecvs++
				if e.N != 0 {
					r.NetErrors++
				}
			case KindTimeout:
				r.NetTimeouts++
			case KindHedge:
				r.Hedges++
			case KindFailover:
				r.Failovers++
			case KindReconnect:
				r.Reconnects++
			case KindPromote:
				r.Promotions++
			case KindMigrate:
				r.PagesMigrated += e.N
			}
		case LayerAssembly:
			switch e.Kind {
			case KindAdmit:
				r.Admitted++
				occ(e.Seq, +1)
			case KindEmit:
				r.Assembled++
				occ(e.Seq, -1)
			case KindAbort:
				r.Aborted++
				occ(e.Seq, -1)
			case KindQuarantine:
				r.Quarantined++
				occ(e.Seq, -1)
			case KindRetry:
				r.Retries++
			case KindStall:
				r.Stalls++
			case KindFetch:
				r.Fetched++
			case KindLink:
				r.Links++
			case KindChoose:
				r.Chosen++
			}
		}
	}
	return r
}

// FilterQuery slices an event stream to one query's events: those
// carrying the given QID. Bench run markers (which are never
// query-attributed) are dropped, so the result replays as a single
// unnamed run.
func FilterQuery(events []Event, qid uint64) []Event {
	var out []Event
	for _, e := range events {
		if e.QID == qid && e.Layer != LayerBench {
			out = append(out, e)
		}
	}
	return out
}

// Run is one harness-delimited segment of a trace: the events between a
// bench begin marker and its matching end (markers excluded).
type Run struct {
	// Name is the begin marker's note; empty for events outside any run.
	Name string
	// Window is the configured window size from the begin marker.
	Window int
	// Events are the run's events, markers excluded.
	Events []Event
	// Reported is the harness-reported counter snapshot from the end
	// marker; nil when the run never ended.
	Reported *RunStats
}

// SplitRuns partitions a trace into harness runs. Events before the
// first begin marker (or in a markerless trace) form an unnamed run.
func SplitRuns(events []Event) []Run {
	var runs []Run
	cur := Run{}
	flush := func() {
		if cur.Name != "" || len(cur.Events) > 0 {
			runs = append(runs, cur)
		}
		cur = Run{}
	}
	for _, e := range events {
		if e.Layer == LayerBench {
			switch e.Kind {
			case KindBegin:
				flush()
				cur = Run{Name: e.Note, Window: int(e.N)}
			case KindEnd:
				if e.Stats != nil {
					s := *e.Stats
					cur.Reported = &s
				}
				flush()
			}
			continue
		}
		cur.Events = append(cur.Events, e)
	}
	flush()
	return runs
}

// Verify replays the run and compares the reconstruction against the
// harness-reported counters, returning a descriptive error on the first
// mismatch. Runs without an end marker verify vacuously.
func (run Run) Verify() (*Replay, error) {
	r := ReplayEvents(run.Events)
	if run.Reported == nil {
		return r, nil
	}
	got, want := r.Stats(), *run.Reported
	if got != want {
		return r, fmt.Errorf("trace: run %q: replay %+v != reported %+v", run.Name, got, want)
	}
	return r, nil
}

// ReplayReader reads a JSONL stream and reconstructs it as one run.
func ReplayReader(rd io.Reader) (*Replay, error) {
	events, err := ReadAll(rd)
	if err != nil {
		return nil, err
	}
	return ReplayEvents(events), nil
}

// Summary renders the per-layer event census as an indented,
// flamegraph-style table: layers sorted by event volume, kinds nested
// under them with proportional bars.
func (r *Replay) Summary() string {
	type kindCount struct {
		kind string
		n    int64
	}
	byLayer := map[string][]kindCount{}
	layerTotal := map[string]int64{}
	for key, n := range r.Counts {
		layer, kind, _ := strings.Cut(key, "/")
		byLayer[layer] = append(byLayer[layer], kindCount{kind, n})
		layerTotal[layer] += n
	}
	layers := make([]string, 0, len(byLayer))
	for l := range byLayer {
		layers = append(layers, l)
	}
	sort.Slice(layers, func(i, j int) bool {
		if layerTotal[layers[i]] != layerTotal[layers[j]] {
			return layerTotal[layers[i]] > layerTotal[layers[j]]
		}
		return layers[i] < layers[j]
	})
	total := int64(r.Events)
	if total == 0 {
		return "(no events)"
	}
	var b strings.Builder
	for _, l := range layers {
		fmt.Fprintf(&b, "%-10s %8d events (%5.1f%%)\n", l, layerTotal[l], 100*float64(layerTotal[l])/float64(total))
		kinds := byLayer[l]
		sort.Slice(kinds, func(i, j int) bool {
			if kinds[i].n != kinds[j].n {
				return kinds[i].n > kinds[j].n
			}
			return kinds[i].kind < kinds[j].kind
		})
		for _, kc := range kinds {
			bar := int(30 * kc.n / layerTotal[l])
			if bar == 0 {
				bar = 1
			}
			fmt.Fprintf(&b, "  %-12s %8d (%5.1f%%) %s\n", kc.kind, kc.n,
				100*float64(kc.n)/float64(layerTotal[l]), strings.Repeat("#", bar))
		}
	}
	return b.String()
}

// Sparkline renders vals as a one-line text sparkline scaled against
// peak, downsampled to at most width points; each output rune is the
// peak within its bucket, so short spikes stay visible. It is shared by
// the replay's occupancy table and the live /statusz page.
func Sparkline(vals []int, peak, width int) string {
	if len(vals) == 0 {
		return ""
	}
	if width < 1 {
		width = 60
	}
	step := 1
	if len(vals) > width {
		step = (len(vals) + width - 1) / width
	}
	levels := []rune(" .:-=+*#%@")
	var line strings.Builder
	for i := 0; i < len(vals); i += step {
		lvl := 0
		for j := i; j < i+step && j < len(vals); j++ {
			if vals[j] > lvl {
				lvl = vals[j]
			}
		}
		idx := 0
		if peak > 0 {
			idx = lvl * (len(levels) - 1) / peak
		}
		line.WriteRune(levels[idx])
	}
	return line.String()
}

// OccupancyTable downsamples the occupancy series to at most width
// points and renders it as a text sparkline over event sequence.
func (r *Replay) OccupancyTable(width int) string {
	if len(r.Occupancy) == 0 {
		return "(no window activity)"
	}
	pts := r.Occupancy
	vals := make([]int, len(pts))
	for i, p := range pts {
		vals[i] = p.Live
	}
	var b strings.Builder
	fmt.Fprintf(&b, "window occupancy over %d changes, peak %d\n", len(pts), r.PeakWindow)
	fmt.Fprintf(&b, "  [%s]\n", Sparkline(vals, r.PeakWindow, width))
	fmt.Fprintf(&b, "  seq %d..%d\n", pts[0].Seq, pts[len(pts)-1].Seq)
	return b.String()
}
