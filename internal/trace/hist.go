package trace

import (
	"fmt"
	"math/bits"
	"strings"
)

// histBuckets is enough for any int64 value: bucket i holds values v
// with bitlen(v) == i, i.e. bucket 0 holds 0, bucket i (i>0) holds
// [2^(i-1), 2^i).
const histBuckets = 64

// Hist is a power-of-two histogram of non-negative int64 samples (seek
// distances in pages, latencies in nanoseconds). The zero value is
// ready to use; copying snapshots it.
type Hist struct {
	Buckets [histBuckets]int64
	Count   int64
	Sum     int64
	Max     int64
}

// bucketOf maps a sample to its bucket index.
func bucketOf(v int64) int {
	if v <= 0 {
		return 0
	}
	return bits.Len64(uint64(v))
}

// Add records one sample; negative samples clamp to zero.
func (h *Hist) Add(v int64) {
	if v < 0 {
		v = 0
	}
	h.Buckets[bucketOf(v)]++
	h.Count++
	h.Sum += v
	if v > h.Max {
		h.Max = v
	}
}

// Merge adds every sample of o into h.
func (h *Hist) Merge(o Hist) {
	for i, n := range o.Buckets {
		h.Buckets[i] += n
	}
	h.Count += o.Count
	h.Sum += o.Sum
	if o.Max > h.Max {
		h.Max = o.Max
	}
}

// Mean returns the average sample, or zero when empty.
func (h Hist) Mean() float64 {
	if h.Count == 0 {
		return 0
	}
	return float64(h.Sum) / float64(h.Count)
}

// Quantile returns an upper bound for the q-quantile (0 < q <= 1): the
// exclusive upper edge of the bucket containing it. Resolution is a
// factor of two, which is all a scheduling comparison needs.
func (h Hist) Quantile(q float64) int64 {
	if h.Count == 0 {
		return 0
	}
	target := int64(q * float64(h.Count))
	if target < 1 {
		target = 1
	}
	var seen int64
	for i, n := range h.Buckets {
		seen += n
		if seen >= target {
			if i == 0 {
				return 0
			}
			return 1 << uint(i)
		}
	}
	return h.Max
}

// String renders the non-empty buckets as a compact bar chart, one line
// per bucket: range, count, and a proportional bar.
func (h Hist) String() string {
	if h.Count == 0 {
		return "(empty)"
	}
	var peak int64
	hi := 0
	for i, n := range h.Buckets {
		if n > peak {
			peak = n
		}
		if n > 0 {
			hi = i
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "n=%d mean=%.1f max=%d p50<=%d p99<=%d\n",
		h.Count, h.Mean(), h.Max, h.Quantile(0.50), h.Quantile(0.99))
	for i := 0; i <= hi; i++ {
		n := h.Buckets[i]
		if n == 0 {
			continue
		}
		lo, hiEdge := int64(0), int64(0)
		if i > 0 {
			lo, hiEdge = 1<<uint(i-1), 1<<uint(i)-1
		}
		bar := int(40 * n / peak)
		if bar == 0 {
			bar = 1
		}
		fmt.Fprintf(&b, "  [%8d..%8d] %8d %s\n", lo, hiEdge, n, strings.Repeat("#", bar))
	}
	return b.String()
}
