package trace_test

import (
	"testing"

	"revelation/internal/assembly"
	"revelation/internal/disk"
	"revelation/internal/gen"
	"revelation/internal/stats"
	"revelation/internal/trace"
	"revelation/internal/volcano"
)

// coldStart resets a generated database to the state every benchmark
// run begins from: empty pool, zeroed counters, head parked at 0.
func coldStart(t *testing.T, db *gen.Database) {
	t.Helper()
	if err := db.Pool.EvictAll(); err != nil {
		t.Fatalf("EvictAll: %v", err)
	}
	db.Pool.ResetStats()
	db.Device.ResetStats()
	db.Device.ResetHead()
}

// tracedAssembly runs one assembly pass over db with every layer
// traced into a collector and returns the replay and raw events next
// to the layers' own counters.
func tracedAssembly(t *testing.T, db *gen.Database, opts assembly.Options) (*trace.Replay, []trace.Event, disk.Stats, assembly.Stats) {
	t.Helper()
	col := &trace.Collector{}
	tr := trace.New(col)
	disk.AttachTracer(db.Device, tr)
	db.Pool.SetTracer(tr)
	defer func() {
		disk.AttachTracer(db.Device, nil)
		db.Pool.SetTracer(nil)
	}()
	opts.Tracer = tr

	items := make([]volcano.Item, len(db.Roots))
	for i, root := range db.Roots {
		items[i] = root
	}
	op := assembly.New(volcano.NewSlice(items), db.Store, db.Template, opts)
	n, err := volcano.Count(op)
	if err != nil {
		t.Fatalf("assembly run: %v", err)
	}
	st := op.Stats()
	if n != st.Assembled {
		t.Fatalf("drained %d items but operator assembled %d", n, st.Assembled)
	}
	events := col.Events()
	return trace.ReplayEvents(events), events, db.Device.Stats(), st
}

// TestReplayMatchesStats is the tentpole contract: for every scheduling
// policy, replaying the event trace must reconstruct the device's seek
// accounting and the operator's assembly counters exactly — the same
// equality cmd/asmtrace enforces on recorded benchmark runs.
func TestReplayMatchesStats(t *testing.T) {
	for _, kind := range []assembly.SchedulerKind{
		assembly.DepthFirst, assembly.BreadthFirst, assembly.Elevator,
	} {
		t.Run(kind.String(), func(t *testing.T) {
			db, err := gen.Build(gen.Config{
				NumComplexObjects: 120,
				Clustering:        gen.Unclustered,
				Seed:              91,
			})
			if err != nil {
				t.Fatalf("gen.Build: %v", err)
			}
			coldStart(t, db)
			r, _, dev, st := tracedAssembly(t, db, assembly.Options{Window: 25, Scheduler: kind})

			got := r.Stats()
			want := trace.RunStats{
				Reads:     dev.Reads,
				SeekReads: dev.SeekReads,
				SeekTotal: dev.SeekTotal,
				Assembled: st.Assembled,
				Aborted:   st.Aborted,
				Skipped:   st.Skipped,
				Retries:   st.FaultRetries,
				Stalls:    st.WindowStalls,
			}
			if got != want {
				t.Errorf("replay %+v != live counters %+v", got, want)
			}
			if r.Reads == 0 || r.Assembled != 120 {
				t.Errorf("degenerate run: %d reads, %d assembled", r.Reads, r.Assembled)
			}
			if r.AvgSeekPerRead() != dev.AvgSeekPerRead() {
				t.Errorf("replay avg seek %v != device %v", r.AvgSeekPerRead(), dev.AvgSeekPerRead())
			}
			// The buffer layer must agree too.
			pool := db.Pool.Stats()
			if r.Hits != pool.Hits || r.Misses != pool.Faults {
				t.Errorf("replay hits/misses %d/%d != pool %d/%d", r.Hits, r.Misses, pool.Hits, pool.Faults)
			}
			if r.Evictions != pool.Evictions {
				t.Errorf("replay evictions %d != pool %d", r.Evictions, pool.Evictions)
			}
		})
	}
}

// TestReplayMatchesFaultReport extends the cross-check to a faulty
// device: the replayed fault, retry, quarantine, and stall counts must
// equal the stats.FaultReport the live layers produce.
func TestReplayMatchesFaultReport(t *testing.T) {
	for _, tc := range []struct {
		name   string
		policy assembly.FaultPolicy
	}{
		{"retry", assembly.RetryFaults},
		{"skip-object", assembly.SkipObject},
	} {
		t.Run(tc.name, func(t *testing.T) {
			// Fresh Faulty per policy: FaultStats accumulate for the
			// device's lifetime.
			fd := disk.NewFaulty(disk.New(0), disk.FaultConfig{})
			db, err := gen.Build(gen.Config{
				NumComplexObjects: 120,
				Clustering:        gen.Unclustered,
				Seed:              91,
				Device:            fd,
			})
			if err != nil {
				t.Fatalf("gen.Build: %v", err)
			}
			coldStart(t, db)
			fd.SetConfig(disk.FaultConfig{
				Seed:              7,
				TransientRate:     0.10,
				TransientFailures: 2,
				PermanentRate:     0.01,
			})
			r, _, _, st := tracedAssembly(t, db, assembly.Options{
				Window:      25,
				Scheduler:   assembly.Elevator,
				FaultPolicy: tc.policy,
			})

			report := stats.CollectFaults(fd, db.Pool, nil, st)
			if r.FaultsTransient != report.Device.Transient {
				t.Errorf("replay transient faults %d != injector %d", r.FaultsTransient, report.Device.Transient)
			}
			if r.FaultsPermanent != report.Device.Permanent {
				t.Errorf("replay permanent faults %d != injector %d", r.FaultsPermanent, report.Device.Permanent)
			}
			if r.Retries != report.FaultRetries {
				t.Errorf("replay retries %d != report %d", r.Retries, report.FaultRetries)
			}
			if r.Quarantined != report.Skipped {
				t.Errorf("replay quarantined %d != report %d", r.Quarantined, report.Skipped)
			}
			if r.Assembled != report.Assembled {
				t.Errorf("replay assembled %d != report %d", r.Assembled, report.Assembled)
			}
			if r.Stalls != report.WindowStalls {
				t.Errorf("replay stalls %d != report %d", r.Stalls, report.WindowStalls)
			}
			if r.Assembled+r.Quarantined != 120 {
				t.Errorf("assembled %d + quarantined %d != 120 admitted", r.Assembled, r.Quarantined)
			}
			// Under the skip policy some objects must actually be lost to
			// the injected permanent faults for the test to mean anything.
			if tc.policy == assembly.SkipObject && r.Quarantined == 0 {
				t.Error("skip-object run quarantined nothing; injector config too weak")
			}
			if tc.policy == assembly.RetryFaults && r.Retries == 0 {
				t.Error("retry run retried nothing; injector config too weak")
			}
		})
	}
}
