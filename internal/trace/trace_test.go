package trace_test

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"revelation/internal/trace"
)

// TestNilTracerIsSafe pins the no-op contract: every method of a nil
// *Tracer must be callable — instrumented layers carry nil tracers by
// default and guard with at most one branch.
func TestNilTracerIsSafe(t *testing.T) {
	var tr *trace.Tracer
	if tr.Enabled() {
		t.Error("nil tracer reports enabled")
	}
	tr.Disk(trace.KindRead, 3, 0, 3)
	tr.DiskFault(3, "transient")
	tr.Buffer(trace.KindHit, 3, 0)
	tr.Assembly(trace.KindAdmit, 1, trace.NoPage, trace.NoPage, "")
	tr.BeginRun("r", 1)
	tr.EndRun("r", trace.RunStats{})
	tr.Observe("k", time.Millisecond)
	if tr.Counts() != nil {
		t.Error("nil tracer returned counts")
	}
	if got := tr.LatencyKeys(); got != nil {
		t.Errorf("nil tracer returned latency keys %v", got)
	}
}

// TestWriterRoundTrip pins the JSONL wire format: events written by a
// Writer come back identical through ReadAll, in order, including the
// end-marker's embedded RunStats.
func TestWriterRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := trace.NewWriter(&buf)
	tr := trace.New(w)
	tr.BeginRun("roundtrip", 7)
	tr.Disk(trace.KindRead, 12, 4, 8)
	tr.Buffer(trace.KindMiss, 12, 0)
	tr.Assembly(trace.KindAdmit, 42, trace.NoPage, trace.NoPage, "")
	rs := trace.RunStats{Reads: 1, SeekReads: 8, SeekTotal: 8}
	tr.EndRun("roundtrip", rs)
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	events, err := trace.ReadAll(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("ReadAll: %v", err)
	}
	if len(events) != 5 {
		t.Fatalf("got %d events, want 5", len(events))
	}
	for i, e := range events {
		if e.Seq != uint64(i+1) {
			t.Errorf("event %d has seq %d", i, e.Seq)
		}
	}
	if e := events[1]; e.Layer != trace.LayerDisk || e.Kind != trace.KindRead || e.Page != 12 || e.Head != 4 || e.Dist != 8 {
		t.Errorf("disk event mangled: %+v", e)
	}
	last := events[4]
	if last.Stats == nil || *last.Stats != rs {
		t.Errorf("end marker stats mangled: %+v", last.Stats)
	}
	// The stream must be line-delimited JSON with fields in declaration
	// order — the stable schema asmtrace and the golden tests rely on.
	first := strings.SplitN(buf.String(), "\n", 2)[0]
	if !strings.HasPrefix(first, `{"seq":1,"layer":"bench","kind":"begin"`) {
		t.Errorf("unexpected field order: %s", first)
	}
}

// TestSplitRunsVerify exercises run segmentation: named runs split on
// markers, stray events land in an unnamed run, and Verify flags a
// forged end marker.
func TestSplitRunsVerify(t *testing.T) {
	col := &trace.Collector{}
	tr := trace.New(col)
	tr.Disk(trace.KindRead, 1, 0, 1) // before any run
	tr.BeginRun("a", 2)
	tr.Disk(trace.KindRead, 5, 1, 4)
	tr.EndRun("a", trace.RunStats{Reads: 1, SeekReads: 4, SeekTotal: 4})
	tr.BeginRun("b", 3)
	tr.Disk(trace.KindRead, 9, 5, 4)
	tr.EndRun("b", trace.RunStats{Reads: 99}) // forged

	runs := trace.SplitRuns(col.Events())
	if len(runs) != 3 {
		t.Fatalf("got %d runs, want 3", len(runs))
	}
	if runs[0].Name != "" || len(runs[0].Events) != 1 {
		t.Errorf("unnamed prelude run wrong: %+v", runs[0])
	}
	if runs[1].Name != "a" || runs[1].Window != 2 {
		t.Errorf("run a wrong: name=%q window=%d", runs[1].Name, runs[1].Window)
	}
	if _, err := runs[1].Verify(); err != nil {
		t.Errorf("run a failed verify: %v", err)
	}
	if _, err := runs[2].Verify(); err == nil {
		t.Error("forged run b passed verify")
	}
}

// TestTracerCountsAndHists covers the in-memory side: the per-key
// census, the seek histogram, and latency observation.
func TestTracerCountsAndHists(t *testing.T) {
	tr := trace.New()
	if !tr.Enabled() {
		t.Fatal("constructed tracer not enabled")
	}
	tr.Disk(trace.KindRead, 10, 0, 10)
	tr.Disk(trace.KindRead, 10, 10, 0)
	tr.Disk(trace.KindWrite, 20, 10, 10)
	tr.Buffer(trace.KindHit, 10, 0)
	tr.Observe("disk/read", 2*time.Microsecond)
	tr.Observe("disk/read", 4*time.Microsecond)

	counts := tr.Counts()
	if counts["disk/read"] != 2 || counts["disk/write"] != 1 || counts["buffer/hit"] != 1 {
		t.Errorf("census wrong: %v", counts)
	}
	// Reads and writes both feed the seek histogram: 10 + 0 + 10.
	if h := tr.SeekHist(); h.Count != 3 || h.Sum != 20 || h.Max != 10 {
		t.Errorf("seek hist wrong: %+v", h)
	}
	keys := tr.LatencyKeys()
	if len(keys) != 1 || keys[0] != "disk/read" {
		t.Errorf("latency keys wrong: %v", keys)
	}
	if h, ok := tr.LatencyHist("disk/read"); !ok || h.Count != 2 {
		t.Errorf("latency hist wrong: %+v", h)
	}
}

// TestHist pins the power-of-two histogram math.
func TestHist(t *testing.T) {
	var h trace.Hist
	for _, v := range []int64{0, 1, 1, 2, 3, 4, 100, -5} {
		h.Add(v)
	}
	if h.Count != 8 {
		t.Errorf("count %d, want 8", h.Count)
	}
	if h.Max != 100 {
		t.Errorf("max %d, want 100", h.Max)
	}
	// Negative values clamp into the zero bucket alongside true zeros.
	if h.Sum != 0+1+1+2+3+4+100 {
		t.Errorf("sum %d", h.Sum)
	}
	if m := h.Mean(); m <= 0 {
		t.Errorf("mean %v", m)
	}
	if q := h.Quantile(1.0); q < 64 {
		t.Errorf("p100 bucket upper bound %d, want >= 64 (holds 100)", q)
	}
	if q := h.Quantile(0); q > 1 {
		t.Errorf("p0 %d, want <= 1", q)
	}
	var other trace.Hist
	other.Add(7)
	h.Merge(other)
	if h.Count != 9 || h.Max != 100 {
		t.Errorf("merge wrong: count %d max %d", h.Count, h.Max)
	}
	if s := h.String(); !strings.Contains(s, "#") {
		t.Errorf("render has no bars:\n%s", s)
	}
}

// TestReplayReversals checks the direction-change reconstruction on a
// synthetic stream: up, up, down is one reversal.
func TestReplayReversals(t *testing.T) {
	col := &trace.Collector{}
	tr := trace.New(col)
	tr.Disk(trace.KindRead, 10, 0, 10)
	tr.Disk(trace.KindRead, 20, 10, 10)
	tr.Disk(trace.KindRead, 5, 20, 15)
	r := trace.ReplayEvents(col.Events())
	if r.Reversals != 1 {
		t.Errorf("reversals %d, want 1", r.Reversals)
	}
	if r.MaxSeek != 15 || r.SeekReads != 35 {
		t.Errorf("seek reconstruction wrong: max %d total %d", r.MaxSeek, r.SeekReads)
	}
	if s := r.Summary(); !strings.Contains(s, "disk") {
		t.Errorf("summary missing disk layer:\n%s", s)
	}
}
