// Package trace is the observability substrate of the reproduction: a
// low-overhead, pluggable event-tracing and metrics layer threaded
// through the disk device (seek/read/write with head position), the
// buffer pool (hit/miss/evict/unfix), and the assembly operator
// (reference chosen, policy decision, window admit/retire,
// fault/quarantine).
//
// The paper's Section 6 argument rests entirely on measured head
// movement per scheduling policy; terminal counters say *what* a run
// cost but not *why*. This package records the per-event story as a
// deterministic JSONL stream that can be replayed (see Replay) to
// reconstruct the counters exactly — every traced benchmark becomes a
// self-checking experiment.
//
// Design rules:
//
//   - The package imports nothing from the rest of the repo, so every
//     layer can depend on it without cycles.
//   - A nil *Tracer is a valid no-op tracer: all methods are nil-safe,
//     so hot paths pay exactly one predictable branch when tracing is
//     off and no call site needs a guard.
//   - Events carry no wall-clock timestamps: the stream is a pure
//     function of the run, byte-for-byte reproducible under a fixed
//     seed. Latency lives only in the in-memory histograms.
package trace

import (
	"fmt"
	"sync"
	"time"
)

// Layers. Every event belongs to exactly one.
const (
	LayerDisk     = "disk"
	LayerBuffer   = "buffer"
	LayerAssembly = "assembly"
	LayerBench    = "bench"
	LayerWAL      = "wal"
	LayerRecover  = "recover"
	LayerNet      = "net"
)

// Disk event kinds.
const (
	KindRead  = "read"  // physical page read: Page, Head (before), Dist
	KindWrite = "write" // physical page write: Page, Head (before), Dist
	KindFault = "fault" // injected I/O fault: Page, Note (transient|permanent)
)

// Buffer event kinds.
const (
	KindHit          = "hit"           // request satisfied from a resident frame
	KindMiss         = "miss"          // request that required a device read
	KindEvict        = "evict"         // frame reused for a different page
	KindFlush        = "flush"         // dirty page written back
	KindUnfix        = "unfix"         // pin released (N=1 marks the dirty bit set)
	KindChecksumFail = "checksum-fail" // page read failed checksum verification: Page
)

// WAL and recovery event kinds (see internal/wal).
const (
	KindAppend = "append" // page image appended to the log: Page, OID (LSN), N (bytes)
	KindFsync  = "fsync"  // log made durable: OID (durable LSN), N (bytes synced)
	KindRedo   = "redo"   // page image reinstalled during recovery: Page, OID (LSN)
)

// Net event kinds (see internal/pagesvc). Net events carry the remote
// endpoint in the Note field.
const (
	KindSend      = "send"      // request sent to a page server: Page, Note (endpoint)
	KindRecv      = "recv"      // response received: Page, N (0 ok, 1 error), Note (endpoint)
	KindTimeout   = "timeout"   // request timed out with no response: Page, Note (endpoint)
	KindHedge     = "hedge"     // straggler read hedged to a replica: Page, Note (endpoint)
	KindFailover  = "failover"  // read routing switched off the primary: Note (new endpoint)
	KindReconnect = "reconnect" // endpoint connection re-established: Note (endpoint)
	KindPromote   = "promote"   // replica promoted to writable primary: N (epoch), Note (shard)
	KindMigrate   = "migrate"   // resharding cutover applied: Page (range lo), N (pages flipped), Note (new owner)
)

// Assembly event kinds.
const (
	KindAdmit      = "admit"      // complex object entered the window: OID (root)
	KindPend       = "pend"       // reference dispatched to the scheduler: OID, Page
	KindChoose     = "choose"     // scheduler picked the next reference: OID, Page, Head, Note (policy)
	KindTake       = "take"       // reference drained by same-page batching: OID, Page
	KindFetch      = "fetch"      // component materialized from storage: OID, Page
	KindLink       = "link"       // reference satisfied without a fetch: OID
	KindEmit       = "emit"       // assembled complex object passed up: OID (root)
	KindAbort      = "abort"      // complex object abandoned: Note ("" = predicate, else lifecycle reason)
	KindQuarantine = "quarantine" // complex object poisoned by an I/O fault
	KindRetry      = "retry"      // reference re-queued after a transient fault: OID, Page
	KindStall      = "stall"      // admission paused by buffer exhaustion
)

// Lifecycle abort reasons carried in the Note field of assembly abort
// events when a whole query dies rather than a single complex object:
// its deadline passed, its context was cancelled, or overload shed it.
const (
	ReasonDeadline = "deadline"
	ReasonCanceled = "canceled"
	ReasonShed     = "shed"
)

// Bench event kinds: run markers emitted by the experiment harness so a
// single trace file can hold many runs and each can be verified against
// the counters the harness reported.
const (
	KindBegin = "begin" // run start: Note (run name), N (window)
	KindEnd   = "end"   // run end: Stats (the counters the harness reported)
)

// NoPage marks page-less events in the Page/Head/Dist fields.
const NoPage = int64(-1)

// RunStats is the counter snapshot a harness reports at KindEnd; replay
// reconstructs the same quantities from the event stream and the two
// must match exactly.
type RunStats struct {
	Reads     int64 `json:"reads"`
	SeekReads int64 `json:"seek_reads"`
	SeekTotal int64 `json:"seek_total"`
	Assembled int   `json:"assembled"`
	Aborted   int   `json:"aborted"`
	Skipped   int   `json:"skipped"`
	Retries   int   `json:"retries"`
	Stalls    int   `json:"stalls"`
}

// Event is one record of the stream. The JSON field order is the struct
// order, fixed, so a seeded run marshals byte-for-byte identically.
type Event struct {
	// Seq is the tracer-assigned monotonic sequence number.
	Seq uint64 `json:"seq"`
	// Layer and Kind classify the event (constants above).
	Layer string `json:"layer"`
	Kind  string `json:"kind"`
	// Page is the device page the event concerns, or NoPage.
	Page int64 `json:"page"`
	// Head is the head position before the access (disk events) or at
	// scheduling time (choose events); NoPage elsewhere.
	Head int64 `json:"head"`
	// Dist is the head movement the event cost, in pages; NoPage when
	// not applicable.
	Dist int64 `json:"dist"`
	// OID is the object the event concerns; zero when not applicable.
	OID uint64 `json:"oid"`
	// N is a small event-specific count (window size on begin, dirty
	// flag on unfix).
	N int64 `json:"n"`
	// Note carries the policy or run name, or the fault class.
	Note string `json:"note,omitempty"`
	// Stats is attached to bench end markers only.
	Stats *RunStats `json:"stats,omitempty"`
	// QID attributes the event to a query (see internal/qtrace); zero —
	// omitted from the JSON — for work outside any query. The field
	// sits last so query-less streams stay byte-identical to pre-QID
	// traces.
	QID uint64 `json:"qid,omitempty"`
}

func (e Event) String() string {
	return fmt.Sprintf("#%d %s/%s page=%d head=%d dist=%d oid=%d n=%d %s",
		e.Seq, e.Layer, e.Kind, e.Page, e.Head, e.Dist, e.OID, e.N, e.Note)
}

// Sink consumes emitted events. Sinks are called with the tracer lock
// held, in sequence order; they must not call back into the tracer.
type Sink interface {
	Emit(e Event)
}

// Tracer assigns sequence numbers, maintains the in-memory aggregates
// (per layer/kind counts, seek and latency histograms), and fans events
// out to its sinks. The zero *Tracer (nil) is a no-op: every method is
// nil-safe, which is the whole overhead budget of disabled tracing —
// one branch per instrumentation point.
type Tracer struct {
	mu      sync.Mutex
	seq     uint64
	sinks   []Sink
	counts  map[string]int64
	seek    Hist
	latency map[string]*Hist
}

// New builds a tracer over the given sinks. A tracer with no sinks
// still aggregates counts and histograms.
func New(sinks ...Sink) *Tracer {
	return &Tracer{
		sinks:   sinks,
		counts:  map[string]int64{},
		latency: map[string]*Hist{},
	}
}

// Enabled reports whether the tracer records anything. It is the
// documented way to skip expensive argument construction:
//
//	if tr.Enabled() { tr.Assembly(...) }
func (t *Tracer) Enabled() bool { return t != nil }

// emit assigns the sequence number, aggregates, and fans out.
func (t *Tracer) emit(e Event) {
	t.mu.Lock()
	t.seq++
	e.Seq = t.seq
	t.counts[e.Layer+"/"+e.Kind]++
	if e.Layer == LayerDisk && (e.Kind == KindRead || e.Kind == KindWrite) && e.Dist >= 0 {
		t.seek.Add(e.Dist)
	}
	for _, s := range t.sinks {
		s.Emit(e)
	}
	t.mu.Unlock()
}

// Disk records a physical access: kind is KindRead or KindWrite, head
// is the position before the access.
func (t *Tracer) Disk(kind string, page, head, dist int64) {
	t.DiskQ(kind, page, head, dist, 0)
}

// DiskQ is Disk with a query attribution (qid 0 means unattributed).
func (t *Tracer) DiskQ(kind string, page, head, dist int64, qid uint64) {
	if t == nil {
		return
	}
	t.emit(Event{Layer: LayerDisk, Kind: kind, Page: page, Head: head, Dist: dist, QID: qid})
}

// DiskFault records an injected I/O fault; class is "transient" or
// "permanent".
func (t *Tracer) DiskFault(page int64, class string) {
	t.DiskFaultQ(page, class, 0)
}

// DiskFaultQ is DiskFault with a query attribution.
func (t *Tracer) DiskFaultQ(page int64, class string, qid uint64) {
	if t == nil {
		return
	}
	t.emit(Event{Layer: LayerDisk, Kind: KindFault, Page: page, Head: NoPage, Dist: NoPage, Note: class, QID: qid})
}

// Buffer records a pool event (hit/miss/evict/flush/unfix); n carries
// the event-specific flag (dirty bit on unfix).
func (t *Tracer) Buffer(kind string, page int64, n int64) {
	t.BufferQ(kind, page, n, 0)
}

// BufferQ is Buffer with a query attribution.
func (t *Tracer) BufferQ(kind string, page int64, n int64, qid uint64) {
	if t == nil {
		return
	}
	t.emit(Event{Layer: LayerBuffer, Kind: kind, Page: page, Head: NoPage, Dist: NoPage, N: n, QID: qid})
}

// ChecksumFail records a page that failed checksum verification on its
// way into the buffer pool.
func (t *Tracer) ChecksumFail(page int64) {
	if t == nil {
		return
	}
	t.emit(Event{Layer: LayerBuffer, Kind: KindChecksumFail, Page: page, Head: NoPage, Dist: NoPage})
}

// WAL records a log event: KindAppend (page image buffered, lsn
// assigned, n payload bytes) or KindFsync (log durable through lsn, n
// bytes written). The LSN travels in the OID field — both are uint64
// object identities and reusing the field keeps the Event shape (and
// the JSONL byte stream) stable.
func (t *Tracer) WAL(kind string, page int64, lsn uint64, n int64) {
	if t == nil {
		return
	}
	t.emit(Event{Layer: LayerWAL, Kind: kind, Page: page, Head: NoPage, Dist: NoPage, OID: lsn, N: n})
}

// Redo records a page image reinstalled from the log during recovery.
func (t *Tracer) Redo(page int64, lsn uint64) {
	if t == nil {
		return
	}
	t.emit(Event{Layer: LayerRecover, Kind: KindRedo, Page: page, Head: NoPage, Dist: NoPage, OID: lsn})
}

// Net records a page-service client event: a request sent, a response
// received (n carries 0 for success, 1 for error), a hedged read, a
// failover, or a reconnect. The endpoint travels in the note.
func (t *Tracer) Net(kind string, page int64, n int64, endpoint string) {
	t.NetQ(kind, page, n, endpoint, 0)
}

// NetQ is Net with a query attribution.
func (t *Tracer) NetQ(kind string, page int64, n int64, endpoint string, qid uint64) {
	if t == nil {
		return
	}
	t.emit(Event{Layer: LayerNet, Kind: kind, Page: page, Head: NoPage, Dist: NoPage, N: n, Note: endpoint, QID: qid})
}

// Assembly records an operator event. page and head are NoPage when the
// event has no physical address (emit, abort, stall).
func (t *Tracer) Assembly(kind string, oid uint64, page, head int64, note string) {
	t.AssemblyQ(kind, oid, page, head, note, 0)
}

// AssemblyQ is Assembly with a query attribution.
func (t *Tracer) AssemblyQ(kind string, oid uint64, page, head int64, note string, qid uint64) {
	if t == nil {
		return
	}
	t.emit(Event{Layer: LayerAssembly, Kind: kind, Page: page, Head: head, Dist: NoPage, OID: oid, Note: note, QID: qid})
}

// BeginRun marks the start of a named experiment run; window is the
// configured window size (0 when not applicable).
func (t *Tracer) BeginRun(name string, window int) {
	if t == nil {
		return
	}
	t.emit(Event{Layer: LayerBench, Kind: KindBegin, Page: NoPage, Head: NoPage, Dist: NoPage, N: int64(window), Note: name})
}

// EndRun marks the end of the current run, attaching the counters the
// harness reported so replay can verify against them.
func (t *Tracer) EndRun(name string, rs RunStats) {
	if t == nil {
		return
	}
	stats := rs
	t.emit(Event{Layer: LayerBench, Kind: KindEnd, Page: NoPage, Head: NoPage, Dist: NoPage, Note: name, Stats: &stats})
}

// Observe records a latency sample (in nanoseconds) under the given
// key, e.g. "disk/read". Latencies never enter the event stream — they
// would break determinism — only the in-memory histograms.
func (t *Tracer) Observe(key string, d time.Duration) {
	if t == nil {
		return
	}
	t.mu.Lock()
	h := t.latency[key]
	if h == nil {
		h = &Hist{}
		t.latency[key] = h
	}
	h.Add(int64(d))
	t.mu.Unlock()
}

// Counts returns a snapshot of the per layer/kind event counts, keyed
// "layer/kind".
func (t *Tracer) Counts() map[string]int64 {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make(map[string]int64, len(t.counts))
	for k, v := range t.counts {
		out[k] = v
	}
	return out
}

// SeekHist returns a snapshot of the seek-distance histogram (every
// traced read and write contributes its head movement).
func (t *Tracer) SeekHist() Hist {
	if t == nil {
		return Hist{}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.seek
}

// LatencyHist returns a snapshot of the latency histogram under key,
// and whether any samples exist.
func (t *Tracer) LatencyHist(key string) (Hist, bool) {
	if t == nil {
		return Hist{}, false
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	h := t.latency[key]
	if h == nil {
		return Hist{}, false
	}
	return *h, true
}

// LatencyKeys returns the keys with at least one latency sample, in
// unspecified order.
func (t *Tracer) LatencyKeys() []string {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	keys := make([]string, 0, len(t.latency))
	for k := range t.latency {
		keys = append(keys, k)
	}
	return keys
}
