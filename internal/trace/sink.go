package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sync"
)

// Collector is an in-memory sink: it keeps every event, in order. Tests
// and the replay cross-checks use it.
type Collector struct {
	mu     sync.Mutex
	events []Event
}

// NewCollector returns an empty collector.
func NewCollector() *Collector { return &Collector{} }

// Emit implements Sink.
func (c *Collector) Emit(e Event) {
	c.mu.Lock()
	c.events = append(c.events, e)
	c.mu.Unlock()
}

// Events returns a snapshot of the collected events.
func (c *Collector) Events() []Event {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]Event(nil), c.events...)
}

// Reset discards the collected events.
func (c *Collector) Reset() {
	c.mu.Lock()
	c.events = nil
	c.mu.Unlock()
}

// Writer is a JSONL sink: one event per line, fields in fixed schema
// order, buffered. Errors are sticky — the first write error stops
// further output and is reported by Close (and Err).
type Writer struct {
	mu  sync.Mutex
	bw  *bufio.Writer
	enc *json.Encoder
	c   io.Closer
	err error
}

// NewWriter wraps w as a JSONL sink. If w is also an io.Closer, Close
// closes it after flushing.
func NewWriter(w io.Writer) *Writer {
	bw := bufio.NewWriterSize(w, 1<<16)
	jw := &Writer{bw: bw, enc: json.NewEncoder(bw)}
	if c, ok := w.(io.Closer); ok {
		jw.c = c
	}
	return jw
}

// Emit implements Sink.
func (w *Writer) Emit(e Event) {
	w.mu.Lock()
	if w.err == nil {
		w.err = w.enc.Encode(e)
	}
	w.mu.Unlock()
}

// Err returns the first write error, if any.
func (w *Writer) Err() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.err
}

// Close flushes the buffer and closes the underlying writer when it is
// closable, returning the first error encountered over the sink's life.
func (w *Writer) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if ferr := w.bw.Flush(); w.err == nil {
		w.err = ferr
	}
	if w.c != nil {
		if cerr := w.c.Close(); w.err == nil {
			w.err = cerr
		}
	}
	return w.err
}

// ReadAll parses a JSONL event stream back into events. It fails on the
// first malformed line, reporting its line number.
func ReadAll(r io.Reader) ([]Event, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	var events []Event
	line := 0
	for sc.Scan() {
		line++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		var e Event
		if err := json.Unmarshal(raw, &e); err != nil {
			return nil, fmt.Errorf("trace: line %d: %w", line, err)
		}
		events = append(events, e)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trace: read: %w", err)
	}
	return events, nil
}
