// Package expr provides the predicate language evaluated both by the
// Volcano filter operator and inside the assembly operator's selective
// assembly (Section 6.5 of the paper). Every predicate carries a
// selectivity estimate: the template annotations of Section 5 use it to
// schedule high-rejection-probability components first.
package expr

import (
	"fmt"

	"revelation/internal/object"
)

// Predicate evaluates a condition over one storage-layer object.
type Predicate interface {
	// Eval reports whether the object satisfies the predicate.
	Eval(o *object.Object) bool
	// Selectivity estimates the fraction of objects that pass, in
	// [0, 1]. Used for scheduling, never for correctness.
	Selectivity() float64
	// String renders the predicate for plans and traces.
	String() string
}

// CmpOp is a comparison operator for integer attributes.
type CmpOp int

// Comparison operators.
const (
	EQ CmpOp = iota
	NE
	LT
	LE
	GT
	GE
)

func (op CmpOp) String() string {
	switch op {
	case EQ:
		return "="
	case NE:
		return "!="
	case LT:
		return "<"
	case LE:
		return "<="
	case GT:
		return ">"
	case GE:
		return ">="
	default:
		return fmt.Sprintf("op(%d)", int(op))
	}
}

func (op CmpOp) apply(a, b int32) bool {
	switch op {
	case EQ:
		return a == b
	case NE:
		return a != b
	case LT:
		return a < b
	case LE:
		return a <= b
	case GT:
		return a > b
	case GE:
		return a >= b
	default:
		return false
	}
}

// IntCmp compares integer attribute Field against a constant.
type IntCmp struct {
	Field int
	Op    CmpOp
	Value int32
	Sel   float64 // estimated selectivity; 0 means "unknown", treated as 0.5
}

// Eval implements Predicate. Objects without the field fail.
func (p IntCmp) Eval(o *object.Object) bool {
	if p.Field < 0 || p.Field >= len(o.Ints) {
		return false
	}
	return p.Op.apply(o.Ints[p.Field], p.Value)
}

// Selectivity implements Predicate.
func (p IntCmp) Selectivity() float64 {
	if p.Sel <= 0 || p.Sel > 1 {
		return 0.5
	}
	return p.Sel
}

func (p IntCmp) String() string {
	return fmt.Sprintf("ints[%d] %v %d", p.Field, p.Op, p.Value)
}

// IntRange checks Lo <= field <= Hi.
type IntRange struct {
	Field  int
	Lo, Hi int32
	Sel    float64
}

// Eval implements Predicate.
func (p IntRange) Eval(o *object.Object) bool {
	if p.Field < 0 || p.Field >= len(o.Ints) {
		return false
	}
	v := o.Ints[p.Field]
	return v >= p.Lo && v <= p.Hi
}

// Selectivity implements Predicate.
func (p IntRange) Selectivity() float64 {
	if p.Sel <= 0 || p.Sel > 1 {
		return 0.5
	}
	return p.Sel
}

func (p IntRange) String() string {
	return fmt.Sprintf("ints[%d] in [%d,%d]", p.Field, p.Lo, p.Hi)
}

// RefIsNil tests whether a reference field is the null OID.
type RefIsNil struct {
	Field int
	Sel   float64
}

// Eval implements Predicate.
func (p RefIsNil) Eval(o *object.Object) bool {
	if p.Field < 0 || p.Field >= len(o.Refs) {
		return true
	}
	return o.Refs[p.Field].IsNil()
}

// Selectivity implements Predicate.
func (p RefIsNil) Selectivity() float64 {
	if p.Sel <= 0 || p.Sel > 1 {
		return 0.5
	}
	return p.Sel
}

func (p RefIsNil) String() string { return fmt.Sprintf("refs[%d] is nil", p.Field) }

// And is a conjunction; selectivities multiply (independence
// assumption, as in System R style estimation).
type And struct{ Preds []Predicate }

// Eval implements Predicate.
func (p And) Eval(o *object.Object) bool {
	for _, q := range p.Preds {
		if !q.Eval(o) {
			return false
		}
	}
	return true
}

// Selectivity implements Predicate.
func (p And) Selectivity() float64 {
	s := 1.0
	for _, q := range p.Preds {
		s *= q.Selectivity()
	}
	return s
}

func (p And) String() string { return join(p.Preds, " AND ") }

// Or is a disjunction; selectivity via inclusion-exclusion under
// independence.
type Or struct{ Preds []Predicate }

// Eval implements Predicate.
func (p Or) Eval(o *object.Object) bool {
	for _, q := range p.Preds {
		if q.Eval(o) {
			return true
		}
	}
	return false
}

// Selectivity implements Predicate.
func (p Or) Selectivity() float64 {
	fail := 1.0
	for _, q := range p.Preds {
		fail *= 1 - q.Selectivity()
	}
	return 1 - fail
}

func (p Or) String() string { return join(p.Preds, " OR ") }

// Not negates a predicate.
type Not struct{ Pred Predicate }

// Eval implements Predicate.
func (p Not) Eval(o *object.Object) bool { return !p.Pred.Eval(o) }

// Selectivity implements Predicate.
func (p Not) Selectivity() float64 { return 1 - p.Pred.Selectivity() }

func (p Not) String() string { return "NOT (" + p.Pred.String() + ")" }

// True always passes; useful as a neutral element.
type True struct{}

// Eval implements Predicate.
func (True) Eval(*object.Object) bool { return true }

// Selectivity implements Predicate.
func (True) Selectivity() float64 { return 1 }

func (True) String() string { return "true" }

// Func wraps an arbitrary Go function as a predicate, covering the
// paper's "computations that are not algebraically expressible" (the
// latitude/longitude distance example in Section 4).
type Func struct {
	Name string
	Fn   func(o *object.Object) bool
	Sel  float64
}

// Eval implements Predicate.
func (p Func) Eval(o *object.Object) bool { return p.Fn(o) }

// Selectivity implements Predicate.
func (p Func) Selectivity() float64 {
	if p.Sel <= 0 || p.Sel > 1 {
		return 0.5
	}
	return p.Sel
}

func (p Func) String() string {
	if p.Name != "" {
		return p.Name
	}
	return "func"
}

func join(preds []Predicate, sep string) string {
	out := "("
	for i, q := range preds {
		if i > 0 {
			out += sep
		}
		out += q.String()
	}
	return out + ")"
}
