package expr

import (
	"math"
	"testing"
	"testing/quick"

	"revelation/internal/object"
)

func obj(ints ...int32) *object.Object {
	return &object.Object{OID: 1, Ints: ints}
}

func TestIntCmpOps(t *testing.T) {
	o := obj(10)
	cases := []struct {
		op   CmpOp
		v    int32
		want bool
	}{
		{EQ, 10, true}, {EQ, 9, false},
		{NE, 9, true}, {NE, 10, false},
		{LT, 11, true}, {LT, 10, false},
		{LE, 10, true}, {LE, 9, false},
		{GT, 9, true}, {GT, 10, false},
		{GE, 10, true}, {GE, 11, false},
	}
	for _, c := range cases {
		p := IntCmp{Field: 0, Op: c.op, Value: c.v}
		if got := p.Eval(o); got != c.want {
			t.Errorf("10 %v %d = %v, want %v", c.op, c.v, got, c.want)
		}
	}
}

func TestIntCmpMissingField(t *testing.T) {
	p := IntCmp{Field: 3, Op: EQ, Value: 0}
	if p.Eval(obj(1)) {
		t.Error("comparison against missing field passed")
	}
	if (IntCmp{Field: -1, Op: EQ}).Eval(obj(1)) {
		t.Error("negative field passed")
	}
}

func TestIntRange(t *testing.T) {
	p := IntRange{Field: 0, Lo: 5, Hi: 10}
	for v, want := range map[int32]bool{4: false, 5: true, 7: true, 10: true, 11: false} {
		if got := p.Eval(obj(v)); got != want {
			t.Errorf("range eval(%d) = %v, want %v", v, got, want)
		}
	}
}

func TestRefIsNil(t *testing.T) {
	o := &object.Object{OID: 1, Refs: []object.OID{0, 5}}
	if !(RefIsNil{Field: 0}).Eval(o) {
		t.Error("nil ref not detected")
	}
	if (RefIsNil{Field: 1}).Eval(o) {
		t.Error("non-nil ref reported nil")
	}
	if !(RefIsNil{Field: 9}).Eval(o) {
		t.Error("missing ref field should read as nil")
	}
}

func TestBooleanCombinators(t *testing.T) {
	lt := IntCmp{Field: 0, Op: LT, Value: 10, Sel: 0.4}
	gt := IntCmp{Field: 0, Op: GT, Value: 5, Sel: 0.3}
	and := And{Preds: []Predicate{lt, gt}}
	or := Or{Preds: []Predicate{lt, gt}}
	not := Not{Pred: lt}

	if !and.Eval(obj(7)) || and.Eval(obj(3)) || and.Eval(obj(12)) {
		t.Error("And misbehaves")
	}
	if !or.Eval(obj(3)) || !or.Eval(obj(12)) || or.Eval(obj(-100)) == true && false {
		t.Error("Or misbehaves")
	}
	if or.Eval(obj(3)) != true {
		t.Error("Or(3)")
	}
	if not.Eval(obj(3)) {
		t.Error("Not(3)")
	}
	if !not.Eval(obj(12)) {
		t.Error("Not(12)")
	}

	if got := and.Selectivity(); math.Abs(got-0.12) > 1e-9 {
		t.Errorf("And selectivity = %v, want 0.12", got)
	}
	if got := or.Selectivity(); math.Abs(got-(1-0.6*0.7)) > 1e-9 {
		t.Errorf("Or selectivity = %v", got)
	}
	if got := not.Selectivity(); math.Abs(got-0.6) > 1e-9 {
		t.Errorf("Not selectivity = %v", got)
	}
}

func TestDefaultSelectivity(t *testing.T) {
	for _, p := range []Predicate{
		IntCmp{}, IntRange{}, RefIsNil{}, Func{Fn: func(*object.Object) bool { return true }},
		IntCmp{Sel: 2.0}, // out of range -> default
	} {
		if got := p.Selectivity(); got != 0.5 {
			t.Errorf("%s default selectivity = %v, want 0.5", p, got)
		}
	}
	if (True{}).Selectivity() != 1 {
		t.Error("True selectivity != 1")
	}
}

func TestFuncPredicate(t *testing.T) {
	p := Func{
		Name: "close-to",
		Fn:   func(o *object.Object) bool { return o.Ints[0]*o.Ints[0] < 100 },
		Sel:  0.2,
	}
	if !p.Eval(obj(3)) || p.Eval(obj(30)) {
		t.Error("Func eval wrong")
	}
	if p.String() != "close-to" {
		t.Errorf("String = %q", p.String())
	}
	if p.Selectivity() != 0.2 {
		t.Errorf("Selectivity = %v", p.Selectivity())
	}
}

func TestStrings(t *testing.T) {
	p := And{Preds: []Predicate{
		IntCmp{Field: 0, Op: GE, Value: 3},
		Not{Pred: True{}},
	}}
	want := "(ints[0] >= 3 AND NOT (true))"
	if p.String() != want {
		t.Errorf("String = %q, want %q", p.String(), want)
	}
}

// Property: De Morgan — Not(And(a,b)) == Or(Not a, Not b) on all inputs.
func TestDeMorganProperty(t *testing.T) {
	f := func(v int32, a, b int32) bool {
		pa := Predicate(IntCmp{Field: 0, Op: LT, Value: a})
		pb := Predicate(IntCmp{Field: 0, Op: GT, Value: b})
		o := obj(v)
		lhs := Not{Pred: And{Preds: []Predicate{pa, pb}}}.Eval(o)
		rhs := Or{Preds: []Predicate{Not{Pred: pa}, Not{Pred: pb}}}.Eval(o)
		return lhs == rhs
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
