package object

import (
	"errors"
	"testing"
	"testing/quick"

	"revelation/internal/btree"
	"revelation/internal/buffer"
	"revelation/internal/disk"
	"revelation/internal/heap"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	o := &Object{
		OID:   42,
		Class: 7,
		Ints:  []int32{1, -2, 3, 2147483647},
		Refs:  []OID{NilOID, 99, 100, 101, 0, 0, 0, 12345},
	}
	rec, err := Encode(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(rec) != 96 {
		t.Errorf("benchmark object encodes to %d bytes, want 96", len(rec))
	}
	got, err := Decode(rec)
	if err != nil {
		t.Fatal(err)
	}
	if got.OID != o.OID || got.Class != o.Class {
		t.Errorf("header mismatch: %+v", got)
	}
	for i := range o.Ints {
		if got.Ints[i] != o.Ints[i] {
			t.Errorf("Ints[%d] = %d, want %d", i, got.Ints[i], o.Ints[i])
		}
	}
	for i := range o.Refs {
		if got.Refs[i] != o.Refs[i] {
			t.Errorf("Refs[%d] = %v, want %v", i, got.Refs[i], o.Refs[i])
		}
	}
}

func TestEncodeDecodeProperty(t *testing.T) {
	f := func(oid uint64, class uint16, ints []int32, rawRefs []uint64) bool {
		if oid == 0 {
			oid = 1
		}
		if len(ints) > 255 {
			ints = ints[:255]
		}
		if len(rawRefs) > 255 {
			rawRefs = rawRefs[:255]
		}
		refs := make([]OID, len(rawRefs))
		for i, r := range rawRefs {
			refs[i] = OID(r)
		}
		o := &Object{OID: OID(oid), Class: ClassID(class), Ints: ints, Refs: refs}
		rec, err := Encode(o)
		if err != nil {
			return false
		}
		got, err := Decode(rec)
		if err != nil {
			return false
		}
		if got.OID != o.OID || got.Class != o.Class || len(got.Ints) != len(ints) || len(got.Refs) != len(refs) {
			return false
		}
		for i := range ints {
			if got.Ints[i] != ints[i] {
				return false
			}
		}
		for i := range refs {
			if got.Refs[i] != refs[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestDecodeShortRecord(t *testing.T) {
	if _, err := Decode([]byte{1, 2, 3}); !errors.Is(err, ErrShortRecord) {
		t.Errorf("Decode short err = %v, want ErrShortRecord", err)
	}
	// Header claims more fields than bytes provide.
	o := &Object{OID: 1, Ints: []int32{1, 2}, Refs: []OID{3}}
	rec, _ := Encode(o)
	if _, err := Decode(rec[:len(rec)-4]); !errors.Is(err, ErrShortRecord) {
		t.Errorf("Decode truncated err = %v, want ErrShortRecord", err)
	}
}

func TestPeek(t *testing.T) {
	o := &Object{OID: 77, Class: 9}
	rec, _ := Encode(o)
	oid, err := PeekOID(rec)
	if err != nil || oid != 77 {
		t.Errorf("PeekOID = (%v, %v)", oid, err)
	}
	cls, err := PeekClass(rec)
	if err != nil || cls != 9 {
		t.Errorf("PeekClass = (%v, %v)", cls, err)
	}
	if _, err := PeekOID(nil); !errors.Is(err, ErrShortRecord) {
		t.Errorf("PeekOID(nil) err = %v", err)
	}
}

func TestCatalog(t *testing.T) {
	cat := NewCatalog()
	person, err := cat.Define(&Class{
		Name:     "Person",
		NumInts:  2,
		NumRefs:  2,
		IntNames: []string{"age", "zip"},
		RefNames: []string{"father", "residence"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if person.ID == 0 {
		t.Error("class id not assigned")
	}
	if _, err := cat.Define(&Class{Name: "Person"}); err == nil {
		t.Error("duplicate class name accepted")
	}
	if _, err := cat.Define(&Class{Name: "", NumInts: 1}); err == nil {
		t.Error("empty class name accepted")
	}
	if _, err := cat.Define(&Class{Name: "Bad", NumInts: 2, IntNames: []string{"x"}}); err == nil {
		t.Error("mismatched int names accepted")
	}
	got, ok := cat.ByName("Person")
	if !ok || got != person {
		t.Error("ByName lookup failed")
	}
	got, ok = cat.ByID(person.ID)
	if !ok || got != person {
		t.Error("ByID lookup failed")
	}
	if person.IntIndex("zip") != 1 || person.IntIndex("nope") != -1 {
		t.Error("IntIndex wrong")
	}
	if person.RefIndex("father") != 0 || person.RefIndex("nope") != -1 {
		t.Error("RefIndex wrong")
	}
	if person.RecordSize() != 16+8+16 {
		t.Errorf("RecordSize = %d", person.RecordSize())
	}
	if cat.Len() != 1 {
		t.Errorf("Len = %d", cat.Len())
	}
}

func TestPackUnpackRID(t *testing.T) {
	rids := []heap.RID{
		{Page: 0, Slot: 0},
		{Page: 12345, Slot: 8},
		{Page: 1 << 20, Slot: 65535},
	}
	for _, rid := range rids {
		if got := UnpackRID(PackRID(rid)); got != rid {
			t.Errorf("round trip %v -> %v", rid, got)
		}
	}
}

func newStore(t *testing.T, loc Locator) *Store {
	t.Helper()
	d := disk.New(0)
	pool := buffer.New(d, 32, buffer.LRU)
	f, err := heap.Create(pool, 8)
	if err != nil {
		t.Fatal(err)
	}
	return NewStore(f, loc, NewCatalog())
}

func TestStoreWithMapLocator(t *testing.T) {
	s := newStore(t, NewMapLocator())
	o := &Object{OID: 5, Class: 1, Ints: []int32{10}, Refs: []OID{6}}
	rid, err := s.Put(o)
	if err != nil {
		t.Fatal(err)
	}
	got, err := s.Get(5)
	if err != nil {
		t.Fatal(err)
	}
	if got.OID != 5 || got.Ints[0] != 10 || got.Refs[0] != 6 {
		t.Errorf("Get = %+v", got)
	}
	where, ok, err := s.WhereIs(5)
	if err != nil || !ok || where != rid {
		t.Errorf("WhereIs = (%v,%v,%v), want %v", where, ok, err, rid)
	}
	if _, err := s.Get(999); err == nil {
		t.Error("Get missing OID succeeded")
	}
}

func TestStoreWithBTreeLocator(t *testing.T) {
	d := disk.New(0)
	pool := buffer.New(d, 64, buffer.LRU)
	f, err := heap.Create(pool, 64)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := btree.Create(pool)
	if err != nil {
		t.Fatal(err)
	}
	s := NewStore(f, NewBTreeLocator(tr), NewCatalog())
	const n = 500
	for i := 1; i <= n; i++ {
		o := &Object{OID: OID(i), Class: 1, Ints: []int32{int32(i)}}
		if _, err := s.Put(o); err != nil {
			t.Fatalf("Put(%d): %v", i, err)
		}
	}
	for i := 1; i <= n; i += 13 {
		got, err := s.Get(OID(i))
		if err != nil {
			t.Fatalf("Get(%d): %v", i, err)
		}
		if got.Ints[0] != int32(i) {
			t.Errorf("Get(%d).Ints[0] = %d", i, got.Ints[0])
		}
	}
	if l, _ := s.Locator.Len(); l != n {
		t.Errorf("Locator.Len = %d, want %d", l, n)
	}
}

func TestPutAtPlacement(t *testing.T) {
	s := newStore(t, NewMapLocator())
	o := &Object{OID: 1, Class: 1}
	rid, err := s.PutAt(o, 3)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := s.File.PageAt(3)
	if rid.Page != want {
		t.Errorf("PutAt page = %d, want %d", rid.Page, want)
	}
}

func TestNilOIDRejected(t *testing.T) {
	s := newStore(t, NewMapLocator())
	if _, err := s.Put(&Object{OID: NilOID}); !errors.Is(err, ErrNilOID) {
		t.Errorf("Put nil-OID err = %v, want ErrNilOID", err)
	}
	loc := NewMapLocator()
	if _, _, err := loc.Lookup(NilOID); !errors.Is(err, ErrNilOID) {
		t.Errorf("Lookup nil err = %v", err)
	}
	if err := loc.Register(NilOID, heap.RID{}); !errors.Is(err, ErrNilOID) {
		t.Errorf("Register nil err = %v", err)
	}
}
