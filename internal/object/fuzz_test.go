package object

import (
	"bytes"
	"testing"
)

// FuzzDecode hardens the record decoder against arbitrary bytes: it
// must never panic, and any record it accepts must re-encode to an
// equivalent prefix of the input's logical content.
func FuzzDecode(f *testing.F) {
	// Seed corpus: valid encodings and truncations.
	good, _ := Encode(&Object{OID: 7, Class: 3, Ints: []int32{1, -2}, Refs: []OID{9, 0}})
	f.Add(good)
	f.Add(good[:len(good)-3])
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xFF}, 64))
	f.Fuzz(func(t *testing.T, data []byte) {
		o, err := Decode(data)
		if err != nil {
			return
		}
		// Accepted records must round-trip.
		re, err := Encode(o)
		if err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		back, err := Decode(re)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if back.OID != o.OID || back.Class != o.Class ||
			len(back.Ints) != len(o.Ints) || len(back.Refs) != len(o.Refs) {
			t.Fatalf("round trip mismatch: %+v vs %+v", o, back)
		}
	})
}
