package object

import (
	"context"
	"errors"
	"fmt"

	"revelation/internal/btree"
	"revelation/internal/disk"
	"revelation/internal/heap"
	"revelation/internal/page"
)

// Locator is the OID → physical-location mapping the paper assumes
// ("Only that there is a mapping from object reference to physical
// location", footnote 1). The assembly operator's elevator scheduler
// consults it to learn where a reference lives before fetching it.
type Locator interface {
	// Lookup resolves an OID to the RID of its record.
	Lookup(oid OID) (heap.RID, bool, error)
	// Register records the location of an object.
	Register(oid OID, rid heap.RID) error
	// Len reports the number of registered objects.
	Len() (int, error)
}

// ErrNilOID rejects registering or resolving the null reference.
var ErrNilOID = errors.New("object: nil OID")

// MapLocator keeps the mapping in memory. It models a resident OID
// index (the usual choice in the paper's experiments, where index
// traffic is excluded from the seek metric).
type MapLocator struct {
	m map[OID]heap.RID
}

// NewMapLocator returns an empty in-memory locator.
func NewMapLocator() *MapLocator { return &MapLocator{m: make(map[OID]heap.RID)} }

// Lookup implements Locator.
func (l *MapLocator) Lookup(oid OID) (heap.RID, bool, error) {
	if oid.IsNil() {
		return heap.NilRID, false, ErrNilOID
	}
	rid, ok := l.m[oid]
	return rid, ok, nil
}

// Register implements Locator.
func (l *MapLocator) Register(oid OID, rid heap.RID) error {
	if oid.IsNil() {
		return ErrNilOID
	}
	l.m[oid] = rid
	return nil
}

// Len implements Locator.
func (l *MapLocator) Len() (int, error) { return len(l.m), nil }

// BTreeLocator persists the mapping in a B+-tree, so lookups cost real
// page accesses. RIDs pack into the tree's uint64 values as
// (page << 16) | slot.
type BTreeLocator struct {
	tree *btree.Tree
}

// NewBTreeLocator wraps a B+-tree as a locator.
func NewBTreeLocator(tree *btree.Tree) *BTreeLocator { return &BTreeLocator{tree: tree} }

// Tree exposes the underlying B+-tree (for persistence of its root).
func (l *BTreeLocator) Tree() *btree.Tree { return l.tree }

// PackRID encodes a RID into a uint64 B-tree value.
func PackRID(rid heap.RID) uint64 {
	return uint64(rid.Page)<<16 | uint64(rid.Slot)
}

// UnpackRID decodes a PackRID value.
func UnpackRID(v uint64) heap.RID {
	return heap.RID{Page: disk.PageID(v >> 16), Slot: page.SlotID(v & 0xFFFF)}
}

// Lookup implements Locator.
func (l *BTreeLocator) Lookup(oid OID) (heap.RID, bool, error) {
	if oid.IsNil() {
		return heap.NilRID, false, ErrNilOID
	}
	v, ok, err := l.tree.Get(uint64(oid))
	if err != nil || !ok {
		return heap.NilRID, false, err
	}
	return UnpackRID(v), true, nil
}

// Register implements Locator.
func (l *BTreeLocator) Register(oid OID, rid heap.RID) error {
	if oid.IsNil() {
		return ErrNilOID
	}
	return l.tree.Put(uint64(oid), PackRID(rid))
}

// Len implements Locator.
func (l *BTreeLocator) Len() (int, error) { return l.tree.Len() }

// Store couples a heap file, a locator, and a catalog into the
// object-storage facade the upper layers use: put an object somewhere,
// get it back by OID.
type Store struct {
	File    *heap.File
	Locator Locator
	Catalog *Catalog
}

// NewStore assembles a store from its parts.
func NewStore(f *heap.File, loc Locator, cat *Catalog) *Store {
	return &Store{File: f, Locator: loc, Catalog: cat}
}

// Put encodes the object, appends it to the file, and registers its
// location.
func (s *Store) Put(o *Object) (heap.RID, error) {
	return s.put(o, -1)
}

// PutAt is Put with explicit page placement (extent-relative index);
// the clustering policies in the generator are built on it.
func (s *Store) PutAt(o *Object, pageIdx int) (heap.RID, error) {
	return s.put(o, pageIdx)
}

func (s *Store) put(o *Object, pageIdx int) (heap.RID, error) {
	if o.OID.IsNil() {
		return heap.NilRID, ErrNilOID
	}
	rec, err := Encode(o)
	if err != nil {
		return heap.NilRID, err
	}
	var rid heap.RID
	if pageIdx >= 0 {
		rid, err = s.File.InsertAt(pageIdx, rec)
	} else {
		rid, err = s.File.Insert(rec)
	}
	if err != nil {
		return heap.NilRID, err
	}
	if err := s.Locator.Register(o.OID, rid); err != nil {
		return heap.NilRID, err
	}
	return rid, nil
}

// Update re-encodes the object over its existing record in place: the
// OID must already be registered and the encoded size must still fit
// the record's slot (it always does for same-class updates, since
// records are fixed-size per class). The write path incremental
// workloads mutate through.
func (s *Store) Update(o *Object) error {
	if o.OID.IsNil() {
		return ErrNilOID
	}
	rid, ok, err := s.Locator.Lookup(o.OID)
	if err != nil {
		return err
	}
	if !ok {
		return fmt.Errorf("object: %v not found", o.OID)
	}
	rec, err := Encode(o)
	if err != nil {
		return err
	}
	return s.File.Update(rid, rec)
}

// Get loads the object with the given OID.
func (s *Store) Get(oid OID) (*Object, error) {
	rid, ok, err := s.Locator.Lookup(oid)
	if err != nil {
		return nil, err
	}
	if !ok {
		return nil, fmt.Errorf("object: %v not found", oid)
	}
	return s.GetAt(rid)
}

// GetAt loads the object stored at rid.
func (s *Store) GetAt(rid heap.RID) (*Object, error) {
	return s.GetAtCtx(nil, rid)
}

// GetAtCtx is GetAt with per-query attribution carried in ctx (nil ctx
// behaves exactly like GetAt).
func (s *Store) GetAtCtx(ctx context.Context, rid heap.RID) (*Object, error) {
	var o *Object
	err := s.File.GetCtx(ctx, rid, func(rec []byte) error {
		var derr error
		o, derr = Decode(rec)
		return derr
	})
	return o, err
}

// WhereIs resolves an OID to its RID, with a found flag.
func (s *Store) WhereIs(oid OID) (heap.RID, bool, error) { return s.Locator.Lookup(oid) }
