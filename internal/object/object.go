// Package object defines the storage-layer object model of the
// reproduction: objects carry integer attributes and inter-object
// references (OIDs embedded in their state, exactly as Revelation types
// do), a class catalog describing their shape, a compact binary record
// encoding, and the OID → physical-address mapping the assembly
// operator requires.
//
// The benchmark geometry from Section 6 of the paper falls out of the
// encoding: an object with 4 integer and 8 reference fields occupies
// 96 bytes, so nine objects share a 1 KB page.
package object

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// OID is an object identifier. Zero is the nil reference.
type OID uint64

// NilOID is the null object reference.
const NilOID OID = 0

// IsNil reports whether the OID is the null reference.
func (o OID) IsNil() bool { return o == NilOID }

func (o OID) String() string { return fmt.Sprintf("oid:%d", uint64(o)) }

// ClassID identifies a class in the catalog.
type ClassID uint16

// Class describes the shape of a storage-layer object: how many
// integer attributes and how many reference fields it has. RefTargets
// optionally names the class each reference field points to (used by
// templates and the generator); a zero entry means "any class".
type Class struct {
	ID         ClassID
	Name       string
	NumInts    int
	NumRefs    int
	IntNames   []string  // optional, len NumInts when present
	RefNames   []string  // optional, len NumRefs when present
	RefTargets []ClassID // optional, len NumRefs when present
}

// RecordSize returns the encoded size of an instance of the class.
func (c *Class) RecordSize() int { return headerSize + 4*c.NumInts + 8*c.NumRefs }

// IntIndex resolves an integer attribute name to its index, or -1.
func (c *Class) IntIndex(name string) int {
	for i, n := range c.IntNames {
		if n == name {
			return i
		}
	}
	return -1
}

// RefIndex resolves a reference field name to its index, or -1.
func (c *Class) RefIndex(name string) int {
	for i, n := range c.RefNames {
		if n == name {
			return i
		}
	}
	return -1
}

// Catalog is the class registry.
type Catalog struct {
	byID   map[ClassID]*Class
	byName map[string]*Class
	nextID ClassID
}

// NewCatalog returns an empty catalog.
func NewCatalog() *Catalog {
	return &Catalog{
		byID:   make(map[ClassID]*Class),
		byName: make(map[string]*Class),
		nextID: 1,
	}
}

// Define registers a class, assigning it the next free id. It fails on
// a duplicate name or malformed field-name slices.
func (cat *Catalog) Define(c *Class) (*Class, error) {
	if c.Name == "" {
		return nil, errors.New("object: class needs a name")
	}
	if _, dup := cat.byName[c.Name]; dup {
		return nil, fmt.Errorf("object: class %q already defined", c.Name)
	}
	if c.IntNames != nil && len(c.IntNames) != c.NumInts {
		return nil, fmt.Errorf("object: class %q has %d int names for %d ints", c.Name, len(c.IntNames), c.NumInts)
	}
	if c.RefNames != nil && len(c.RefNames) != c.NumRefs {
		return nil, fmt.Errorf("object: class %q has %d ref names for %d refs", c.Name, len(c.RefNames), c.NumRefs)
	}
	if c.RefTargets != nil && len(c.RefTargets) != c.NumRefs {
		return nil, fmt.Errorf("object: class %q has %d ref targets for %d refs", c.Name, len(c.RefTargets), c.NumRefs)
	}
	c.ID = cat.nextID
	cat.nextID++
	cat.byID[c.ID] = c
	cat.byName[c.Name] = c
	return c, nil
}

// MustDefine is Define that panics on error; for static schemas.
func (cat *Catalog) MustDefine(c *Class) *Class {
	out, err := cat.Define(c)
	if err != nil {
		panic(err)
	}
	return out
}

// ByID looks a class up by id.
func (cat *Catalog) ByID(id ClassID) (*Class, bool) {
	c, ok := cat.byID[id]
	return c, ok
}

// ByName looks a class up by name.
func (cat *Catalog) ByName(name string) (*Class, bool) {
	c, ok := cat.byName[name]
	return c, ok
}

// Len reports the number of defined classes.
func (cat *Catalog) Len() int { return len(cat.byID) }

// Object is an in-memory storage-layer object.
type Object struct {
	OID   OID
	Class ClassID
	Ints  []int32
	Refs  []OID
}

// Record encoding:
//
//	[0:8)   OID
//	[8:10)  class id
//	[10:11) number of int fields
//	[11:12) number of ref fields
//	[12:16) flags / reserved
//	then NumInts * int32, then NumRefs * OID(u64), little endian.
const headerSize = 16

// Encoding errors.
var (
	ErrShortRecord = errors.New("object: record too short")
	ErrFieldCount  = errors.New("object: field count exceeds encoding limit")
)

// Encode serializes the object into a fresh record.
func Encode(o *Object) ([]byte, error) {
	if len(o.Ints) > 255 || len(o.Refs) > 255 {
		return nil, ErrFieldCount
	}
	buf := make([]byte, headerSize+4*len(o.Ints)+8*len(o.Refs))
	binary.LittleEndian.PutUint64(buf[0:], uint64(o.OID))
	binary.LittleEndian.PutUint16(buf[8:], uint16(o.Class))
	buf[10] = byte(len(o.Ints))
	buf[11] = byte(len(o.Refs))
	off := headerSize
	for _, v := range o.Ints {
		binary.LittleEndian.PutUint32(buf[off:], uint32(v))
		off += 4
	}
	for _, r := range o.Refs {
		binary.LittleEndian.PutUint64(buf[off:], uint64(r))
		off += 8
	}
	return buf, nil
}

// Decode parses a record into a fresh Object.
func Decode(rec []byte) (*Object, error) {
	if len(rec) < headerSize {
		return nil, fmt.Errorf("%w: %d bytes", ErrShortRecord, len(rec))
	}
	nInts := int(rec[10])
	nRefs := int(rec[11])
	want := headerSize + 4*nInts + 8*nRefs
	if len(rec) < want {
		return nil, fmt.Errorf("%w: %d bytes, header implies %d", ErrShortRecord, len(rec), want)
	}
	o := &Object{
		OID:   OID(binary.LittleEndian.Uint64(rec[0:])),
		Class: ClassID(binary.LittleEndian.Uint16(rec[8:])),
		Ints:  make([]int32, nInts),
		Refs:  make([]OID, nRefs),
	}
	off := headerSize
	for i := range o.Ints {
		o.Ints[i] = int32(binary.LittleEndian.Uint32(rec[off:]))
		off += 4
	}
	for i := range o.Refs {
		o.Refs[i] = OID(binary.LittleEndian.Uint64(rec[off:]))
		off += 8
	}
	return o, nil
}

// PeekOID reads just the OID from an encoded record.
func PeekOID(rec []byte) (OID, error) {
	if len(rec) < 8 {
		return NilOID, ErrShortRecord
	}
	return OID(binary.LittleEndian.Uint64(rec)), nil
}

// PeekClass reads just the class id from an encoded record.
func PeekClass(rec []byte) (ClassID, error) {
	if len(rec) < 10 {
		return 0, ErrShortRecord
	}
	return ClassID(binary.LittleEndian.Uint16(rec[8:])), nil
}
