package heap

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"revelation/internal/buffer"
	"revelation/internal/disk"
	"revelation/internal/page"
)

func newFile(t *testing.T, nPages, frames int) (*File, *disk.Sim) {
	t.Helper()
	d := disk.New(0)
	pool := buffer.New(d, frames, buffer.LRU)
	f, err := Create(pool, nPages)
	if err != nil {
		t.Fatal(err)
	}
	return f, d
}

func TestInsertReadRoundTrip(t *testing.T) {
	f, _ := newFile(t, 4, 8)
	rid, err := f.Insert([]byte("hello heap"))
	if err != nil {
		t.Fatal(err)
	}
	got, err := f.Read(rid)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "hello heap" {
		t.Errorf("Read = %q", got)
	}
}

func TestInsertAtPlacement(t *testing.T) {
	f, _ := newFile(t, 4, 8)
	rid, err := f.InsertAt(2, []byte("placed"))
	if err != nil {
		t.Fatal(err)
	}
	want, _ := f.PageAt(2)
	if rid.Page != want {
		t.Errorf("record on page %d, want %d", rid.Page, want)
	}
}

func TestInsertAtBadIndex(t *testing.T) {
	f, _ := newFile(t, 2, 4)
	if _, err := f.InsertAt(2, []byte("x")); !errors.Is(err, ErrBadPage) {
		t.Errorf("InsertAt(2) err = %v, want ErrBadPage", err)
	}
	if _, err := f.InsertAt(-1, []byte("x")); !errors.Is(err, ErrBadPage) {
		t.Errorf("InsertAt(-1) err = %v, want ErrBadPage", err)
	}
}

func TestInsertFillsExtentThenFails(t *testing.T) {
	f, _ := newFile(t, 2, 4)
	rec := make([]byte, 96)
	n := 0
	for {
		_, err := f.Insert(rec)
		if err != nil {
			if !errors.Is(err, ErrFull) {
				t.Fatalf("unexpected error: %v", err)
			}
			break
		}
		n++
	}
	if n != 18 { // 9 objects per page, 2 pages
		t.Errorf("capacity = %d records, want 18", n)
	}
}

func TestInsertAtFullPage(t *testing.T) {
	f, _ := newFile(t, 2, 4)
	rec := make([]byte, 96)
	for i := 0; i < 9; i++ {
		if _, err := f.InsertAt(0, rec); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := f.InsertAt(0, rec); !errors.Is(err, page.ErrPageFull) {
		t.Errorf("overfull InsertAt err = %v, want ErrPageFull", err)
	}
}

func TestUpdateDelete(t *testing.T) {
	f, _ := newFile(t, 2, 4)
	rid, err := f.Insert([]byte("v1"))
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Update(rid, []byte("v2-longer")); err != nil {
		t.Fatal(err)
	}
	got, _ := f.Read(rid)
	if string(got) != "v2-longer" {
		t.Errorf("after update: %q", got)
	}
	if err := f.Delete(rid); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Read(rid); err == nil {
		t.Error("Read after Delete succeeded")
	}
	n, err := f.Count()
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Errorf("Count = %d, want 0", n)
	}
}

func TestRIDOutsideExtent(t *testing.T) {
	f, _ := newFile(t, 2, 4)
	bad := RID{Page: f.First() + disk.PageID(f.NumPages()), Slot: 0}
	if err := f.Get(bad, func([]byte) error { return nil }); !errors.Is(err, ErrNotInEtent) {
		t.Errorf("Get outside extent err = %v, want ErrNotInEtent", err)
	}
	if err := f.Update(bad, nil); !errors.Is(err, ErrNotInEtent) {
		t.Errorf("Update outside extent err = %v", err)
	}
	if err := f.Delete(bad); !errors.Is(err, ErrNotInEtent) {
		t.Errorf("Delete outside extent err = %v", err)
	}
}

func TestScanPhysicalOrder(t *testing.T) {
	f, _ := newFile(t, 3, 6)
	// Place records out of logical order across pages.
	var want []string
	for _, pl := range []struct {
		page int
		val  string
	}{{2, "c"}, {0, "a"}, {1, "b"}, {0, "a2"}} {
		if _, err := f.InsertAt(pl.page, []byte(pl.val)); err != nil {
			t.Fatal(err)
		}
	}
	want = []string{"a", "a2", "b", "c"}
	var got []string
	err := f.Scan(func(rid RID, rec []byte) bool {
		got = append(got, string(rec))
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("Scan saw %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("Scan[%d] = %q, want %q (physical order)", i, got[i], want[i])
		}
	}
}

func TestScanEarlyStop(t *testing.T) {
	f, _ := newFile(t, 2, 4)
	for i := 0; i < 6; i++ {
		if _, err := f.Insert([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	n := 0
	err := f.Scan(func(RID, []byte) bool {
		n++
		return n < 3
	})
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Errorf("early stop visited %d records, want 3", n)
	}
}

func TestOpenExistingExtent(t *testing.T) {
	d := disk.New(0)
	pool := buffer.New(d, 8, buffer.LRU)
	f, err := Create(pool, 2)
	if err != nil {
		t.Fatal(err)
	}
	rid, err := f.Insert([]byte("persist"))
	if err != nil {
		t.Fatal(err)
	}
	if err := pool.FlushAll(); err != nil {
		t.Fatal(err)
	}

	pool2 := buffer.New(d, 8, buffer.LRU)
	f2 := Open(pool2, f.First(), f.NumPages())
	got, err := f2.Read(rid)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "persist" {
		t.Errorf("reopened file read = %q", got)
	}
}

func TestSmallPoolLargeFile(t *testing.T) {
	// The file is much larger than the pool: exercises eviction and
	// write-back through a realistic access pattern.
	f, _ := newFile(t, 32, 4)
	rng := rand.New(rand.NewSource(7))
	type kv struct {
		rid RID
		val []byte
	}
	var rows []kv
	for i := 0; i < 200; i++ {
		val := make([]byte, 40)
		rng.Read(val)
		rid, err := f.InsertAt(rng.Intn(32), val)
		if err != nil {
			if errors.Is(err, page.ErrPageFull) {
				continue
			}
			t.Fatal(err)
		}
		rows = append(rows, kv{rid, val})
	}
	for _, r := range rows {
		got, err := f.Read(r.rid)
		if err != nil {
			t.Fatalf("Read %v: %v", r.rid, err)
		}
		if !bytes.Equal(got, r.val) {
			t.Fatalf("record %v corrupted", r.rid)
		}
	}
	if c, _ := f.Count(); c != len(rows) {
		t.Errorf("Count = %d, want %d", c, len(rows))
	}
}

func TestGetDoesNotLeakPins(t *testing.T) {
	f, _ := newFile(t, 2, 4)
	rid, err := f.Insert([]byte("x"))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := f.Get(rid, func([]byte) error { return nil }); err != nil {
			t.Fatal(err)
		}
	}
	if n := f.Pool().PinnedFrames(); n != 0 {
		t.Errorf("pinned frames after Gets = %d, want 0", n)
	}
	// Error from the callback still unpins.
	boom := errors.New("boom")
	if err := f.Get(rid, func([]byte) error { return boom }); !errors.Is(err, boom) {
		t.Errorf("callback error lost: %v", err)
	}
	if n := f.Pool().PinnedFrames(); n != 0 {
		t.Errorf("pinned frames after failing Get = %d, want 0", n)
	}
}

// --- device fault propagation through the heap layer ---

// TestHeapSurfacesDeviceFaults exercises disk.Sim.SetFault two layers
// up: a read fault on one extent page must surface from Get/Read and
// Scan, leave other pages readable, and clear with the injector.
func TestHeapSurfacesDeviceFaults(t *testing.T) {
	f, d := newFile(t, 4, 8)
	var rids []RID
	for i := 0; i < 4; i++ {
		rid, err := f.InsertAt(i, bytes.Repeat([]byte{byte(i)}, 16))
		if err != nil {
			t.Fatal(err)
		}
		rids = append(rids, rid)
	}
	// Drop everything to the device so reads hit it again.
	if err := f.Pool().EvictAll(); err != nil {
		t.Fatal(err)
	}

	bad := rids[2].Page
	d.SetFault(func(pg disk.PageID, write bool) error {
		if pg == bad && !write {
			return fmt.Errorf("%w: page %d", disk.ErrPermanent, pg)
		}
		return nil
	})
	if _, err := f.Read(rids[2]); !errors.Is(err, disk.ErrPermanent) {
		t.Fatalf("Read through faulted page = %v, want ErrPermanent", err)
	}
	// Records on healthy pages stay reachable.
	if rec, err := f.Read(rids[0]); err != nil || rec[0] != 0 {
		t.Fatalf("Read healthy page: rec=%v err=%v", rec, err)
	}
	// A full scan runs into the fault and reports it.
	if err := f.Scan(func(RID, []byte) bool { return true }); !errors.Is(err, disk.ErrPermanent) {
		t.Fatalf("Scan over faulted extent = %v, want ErrPermanent", err)
	}
	d.SetFault(nil)
	if err := f.Pool().EvictAll(); err != nil {
		t.Fatal(err)
	}
	if rec, err := f.Read(rids[2]); err != nil || rec[0] != 2 {
		t.Fatalf("Read after clearing fault: rec=%v err=%v", rec, err)
	}
}

// TestHeapPoolRetryAbsorbsTransient turns the pool retry policy on
// under the heap file: a transient device fault must be invisible to
// Get callers.
func TestHeapPoolRetryAbsorbsTransient(t *testing.T) {
	f, d := newFile(t, 2, 4)
	rid, err := f.InsertAt(1, []byte("payload-0123456"))
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Pool().EvictAll(); err != nil {
		t.Fatal(err)
	}
	f.Pool().SetRetry(disk.RetryPolicy{MaxAttempts: 3})
	remaining := 2
	d.SetFault(func(pg disk.PageID, write bool) error {
		if pg == rid.Page && !write && remaining > 0 {
			remaining--
			return fmt.Errorf("%w: page %d", disk.ErrTransient, pg)
		}
		return nil
	})
	rec, err := f.Read(rid)
	if err != nil {
		t.Fatalf("Read under transient faults: %v", err)
	}
	if string(rec) != "payload-0123456" {
		t.Fatalf("record corrupted: %q", rec)
	}
	if got := f.Pool().Stats().Retries; got != 2 {
		t.Errorf("pool retries = %d, want 2", got)
	}
}
