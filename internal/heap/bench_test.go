package heap

import (
	"testing"

	"revelation/internal/buffer"
	"revelation/internal/disk"
)

func benchFile(b *testing.B, pages, frames int) *File {
	b.Helper()
	d := disk.New(0)
	pool := buffer.New(d, frames, buffer.LRU)
	f, err := Create(pool, pages)
	if err != nil {
		b.Fatal(err)
	}
	return f
}

func BenchmarkInsertSequentialFill(b *testing.B) {
	f := benchFile(b, b.N/9+2, 64)
	rec := make([]byte, 96)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := f.Insert(rec); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGetWarm(b *testing.B) {
	f := benchFile(b, 128, 256)
	rec := make([]byte, 96)
	var rids []RID
	for {
		rid, err := f.Insert(rec)
		if err != nil {
			break
		}
		rids = append(rids, rid)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := f.Get(rids[i%len(rids)], func([]byte) error { return nil }); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGetColdSmallPool(b *testing.B) {
	f := benchFile(b, 512, 8)
	rec := make([]byte, 96)
	var rids []RID
	for {
		rid, err := f.Insert(rec)
		if err != nil {
			break
		}
		rids = append(rids, rid)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Stride so consecutive gets land on distant pages.
		rid := rids[(i*127)%len(rids)]
		if err := f.Get(rid, func([]byte) error { return nil }); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkScanFile(b *testing.B) {
	f := benchFile(b, 256, 512)
	rec := make([]byte, 96)
	for {
		if _, err := f.Insert(rec); err != nil {
			break
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := 0
		if err := f.Scan(func(RID, []byte) bool { n++; return true }); err != nil {
			b.Fatal(err)
		}
	}
}
