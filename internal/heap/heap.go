// Package heap implements record files over the buffer pool. A heap
// file occupies a contiguous extent of device pages; records are
// addressed by RID (page, slot).
//
// Unlike a conventional heap file, placement is explicit: InsertAt
// targets a specific page of the extent. The paper's clustering
// policies (unclustered, inter-object, intra-object — Figs. 8–10) are
// nothing but placement decisions, so the database generator needs to
// dictate exactly which page a record lands on.
package heap

import (
	"context"
	"errors"
	"fmt"

	"revelation/internal/buffer"
	"revelation/internal/disk"
	"revelation/internal/page"
)

// KindHeap tags heap file pages.
const KindHeap uint16 = 0x4845 // "HE"

// Common errors.
var (
	ErrFull       = errors.New("heap: extent full")
	ErrBadPage    = errors.New("heap: page index out of extent")
	ErrNotInEtent = errors.New("heap: rid outside this file")
)

// RID is a record identifier: the physical address of a record.
type RID struct {
	Page disk.PageID
	Slot page.SlotID
}

// NilRID is the zero-value "no record" RID; page 0 is never part of a
// heap extent in practice because extents are allocated after metadata,
// but compare against explicit validity where it matters.
var NilRID = RID{Page: disk.InvalidPage}

// Valid reports whether the RID refers to a real record address.
func (r RID) Valid() bool { return r.Page != disk.InvalidPage }

func (r RID) String() string { return fmt.Sprintf("(%d,%d)", r.Page, r.Slot) }

// File is a heap file over a contiguous page extent.
type File struct {
	pool  *buffer.Pool
	first disk.PageID
	n     int
	// appendHint is the extent-relative index of the first page that
	// may still have free space, maintained by Insert.
	appendHint int
}

// Create allocates an extent of nPages pages on the pool's device,
// formats them as empty heap pages, and returns the file.
func Create(pool *buffer.Pool, nPages int) (*File, error) {
	if nPages < 1 {
		return nil, fmt.Errorf("heap: create with %d pages", nPages)
	}
	first, err := pool.Device().Allocate(nPages)
	if err != nil {
		return nil, err
	}
	f := &File{pool: pool, first: first, n: nPages}
	for i := 0; i < nPages; i++ {
		fr, err := pool.Fix(first + disk.PageID(i))
		if err != nil {
			return nil, err
		}
		page.Wrap(fr.Data()).Init(KindHeap)
		if err := pool.Unfix(fr, true); err != nil {
			return nil, err
		}
	}
	return f, nil
}

// Open wraps an existing extent previously built by Create.
func Open(pool *buffer.Pool, first disk.PageID, nPages int) *File {
	return &File{pool: pool, first: first, n: nPages}
}

// First returns the extent's first page id.
func (f *File) First() disk.PageID { return f.first }

// NumPages returns the extent length in pages.
func (f *File) NumPages() int { return f.n }

// Pool returns the buffer pool the file runs against.
func (f *File) Pool() *buffer.Pool { return f.pool }

// Contains reports whether the RID falls inside this file's extent.
func (f *File) Contains(rid RID) bool {
	return rid.Page >= f.first && rid.Page < f.first+disk.PageID(f.n)
}

// PageAt translates an extent-relative index to a device page id.
func (f *File) PageAt(idx int) (disk.PageID, error) {
	if idx < 0 || idx >= f.n {
		return disk.InvalidPage, fmt.Errorf("%w: %d of %d", ErrBadPage, idx, f.n)
	}
	return f.first + disk.PageID(idx), nil
}

// InsertAt places rec on the idx-th page of the extent. It fails with
// page.ErrPageFull when that page cannot hold the record.
func (f *File) InsertAt(idx int, rec []byte) (RID, error) {
	pid, err := f.PageAt(idx)
	if err != nil {
		return NilRID, err
	}
	fr, err := f.pool.Fix(pid)
	if err != nil {
		return NilRID, err
	}
	slot, ierr := page.Wrap(fr.Data()).Insert(rec)
	uerr := f.pool.Unfix(fr, ierr == nil)
	if ierr != nil {
		return NilRID, ierr
	}
	if uerr != nil {
		return NilRID, uerr
	}
	return RID{Page: pid, Slot: slot}, nil
}

// Insert places rec on the first extent page with room, scanning from
// the append hint. It fails with ErrFull when the extent is exhausted.
func (f *File) Insert(rec []byte) (RID, error) {
	for idx := f.appendHint; idx < f.n; idx++ {
		rid, err := f.InsertAt(idx, rec)
		if err == nil {
			f.appendHint = idx
			return rid, nil
		}
		if !errors.Is(err, page.ErrPageFull) {
			return NilRID, err
		}
	}
	return NilRID, ErrFull
}

// Get invokes fn with the record bytes while the page is pinned. The
// slice passed to fn aliases buffer memory and must not be retained.
func (f *File) Get(rid RID, fn func(rec []byte) error) error {
	return f.GetCtx(nil, rid, fn)
}

// GetCtx is Get with per-query attribution: the pool fix (and any
// device read behind it) is charged to the query span carried in ctx.
// A nil ctx behaves exactly like Get.
func (f *File) GetCtx(ctx context.Context, rid RID, fn func(rec []byte) error) error {
	if !f.Contains(rid) {
		return fmt.Errorf("%w: %v", ErrNotInEtent, rid)
	}
	fr, err := f.pool.FixAs(ctx, rid.Page)
	if err != nil {
		return err
	}
	rec, gerr := page.Wrap(fr.Data()).Get(rid.Slot)
	if gerr == nil {
		gerr = fn(rec)
	}
	if uerr := f.pool.Unfix(fr, false); gerr == nil {
		gerr = uerr
	}
	return gerr
}

// Read returns a copy of the record bytes.
func (f *File) Read(rid RID) ([]byte, error) {
	var out []byte
	err := f.Get(rid, func(rec []byte) error {
		out = append([]byte(nil), rec...)
		return nil
	})
	return out, err
}

// Update replaces the record at rid.
func (f *File) Update(rid RID, rec []byte) error {
	if !f.Contains(rid) {
		return fmt.Errorf("%w: %v", ErrNotInEtent, rid)
	}
	fr, err := f.pool.Fix(rid.Page)
	if err != nil {
		return err
	}
	uerr := page.Wrap(fr.Data()).Update(rid.Slot, rec)
	if e := f.pool.Unfix(fr, uerr == nil); uerr == nil {
		uerr = e
	}
	return uerr
}

// Delete removes the record at rid.
func (f *File) Delete(rid RID) error {
	if !f.Contains(rid) {
		return fmt.Errorf("%w: %v", ErrNotInEtent, rid)
	}
	fr, err := f.pool.Fix(rid.Page)
	if err != nil {
		return err
	}
	derr := page.Wrap(fr.Data()).Delete(rid.Slot)
	if e := f.pool.Unfix(fr, derr == nil); derr == nil {
		derr = e
	}
	return derr
}

// Check validates every page of the extent: each must wrap a
// structurally sound slotted page (bounds-checked slot directory, see
// page.Validate) tagged KindHeap. It is the post-recovery integrity
// sweep for heap files; checksum verification already happened on the
// way into the pool.
func (f *File) Check() error {
	for idx := 0; idx < f.n; idx++ {
		pid := f.first + disk.PageID(idx)
		fr, err := f.pool.Fix(pid)
		if err != nil {
			return fmt.Errorf("heap: check page %d: %w", pid, err)
		}
		p := page.Wrap(fr.Data())
		verr := p.Validate()
		if verr == nil && p.Kind() != KindHeap {
			verr = fmt.Errorf("heap: page %d kind %#x, want %#x", pid, p.Kind(), KindHeap)
		}
		if uerr := f.pool.Unfix(fr, false); verr == nil {
			verr = uerr
		}
		if verr != nil {
			return verr
		}
	}
	return nil
}

// Scan calls fn for every live record in physical order; fn returning
// false stops the scan early. The record slice is only valid during
// the callback.
func (f *File) Scan(fn func(rid RID, rec []byte) bool) error {
	for idx := 0; idx < f.n; idx++ {
		pid := f.first + disk.PageID(idx)
		fr, err := f.pool.Fix(pid)
		if err != nil {
			return err
		}
		stop := false
		page.Wrap(fr.Data()).Records(func(s page.SlotID, rec []byte) bool {
			if !fn(RID{Page: pid, Slot: s}, rec) {
				stop = true
				return false
			}
			return true
		})
		if err := f.pool.Unfix(fr, false); err != nil {
			return err
		}
		if stop {
			return nil
		}
	}
	return nil
}

// ScanPage calls fn for every live record on the idx-th extent page.
func (f *File) ScanPage(idx int, fn func(rid RID, rec []byte) bool) error {
	pid, err := f.PageAt(idx)
	if err != nil {
		return err
	}
	fr, err := f.pool.Fix(pid)
	if err != nil {
		return err
	}
	page.Wrap(fr.Data()).Records(func(s page.SlotID, rec []byte) bool {
		return fn(RID{Page: pid, Slot: s}, rec)
	})
	return f.pool.Unfix(fr, false)
}

// Count returns the number of live records in the file.
func (f *File) Count() (int, error) {
	n := 0
	err := f.Scan(func(RID, []byte) bool { n++; return true })
	return n, err
}
