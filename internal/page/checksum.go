package page

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"

	"revelation/internal/disk"
)

// ErrChecksum marks a page image whose stored checksum does not match
// its contents — a torn write, bit rot, or a stray overwrite. A page
// that fails verification must never be interpreted; recovery (package
// wal) restores it from a logged image instead.
var ErrChecksum = errors.New("page: checksum mismatch")

// castagnoli is the CRC-32C polynomial table. CRC-32C is the standard
// storage checksum (iSCSI, ext4, Btrfs) and is hardware-accelerated on
// amd64 and arm64, so stamping a 1 KB page costs well under a
// microsecond.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// zeroField stands in for the checksum field while summing, so the
// stored value never feeds its own computation.
var zeroField [checksumLen]byte

const checksumLen = 4

// Sum computes the image's checksum: CRC-32C over the whole page with
// the checksum field itself treated as zero. Images shorter than the
// header are summed as-is (they can never verify as pages).
func Sum(buf []byte) uint32 {
	if len(buf) < HeaderSize {
		return crc32.Update(0, castagnoli, buf)
	}
	crc := crc32.Update(0, castagnoli, buf[:offChecksum])
	crc = crc32.Update(crc, castagnoli, zeroField[:])
	return crc32.Update(crc, castagnoli, buf[offChecksum+checksumLen:])
}

// StoredChecksum reads the checksum recorded in the image's header.
func StoredChecksum(buf []byte) uint32 {
	if len(buf) < HeaderSize {
		return 0
	}
	return binary.LittleEndian.Uint32(buf[offChecksum:])
}

// Stamp records the image's current checksum in its header. The buffer
// pool stamps every page on its way to the device; the WAL stamps every
// image it logs.
func Stamp(buf []byte) {
	if len(buf) < HeaderSize {
		return
	}
	binary.LittleEndian.PutUint32(buf[offChecksum:], Sum(buf))
}

// ZeroImage reports whether the image is entirely zero bytes: a page
// that was allocated but never written. Such pages verify vacuously —
// they hold no data to misread.
func ZeroImage(buf []byte) bool {
	for _, b := range buf {
		if b != 0 {
			return false
		}
	}
	return true
}

// Verify checks the image against its stored checksum. All-zero images
// (allocated, never written) pass; anything else must match exactly.
// The error wraps ErrChecksum so callers classify with errors.Is.
func Verify(buf []byte) error {
	if len(buf) < HeaderSize {
		return fmt.Errorf("%w: image of %d bytes", ErrCorruptPage, len(buf))
	}
	stored := StoredChecksum(buf)
	if stored == 0 && ZeroImage(buf) {
		return nil
	}
	if sum := Sum(buf); sum != stored {
		return fmt.Errorf("%w: stored %08x, computed %08x", ErrChecksum, stored, sum)
	}
	return nil
}

// Checksum returns the page's stored checksum.
func (p *Page) Checksum() uint32 { return StoredChecksum(p.buf) }

// Stamp records the page's current checksum in its header.
func (p *Page) Stamp() { Stamp(p.buf) }

// VerifyChecksum checks the page against its stored checksum.
func (p *Page) VerifyChecksum() error { return Verify(p.buf) }

// VerifyDevice checksum-scans every page of dev and returns the ids
// that fail verification. A non-nil error reports an I/O failure, not a
// checksum failure; the returned slice is valid either way for the
// pages scanned so far.
func VerifyDevice(dev disk.Device) ([]disk.PageID, error) {
	buf := make([]byte, dev.PageSize())
	var bad []disk.PageID
	for i := 0; i < dev.NumPages(); i++ {
		id := disk.PageID(i)
		if err := dev.ReadPage(id, buf); err != nil {
			return bad, fmt.Errorf("page: verify device: %w", err)
		}
		if Verify(buf) != nil {
			bad = append(bad, id)
		}
	}
	return bad, nil
}
