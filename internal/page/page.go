// Package page implements the slotted-page record layout used by heap
// files and the B+-tree. A page is a fixed-size byte slice with a small
// header, a slot directory growing from the front, and record data
// growing from the back:
//
//	+--------+------------------+ ................ +-----------+
//	| header | slot 0 | slot 1 |   free space      | rec1 |rec0 |
//	+--------+------------------+ ................ +-----------+
//
// Header layout (32 bytes):
//
//	[0:2)   uint16 number of slots (including dead ones)
//	[2:4)   uint16 offset of the start of record data (free-space end)
//	[4:6)   uint16 bytes of live record data (for compaction accounting)
//	[6:8)   uint16 page kind tag (opaque to this package)
//	[8:12)  uint32 next-page link (heap file chaining; InvalidPage if none)
//	[12:16) uint32 self page id (integrity checks)
//	[16:24) uint64 LSN (log sequence number of the last WAL record
//	        describing this page; see internal/wal)
//	[24:28) uint32 CRC-32C page checksum (stamped on flush, verified
//	        on read; computed with this field zeroed — see checksum.go)
//	[28:32) reserved
//
// With this header, 4-byte slots, and 96-byte object records, exactly
// nine objects fit a 1 KB page — the geometry stated in the paper's
// Section 6.
//
// Each slot is 4 bytes: uint16 record offset, uint16 record length.
// Offset 0 marks a dead slot (records can never start at offset 0
// because the header occupies it).
package page

import (
	"encoding/binary"
	"errors"
	"fmt"

	"revelation/internal/disk"
)

const (
	// HeaderSize is the fixed page header length in bytes.
	HeaderSize = 32
	// SlotSize is the per-record slot directory entry length.
	SlotSize = 4

	offNumSlots = 0
	offFreeEnd  = 2
	offLiveData = 4
	offKind     = 6
	offNext     = 8
	offSelf     = 12
	offLSN      = 16
	offChecksum = 24
)

// Common errors.
var (
	ErrPageFull    = errors.New("page: not enough free space")
	ErrBadSlot     = errors.New("page: invalid slot")
	ErrDeadSlot    = errors.New("page: slot is dead")
	ErrRecordSize  = errors.New("page: record too large for a page")
	ErrCorruptPage = errors.New("page: corrupt page image")
)

// SlotID identifies a record within a page.
type SlotID uint16

// Page wraps a raw page image with slotted-record operations. The
// underlying buffer is owned by the buffer pool; Page never allocates.
type Page struct {
	buf []byte
}

// Wrap interprets buf as a slotted page. It does not validate; call
// Init on fresh pages before first use.
func Wrap(buf []byte) *Page { return &Page{buf: buf} }

// Init formats the page as empty with the given kind tag.
func (p *Page) Init(kind uint16) {
	for i := range p.buf {
		p.buf[i] = 0
	}
	binary.LittleEndian.PutUint16(p.buf[offNumSlots:], 0)
	binary.LittleEndian.PutUint16(p.buf[offFreeEnd:], uint16(len(p.buf)))
	binary.LittleEndian.PutUint16(p.buf[offLiveData:], 0)
	binary.LittleEndian.PutUint16(p.buf[offKind:], kind)
	binary.LittleEndian.PutUint32(p.buf[offNext:], uint32(disk.InvalidPage))
}

// Bytes exposes the raw image (for the buffer pool to flush).
func (p *Page) Bytes() []byte { return p.buf }

// Kind returns the page kind tag set at Init.
func (p *Page) Kind() uint16 { return binary.LittleEndian.Uint16(p.buf[offKind:]) }

// SetKind updates the page kind tag.
func (p *Page) SetKind(kind uint16) { binary.LittleEndian.PutUint16(p.buf[offKind:], kind) }

// Next returns the next-page link used for heap file chaining.
func (p *Page) Next() disk.PageID {
	return disk.PageID(binary.LittleEndian.Uint32(p.buf[offNext:]))
}

// SetNext updates the next-page link.
func (p *Page) SetNext(id disk.PageID) {
	binary.LittleEndian.PutUint32(p.buf[offNext:], uint32(id))
}

// Self returns the page's recorded own id (set by the layer that owns
// the page; zero if never set).
func (p *Page) Self() disk.PageID {
	return disk.PageID(binary.LittleEndian.Uint32(p.buf[offSelf:]))
}

// SetSelf records the page's own id for integrity checking.
func (p *Page) SetSelf(id disk.PageID) {
	binary.LittleEndian.PutUint32(p.buf[offSelf:], uint32(id))
}

// LSN returns the page's log sequence number: the LSN of the newest
// WAL record holding this page's image. Zero means the page has never
// been logged.
func (p *Page) LSN() uint64 { return binary.LittleEndian.Uint64(p.buf[offLSN:]) }

// SetLSN records the page's log sequence number.
func (p *Page) SetLSN(lsn uint64) { binary.LittleEndian.PutUint64(p.buf[offLSN:], lsn) }

// NumSlots returns the size of the slot directory (including dead slots).
func (p *Page) NumSlots() int {
	return int(binary.LittleEndian.Uint16(p.buf[offNumSlots:]))
}

func (p *Page) freeEnd() int {
	return int(binary.LittleEndian.Uint16(p.buf[offFreeEnd:]))
}

func (p *Page) liveData() int {
	return int(binary.LittleEndian.Uint16(p.buf[offLiveData:]))
}

func (p *Page) slotOffLen(s SlotID) (off, length int) {
	base := HeaderSize + int(s)*SlotSize
	off = int(binary.LittleEndian.Uint16(p.buf[base:]))
	length = int(binary.LittleEndian.Uint16(p.buf[base+2:]))
	return off, length
}

// slotInBounds reports whether slot s's directory entry lies within the
// image. A hostile slot count can claim a directory past the page end;
// every accessor checks before dereferencing.
func (p *Page) slotInBounds(s SlotID) bool {
	return HeaderSize+(int(s)+1)*SlotSize <= len(p.buf)
}

// headerSane reports whether the free-space pointer can be trusted for
// placement arithmetic. Mutating operations refuse pages that fail it.
func (p *Page) headerSane() bool {
	fe := p.freeEnd()
	return fe >= HeaderSize && fe <= len(p.buf) &&
		HeaderSize+p.NumSlots()*SlotSize <= len(p.buf)
}

// Validate bounds-checks the header and the whole slot directory
// against the image, so a corrupt or hostile page is rejected before
// any record access can misread it. It checks: the slot directory fits
// the page; the free-space pointer lies between the directory and the
// page end; every live slot's record lies entirely inside
// [freeEnd, len); dead slots carry zero length; and the live-data
// accounting matches the sum of live record lengths.
func (p *Page) Validate() error {
	if len(p.buf) < HeaderSize {
		return fmt.Errorf("%w: image of %d bytes", ErrCorruptPage, len(p.buf))
	}
	n := p.NumSlots()
	dirEnd := HeaderSize + n*SlotSize
	if dirEnd > len(p.buf) {
		return fmt.Errorf("%w: %d slots overflow %d-byte page", ErrCorruptPage, n, len(p.buf))
	}
	fe := p.freeEnd()
	if fe < dirEnd || fe > len(p.buf) {
		return fmt.Errorf("%w: free end %d outside [%d,%d]", ErrCorruptPage, fe, dirEnd, len(p.buf))
	}
	live := 0
	for s := 0; s < n; s++ {
		off, length := p.slotOffLen(SlotID(s))
		if off == 0 {
			if length != 0 {
				return fmt.Errorf("%w: dead slot %d with length %d", ErrCorruptPage, s, length)
			}
			continue
		}
		if off < fe || off+length > len(p.buf) {
			return fmt.Errorf("%w: slot %d record [%d,%d) outside [%d,%d)",
				ErrCorruptPage, s, off, off+length, fe, len(p.buf))
		}
		live += length
	}
	if live != p.liveData() {
		return fmt.Errorf("%w: live data %d, slots sum to %d", ErrCorruptPage, p.liveData(), live)
	}
	return nil
}

func (p *Page) setSlot(s SlotID, off, length int) {
	base := HeaderSize + int(s)*SlotSize
	binary.LittleEndian.PutUint16(p.buf[base:], uint16(off))
	binary.LittleEndian.PutUint16(p.buf[base+2:], uint16(length))
}

// FreeSpace reports the bytes available for a new record, accounting
// for the slot directory entry the record would need.
func (p *Page) FreeSpace() int {
	free := p.freeEnd() - (HeaderSize + p.NumSlots()*SlotSize)
	free -= SlotSize // the new record's slot entry
	if free < 0 {
		return 0
	}
	return free
}

// MaxRecordSize is the largest record Insert can ever accept for the
// given page size.
func MaxRecordSize(pageSize int) int {
	return pageSize - HeaderSize - SlotSize
}

// Insert adds a record and returns its slot. A dead slot is reused if
// one exists; the directory grows otherwise. Returns ErrPageFull when
// the record does not fit.
func (p *Page) Insert(rec []byte) (SlotID, error) {
	if len(rec) > MaxRecordSize(len(p.buf)) {
		return 0, fmt.Errorf("%w: %d bytes", ErrRecordSize, len(rec))
	}
	if !p.headerSane() {
		return 0, fmt.Errorf("%w: free end %d of %d", ErrCorruptPage, p.freeEnd(), len(p.buf))
	}
	// Find a dead slot to reuse.
	slot := SlotID(p.NumSlots())
	reuse := false
	for s := 0; s < p.NumSlots(); s++ {
		if off, _ := p.slotOffLen(SlotID(s)); off == 0 {
			slot = SlotID(s)
			reuse = true
			break
		}
	}
	need := len(rec)
	if !reuse {
		need += SlotSize
	}
	if p.freeEnd()-(HeaderSize+p.NumSlots()*SlotSize) < need {
		// Try compaction before giving up: dead slots may have left
		// holes in the record area.
		p.compact()
		if p.freeEnd()-(HeaderSize+p.NumSlots()*SlotSize) < need {
			return 0, ErrPageFull
		}
	}
	newEnd := p.freeEnd() - len(rec)
	copy(p.buf[newEnd:], rec)
	binary.LittleEndian.PutUint16(p.buf[offFreeEnd:], uint16(newEnd))
	binary.LittleEndian.PutUint16(p.buf[offLiveData:], uint16(p.liveData()+len(rec)))
	if !reuse {
		binary.LittleEndian.PutUint16(p.buf[offNumSlots:], uint16(p.NumSlots()+1))
	}
	p.setSlot(slot, newEnd, len(rec))
	return slot, nil
}

// Get returns a view of the record in slot s. The returned slice
// aliases the page image and is only valid while the page stays pinned
// and unmodified.
func (p *Page) Get(s SlotID) ([]byte, error) {
	if int(s) >= p.NumSlots() {
		return nil, fmt.Errorf("%w: slot %d of %d", ErrBadSlot, s, p.NumSlots())
	}
	if !p.slotInBounds(s) {
		return nil, fmt.Errorf("%w: slot %d directory entry past page end", ErrCorruptPage, s)
	}
	off, length := p.slotOffLen(s)
	if off == 0 {
		return nil, fmt.Errorf("%w: slot %d", ErrDeadSlot, s)
	}
	if off < HeaderSize || off+length > len(p.buf) {
		return nil, fmt.Errorf("%w: slot %d record [%d,%d) out of bounds", ErrCorruptPage, s, off, off+length)
	}
	return p.buf[off : off+length], nil
}

// Delete marks slot s dead and releases its record bytes for future
// compaction.
func (p *Page) Delete(s SlotID) error {
	if int(s) >= p.NumSlots() {
		return fmt.Errorf("%w: slot %d of %d", ErrBadSlot, s, p.NumSlots())
	}
	if !p.slotInBounds(s) {
		return fmt.Errorf("%w: slot %d directory entry past page end", ErrCorruptPage, s)
	}
	off, length := p.slotOffLen(s)
	if off == 0 {
		return fmt.Errorf("%w: slot %d", ErrDeadSlot, s)
	}
	p.setSlot(s, 0, 0)
	binary.LittleEndian.PutUint16(p.buf[offLiveData:], uint16(p.liveData()-length))
	return nil
}

// Update replaces the record in slot s. Same-length updates happen in
// place; otherwise the record is re-placed, possibly after compaction.
func (p *Page) Update(s SlotID, rec []byte) error {
	if int(s) >= p.NumSlots() {
		return fmt.Errorf("%w: slot %d of %d", ErrBadSlot, s, p.NumSlots())
	}
	if !p.slotInBounds(s) {
		return fmt.Errorf("%w: slot %d directory entry past page end", ErrCorruptPage, s)
	}
	off, length := p.slotOffLen(s)
	if off == 0 {
		return fmt.Errorf("%w: slot %d", ErrDeadSlot, s)
	}
	if off < HeaderSize || off+length > len(p.buf) {
		return fmt.Errorf("%w: slot %d record [%d,%d) out of bounds", ErrCorruptPage, s, off, off+length)
	}
	if !p.headerSane() {
		return fmt.Errorf("%w: free end %d of %d", ErrCorruptPage, p.freeEnd(), len(p.buf))
	}
	if len(rec) == length {
		copy(p.buf[off:], rec)
		return nil
	}
	if len(rec) > MaxRecordSize(len(p.buf)) {
		return fmt.Errorf("%w: %d bytes", ErrRecordSize, len(rec))
	}
	// Check fit before mutating anything, so a failed update leaves
	// the old record intact: after compaction, the reusable space is
	// everything but the header, the slot directory, and the *other*
	// live records.
	avail := len(p.buf) - HeaderSize - p.NumSlots()*SlotSize - (p.liveData() - length)
	if len(rec) > avail {
		return ErrPageFull
	}
	// Delete then re-insert into the same slot.
	p.setSlot(s, 0, 0)
	binary.LittleEndian.PutUint16(p.buf[offLiveData:], uint16(p.liveData()-length))
	if p.freeEnd()-(HeaderSize+p.NumSlots()*SlotSize) < len(rec) {
		p.compact()
	}
	newEnd := p.freeEnd() - len(rec)
	copy(p.buf[newEnd:], rec)
	binary.LittleEndian.PutUint16(p.buf[offFreeEnd:], uint16(newEnd))
	binary.LittleEndian.PutUint16(p.buf[offLiveData:], uint16(p.liveData()+len(rec)))
	p.setSlot(s, newEnd, len(rec))
	return nil
}

// compact rewrites live records contiguously at the end of the page,
// squeezing out holes left by deletes and updates.
func (p *Page) compact() {
	type rec struct {
		slot SlotID
		data []byte
	}
	var live []rec
	for s := 0; s < p.NumSlots() && p.slotInBounds(SlotID(s)); s++ {
		off, length := p.slotOffLen(SlotID(s))
		if off < HeaderSize || off+length > len(p.buf) {
			// Dead (off==0) or corrupt; either way there is nothing
			// safe to relocate.
			continue
		}
		cp := make([]byte, length)
		copy(cp, p.buf[off:off+length])
		live = append(live, rec{SlotID(s), cp})
	}
	end := len(p.buf)
	for _, r := range live {
		end -= len(r.data)
		copy(p.buf[end:], r.data)
		p.setSlot(r.slot, end, len(r.data))
	}
	binary.LittleEndian.PutUint16(p.buf[offFreeEnd:], uint16(end))
}

// Records calls fn for every live record in slot order, stopping early
// if fn returns false.
func (p *Page) Records(fn func(s SlotID, rec []byte) bool) {
	for s := 0; s < p.NumSlots() && p.slotInBounds(SlotID(s)); s++ {
		off, length := p.slotOffLen(SlotID(s))
		if off < HeaderSize || off+length > len(p.buf) {
			continue
		}
		if !fn(SlotID(s), p.buf[off:off+length]) {
			return
		}
	}
}

// LiveRecords counts the live records on the page.
func (p *Page) LiveRecords() int {
	n := 0
	p.Records(func(SlotID, []byte) bool { n++; return true })
	return n
}
