package page

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"revelation/internal/disk"
)

func newPage(t *testing.T, size int) *Page {
	t.Helper()
	p := Wrap(make([]byte, size))
	p.Init(1)
	return p
}

func TestInsertGetRoundTrip(t *testing.T) {
	p := newPage(t, 1024)
	recs := [][]byte{
		[]byte("alpha"),
		[]byte("beta"),
		[]byte(""),
		bytes.Repeat([]byte{0xAB}, 200),
	}
	var slots []SlotID
	for _, r := range recs {
		s, err := p.Insert(r)
		if err != nil {
			t.Fatalf("Insert(%q): %v", r, err)
		}
		slots = append(slots, s)
	}
	for i, s := range slots {
		got, err := p.Get(s)
		if err != nil {
			t.Fatalf("Get(%d): %v", s, err)
		}
		if !bytes.Equal(got, recs[i]) {
			t.Errorf("slot %d: got %q want %q", s, got, recs[i])
		}
	}
	if p.LiveRecords() != len(recs) {
		t.Errorf("LiveRecords = %d, want %d", p.LiveRecords(), len(recs))
	}
}

func TestInsertUntilFull(t *testing.T) {
	p := newPage(t, 1024)
	rec := make([]byte, 96)
	n := 0
	for {
		if _, err := p.Insert(rec); err != nil {
			if !errors.Is(err, ErrPageFull) {
				t.Fatalf("unexpected error: %v", err)
			}
			break
		}
		n++
	}
	// The paper's geometry: 9 objects of 96 bytes per 1 KB page.
	if n != 9 {
		t.Errorf("96-byte records per 1 KB page = %d, want 9", n)
	}
}

func TestRecordTooLarge(t *testing.T) {
	p := newPage(t, 256)
	if _, err := p.Insert(make([]byte, 256)); !errors.Is(err, ErrRecordSize) {
		t.Errorf("oversized insert err = %v, want ErrRecordSize", err)
	}
	if _, err := p.Insert(make([]byte, MaxRecordSize(256))); err != nil {
		t.Errorf("max-size insert failed: %v", err)
	}
}

func TestDeleteAndReuse(t *testing.T) {
	p := newPage(t, 1024)
	s1, _ := p.Insert([]byte("one"))
	s2, err := p.Insert([]byte("two"))
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Delete(s1); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Get(s1); !errors.Is(err, ErrDeadSlot) {
		t.Errorf("Get deleted slot err = %v, want ErrDeadSlot", err)
	}
	if err := p.Delete(s1); !errors.Is(err, ErrDeadSlot) {
		t.Errorf("double delete err = %v, want ErrDeadSlot", err)
	}
	// Reinsert must reuse the dead slot.
	s3, err := p.Insert([]byte("three"))
	if err != nil {
		t.Fatal(err)
	}
	if s3 != s1 {
		t.Errorf("dead slot not reused: got %d want %d", s3, s1)
	}
	got, err := p.Get(s2)
	if err != nil || string(got) != "two" {
		t.Errorf("surviving record damaged: %q, %v", got, err)
	}
}

func TestDeleteBadSlot(t *testing.T) {
	p := newPage(t, 512)
	if err := p.Delete(7); !errors.Is(err, ErrBadSlot) {
		t.Errorf("Delete(7) err = %v, want ErrBadSlot", err)
	}
	if _, err := p.Get(3); !errors.Is(err, ErrBadSlot) {
		t.Errorf("Get(3) err = %v, want ErrBadSlot", err)
	}
}

func TestUpdateInPlace(t *testing.T) {
	p := newPage(t, 512)
	s, _ := p.Insert([]byte("aaaa"))
	if err := p.Update(s, []byte("bbbb")); err != nil {
		t.Fatal(err)
	}
	got, _ := p.Get(s)
	if string(got) != "bbbb" {
		t.Errorf("in-place update: got %q", got)
	}
}

func TestUpdateResize(t *testing.T) {
	p := newPage(t, 512)
	s, _ := p.Insert([]byte("short"))
	other, _ := p.Insert([]byte("other"))
	long := bytes.Repeat([]byte("x"), 100)
	if err := p.Update(s, long); err != nil {
		t.Fatal(err)
	}
	got, _ := p.Get(s)
	if !bytes.Equal(got, long) {
		t.Errorf("grown update lost data")
	}
	if g, _ := p.Get(other); string(g) != "other" {
		t.Errorf("neighbour record damaged: %q", g)
	}
	if err := p.Update(s, []byte("y")); err != nil {
		t.Fatal(err)
	}
	if got, _ := p.Get(s); string(got) != "y" {
		t.Errorf("shrunk update: got %q", got)
	}
}

func TestUpdateFailureLeavesRecordIntact(t *testing.T) {
	// Found by FuzzPageOps: a grown update that cannot fit must leave
	// the old record readable, not destroy it.
	p := newPage(t, 256)
	s, err := p.Insert([]byte("precious"))
	if err != nil {
		t.Fatal(err)
	}
	// Fill the rest of the page.
	for {
		if _, err := p.Insert(make([]byte, 40)); err != nil {
			break
		}
	}
	if err := p.Update(s, make([]byte, 200)); !errors.Is(err, ErrPageFull) {
		t.Fatalf("oversized update err = %v, want ErrPageFull", err)
	}
	got, err := p.Get(s)
	if err != nil {
		t.Fatalf("record destroyed by failed update: %v", err)
	}
	if string(got) != "precious" {
		t.Fatalf("record corrupted by failed update: %q", got)
	}
}

func TestCompactionReclaimsSpace(t *testing.T) {
	p := newPage(t, 1024)
	var slots []SlotID
	rec := make([]byte, 90)
	for {
		s, err := p.Insert(rec)
		if err != nil {
			break
		}
		slots = append(slots, s)
	}
	// Free every other record; the holes are not contiguous, so a new
	// large record only fits after compaction.
	for i := 0; i < len(slots); i += 2 {
		if err := p.Delete(slots[i]); err != nil {
			t.Fatal(err)
		}
	}
	big := make([]byte, 180)
	for i := range big {
		big[i] = 0x5A
	}
	if _, err := p.Insert(big); err != nil {
		t.Fatalf("insert after fragmentation: %v", err)
	}
	// Survivors intact?
	for i := 1; i < len(slots); i += 2 {
		got, err := p.Get(slots[i])
		if err != nil {
			t.Fatalf("survivor %d: %v", slots[i], err)
		}
		if !bytes.Equal(got, rec) {
			t.Errorf("survivor %d corrupted", slots[i])
		}
	}
}

func TestNextLink(t *testing.T) {
	p := newPage(t, 256)
	if p.Next() != disk.InvalidPage {
		t.Errorf("fresh page Next = %d, want InvalidPage", p.Next())
	}
	p.SetNext(42)
	if p.Next() != 42 {
		t.Errorf("Next = %d, want 42", p.Next())
	}
}

func TestKindTag(t *testing.T) {
	p := newPage(t, 256)
	if p.Kind() != 1 {
		t.Errorf("Kind = %d, want 1", p.Kind())
	}
	p.SetKind(0xBEEF)
	if p.Kind() != 0xBEEF {
		t.Errorf("Kind = %#x, want 0xBEEF", p.Kind())
	}
}

func TestRecordsIterationOrderAndEarlyStop(t *testing.T) {
	p := newPage(t, 1024)
	for i := 0; i < 5; i++ {
		if _, err := p.Insert([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	var seen []byte
	p.Records(func(s SlotID, rec []byte) bool {
		seen = append(seen, rec[0])
		return rec[0] < 2
	})
	if len(seen) != 3 || seen[0] != 0 || seen[1] != 1 || seen[2] != 2 {
		t.Errorf("early-stop iteration saw %v", seen)
	}
}

// Property: any sequence of inserts and deletes leaves the page
// consistent — every live record readable with its original contents.
func TestInsertDeleteProperty(t *testing.T) {
	f := func(ops []uint16, seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := Wrap(make([]byte, 1024))
		p.Init(0)
		live := map[SlotID][]byte{}
		for _, op := range ops {
			if op%3 != 0 && len(live) > 0 {
				// delete a random live slot
				var keys []SlotID
				for k := range live {
					keys = append(keys, k)
				}
				k := keys[rng.Intn(len(keys))]
				if err := p.Delete(k); err != nil {
					return false
				}
				delete(live, k)
				continue
			}
			rec := make([]byte, int(op%120))
			rng.Read(rec)
			s, err := p.Insert(rec)
			if err != nil {
				if errors.Is(err, ErrPageFull) {
					continue
				}
				return false
			}
			live[s] = rec
		}
		for s, want := range live {
			got, err := p.Get(s)
			if err != nil || !bytes.Equal(got, want) {
				return false
			}
		}
		return p.LiveRecords() == len(live)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestFreeSpaceMonotonicity(t *testing.T) {
	p := newPage(t, 1024)
	prev := p.FreeSpace()
	for {
		if _, err := p.Insert(make([]byte, 50)); err != nil {
			break
		}
		cur := p.FreeSpace()
		if cur >= prev {
			t.Fatalf("FreeSpace did not shrink: %d -> %d", prev, cur)
		}
		prev = cur
	}
}
