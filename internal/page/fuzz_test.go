package page

import (
	"bytes"
	"errors"
	"testing"
)

// FuzzPageOps drives a slotted page with an arbitrary operation tape:
// whatever the sequence, the page must not panic and every live record
// must read back exactly as written.
func FuzzPageOps(f *testing.F) {
	f.Add([]byte{0, 10, 1, 0, 0, 30, 2, 1})
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0, 100}, 30))
	f.Fuzz(func(t *testing.T, tape []byte) {
		p := Wrap(make([]byte, 512))
		p.Init(1)
		live := map[SlotID]byte{}
		var order []SlotID
		for i := 0; i+1 < len(tape); i += 2 {
			op, arg := tape[i], tape[i+1]
			switch op % 3 {
			case 0: // insert a record of arg%120 bytes filled with arg
				rec := bytes.Repeat([]byte{arg}, int(arg)%120)
				s, err := p.Insert(rec)
				if err != nil {
					continue
				}
				live[s] = arg
				order = append(order, s)
			case 1: // delete an existing slot (if any)
				if len(order) == 0 {
					continue
				}
				s := order[int(arg)%len(order)]
				if _, ok := live[s]; !ok {
					continue
				}
				if err := p.Delete(s); err != nil {
					t.Fatalf("delete live slot %d: %v", s, err)
				}
				delete(live, s)
			case 2: // update an existing slot
				if len(order) == 0 {
					continue
				}
				s := order[int(arg)%len(order)]
				if _, ok := live[s]; !ok {
					continue
				}
				rec := bytes.Repeat([]byte{arg ^ 0x5A}, int(arg)%90)
				if err := p.Update(s, rec); err != nil {
					if errors.Is(err, ErrPageFull) {
						continue
					}
					t.Fatalf("update: %v", err)
				}
				live[s] = arg ^ 0x5A
			}
		}
		// Validate every live record.
		n := 0
		for s, fill := range live {
			rec, err := p.Get(s)
			if err != nil {
				t.Fatalf("get live slot %d: %v", s, err)
			}
			for _, b := range rec {
				if b != fill {
					t.Fatalf("slot %d corrupted: %d != %d", s, b, fill)
				}
			}
			n++
		}
		if p.LiveRecords() != n {
			t.Fatalf("LiveRecords = %d, want %d", p.LiveRecords(), n)
		}
	})
}
