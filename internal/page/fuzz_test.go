package page

import (
	"bytes"
	"errors"
	"testing"
)

// FuzzPageOps drives a slotted page with an arbitrary operation tape:
// whatever the sequence, the page must not panic and every live record
// must read back exactly as written. One of the ops corrupts a raw byte
// of the page image — modeling a torn or bit-flipped page slipping past
// the checksum layer — after which content guarantees are off but the
// memory-safety guarantee stands: every accessor must return an error
// (or garbage bytes) rather than panic or index out of bounds.
func FuzzPageOps(f *testing.F) {
	f.Add([]byte{0, 10, 1, 0, 0, 30, 2, 1})
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0, 100}, 30))
	// Corrupt the header early, then keep operating.
	f.Add([]byte{0, 40, 3, 0, 0, 20, 1, 0, 2, 9})
	f.Add([]byte{0, 40, 3, 2, 3, 5, 0, 8})
	f.Fuzz(func(t *testing.T, tape []byte) {
		buf := make([]byte, 512)
		p := Wrap(buf)
		p.Init(1)
		live := map[SlotID]byte{}
		var order []SlotID
		corrupted := false
		for i := 0; i+1 < len(tape); i += 2 {
			op, arg := tape[i], tape[i+1]
			switch op % 4 {
			case 0: // insert a record of arg%120 bytes filled with arg
				rec := bytes.Repeat([]byte{arg}, int(arg)%120)
				s, err := p.Insert(rec)
				if err != nil {
					continue
				}
				live[s] = arg
				order = append(order, s)
			case 1: // delete an existing slot (if any)
				if len(order) == 0 {
					continue
				}
				s := order[int(arg)%len(order)]
				if _, ok := live[s]; !ok {
					continue
				}
				if err := p.Delete(s); err != nil {
					if corrupted {
						continue
					}
					t.Fatalf("delete live slot %d: %v", s, err)
				}
				delete(live, s)
			case 2: // update an existing slot
				if len(order) == 0 {
					continue
				}
				s := order[int(arg)%len(order)]
				if _, ok := live[s]; !ok {
					continue
				}
				rec := bytes.Repeat([]byte{arg ^ 0x5A}, int(arg)%90)
				if err := p.Update(s, rec); err != nil {
					if corrupted || errors.Is(err, ErrPageFull) {
						continue
					}
					t.Fatalf("update: %v", err)
				}
				live[s] = arg ^ 0x5A
			case 3: // corrupt one byte of the raw image
				// Spread positions over the whole page but bias toward
				// the header and slot directory, where corruption is
				// most likely to confuse bounds arithmetic.
				pos := int(arg)
				if arg%2 == 0 {
					pos = int(arg) * len(buf) / 256
				}
				if pos >= len(buf) {
					pos = len(buf) - 1
				}
				buf[pos] ^= 0x80 | arg
				corrupted = true
			}
			// Exercise the read paths against whatever state the tape
			// produced; on a corrupted page these may error but must
			// not panic or read out of bounds.
			if corrupted {
				p.Validate()
				p.Records(func(SlotID, []byte) bool { return true })
				for s := range live {
					p.Get(s)
				}
			}
		}
		if corrupted {
			// Content assertions are meaningless once the image has
			// been tampered with; surviving without a panic is the
			// whole contract.
			return
		}
		if err := p.Validate(); err != nil {
			t.Fatalf("uncorrupted page fails Validate: %v", err)
		}
		// Validate every live record.
		n := 0
		for s, fill := range live {
			rec, err := p.Get(s)
			if err != nil {
				t.Fatalf("get live slot %d: %v", s, err)
			}
			for _, b := range rec {
				if b != fill {
					t.Fatalf("slot %d corrupted: %d != %d", s, b, fill)
				}
			}
			n++
		}
		if p.LiveRecords() != n {
			t.Fatalf("LiveRecords = %d, want %d", p.LiveRecords(), n)
		}
	})
}
