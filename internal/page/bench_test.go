package page

import "testing"

func BenchmarkInsert(b *testing.B) {
	buf := make([]byte, 1024)
	p := Wrap(buf)
	p.Init(0)
	rec := make([]byte, 96)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.Insert(rec); err != nil {
			p.Init(0)
		}
	}
}

func BenchmarkGet(b *testing.B) {
	p := Wrap(make([]byte, 1024))
	p.Init(0)
	var slots []SlotID
	for {
		s, err := p.Insert(make([]byte, 96))
		if err != nil {
			break
		}
		slots = append(slots, s)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.Get(slots[i%len(slots)]); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkInsertDeleteChurn(b *testing.B) {
	p := Wrap(make([]byte, 1024))
	p.Init(0)
	rec := make([]byte, 60)
	var slots []SlotID
	for {
		s, err := p.Insert(rec)
		if err != nil {
			break
		}
		slots = append(slots, s)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := slots[i%len(slots)]
		if err := p.Delete(s); err != nil {
			b.Fatal(err)
		}
		ns, err := p.Insert(rec)
		if err != nil {
			b.Fatal(err)
		}
		slots[i%len(slots)] = ns
	}
}
