package gen

import (
	"path/filepath"
	"testing"

	"revelation/internal/disk"
	"revelation/internal/object"
)

func TestManifestRoundTrip(t *testing.T) {
	dir := t.TempDir()
	devPath := filepath.Join(dir, "db.pages")
	manPath := filepath.Join(dir, "db.manifest")

	dev, err := disk.OpenFile(devPath, disk.DefaultPageSize)
	if err != nil {
		t.Fatal(err)
	}
	db, err := Build(Config{
		NumComplexObjects: 150,
		Clustering:        InterObject,
		Sharing:           0.25,
		Seed:              77,
		Device:            dev,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Pool.FlushAll(); err != nil {
		t.Fatal(err)
	}
	if err := db.SaveManifest(manPath); err != nil {
		t.Fatal(err)
	}
	wantLoc, _ := db.Store.Locator.Len()
	// Remember a few ground truths before closing.
	root0 := db.Roots[0]
	rootObj, err := db.Store.Get(root0)
	if err != nil {
		t.Fatal(err)
	}
	if err := dev.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := OpenDatabase(devPath, manPath, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Device.Close()

	if re.Config.NumComplexObjects != 150 || re.Config.Clustering != InterObject || re.Config.Sharing != 0.25 {
		t.Errorf("config lost: %+v", re.Config)
	}
	if len(re.Roots) != 150 || re.Roots[0] != root0 {
		t.Errorf("roots lost")
	}
	if n, _ := re.Store.Locator.Len(); n != wantLoc {
		t.Errorf("locator has %d entries, want %d", n, wantLoc)
	}
	got, err := re.Store.Get(root0)
	if err != nil {
		t.Fatal(err)
	}
	for i := range rootObj.Refs {
		if got.Refs[i] != rootObj.Refs[i] {
			t.Fatalf("reopened object differs at ref %d", i)
		}
	}
	if re.Template.Nodes() != 7 {
		t.Errorf("template not rebuilt: %d nodes", re.Template.Nodes())
	}
	leaf := re.Template.Children[0].Children[0]
	if !leaf.Shared || leaf.SharingDegree != 0.25 {
		t.Errorf("sharing annotation lost: %+v", leaf)
	}
	if re.RootOf[rootObj.Refs[0]] != root0 {
		t.Errorf("RootOf mapping lost")
	}
	// The reopened store must support a full traversal of every tree.
	for _, root := range re.Roots {
		var walk func(oid object.OID, depth int)
		walk = func(oid object.OID, depth int) {
			o, err := re.Store.Get(oid)
			if err != nil {
				t.Fatalf("traverse %v: %v", oid, err)
			}
			if depth < 3 {
				walk(o.Refs[0], depth+1)
				walk(o.Refs[1], depth+1)
			}
		}
		walk(root, 1)
	}
}

func TestOpenDatabaseMissingFiles(t *testing.T) {
	dir := t.TempDir()
	if _, err := OpenDatabase(filepath.Join(dir, "nope.pages"), filepath.Join(dir, "nope.manifest"), 0); err == nil {
		t.Error("missing files accepted")
	}
}
