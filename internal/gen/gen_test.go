package gen

import (
	"testing"

	"revelation/internal/object"
)

func TestBuildDefaults(t *testing.T) {
	db, err := Build(Config{NumComplexObjects: 100, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(db.Roots) != 100 {
		t.Errorf("roots = %d", len(db.Roots))
	}
	if db.NodesPerObject != 7 {
		t.Errorf("nodes per object = %d, want 7 (3-level binary tree)", db.NodesPerObject)
	}
	if db.Template.Nodes() != 7 || db.Template.Depth() != 3 {
		t.Errorf("template shape wrong: %d nodes, depth %d", db.Template.Nodes(), db.Template.Depth())
	}
	if n, _ := db.Store.Locator.Len(); n != 700 {
		t.Errorf("locator has %d objects, want 700", n)
	}
	// Cold start: generation traffic must be invisible.
	if db.Device.Stats().Reads != 0 {
		t.Errorf("device stats not reset: %+v", db.Device.Stats())
	}
	if db.Pool.Stats().Hits+db.Pool.Stats().Faults != 0 {
		t.Errorf("pool stats not reset: %+v", db.Pool.Stats())
	}
}

func TestObjectGeometry(t *testing.T) {
	db, err := Build(Config{NumComplexObjects: 10, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	o, err := db.Store.Get(db.Roots[0])
	if err != nil {
		t.Fatal(err)
	}
	if len(o.Ints) != 4 || len(o.Refs) != 8 {
		t.Errorf("object has %d ints, %d refs; want 4 and 8", len(o.Ints), len(o.Refs))
	}
	rec, err := object.Encode(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(rec) != 96 {
		t.Errorf("record = %d bytes, want 96", len(rec))
	}
}

func TestTreeWiring(t *testing.T) {
	db, err := Build(Config{NumComplexObjects: 50, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	// Every root reaches exactly 7 objects via fields 0 and 1; leaves
	// have nil child refs.
	for _, root := range db.Roots {
		count := 0
		var visit func(oid object.OID, depth int)
		visit = func(oid object.OID, depth int) {
			o, err := db.Store.Get(oid)
			if err != nil {
				t.Fatalf("get %v: %v", oid, err)
			}
			count++
			if depth == 3 {
				if !o.Refs[0].IsNil() || !o.Refs[1].IsNil() {
					t.Fatalf("leaf %v has children", oid)
				}
				return
			}
			if o.Refs[0].IsNil() || o.Refs[1].IsNil() {
				t.Fatalf("inner node %v missing children", oid)
			}
			visit(o.Refs[0], depth+1)
			visit(o.Refs[1], depth+1)
		}
		visit(root, 1)
		if count != 7 {
			t.Fatalf("root %v reaches %d objects", root, count)
		}
	}
}

func TestRootOfMapping(t *testing.T) {
	db, err := Build(Config{NumComplexObjects: 20, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	for _, root := range db.Roots {
		o, err := db.Store.Get(root)
		if err != nil {
			t.Fatal(err)
		}
		if db.RootOf[root] != root {
			t.Errorf("RootOf(root) = %v", db.RootOf[root])
		}
		if db.RootOf[o.Refs[0]] != root {
			t.Errorf("RootOf(child) = %v, want %v", db.RootOf[o.Refs[0]], root)
		}
	}
}

func TestClusteringLayouts(t *testing.T) {
	const n = 200
	for _, cl := range []Clustering{Unclustered, InterObject, IntraObject} {
		t.Run(cl.String(), func(t *testing.T) {
			db, err := Build(Config{NumComplexObjects: n, Clustering: cl, Seed: 5})
			if err != nil {
				t.Fatal(err)
			}
			switch cl {
			case IntraObject:
				// The inner levels of each tree (root + its children)
				// must sit within a tight page range; leaves scatter.
				for _, root := range db.Roots[:20] {
					o, err := db.Store.Get(root)
					if err != nil {
						t.Fatal(err)
					}
					pages := []int{pageIdx(t, db, root), pageIdx(t, db, o.Refs[0]), pageIdx(t, db, o.Refs[1])}
					lo, hi := pages[0], pages[0]
					for _, p := range pages {
						if p < lo {
							lo = p
						}
						if p > hi {
							hi = p
						}
					}
					if hi-lo > 1 {
						t.Errorf("intra-object inner levels span pages %d..%d", lo, hi)
					}
				}
			case InterObject:
				// All objects of one type in one region; different
				// types in different regions.
				region := func(oid object.OID) int {
					rid, ok, err := db.Store.WhereIs(oid)
					if err != nil || !ok {
						t.Fatalf("locate %v", oid)
					}
					return int(rid.Page-db.Store.File.First()) / db.Config.RegionPages
				}
				rootRegion := region(db.Roots[0])
				for _, r := range db.Roots[:20] {
					if region(r) != rootRegion {
						t.Errorf("roots in different regions")
					}
				}
				o, _ := db.Store.Get(db.Roots[0])
				if region(o.Refs[0]) == rootRegion {
					t.Errorf("child type shares the root's region")
				}
			case Unclustered:
				// Trees should span distant pages on average.
				spread := 0
				for _, root := range db.Roots[:20] {
					lo, hi := pageSpan(t, db, root)
					spread += hi - lo
				}
				if spread/20 < 10 {
					t.Errorf("unclustered trees too compact: avg span %d pages", spread/20)
				}
			}
		})
	}
}

func pageIdx(t *testing.T, db *Database, oid object.OID) int {
	t.Helper()
	rid, ok, err := db.Store.WhereIs(oid)
	if err != nil || !ok {
		t.Fatalf("locate %v", oid)
	}
	return int(rid.Page)
}

func pageSpan(t *testing.T, db *Database, root object.OID) (lo, hi int) {
	t.Helper()
	lo, hi = 1<<30, -1
	var visit func(oid object.OID)
	visit = func(oid object.OID) {
		if oid.IsNil() {
			return
		}
		rid, ok, err := db.Store.WhereIs(oid)
		if err != nil || !ok {
			t.Fatalf("locate %v", oid)
		}
		p := int(rid.Page)
		if p < lo {
			lo = p
		}
		if p > hi {
			hi = p
		}
		o, err := db.Store.Get(oid)
		if err != nil {
			t.Fatal(err)
		}
		visit(o.Refs[0])
		visit(o.Refs[1])
	}
	visit(root)
	return lo, hi
}

func TestSharingPool(t *testing.T) {
	const n = 400
	db, err := Build(Config{NumComplexObjects: n, Sharing: 0.25, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	// Leaf positions draw from pools of 0.25*n objects; count distinct
	// leaves reachable from all roots.
	distinct := map[object.OID]bool{}
	refs := 0
	for _, root := range db.Roots {
		o, _ := db.Store.Get(root)
		for _, mid := range []object.OID{o.Refs[0], o.Refs[1]} {
			m, _ := db.Store.Get(mid)
			for _, leaf := range []object.OID{m.Refs[0], m.Refs[1]} {
				distinct[leaf] = true
				refs++
			}
		}
	}
	if refs != 4*n {
		t.Fatalf("leaf references = %d", refs)
	}
	// 4 leaf positions, each a pool of n/4: at most n distinct leaves,
	// and random draws should reach most of each pool.
	maxDistinct := 4 * n / 4
	if len(distinct) > maxDistinct {
		t.Errorf("distinct shared leaves = %d, want <= %d", len(distinct), maxDistinct)
	}
	if len(distinct) < maxDistinct*8/10 {
		t.Errorf("distinct shared leaves = %d, pools badly undersampled", len(distinct))
	}
	// Template records the statistic on leaf nodes.
	leafNode := db.Template.Children[0].Children[0]
	if !leafNode.Shared || leafNode.SharingDegree != 0.25 {
		t.Errorf("leaf template node: shared=%v degree=%v", leafNode.Shared, leafNode.SharingDegree)
	}
	if db.Template.Shared {
		t.Error("root marked shared")
	}
}

func TestDeterminism(t *testing.T) {
	a, err := Build(Config{NumComplexObjects: 50, Clustering: Unclustered, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Build(Config{NumComplexObjects: 50, Clustering: Unclustered, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Roots {
		if a.Roots[i] != b.Roots[i] {
			t.Fatalf("roots differ at %d", i)
		}
		ra, _, _ := a.Store.WhereIs(a.Roots[i])
		rb, _, _ := b.Store.WhereIs(b.Roots[i])
		if ra != rb {
			t.Fatalf("placement differs at %d: %v vs %v", i, ra, rb)
		}
	}
	c, err := Build(Config{NumComplexObjects: 50, Clustering: Unclustered, Seed: 43})
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range a.Roots {
		ra, _, _ := a.Store.WhereIs(a.Roots[i])
		rc, _, _ := c.Store.WhereIs(c.Roots[i])
		if ra != rc {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical placement")
	}
}

func TestBTreeLocatorOption(t *testing.T) {
	db, err := Build(Config{NumComplexObjects: 30, Locator: BTreeLocator, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := db.Store.Locator.(*object.BTreeLocator); !ok {
		t.Fatalf("locator type %T", db.Store.Locator)
	}
	o, err := db.Store.Get(db.Roots[3])
	if err != nil {
		t.Fatal(err)
	}
	if o.OID != db.Roots[3] {
		t.Error("btree-located object wrong")
	}
}

func TestRegionOverflowDetected(t *testing.T) {
	_, err := Build(Config{
		NumComplexObjects: 1000,
		Clustering:        InterObject,
		RegionPages:       10, // far too small
		Seed:              8,
	})
	if err == nil {
		t.Error("region overflow not detected")
	}
}

func TestCustomShape(t *testing.T) {
	db, err := Build(Config{NumComplexObjects: 20, Levels: 4, Fanout: 3, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	want := 1 + 3 + 9 + 27
	if db.NodesPerObject != want {
		t.Errorf("positions = %d, want %d", db.NodesPerObject, want)
	}
	if db.Template.Nodes() != want {
		t.Errorf("template nodes = %d, want %d", db.Template.Nodes(), want)
	}
}

// TestFanoutsShapes covers the per-level fanout vectors the OO7-style
// suite scenarios are built from: a deep narrow hierarchy and a wide
// shallow one, with the reference wiring checked against the declared
// shape by walking one complex object from its root.
func TestFanoutsShapes(t *testing.T) {
	cases := []struct {
		name    string
		fanouts []int
		nodes   int
	}{
		{"deep", []int{2, 2, 2, 2}, 1 + 2 + 4 + 8 + 16},
		{"wide", []int{8, 4}, 1 + 8 + 32},
		{"uneven", []int{3, 2, 1}, 1 + 3 + 6 + 6},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			db, err := Build(Config{NumComplexObjects: 12, Fanouts: tc.fanouts, Seed: 9})
			if err != nil {
				t.Fatal(err)
			}
			if db.NodesPerObject != tc.nodes {
				t.Errorf("positions = %d, want %d", db.NodesPerObject, tc.nodes)
			}
			if db.Template.Nodes() != tc.nodes || db.Template.Depth() != len(tc.fanouts)+1 {
				t.Errorf("template: %d nodes depth %d, want %d nodes depth %d",
					db.Template.Nodes(), db.Template.Depth(), tc.nodes, len(tc.fanouts)+1)
			}
			// Walk one complex object: every node must carry exactly its
			// level's fanout in non-nil references, and the walk must
			// visit the declared number of components.
			visited := 0
			var walk func(oid object.OID, level int)
			walk = func(oid object.OID, level int) {
				visited++
				o, err := db.Store.Get(oid)
				if err != nil {
					t.Fatalf("get %v: %v", oid, err)
				}
				want := 0
				if level < len(tc.fanouts) {
					want = tc.fanouts[level]
				}
				live := 0
				for _, r := range o.Refs {
					if !r.IsNil() {
						live++
					}
				}
				if live != want {
					t.Fatalf("level-%d node %v has %d children, want %d", level, oid, live, want)
				}
				for f := 0; f < want; f++ {
					walk(o.Refs[f], level+1)
				}
			}
			walk(db.Roots[0], 0)
			if visited != tc.nodes {
				t.Errorf("walk visited %d components, want %d", visited, tc.nodes)
			}
			// The exported shape metadata matches the walk.
			if db.LeafStart != tc.nodes-lastWidth(tc.fanouts) {
				t.Errorf("LeafStart = %d, want %d", db.LeafStart, tc.nodes-lastWidth(tc.fanouts))
			}
			if got := len(db.Children); got != tc.nodes {
				t.Errorf("Children has %d positions, want %d", got, tc.nodes)
			}
			if n, _ := db.Store.Locator.Len(); db.NextOID != object.OID(n+1) {
				t.Errorf("NextOID = %v, want %v (locator holds %d, OIDs from 1)", db.NextOID, n+1, n)
			}
		})
	}
}

func lastWidth(fanouts []int) int {
	w := 1
	for _, f := range fanouts {
		w *= f
	}
	return w
}

// TestFanoutTooWide rejects shapes that overflow the 8 reference
// fields of a component.
func TestFanoutTooWide(t *testing.T) {
	if _, err := Build(Config{NumComplexObjects: 5, Fanouts: []int{9}, Seed: 1}); err == nil {
		t.Error("fanout 9 accepted; components only carry 8 reference fields")
	}
}

// TestExtraPagesHeadroom verifies append headroom: the extent grows by
// ExtraPages empty pages after the data, and appended records land in
// them via explicit tail placement.
func TestExtraPagesHeadroom(t *testing.T) {
	db, err := Build(Config{NumComplexObjects: 30, Seed: 3, ExtraPages: 16})
	if err != nil {
		t.Fatal(err)
	}
	if got := db.Store.File.NumPages(); got != db.DataPages+16 {
		t.Errorf("extent = %d pages, want DataPages %d + 16", got, db.DataPages)
	}
	o := &object.Object{
		OID:   db.NextOID,
		Class: db.Positions[0].ID,
		Ints:  []int32{1, 2, 3, 0},
		Refs:  make([]object.OID, 8),
	}
	rid, err := db.Store.PutAt(o, db.DataPages)
	if err != nil {
		t.Fatal(err)
	}
	pid, err := db.Store.File.PageAt(db.DataPages)
	if err != nil {
		t.Fatal(err)
	}
	if rid.Page != pid {
		t.Errorf("append landed on page %v, want first headroom page %v", rid.Page, pid)
	}
	got, err := db.Store.Get(o.OID)
	if err != nil {
		t.Fatal(err)
	}
	if got.Ints[0] != 1 || got.Ints[1] != 2 {
		t.Errorf("round-trip mismatch: %+v", got.Ints)
	}
}

// TestStoreUpdateInPlace mutates a component through Store.Update and
// reads the change back, without moving the record.
func TestStoreUpdateInPlace(t *testing.T) {
	db, err := Build(Config{NumComplexObjects: 10, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	oid := db.Roots[3]
	before, _, err := db.Store.WhereIs(oid)
	if err != nil {
		t.Fatal(err)
	}
	o, err := db.Store.Get(oid)
	if err != nil {
		t.Fatal(err)
	}
	o.Ints[1] = 777
	if err := db.Store.Update(o); err != nil {
		t.Fatal(err)
	}
	after, _, err := db.Store.WhereIs(oid)
	if err != nil {
		t.Fatal(err)
	}
	if before != after {
		t.Errorf("update moved the record: %v -> %v", before, after)
	}
	got, err := db.Store.Get(oid)
	if err != nil {
		t.Fatal(err)
	}
	if got.Ints[1] != 777 {
		t.Errorf("Ints[1] = %d after update, want 777", got.Ints[1])
	}
}
