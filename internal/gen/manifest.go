package gen

import (
	"encoding/gob"
	"fmt"
	"os"

	"revelation/internal/buffer"
	"revelation/internal/disk"
	"revelation/internal/heap"
	"revelation/internal/object"
	"revelation/internal/page"
)

// Manifest is the serializable description of a generated database:
// everything needed to reopen a file-backed device as a working store
// (the device file holds the pages; the manifest holds the catalog,
// the OID map, and the experiment parameters).
type Manifest struct {
	// Parameters echoes the generation config (device omitted).
	NumComplexObjects int
	Levels, Fanout    int
	Fanouts           []int
	Clustering        Clustering
	Sharing           float64
	Seed              int64
	PageSize          int
	RegionPages       int

	FileFirst  uint32
	FileNPages int

	Roots   []uint64
	Entries []ManifestEntry
	RootOf  []RootPair
}

// ManifestEntry records one object's physical address.
type ManifestEntry struct {
	OID  uint64
	Page uint32
	Slot uint16
}

// RootPair records component → complex-object-root ownership.
type RootPair struct {
	OID, Root uint64
}

// SaveManifest writes the database's manifest with encoding/gob.
func (db *Database) SaveManifest(path string) error {
	m := Manifest{
		NumComplexObjects: db.Config.NumComplexObjects,
		Levels:            db.Config.Levels,
		Fanout:            db.Config.Fanout,
		Fanouts:           db.Config.Fanouts,
		Clustering:        db.Config.Clustering,
		Sharing:           db.Config.Sharing,
		Seed:              db.Config.Seed,
		PageSize:          db.Config.PageSize,
		RegionPages:       db.Config.RegionPages,
		FileFirst:         uint32(db.Store.File.First()),
		FileNPages:        db.Store.File.NumPages(),
	}
	for _, r := range db.Roots {
		m.Roots = append(m.Roots, uint64(r))
	}
	// Walk the file to collect the OID map in physical order.
	err := db.Store.File.Scan(func(rid heap.RID, rec []byte) bool {
		oid, err := object.PeekOID(rec)
		if err != nil {
			return true
		}
		m.Entries = append(m.Entries, ManifestEntry{
			OID:  uint64(oid),
			Page: uint32(rid.Page),
			Slot: uint16(rid.Slot),
		})
		return true
	})
	if err != nil {
		return err
	}
	for oid, root := range db.RootOf {
		m.RootOf = append(m.RootOf, RootPair{OID: uint64(oid), Root: uint64(root)})
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := gob.NewEncoder(f).Encode(&m); err != nil {
		return fmt.Errorf("gen: encode manifest: %w", err)
	}
	return nil
}

// LoadManifest reads and decodes a manifest file. Tools that need only
// the physical parameters (page size, extent) use this without paying
// for a full OpenDatabase.
func LoadManifest(path string) (*Manifest, error) {
	mf, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer mf.Close()
	var m Manifest
	if err := gob.NewDecoder(mf).Decode(&m); err != nil {
		return nil, fmt.Errorf("gen: decode manifest: %w", err)
	}
	return &m, nil
}

// OpenDatabase reopens a database previously generated onto a
// file-backed device and described by a manifest.
func OpenDatabase(devicePath, manifestPath string, bufferPages int) (*Database, error) {
	mp, err := LoadManifest(manifestPath)
	if err != nil {
		return nil, err
	}
	dev, err := disk.OpenFile(devicePath, mp.PageSize)
	if err != nil {
		return nil, err
	}
	return OpenDatabaseOn(dev, mp, bufferPages)
}

// OpenDatabaseOn rebuilds a database's catalog, locator, store, and
// template over an already-open device holding its pages — a local
// file, or a pagesvc client whose pages live across the network. The
// device is adopted: the returned Database's Close tears it down.
func OpenDatabaseOn(dev disk.Device, mp *Manifest, bufferPages int) (*Database, error) {
	m := *mp
	if bufferPages <= 0 {
		bufferPages = m.FileNPages + 128
	}
	pool := buffer.New(dev, bufferPages, buffer.LRU)
	file := heap.Open(pool, disk.PageID(m.FileFirst), m.FileNPages)

	cfg := Config{
		NumComplexObjects: m.NumComplexObjects,
		Levels:            m.Levels,
		Fanout:            m.Fanout,
		Fanouts:           m.Fanouts,
		Clustering:        m.Clustering,
		Sharing:           m.Sharing,
		Seed:              m.Seed,
		PageSize:          m.PageSize,
		RegionPages:       m.RegionPages,
	}.withDefaults()

	// Rebuild the catalog exactly as Build defines it.
	positions := positionCount(cfg.Fanouts)
	cat := object.NewCatalog()
	classes := make([]*object.Class, positions)
	for p := 0; p < positions; p++ {
		classes[p] = cat.MustDefine(&object.Class{
			Name:     fmt.Sprintf("T%d", p),
			NumInts:  4,
			NumRefs:  8,
			IntNames: []string{"seq", "rand", "tree", "pos"},
		})
	}
	loc := object.NewMapLocator()
	for _, e := range m.Entries {
		rid := heap.RID{Page: disk.PageID(e.Page), Slot: page.SlotID(e.Slot)}
		if err := loc.Register(object.OID(e.OID), rid); err != nil {
			return nil, err
		}
	}
	store := object.NewStore(file, loc, cat)

	leafStart := firstLeafPosition(cfg.Fanouts)
	tmpl := buildTemplate(cfg, classes, leafStart)

	roots := make([]object.OID, len(m.Roots))
	for i, r := range m.Roots {
		roots[i] = object.OID(r)
	}
	rootOf := make(map[object.OID]object.OID, len(m.RootOf))
	for _, pr := range m.RootOf {
		rootOf[object.OID(pr.OID)] = object.OID(pr.Root)
	}
	var next object.OID
	for _, e := range m.Entries {
		if object.OID(e.OID) >= next {
			next = object.OID(e.OID) + 1
		}
	}
	return &Database{
		Config:         cfg,
		Device:         dev,
		Pool:           pool,
		Store:          store,
		Template:       tmpl,
		Roots:          roots,
		RootOf:         rootOf,
		NodesPerObject: positions,
		Positions:      classes,
		Children:       childPositions(cfg.Fanouts),
		LeafStart:      leafStart,
		NextOID:        next,
		DataPages:      m.FileNPages,
	}, nil
}
