// Package gen builds the benchmark databases of the paper's Section 6:
// sets of complex objects shaped as binary trees of three levels, each
// component a 96-byte object (4 integer + 8 reference fields, 9 per
// 1 KB page), laid out on the simulated device under one of the three
// clustering policies of Section 6.1 and optionally sharing leaf
// sub-objects (Section 6.4).
//
// Everything is deterministic given the seed, so experiments are
// reproducible run to run.
package gen

import (
	"fmt"
	"math/rand"
	"sort"

	"revelation/internal/assembly"
	"revelation/internal/btree"
	"revelation/internal/buffer"
	"revelation/internal/disk"
	"revelation/internal/heap"
	"revelation/internal/object"
)

// Clustering selects a physical layout policy (Figs. 8–10).
type Clustering int

// Clustering policies.
const (
	// Unclustered places objects randomly across the file (Fig. 8).
	Unclustered Clustering = iota
	// InterObject groups objects of the same type (tree position) into
	// fixed-size type regions, regions shuffled on disk (Figs. 9, 12).
	InterObject
	// IntraObject places each complex object's components together in
	// traversal order (Fig. 10).
	IntraObject
)

func (c Clustering) String() string {
	switch c {
	case Unclustered:
		return "unclustered"
	case InterObject:
		return "inter-object"
	case IntraObject:
		return "intra-object"
	default:
		return fmt.Sprintf("clustering(%d)", int(c))
	}
}

// LocatorKind selects the OID → RID mapping implementation.
type LocatorKind int

// Locator kinds.
const (
	// MapLocator keeps the mapping resident in memory; locator traffic
	// stays out of the seek metric, as in the paper's experiments.
	MapLocator LocatorKind = iota
	// BTreeLocator stores the mapping in a disk B+-tree so lookups
	// cost real page accesses.
	BTreeLocator
)

// Config parameterizes a generated database.
type Config struct {
	// NumComplexObjects is the database size in complex objects
	// (1000–4000 in the paper).
	NumComplexObjects int
	// Levels and Fanout shape each complex object; the paper uses a
	// binary tree of 3 levels (7 components). Defaults: 3 and 2.
	Levels, Fanout int
	// Fanouts, when non-empty, overrides Levels/Fanout with an explicit
	// per-level fanout vector: Fanouts[l] is the number of children of
	// every level-l node, so len(Fanouts)+1 is the tree depth. This is
	// what OO7-style shapes are built from — deep assembly hierarchies
	// ([2,2,2,2]), wide composite parts ([8,4]), and anything between.
	// Every fanout must be 1..8 (components carry 8 reference fields).
	Fanouts []int
	// Clustering selects the layout policy.
	Clustering Clustering
	// Sharing is the ratio of shared objects to sharing objects at the
	// leaf level (0.25 means four complex objects share each leaf on
	// average); zero disables sharing.
	Sharing float64
	// Seed drives all randomized placement decisions.
	Seed int64
	// PageSize defaults to the paper's 1 KB.
	PageSize int
	// BufferPages sizes the buffer pool; zero means "large enough to
	// hold the whole database" (the paper's first benchmark group).
	BufferPages int
	// Policy selects buffer replacement (default LRU).
	Policy buffer.Policy
	// RegionPages is the inter-object cluster region size in pages;
	// zero derives a region larger than any database used in the
	// paper's benchmarks, reproducing the Fig. 11A flat lines.
	RegionPages int
	// Locator selects the OID mapping implementation.
	Locator LocatorKind
	// Device, when set, receives the database (e.g. a file-backed
	// device from cmd/dbgen); nil builds an in-memory simulated disk.
	Device disk.Device
	// ExtraPages adds empty heap pages after the generated data, so
	// append workloads (e.g. the suite's time-series scenario) have
	// room to grow without reorganizing the extent.
	ExtraPages int
}

// withDefaults fills zero fields.
func (c Config) withDefaults() Config {
	if c.NumComplexObjects <= 0 {
		c.NumComplexObjects = 1000
	}
	if c.Levels <= 0 {
		c.Levels = 3
	}
	if c.Fanout <= 0 {
		c.Fanout = 2
	}
	if len(c.Fanouts) == 0 {
		c.Fanouts = uniformFanouts(c.Levels, c.Fanout)
	} else {
		c.Levels = len(c.Fanouts) + 1
	}
	if c.PageSize <= 0 {
		c.PageSize = disk.DefaultPageSize
	}
	if c.RegionPages <= 0 {
		// Larger than the paper's largest database per type: 4000
		// objects / 9 per page = 445 pages; round up generously so the
		// region never fills ("the cluster size is larger than any
		// database size used in the benchmarks").
		c.RegionPages = 512
	}
	return c
}

// Database is a generated benchmark database with everything the
// experiments need.
type Database struct {
	Config   Config
	Device   disk.Device
	Pool     *buffer.Pool
	Store    *object.Store
	Template *assembly.Template
	// Roots holds the root OID of every complex object, in generation
	// order.
	Roots []object.OID
	// RootOf maps every component OID to its complex object's root OID
	// (shared components map to their first referencing root).
	RootOf map[object.OID]object.OID
	// NodesPerObject is the component count of one complex object.
	NodesPerObject int
	// Positions maps tree position index to its class.
	Positions []*object.Class
	// Children maps tree position index to its children's positions —
	// the shape consumers need to walk or extend the generated graphs
	// without re-deriving the numbering.
	Children [][]int
	// LeafStart is the first leaf-level position index.
	LeafStart int
	// NextOID is the first OID not used by the generated objects;
	// append workloads allocate from here.
	NextOID object.OID
	// DataPages is the number of extent pages holding generated data;
	// pages [DataPages, DataPages+ExtraPages) are empty headroom.
	DataPages int
}

// uniformFanouts expands the classic (levels, fanout) pair into a
// per-level fanout vector.
func uniformFanouts(levels, fanout int) []int {
	f := make([]int, levels-1)
	for i := range f {
		f[i] = fanout
	}
	return f
}

// levelWidths returns the node count of each level: 1 at the root,
// then the running product of the fanouts.
func levelWidths(fanouts []int) []int {
	widths := make([]int, len(fanouts)+1)
	widths[0] = 1
	for l, f := range fanouts {
		widths[l+1] = widths[l] * f
	}
	return widths
}

// positionCount returns the number of node positions of a full tree.
func positionCount(fanouts []int) int {
	n := 0
	for _, w := range levelWidths(fanouts) {
		n += w
	}
	return n
}

// Build generates a database per the configuration.
func Build(cfg Config) (*Database, error) {
	cfg = cfg.withDefaults()
	for _, f := range cfg.Fanouts {
		if f < 1 || f > 8 {
			return nil, fmt.Errorf("gen: fanout %d out of range 1..8 (components have 8 reference fields)", f)
		}
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	positions := positionCount(cfg.Fanouts)
	nTrees := cfg.NumComplexObjects

	// --- catalog: one class per tree position ---
	cat := object.NewCatalog()
	classes := make([]*object.Class, positions)
	for p := 0; p < positions; p++ {
		cls, err := cat.Define(&object.Class{
			Name:     fmt.Sprintf("T%d", p),
			NumInts:  4,
			NumRefs:  8,
			IntNames: []string{"seq", "rand", "tree", "pos"},
		})
		if err != nil {
			return nil, err
		}
		classes[p] = cls
	}

	// --- logical structure: per-position OID tables ---
	// Non-leaf positions get one object per tree. Leaf positions get a
	// shared pool when Sharing > 0.
	leafStart := firstLeafPosition(cfg.Fanouts)
	perPosCount := make([]int, positions)
	for p := 0; p < positions; p++ {
		if p >= leafStart && cfg.Sharing > 0 {
			n := int(float64(nTrees)*cfg.Sharing + 0.5)
			if n < 1 {
				n = 1
			}
			perPosCount[p] = n
		} else {
			perPosCount[p] = nTrees
		}
	}
	// OIDs: position p, index i -> sequential id space.
	oidOf := make([][]object.OID, positions)
	next := object.OID(1)
	for p := 0; p < positions; p++ {
		oidOf[p] = make([]object.OID, perPosCount[p])
		for i := range oidOf[p] {
			oidOf[p][i] = next
			next++
		}
	}
	// Tree membership: member[p][tree] = index into oidOf[p].
	member := make([][]int, positions)
	for p := 0; p < positions; p++ {
		member[p] = make([]int, nTrees)
		for tr := 0; tr < nTrees; tr++ {
			if perPosCount[p] == nTrees {
				member[p][tr] = tr
			} else {
				member[p][tr] = rng.Intn(perPosCount[p])
			}
		}
	}

	// --- materialize objects ---
	type placed struct {
		obj *object.Object
		pos int
	}
	var all []placed
	rootOf := map[object.OID]object.OID{}
	childrenOf := childPositions(cfg.Fanouts)
	seq := int32(0)
	for p := 0; p < positions; p++ {
		for i := 0; i < perPosCount[p]; i++ {
			o := &object.Object{
				OID:   oidOf[p][i],
				Class: classes[p].ID,
				Ints:  []int32{seq, int32(rng.Intn(1000)), int32(i), int32(p)},
				Refs:  make([]object.OID, 8),
			}
			seq++
			all = append(all, placed{obj: o, pos: p})
		}
	}
	// Wire references per tree.
	index := map[object.OID]*object.Object{}
	for _, pl := range all {
		index[pl.obj.OID] = pl.obj
	}
	for tr := 0; tr < nTrees; tr++ {
		for p := 0; p < positions; p++ {
			parent := index[oidOf[p][member[p][tr]]]
			for f, cp := range childrenOf[p] {
				child := oidOf[cp][member[cp][tr]]
				parent.Refs[f] = child
			}
		}
		root := oidOf[0][member[0][tr]]
		for p := 0; p < positions; p++ {
			oid := oidOf[p][member[p][tr]]
			if _, seen := rootOf[oid]; !seen {
				rootOf[oid] = root
			}
		}
	}

	// --- physical layout ---
	objPerPage := (cfg.PageSize - 32 /*page header*/) / (96 + 4) // 9 at 1 KB
	var filePages int
	pageOf := map[object.OID]int{} // extent-relative page index
	switch cfg.Clustering {
	case InterObject:
		filePages = positions * cfg.RegionPages
		// Region order on disk differs from breadth-first fetch order
		// (Fig. 12): type regions are laid out in the *traversal*
		// (depth-first) order of the tree positions. Reading the
		// paper's Fig. 11A discussion: breadth-first fetches clusters
		// in level order, "however, the clusters are not physically
		// placed in that order. The other two algorithms fetch from
		// the clusters in the order they exist on disk" — i.e. the
		// method-traversal order matches the physical layout and the
		// level order does not.
		dfsRank := make([]int, positions)
		for rank, p := range traversalOrder(cfg.Fanouts) {
			dfsRank[p] = rank
		}
		for p := 0; p < positions; p++ {
			region := dfsRank[p]
			ids := append([]object.OID(nil), oidOf[p]...)
			rng.Shuffle(len(ids), func(a, b int) { ids[a], ids[b] = ids[b], ids[a] })
			if need := (len(ids) + objPerPage - 1) / objPerPage; need > cfg.RegionPages {
				return nil, fmt.Errorf("gen: %d objects of type %d need %d pages, region holds %d",
					len(ids), p, need, cfg.RegionPages)
			}
			for i, oid := range ids {
				pageOf[oid] = region*cfg.RegionPages + i/objPerPage
			}
		}
	case IntraObject:
		// "Clustering some or all of the parts of a composite object
		// together" (Section 6.1): each complex object's inner levels
		// are stored contiguously per object, while leaf components —
		// frequently shared with other composites in practice — live
		// outside the clusters, scattered across a trailing region.
		// Clustering every component would collapse a 7-object tree
		// onto a single page and erase all scheduling differences;
		// partial intra-object clustering is what gives Fig. 11B its
		// non-trivial curves.
		innerCount := 0
		seenOID := map[object.OID]bool{}
		order := traversalOrder(cfg.Fanouts)
		slot := 0
		for tr := 0; tr < nTrees; tr++ {
			for _, p := range order {
				if p >= leafStart {
					continue
				}
				oid := oidOf[p][member[p][tr]]
				if seenOID[oid] {
					continue
				}
				seenOID[oid] = true
				pageOf[oid] = slot / objPerPage
				slot++
				innerCount++
			}
		}
		innerPages := innerCount/objPerPage + 1
		var leafIDs []object.OID
		for p := leafStart; p < positions; p++ {
			leafIDs = append(leafIDs, oidOf[p]...)
		}
		rng.Shuffle(len(leafIDs), func(a, b int) { leafIDs[a], leafIDs[b] = leafIDs[b], leafIDs[a] })
		for i, oid := range leafIDs {
			pageOf[oid] = innerPages + i/objPerPage
		}
		filePages = innerPages + len(leafIDs)/objPerPage + 1
	default: // Unclustered
		ids := make([]object.OID, 0, len(all))
		for _, pl := range all {
			ids = append(ids, pl.obj.OID)
		}
		rng.Shuffle(len(ids), func(a, b int) { ids[a], ids[b] = ids[b], ids[a] })
		for i, oid := range ids {
			pageOf[oid] = i / objPerPage
		}
		filePages = len(ids)/objPerPage + 1
	}

	// --- storage ---
	dataPages := filePages
	filePages += cfg.ExtraPages
	dev := cfg.Device
	if dev == nil {
		dev = disk.NewSim(cfg.PageSize, 0)
	}
	bufPages := cfg.BufferPages
	if bufPages <= 0 {
		bufPages = filePages + 128 // "enough buffer space to hold the largest database"
	}
	pool := buffer.New(dev, bufPages, cfg.Policy)
	file, err := heap.Create(pool, filePages)
	if err != nil {
		return nil, err
	}
	var loc object.Locator
	if cfg.Locator == BTreeLocator {
		tree, err := btree.Create(pool)
		if err != nil {
			return nil, err
		}
		loc = object.NewBTreeLocator(tree)
	} else {
		loc = object.NewMapLocator()
	}
	store := object.NewStore(file, loc, cat)

	// Write objects grouped by page for a clean sequential load.
	byPage := map[int][]*object.Object{}
	maxPage := 0
	for _, pl := range all {
		pg := pageOf[pl.obj.OID]
		byPage[pg] = append(byPage[pg], pl.obj)
		if pg > maxPage {
			maxPage = pg
		}
	}
	for pg := 0; pg <= maxPage; pg++ {
		for _, o := range byPage[pg] {
			if _, err := store.PutAt(o, pg); err != nil {
				return nil, fmt.Errorf("gen: place %v on page %d: %w", o.OID, pg, err)
			}
		}
	}
	// Load traffic must not pollute the experiment's metric, and the
	// pool must start cold: the paper measures disk behaviour.
	if err := pool.EvictAll(); err != nil {
		return nil, err
	}
	pool.ResetStats()
	dev.ResetStats()
	dev.ResetHead()

	// --- template ---
	tmpl := buildTemplate(cfg, classes, leafStart)

	roots := make([]object.OID, nTrees)
	for tr := 0; tr < nTrees; tr++ {
		roots[tr] = oidOf[0][member[0][tr]]
	}
	return &Database{
		Config:         cfg,
		Device:         dev,
		Pool:           pool,
		Store:          store,
		Template:       tmpl,
		Roots:          roots,
		RootOf:         rootOf,
		NodesPerObject: positions,
		Positions:      classes,
		Children:       childrenOf,
		LeafStart:      leafStart,
		NextOID:        next,
		DataPages:      dataPages,
	}, nil
}

// firstLeafPosition returns the index of the first leaf-level position
// in breadth-first numbering.
func firstLeafPosition(fanouts []int) int {
	widths := levelWidths(fanouts)
	n := 0
	for _, w := range widths[:len(widths)-1] {
		n += w
	}
	return n
}

// childPositions maps each position to its children's positions in
// breadth-first numbering; the f-th child of the i-th level-l node is
// position start(l+1) + i*fanouts[l] + f and occupies reference field
// f. For uniform fanouts this reduces to the classic p*fanout+1+f.
func childPositions(fanouts []int) [][]int {
	out := make([][]int, positionCount(fanouts))
	widths := levelWidths(fanouts)
	start := 0
	for l, f := range fanouts {
		childStart := start + widths[l]
		for i := 0; i < widths[l]; i++ {
			p := start + i
			for c := 0; c < f; c++ {
				out[p] = append(out[p], childStart+i*f+c)
			}
		}
		start = childStart
	}
	return out
}

// traversalOrder returns positions in depth-first (method-traversal)
// order, the order intra-object clustering lays components out.
func traversalOrder(fanouts []int) []int {
	children := childPositions(fanouts)
	var order []int
	var visit func(p int)
	visit = func(p int) {
		order = append(order, p)
		for _, c := range children[p] {
			visit(c)
		}
	}
	visit(0)
	return order
}

// buildTemplate mirrors the generated structure as an assembly
// template, annotating leaf positions with the sharing statistic.
func buildTemplate(cfg Config, classes []*object.Class, leafStart int) *assembly.Template {
	children := childPositions(cfg.Fanouts)
	var build func(p int) *assembly.Template
	build = func(p int) *assembly.Template {
		n := &assembly.Template{
			Name:     string(rune('A' + p%26)),
			Class:    classes[p].ID,
			RefField: -1,
			Required: true,
		}
		if p >= leafStart && cfg.Sharing > 0 {
			n.Shared = true
			n.SharingDegree = cfg.Sharing
		}
		for f, cp := range children[p] {
			c := build(cp)
			c.RefField = f
			n.Children = append(n.Children, c)
		}
		return n
	}
	return build(0)
}

// ComponentPages returns, for every root, the distinct data pages
// backing the components RootOf attributes to it (shared components
// count under their first referencing root), each page list sorted.
// Fault-injection tests use it to predict exactly which complex
// objects a dead page range — a failed device region, a downed shard —
// poisons.
func (db *Database) ComponentPages() (map[object.OID][]disk.PageID, error) {
	pages := map[object.OID]map[disk.PageID]bool{}
	for oid, root := range db.RootOf {
		rid, ok, err := db.Store.WhereIs(oid)
		if err != nil {
			return nil, err
		}
		if !ok {
			return nil, fmt.Errorf("gen: component %d has no location", oid)
		}
		if pages[root] == nil {
			pages[root] = map[disk.PageID]bool{}
		}
		pages[root][rid.Page] = true
	}
	out := make(map[object.OID][]disk.PageID, len(pages))
	for root, set := range pages {
		list := make([]disk.PageID, 0, len(set))
		for p := range set {
			list = append(list, p)
		}
		sort.Slice(list, func(i, j int) bool { return list[i] < list[j] })
		out[root] = list
	}
	return out, nil
}
