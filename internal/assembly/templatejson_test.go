package assembly

import (
	"strings"
	"testing"

	"revelation/internal/expr"
	"revelation/internal/object"
)

func jsonCatalog(t *testing.T) *object.Catalog {
	t.Helper()
	cat := object.NewCatalog()
	cat.MustDefine(&object.Class{Name: "Person", NumInts: 2, NumRefs: 2})
	cat.MustDefine(&object.Class{Name: "Residence", NumInts: 2, NumRefs: 0})
	return cat
}

func jsonTemplate(cat *object.Catalog) *Template {
	person, _ := cat.ByName("Person")
	res, _ := cat.ByName("Residence")
	return &Template{
		Name: "Person", Class: person.ID, RefField: -1, Required: true,
		Children: []*Template{
			{Name: "Father", Class: person.ID, RefField: 0, Required: true,
				Shared: true, SharingDegree: 0.5},
			{Name: "Residence", Class: res.ID, RefField: 1, Required: true,
				Pred: expr.IntCmp{Field: 1, Op: expr.EQ, Value: 13, Sel: 0.02}},
		},
	}
}

func TestTemplateJSONRoundTrip(t *testing.T) {
	cat := jsonCatalog(t)
	orig := jsonTemplate(cat)
	data, err := MarshalTemplateJSON(orig, cat)
	if err != nil {
		t.Fatal(err)
	}
	back, err := UnmarshalTemplateJSON(data, cat)
	if err != nil {
		t.Fatalf("unmarshal: %v\n%s", err, data)
	}
	if back.String() != orig.String() {
		t.Errorf("round trip changed template:\n%s\nvs\n%s", back, orig)
	}
	if back.Nodes() != 3 || !back.Children[0].Shared {
		t.Errorf("structure lost: %+v", back)
	}
	p, ok := back.Children[1].Pred.(expr.IntCmp)
	if !ok || p.Value != 13 || p.Sel != 0.02 || p.Op != expr.EQ {
		t.Errorf("predicate lost: %+v", back.Children[1].Pred)
	}
}

func TestTemplateJSONRangePredicate(t *testing.T) {
	cat := jsonCatalog(t)
	tmpl := jsonTemplate(cat)
	tmpl.Children[1].Pred = expr.IntRange{Field: 0, Lo: 5, Hi: 9, Sel: 0.1}
	data, err := MarshalTemplateJSON(tmpl, cat)
	if err != nil {
		t.Fatal(err)
	}
	back, err := UnmarshalTemplateJSON(data, cat)
	if err != nil {
		t.Fatal(err)
	}
	r, ok := back.Children[1].Pred.(expr.IntRange)
	if !ok || r.Lo != 5 || r.Hi != 9 {
		t.Errorf("range predicate lost: %+v", back.Children[1].Pred)
	}
}

func TestTemplateJSONRejectsUnserializablePredicate(t *testing.T) {
	cat := jsonCatalog(t)
	tmpl := jsonTemplate(cat)
	tmpl.Children[1].Pred = expr.Func{Name: "custom", Fn: func(*object.Object) bool { return true }}
	if _, err := MarshalTemplateJSON(tmpl, cat); err == nil {
		t.Error("Func predicate serialized")
	}
}

func TestTemplateJSONErrors(t *testing.T) {
	cat := jsonCatalog(t)
	cases := map[string]string{
		"bad json":    `{`,
		"bad class":   `{"name":"x","refField":-1,"class":"Nope"}`,
		"bad op":      `{"name":"x","refField":-1,"pred":{"field":0,"op":"~~"}}`,
		"dup fields":  `{"name":"x","refField":-1,"children":[{"name":"a","refField":0},{"name":"b","refField":0}]}`,
		"neg field":   `{"name":"x","refField":-1,"children":[{"name":"a","refField":-2}]}`,
		"bad classid": `{"name":"x","refField":-1,"class":"#zzz"}`,
	}
	for name, data := range cases {
		if _, err := UnmarshalTemplateJSON([]byte(data), cat); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
}

func TestTemplateJSONNumericClassTags(t *testing.T) {
	tmpl := &Template{Name: "n", Class: 7, RefField: -1}
	data, err := MarshalTemplateJSON(tmpl, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"#7"`) {
		t.Errorf("numeric tag missing:\n%s", data)
	}
	back, err := UnmarshalTemplateJSON(data, nil)
	if err != nil {
		t.Fatal(err)
	}
	if back.Class != 7 {
		t.Errorf("class = %d", back.Class)
	}
}

func TestTemplateJSONDrivesAssembly(t *testing.T) {
	// End to end: serialize the store's template, reload it, assemble.
	s, tmpl, roots := buildChainStore(t, 5)
	data, err := MarshalTemplateJSON(tmpl, s.Catalog)
	if err != nil {
		t.Fatal(err)
	}
	loaded, err := UnmarshalTemplateJSON(data, s.Catalog)
	if err != nil {
		t.Fatal(err)
	}
	out, _ := assembleAll(t, s, loaded, roots, Options{Window: 3, Scheduler: Elevator})
	if len(out) != 5 {
		t.Fatalf("assembled %d", len(out))
	}
	for _, inst := range out {
		checkAssembled(t, s, inst)
	}
}
