package assembly

import (
	"testing"

	"revelation/internal/object"
	"revelation/internal/volcano"
)

// TestPartialRootWithPartialSubtree exercises the Section 4 "partially
// assembled sub-object" case end to end: the stacked input supplies a
// sub-assembly whose own frontier is still unresolved, and the
// downstream operator must discover and schedule it (adoptSubtree).
func TestPartialRootWithPartialSubtree(t *testing.T) {
	s, tmpl, roots := buildChainStore(t, 6)
	midNode := tmpl.Children[0]

	var items []volcano.Item
	for _, r := range roots {
		rootObj, err := s.Get(r)
		if err != nil {
			t.Fatal(err)
		}
		midObj, err := s.Get(rootObj.Refs[0])
		if err != nil {
			t.Fatal(err)
		}
		// The Mid instance arrives with its Leaf child UNRESOLVED.
		midInst := &Instance{
			Object:   midObj,
			Node:     midNode,
			Children: make([]*Instance, len(midNode.Children)),
		}
		items = append(items, PartialRoot{
			Root: r,
			Sub:  map[object.OID]*Instance{midObj.OID: midInst},
		})
	}

	op := New(volcano.NewSlice(items), s, tmpl, Options{Window: 3, Scheduler: Elevator})
	out, err := volcano.Drain(op)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 6 {
		t.Fatalf("assembled %d", len(out))
	}
	for _, it := range out {
		inst := it.(*Instance)
		if inst.Size() != 4 {
			t.Fatalf("complex object has %d components", inst.Size())
		}
		checkAssembled(t, s, inst)
		// The pre-assembled Mid must be the exact instance we passed
		// in, completed in place.
		mid := inst.ChildByName("Mid")
		if mid.ChildByName("Leaf") == nil {
			t.Fatal("frontier of partial subtree not resolved")
		}
	}
	st := op.Stats()
	// Fetches per tree: root, leaf, right = 3 (Mid arrived assembled).
	if st.Fetched != 18 {
		t.Errorf("Fetched = %d, want 18", st.Fetched)
	}
	if st.SharedLinks != 6 {
		t.Errorf("SharedLinks = %d, want 6 (one pre-assembled link per tree)", st.SharedLinks)
	}
}

// TestPartialRootUnusedSubs: sub-assemblies never reached by the
// template are simply ignored.
func TestPartialRootUnusedSubs(t *testing.T) {
	s, tmpl, roots := buildChainStore(t, 2)
	orphanObj, err := s.Get(roots[1])
	if err != nil {
		t.Fatal(err)
	}
	orphan := &Instance{Object: orphanObj, Node: tmpl, Children: make([]*Instance, 2)}
	items := []volcano.Item{PartialRoot{
		Root: roots[0],
		Sub:  map[object.OID]*Instance{orphanObj.OID: orphan},
	}}
	op := New(volcano.NewSlice(items), s, tmpl, Options{Window: 1})
	out, err := volcano.Drain(op)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 || out[0].(*Instance).OID() != roots[0] {
		t.Fatalf("unexpected output: %v", out)
	}
}

// TestUnsupportedInputItem: the operator rejects unknown item types.
func TestUnsupportedInputItem(t *testing.T) {
	s, tmpl, _ := buildChainStore(t, 1)
	op := New(volcano.NewSlice([]volcano.Item{"not an oid"}), s, tmpl, Options{})
	if _, err := volcano.Drain(op); err == nil {
		t.Error("string input accepted")
	}
}

// TestRootPredicateAbort: a predicate on the template root aborts at
// admission time.
func TestRootPredicateAbort(t *testing.T) {
	s, tmpl, roots := buildChainStore(t, 10)
	cl := tmpl.Clone()
	cl.Pred = neverRoot{}
	// Roots arrive as pre-fetched objects (exercises the admit place
	// path with an immediate abort).
	var items []volcano.Item
	for _, r := range roots {
		o, err := s.Get(r)
		if err != nil {
			t.Fatal(err)
		}
		items = append(items, o)
	}
	op := New(volcano.NewSlice(items), s, cl, Options{Window: 4, Scheduler: Elevator})
	out, err := volcano.Drain(op)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 0 {
		t.Fatalf("root predicate let %d objects through", len(out))
	}
	if st := op.Stats(); st.Aborted != 10 || st.Fetched != 0 {
		t.Errorf("stats = %+v", st)
	}
}

type neverRoot struct{}

func (neverRoot) Eval(*object.Object) bool { return false }
func (neverRoot) Selectivity() float64     { return 0.0001 }
func (neverRoot) String() string           { return "never-root" }

// TestAnyClassTemplate: Class 0 nodes accept any object class.
func TestAnyClassTemplate(t *testing.T) {
	s, tmpl, roots := buildChainStore(t, 3)
	anyT := tmpl.Clone()
	anyT.Walk(func(n *Template, _ int) { n.Class = 0 })
	out, _ := assembleAll(t, s, anyT, roots, Options{Window: 2, Scheduler: BreadthFirst})
	if len(out) != 3 {
		t.Fatalf("assembled %d", len(out))
	}
}
