package assembly

import (
	"math/rand"
	"testing"
	"testing/quick"

	"revelation/internal/disk"
	"revelation/internal/heap"
	"revelation/internal/object"
)

// Property: draining an elevator (no mid-drain additions) from any
// head position moves the simulated head at most span up + span down —
// the SCAN bound. A bad policy (random order) would move O(n·span).
func TestElevatorSCANBoundProperty(t *testing.T) {
	f := func(pages []uint16, headSeed uint16) bool {
		if len(pages) == 0 {
			return true
		}
		s := NewScheduler(Elevator)
		item := &workItem{}
		lo, hi := int64(pages[0]), int64(pages[0])
		for i, p := range pages {
			s.Add(&Ref{OID: object.OID(i + 1), RID: heap.RID{Page: disk.PageID(p)}, Item: item,
				Node: &Template{Name: "x"}})
			if int64(p) < lo {
				lo = int64(p)
			}
			if int64(p) > hi {
				hi = int64(p)
			}
		}
		head := int64(headSeed)
		if head < lo {
			lo = head
		}
		if head > hi {
			hi = head
		}
		span := hi - lo
		var moved int64
		served := 0
		for {
			r := s.Next(disk.PageID(head))
			if r == nil {
				break
			}
			p := int64(r.Page())
			d := p - head
			if d < 0 {
				d = -d
			}
			moved += d
			head = p
			served++
		}
		return served == len(pages) && moved <= 2*span
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: every scheduler serves every live reference exactly once,
// regardless of add/serve interleaving.
func TestSchedulersServeEverythingProperty(t *testing.T) {
	f := func(batches [][]uint16, kindSeed uint8) bool {
		kind := SchedulerKind(kindSeed % 3)
		s := NewScheduler(kind)
		item := &workItem{}
		rng := rand.New(rand.NewSource(int64(kindSeed)))
		added, served := 0, 0
		head := disk.PageID(0)
		oid := 1
		for _, batch := range batches {
			var refs []*Ref
			for _, p := range batch {
				refs = append(refs, &Ref{OID: object.OID(oid), RID: heap.RID{Page: disk.PageID(p)},
					Item: item, Node: &Template{Name: "x"}})
				oid++
			}
			s.Add(refs...)
			added += len(refs)
			// Serve a random number between batches.
			for i := rng.Intn(len(batch) + 1); i > 0; i-- {
				if r := s.Next(head); r != nil {
					served++
					head = r.Page()
				}
			}
		}
		for {
			r := s.Next(head)
			if r == nil {
				break
			}
			served++
			head = r.Page()
		}
		return served == added && s.Next(head) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// Property: PredicateFirst serves all hot-tier (rejective-subtree)
// references before any cold ones that were present at the same time.
func TestPredicateFirstTierProperty(t *testing.T) {
	s := NewPredicateFirst(Elevator)
	item := &workItem{}
	hotNode := &Template{Name: "hot", Pred: constPred{sel: 0.1}}
	coldNode := &Template{Name: "cold"}
	for i := 0; i < 50; i++ {
		node := coldNode
		if i%2 == 0 {
			node = hotNode
		}
		s.Add(&Ref{OID: object.OID(i + 1), RID: heap.RID{Page: disk.PageID(i * 13 % 97)},
			Item: item, Node: node})
	}
	seenCold := false
	for r := s.Next(0); r != nil; r = s.Next(0) {
		if r.Node == coldNode {
			seenCold = true
		} else if seenCold {
			t.Fatal("hot reference served after a cold one")
		}
	}
}

type constPred struct{ sel float64 }

func (p constPred) Eval(*object.Object) bool { return true }
func (p constPred) Selectivity() float64     { return p.sel }
func (p constPred) String() string           { return "const" }
