package assembly_test

import (
	"testing"

	"revelation/internal/assembly"
	"revelation/internal/gen"
	"revelation/internal/volcano"
)

// Per-operator micro-benchmarks: cost of assembling one complex object
// under each scheduler, and the shared-table and swizzling overheads.

func benchDB(b *testing.B, cfg gen.Config) *gen.Database {
	b.Helper()
	db, err := gen.Build(cfg)
	if err != nil {
		b.Fatal(err)
	}
	return db
}

func benchAssemble(b *testing.B, db *gen.Database, opts assembly.Options) {
	b.Helper()
	items := make([]volcano.Item, len(db.Roots))
	for i, r := range db.Roots {
		items[i] = r
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		if err := db.Pool.EvictAll(); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		op := assembly.New(volcano.NewSlice(items), db.Store, db.Template, opts)
		n, err := volcano.Count(op)
		if err != nil {
			b.Fatal(err)
		}
		if n != len(db.Roots) {
			b.Fatalf("assembled %d", n)
		}
	}
	b.ReportMetric(float64(len(db.Roots)*db.NodesPerObject), "objects/op")
}

func BenchmarkAssembleDepthFirst(b *testing.B) {
	db := benchDB(b, gen.Config{NumComplexObjects: 500, Clustering: gen.Unclustered, Seed: 61})
	benchAssemble(b, db, assembly.Options{Window: 1, Scheduler: assembly.DepthFirst})
}

func BenchmarkAssembleBreadthFirst(b *testing.B) {
	db := benchDB(b, gen.Config{NumComplexObjects: 500, Clustering: gen.Unclustered, Seed: 61})
	benchAssemble(b, db, assembly.Options{Window: 50, Scheduler: assembly.BreadthFirst})
}

func BenchmarkAssembleElevator(b *testing.B) {
	db := benchDB(b, gen.Config{NumComplexObjects: 500, Clustering: gen.Unclustered, Seed: 61})
	benchAssemble(b, db, assembly.Options{Window: 50, Scheduler: assembly.Elevator})
}

func BenchmarkAssembleElevatorSharing(b *testing.B) {
	db := benchDB(b, gen.Config{NumComplexObjects: 500, Sharing: 0.25, Clustering: gen.InterObject, Seed: 61})
	benchAssemble(b, db, assembly.Options{Window: 50, Scheduler: assembly.Elevator, UseSharingStats: true})
}

// BenchmarkTraverseAssembled measures pointer-swizzled traversal: the
// whole point of assembly is that scans of the result cost memory
// pointer chasing, not OID lookups.
func BenchmarkTraverseAssembled(b *testing.B) {
	db := benchDB(b, gen.Config{NumComplexObjects: 200, Seed: 62})
	items := make([]volcano.Item, len(db.Roots))
	for i, r := range db.Roots {
		items[i] = r
	}
	op := assembly.New(volcano.NewSlice(items), db.Store, db.Template,
		assembly.Options{Window: 50, Scheduler: assembly.Elevator})
	out, err := volcano.Drain(op)
	if err != nil {
		b.Fatal(err)
	}
	insts := make([]*assembly.Instance, len(out))
	for i, it := range out {
		insts[i] = it.(*assembly.Instance)
	}
	b.ResetTimer()
	var sum int64
	for i := 0; i < b.N; i++ {
		for _, inst := range insts {
			inst.Walk(func(in *assembly.Instance) {
				sum += int64(in.Object.Ints[0])
			})
		}
	}
	if sum == 0 {
		b.Log("sum", sum)
	}
}
