package assembly

import "fmt"

// componentIterator is the assembly operator's companion routine
// (Section 5): it interprets the template against a fetched or adopted
// component to determine "what part of a complex object to assemble,
// when assembly is complete [and] how to find unresolved references
// within a newly retrieved object."
type componentIterator struct {
	op *Operator
}

// discover walks one instance (and, for adopted subtrees, its resolved
// descendants) collecting the unresolved references the scheduler
// should see, in left-to-right field order.
//
// abortOnRequiredNil applies the freshly-fetched semantics: a nil
// reference under a Required template child abandons the complex
// object. Adopted (pre-assembled) subtrees skip that check — their
// absent children were vetted when they were first assembled.
//
// It returns (refs, aborted, err).
func (ci componentIterator) discover(item *workItem, root *Instance, deep, abortOnRequiredNil bool) ([]*Ref, bool, error) {
	var refs []*Ref
	var werr error
	aborted := false

	var visit func(in *Instance)
	visit = func(in *Instance) {
		if werr != nil || aborted {
			return
		}
		for slot, ct := range in.Node.Children {
			if in.Children[slot] != nil {
				if deep {
					visit(in.Children[slot])
				}
				continue
			}
			if ct.RefField >= len(in.Object.Refs) {
				if abortOnRequiredNil && ct.Required {
					aborted = true
					return
				}
				continue
			}
			oid := in.Object.Refs[ct.RefField]
			if oid.IsNil() {
				ci.op.stats.NilRefs++
				ci.op.cells.nilRefs.Inc()
				if abortOnRequiredNil && ct.Required {
					aborted = true
					return
				}
				continue
			}
			r, err := ci.op.prepareRef(item, in, slot, ct, oid)
			if err != nil {
				werr = err
				return
			}
			refs = append(refs, r)
		}
	}
	visit(root)
	if werr != nil {
		return nil, false, werr
	}
	if aborted {
		return nil, true, nil
	}
	return refs, false, nil
}

// complete reports whether the item's assembly has finished: no
// pending references and a root in place.
func (ci componentIterator) complete(item *workItem) bool {
	return item.pending == 0 && item.root != nil
}

// String identifies the component iterator in diagnostics.
func (ci componentIterator) String() string {
	return fmt.Sprintf("component-iterator(template %q)", ci.op.Template.Name)
}
