package assembly

import (
	"testing"

	"revelation/internal/disk"
	"revelation/internal/heap"
	"revelation/internal/object"
)

// Scheduler micro-benchmarks: the paper notes the only CPU overhead of
// set-oriented assembly "lies in the maintenance of a scheduling data
// structure (list, queue or priority queue)"; these measure it.

func benchScheduler(b *testing.B, kind SchedulerKind) {
	item := &workItem{}
	node := &Template{Name: "x"}
	// Steady-state: keep ~200 refs pending (a window-50 pool), add one
	// batch of 2, serve 2.
	s := NewScheduler(kind)
	for i := 0; i < 200; i++ {
		s.Add(&Ref{OID: object.OID(i + 1), RID: heap.RID{Page: disk.PageID(i * 131 % 4096)}, Item: item, Node: node})
	}
	head := disk.PageID(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Add(
			&Ref{OID: object.OID(i), RID: heap.RID{Page: disk.PageID(i * 37 % 4096)}, Item: item, Node: node},
			&Ref{OID: object.OID(i), RID: heap.RID{Page: disk.PageID(i * 53 % 4096)}, Item: item, Node: node},
		)
		for j := 0; j < 2; j++ {
			if r := s.Next(head); r != nil {
				head = r.Page()
			}
		}
	}
}

func BenchmarkSchedulerDepthFirst(b *testing.B)   { benchScheduler(b, DepthFirst) }
func BenchmarkSchedulerBreadthFirst(b *testing.B) { benchScheduler(b, BreadthFirst) }
func BenchmarkSchedulerElevator(b *testing.B)     { benchScheduler(b, Elevator) }

func BenchmarkSchedulerPredicateFirst(b *testing.B) {
	item := &workItem{}
	hot := &Template{Name: "hot", Pred: constPred{sel: 0.1}}
	cold := &Template{Name: "cold"}
	s := NewPredicateFirst(Elevator)
	head := disk.PageID(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		node := cold
		if i%2 == 0 {
			node = hot
		}
		s.Add(&Ref{OID: object.OID(i + 1), RID: heap.RID{Page: disk.PageID(i * 131 % 4096)}, Item: item, Node: node})
		if r := s.Next(head); r != nil {
			head = r.Page()
		}
	}
}

func BenchmarkSchedulerMultiElevator(b *testing.B) {
	item := &workItem{}
	node := &Template{Name: "x"}
	s := NewMultiElevator(4, func(p disk.PageID) int { return int(p) / 8 % 4 })
	head := disk.PageID(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Add(&Ref{OID: object.OID(i + 1), RID: heap.RID{Page: disk.PageID(i * 131 % 4096)}, Item: item, Node: node})
		if r := s.Next(head); r != nil {
			head = r.Page()
		}
	}
}
