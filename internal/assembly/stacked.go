package assembly

import (
	"fmt"

	"revelation/internal/object"
	"revelation/internal/volcano"
)

// StackedConfig describes a two-level stacked assembly plan (Fig. 17):
// a bottom-up operator assembles a sub-template for a stream of
// sub-roots, and a top-down operator completes the enclosing template,
// linking the pre-assembled subtrees by OID instead of refetching them.
type StackedConfig struct {
	// Store is the object store both operators read from.
	Store *object.Store
	// Full is the complete template the second operator assembles.
	Full *Template
	// Sub is the subtree of Full that the first operator assembles
	// bottom-up. It must be a node within Full's tree (same pointer),
	// so the emitted complex objects carry one consistent template.
	Sub *Template
	// SubRoots produces the sub-root references for the first
	// operator (items: object.OID).
	SubRoots volcano.Iterator
	// EnclosingRoot maps an assembled sub-instance to the OID of the
	// complex object root that contains it — the upward link the
	// storage model does not represent explicitly, so the plan builder
	// supplies it (e.g. from a back-reference field or an index).
	EnclosingRoot func(*Instance) (object.OID, error)
	// BottomUp and TopDown configure the two operators.
	BottomUp, TopDown Options
}

// NewStacked builds the Fig. 17 plan: Assembly1 (bottom-up over Sub)
// feeding Assembly2 (top-down over Full) through a projection that
// wraps each sub-assembly into a PartialRoot.
func NewStacked(cfg StackedConfig) (volcano.Iterator, error) {
	if cfg.Store == nil || cfg.Full == nil || cfg.Sub == nil {
		return nil, fmt.Errorf("assembly: stacked plan needs store, full and sub templates")
	}
	if !containsNode(cfg.Full, cfg.Sub) {
		return nil, fmt.Errorf("assembly: sub template %q is not a node of the full template", cfg.Sub.Name)
	}
	if cfg.EnclosingRoot == nil {
		return nil, fmt.Errorf("assembly: stacked plan needs an EnclosingRoot mapping")
	}
	bottom := New(cfg.SubRoots, cfg.Store, cfg.Sub, cfg.BottomUp)
	wrap := volcano.NewProject(bottom, func(item volcano.Item) (volcano.Item, error) {
		inst, ok := item.(*Instance)
		if !ok {
			return nil, fmt.Errorf("assembly: stacked projection got %T", item)
		}
		root, err := cfg.EnclosingRoot(inst)
		if err != nil {
			return nil, err
		}
		return PartialRoot{
			Root: root,
			Sub:  map[object.OID]*Instance{inst.OID(): inst},
		}, nil
	})
	return New(wrap, cfg.Store, cfg.Full, cfg.TopDown), nil
}

// containsNode reports whether node is reachable from root (pointer
// identity).
func containsNode(root, node *Template) bool {
	if root == node {
		return true
	}
	for _, c := range root.Children {
		if containsNode(c, node) {
			return true
		}
	}
	return false
}
