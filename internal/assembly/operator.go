package assembly

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"revelation/internal/buffer"
	"revelation/internal/disk"
	"revelation/internal/metrics"
	"revelation/internal/object"
	"revelation/internal/page"
	"revelation/internal/qtrace"
	"revelation/internal/trace"
	"revelation/internal/volcano"
)

// Options configure an assembly operator.
type Options struct {
	// Window is W, the number of complex objects assembled
	// simultaneously (Section 4's sliding assembly). Values < 1 mean 1
	// — plain object-at-a-time capacity.
	Window int
	// Scheduler picks the policy for choosing the next unresolved
	// reference (Section 6.2).
	Scheduler SchedulerKind
	// PredicateFirst layers the Section 7 predicate-aware tiering on
	// top of the base policy: references that can reject a complex
	// object are resolved first.
	PredicateFirst bool
	// UseSharingStats enables the shared-component table driven by the
	// template's sharing statistics (Sections 5 and 6.4): shared
	// components assemble once, stay buffered, and later references
	// link without I/O. When false, sharing degrades to whatever the
	// buffer happens to cache.
	UseSharingStats bool
	// CustomScheduler overrides Scheduler/PredicateFirst entirely.
	CustomScheduler Scheduler
	// PinWindowPages keeps the pages backing partially assembled
	// complex objects pinned in the buffer until the object is passed
	// up, reproducing the paper's buffer economics ("a cost of using
	// the sliding assembly operator is the need for enough buffer
	// space to hold W partially assembled objects", Section 4). When
	// the pool runs low, admission of new complex objects pauses — the
	// effective window shrinks to what the buffer sustains (the
	// Section 7 window/buffer tuning).
	PinWindowPages bool
	// PageBatch resolves every pending reference that lives on a page
	// with one buffer request while the page is fixed — Section 4's
	// "only a single request should be issued to the buffer manager",
	// worth it because "even buffer hits can be expensive" (footnote 5).
	PageBatch bool
	// ShardPrefetch, with a BatchScheduler (e.g. ShardElevator over a
	// shard.Router), fetches one reference per shard lane concurrently:
	// the scheduler hands out a batch — one SCAN step per shard — the
	// operator warms the buffer with one goroutine per lane under a
	// per-shard qtrace span, and then resolves the batch sequentially
	// through the unchanged fault paths. Each lane has at most one read
	// in flight at a time, so per-shard access order (and thus replay
	// determinism per shard) is preserved.
	ShardPrefetch bool
	// FaultPolicy selects how the operator reacts to I/O errors while
	// fetching referenced components. The default (FailFast) is the
	// paper's implicit behavior: any error aborts the whole operator.
	FaultPolicy FaultPolicy
	// MaxRefRetries bounds per-reference retries under RetryFaults;
	// values < 1 mean 3. Exhausting the budget on a still-transient
	// error surfaces the error; only permanent faults quarantine.
	MaxRefRetries int
	// Tracer, when non-nil, receives an assembly event for every window
	// admission, scheduling decision, fetch, link, emission, abort,
	// quarantine, retry, and stall. A nil tracer costs one branch per
	// instrumentation point.
	Tracer *trace.Tracer
	// Metrics, when non-nil, receives the operator's counters and live
	// gauges under asm_assembly_* families labeled by scheduling policy.
	// The per-run Stats struct is mirrored into the registry's cells, so
	// counters accumulate monotonically across runs while Stats stays
	// per-run exact.
	Metrics *metrics.Registry
	// ReserveFrames, when > 0, reserves that many buffer frames at Open
	// as the query's admission quota and releases them at Close. Open
	// fails with buffer.ErrAdmission when the pool cannot accommodate
	// the quota — the load-shed signal for the serve layer. A query's
	// worst-case working set is roughly Window*Template.Nodes() pages
	// plus transient-fix headroom.
	ReserveFrames int
}

// ErrShed marks a query aborted by overload rather than by a device
// fault or its own predicate: the buffer could not sustain even the
// minimum window and waiting is pointless. Callers should treat it like
// an admission rejection (e.g. HTTP 503).
var ErrShed = errors.New("assembly: query shed under overload")

// FaultPolicy is the operator's reaction to a failed component fetch.
type FaultPolicy int

// Fault policies.
const (
	// FailFast surfaces the first fetch error from Next, losing the
	// whole window — the pre-fault-tolerance behavior.
	FailFast FaultPolicy = iota
	// SkipObject quarantines only the complex object whose reference
	// failed: the object is discarded with its pins released and
	// counted in Stats.Skipped while the rest of the window proceeds.
	SkipObject
	// RetryFaults retries transiently failed references (bounded by
	// MaxRefRetries). Permanent faults quarantine the complex object
	// immediately (as SkipObject); a transient fault that outlives the
	// retry budget surfaces as an error instead — the page is not
	// poisoned, because the fault is in the path to the device (e.g. a
	// flapping network connection), not in the page.
	RetryFaults
)

func (p FaultPolicy) String() string {
	switch p {
	case SkipObject:
		return "skip-object"
	case RetryFaults:
		return "retry"
	default:
		return "fail-fast"
	}
}

// Stats reports what one operator run did.
type Stats struct {
	Assembled      int // complex objects emitted
	Aborted        int // complex objects abandoned by a predicate
	Resolved       int // references resolved (fetches + shared links)
	Fetched        int // objects materialized from storage
	PageRequests   int // buffer requests issued for those fetches
	SharedLinks    int // references satisfied from assembled instances
	PredicateFails int
	NilRefs        int // references that were the nil OID
	PeakRefPool    int // largest unresolved-reference pool observed
	PeakWindowPgs  int // peak distinct pages backing the window
	Skipped        int // complex objects quarantined by I/O faults
	FaultRetries   int // reference fetches re-queued after transient faults
	WindowStalls   int // admission pauses forced by buffer exhaustion
}

// Operator is the assembly operator: a Volcano physical operator that
// consumes root references and produces assembled, pointer-swizzled
// complex objects (*Instance items).
//
// Accepted input item types:
//
//   - object.OID: a root reference.
//   - *object.Object: an already-fetched root object.
//   - *Instance: a partially assembled complex object built against
//     *this operator's template tree*; its unresolved frontier is
//     scheduled (Section 4's "partially assembled" case).
//   - PartialRoot: a root OID plus pre-assembled sub-objects from an
//     upstream (stacked) assembly operator, linked by OID when reached
//     (Fig. 17).
type Operator struct {
	Input    volcano.Iterator
	Store    *object.Store
	Template *Template
	Opts     Options

	sched     Scheduler
	shared    *sharedTable
	tr        *trace.Tracer
	liveItems int
	liveSet   map[*workItem]bool
	inputDone bool
	outq      []*workItem
	footprint map[disk.PageID]int
	stats     Stats
	cells     *opCells
	open      bool
	// pressure marks buffer exhaustion: admission pauses (the
	// effective window shrinks) until pins drain at the next emission
	// or quarantine.
	pressure bool
	// stall counts consecutive fault absorptions without assembly
	// progress; it guards the requeue loop against livelock when the
	// buffer can never satisfy the remaining references.
	stall int
	// ctx is the query lifecycle: checked at every scheduling step,
	// bounds pin waits, and drives the abort path. Nil means unbounded
	// (the pre-lifecycle behavior).
	ctx context.Context
	// qspan is the operator's per-query span (see internal/qtrace),
	// opened at Open under the span carried in ctx; qctx carries it to
	// the buffer and storage layers so fetches, hits, misses, and
	// device seeks attribute to this query. Both are nil (no-ops) when
	// the query is untraced. qid stamps every assembly trace event.
	qspan *qtrace.Span
	qctx  context.Context
	qid   uint64
	// batcher is the scheduler's batch interface when ShardPrefetch is
	// on; batchq holds the tail of the current batch (already
	// prefetched, resolved one per scheduling step). laneSpans/laneCtxs
	// attribute each lane's prefetch I/O to a per-shard child span.
	batcher   BatchScheduler
	batchq    []*Ref
	laneSpans []*qtrace.Span
	laneCtxs  []context.Context
	// reservation is the frame quota admitted at Open (ReserveFrames).
	reservation *buffer.Reservation
}

// BindContext implements volcano.ContextBinder: the operator observes
// ctx at every scheduling step and aborts the whole window — unpinning,
// draining quarantine bookkeeping, emitting abort events — when the
// query is cancelled or its deadline passes.
func (op *Operator) BindContext(ctx context.Context) { op.ctx = ctx }

// workItem is one window slot: a complex object being assembled.
type workItem struct {
	root    *Instance
	pending int
	aborted bool
	emitted bool
	// pre holds stacked-input sub-assemblies not yet reached.
	pre map[object.OID]*Instance
	// assembled maps OIDs already assembled within this complex
	// object, for intra-object sharing ("multiple, possibly shared,
	// object references contained within a single object", Section 4).
	assembled map[object.OID]*Instance
	// pages is the item's window footprint.
	pages map[disk.PageID]bool
	// frames are the buffer pins held for this item when
	// PinWindowPages is on.
	frames []*buffer.Frame
}

// New builds an assembly operator.
func New(input volcano.Iterator, store *object.Store, tmpl *Template, opts Options) *Operator {
	return &Operator{Input: input, Store: store, Template: tmpl, Opts: opts}
}

// Stats returns the operator's counters (valid after Open).
func (op *Operator) Stats() Stats { return op.stats }

// PlanNode implements volcano.PlanNoder, so assembly plans render in
// volcano.Explain output.
func (op *Operator) PlanNode() (string, []volcano.Iterator) {
	window := op.Opts.Window
	if window < 1 {
		window = 1
	}
	name := op.Opts.Scheduler.String()
	if op.Opts.CustomScheduler != nil {
		name = op.Opts.CustomScheduler.Name()
	} else if op.Opts.PredicateFirst {
		name = "predicate-first/" + name
	}
	label := fmt.Sprintf("assembly(%s, window %d, template %q %d nodes)",
		name, window, op.Template.Name, op.Template.Nodes())
	return label, []volcano.Iterator{op.Input}
}

// Open implements volcano.Iterator.
func (op *Operator) Open() error {
	if op.Template == nil {
		return errors.New("assembly: no template")
	}
	if err := op.Template.Validate(op.Store.Catalog); err != nil {
		return err
	}
	switch {
	case op.Opts.CustomScheduler != nil:
		op.sched = op.Opts.CustomScheduler
	case op.Opts.PredicateFirst:
		op.sched = NewPredicateFirst(op.Opts.Scheduler)
	default:
		op.sched = NewScheduler(op.Opts.Scheduler)
	}
	if op.Opts.UseSharingStats {
		op.shared = newSharedTable(op.Store.File.Pool())
	}
	op.tr = op.Opts.Tracer
	op.liveItems = 0
	op.liveSet = map[*workItem]bool{}
	op.inputDone = false
	op.outq = nil
	op.footprint = map[disk.PageID]int{}
	op.stats = Stats{}
	op.cells = newOpCells(op.Opts.Metrics, op.sched.Name())
	op.cells.occupancy.Set(0)
	op.pressure = false
	op.stall = 0
	op.qspan, op.qctx = qtrace.Start(op.ctx, qtrace.LayerAssembly, "assemble")
	op.qid = op.qspan.QID()
	op.batcher = nil
	op.batchq = nil
	op.laneSpans = nil
	op.laneCtxs = nil
	if op.Opts.ShardPrefetch {
		b, ok := op.sched.(BatchScheduler)
		if !ok {
			return fmt.Errorf("assembly: ShardPrefetch needs a batch-capable scheduler, got %s", op.sched.Name())
		}
		op.batcher = b
		op.laneSpans = make([]*qtrace.Span, b.Lanes())
		op.laneCtxs = make([]context.Context, b.Lanes())
		for i := range op.laneSpans {
			sp := op.qspan.StartChild(qtrace.LayerAssembly, fmt.Sprintf("shard%d", i))
			op.laneSpans[i] = sp
			ctx := op.qctx
			if ctx == nil {
				ctx = context.Background()
			}
			op.laneCtxs[i] = qtrace.With(ctx, sp)
		}
	}
	if op.Opts.ReserveFrames > 0 {
		r, err := op.Store.File.Pool().Reserve(op.Opts.ReserveFrames)
		if err != nil {
			return err
		}
		op.reservation = r
	}
	if err := op.Input.Open(); err != nil {
		op.reservation.Release()
		op.reservation = nil
		op.endLaneSpans()
		op.qspan.End()
		return err
	}
	op.open = true
	return nil
}

// Next implements volcano.Iterator: it returns the next fully
// assembled complex object as an *Instance.
func (op *Operator) Next() (volcano.Item, error) {
	if !op.open {
		return nil, volcano.ErrNotOpen
	}
	window := op.Opts.Window
	if window < 1 {
		window = 1
	}
	for {
		// The query lifecycle gates every scheduling step: a dead
		// context aborts the whole window before any more work runs.
		if op.ctx != nil {
			if err := op.ctx.Err(); err != nil {
				return nil, op.fail(err)
			}
		}
		// Emit an assembled complex object as soon as one is ready:
		// "as soon as any one of these complex objects becomes
		// assembled and passed up the query tree, the operator
		// retrieves another one to work on" (Section 4).
		if len(op.outq) > 0 {
			item := op.outq[0]
			op.outq = op.outq[1:]
			op.releaseFootprint(item)
			// Emission drains this item's pins: buffer pressure (if
			// any) clears and admission may resume at full window.
			op.pressure = false
			op.stall = 0
			if err := op.unpinFrames(item); err != nil {
				return nil, op.fail(err)
			}
			return item.root, nil
		}
		// Keep the window full — unless pinned window pages are
		// exhausting the buffer, in which case the effective window
		// shrinks to what the pool sustains.
		for op.liveItems < window && !op.inputDone && op.admissionAllowed() {
			if err := op.admit(); err != nil {
				return nil, op.fail(err)
			}
		}
		if op.liveItems == 0 {
			if op.inputDone {
				return nil, volcano.Done
			}
			continue
		}
		head := op.head()
		ref := op.nextRef(head)
		if ref == nil {
			// All live items' references were consumed but none
			// completed: impossible unless bookkeeping broke.
			return nil, fmt.Errorf("assembly: %d live complex objects with no pending references", op.liveItems)
		}
		if !ref.live() {
			continue
		}
		// The policy decision: which reference the scheduler picked
		// given the head position — the choice the whole paper is about.
		if op.tr != nil {
			op.tr.AssemblyQ(trace.KindChoose, uint64(ref.OID), int64(ref.RID.Page), int64(head), op.sched.Name(), op.qid)
		}
		if err := op.resolve(ref); err != nil {
			return nil, op.fail(err)
		}
	}
}

// Close implements volcano.Iterator. Pin-release failures are joined
// with the input's close error instead of being dropped.
func (op *Operator) Close() error {
	op.open = false
	var errs []error
	for item := range op.liveSet {
		if err := op.unpinFrames(item); err != nil {
			errs = append(errs, err)
		}
	}
	op.liveSet = nil
	for _, item := range op.outq {
		if err := op.unpinFrames(item); err != nil {
			errs = append(errs, err)
		}
	}
	op.outq = nil
	op.sched = nil
	op.shared = nil
	op.batcher = nil
	op.batchq = nil
	op.endLaneSpans()
	op.qspan.End()
	// The admission quota returns to the pool on every exit path, error
	// or not — a leaked reservation would shed later queries forever.
	op.reservation.Release()
	op.reservation = nil
	errs = append(errs, op.Input.Close())
	return errors.Join(errs...)
}

// endLaneSpans closes the per-shard prefetch spans (no-ops when
// ShardPrefetch is off or the query is untraced).
func (op *Operator) endLaneSpans() {
	for _, sp := range op.laneSpans {
		sp.End()
	}
	op.laneSpans = nil
	op.laneCtxs = nil
}

// nextRef is the scheduling step. Without a batch scheduler it simply
// asks the policy for the next reference. With ShardPrefetch on it
// pulls one SCAN step per shard lane, warms the buffer with one
// concurrent fix per lane, and then serves the batch one reference at
// a time — so every reference still flows through the ordinary resolve
// and fault paths, with the page (usually) already resident.
func (op *Operator) nextRef(head disk.PageID) *Ref {
	if op.batcher == nil {
		return op.sched.Next(head)
	}
	for len(op.batchq) > 0 {
		r := op.batchq[0]
		op.batchq = op.batchq[1:]
		if r.live() {
			return r
		}
	}
	batch := op.batcher.NextBatch(head)
	if len(batch) == 0 {
		return nil
	}
	op.prefetchBatch(batch)
	op.batchq = batch[1:]
	return batch[0]
}

// prefetchBatch warms the buffer with one concurrent read per shard
// lane, each attributed to its lane's qtrace span. Errors are dropped
// on purpose: the sequential resolve that follows re-encounters any
// fault through the full fault-policy machinery (retry budgets,
// quarantine, breaker-aware failover), so the prefetch can stay purely
// an optimisation. Every fix is unfixed before the barrier, so the
// batch holds no pins of its own.
func (op *Operator) prefetchBatch(batch []*Ref) {
	if len(batch) < 2 {
		return
	}
	pool := op.Store.File.Pool()
	var wg sync.WaitGroup
	for _, r := range batch {
		ctx := op.qctx
		if lane := op.batcher.LaneOf(r.RID.Page); lane < len(op.laneCtxs) && op.laneCtxs[lane] != nil {
			ctx = op.laneCtxs[lane]
		}
		wg.Add(1)
		go func(pg disk.PageID, ctx context.Context) {
			defer wg.Done()
			if f, err := pool.FixAs(ctx, pg); err == nil {
				pool.Unfix(f, false)
			}
		}(r.RID.Page, ctx)
	}
	wg.Wait()
}

// admissionAllowed gates window growth on buffer headroom when window
// pages are pinned. A lone complex object is always admitted so the
// operator can make progress. Under buffer pressure (an observed
// ErrNoFrames) admission also pauses until pins drain — the effective
// window shrinks to what the pool sustains and recovers afterwards.
func (op *Operator) admissionAllowed() bool {
	if op.pressure && op.liveItems > 0 {
		return false
	}
	if !op.Opts.PinWindowPages || op.liveItems == 0 {
		return true
	}
	pool := op.Store.File.Pool()
	// Budget by worst case, not by current pins: every live object may
	// still pin up to one page per component, and transient fixes
	// (heap gets, index descents) need headroom.
	const headroom = 8
	perItem := op.Template.Nodes()
	return (op.liveItems+1)*perItem+headroom <= pool.Size()
}

// pinPage pins the page backing a freshly fetched component for the
// item's lifetime. Pool exhaustion downgrades gracefully: the page
// simply stays unpinned and may be re-read later, and while the window
// is under buffer pressure no new pins are taken at all.
func (op *Operator) pinPage(item *workItem, pg disk.PageID) {
	if !op.Opts.PinWindowPages || op.pressure {
		return
	}
	f, err := op.Store.File.Pool().FixAs(op.qctx, pg)
	if err != nil {
		return
	}
	item.frames = append(item.frames, f)
}

// unpinFrames releases every buffer pin the item holds. An Unfix
// failure means double-release — a bookkeeping bug — so it propagates
// through the operator's error return instead of being lost; every
// frame is still visited so one bad pin cannot strand the rest.
func (op *Operator) unpinFrames(item *workItem) error {
	pool := op.Store.File.Pool()
	var errs []error
	for _, f := range item.frames {
		if err := pool.Unfix(f, false); err != nil {
			errs = append(errs, fmt.Errorf("assembly: release window pin: %w", err))
		}
	}
	item.frames = nil
	return errors.Join(errs...)
}

// shedPins releases every window pin held by live items. It is the
// operator's response to buffer exhaustion: instances own decoded
// copies of their records, so pins only keep the window's working set
// resident — dropping them costs re-reads, never correctness. The
// freed frames let the stalled fetches proceed; pinning resumes once
// pressure clears at the next emission.
func (op *Operator) shedPins() error {
	var errs []error
	for item := range op.liveSet {
		if len(item.frames) == 0 {
			continue
		}
		if err := op.unpinFrames(item); err != nil {
			errs = append(errs, err)
		}
	}
	return errors.Join(errs...)
}

func (op *Operator) head() disk.PageID {
	return op.Store.File.Pool().Device().Head()
}

// admit pulls the next root from the input and opens a window slot for
// it. It sets inputDone at end of input.
func (op *Operator) admit() error {
	raw, err := op.Input.Next()
	if errors.Is(err, volcano.Done) {
		op.inputDone = true
		return nil
	}
	if err != nil {
		return err
	}
	item := &workItem{
		assembled: map[object.OID]*Instance{},
		pages:     map[disk.PageID]bool{},
	}
	// Count the slot live up front so an abort during admission (a
	// root-level predicate failure) balances the books.
	op.liveItems++
	op.cells.occupancy.Set(int64(op.liveItems))
	op.liveSet[item] = true
	switch v := raw.(type) {
	case object.OID:
		if v.IsNil() {
			op.liveItems-- // nil root: nothing to assemble
			op.cells.occupancy.Set(int64(op.liveItems))
			delete(op.liveSet, item)
			return nil
		}
		op.tr.AssemblyQ(trace.KindAdmit, uint64(v), trace.NoPage, trace.NoPage, "", op.qid)
		if err := op.scheduleRef(item, nil, 0, op.Template, v); err != nil {
			return err
		}
	case *object.Object:
		op.tr.AssemblyQ(trace.KindAdmit, uint64(v.OID), trace.NoPage, trace.NoPage, "", op.qid)
		if _, err := op.place(item, nil, 0, op.Template, v, op.pageOf(v.OID)); err != nil {
			return err
		}
	case *Instance:
		op.tr.AssemblyQ(trace.KindAdmit, uint64(v.OID()), trace.NoPage, trace.NoPage, "", op.qid)
		if err := op.adopt(item, v); err != nil {
			return err
		}
	case PartialRoot:
		if v.Root.IsNil() {
			op.liveItems--
			op.cells.occupancy.Set(int64(op.liveItems))
			delete(op.liveSet, item)
			return nil
		}
		op.tr.AssemblyQ(trace.KindAdmit, uint64(v.Root), trace.NoPage, trace.NoPage, "", op.qid)
		item.pre = v.Sub
		if err := op.scheduleRef(item, nil, 0, op.Template, v.Root); err != nil {
			return err
		}
	default:
		op.liveItems--
		op.cells.occupancy.Set(int64(op.liveItems))
		delete(op.liveSet, item)
		return fmt.Errorf("assembly: unsupported input item type %T", raw)
	}
	op.settle(item)
	return nil
}

// adopt takes a partially assembled complex object built against this
// operator's template and schedules its unresolved frontier: "when a
// partially assembled sub-object is discovered, the operator finds all
// unresolved references within it" (Section 4).
func (op *Operator) adopt(item *workItem, root *Instance) error {
	item.root = root
	root.Walk(func(in *Instance) {
		item.assembled[in.OID()] = in
		op.noteFootprint(item, in.page)
	})
	batch, _, err := componentIterator{op}.discover(item, root, true, false)
	if err != nil {
		return err
	}
	op.dispatch(batch...)
	return nil
}

// prepareRef resolves the OID's physical address and accounts the
// pending reference; the caller dispatches prepared references to the
// scheduler in batches so sibling order is preserved.
func (op *Operator) prepareRef(item *workItem, parent *Instance, slot int, node *Template, oid object.OID) (*Ref, error) {
	rid, ok, err := op.Store.WhereIs(oid)
	if err != nil {
		return nil, err
	}
	if !ok {
		return nil, fmt.Errorf("assembly: dangling reference %v (template node %q)", oid, node.Name)
	}
	item.pending++
	propagatePending(parent, +1)
	return &Ref{OID: oid, RID: rid, Node: node, Parent: parent, Slot: slot, Item: item}, nil
}

// dispatch hands a batch of prepared references (one fetched object's
// unresolved references, in left-to-right field order) to the
// scheduler.
func (op *Operator) dispatch(refs ...*Ref) {
	if len(refs) == 0 {
		return
	}
	if op.tr != nil {
		for _, r := range refs {
			op.tr.AssemblyQ(trace.KindPend, uint64(r.OID), int64(r.RID.Page), trace.NoPage, "", op.qid)
		}
	}
	op.sched.Add(refs...)
	n := op.sched.Len()
	op.cells.refPool.Set(int64(n))
	if n > op.stats.PeakRefPool {
		op.stats.PeakRefPool = n
	}
}

// scheduleRef prepares and immediately dispatches a single reference.
func (op *Operator) scheduleRef(item *workItem, parent *Instance, slot int, node *Template, oid object.OID) error {
	r, err := op.prepareRef(item, parent, slot, node, oid)
	if err != nil {
		return err
	}
	op.dispatch(r)
	return nil
}

// propagatePending adjusts the unresolved-descendant counters along
// the parent chain; a shared subtree registers in the window-wide
// table exactly when its counter returns to zero (it is complete).
func propagatePending(parent *Instance, delta int) {
	for p := parent; p != nil; p = p.Parent {
		p.pendingDesc += delta
	}
}

// maybeRegisterShared registers inst and any newly completed shared
// ancestors in the shared table.
func (op *Operator) maybeRegisterShared(inst *Instance) {
	if op.shared == nil {
		return
	}
	for p := inst; p != nil; p = p.Parent {
		if p.pendingDesc == 0 && p.Node.Shared && !p.registered {
			p.registered = true
			op.shared.register(p, p.Node)
		}
		if p.pendingDesc != 0 {
			break
		}
	}
}

// resolve is one scheduling step. Without page batching it handles the
// single reference; with PageBatch on it also drains every other
// pending reference on the same page while that page is fixed once —
// "if requested objects are contained in a single page, then only a
// single request should be issued to the buffer manager" (Section 4).
func (op *Operator) resolve(ref *Ref) error {
	if !op.Opts.PageBatch {
		return op.resolveOne(ref, nil)
	}
	batch := append([]*Ref{ref}, op.sched.TakeOnPage(ref.RID.Page)...)
	if op.tr != nil {
		// The first ref already traced as the scheduler's choice; the
		// rest of the batch drained with it on the single page fix.
		for _, r := range batch[1:] {
			op.tr.AssemblyQ(trace.KindTake, uint64(r.OID), int64(r.RID.Page), trace.NoPage, "", op.qid)
		}
	}
	pool := op.Store.File.Pool()
	fr, err := pool.FixAs(op.qctx, ref.RID.Page)
	if err != nil {
		return op.batchFault(batch, fmt.Errorf("assembly: fix page %d: %w", ref.RID.Page, err))
	}
	op.stats.PageRequests++
	op.cells.pageRequests.Inc()
	pg := page.Wrap(fr.Data())
	for _, r := range batch {
		if !r.live() {
			continue
		}
		if err := op.resolveOne(r, pg); err != nil {
			pool.Unfix(fr, false)
			return err
		}
	}
	return pool.Unfix(fr, false)
}

// resolveOne fetches or links one referenced component, swizzles it
// into its parent, evaluates predicates, discovers new unresolved
// references, and detects completion. When pg is non-nil the record is
// read from that already-fixed page instead of issuing a new buffer
// request.
func (op *Operator) resolveOne(ref *Ref, pg *page.Page) error {
	item := ref.Item
	item.pending--
	op.stats.Resolved++
	op.cells.resolved.Inc()
	op.cells.refPool.Set(int64(op.sched.Len()))

	// 1. Already assembled within this complex object (intra-object
	// sharing)? Only shared template nodes pay the lookup, exactly as
	// Section 5 prescribes for non-sharable components.
	if ref.Node.Shared {
		if inst, ok := item.assembled[ref.OID]; ok {
			op.link(item, ref, inst)
			propagatePending(ref.Parent, -1)
			op.maybeRegisterShared(ref.Parent)
			op.stats.SharedLinks++
			op.cells.sharedLinks.Inc()
			op.qspan.OnLink()
			op.tr.AssemblyQ(trace.KindLink, uint64(ref.OID), trace.NoPage, trace.NoPage, "intra", op.qid)
			op.settle(item)
			return nil
		}
		// 2. Assembled by another complex object in the window?
		if op.shared != nil {
			if inst, ok := op.shared.lookup(ref.OID); ok {
				op.link(item, ref, inst)
				propagatePending(ref.Parent, -1)
				op.maybeRegisterShared(ref.Parent)
				item.assembled[ref.OID] = inst
				op.noteFootprint(item, inst.page)
				op.stats.SharedLinks++
				op.cells.sharedLinks.Inc()
				op.qspan.OnLink()
				op.tr.AssemblyQ(trace.KindLink, uint64(ref.OID), trace.NoPage, trace.NoPage, "window", op.qid)
				op.settle(item)
				return nil
			}
		}
	}
	// 3. Pre-assembled by an upstream stacked operator?
	if item.pre != nil {
		if inst, ok := item.pre[ref.OID]; ok {
			delete(item.pre, ref.OID)
			op.link(item, ref, inst)
			op.stats.SharedLinks++
			op.cells.sharedLinks.Inc()
			op.qspan.OnLink()
			op.tr.AssemblyQ(trace.KindLink, uint64(ref.OID), trace.NoPage, trace.NoPage, "stacked", op.qid)
			// The pre-assembled subtree may itself be partial: walk it
			// for unresolved references and account its members.
			if err := op.adoptSubtree(item, inst); err != nil {
				return err
			}
			propagatePending(ref.Parent, -1)
			op.maybeRegisterShared(ref.Parent)
			op.settle(item)
			return nil
		}
	}
	// 4. Fetch from storage — through the buffer, or straight off the
	// already-fixed page when batching.
	var obj *object.Object
	if pg != nil {
		rec, gerr := pg.Get(ref.RID.Slot)
		if gerr != nil {
			return op.refFault(ref, fmt.Errorf("assembly: fetch %v from fixed page: %w", ref.OID, gerr))
		}
		var derr error
		obj, derr = object.Decode(rec)
		if derr != nil {
			return op.refFault(ref, fmt.Errorf("assembly: decode %v: %w", ref.OID, derr))
		}
	} else {
		var err error
		obj, err = op.Store.GetAtCtx(op.qctx, ref.RID)
		if err != nil {
			return op.refFault(ref, fmt.Errorf("assembly: fetch %v: %w", ref.OID, err))
		}
		op.stats.PageRequests++
		op.cells.pageRequests.Inc()
	}
	op.stats.Fetched++
	op.cells.fetched.Inc()
	op.qspan.OnFetch()
	if op.tr != nil {
		op.tr.AssemblyQ(trace.KindFetch, uint64(ref.OID), int64(ref.RID.Page), trace.NoPage, "", op.qid)
	}
	op.pinPage(item, ref.RID.Page)
	inst, err := op.place(item, ref.Parent, ref.Slot, ref.Node, obj, ref.RID.Page)
	if err != nil {
		return err
	}
	propagatePending(ref.Parent, -1)
	if inst != nil {
		op.maybeRegisterShared(inst)
	}
	op.settle(item)
	return nil
}

// refFault reacts to a failed component fetch for ref, whose pending
// count has already been consumed. It returns nil when the fault was
// absorbed — the reference re-queued or the complex object
// quarantined — and the error itself when it must surface (FailFast,
// or a stalled buffer with no possible progress).
func (op *Operator) refFault(ref *Ref, cause error) error {
	item := ref.Item
	if item == nil || item.aborted {
		// A stale reference of an already-dead item: nothing to do.
		return nil
	}
	// Buffer exhaustion is congestion, not a device fault: shrink the
	// effective window — stop admitting, shed window pins (they are a
	// working-set optimisation, never a correctness requirement) — and
	// retry the reference, whatever the fault policy. The stall counter
	// catches the hopeless case — a buffer that cannot sustain even
	// unpinned assembly — after a full pass over the pending pool
	// without any assembly progress.
	if errors.Is(cause, buffer.ErrNoFrames) {
		op.stall++
		if op.stall > 2*(op.sched.Len()+op.liveItems)+4 {
			return fmt.Errorf("assembly: window stalled, buffer cannot hold a single complex object: %w: %w", ErrShed, cause)
		}
		if !op.pressure {
			op.pressure = true
			op.stats.WindowStalls++
			op.cells.windowStalls.Inc()
			op.qspan.OnStall()
			op.tr.AssemblyQ(trace.KindStall, 0, trace.NoPage, trace.NoPage, "", op.qid)
		}
		if err := op.shedPins(); err != nil {
			return err
		}
		// With its own pins shed, the operator now waits — bounded by
		// the query's deadline — for another query's unfix instead of
		// spin-requeueing against a still-full pool. A dead context
		// surfaces here and aborts the lifecycle upstream.
		if op.ctx != nil {
			if werr := op.Store.File.Pool().WaitFrame(op.ctx, 0); werr != nil {
				return fmt.Errorf("assembly: pin wait: %w", werr)
			}
		}
		item.pending++
		op.dispatch(ref)
		return nil
	}
	switch op.Opts.FaultPolicy {
	case RetryFaults:
		if disk.Retryable(cause) {
			if ref.Attempts < op.maxRefRetries() {
				ref.Attempts++
				op.stats.FaultRetries++
				op.cells.faultRetries.Inc()
				op.qspan.OnRefRetry()
				op.tr.AssemblyQ(trace.KindRetry, uint64(ref.OID), int64(ref.RID.Page), trace.NoPage, "", op.qid)
				item.pending++
				op.dispatch(ref)
				return nil
			}
			// The retry budget ran out but the fault is still transient
			// — a flapping connection, not a dead page. Quarantine is
			// reserved for pages the device has declared unrecoverable;
			// poisoning this object would wrongly pin the blame on it,
			// so the error surfaces to the caller instead.
			return cause
		}
		return op.quarantine(item)
	case SkipObject:
		return op.quarantine(item)
	default:
		return cause
	}
}

// batchFault spreads a page-level failure (the PageBatch fix failed)
// over every reference that was waiting on the page. Each live
// reference consumes its pending count and goes through refFault.
func (op *Operator) batchFault(batch []*Ref, cause error) error {
	var first error
	for _, r := range batch {
		if !r.live() {
			continue
		}
		r.Item.pending--
		if err := op.refFault(r, cause); err != nil && first == nil {
			first = err
		}
	}
	return first
}

func (op *Operator) maxRefRetries() int {
	if op.Opts.MaxRefRetries < 1 {
		return 3
	}
	return op.Opts.MaxRefRetries
}

// place builds the instance for a fetched object, links it, evaluates
// its predicate, and schedules its children. It returns nil when the
// predicate aborted the complex object.
func (op *Operator) place(item *workItem, parent *Instance, slot int, node *Template, obj *object.Object, pg disk.PageID) (*Instance, error) {
	if node.Class != 0 && obj.Class != node.Class {
		return nil, fmt.Errorf("assembly: object %v has class %d, template node %q wants %d",
			obj.OID, obj.Class, node.Name, node.Class)
	}
	inst := &Instance{
		Object:   obj,
		Node:     node,
		Children: make([]*Instance, len(node.Children)),
		page:     pg,
	}
	// Selective assembly: "abort the assembly of a complex object as
	// soon as possible if it has a chance of not satisfying a
	// selection predicate" (Section 4).
	if node.Pred != nil && !node.Pred.Eval(obj) {
		op.stats.PredicateFails++
		op.cells.predicateFails.Inc()
		return nil, op.abort(item)
	}
	op.link(item, &Ref{Parent: parent, Slot: slot, Item: item}, inst)
	if node.Shared {
		item.assembled[obj.OID] = inst
	}
	op.noteFootprint(item, pg)

	// Component iterator: discover the unresolved references of the
	// new component, in left-to-right field order, dispatched as one
	// batch so order-sensitive schedulers see the method-traversal
	// order. A nil reference under a required child aborts the whole
	// complex object.
	batch, aborted, err := componentIterator{op}.discover(item, inst, false, true)
	if err != nil {
		return nil, err
	}
	if aborted {
		return nil, op.abort(item)
	}
	op.dispatch(batch...)
	return inst, nil
}

// adoptSubtree accounts a pre-assembled subtree linked from a stacked
// input: registers its members for intra-object sharing, notes the
// footprint, and schedules its unresolved frontier.
func (op *Operator) adoptSubtree(item *workItem, root *Instance) error {
	root.Walk(func(in *Instance) {
		if in.Node.Shared {
			item.assembled[in.OID()] = in
		}
		op.noteFootprint(item, in.page)
	})
	batch, _, err := componentIterator{op}.discover(item, root, true, false)
	if err != nil {
		return err
	}
	op.dispatch(batch...)
	return nil
}

// link swizzles inst into its parent (or makes it the item's root) and
// bumps the reference count. Every link is assembly progress, so it
// resets the buffer-stall counter.
func (op *Operator) link(item *workItem, ref *Ref, inst *Instance) {
	op.stall = 0
	inst.refs++
	if ref.Parent == nil {
		item.root = inst
		return
	}
	ref.Parent.Children[ref.Slot] = inst
	if inst.Parent == nil {
		inst.Parent = ref.Parent
	}
}

// settle checks whether the item just completed and moves it to the
// output queue.
func (op *Operator) settle(item *workItem) {
	if item.aborted || item.emitted {
		return
	}
	if item.pending == 0 && item.root != nil {
		item.emitted = true
		op.liveItems--
		op.cells.occupancy.Set(int64(op.liveItems))
		op.stats.Assembled++
		op.cells.assembled.Inc()
		op.tr.AssemblyQ(trace.KindEmit, uint64(item.root.OID()), trace.NoPage, trace.NoPage, "", op.qid)
		delete(op.liveSet, item)
		op.outq = append(op.outq, item)
	}
}

// abort abandons the item's assembly: its pending references die in
// the scheduler (skipped lazily) and its footprint is released.
func (op *Operator) abort(item *workItem) error {
	return op.abortItem(item, "")
}

// abortItem is abort with a reason carried in the trace event's note:
// empty for a predicate abort, or one of trace.ReasonDeadline /
// ReasonCanceled / ReasonShed for a query-lifecycle abort.
func (op *Operator) abortItem(item *workItem, reason string) error {
	if item.aborted {
		return nil
	}
	item.aborted = true
	op.liveItems--
	op.cells.occupancy.Set(int64(op.liveItems))
	op.stats.Aborted++
	op.cells.aborted.Inc()
	op.tr.AssemblyQ(trace.KindAbort, uint64(itemRoot(item)), trace.NoPage, trace.NoPage, reason, op.qid)
	return op.discard(item)
}

// lifecycleReason classifies a lifecycle-terminal error, or returns ""
// for ordinary errors (device faults, bookkeeping bugs) that keep the
// pre-lifecycle behavior.
func lifecycleReason(err error) string {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		return trace.ReasonDeadline
	case errors.Is(err, context.Canceled):
		return trace.ReasonCanceled
	case errors.Is(err, ErrShed), errors.Is(err, buffer.ErrAdmission):
		return trace.ReasonShed
	}
	return ""
}

// fail is the operator's error funnel: every error leaving Next passes
// through it. Lifecycle errors (deadline, cancellation, shed) abort the
// whole window first — every live complex object is abandoned with its
// pins and footprint released, an assembly.abort event per item carrying
// the reason — so the books balance even when the query dies mid-step.
// Other errors pass through untouched.
func (op *Operator) fail(err error) error {
	if err == nil || errors.Is(err, volcano.Done) {
		return err
	}
	reason := lifecycleReason(err)
	if reason == "" {
		return err
	}
	if aerr := op.abortLifecycle(reason); aerr != nil {
		return errors.Join(err, aerr)
	}
	return err
}

// abortLifecycle abandons every live complex object with the given
// reason and drains the output queue's pins. Queued items were already
// emitted in stats and trace terms, so they release resources without
// new events; live items go through the ordinary abort path, which also
// clears quarantine-adjacent state (pressure, stall). Idempotent: a
// second call sees empty sets.
func (op *Operator) abortLifecycle(reason string) error {
	var errs []error
	for item := range op.liveSet {
		if err := op.abortItem(item, reason); err != nil {
			errs = append(errs, err)
		}
	}
	for _, item := range op.outq {
		op.releaseFootprint(item)
		if err := op.unpinFrames(item); err != nil {
			errs = append(errs, err)
		}
	}
	op.outq = nil
	op.cells.lifecycleAborts.Inc()
	return errors.Join(errs...)
}

// itemRoot reports the item's root OID for tracing, or the nil OID when
// the root was never placed (e.g. a root-level predicate failure).
func itemRoot(item *workItem) object.OID {
	if item.root == nil {
		return object.NilOID
	}
	return item.root.OID()
}

// quarantine poisons one complex object after an unrecoverable fetch
// fault: the object is discarded with its pins released and counted in
// Stats.Skipped, while the rest of the window proceeds untouched.
// Shared components it already completed stay registered — they are
// whole subtrees, valid for other complex objects to link.
func (op *Operator) quarantine(item *workItem) error {
	if item.aborted {
		return nil
	}
	item.aborted = true
	op.liveItems--
	op.cells.occupancy.Set(int64(op.liveItems))
	op.stats.Skipped++
	op.cells.skipped.Inc()
	op.tr.AssemblyQ(trace.KindQuarantine, uint64(itemRoot(item)), trace.NoPage, trace.NoPage, "", op.qid)
	return op.discard(item)
}

// discard is the shared tail of abort and quarantine: the item leaves
// the live set and its footprint and pins drain, releasing any buffer
// pressure.
func (op *Operator) discard(item *workItem) error {
	delete(op.liveSet, item)
	op.releaseFootprint(item)
	op.pressure = false
	op.stall = 0
	return op.unpinFrames(item)
}

func (op *Operator) noteFootprint(item *workItem, pg disk.PageID) {
	if pg == disk.InvalidPage || item.pages[pg] {
		return
	}
	item.pages[pg] = true
	op.footprint[pg]++
	n := len(op.footprint)
	op.cells.windowPages.Set(int64(n))
	if n > op.stats.PeakWindowPgs {
		op.stats.PeakWindowPgs = n
	}
}

func (op *Operator) releaseFootprint(item *workItem) {
	for pg := range item.pages {
		op.footprint[pg]--
		if op.footprint[pg] <= 0 {
			delete(op.footprint, pg)
		}
	}
	op.cells.windowPages.Set(int64(len(op.footprint)))
	item.pages = map[disk.PageID]bool{}
}

// pageOf resolves the page backing an OID, or InvalidPage when the
// locator does not know it.
func (op *Operator) pageOf(oid object.OID) disk.PageID {
	rid, ok, err := op.Store.WhereIs(oid)
	if err != nil || !ok {
		return disk.InvalidPage
	}
	return rid.Page
}
