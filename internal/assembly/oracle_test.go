package assembly

// Randomized oracle test: generate random templates and random object
// graphs (optional components, shared sub-objects, predicates), then
// check that the assembly operator — under every scheduler, several
// window sizes, and with sharing statistics on and off — produces
// exactly what a trivial recursive reference assembler produces.

import (
	"fmt"
	"math/rand"
	"testing"

	"revelation/internal/buffer"
	"revelation/internal/disk"
	"revelation/internal/expr"
	"revelation/internal/heap"
	"revelation/internal/object"
	"revelation/internal/volcano"
)

// oracleWorld is one randomly generated database + template.
type oracleWorld struct {
	store *object.Store
	tmpl  *Template
	roots []object.OID
	objs  map[object.OID]*object.Object
}

// genWorld builds a random world from rng.
func genWorld(t *testing.T, rng *rand.Rand) *oracleWorld {
	t.Helper()
	d := disk.New(0)
	pool := buffer.New(d, 4096, buffer.LRU)
	f, err := heap.Create(pool, 512)
	if err != nil {
		t.Fatal(err)
	}
	cat := object.NewCatalog()
	nRefs := 2 + rng.Intn(3) // 2..4 reference fields per object
	cls := cat.MustDefine(&object.Class{Name: "C", NumInts: 2, NumRefs: nRefs})
	store := object.NewStore(f, object.NewMapLocator(), cat)

	// Random template: depth 2..4, fanout up to nRefs.
	var build func(depth int) *Template
	build = func(depth int) *Template {
		n := &Template{
			Name:     fmt.Sprintf("n%d", rng.Int31()),
			Class:    cls.ID,
			RefField: -1,
		}
		if depth <= 1 {
			return n
		}
		fields := rng.Perm(nRefs)
		kids := 1 + rng.Intn(nRefs)
		for i := 0; i < kids; i++ {
			c := build(depth - 1 - rng.Intn(2))
			c.RefField = fields[i]
			c.Required = rng.Intn(3) > 0 // mostly required
			if rng.Intn(4) == 0 {
				c.Shared = true
				c.SharingDegree = 0.25
			}
			if rng.Intn(5) == 0 {
				// Predicate passing ~70% of objects (ints[0] uniform 0..9).
				c.Pred = expr.IntCmp{Field: 0, Op: expr.LT, Value: 7, Sel: 0.7}
			}
			n.Children = append(n.Children, c)
		}
		return n
	}
	tmpl := build(2 + rng.Intn(3))

	// Random population: per root, instantiate the template; shared
	// nodes draw from a small pool per template node.
	objs := map[object.OID]*object.Object{}
	next := object.OID(1)
	newObj := func() *object.Object {
		o := &object.Object{
			OID:   next,
			Class: cls.ID,
			Ints:  []int32{int32(rng.Intn(10)), int32(rng.Intn(1000))},
			Refs:  make([]object.OID, nRefs),
		}
		next++
		objs[o.OID] = o
		return o
	}
	pools := map[*Template][]object.OID{}
	var instantiate func(node *Template) object.OID
	instantiate = func(node *Template) object.OID {
		if node.Shared {
			pool := pools[node]
			if len(pool) > 0 && rng.Intn(2) == 0 {
				return pool[rng.Intn(len(pool))]
			}
		}
		o := newObj()
		for _, c := range node.Children {
			if !c.Required && rng.Intn(4) == 0 {
				continue // optional component absent
			}
			o.Refs[c.RefField] = instantiate(c)
		}
		if node.Shared {
			pools[node] = append(pools[node], o.OID)
		}
		return o.OID
	}
	nRoots := 5 + rng.Intn(25)
	var roots []object.OID
	for i := 0; i < nRoots; i++ {
		roots = append(roots, instantiate(tmpl))
	}
	// Store in random order.
	var all []*object.Object
	for _, o := range objs {
		all = append(all, o)
	}
	// map iteration is random but not seeded; sort by OID then shuffle
	// with rng for reproducibility.
	for i := 1; i < len(all); i++ {
		for j := i; j > 0 && all[j-1].OID > all[j].OID; j-- {
			all[j-1], all[j] = all[j], all[j-1]
		}
	}
	rng.Shuffle(len(all), func(a, b int) { all[a], all[b] = all[b], all[a] })
	for _, o := range all {
		if _, err := store.Put(o); err != nil {
			t.Fatal(err)
		}
	}
	return &oracleWorld{store: store, tmpl: tmpl, roots: roots, objs: objs}
}

// oracleAssemble is the trivial reference implementation: recursive
// descent over references. It returns the rendered structure, or ""
// when a predicate or required-nil aborts the complex object.
func (w *oracleWorld) oracleAssemble(oid object.OID, node *Template) (string, bool) {
	o := w.objs[oid]
	if node.Pred != nil && !node.Pred.Eval(o) {
		return "", false
	}
	out := fmt.Sprintf("%d(", uint64(oid))
	for _, c := range node.Children {
		ref := o.Refs[c.RefField]
		if ref.IsNil() {
			if c.Required {
				return "", false
			}
			out += "-,"
			continue
		}
		sub, ok := w.oracleAssemble(ref, c)
		if !ok {
			return "", false
		}
		out += sub + ","
	}
	return out + ")", true
}

// render prints an Instance in the oracle's format.
func render(in *Instance) string {
	out := fmt.Sprintf("%d(", uint64(in.OID()))
	for _, c := range in.Children {
		if c == nil {
			out += "-,"
			continue
		}
		out += render(c) + ","
	}
	return out + ")"
}

func TestAssemblyMatchesOracleRandomized(t *testing.T) {
	const trials = 30
	for trial := 0; trial < trials; trial++ {
		rng := rand.New(rand.NewSource(int64(1000 + trial)))
		w := genWorld(t, rng)

		// Oracle expectations.
		want := map[object.OID]string{}
		for _, root := range w.roots {
			if s, ok := w.oracleAssemble(root, w.tmpl); ok {
				// Several roots can coincide when the root itself is
				// shared-free but generation repeated; last wins (all
				// renders identical for the same OID).
				want[root] = s
			}
		}

		for _, kind := range []SchedulerKind{DepthFirst, BreadthFirst, Elevator} {
			for _, window := range []int{1, 4, 64} {
				for _, sharingStats := range []bool{false, true} {
					opts := Options{Window: window, Scheduler: kind, UseSharingStats: sharingStats}
					op := New(oidSource(w.roots), w.store, w.tmpl, opts)
					items, err := volcano.Drain(op)
					if err != nil {
						t.Fatalf("trial %d %v/w%d/stats=%v: %v", trial, kind, window, sharingStats, err)
					}
					got := map[object.OID]string{}
					for _, it := range items {
						inst := it.(*Instance)
						got[inst.OID()] = render(inst)
					}
					if len(got) != len(want) {
						t.Fatalf("trial %d %v/w%d/stats=%v: %d complex objects, oracle %d",
							trial, kind, window, sharingStats, len(got), len(want))
					}
					for oid, w0 := range want {
						if got[oid] != w0 {
							t.Fatalf("trial %d %v/w%d/stats=%v: object %v\n got %s\nwant %s",
								trial, kind, window, sharingStats, oid, got[oid], w0)
						}
					}
				}
			}
		}
	}
}
