package assembly

import (
	"fmt"
	"math/rand"
	"testing"

	"revelation/internal/disk"
	"revelation/internal/heap"
	"revelation/internal/object"
	"revelation/internal/volcano"
)

// TestPageBatchMatchesOracle re-runs the randomized oracle with page
// batching on: the optimization must never change what is assembled.
func TestPageBatchMatchesOracle(t *testing.T) {
	for trial := 0; trial < 12; trial++ {
		rng := rand.New(rand.NewSource(int64(5000 + trial)))
		w := genWorld(t, rng)
		want := map[string]bool{}
		for _, root := range w.roots {
			if s, ok := w.oracleAssemble(root, w.tmpl); ok {
				want[fmt.Sprintf("%d:%s", uint64(root), s)] = true
			}
		}
		for _, kind := range []SchedulerKind{DepthFirst, Elevator} {
			op := New(oidSource(w.roots), w.store, w.tmpl,
				Options{Window: 16, Scheduler: kind, PageBatch: true})
			items, err := volcano.Drain(op)
			if err != nil {
				t.Fatalf("trial %d %v: %v", trial, kind, err)
			}
			got := map[string]bool{}
			for _, it := range items {
				inst := it.(*Instance)
				got[fmt.Sprintf("%d:%s", uint64(inst.OID()), render(inst))] = true
			}
			if len(got) != len(want) {
				t.Fatalf("trial %d %v: %d objects, oracle %d", trial, kind, len(got), len(want))
			}
			for k := range want {
				if !got[k] {
					t.Fatalf("trial %d %v: missing %s", trial, kind, k)
				}
			}
		}
	}
}

// TestPageBatchSavesBufferRequests: under intra-object clustering,
// components of one complex object share pages, so batching collapses
// their buffer requests ("even buffer hits can be expensive").
func TestPageBatchSavesBufferRequests(t *testing.T) {
	s, tmpl, roots := buildChainStore(t, 120)
	run := func(batch bool) Stats {
		if err := s.File.Pool().EvictAll(); err != nil {
			t.Fatal(err)
		}
		op := New(oidSource(roots), s, tmpl, Options{
			Window: 20, Scheduler: Elevator, PageBatch: batch,
		})
		out, err := volcano.Drain(op)
		if err != nil {
			t.Fatal(err)
		}
		if len(out) != 120 {
			t.Fatalf("assembled %d", len(out))
		}
		for _, it := range out {
			checkAssembled(t, s, it.(*Instance))
		}
		return op.Stats()
	}
	plain := run(false)
	batched := run(true)
	if plain.Fetched != batched.Fetched {
		t.Errorf("object fetches changed: %d vs %d", plain.Fetched, batched.Fetched)
	}
	// buildChainStore packs sequential objects 9 to a page, so most
	// refs of the window share pages with other pending refs.
	if batched.PageRequests >= plain.PageRequests {
		t.Errorf("page requests not reduced: %d vs %d", batched.PageRequests, plain.PageRequests)
	}
	if batched.PageRequests > plain.PageRequests/2 {
		t.Errorf("expected >=2x request reduction: %d vs %d", batched.PageRequests, plain.PageRequests)
	}
}

// TestTakeOnPageUnits exercises the scheduler extraction directly.
func TestTakeOnPageUnits(t *testing.T) {
	for _, kind := range []SchedulerKind{DepthFirst, BreadthFirst, Elevator} {
		s := NewScheduler(kind)
		item := &workItem{}
		mk := func(oid, pg int) *Ref {
			return &Ref{OID: mkOID(oid), RID: mkRID(pg), Item: item, Node: &Template{Name: "x"}}
		}
		s.Add(mk(1, 5), mk(2, 9), mk(3, 5), mk(4, 7), mk(5, 5))
		got := s.TakeOnPage(5)
		if len(got) != 3 {
			t.Errorf("%v: TakeOnPage(5) = %d refs, want 3", kind, len(got))
		}
		if s.Len() != 2 {
			t.Errorf("%v: Len after take = %d, want 2", kind, s.Len())
		}
		if extra := s.TakeOnPage(5); len(extra) != 0 {
			t.Errorf("%v: second take returned %d refs", kind, len(extra))
		}
		// Remaining refs still served.
		served := 0
		for r := s.Next(0); r != nil; r = s.Next(0) {
			if r.Page() == 5 {
				t.Errorf("%v: page-5 ref leaked into Next", kind)
			}
			served++
		}
		if served != 2 {
			t.Errorf("%v: served %d remainder refs", kind, served)
		}
	}
}

// TestDepthFirstTakeOnPageStaysObjectAtATime: depth-first batching
// must draw only from the current complex object.
func TestDepthFirstTakeOnPageStaysObjectAtATime(t *testing.T) {
	s := NewScheduler(DepthFirst)
	a, b := &workItem{}, &workItem{}
	s.Add(&Ref{OID: 1, RID: mkRID(5), Item: a, Node: &Template{Name: "x"}})
	s.Add(&Ref{OID: 2, RID: mkRID(5), Item: b, Node: &Template{Name: "x"}})
	got := s.TakeOnPage(5)
	if len(got) != 1 || got[0].Item != a {
		t.Fatalf("depth-first batching crossed complex objects: %d refs", len(got))
	}
}

// helpers shared by the page-batch tests.
func mkOID(i int) object.OID { return object.OID(i) }
func mkRID(pg int) heap.RID  { return heap.RID{Page: disk.PageID(pg)} }
