package assembly

import (
	"fmt"

	"revelation/internal/disk"
)

// BatchScheduler is implemented by schedulers that can hand out one
// reference per independent device lane in a single step, so the
// operator can fetch them concurrently — one in-flight read per lane —
// while preserving each lane's own service order.
type BatchScheduler interface {
	Scheduler
	// Lanes reports how many independent lanes the scheduler sweeps.
	Lanes() int
	// LaneOf routes a page to its lane index.
	LaneOf(p disk.PageID) int
	// NextBatch removes and returns up to one live reference per
	// non-empty lane, each chosen by that lane's own policy relative to
	// its own last serviced page. Lanes appear in ascending index order
	// so the batch composition is deterministic. An empty batch means no
	// references remain.
	NextBatch(head disk.PageID) []*Ref
}

// ShardElevator is the fleet version of MultiElevator: one SCAN
// elevator per shard, with lanes defined by the router's rendezvous
// assignment instead of a stripe. Each shard is an independent device
// with its own head, so each lane sweeps relative to its *own* last
// serviced page; NextBatch exposes one reference per shard so the
// operator can keep every shard's pipe full concurrently while the
// per-shard order stays a pure SCAN.
type ShardElevator struct {
	shardOf  func(disk.PageID) int
	lanes    []*elevator
	lastPage []disk.PageID
	rr       int
}

// NewShardElevator builds a scheduler for n shards; shardOf routes a
// global page to its shard index (use shard.Router.ShardOf).
func NewShardElevator(n int, shardOf func(disk.PageID) int) *ShardElevator {
	if n < 1 {
		n = 1
	}
	s := &ShardElevator{
		shardOf:  shardOf,
		lanes:    make([]*elevator, n),
		lastPage: make([]disk.PageID, n),
	}
	for i := range s.lanes {
		s.lanes[i] = &elevator{dirUp: true}
	}
	return s
}

// Name implements Scheduler.
func (s *ShardElevator) Name() string {
	return fmt.Sprintf("shard-elevator(%d)", len(s.lanes))
}

// Lanes implements BatchScheduler.
func (s *ShardElevator) Lanes() int { return len(s.lanes) }

// LaneOf implements BatchScheduler.
func (s *ShardElevator) LaneOf(p disk.PageID) int {
	return s.shardOf(p) % len(s.lanes)
}

// Add implements Scheduler.
func (s *ShardElevator) Add(refs ...*Ref) {
	for _, r := range refs {
		s.lanes[s.LaneOf(r.Page())].Add(r)
	}
}

// Next implements Scheduler: among shards with pending references,
// serve the one whose next service is cheapest for its own arm
// (shortest positioning first across shards, SCAN within a shard).
// Ties rotate round-robin so no shard starves. This sequential path
// serves schedulers-as-usual callers; concurrent callers use
// NextBatch.
func (s *ShardElevator) Next(disk.PageID) *Ref {
	n := len(s.lanes)
	best, bestDist := -1, int64(1)<<62
	for i := 0; i < n; i++ {
		lane := (s.rr + i) % n
		d, ok := s.lanes[lane].peekDist(s.lastPage[lane])
		if !ok {
			continue
		}
		if d < bestDist {
			best, bestDist = lane, d
		}
	}
	if best < 0 {
		return nil
	}
	r := s.lanes[best].Next(s.lastPage[best])
	if r == nil {
		return nil
	}
	s.lastPage[best] = r.Page()
	s.rr = (best + 1) % n
	return r
}

// NextBatch implements BatchScheduler: one reference per non-empty
// lane, in lane order, each advancing its own head.
func (s *ShardElevator) NextBatch(disk.PageID) []*Ref {
	var batch []*Ref
	for lane, el := range s.lanes {
		r := el.Next(s.lastPage[lane])
		if r == nil {
			continue
		}
		s.lastPage[lane] = r.Page()
		batch = append(batch, r)
	}
	return batch
}

// TakeOnPage implements Scheduler.
func (s *ShardElevator) TakeOnPage(p disk.PageID) []*Ref {
	return s.lanes[s.LaneOf(p)].TakeOnPage(p)
}

// Len implements Scheduler.
func (s *ShardElevator) Len() int {
	total := 0
	for _, l := range s.lanes {
		total += l.Len()
	}
	return total
}

var _ BatchScheduler = (*ShardElevator)(nil)
