package assembly_test

// Lifecycle-abort tests: a query cancelled mid-assembly — including
// with quarantined complex objects already on the books — must leave
// the buffer pool with zero pins and zero reserved frames, balance the
// trace ledger (every admit matched by an emit, abort, or quarantine),
// and surface the context error from Next rather than hanging.

import (
	"context"
	"errors"
	"testing"
	"time"

	"revelation/internal/assembly"
	"revelation/internal/disk"
	"revelation/internal/gen"
	"revelation/internal/stats"
	"revelation/internal/trace"
	"revelation/internal/volcano"
)

// drainUntil pulls from the operator until stop reports true (based on
// items seen and current stats) or the operator ends, returning the
// terminal error (nil while stopped early).
func drainUntil(t *testing.T, op *assembly.Operator, stop func(seen int) bool) (int, error) {
	t.Helper()
	seen := 0
	for !stop(seen) {
		_, err := op.Next()
		if errors.Is(err, volcano.Done) {
			return seen, volcano.Done
		}
		if err != nil {
			return seen, err
		}
		seen++
	}
	return seen, nil
}

// TestCancelMidAssemblyWithQuarantine is the satellite abort-path test:
// permanent faults quarantine some complex objects, then the query is
// cancelled with live window slots outstanding. The abort path must
// unpin everything, release the reservation, and emit abort events
// carrying the cancellation reason so the trace ledger still balances.
func TestCancelMidAssemblyWithQuarantine(t *testing.T) {
	w := buildFaultWorld(t, 120, 77)
	w.dev.SetConfig(disk.FaultConfig{Seed: 99, PermanentRate: 0.03})
	if err := w.db.Pool.EvictAll(); err != nil {
		t.Fatal(err)
	}

	col := trace.NewCollector()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	op := assembly.New(rootsSource(w.db.Roots), w.db.Store, w.db.Template, assembly.Options{
		Window:         8,
		Scheduler:      assembly.Elevator,
		FaultPolicy:    assembly.SkipObject,
		PinWindowPages: true,
		ReserveFrames:  24,
		Tracer:         trace.New(col),
	})
	volcano.Bind(ctx, op)
	if err := op.Open(); err != nil {
		t.Fatal(err)
	}
	if got := w.db.Pool.ReservedFrames(); got != 24 {
		t.Fatalf("reserved %d frames after Open, want 24", got)
	}

	// Assemble until at least one quarantine happened and some objects
	// emitted, so the cancel lands on a window with real history.
	seen, err := drainUntil(t, op, func(seen int) bool {
		st := op.Stats()
		return seen >= 10 && st.Skipped >= 1
	})
	if err != nil {
		t.Fatalf("assembly before cancel (%d emitted, stats %+v): %v", seen, op.Stats(), err)
	}
	if op.Stats().Skipped < 1 {
		t.Fatal("no quarantine before cancel — fault injection is vacuous")
	}

	cancel()
	if _, err := op.Next(); !errors.Is(err, context.Canceled) {
		t.Fatalf("Next after cancel: %v, want context.Canceled", err)
	}
	// The error is terminal and stable: the books were settled once.
	if _, err := op.Next(); !errors.Is(err, context.Canceled) {
		t.Fatalf("second Next after cancel: %v, want context.Canceled", err)
	}

	st := op.Stats()
	if err := op.Close(); err != nil {
		t.Fatalf("Close after cancel: %v", err)
	}

	// Everything returns to zero: pins, reservations, and the window.
	if got := w.db.Pool.PinnedFrames(); got != 0 {
		t.Errorf("%d frames still pinned after cancel+Close", got)
	}
	if got := w.db.Pool.ReservedFrames(); got != 0 {
		t.Errorf("%d frames still reserved after cancel+Close", got)
	}

	// The trace ledger balances: every admitted complex object left the
	// window exactly once (emit, abort, or quarantine), and the
	// lifecycle aborts carry the cancellation reason.
	rs := trace.ReplayEvents(col.Events())
	if rs.Admitted != rs.Assembled+rs.Aborted+rs.Quarantined {
		t.Errorf("ledger unbalanced: %d admitted != %d emitted + %d aborted + %d quarantined",
			rs.Admitted, rs.Assembled, rs.Aborted, rs.Quarantined)
	}
	canceledAborts := 0
	for _, e := range col.Events() {
		if e.Layer == trace.LayerAssembly && e.Kind == trace.KindAbort && e.Note == trace.ReasonCanceled {
			canceledAborts++
		}
	}
	if canceledAborts == 0 {
		t.Error("no abort events carry the canceled reason")
	}
	if st.Aborted < canceledAborts {
		t.Errorf("stats aborted %d < %d canceled abort events", st.Aborted, canceledAborts)
	}

	// The replayed stats agree with the operator's own counters.
	if rs.Assembled != st.Assembled || rs.Quarantined != st.Skipped || rs.Aborted != st.Aborted {
		t.Errorf("replay %+v disagrees with stats %+v", rs, st)
	}

	// And the fault report built from the same run is internally
	// consistent: nothing in flight remains anywhere in the stack.
	rep := stats.CollectFaults(w.dev, w.db.Pool, nil, st)
	if rep.Skipped != st.Skipped || rep.Assembled != st.Assembled {
		t.Errorf("fault report %+v disagrees with stats %+v", rep, st)
	}
}

// TestDeadlineMidAssembly drives the deadline flavor of the same path:
// the operator observes an expired deadline at the next scheduling step
// and aborts the window with reason "deadline". The deadline is bound
// mid-run (after the window filled) so the expiry deterministically
// lands on live slots.
func TestDeadlineMidAssembly(t *testing.T) {
	db := buildDB(t, gen.Config{NumComplexObjects: 100, Clustering: gen.Unclustered, Seed: 7})
	col := trace.NewCollector()
	op := assembly.New(rootsSource(db.Roots), db.Store, db.Template, assembly.Options{
		Window:         6,
		Scheduler:      assembly.Elevator,
		PinWindowPages: true,
		ReserveFrames:  12,
		Tracer:         trace.New(col),
	})
	if err := op.Open(); err != nil {
		t.Fatal(err)
	}
	if _, err := drainUntil(t, op, func(seen int) bool { return seen >= 5 }); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	volcano.Bind(ctx, op)
	if _, err := op.Next(); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Next past deadline: %v, want context.DeadlineExceeded", err)
	}
	st := op.Stats()
	if err := op.Close(); err != nil {
		t.Fatal(err)
	}
	if got := db.Pool.PinnedFrames(); got != 0 {
		t.Errorf("%d frames still pinned after deadline abort", got)
	}
	if got := db.Pool.ReservedFrames(); got != 0 {
		t.Errorf("%d frames still reserved after deadline abort", got)
	}
	deadlineAborts := 0
	for _, e := range col.Events() {
		if e.Layer == trace.LayerAssembly && e.Kind == trace.KindAbort && e.Note == trace.ReasonDeadline {
			deadlineAborts++
		}
	}
	if deadlineAborts == 0 {
		t.Error("no abort events carry the deadline reason")
	}
	if st.Aborted != deadlineAborts {
		t.Errorf("stats aborted %d != %d deadline abort events", st.Aborted, deadlineAborts)
	}
}
