package assembly

import (
	"revelation/internal/object"
	"revelation/internal/volcano"
)

// NewParallel runs `degree` assembly operators over disjoint
// partitions of the root references, behind Volcano's exchange
// operator — the Section 7 parallelization: "parallelism is
// encapsulated in Volcano, it can be used for all existing operators
// without changing their code". Each clone keeps its own window,
// scheduler, and shared table; the storage layer (buffer pool and
// device) is shared and internally synchronized, so clones contend for
// the head exactly as the paper warns ("each assumes sole control of
// the device"). Pair it with a disk.Server front end to restore
// elevator behaviour across clones.
//
// Output order across partitions is nondeterministic.
func NewParallel(roots []object.OID, store *object.Store, tmpl *Template, opts Options, degree int) volcano.Iterator {
	if degree < 1 {
		degree = 1
	}
	items := make([]volcano.Item, len(roots))
	for i, r := range roots {
		items[i] = r
	}
	parts := volcano.PartitionSlice(items, degree)
	return volcano.NewExchange(degree, func(part int) (volcano.Iterator, error) {
		return New(volcano.NewSlice(parts[part]), store, tmpl, opts), nil
	})
}
