package assembly

import "revelation/internal/metrics"

// opCells mirrors the operator's per-run Stats into registry cells so a
// live scrape sees assembly progress. The per-run stats struct stays
// the source of truth for exactness (parallel clones each keep their
// own); the cells are get-or-create per policy label, so counters
// accumulate monotonically across runs and clones while Snapshot deltas
// recover any single run's activity.
type opCells struct {
	assembled       *metrics.Counter
	aborted         *metrics.Counter
	resolved        *metrics.Counter
	fetched         *metrics.Counter
	pageRequests    *metrics.Counter
	sharedLinks     *metrics.Counter
	predicateFails  *metrics.Counter
	nilRefs         *metrics.Counter
	skipped         *metrics.Counter
	faultRetries    *metrics.Counter
	windowStalls    *metrics.Counter
	lifecycleAborts *metrics.Counter

	occupancy   *metrics.Gauge // live complex objects in the window
	refPool     *metrics.Gauge // unresolved references queued
	windowPages *metrics.Gauge // distinct pages backing the window
}

// newOpCells builds the operator's cells against r, labeled by
// scheduling policy. A nil registry yields detached cells (metrics off),
// so instrumentation sites never branch.
func newOpCells(r *metrics.Registry, policy string) *opCells {
	return &opCells{
		assembled:       r.Counter("asm_assembly_assembled_total", "Complex objects emitted.", "policy", policy),
		aborted:         r.Counter("asm_assembly_aborted_total", "Complex objects abandoned by a predicate.", "policy", policy),
		resolved:        r.Counter("asm_assembly_resolved_total", "References resolved (fetches plus shared links).", "policy", policy),
		fetched:         r.Counter("asm_assembly_fetched_total", "Objects materialized from storage.", "policy", policy),
		pageRequests:    r.Counter("asm_assembly_page_requests_total", "Buffer requests issued for fetches.", "policy", policy),
		sharedLinks:     r.Counter("asm_assembly_shared_links_total", "References satisfied from assembled instances.", "policy", policy),
		predicateFails:  r.Counter("asm_assembly_predicate_fails_total", "Predicate evaluations that rejected an object.", "policy", policy),
		nilRefs:         r.Counter("asm_assembly_nil_refs_total", "References that were the nil OID.", "policy", policy),
		skipped:         r.Counter("asm_assembly_skipped_total", "Complex objects quarantined by I/O faults.", "policy", policy),
		faultRetries:    r.Counter("asm_assembly_fault_retries_total", "Reference fetches re-queued after transient faults.", "policy", policy),
		windowStalls:    r.Counter("asm_assembly_window_stalls_total", "Admission pauses forced by buffer exhaustion.", "policy", policy),
		lifecycleAborts: r.Counter("asm_assembly_lifecycle_aborts_total", "Query lifecycle aborts (deadline, cancellation, or shed).", "policy", policy),
		occupancy:       r.Gauge("asm_assembly_window_occupancy", "Complex objects currently in the window.", "policy", policy),
		refPool:         r.Gauge("asm_assembly_ref_pool", "Unresolved references currently queued.", "policy", policy),
		windowPages:     r.Gauge("asm_assembly_window_pages", "Distinct pages backing the window.", "policy", policy),
	}
}
