package assembly

import (
	"math"

	"revelation/internal/buffer"
	"revelation/internal/disk"
	"revelation/internal/object"
)

// sharedTable tracks assembled shared components across the window
// (Section 5): a component marked Shared in the template is assembled
// once, kept alive by reference counting, and linked — not refetched —
// when another complex object reaches it. The template's sharing
// degree predicts how many references each shared object will serve;
// while references remain expected, the object's page is hinted sticky
// in the buffer so replacement passes it over ("prevent shared objects
// from being flushed out of the buffer", Section 6.4).
type sharedTable struct {
	pool    *buffer.Pool
	entries map[object.OID]*sharedEntry
}

type sharedEntry struct {
	inst *Instance
	// expected is the estimate of references still to come, derived
	// from the sharing degree; the entry (and its sticky hint) is
	// dropped when it reaches zero.
	expected int
}

func newSharedTable(pool *buffer.Pool) *sharedTable {
	return &sharedTable{pool: pool, entries: map[object.OID]*sharedEntry{}}
}

// expectedReferences converts a sharing degree into the expected
// number of parents per shared object: degree = shared/sharing, so
// each shared object serves about 1/degree references.
func expectedReferences(degree float64) int {
	if degree <= 0 || degree > 1 {
		return 1
	}
	return int(math.Round(1 / degree))
}

// lookup returns a previously assembled shared instance, consuming one
// expected reference. The boolean reports a hit.
func (st *sharedTable) lookup(oid object.OID) (*Instance, bool) {
	e, ok := st.entries[oid]
	if !ok {
		return nil, false
	}
	e.expected--
	if e.expected <= 0 {
		st.release(oid, e)
	}
	return e.inst, true
}

// register records a freshly assembled shared instance.
func (st *sharedTable) register(inst *Instance, node *Template) {
	exp := expectedReferences(node.SharingDegree) - 1 // one reference just consumed
	if exp <= 0 {
		return
	}
	st.entries[inst.OID()] = &sharedEntry{inst: inst, expected: exp}
	st.pool.SetSticky(instPage(inst), true)
}

// release drops an entry and clears its buffer hint.
func (st *sharedTable) release(oid object.OID, e *sharedEntry) {
	delete(st.entries, oid)
	st.pool.SetSticky(instPage(e.inst), false)
}

// drop removes any entry for the OID (used on abort cleanup paths).
func (st *sharedTable) drop(oid object.OID) {
	if e, ok := st.entries[oid]; ok {
		st.release(oid, e)
	}
}

// len reports live entries.
func (st *sharedTable) len() int { return len(st.entries) }

// instPage returns the page backing an instance, recorded at fetch
// time.
func instPage(in *Instance) disk.PageID { return in.page }
