package assembly_test

import (
	"testing"

	"revelation/internal/assembly"
	"revelation/internal/disk"
	"revelation/internal/gen"
	"revelation/internal/volcano"
)

// buildStriped generates an unclustered database striped over n
// simulated devices.
func buildStriped(t testing.TB, objects, n int) (*gen.Database, *disk.Striped) {
	t.Helper()
	var devs []disk.Device
	for i := 0; i < n; i++ {
		devs = append(devs, disk.New(0))
	}
	striped, err := disk.NewStriped(devs, 8)
	if err != nil {
		t.Fatal(err)
	}
	db, err := gen.Build(gen.Config{
		NumComplexObjects: objects,
		Clustering:        gen.Unclustered,
		Seed:              41,
		Device:            striped,
	})
	if err != nil {
		t.Fatal(err)
	}
	return db, striped
}

func TestAssemblyOnStripedDevice(t *testing.T) {
	db, striped := buildStriped(t, 300, 4)
	op := assembly.New(rootsSource(db.Roots), db.Store, db.Template,
		assembly.Options{Window: 25, Scheduler: assembly.Elevator})
	out := drainAssembly(t, op)
	if len(out) != 300 {
		t.Fatalf("assembled %d", len(out))
	}
	for _, inst := range out {
		verifyTree(t, db, inst)
	}
	// All four arms carried traffic.
	for i, d := range striped.Devices() {
		if d.Stats().Reads == 0 {
			t.Errorf("device %d idle", i)
		}
	}
}

func TestMultiElevatorBeatsGlobalElevatorOnStripes(t *testing.T) {
	db, striped := buildStriped(t, 600, 4)

	run := func(sched assembly.Scheduler, kind assembly.SchedulerKind) int64 {
		if err := db.Pool.EvictAll(); err != nil {
			t.Fatal(err)
		}
		striped.ResetStats()
		striped.ResetHead()
		op := assembly.New(rootsSource(db.Roots), db.Store, db.Template, assembly.Options{
			Window:          50,
			Scheduler:       kind,
			CustomScheduler: sched,
		})
		out := drainAssembly(t, op)
		if len(out) != 600 {
			t.Fatalf("assembled %d", len(out))
		}
		for _, inst := range out {
			verifyTree(t, db, inst)
		}
		return striped.Stats().SeekReads
	}

	global := run(nil, assembly.Elevator)
	multi := run(assembly.NewMultiElevator(4, striped.DeviceOf), 0)
	naive := run(nil, assembly.DepthFirst)

	// A global SCAN is already monotone per arm in this model, so the
	// two elevator variants are near-equivalent on *total* seek (the
	// multi-elevator's contribution is per-arm request queues — the
	// Section 7 server-per-device shape). Both must stay close to each
	// other and far below object-at-a-time.
	if multi > global*13/10 {
		t.Errorf("multi-elevator total seek %d strays from global elevator %d", multi, global)
	}
	if multi*3 > naive {
		t.Errorf("multi-elevator %d not well below object-at-a-time %d", multi, naive)
	}
}

func TestMultiElevatorCorrectAcrossWindows(t *testing.T) {
	db, striped := buildStriped(t, 200, 3)
	for _, w := range []int{1, 10, 60} {
		if err := db.Pool.EvictAll(); err != nil {
			t.Fatal(err)
		}
		op := assembly.New(rootsSource(db.Roots), db.Store, db.Template, assembly.Options{
			Window:          w,
			CustomScheduler: assembly.NewMultiElevator(3, striped.DeviceOf),
		})
		items, err := volcano.Drain(op)
		if err != nil {
			t.Fatalf("w=%d: %v", w, err)
		}
		if len(items) != 200 {
			t.Fatalf("w=%d: assembled %d", w, len(items))
		}
	}
}

func TestMultiElevatorName(t *testing.T) {
	m := assembly.NewMultiElevator(4, func(disk.PageID) int { return 0 })
	if m.Name() != "multi-elevator(4)" {
		t.Errorf("Name = %q", m.Name())
	}
	if m.Len() != 0 {
		t.Errorf("Len = %d", m.Len())
	}
	if m.Next(0) != nil {
		t.Error("empty Next returned a ref")
	}
}
