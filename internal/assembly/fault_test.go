package assembly_test

// Chaos tests for fault-tolerant assembly: the operator runs over a
// disk.Faulty-wrapped device while transient and permanent faults are
// injected, and its output is verified against the fault-free oracle
// assembly of the same dataset.

import (
	"errors"
	"fmt"
	"testing"

	"revelation/internal/assembly"
	"revelation/internal/buffer"
	"revelation/internal/disk"
	"revelation/internal/gen"
	"revelation/internal/heap"
	"revelation/internal/object"
	"revelation/internal/volcano"
)

// faultWorld is a generated database over a Faulty device, plus the
// fault-free oracle: every object pre-read and every complex object's
// expected rendering captured before the injector is armed.
type faultWorld struct {
	db     *gen.Database
	dev    *disk.Faulty
	objs   map[object.OID]*object.Object
	oracle map[object.OID]string // root OID -> rendered assembly
}

func buildFaultWorld(t *testing.T, nObjects int, seed int64) *faultWorld {
	t.Helper()
	fd := disk.NewFaulty(disk.New(0), disk.FaultConfig{})
	db := buildDB(t, gen.Config{
		NumComplexObjects: nObjects,
		Clustering:        gen.Unclustered,
		Seed:              seed,
		Device:            fd,
	})
	w := &faultWorld{
		db:     db,
		dev:    fd,
		objs:   map[object.OID]*object.Object{},
		oracle: map[object.OID]string{},
	}
	// Capture the oracle while the device is still healthy.
	var load func(oid object.OID, node *assembly.Template)
	load = func(oid object.OID, node *assembly.Template) {
		o, err := db.Store.Get(oid)
		if err != nil {
			t.Fatalf("oracle load %v: %v", oid, err)
		}
		w.objs[oid] = o
		for _, c := range node.Children {
			if ref := o.Refs[c.RefField]; !ref.IsNil() {
				load(ref, c)
			}
		}
	}
	for _, root := range db.Roots {
		load(root, db.Template)
		w.oracle[root] = w.renderOracle(root, db.Template)
	}
	// Go cold so the fault run reads from the device again.
	if err := db.Pool.EvictAll(); err != nil {
		t.Fatal(err)
	}
	return w
}

// renderOracle renders the reference assembly from the pre-read
// object graph (no I/O).
func (w *faultWorld) renderOracle(oid object.OID, node *assembly.Template) string {
	o := w.objs[oid]
	out := fmt.Sprintf("%d(", uint64(oid))
	for _, c := range node.Children {
		ref := o.Refs[c.RefField]
		if ref.IsNil() {
			out += "-,"
			continue
		}
		out += w.renderOracle(ref, c) + ","
	}
	return out + ")"
}

// renderInstance renders an assembled instance in the oracle's format.
func renderInstance(in *assembly.Instance) string {
	out := fmt.Sprintf("%d(", uint64(in.OID()))
	for _, c := range in.Children {
		if c == nil {
			out += "-,"
			continue
		}
		out += renderInstance(c) + ","
	}
	return out + ")"
}

// poisonedRoots computes which complex objects touch a permanently
// faulty page — the set the operator is allowed to lose.
func (w *faultWorld) poisonedRoots(t *testing.T) map[object.OID]bool {
	t.Helper()
	poisoned := map[object.OID]bool{}
	var visit func(oid object.OID, node *assembly.Template) bool
	visit = func(oid object.OID, node *assembly.Template) bool {
		rid, ok, err := w.db.Store.WhereIs(oid)
		if err != nil || !ok {
			t.Fatalf("locate %v: ok=%v err=%v", oid, ok, err)
		}
		bad := w.dev.PermanentlyFaulty(rid.Page)
		o := w.objs[oid]
		for _, c := range node.Children {
			if ref := o.Refs[c.RefField]; !ref.IsNil() {
				bad = visit(ref, c) || bad
			}
		}
		return bad
	}
	for _, root := range w.db.Roots {
		if visit(root, w.db.Template) {
			poisoned[root] = true
		}
	}
	return poisoned
}

// runFaulted drains one assembly pass over the (armed) faulty world
// and returns the rendered results by root OID plus operator stats.
func (w *faultWorld) runFaulted(t *testing.T, opts assembly.Options) (map[object.OID]string, assembly.Stats) {
	t.Helper()
	if err := w.db.Pool.EvictAll(); err != nil {
		t.Fatal(err)
	}
	op := assembly.New(rootsSource(w.db.Roots), w.db.Store, w.db.Template, opts)
	items, err := volcano.Drain(op)
	if err != nil {
		t.Fatalf("faulted assembly (%v): %v", opts.FaultPolicy, err)
	}
	got := map[object.OID]string{}
	for _, it := range items {
		inst := it.(*assembly.Instance)
		got[inst.OID()] = renderInstance(inst)
	}
	return got, op.Stats()
}

// TestChaosTransientRetryZeroLoss is the acceptance chaos test: a 5%
// transient fault rate, swept across schedulers and window sizes, must
// lose zero complex objects under the Retry policy and match the
// fault-free oracle bit for bit.
func TestChaosTransientRetryZeroLoss(t *testing.T) {
	w := buildFaultWorld(t, 120, 77)
	cfg := disk.FaultConfig{Seed: 1234, TransientRate: 0.05, TransientFailures: 2}
	totalRetries := 0
	for _, kind := range []assembly.SchedulerKind{assembly.DepthFirst, assembly.BreadthFirst, assembly.Elevator} {
		for _, window := range []int{1, 16} {
			// Re-arm so every configuration faces fresh fault budgets.
			w.dev.SetConfig(cfg)
			got, st := w.runFaulted(t, assembly.Options{
				Window:      window,
				Scheduler:   kind,
				FaultPolicy: assembly.RetryFaults,
			})
			if len(got) != len(w.oracle) {
				t.Fatalf("%v/w%d: assembled %d of %d complex objects (skipped %d)",
					kind, window, len(got), len(w.oracle), st.Skipped)
			}
			for root, want := range w.oracle {
				if got[root] != want {
					t.Fatalf("%v/w%d: root %v\n got %s\nwant %s", kind, window, root, got[root], want)
				}
			}
			if st.Skipped != 0 {
				t.Errorf("%v/w%d: skipped %d under Retry policy", kind, window, st.Skipped)
			}
			totalRetries += st.FaultRetries
			if fs := w.dev.FaultStats(); fs.Transient == 0 {
				t.Fatalf("%v/w%d: injector never fired — chaos test is vacuous", kind, window)
			}
		}
	}
	if totalRetries == 0 {
		t.Error("no operator-level fault retries across the whole sweep")
	}
}

// TestChaosTransientAbsorbedByPoolRetry keeps the operator on
// FailFast and lets the buffer pool's retry policy absorb the same 5%
// transient faults below the operator.
func TestChaosTransientAbsorbedByPoolRetry(t *testing.T) {
	w := buildFaultWorld(t, 80, 31)
	w.dev.SetConfig(disk.FaultConfig{Seed: 5, TransientRate: 0.05, TransientFailures: 2})
	w.db.Pool.SetRetry(disk.RetryPolicy{MaxAttempts: 4})
	defer w.db.Pool.SetRetry(disk.RetryPolicy{})
	got, st := w.runFaulted(t, assembly.Options{
		Window:    8,
		Scheduler: assembly.Elevator,
		// FailFast: the pool must make faults invisible up here.
	})
	if len(got) != len(w.oracle) || st.Skipped != 0 {
		t.Fatalf("assembled %d of %d, skipped %d", len(got), len(w.oracle), st.Skipped)
	}
	for root, want := range w.oracle {
		if got[root] != want {
			t.Fatalf("root %v diverged from oracle", root)
		}
	}
	if retries := w.db.Pool.Stats().Retries; retries == 0 {
		t.Error("pool retry policy never fired")
	}
}

// TestChaosPermanentSkipObject injects permanent page faults under the
// SkipObject policy: only complex objects whose references hit a
// poisoned page may be lost, everything else must match the oracle,
// and quarantined objects must leave no pins behind.
func TestChaosPermanentSkipObject(t *testing.T) {
	w := buildFaultWorld(t, 120, 78)
	w.dev.SetConfig(disk.FaultConfig{Seed: 99, PermanentRate: 0.02})
	poisoned := w.poisonedRoots(t)
	if len(poisoned) == 0 || len(poisoned) == len(w.oracle) {
		t.Fatalf("degenerate poison set: %d of %d (tune seed/rate)", len(poisoned), len(w.oracle))
	}
	for _, kind := range []assembly.SchedulerKind{assembly.DepthFirst, assembly.Elevator} {
		w.dev.SetConfig(disk.FaultConfig{Seed: 99, PermanentRate: 0.02})
		got, st := w.runFaulted(t, assembly.Options{
			Window:         12,
			Scheduler:      kind,
			FaultPolicy:    assembly.SkipObject,
			PinWindowPages: true,
		})
		for root, want := range w.oracle {
			switch {
			case poisoned[root]:
				if _, ok := got[root]; ok {
					t.Errorf("%v: poisoned root %v was assembled", kind, root)
				}
			default:
				if got[root] != want {
					t.Errorf("%v: healthy root %v\n got %s\nwant %s", kind, root, got[root], want)
				}
			}
		}
		if st.Skipped != len(poisoned) {
			t.Errorf("%v: Skipped = %d, want %d", kind, st.Skipped, len(poisoned))
		}
		if got, want := len(got), len(w.oracle)-len(poisoned); got != want {
			t.Errorf("%v: assembled %d, want %d", kind, got, want)
		}
		if n := w.db.Pool.PinnedFrames(); n != 0 {
			t.Errorf("%v: %d pinned frames after quarantined drain", kind, n)
		}
	}
}

// TestChaosMixedFaultsRetryPolicy mixes transient and permanent
// faults under the Retry policy: transients are retried into success,
// permanents quarantine exactly the poisoned objects.
func TestChaosMixedFaultsRetryPolicy(t *testing.T) {
	w := buildFaultWorld(t, 100, 79)
	cfg := disk.FaultConfig{Seed: 4242, TransientRate: 0.05, TransientFailures: 1, PermanentRate: 0.03}
	w.dev.SetConfig(cfg)
	poisoned := w.poisonedRoots(t)
	if len(poisoned) == 0 {
		t.Fatalf("no poisoned roots — permanent leg is vacuous (tune seed/rate)")
	}
	got, st := w.runFaulted(t, assembly.Options{
		Window:      10,
		Scheduler:   assembly.BreadthFirst,
		FaultPolicy: assembly.RetryFaults,
	})
	if want := len(w.oracle) - len(poisoned); len(got) != want {
		t.Fatalf("assembled %d, want %d (skipped %d)", len(got), want, st.Skipped)
	}
	for root, want := range w.oracle {
		if !poisoned[root] && got[root] != want {
			t.Errorf("healthy root %v diverged", root)
		}
	}
	if st.Skipped != len(poisoned) {
		t.Errorf("Skipped = %d, want %d", st.Skipped, len(poisoned))
	}
	if st.FaultRetries == 0 {
		t.Error("transient leg never retried")
	}
}

// TestChaosFailFastSurfacesFault pins the default policy: a permanent
// fault must abort the operator with a classified error.
func TestChaosFailFastSurfacesFault(t *testing.T) {
	w := buildFaultWorld(t, 60, 80)
	w.dev.SetConfig(disk.FaultConfig{Seed: 99, PermanentRate: 0.05})
	if len(w.poisonedRoots(t)) == 0 {
		t.Fatal("no poisoned roots — nothing to fail on")
	}
	if err := w.db.Pool.EvictAll(); err != nil {
		t.Fatal(err)
	}
	op := assembly.New(rootsSource(w.db.Roots), w.db.Store, w.db.Template, assembly.Options{
		Window:    8,
		Scheduler: assembly.Elevator,
	})
	_, err := volcano.Drain(op)
	if !errors.Is(err, disk.ErrPermanent) {
		t.Fatalf("fail-fast drain err = %v, want ErrPermanent", err)
	}
}

// TestWindowShrinksUnderBufferPressure drives the graceful-degradation
// path: a pool too small for the configured window (squeezed further
// by external pins) must shrink the effective window — stalling
// admission until pins drain — instead of failing with ErrNoFrames,
// and still assemble every complex object.
func TestWindowShrinksUnderBufferPressure(t *testing.T) {
	d := disk.New(0)
	pool := buffer.New(d, 14, buffer.LRU)
	f, err := heap.Create(pool, 18)
	if err != nil {
		t.Fatal(err)
	}
	cat := object.NewCatalog()
	cls := cat.MustDefine(&object.Class{Name: "N", NumInts: 1, NumRefs: 2})
	store := object.NewStore(f, object.NewMapLocator(), cat)

	// Six complex objects of three components each, every component on
	// its own page, so each in-flight object pins three distinct pages.
	const nRoots = 6
	var roots []object.OID
	next := object.OID(1)
	put := func(o *object.Object, pageIdx int) {
		if _, err := store.PutAt(o, pageIdx); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < nRoots; i++ {
		a, b, r := next, next+1, next+2
		next += 3
		put(&object.Object{OID: a, Class: cls.ID, Ints: []int32{0}, Refs: make([]object.OID, 2)}, 3*i+1)
		put(&object.Object{OID: b, Class: cls.ID, Ints: []int32{0}, Refs: make([]object.OID, 2)}, 3*i+2)
		put(&object.Object{OID: r, Class: cls.ID, Ints: []int32{0}, Refs: []object.OID{a, b}}, 3*i)
		roots = append(roots, r)
	}
	tmpl := &assembly.Template{
		Name: "root", Class: cls.ID, RefField: -1,
		Children: []*assembly.Template{
			{Name: "a", Class: cls.ID, RefField: 0, Required: true},
			{Name: "b", Class: cls.ID, RefField: 1, Required: true},
		},
	}
	if err := pool.EvictAll(); err != nil {
		t.Fatal(err)
	}

	// Squeeze the pool: eleven frames pinned by pages outside the heap
	// extent (a co-tenant of the buffer), leaving three for assembly —
	// fewer than one fully pinned object, so the admission gate's
	// budget is wrong and the window must shed pins to make progress.
	padFirst, err := d.Allocate(11)
	if err != nil {
		t.Fatal(err)
	}
	var pads []*buffer.Frame
	for i := 0; i < 11; i++ {
		fr, err := pool.Fix(padFirst + disk.PageID(i))
		if err != nil {
			t.Fatal(err)
		}
		pads = append(pads, fr)
	}

	op := assembly.New(rootsSource(roots), store, tmpl, assembly.Options{
		Window:         4,
		Scheduler:      assembly.BreadthFirst,
		PinWindowPages: true,
	})
	items, err := volcano.Drain(op)
	if err != nil {
		t.Fatalf("assembly under buffer pressure: %v", err)
	}
	if len(items) != nRoots {
		t.Fatalf("assembled %d of %d", len(items), nRoots)
	}
	for _, it := range items {
		inst := it.(*assembly.Instance)
		o := inst.Object
		if inst.Children[0].OID() != o.Refs[0] || inst.Children[1].OID() != o.Refs[1] {
			t.Fatalf("root %v assembled wrong children", inst.OID())
		}
	}
	st := op.Stats()
	if st.WindowStalls == 0 {
		t.Error("no window stalls recorded — pressure path not exercised")
	}
	if st.Skipped != 0 {
		t.Errorf("skipped %d under pure buffer pressure", st.Skipped)
	}
	for _, fr := range pads {
		if err := pool.Unfix(fr, false); err != nil {
			t.Fatal(err)
		}
	}
	if n := pool.PinnedFrames(); n != 0 {
		t.Errorf("%d pinned frames after drain", n)
	}
}

// TestTransientExhaustionSurfacesNotQuarantines: under RetryFaults a
// fault that is still transient after the retry budget — a flapping
// path to the device, not a dead page — must surface as an error, not
// poison the complex object into quarantine.
func TestTransientExhaustionSurfacesNotQuarantines(t *testing.T) {
	w := buildFaultWorld(t, 20, 31)
	// Endless transient faults: no retry budget can outlast them.
	w.dev.SetConfig(disk.FaultConfig{Seed: 9, TransientRate: 0.2, TransientFailures: 1 << 30})
	if err := w.db.Pool.EvictAll(); err != nil {
		t.Fatal(err)
	}
	op := assembly.New(rootsSource(w.db.Roots), w.db.Store, w.db.Template,
		assembly.Options{Window: 4, FaultPolicy: assembly.RetryFaults, MaxRefRetries: 2})
	_, err := volcano.Drain(op)
	if err == nil {
		t.Fatal("assembly over an endlessly flapping device succeeded")
	}
	if !disk.Retryable(err) {
		t.Fatalf("surfaced error %v is not retryable — transient class lost", err)
	}
	if got := op.Stats().Skipped; got != 0 {
		t.Errorf("Skipped = %d, want 0: transient exhaustion must not quarantine", got)
	}

	// Sanity: with the faults cleared, the same run assembles everything.
	w.dev.SetConfig(disk.FaultConfig{})
	got, st := w.runFaulted(t, assembly.Options{Window: 4, FaultPolicy: assembly.RetryFaults})
	if len(got) != len(w.db.Roots) || st.Skipped != 0 {
		t.Errorf("clean re-run: assembled %d/%d, skipped %d", len(got), len(w.db.Roots), st.Skipped)
	}
}
