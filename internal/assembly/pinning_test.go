package assembly_test

import (
	"testing"

	"revelation/internal/assembly"
	"revelation/internal/gen"
	"revelation/internal/object"
	"revelation/internal/volcano"
)

// Tests for the PinWindowPages buffer economics (paper Section 4 /
// Section 7 window-buffer tuning).

func TestPinnedWindowReleasesAllPins(t *testing.T) {
	db := buildDB(t, gen.Config{NumComplexObjects: 200, Clustering: gen.Unclustered, Seed: 51, BufferPages: 128})
	op := assembly.New(rootsSource(db.Roots), db.Store, db.Template, assembly.Options{
		Window:         10,
		Scheduler:      assembly.Elevator,
		PinWindowPages: true,
	})
	out := drainAssembly(t, op)
	if len(out) != 200 {
		t.Fatalf("assembled %d", len(out))
	}
	if n := db.Pool.PinnedFrames(); n != 0 {
		t.Errorf("pinned frames after drain = %d", n)
	}
}

func TestPinnedWindowCloseMidStreamReleasesPins(t *testing.T) {
	db := buildDB(t, gen.Config{NumComplexObjects: 200, Clustering: gen.Unclustered, Seed: 52, BufferPages: 128})
	op := assembly.New(rootsSource(db.Roots), db.Store, db.Template, assembly.Options{
		Window:         10,
		Scheduler:      assembly.Elevator,
		PinWindowPages: true,
	})
	if err := op.Open(); err != nil {
		t.Fatal(err)
	}
	// Pull a handful and abandon the rest.
	for i := 0; i < 5; i++ {
		if _, err := op.Next(); err != nil {
			t.Fatal(err)
		}
	}
	if err := op.Close(); err != nil {
		t.Fatal(err)
	}
	if n := db.Pool.PinnedFrames(); n != 0 {
		t.Errorf("pinned frames after mid-stream close = %d", n)
	}
}

func TestPinnedWindowNeverExhaustsPool(t *testing.T) {
	// A window far too large for the buffer must degrade (admission
	// gating) rather than fail with "all frames pinned".
	db := buildDB(t, gen.Config{NumComplexObjects: 300, Clustering: gen.Unclustered, Seed: 53, BufferPages: 32})
	op := assembly.New(rootsSource(db.Roots), db.Store, db.Template, assembly.Options{
		Window:         200,
		Scheduler:      assembly.Elevator,
		PinWindowPages: true,
	})
	items, err := volcano.Drain(op)
	if err != nil {
		t.Fatalf("tiny buffer with huge window: %v", err)
	}
	if len(items) != 300 {
		t.Fatalf("assembled %d", len(items))
	}
}

func TestPinnedWindowAbortReleasesPins(t *testing.T) {
	db := buildDB(t, gen.Config{NumComplexObjects: 150, Clustering: gen.Unclustered, Seed: 54, BufferPages: 96})
	tmpl := db.Template.Clone()
	tmpl.Children[0].Pred = neverPred{}
	op := assembly.New(rootsSource(db.Roots), db.Store, tmpl, assembly.Options{
		Window:         20,
		Scheduler:      assembly.Elevator,
		PinWindowPages: true,
	})
	items, err := volcano.Drain(op)
	if err != nil {
		t.Fatal(err)
	}
	if len(items) != 0 {
		t.Fatalf("never-predicate emitted %d", len(items))
	}
	if n := db.Pool.PinnedFrames(); n != 0 {
		t.Errorf("pinned frames after aborts = %d", n)
	}
}

// neverPred rejects everything.
type neverPred struct{}

func (neverPred) Eval(*object.Object) bool { return false }
func (neverPred) Selectivity() float64     { return 0.01 }
func (neverPred) String() string           { return "never" }
