package assembly

import (
	"fmt"

	"revelation/internal/disk"
)

// MultiElevator is the multi-device scheduler sketched in the paper's
// Section 7: "At present, the assembly operator can only handle one
// device." With the database striped over several devices, a single
// global SCAN drags every arm around; this scheduler keeps one
// elevator per device, each sweeping relative to its *own* last
// serviced page, and rotates across devices with pending references so
// all arms stay busy.
type MultiElevator struct {
	deviceOf func(disk.PageID) int
	lanes    []*elevator
	lastPage []disk.PageID
	rr       int
}

// NewMultiElevator builds a scheduler for n devices; deviceOf routes a
// global page to its device index (use disk.Striped.DeviceOf).
func NewMultiElevator(n int, deviceOf func(disk.PageID) int) *MultiElevator {
	if n < 1 {
		n = 1
	}
	m := &MultiElevator{
		deviceOf: deviceOf,
		lanes:    make([]*elevator, n),
		lastPage: make([]disk.PageID, n),
	}
	for i := range m.lanes {
		m.lanes[i] = &elevator{dirUp: true}
	}
	return m
}

// Name implements Scheduler.
func (m *MultiElevator) Name() string {
	return fmt.Sprintf("multi-elevator(%d)", len(m.lanes))
}

// Add implements Scheduler.
func (m *MultiElevator) Add(refs ...*Ref) {
	for _, r := range refs {
		lane := m.deviceOf(r.Page()) % len(m.lanes)
		m.lanes[lane].Add(r)
	}
}

// Next implements Scheduler: among devices with pending references,
// serve the one whose next service is cheapest for its own arm
// (shortest positioning first across arms, SCAN within an arm). Ties
// rotate round-robin so no arm starves.
func (m *MultiElevator) Next(disk.PageID) *Ref {
	n := len(m.lanes)
	best, bestDist := -1, int64(1)<<62
	for i := 0; i < n; i++ {
		lane := (m.rr + i) % n
		d, ok := m.lanes[lane].peekDist(m.lastPage[lane])
		if !ok {
			continue
		}
		if d < bestDist {
			best, bestDist = lane, d
		}
	}
	if best < 0 {
		return nil
	}
	r := m.lanes[best].Next(m.lastPage[best])
	if r == nil {
		return nil
	}
	m.lastPage[best] = r.Page()
	m.rr = (best + 1) % n
	return r
}

// TakeOnPage implements Scheduler.
func (m *MultiElevator) TakeOnPage(p disk.PageID) []*Ref {
	return m.lanes[m.deviceOf(p)%len(m.lanes)].TakeOnPage(p)
}

// Len implements Scheduler.
func (m *MultiElevator) Len() int {
	total := 0
	for _, l := range m.lanes {
		total += l.Len()
	}
	return total
}
