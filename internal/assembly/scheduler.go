package assembly

import (
	"fmt"
	"sort"

	"revelation/internal/disk"
	"revelation/internal/heap"
	"revelation/internal/object"
)

// Ref is one unresolved inter-object reference in the window: "at any
// stage of assembling a complex object there may be several references
// yet to be resolved" (Section 4). The physical address is resolved at
// scheduling time so the elevator can order fetches by page.
type Ref struct {
	// OID is the referenced object.
	OID object.OID
	// RID is its physical address (from the locator).
	RID heap.RID
	// Node is the template node the reference instantiates.
	Node *Template
	// Parent is the instance whose reference field this is; nil for a
	// complex object's root reference.
	Parent *Instance
	// Slot is the index into Parent.Children to swizzle; 0 for roots.
	Slot int
	// Item is the window entry (complex object) the reference belongs
	// to. Aborted items' references are skipped lazily.
	Item *workItem
	// Attempts counts fetch attempts that failed with a transient
	// fault; the RetryFaults policy bounds it before quarantining.
	Attempts int
}

// Page is the device page the reference resolves to.
func (r *Ref) Page() disk.PageID { return r.RID.Page }

func (r *Ref) live() bool { return r.Item == nil || !r.Item.aborted }

// Scheduler decides which unresolved reference to resolve next — the
// choice the whole paper is about. Add offers a batch of references
// (the unresolved references discovered in one newly fetched object,
// in left-to-right field order); Next picks one given the current head
// position.
type Scheduler interface {
	// Name identifies the policy in plans and benchmark tables.
	Name() string
	// Add inserts references, preserving their relative order where
	// the policy is order-sensitive.
	Add(refs ...*Ref)
	// Next removes and returns the next reference to resolve, or nil
	// when none remain. head is the device's current head position.
	Next(head disk.PageID) *Ref
	// TakeOnPage removes and returns every pending live reference
	// whose target lives on page p — the Section 4 page-batching
	// opportunity: "if requested objects are contained in a single
	// page, then only a single request should be issued to the buffer
	// manager."
	TakeOnPage(p disk.PageID) []*Ref
	// Len reports the number of pending references (live and dead).
	Len() int
}

// SchedulerKind selects one of the built-in policies.
type SchedulerKind int

// Built-in scheduling policies from Section 6.2 (plus the integrated
// priority policy sketched in Section 7).
const (
	// DepthFirst resolves each complex object completely before the
	// next — equivalent to object-at-a-time assembly regardless of
	// window size.
	DepthFirst SchedulerKind = iota
	// BreadthFirst resolves references in discovery order across the
	// whole window ("breadth of the window, not of a single object").
	BreadthFirst
	// Elevator resolves the reference nearest the disk head in the
	// current sweep direction (SCAN).
	Elevator
)

func (k SchedulerKind) String() string {
	switch k {
	case DepthFirst:
		return "depth-first"
	case BreadthFirst:
		return "breadth-first"
	case Elevator:
		return "elevator"
	default:
		return fmt.Sprintf("scheduler(%d)", int(k))
	}
}

// NewScheduler constructs a scheduler of the given kind.
func NewScheduler(kind SchedulerKind) Scheduler {
	switch kind {
	case BreadthFirst:
		return &breadthFirst{}
	case Elevator:
		return &elevator{dirUp: true}
	default:
		return &depthFirst{stacks: map[*workItem][]*Ref{}}
	}
}

// depthFirst keeps one stack per window item and always serves the
// oldest item, children left-to-right: exactly the traversal a
// compiled method performs, one complex object at a time.
type depthFirst struct {
	order  []*workItem
	stacks map[*workItem][]*Ref
	n      int
}

func (s *depthFirst) Name() string { return DepthFirst.String() }

func (s *depthFirst) Add(refs ...*Ref) {
	// Group the batch by window item and prepend each group to its
	// item's stack: a batch arrives in left-to-right field order, so
	// prepending the whole group keeps the leftmost child on top —
	// the traversal order a compiled method would use.
	byItem := map[*workItem][]*Ref{}
	var items []*workItem
	for _, r := range refs {
		if _, ok := byItem[r.Item]; !ok {
			items = append(items, r.Item)
		}
		byItem[r.Item] = append(byItem[r.Item], r)
	}
	for _, item := range items {
		if _, ok := s.stacks[item]; !ok {
			s.order = append(s.order, item)
		}
		batch := byItem[item]
		merged := make([]*Ref, 0, len(batch)+len(s.stacks[item]))
		merged = append(merged, batch...)
		merged = append(merged, s.stacks[item]...)
		s.stacks[item] = merged
		s.n += len(batch)
	}
}

func (s *depthFirst) Next(disk.PageID) *Ref {
	for len(s.order) > 0 {
		item := s.order[0]
		stack := s.stacks[item]
		for len(stack) > 0 {
			r := stack[0]
			stack = stack[1:]
			s.n--
			if r.live() {
				s.stacks[item] = stack
				return r
			}
		}
		delete(s.stacks, item)
		s.order = s.order[1:]
	}
	return nil
}

func (s *depthFirst) Len() int { return s.n }

// TakeOnPage implements Scheduler. Depth-first honours object-at-a-
// time semantics, so batching only draws from the current (oldest)
// complex object — fetch order across objects must stay sequential.
func (s *depthFirst) TakeOnPage(p disk.PageID) []*Ref {
	if len(s.order) == 0 {
		return nil
	}
	item := s.order[0]
	stack := s.stacks[item]
	var out []*Ref
	rest := stack[:0]
	for _, r := range stack {
		if !r.live() {
			s.n--
			continue
		}
		if r.Page() == p {
			out = append(out, r)
			s.n--
			continue
		}
		rest = append(rest, r)
	}
	s.stacks[item] = rest
	return out
}

// breadthFirst is a FIFO over the whole window.
type breadthFirst struct {
	queue []*Ref
}

func (s *breadthFirst) Name() string { return BreadthFirst.String() }

func (s *breadthFirst) Add(refs ...*Ref) { s.queue = append(s.queue, refs...) }

func (s *breadthFirst) Next(disk.PageID) *Ref {
	for len(s.queue) > 0 {
		r := s.queue[0]
		s.queue = s.queue[1:]
		if r.live() {
			return r
		}
	}
	return nil
}

func (s *breadthFirst) Len() int { return len(s.queue) }

// TakeOnPage implements Scheduler.
func (s *breadthFirst) TakeOnPage(p disk.PageID) []*Ref {
	var out []*Ref
	rest := s.queue[:0]
	for _, r := range s.queue {
		if !r.live() {
			continue
		}
		if r.Page() == p {
			out = append(out, r)
			continue
		}
		rest = append(rest, r)
	}
	s.queue = rest
	return out
}

// elevator is the SCAN policy: it keeps the pending references sorted
// by page and serves the nearest one in the current sweep direction,
// reversing at the ends. With a dedicated device and a large window of
// outstanding requests this is the classical choice (Teorey &
// Pinkerton; Section 6.2).
type elevator struct {
	refs  []*Ref // sorted by page
	dirUp bool
}

func (s *elevator) Name() string { return Elevator.String() }

func (s *elevator) Add(refs ...*Ref) {
	for _, r := range refs {
		i := sort.Search(len(s.refs), func(i int) bool { return s.refs[i].Page() >= r.Page() })
		s.refs = append(s.refs, nil)
		copy(s.refs[i+1:], s.refs[i:])
		s.refs[i] = r
	}
}

func (s *elevator) Next(head disk.PageID) *Ref {
	s.compact()
	if len(s.refs) == 0 {
		return nil
	}
	// First pending ref at or above the head.
	i := sort.Search(len(s.refs), func(i int) bool { return s.refs[i].Page() >= head })
	var pick int
	if s.dirUp {
		if i < len(s.refs) {
			pick = i
		} else {
			s.dirUp = false
			pick = len(s.refs) - 1
		}
	} else {
		if i > 0 {
			pick = i - 1
			// Exact hits belong to the current position regardless of
			// direction; prefer them to avoid a pointless reversal.
			if i < len(s.refs) && s.refs[i].Page() == head {
				pick = i
			}
		} else {
			s.dirUp = true
			pick = 0
		}
	}
	r := s.refs[pick]
	s.refs = append(s.refs[:pick], s.refs[pick+1:]...)
	return r
}

// peekDist reports the seek distance the next service from this
// elevator would cost, given its head, without removing anything.
func (s *elevator) peekDist(head disk.PageID) (int64, bool) {
	s.compact()
	if len(s.refs) == 0 {
		return 0, false
	}
	i := sort.Search(len(s.refs), func(i int) bool { return s.refs[i].Page() >= head })
	best := int64(1) << 62
	if i < len(s.refs) {
		d := int64(s.refs[i].Page() - head)
		if d < best {
			best = d
		}
	}
	if i > 0 {
		d := int64(head - s.refs[i-1].Page())
		if d < best {
			best = d
		}
	}
	return best, true
}

// compact drops references of aborted complex objects.
func (s *elevator) compact() {
	live := s.refs[:0]
	for _, r := range s.refs {
		if r.live() {
			live = append(live, r)
		}
	}
	s.refs = live
}

func (s *elevator) Len() int { return len(s.refs) }

// TakeOnPage implements Scheduler: the sorted slice makes same-page
// extraction a binary search plus a contiguous cut.
func (s *elevator) TakeOnPage(p disk.PageID) []*Ref {
	s.compact()
	lo := sort.Search(len(s.refs), func(i int) bool { return s.refs[i].Page() >= p })
	hi := lo
	for hi < len(s.refs) && s.refs[hi].Page() == p {
		hi++
	}
	if lo == hi {
		return nil
	}
	out := append([]*Ref(nil), s.refs[lo:hi]...)
	s.refs = append(s.refs[:lo], s.refs[hi:]...)
	return out
}

// PredicateFirst wraps a base policy with the Section 7 integration of
// predicates into scheduling: references whose subtree can reject the
// complex object are served before all others ("it is beneficial to
// retrieve sub-objects that have a high probability of failing a
// predicate as soon as possible", Section 4). Within each tier the
// base policy applies. Hot-tier references are served most-rejective
// subtree first, breaking ties by the base policy.
type PredicateFirst struct {
	hot, cold Scheduler
	base      string
}

// NewPredicateFirst builds a predicate-first scheduler over two fresh
// instances of the given base kind.
func NewPredicateFirst(base SchedulerKind) *PredicateFirst {
	return &PredicateFirst{
		hot:  NewScheduler(base),
		cold: NewScheduler(base),
		base: base.String(),
	}
}

// Name implements Scheduler.
func (s *PredicateFirst) Name() string { return "predicate-first/" + s.base }

// Add implements Scheduler.
func (s *PredicateFirst) Add(refs ...*Ref) {
	for _, r := range refs {
		if r.Node.subtreeRejectivity() > 0 {
			s.hot.Add(r)
		} else {
			s.cold.Add(r)
		}
	}
}

// Next implements Scheduler.
func (s *PredicateFirst) Next(head disk.PageID) *Ref {
	if r := s.hot.Next(head); r != nil {
		return r
	}
	return s.cold.Next(head)
}

// TakeOnPage implements Scheduler.
func (s *PredicateFirst) TakeOnPage(p disk.PageID) []*Ref {
	return append(s.hot.TakeOnPage(p), s.cold.TakeOnPage(p)...)
}

// Len implements Scheduler.
func (s *PredicateFirst) Len() int { return s.hot.Len() + s.cold.Len() }
