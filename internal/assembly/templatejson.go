package assembly

import (
	"encoding/json"
	"fmt"

	"revelation/internal/expr"
	"revelation/internal/object"
)

// templateJSON is the serialized template form used by the command-
// line tools: structure, annotations, and a restricted predicate
// language (integer comparisons and ranges — the algebraically
// expressible predicates; residual Go predicates don't serialize).
type templateJSON struct {
	Name          string          `json:"name"`
	Class         string          `json:"class,omitempty"`
	RefField      int             `json:"refField"`
	Required      bool            `json:"required,omitempty"`
	Shared        bool            `json:"shared,omitempty"`
	SharingDegree float64         `json:"sharingDegree,omitempty"`
	Pred          *predJSON       `json:"pred,omitempty"`
	Children      []*templateJSON `json:"children,omitempty"`
}

// predJSON serializes the expressible predicate subset.
type predJSON struct {
	// Field is the integer attribute index.
	Field int `json:"field"`
	// Op is one of "=", "!=", "<", "<=", ">", ">=", "range".
	Op string `json:"op"`
	// Value is the comparison constant ("range" uses Lo/Hi instead).
	Value int32 `json:"value,omitempty"`
	// Lo and Hi bound a "range" predicate inclusively.
	Lo int32 `json:"lo,omitempty"`
	Hi int32 `json:"hi,omitempty"`
	// Sel is the selectivity estimate.
	Sel float64 `json:"sel,omitempty"`
}

var opNames = map[string]expr.CmpOp{
	"=": expr.EQ, "==": expr.EQ,
	"!=": expr.NE,
	"<":  expr.LT, "<=": expr.LE,
	">": expr.GT, ">=": expr.GE,
}

// MarshalTemplateJSON serializes a template. Classes are emitted by
// name (resolved through cat; a nil catalog emits numeric ids).
// Predicates outside the expressible subset (IntCmp, IntRange) fail
// with a descriptive error.
func MarshalTemplateJSON(t *Template, cat *object.Catalog) ([]byte, error) {
	j, err := templateToJSON(t, cat)
	if err != nil {
		return nil, err
	}
	return json.MarshalIndent(j, "", "  ")
}

func templateToJSON(t *Template, cat *object.Catalog) (*templateJSON, error) {
	j := &templateJSON{
		Name:          t.Name,
		RefField:      t.RefField,
		Required:      t.Required,
		Shared:        t.Shared,
		SharingDegree: t.SharingDegree,
	}
	if t.Class != 0 {
		if cat != nil {
			cls, ok := cat.ByID(t.Class)
			if !ok {
				return nil, fmt.Errorf("assembly: class %d of node %q not in catalog", t.Class, t.Name)
			}
			j.Class = cls.Name
		} else {
			j.Class = fmt.Sprintf("#%d", t.Class)
		}
	}
	switch p := t.Pred.(type) {
	case nil:
	case expr.IntCmp:
		j.Pred = &predJSON{Field: p.Field, Op: p.Op.String(), Value: p.Value, Sel: p.Sel}
	case expr.IntRange:
		j.Pred = &predJSON{Field: p.Field, Op: "range", Lo: p.Lo, Hi: p.Hi, Sel: p.Sel}
	default:
		return nil, fmt.Errorf("assembly: predicate %s on node %q is not serializable", t.Pred, t.Name)
	}
	for _, c := range t.Children {
		cj, err := templateToJSON(c, cat)
		if err != nil {
			return nil, err
		}
		j.Children = append(j.Children, cj)
	}
	return j, nil
}

// UnmarshalTemplateJSON parses a serialized template, resolving class
// names through cat (nil allows only class-free and "#<id>" nodes).
// The result is validated.
func UnmarshalTemplateJSON(data []byte, cat *object.Catalog) (*Template, error) {
	var j templateJSON
	if err := json.Unmarshal(data, &j); err != nil {
		return nil, fmt.Errorf("assembly: parse template: %w", err)
	}
	t, err := templateFromJSON(&j, cat)
	if err != nil {
		return nil, err
	}
	if err := t.Validate(cat); err != nil {
		return nil, err
	}
	return t, nil
}

func templateFromJSON(j *templateJSON, cat *object.Catalog) (*Template, error) {
	t := &Template{
		Name:          j.Name,
		RefField:      j.RefField,
		Required:      j.Required,
		Shared:        j.Shared,
		SharingDegree: j.SharingDegree,
	}
	if j.Class != "" {
		if j.Class[0] == '#' {
			var id int
			if _, err := fmt.Sscanf(j.Class, "#%d", &id); err != nil {
				return nil, fmt.Errorf("assembly: bad class tag %q", j.Class)
			}
			t.Class = object.ClassID(id)
		} else {
			if cat == nil {
				return nil, fmt.Errorf("assembly: class %q needs a catalog", j.Class)
			}
			cls, ok := cat.ByName(j.Class)
			if !ok {
				return nil, fmt.Errorf("assembly: unknown class %q", j.Class)
			}
			t.Class = cls.ID
		}
	}
	if j.Pred != nil {
		switch j.Pred.Op {
		case "range":
			t.Pred = expr.IntRange{Field: j.Pred.Field, Lo: j.Pred.Lo, Hi: j.Pred.Hi, Sel: j.Pred.Sel}
		default:
			op, ok := opNames[j.Pred.Op]
			if !ok {
				return nil, fmt.Errorf("assembly: unknown predicate op %q on node %q", j.Pred.Op, j.Name)
			}
			t.Pred = expr.IntCmp{Field: j.Pred.Field, Op: op, Value: j.Pred.Value, Sel: j.Pred.Sel}
		}
	}
	for _, cj := range j.Children {
		c, err := templateFromJSON(cj, cat)
		if err != nil {
			return nil, err
		}
		t.Children = append(t.Children, c)
	}
	return t, nil
}
