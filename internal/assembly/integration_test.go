package assembly_test

// Integration tests running the assembly operator against databases
// from the paper's benchmark generator: sharing, selective assembly,
// stacked operators, parallel assembly, and cross-scheduler
// equivalence at benchmark scale.

import (
	"errors"
	"sort"
	"testing"

	"revelation/internal/assembly"
	"revelation/internal/disk"
	"revelation/internal/expr"
	"revelation/internal/gen"
	"revelation/internal/object"
	"revelation/internal/volcano"
)

func buildDB(t testing.TB, cfg gen.Config) *gen.Database {
	t.Helper()
	db, err := gen.Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func rootsSource(roots []object.OID) volcano.Iterator {
	items := make([]volcano.Item, len(roots))
	for i, r := range roots {
		items[i] = r
	}
	return volcano.NewSlice(items)
}

func drainAssembly(t testing.TB, op *assembly.Operator) []*assembly.Instance {
	t.Helper()
	items, err := volcano.Drain(op)
	if err != nil {
		t.Fatalf("assembly: %v", err)
	}
	out := make([]*assembly.Instance, len(items))
	for i, it := range items {
		out[i] = it.(*assembly.Instance)
	}
	return out
}

func verifyTree(t testing.TB, db *gen.Database, inst *assembly.Instance) {
	t.Helper()
	inst.Walk(func(in *assembly.Instance) {
		for slot, ct := range in.Node.Children {
			want := in.Object.Refs[ct.RefField]
			child := in.Children[slot]
			if want.IsNil() {
				if child != nil {
					t.Fatalf("child for nil ref at %v", in.OID())
				}
				continue
			}
			if child == nil || child.OID() != want {
				t.Fatalf("swizzle mismatch at %v slot %d", in.OID(), slot)
			}
		}
	})
}

func TestAssembleGeneratedDatabaseAllPolicies(t *testing.T) {
	for _, cl := range []gen.Clustering{gen.Unclustered, gen.InterObject, gen.IntraObject} {
		db := buildDB(t, gen.Config{NumComplexObjects: 300, Clustering: cl, Seed: 11})
		for _, kind := range []assembly.SchedulerKind{assembly.DepthFirst, assembly.BreadthFirst, assembly.Elevator} {
			for _, w := range []int{1, 50} {
				op := assembly.New(rootsSource(db.Roots), db.Store, db.Template,
					assembly.Options{Window: w, Scheduler: kind})
				out := drainAssembly(t, op)
				if len(out) != 300 {
					t.Fatalf("%v/%v/w%d: assembled %d", cl, kind, w, len(out))
				}
				for _, inst := range out {
					if inst.Size() != 7 {
						t.Fatalf("%v/%v/w%d: %d components", cl, kind, w, inst.Size())
					}
					verifyTree(t, db, inst)
				}
				if err := db.Pool.EvictAll(); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
}

func TestSharingReducesFetches(t *testing.T) {
	db := buildDB(t, gen.Config{NumComplexObjects: 400, Sharing: 0.25, Clustering: gen.InterObject, Seed: 12})

	run := func(useStats bool) (assembly.Stats, int) {
		if err := db.Pool.EvictAll(); err != nil {
			t.Fatal(err)
		}
		db.Device.ResetStats()
		op := assembly.New(rootsSource(db.Roots), db.Store, db.Template,
			assembly.Options{Window: 50, Scheduler: assembly.Elevator, UseSharingStats: useStats})
		out := drainAssembly(t, op)
		for _, inst := range out {
			verifyTree(t, db, inst)
		}
		if len(out) != 400 {
			t.Fatalf("assembled %d", len(out))
		}
		return op.Stats(), int(db.Device.Stats().Reads)
	}

	naive, _ := run(false)
	smart, _ := run(true)
	if smart.SharedLinks <= naive.SharedLinks {
		t.Errorf("sharing stats produced no extra shared links: %d vs %d", smart.SharedLinks, naive.SharedLinks)
	}
	if smart.Fetched >= naive.Fetched {
		t.Errorf("sharing stats did not reduce fetches: %d vs %d", smart.Fetched, naive.Fetched)
	}
	// Every emitted tree must still have 7 reachable components.
	if smart.Assembled != 400 {
		t.Errorf("assembled %d with sharing stats", smart.Assembled)
	}
}

func TestSharedInstancesAreIdentical(t *testing.T) {
	db := buildDB(t, gen.Config{NumComplexObjects: 100, Sharing: 0.1, Seed: 13})
	op := assembly.New(rootsSource(db.Roots), db.Store, db.Template,
		assembly.Options{Window: 100, Scheduler: assembly.Elevator, UseSharingStats: true})
	out := drainAssembly(t, op)
	// A shared leaf reached from two different complex objects must be
	// the same *Instance (assembled once), not two copies.
	byOID := map[object.OID]*assembly.Instance{}
	dupes := 0
	for _, inst := range out {
		inst.Walk(func(in *assembly.Instance) {
			if !in.Node.Shared {
				return
			}
			if prev, ok := byOID[in.OID()]; ok {
				if prev != in {
					dupes++
				}
				return
			}
			byOID[in.OID()] = in
		})
	}
	// Instances may be duplicated when the shared table's expected
	// reference count (a statistic, not a guarantee) runs out before
	// the real references do, but the table must deduplicate the bulk:
	// 100 trees × 4 leaf slots = 400 references over ~40 distinct
	// leaves; without the table every reference beyond the first per
	// complex object would be a fresh copy.
	reuses := 0
	for _, inst := range byOID {
		if inst.RefCount() > 1 {
			reuses++
		}
	}
	if reuses == 0 {
		t.Error("no shared instance was reused")
	}
	if dupes > 200 {
		t.Errorf("too many duplicated shared instances: %d of 400 references (distinct %d)", dupes, len(byOID))
	}
}

func TestSelectiveAssemblyGenerated(t *testing.T) {
	db := buildDB(t, gen.Config{NumComplexObjects: 500, Clustering: gen.Unclustered, Seed: 14})
	tmpl := db.Template.Clone()
	// Predicate on leaf position G (rightmost): rand < 100 (10%).
	leaf := tmpl.Children[1].Children[1]
	leaf.Pred = expr.IntCmp{Field: 1, Op: expr.LT, Value: 100, Sel: 0.1}

	op := assembly.New(rootsSource(db.Roots), db.Store, tmpl,
		assembly.Options{Window: 50, Scheduler: assembly.Elevator, PredicateFirst: true})
	out := drainAssembly(t, op)
	st := op.Stats()
	if st.Assembled+st.Aborted != 500 {
		t.Fatalf("assembled %d + aborted %d != 500", st.Assembled, st.Aborted)
	}
	if len(out) == 0 || len(out) > 120 {
		t.Errorf("selectivity 10%% kept %d of 500", len(out))
	}
	for _, inst := range out {
		g := inst.Children[1].Children[1]
		if g.Object.Ints[1] >= 100 {
			t.Error("predicate violated in emitted object")
		}
		verifyTree(t, db, inst)
	}
	// Early abort must save fetches versus full assembly: full is
	// 7*500 = 3500.
	if st.Fetched >= 3500 {
		t.Errorf("selective assembly fetched %d, no savings", st.Fetched)
	}
}

func TestStackedAssembly(t *testing.T) {
	db := buildDB(t, gen.Config{NumComplexObjects: 120, Clustering: gen.InterObject, Seed: 15})
	full := db.Template
	sub := full.Children[0] // the B subtree (B, D, E)

	// Sub-roots: the B component of every tree.
	var subRoots []volcano.Item
	seen := map[object.OID]bool{}
	for _, root := range db.Roots {
		o, err := db.Store.Get(root)
		if err != nil {
			t.Fatal(err)
		}
		b := o.Refs[0]
		if !seen[b] {
			seen[b] = true
			subRoots = append(subRoots, b)
		}
	}
	plan, err := assembly.NewStacked(assembly.StackedConfig{
		Store:    db.Store,
		Full:     full,
		Sub:      sub,
		SubRoots: volcano.NewSlice(subRoots),
		EnclosingRoot: func(in *assembly.Instance) (object.OID, error) {
			return db.RootOf[in.OID()], nil
		},
		BottomUp: assembly.Options{Window: 20, Scheduler: assembly.Elevator},
		TopDown:  assembly.Options{Window: 20, Scheduler: assembly.Elevator},
	})
	if err != nil {
		t.Fatal(err)
	}
	items, err := volcano.Drain(plan)
	if err != nil {
		t.Fatal(err)
	}
	if len(items) != 120 {
		t.Fatalf("stacked plan assembled %d of 120", len(items))
	}
	for _, it := range items {
		inst := it.(*assembly.Instance)
		if inst.Size() != 7 {
			t.Fatalf("stacked object has %d components", inst.Size())
		}
		verifyTree(t, db, inst)
	}
}

func TestStackedValidation(t *testing.T) {
	db := buildDB(t, gen.Config{NumComplexObjects: 10, Seed: 16})
	foreign := db.Template.Clone().Children[0]
	_, err := assembly.NewStacked(assembly.StackedConfig{
		Store:         db.Store,
		Full:          db.Template,
		Sub:           foreign, // clone: not a node of Full
		SubRoots:      volcano.NewSlice(nil),
		EnclosingRoot: func(*assembly.Instance) (object.OID, error) { return 0, nil },
	})
	if err == nil {
		t.Error("foreign sub-template accepted")
	}
	_, err = assembly.NewStacked(assembly.StackedConfig{
		Store: db.Store, Full: db.Template, Sub: db.Template.Children[0],
		SubRoots: volcano.NewSlice(nil),
	})
	if err == nil {
		t.Error("missing EnclosingRoot accepted")
	}
}

func TestParallelAssembly(t *testing.T) {
	db := buildDB(t, gen.Config{NumComplexObjects: 240, Clustering: gen.Unclustered, Seed: 17})
	for _, degree := range []int{1, 2, 4} {
		plan := assembly.NewParallel(db.Roots, db.Store, db.Template,
			assembly.Options{Window: 10, Scheduler: assembly.Elevator}, degree)
		items, err := volcano.Drain(plan)
		if err != nil {
			t.Fatalf("degree %d: %v", degree, err)
		}
		if len(items) != 240 {
			t.Fatalf("degree %d: assembled %d", degree, len(items))
		}
		var got []int
		for _, it := range items {
			inst := it.(*assembly.Instance)
			if inst.Size() != 7 {
				t.Fatalf("degree %d: %d components", degree, inst.Size())
			}
			got = append(got, int(inst.OID()))
		}
		sort.Ints(got)
		for i := 1; i < len(got); i++ {
			if got[i] == got[i-1] {
				t.Fatalf("degree %d: duplicate root %d", degree, got[i])
			}
		}
		if err := db.Pool.EvictAll(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestAssemblyIOFaultSurfaces(t *testing.T) {
	db := buildDB(t, gen.Config{NumComplexObjects: 50, Seed: 18})
	sim := db.Device.(*disk.Sim)
	boom := errors.New("media error")
	count := 0
	sim.SetFault(func(p disk.PageID, write bool) error {
		if !write {
			count++
			if count == 30 {
				return boom
			}
		}
		return nil
	})
	op := assembly.New(rootsSource(db.Roots), db.Store, db.Template,
		assembly.Options{Window: 10, Scheduler: assembly.Elevator})
	_, err := volcano.Drain(op)
	if !errors.Is(err, boom) {
		t.Errorf("I/O fault not surfaced: %v", err)
	}
}

func TestBTreeLocatorAssembly(t *testing.T) {
	db := buildDB(t, gen.Config{NumComplexObjects: 100, Locator: gen.BTreeLocator, Seed: 19})
	op := assembly.New(rootsSource(db.Roots), db.Store, db.Template,
		assembly.Options{Window: 20, Scheduler: assembly.Elevator})
	out := drainAssembly(t, op)
	if len(out) != 100 {
		t.Fatalf("assembled %d", len(out))
	}
	// With the B-tree locator, index lookups cost real reads.
	if db.Device.Stats().Reads == 0 {
		t.Error("no device reads with btree locator")
	}
}

func TestWindowFootprintMatchesPaperFormula(t *testing.T) {
	// Section 6.3.3: at W=1 at most 7 pages are needed; at W=50 up to
	// 6*(W-1) + 7 = 301. Unclustered placement makes components land
	// on distinct pages, so the peak should approach but not exceed
	// the bound.
	db := buildDB(t, gen.Config{NumComplexObjects: 300, Clustering: gen.Unclustered, Seed: 20})
	for _, w := range []int{1, 10, 50} {
		if err := db.Pool.EvictAll(); err != nil {
			t.Fatal(err)
		}
		op := assembly.New(rootsSource(db.Roots), db.Store, db.Template,
			assembly.Options{Window: w, Scheduler: assembly.Elevator})
		drainAssembly(t, op)
		bound := 6*(w-1) + 7 + 7 // +7 slack: completed objects queue briefly
		if got := op.Stats().PeakWindowPgs; got > bound {
			t.Errorf("W=%d: peak window footprint %d pages exceeds bound %d", w, got, bound)
		}
	}
}
