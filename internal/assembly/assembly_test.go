package assembly

import (
	"errors"
	"fmt"
	"sort"
	"testing"

	"revelation/internal/buffer"
	"revelation/internal/disk"
	"revelation/internal/expr"
	"revelation/internal/heap"
	"revelation/internal/object"
	"revelation/internal/volcano"
)

// buildChainStore creates a tiny hand-built database: N complex
// objects shaped Root -> (Left, Right), Left -> Leaf. Returns the
// store, template, and root OIDs.
func buildChainStore(t *testing.T, n int) (*object.Store, *Template, []object.OID) {
	t.Helper()
	d := disk.New(0)
	pool := buffer.New(d, 512, buffer.LRU)
	f, err := heap.Create(pool, n+4)
	if err != nil {
		t.Fatal(err)
	}
	cat := object.NewCatalog()
	root := cat.MustDefine(&object.Class{Name: "Root", NumInts: 2, NumRefs: 2})
	mid := cat.MustDefine(&object.Class{Name: "Mid", NumInts: 2, NumRefs: 1})
	leaf := cat.MustDefine(&object.Class{Name: "Leaf", NumInts: 2, NumRefs: 0})
	s := object.NewStore(f, object.NewMapLocator(), cat)

	var roots []object.OID
	oid := object.OID(1)
	for i := 0; i < n; i++ {
		leafO := &object.Object{OID: oid, Class: leaf.ID, Ints: []int32{int32(i), 3}}
		oid++
		midO := &object.Object{OID: oid, Class: mid.ID, Ints: []int32{int32(i), 2}, Refs: []object.OID{leafO.OID}}
		oid++
		rightO := &object.Object{OID: oid, Class: leaf.ID, Ints: []int32{int32(i), 4}}
		oid++
		rootO := &object.Object{OID: oid, Class: root.ID, Ints: []int32{int32(i), 1}, Refs: []object.OID{midO.OID, rightO.OID}}
		oid++
		for _, o := range []*object.Object{leafO, midO, rightO, rootO} {
			if _, err := s.Put(o); err != nil {
				t.Fatal(err)
			}
		}
		roots = append(roots, rootO.OID)
	}
	tmpl := &Template{
		Name: "Root", Class: root.ID, RefField: -1, Required: true,
		Children: []*Template{
			{Name: "Mid", Class: mid.ID, RefField: 0, Required: true,
				Children: []*Template{
					{Name: "Leaf", Class: leaf.ID, RefField: 0, Required: true},
				}},
			{Name: "Right", Class: leaf.ID, RefField: 1, Required: true},
		},
	}
	return s, tmpl, roots
}

func oidSource(roots []object.OID) volcano.Iterator {
	items := make([]volcano.Item, len(roots))
	for i, r := range roots {
		items[i] = r
	}
	return volcano.NewSlice(items)
}

func assembleAll(t *testing.T, s *object.Store, tmpl *Template, roots []object.OID, opts Options) ([]*Instance, *Operator) {
	t.Helper()
	op := New(oidSource(roots), s, tmpl, opts)
	items, err := volcano.Drain(op)
	if err != nil {
		t.Fatalf("assembly drain: %v", err)
	}
	out := make([]*Instance, len(items))
	for i, it := range items {
		inst, ok := it.(*Instance)
		if !ok {
			t.Fatalf("assembly emitted %T", it)
		}
		out[i] = inst
	}
	return out, op
}

func checkAssembled(t *testing.T, s *object.Store, inst *Instance) {
	t.Helper()
	inst.Walk(func(in *Instance) {
		// Every child pointer must match the underlying reference
		// field: the swizzling invariant.
		for slot, ct := range in.Node.Children {
			child := in.Children[slot]
			want := in.Object.Refs[ct.RefField]
			if want.IsNil() {
				if child != nil {
					t.Errorf("node %v slot %d: child present for nil ref", in.OID(), slot)
				}
				continue
			}
			if child == nil {
				t.Errorf("node %v slot %d: unresolved reference %v in emitted object", in.OID(), slot, want)
				continue
			}
			if child.OID() != want {
				t.Errorf("node %v slot %d: swizzled %v, want %v", in.OID(), slot, child.OID(), want)
			}
		}
	})
}

func TestAssembleBasic(t *testing.T) {
	s, tmpl, roots := buildChainStore(t, 10)
	for _, kind := range []SchedulerKind{DepthFirst, BreadthFirst, Elevator} {
		for _, window := range []int{1, 3, 10, 50} {
			t.Run(fmt.Sprintf("%v/w%d", kind, window), func(t *testing.T) {
				out, op := assembleAll(t, s, tmpl, roots, Options{Window: window, Scheduler: kind})
				if len(out) != 10 {
					t.Fatalf("assembled %d of 10", len(out))
				}
				for _, inst := range out {
					if inst.Size() != 4 {
						t.Errorf("complex object has %d components, want 4", inst.Size())
					}
					checkAssembled(t, s, inst)
				}
				st := op.Stats()
				if st.Assembled != 10 || st.Aborted != 0 {
					t.Errorf("stats = %+v", st)
				}
				if st.Fetched != 40 {
					t.Errorf("Fetched = %d, want 40", st.Fetched)
				}
			})
		}
	}
}

func TestAssemblyOutputSetInvariantAcrossSchedulers(t *testing.T) {
	// Whatever the scheduler and window, the same set of complex
	// objects comes out, with identical structure.
	s, tmpl, roots := buildChainStore(t, 25)
	collect := func(opts Options) map[object.OID]string {
		out, _ := assembleAll(t, s, tmpl, roots, opts)
		m := map[object.OID]string{}
		for _, inst := range out {
			m[inst.OID()] = inst.String()
		}
		return m
	}
	ref := collect(Options{Window: 1, Scheduler: DepthFirst})
	for _, kind := range []SchedulerKind{DepthFirst, BreadthFirst, Elevator} {
		for _, w := range []int{1, 7, 25} {
			got := collect(Options{Window: w, Scheduler: kind})
			if len(got) != len(ref) {
				t.Fatalf("%v/w%d: %d objects, want %d", kind, w, len(got), len(ref))
			}
			for oid, want := range ref {
				if got[oid] != want {
					t.Errorf("%v/w%d: object %v differs:\n%s\nvs\n%s", kind, w, oid, got[oid], want)
				}
			}
		}
	}
}

func TestDepthFirstIsObjectAtATime(t *testing.T) {
	// With depth-first scheduling, complex objects must be emitted in
	// admission order, and each object's fetches must complete before
	// the next object's begin — "equivalent to object-at-a-time
	// assembly, regardless of window size".
	s, tmpl, roots := buildChainStore(t, 8)
	out, _ := assembleAll(t, s, tmpl, roots, Options{Window: 4, Scheduler: DepthFirst})
	for i, inst := range out {
		if inst.OID() != roots[i] {
			t.Errorf("emitted[%d] = %v, want %v (admission order)", i, inst.OID(), roots[i])
		}
	}
}

func TestPredicateAbort(t *testing.T) {
	s, tmpl, roots := buildChainStore(t, 20)
	// Leaf ints[0] is the tree index; keep only even trees.
	tmpl = tmpl.Clone()
	tmpl.FindByName("Leaf").Pred = expr.Func{
		Name: "even-tree",
		Fn:   func(o *object.Object) bool { return o.Ints[0]%2 == 0 },
		Sel:  0.5,
	}
	for _, kind := range []SchedulerKind{DepthFirst, Elevator} {
		out, op := assembleAll(t, s, tmpl, roots, Options{Window: 5, Scheduler: kind})
		if len(out) != 10 {
			t.Fatalf("%v: assembled %d, want 10", kind, len(out))
		}
		for _, inst := range out {
			if inst.ChildByName("Mid").ChildByName("Leaf").Object.Ints[0]%2 != 0 {
				t.Errorf("%v: odd tree survived the predicate", kind)
			}
			checkAssembled(t, s, inst)
		}
		st := op.Stats()
		if st.Aborted != 10 || st.PredicateFails != 10 {
			t.Errorf("%v: stats = %+v", kind, st)
		}
	}
}

func TestPredicateFirstFetchesFewer(t *testing.T) {
	// With the predicate on a sub-object and a selective query,
	// predicate-first scheduling should fetch fewer objects than the
	// naive depth-first order when the predicate node is visited late.
	s, tmpl, roots := buildChainStore(t, 40)
	tmpl = tmpl.Clone()
	// Predicate on the Right child (field 1, visited after the whole
	// Mid/Leaf subtree in depth-first order).
	tmpl.FindByName("Right").Pred = expr.Func{
		Name: "never",
		Fn:   func(o *object.Object) bool { return false },
		Sel:  0.01,
	}
	_, naive := assembleAll(t, s, tmpl, roots, Options{Window: 1, Scheduler: DepthFirst})
	_, smart := assembleAll(t, s, tmpl, roots, Options{Window: 1, Scheduler: DepthFirst, PredicateFirst: true})
	if naive.Stats().Fetched <= smart.Stats().Fetched {
		t.Errorf("predicate-first fetched %d, naive %d — expected savings",
			smart.Stats().Fetched, naive.Stats().Fetched)
	}
	// Every tree rejected either way.
	if naive.Stats().Assembled != 0 || smart.Stats().Assembled != 0 {
		t.Error("never-true predicate let objects through")
	}
	// Smart: root + right per tree = 2 fetches; naive: root, mid,
	// leaf, right = 4.
	if got := smart.Stats().Fetched; got != 80 {
		t.Errorf("predicate-first fetched %d, want 80", got)
	}
}

func TestRequiredNilAborts(t *testing.T) {
	d := disk.New(0)
	pool := buffer.New(d, 64, buffer.LRU)
	f, err := heap.Create(pool, 4)
	if err != nil {
		t.Fatal(err)
	}
	cat := object.NewCatalog()
	cls := cat.MustDefine(&object.Class{Name: "N", NumInts: 1, NumRefs: 1})
	s := object.NewStore(f, object.NewMapLocator(), cat)
	// Object 1 has a child, object 2 has a nil ref.
	child := &object.Object{OID: 10, Class: cls.ID, Ints: []int32{0}, Refs: []object.OID{0}}
	withChild := &object.Object{OID: 1, Class: cls.ID, Ints: []int32{1}, Refs: []object.OID{10}}
	without := &object.Object{OID: 2, Class: cls.ID, Ints: []int32{2}, Refs: []object.OID{0}}
	for _, o := range []*object.Object{child, withChild, without} {
		if _, err := s.Put(o); err != nil {
			t.Fatal(err)
		}
	}
	tmpl := &Template{Name: "N", Class: cls.ID, RefField: -1,
		Children: []*Template{{Name: "C", Class: cls.ID, RefField: 0, Required: true}}}
	out, op := assembleAll(t, s, tmpl, []object.OID{1, 2}, Options{Window: 2, Scheduler: Elevator})
	if len(out) != 1 || out[0].OID() != 1 {
		t.Fatalf("required-nil handling: %d objects", len(out))
	}
	if op.Stats().Aborted != 1 {
		t.Errorf("Aborted = %d, want 1", op.Stats().Aborted)
	}
	// Optional child: both assemble, one without the subtree.
	tmpl.Children[0].Required = false
	out, _ = assembleAll(t, s, tmpl, []object.OID{1, 2}, Options{Window: 2, Scheduler: Elevator})
	if len(out) != 2 {
		t.Fatalf("optional-nil: %d objects, want 2", len(out))
	}
	for _, inst := range out {
		if inst.OID() == 2 && inst.Children[0] != nil {
			t.Error("nil ref produced a child")
		}
	}
}

func TestDanglingReferenceError(t *testing.T) {
	s, tmpl, _ := buildChainStore(t, 1)
	op := New(oidSource([]object.OID{999}), s, tmpl, Options{})
	if _, err := volcano.Drain(op); err == nil {
		t.Error("dangling root reference did not error")
	}
}

func TestInvalidTemplateRejectedAtOpen(t *testing.T) {
	s, _, roots := buildChainStore(t, 1)
	bad := &Template{Name: "X", RefField: -1, Children: []*Template{
		{Name: "a", RefField: 0}, {Name: "b", RefField: 0}, // duplicate field
	}}
	op := New(oidSource(roots), s, bad, Options{})
	if err := op.Open(); err == nil {
		t.Error("duplicate ref field template accepted")
	}
	op2 := New(oidSource(roots), s, nil, Options{})
	if err := op2.Open(); err == nil {
		t.Error("nil template accepted")
	}
}

func TestClassMismatchError(t *testing.T) {
	s, tmpl, roots := buildChainStore(t, 1)
	bad := tmpl.Clone()
	bad.FindByName("Right").Class = 1 // Root class, but object is a Leaf
	op := New(oidSource(roots), s, bad, Options{})
	if _, err := volcano.Drain(op); err == nil {
		t.Error("class mismatch not detected")
	}
}

func TestRootObjectInput(t *testing.T) {
	// *object.Object roots skip the root fetch.
	s, tmpl, roots := buildChainStore(t, 3)
	var items []volcano.Item
	for _, r := range roots {
		o, err := s.Get(r)
		if err != nil {
			t.Fatal(err)
		}
		items = append(items, o)
	}
	op := New(volcano.NewSlice(items), s, tmpl, Options{Window: 2, Scheduler: Elevator})
	out, err := volcano.Drain(op)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 3 {
		t.Fatalf("assembled %d", len(out))
	}
	if got := op.Stats().Fetched; got != 9 { // 3 components per tree beyond the root
		t.Errorf("Fetched = %d, want 9", got)
	}
}

func TestPartiallyAssembledInput(t *testing.T) {
	// Assemble with a shallow template, then finish with the full one:
	// the second operator must only fetch the missing components.
	s, tmpl, roots := buildChainStore(t, 5)
	shallow := tmpl // full template tree; first pass assembles only Root+Right
	// Build partial instances by hand: root with Right resolved, Mid
	// subtree missing.
	var items []volcano.Item
	for _, r := range roots {
		rootObj, err := s.Get(r)
		if err != nil {
			t.Fatal(err)
		}
		rightObj, err := s.Get(rootObj.Refs[1])
		if err != nil {
			t.Fatal(err)
		}
		rootInst := &Instance{Object: rootObj, Node: shallow, Children: make([]*Instance, 2)}
		rightInst := &Instance{Object: rightObj, Node: shallow.Children[1], Parent: rootInst}
		rootInst.Children[1] = rightInst
		items = append(items, rootInst)
	}
	op := New(volcano.NewSlice(items), s, tmpl, Options{Window: 3, Scheduler: Elevator})
	out, err := volcano.Drain(op)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 5 {
		t.Fatalf("assembled %d", len(out))
	}
	for _, it := range out {
		checkAssembled(t, s, it.(*Instance))
	}
	// Only Mid and Leaf fetched per tree.
	if got := op.Stats().Fetched; got != 10 {
		t.Errorf("Fetched = %d, want 10", got)
	}
}

func TestWindowFootprintBounded(t *testing.T) {
	s, tmpl, roots := buildChainStore(t, 30)
	_, op1 := assembleAll(t, s, tmpl, roots, Options{Window: 1, Scheduler: Elevator})
	_, op8 := assembleAll(t, s, tmpl, roots, Options{Window: 8, Scheduler: Elevator})
	if op1.Stats().PeakWindowPgs > 4+1 {
		t.Errorf("window=1 peak footprint %d pages, want <= 5", op1.Stats().PeakWindowPgs)
	}
	if op8.Stats().PeakWindowPgs < op1.Stats().PeakWindowPgs {
		t.Errorf("larger window shrank footprint: %d < %d",
			op8.Stats().PeakWindowPgs, op1.Stats().PeakWindowPgs)
	}
}

func TestNextBeforeOpen(t *testing.T) {
	s, tmpl, roots := buildChainStore(t, 1)
	op := New(oidSource(roots), s, tmpl, Options{})
	if _, err := op.Next(); !errors.Is(err, volcano.ErrNotOpen) {
		t.Errorf("Next before Open err = %v", err)
	}
}

func TestEmptyInput(t *testing.T) {
	s, tmpl, _ := buildChainStore(t, 1)
	op := New(oidSource(nil), s, tmpl, Options{Window: 10})
	out, err := volcano.Drain(op)
	if err != nil || len(out) != 0 {
		t.Errorf("empty input = (%v, %v)", out, err)
	}
}

func TestNilRootSkipped(t *testing.T) {
	s, tmpl, roots := buildChainStore(t, 2)
	op := New(oidSource([]object.OID{roots[0], object.NilOID, roots[1]}), s, tmpl, Options{Window: 2})
	out, err := volcano.Drain(op)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 {
		t.Errorf("assembled %d, want 2 (nil root skipped)", len(out))
	}
}

func TestElevatorSeeksLessThanDepthFirstOnRandomLayout(t *testing.T) {
	// Scatter components across a large file so scheduling matters,
	// then compare seek totals: elevator with a window must beat
	// depth-first object-at-a-time.
	s, tmpl, roots := scatteredStore(t, 200)
	dev := s.File.Pool().Device()

	assembleAll(t, s, tmpl, roots, Options{Window: 1, Scheduler: DepthFirst})
	naive := dev.Stats().AvgSeekPerRead()

	if err := s.File.Pool().EvictAll(); err != nil {
		t.Fatal(err)
	}
	dev.ResetStats()
	assembleAll(t, s, tmpl, roots, Options{Window: 50, Scheduler: Elevator})
	elev := dev.Stats().AvgSeekPerRead()

	if elev >= naive {
		t.Errorf("elevator (%.1f) not better than object-at-a-time (%.1f)", elev, naive)
	}
	if elev > naive/2 {
		t.Errorf("elevator %.1f vs naive %.1f: expected at least 2x improvement on random layout", elev, naive)
	}
}

// scatteredStore builds complex objects whose components are spread
// pseudo-randomly over a wide extent.
func scatteredStore(t *testing.T, n int) (*object.Store, *Template, []object.OID) {
	t.Helper()
	d := disk.New(0)
	pool := buffer.New(d, 2048, buffer.LRU)
	pages := (4*n)/9 + 2
	f, err := heap.Create(pool, pages)
	if err != nil {
		t.Fatal(err)
	}
	cat := object.NewCatalog()
	cls := cat.MustDefine(&object.Class{Name: "N", NumInts: 1, NumRefs: 2})
	s := object.NewStore(f, object.NewMapLocator(), cat)

	// Pre-compute a scattered page permutation.
	perm := make([]int, 4*n)
	for i := range perm {
		perm[i] = (i * 2654435761) % pages
	}
	slot := 0
	place := func(o *object.Object) {
		for {
			if _, err := s.PutAt(o, perm[slot%len(perm)]); err == nil {
				slot++
				return
			}
			slot++
		}
	}
	var roots []object.OID
	oid := object.OID(1)
	for i := 0; i < n; i++ {
		l1 := &object.Object{OID: oid, Class: cls.ID, Ints: []int32{0}, Refs: make([]object.OID, 2)}
		oid++
		l2 := &object.Object{OID: oid, Class: cls.ID, Ints: []int32{0}, Refs: make([]object.OID, 2)}
		oid++
		r := &object.Object{OID: oid, Class: cls.ID, Ints: []int32{0}, Refs: []object.OID{l1.OID, l2.OID}}
		oid++
		place(l1)
		place(l2)
		place(r)
		roots = append(roots, r.OID)
	}
	tmpl := &Template{Name: "R", Class: cls.ID, RefField: -1, Children: []*Template{
		{Name: "L1", Class: cls.ID, RefField: 0, Required: true},
		{Name: "L2", Class: cls.ID, RefField: 1, Required: true},
	}}
	if err := pool.EvictAll(); err != nil {
		t.Fatal(err)
	}
	d.ResetStats()
	return s, tmpl, roots
}

func TestSchedulerUnits(t *testing.T) {
	mk := func(oid int, pg int, item *workItem) *Ref {
		return &Ref{OID: object.OID(oid), RID: heap.RID{Page: disk.PageID(pg)}, Item: item,
			Node: &Template{Name: "x"}}
	}
	t.Run("breadth-first FIFO", func(t *testing.T) {
		s := NewScheduler(BreadthFirst)
		it := &workItem{}
		s.Add(mk(1, 9, it), mk(2, 1, it), mk(3, 5, it))
		var got []object.OID
		for r := s.Next(0); r != nil; r = s.Next(0) {
			got = append(got, r.OID)
		}
		if fmt.Sprint(got) != "[oid:1 oid:2 oid:3]" {
			t.Errorf("FIFO order = %v", got)
		}
	})
	t.Run("elevator SCAN order", func(t *testing.T) {
		s := NewScheduler(Elevator)
		it := &workItem{}
		s.Add(mk(1, 50, it), mk(2, 10, it), mk(3, 90, it), mk(4, 30, it))
		head := disk.PageID(40)
		var pgs []disk.PageID
		for r := s.Next(head); r != nil; r = s.Next(head) {
			pgs = append(pgs, r.Page())
			head = r.Page()
		}
		// From 40 going up: 50, 90; reverse: 30, 10.
		want := []disk.PageID{50, 90, 30, 10}
		if fmt.Sprint(pgs) != fmt.Sprint(want) {
			t.Errorf("SCAN order = %v, want %v", pgs, want)
		}
	})
	t.Run("dead refs skipped", func(t *testing.T) {
		for _, kind := range []SchedulerKind{DepthFirst, BreadthFirst, Elevator} {
			s := NewScheduler(kind)
			live, dead := &workItem{}, &workItem{aborted: true}
			s.Add(mk(1, 5, dead), mk(2, 7, live), mk(3, 9, dead))
			r := s.Next(0)
			if r == nil || r.OID != 2 {
				t.Errorf("%v: got %v, want live ref 2", kind, r)
			}
			if s.Next(0) != nil {
				t.Errorf("%v: dead ref returned", kind)
			}
		}
	})
	t.Run("depth-first oldest item first", func(t *testing.T) {
		s := NewScheduler(DepthFirst)
		a, b := &workItem{}, &workItem{}
		s.Add(mk(1, 0, a))
		s.Add(mk(2, 0, b))
		s.Add(mk(3, 0, a), mk(4, 0, a)) // children of a, left-to-right
		var got []object.OID
		for r := s.Next(0); r != nil; r = s.Next(0) {
			got = append(got, r.OID)
		}
		// a's refs exhaust first (LIFO within a, batches in order),
		// then b's.
		if fmt.Sprint(got) != "[oid:3 oid:4 oid:1 oid:2]" {
			t.Errorf("depth-first order = %v", got)
		}
	})
}

func TestExpectedReferences(t *testing.T) {
	cases := map[float64]int{0.25: 4, 0.05: 20, 1: 1, 0: 1, -0.5: 1, 0.33: 3}
	for degree, want := range cases {
		if got := expectedReferences(degree); got != want {
			t.Errorf("expectedReferences(%v) = %d, want %d", degree, got, want)
		}
	}
}

func TestTemplateHelpers(t *testing.T) {
	tmpl := BinaryTreeTemplate(3, 0)
	if tmpl.Nodes() != 7 {
		t.Errorf("Nodes = %d, want 7", tmpl.Nodes())
	}
	if tmpl.Depth() != 3 {
		t.Errorf("Depth = %d, want 3", tmpl.Depth())
	}
	if tmpl.HasPredicates() {
		t.Error("fresh template has predicates")
	}
	cp := tmpl.Clone()
	cp.Children[0].Pred = expr.True{}
	if tmpl.HasPredicates() {
		t.Error("Clone aliases children")
	}
	if !cp.HasPredicates() {
		t.Error("clone lost predicate")
	}
	if err := tmpl.Validate(nil); err != nil {
		t.Errorf("Validate: %v", err)
	}
	if tmpl.FindByName("nope") != nil {
		t.Error("FindByName invented a node")
	}
	if tmpl.String() == "" {
		t.Error("String empty")
	}
}

func TestInstanceHelpers(t *testing.T) {
	s, tmpl, roots := buildChainStore(t, 1)
	out, _ := assembleAll(t, s, tmpl, roots, Options{})
	inst := out[0]
	if inst.Size() != 4 {
		t.Errorf("Size = %d", inst.Size())
	}
	if got := len(inst.Flatten()); got != 4 {
		t.Errorf("Flatten len = %d", got)
	}
	mid := inst.Child(0)
	if mid == nil || mid.Node.Name != "Mid" {
		t.Fatalf("Child(0) = %v", mid)
	}
	if mid.Parent != inst {
		t.Error("Parent pointer not set")
	}
	if inst.ChildByName("Right") == nil {
		t.Error("ChildByName failed")
	}
	if inst.ChildByName("absent") != nil {
		t.Error("ChildByName invented a child")
	}
	if !inst.Complete() {
		t.Error("emitted object reported incomplete")
	}
	var nilInst *Instance
	if nilInst.OID() != object.NilOID {
		t.Error("nil instance OID")
	}
	if nilInst.Complete() {
		t.Error("nil instance complete")
	}
}

func TestSortRootsHelperStability(t *testing.T) {
	// Emission order with elevator+window is data-dependent; verify we
	// can rely on the OID set instead.
	s, tmpl, roots := buildChainStore(t, 12)
	out, _ := assembleAll(t, s, tmpl, roots, Options{Window: 6, Scheduler: Elevator})
	var got []int
	for _, inst := range out {
		got = append(got, int(inst.OID()))
	}
	sort.Ints(got)
	var want []int
	for _, r := range roots {
		want = append(want, int(r))
	}
	sort.Ints(want)
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Errorf("emitted roots %v, want %v", got, want)
	}
}
