// Package assembly implements the paper's contribution: the assembly
// operator of the Volcano query processing system (Keller, Graefe,
// Maier, SIGMOD 1991). The operator translates a *set* of complex
// objects from their disk representation into a pointer-swizzled
// in-memory representation, working on a sliding window of W complex
// objects at once and choosing the next inter-object reference to
// resolve with a pluggable scheduling policy (depth-first =
// object-at-a-time, breadth-first, or elevator/SCAN by physical page).
//
// A Template (Section 5) drives the operator: it mirrors the structure
// of the complex objects, annotated with sharing statistics and
// predicates with selectivities. The component iterator interprets the
// template to decide which reference fields of a newly fetched object
// are unresolved references, when a complex object is complete, and
// when a predicate allows aborting early.
package assembly

import (
	"errors"
	"fmt"

	"revelation/internal/expr"
	"revelation/internal/object"
)

// Template is one node of the assembly template: the shape of the
// complex objects to assemble plus the statistical annotations of
// Section 5 (degree of sharing, predicates with selectivity).
type Template struct {
	// Name labels the node in plans and traces ("Person", "Residence").
	Name string
	// Class restricts the node to a class; zero accepts any class.
	Class object.ClassID
	// RefField is the reference slot of the *parent* object that leads
	// to this component. Ignored (and conventionally -1) on the root.
	RefField int
	// Required aborts the complex object when the parent's reference
	// is nil. Optional components simply stay absent.
	Required bool
	// Pred, when set, is evaluated as soon as the component is
	// fetched; failure aborts assembly of the whole complex object
	// (selective assembly, Section 6.5).
	Pred expr.Predicate
	// Shared marks a component that may be shared between complex
	// objects (Section 5: the template "indicates borders of shared
	// components").
	Shared bool
	// SharingDegree is the template's sharing statistic: the ratio of
	// shared objects to sharing objects (0.05 means 100 objects share
	// 5 sub-objects, i.e. each shared object serves ~20 references).
	SharingDegree float64
	// Children are the component's sub-components.
	Children []*Template
}

// Validate checks structural sanity: child reference fields must be
// distinct and non-negative, sharing degrees must lie in [0, 1], and —
// when a catalog is supplied — reference fields must exist on the
// node's class. It is called by the operator at Open.
func (t *Template) Validate(cat *object.Catalog) error {
	return t.validate(cat, true)
}

func (t *Template) validate(cat *object.Catalog, root bool) error {
	if t == nil {
		return errors.New("assembly: nil template node")
	}
	if t.SharingDegree < 0 || t.SharingDegree > 1 {
		return fmt.Errorf("assembly: node %q sharing degree %v outside [0,1]", t.Name, t.SharingDegree)
	}
	seen := map[int]bool{}
	for _, c := range t.Children {
		if c == nil {
			return fmt.Errorf("assembly: node %q has a nil child", t.Name)
		}
		if c.RefField < 0 {
			return fmt.Errorf("assembly: node %q child %q has negative ref field", t.Name, c.Name)
		}
		if seen[c.RefField] {
			return fmt.Errorf("assembly: node %q reuses ref field %d", t.Name, c.RefField)
		}
		seen[c.RefField] = true
		if cat != nil && t.Class != 0 {
			cls, ok := cat.ByID(t.Class)
			if !ok {
				return fmt.Errorf("assembly: node %q names unknown class %d", t.Name, t.Class)
			}
			if c.RefField >= cls.NumRefs {
				return fmt.Errorf("assembly: node %q (class %s) has no ref field %d", t.Name, cls.Name, c.RefField)
			}
		}
		if err := c.validate(cat, false); err != nil {
			return err
		}
	}
	return nil
}

// Nodes counts the template nodes (the component count of one fully
// present complex object).
func (t *Template) Nodes() int {
	n := 1
	for _, c := range t.Children {
		n += c.Nodes()
	}
	return n
}

// Depth returns the number of levels (1 for a leaf-only template).
func (t *Template) Depth() int {
	d := 0
	for _, c := range t.Children {
		if cd := c.Depth(); cd > d {
			d = cd
		}
	}
	return d + 1
}

// Walk visits every node depth-first, parents before children.
func (t *Template) Walk(fn func(node *Template, depth int)) {
	t.walk(fn, 0)
}

func (t *Template) walk(fn func(*Template, int), depth int) {
	fn(t, depth)
	for _, c := range t.Children {
		c.walk(fn, depth+1)
	}
}

// HasPredicates reports whether any node of the subtree carries a
// predicate.
func (t *Template) HasPredicates() bool {
	if t.Pred != nil {
		return true
	}
	for _, c := range t.Children {
		if c.HasPredicates() {
			return true
		}
	}
	return false
}

// subtreeRejectivity estimates the probability that the subtree rooted
// here rejects the complex object (used by the predicate-first
// scheduler): 1 - product of selectivities of all predicates below.
func (t *Template) subtreeRejectivity() float64 {
	pass := 1.0
	t.Walk(func(n *Template, _ int) {
		if n.Pred != nil {
			pass *= n.Pred.Selectivity()
		}
	})
	return 1 - pass
}

// String renders the template structure with annotations.
func (t *Template) String() string {
	out := ""
	t.Walk(func(n *Template, depth int) {
		for i := 0; i < depth; i++ {
			out += "  "
		}
		out += n.Name
		if n.Shared {
			out += fmt.Sprintf(" [shared %.2f]", n.SharingDegree)
		}
		if n.Pred != nil {
			out += fmt.Sprintf(" [pred %s sel=%.2f]", n.Pred, n.Pred.Selectivity())
		}
		out += "\n"
	})
	return out
}

// Clone deep-copies the template tree (predicates and statistics are
// copied by reference/value). Benchmarks clone a generator's template
// before attaching experiment-specific predicates.
func (t *Template) Clone() *Template {
	if t == nil {
		return nil
	}
	cp := *t
	cp.Children = make([]*Template, len(t.Children))
	for i, c := range t.Children {
		cp.Children[i] = c.Clone()
	}
	return &cp
}

// FindByName returns the first node with the given name, depth-first,
// or nil.
func (t *Template) FindByName(name string) *Template {
	var found *Template
	t.Walk(func(n *Template, _ int) {
		if found == nil && n.Name == name {
			found = n
		}
	})
	return found
}

// BinaryTreeTemplate builds the paper's benchmark template: a binary
// tree with the given number of levels (3 in Section 6), children on
// reference fields 0 and 1 of each object. Names follow the paper's
// figures (A for the root, then B, C, ...).
func BinaryTreeTemplate(levels int, class object.ClassID) *Template {
	counter := 0
	var build func(level int) *Template
	build = func(level int) *Template {
		name := string(rune('A' + counter%26))
		counter++
		n := &Template{Name: name, Class: class, RefField: -1, Required: true}
		if level < levels {
			for f := 0; f < 2; f++ {
				c := build(level + 1)
				c.RefField = f
				n.Children = append(n.Children, c)
			}
		}
		return n
	}
	return build(1)
}
