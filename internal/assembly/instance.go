package assembly

import (
	"fmt"

	"revelation/internal/disk"
	"revelation/internal/object"
)

// Instance is one assembled component of a complex object: the decoded
// storage object plus swizzled child pointers. Once the assembly
// operator emits a complex object, scanning it "is reduced to following
// memory pointers" (Section 4) — no OID-to-address table is consulted.
type Instance struct {
	// Object is the decoded storage-layer object.
	Object *object.Object
	// Node is the template node this component instantiates.
	Node *Template
	// Children are the swizzled sub-components, parallel to
	// Node.Children. A nil entry means the reference was the nil OID
	// (optional component absent).
	Children []*Instance
	// Parent is the first parent this instance was linked under; a
	// shared instance can be reachable from several complex objects.
	Parent *Instance
	// refs counts how many parents currently link the instance
	// (reference counting for shared components, Section 5).
	refs int
	// page records which device page the object was fetched from, for
	// buffer hints and window-footprint accounting.
	page disk.PageID
	// pendingDesc counts unresolved references anywhere in the
	// subtree; a shared subtree enters the window-wide shared table
	// when this returns to zero.
	pendingDesc int
	// registered marks instances already placed in the shared table.
	registered bool
}

// OID is a shorthand for the instance's object identifier.
func (in *Instance) OID() object.OID {
	if in == nil || in.Object == nil {
		return object.NilOID
	}
	return in.Object.OID
}

// RefCount reports the number of parents linking this instance.
func (in *Instance) RefCount() int { return in.refs }

// Child returns the sub-instance assembled for the given reference
// field of this instance's object, or nil.
func (in *Instance) Child(refField int) *Instance {
	for i, c := range in.Node.Children {
		if c.RefField == refField {
			return in.Children[i]
		}
	}
	return nil
}

// ChildByName returns the sub-instance for the template child with the
// given name, or nil.
func (in *Instance) ChildByName(name string) *Instance {
	for i, c := range in.Node.Children {
		if c.Name == name {
			return in.Children[i]
		}
	}
	return nil
}

// Walk visits the instance tree depth-first, parents before children.
// Shared sub-instances reachable twice are visited each time they are
// reached (the traversal mirrors the complex object's structure, not
// the object graph's identity).
func (in *Instance) Walk(fn func(*Instance)) {
	if in == nil {
		return
	}
	fn(in)
	for _, c := range in.Children {
		c.Walk(fn)
	}
}

// Flatten returns every non-nil instance in the tree, depth-first.
func (in *Instance) Flatten() []*Instance {
	var out []*Instance
	in.Walk(func(i *Instance) { out = append(out, i) })
	return out
}

// Size counts the non-nil components of the complex object.
func (in *Instance) Size() int {
	n := 0
	in.Walk(func(*Instance) { n++ })
	return n
}

// Complete reports whether every required template child has been
// assembled throughout the tree.
func (in *Instance) Complete() bool {
	if in == nil {
		return false
	}
	complete := true
	in.Walk(func(i *Instance) {
		for ci, ct := range i.Node.Children {
			child := i.Children[ci]
			if child == nil {
				if ct.Required && ci < len(i.Object.Refs) && !i.Object.Refs[ct.RefField].IsNil() {
					complete = false
				}
				continue
			}
		}
	})
	return complete
}

// String renders the assembled tree for debugging.
func (in *Instance) String() string {
	var render func(i *Instance, depth int) string
	render = func(i *Instance, depth int) string {
		out := ""
		for d := 0; d < depth; d++ {
			out += "  "
		}
		if i == nil {
			return out + "-\n"
		}
		out += fmt.Sprintf("%s %v\n", i.Node.Name, i.Object.OID)
		for _, c := range i.Children {
			out += render(c, depth+1)
		}
		return out
	}
	return render(in, 0)
}

// PartialRoot is the input item for stacked assembly (Fig. 17): the
// OID of a complex object's root plus sub-objects a previous assembly
// operator already assembled, keyed by their OIDs. When the downstream
// operator resolves a reference whose target appears in Sub, it links
// the pre-assembled instance instead of fetching, and only that
// instance's unresolved frontier (if any) is scheduled.
type PartialRoot struct {
	Root object.OID
	Sub  map[object.OID]*Instance
}
