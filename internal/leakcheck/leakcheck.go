// Package leakcheck is a minimal goroutine-leak detector for tests:
// snapshot the goroutine count before the work under test, then assert
// it drains back afterwards. Producer and server teardown is
// asynchronous with the call that triggers it, so the check polls with
// a deadline instead of sampling once.
//
// It deliberately counts goroutines rather than diffing stacks: the
// suites that use it (exchange shutdown, query cancellation chaos)
// start from a quiescent baseline, and a count that refuses to drop is
// exactly the failure the lifecycle machinery exists to prevent.
package leakcheck

import (
	"runtime"
	"testing"
	"time"
)

// Snapshot returns the current goroutine count. Take it before
// starting the workload whose goroutines must drain.
func Snapshot() int { return runtime.NumGoroutine() }

// Check polls until the goroutine count is back to at most before, and
// fails the test with a full stack dump if it has not drained within
// five seconds.
func Check(t testing.TB, before int) {
	t.Helper()
	CheckWithin(t, before, 5*time.Second)
}

// CheckWithin is Check with an explicit drain deadline.
func CheckWithin(t testing.TB, before int, within time.Duration) {
	t.Helper()
	deadline := time.Now().Add(within)
	for {
		runtime.GC()
		n := runtime.NumGoroutine()
		if n <= before {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			buf = buf[:runtime.Stack(buf, true)]
			t.Fatalf("leakcheck: goroutines did not drain: %d > %d\n%s", n, before, buf)
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
}
