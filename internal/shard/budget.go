package shard

import (
	"context"
	"sync/atomic"
)

// Budget is a per-query retry allowance shared across shards. Every
// router-level retry — wherever it lands — draws one token, so a
// single flaky shard exhausts the query's patience instead of
// multiplying its own per-read retries while healthy shards wait.
// The zero Budget is empty; use NewBudget.
type Budget struct {
	left atomic.Int64
	used atomic.Int64
}

// NewBudget builds a budget of n retries. n < 0 means unlimited.
func NewBudget(n int) *Budget {
	b := &Budget{}
	if n < 0 {
		n = 1 << 40
	}
	b.left.Store(int64(n))
	return b
}

// Take consumes one retry token, reporting false when the budget is
// exhausted. Safe for concurrent use by per-shard fetchers.
func (b *Budget) Take() bool {
	for {
		n := b.left.Load()
		if n <= 0 {
			return false
		}
		if b.left.CompareAndSwap(n, n-1) {
			b.used.Add(1)
			return true
		}
	}
}

// Remaining returns the tokens left.
func (b *Budget) Remaining() int64 { return b.left.Load() }

// Used returns the tokens consumed so far.
func (b *Budget) Used() int64 { return b.used.Load() }

type budgetKey struct{}

// WithBudget attaches a retry budget to the query context. The router
// consults it on every retry; layers in between (pool, store,
// operator) pass the context through untouched.
func WithBudget(ctx context.Context, b *Budget) context.Context {
	return context.WithValue(ctx, budgetKey{}, b)
}

// BudgetFrom extracts the query's retry budget, or nil when the
// context carries none (retries then fall back to the router's own
// per-read policy bounds).
func BudgetFrom(ctx context.Context) *Budget {
	b, _ := ctx.Value(budgetKey{}).(*Budget)
	return b
}
