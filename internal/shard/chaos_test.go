package shard

import (
	"context"
	"fmt"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"revelation/internal/assembly"
	"revelation/internal/bench"
	"revelation/internal/disk"
	"revelation/internal/gen"
	"revelation/internal/leakcheck"
	"revelation/internal/metrics"
	"revelation/internal/object"
	"revelation/internal/pagesvc"
	"revelation/internal/qtrace"
	"revelation/internal/trace"
	"revelation/internal/volcano"
	"revelation/internal/wal"
)

// render flattens an assembled instance into a canonical string so two
// runs can be compared for exact equality.
func render(in *assembly.Instance) string {
	out := fmt.Sprintf("%d(", uint64(in.OID()))
	for _, c := range in.Children {
		if c == nil {
			out += "-,"
			continue
		}
		out += render(c) + ","
	}
	return out + ")"
}

func rootsIter(roots []object.OID) volcano.Iterator {
	items := make([]volcano.Item, len(roots))
	for i, r := range roots {
		items[i] = r
	}
	return volcano.NewSlice(items)
}

// copyPages base-backs-up src onto dst.
func copyPages(t *testing.T, src, dst disk.Device) {
	t.Helper()
	if n := src.NumPages() - dst.NumPages(); n > 0 {
		if _, err := dst.Allocate(n); err != nil {
			t.Fatal(err)
		}
	}
	buf := make([]byte, src.PageSize())
	for p := 0; p < src.NumPages(); p++ {
		if err := src.ReadPage(disk.PageID(p), buf); err != nil {
			t.Fatal(err)
		}
		if err := dst.WritePage(disk.PageID(p), buf); err != nil {
			t.Fatal(err)
		}
	}
}

// waitApplied blocks until the replica has applied at least lsn.
func waitApplied(t *testing.T, r *pagesvc.Replica, lsn uint64) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for r.AppliedLSN() < lsn {
		if time.Now().After(deadline) {
			t.Fatalf("replica stuck at LSN %d, want >= %d", r.AppliedLSN(), lsn)
		}
		time.Sleep(200 * time.Microsecond)
	}
}

// oracleRenders assembles the database locally, fault-free, and returns
// the canonical rendering of every complex object.
func oracleRenders(t *testing.T, db *gen.Database) map[object.OID]string {
	t.Helper()
	op := assembly.New(rootsIter(db.Roots), db.Store, db.Template,
		assembly.Options{Window: 8, Scheduler: assembly.Elevator})
	items, err := volcano.Drain(op)
	if err != nil {
		t.Fatal(err)
	}
	oracle := map[object.OID]string{}
	for _, it := range items {
		inst := it.(*assembly.Instance)
		oracle[inst.OID()] = render(inst)
	}
	return oracle
}

// TestShardChaosKillPrimaryMidQuery is the tentpole acceptance test: an
// assembly query runs over a three-shard page-service fleet with the
// per-shard elevator and shard prefetch, and one shard's primary is
// killed mid-query. The victim's breaker must open, its reads must fail
// over to the WAL-shipped replica under the LSN floor, and the query
// must finish byte-identical to the fault-free oracle with the shard
// counters, the metrics registry, the query trace, and the event-trace
// replay all in agreement — and no goroutine or pin leaks.
func TestShardChaosKillPrimaryMidQuery(t *testing.T) {
	before := leakcheck.Snapshot()

	db, err := gen.Build(gen.Config{
		NumComplexObjects: 150,
		Clustering:        gen.Unclustered,
		Seed:              2026,
	})
	if err != nil {
		t.Fatal(err)
	}
	oracle := oracleRenders(t, db)
	manifest := filepath.Join(t.TempDir(), "manifest")
	if err := db.SaveManifest(manifest); err != nil {
		t.Fatal(err)
	}
	if err := db.Pool.FlushAll(); err != nil {
		t.Fatal(err)
	}

	// Three primaries, each base-backed-up with the full page space;
	// shard 0 (the victim) also ships a WAL to a replica.
	const fleet = 3
	const victim = 0
	var srvs [fleet]*pagesvc.Server
	var addrs [fleet]string
	for i := 0; i < fleet; i++ {
		data := disk.New(0)
		copyPages(t, db.Device, data)
		devs := []disk.Device{data}
		if i == victim {
			devs = append(devs, disk.New(0)) // WAL device
		}
		srvs[i] = pagesvc.NewServer(devs, pagesvc.ServerConfig{})
		addr, err := srvs[i].Listen("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		defer srvs[i].Close()
		addrs[i] = addr
	}
	replData := disk.New(0)
	copyPages(t, db.Device, replData)
	repl := pagesvc.NewReplica(replData, pagesvc.ReplicaConfig{Primary: addrs[victim], WALDev: pagesvc.WALDev})
	replSrv := pagesvc.NewServer([]disk.Device{replData}, pagesvc.ServerConfig{AppliedLSN: repl.AppliedLSN})
	replAddr, err := replSrv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer replSrv.Close()
	replDone := repl.Start()
	var stopOnce sync.Once
	stopRepl := func() {
		stopOnce.Do(func() {
			repl.Close()
			<-replDone
		})
	}
	defer stopRepl()

	// The compute node: WAL writer on the victim's WAL device, member
	// clients with a single attempt each — failover policy lives in the
	// router, so errors must surface to it, not be retried below it.
	retry := disk.RetryPolicy{MaxAttempts: 6, BaseBackoff: time.Millisecond, MaxBackoff: 20 * time.Millisecond}
	walClient, err := pagesvc.Dial(pagesvc.ClientConfig{Primary: addrs[victim], Dev: pagesvc.WALDev, Retry: retry})
	if err != nil {
		t.Fatal(err)
	}
	netWAL, err := wal.Open(walClient)
	if err != nil {
		t.Fatal(err)
	}

	reg := metrics.NewRegistry()
	col := trace.NewCollector()
	tr := trace.New(col)
	var members [fleet]Member
	for i := 0; i < fleet; i++ {
		c, err := pagesvc.Dial(pagesvc.ClientConfig{
			Primary:  addrs[i],
			Dev:      pagesvc.DataDev,
			Retry:    disk.RetryPolicy{MaxAttempts: 1},
			Timeout:  time.Second,
			Tracer:   tr,
			Registry: reg,
			Label:    fmt.Sprintf("net-s%d", i),
		})
		if err != nil {
			t.Fatal(err)
		}
		members[i] = Member{Name: fmt.Sprintf("s%d", i), Primary: c}
	}
	replClient, err := pagesvc.Dial(pagesvc.ClientConfig{
		Primary:  replAddr,
		Dev:      pagesvc.DataDev,
		Retry:    disk.RetryPolicy{MaxAttempts: 1},
		Timeout:  time.Second,
		Tracer:   tr,
		Registry: reg,
		Label:    fmt.Sprintf("net-s%dr", victim),
	})
	if err != nil {
		t.Fatal(err)
	}
	members[victim].Replica = replClient
	members[victim].AppliedLSN = func() uint64 {
		lsn, err := replClient.AppliedLSN()
		if err != nil {
			return 0
		}
		return lsn
	}
	router, err := New(Config{
		Members: members[:],
		Breaker: BreakerConfig{
			FailureThreshold:  2,
			OpenTimeout:       50 * time.Millisecond,
			HalfOpenSuccesses: 1,
		},
		Retry:    retry,
		LSNFloor: netWAL.DurableLSN,
		Tracer:   tr,
		Registry: reg,
	})
	if err != nil {
		t.Fatal(err)
	}

	mp, err := gen.LoadManifest(manifest)
	if err != nil {
		t.Fatal(err)
	}
	netDB, err := gen.OpenDatabaseOn(router, mp, 64)
	if err != nil {
		t.Fatal(err)
	}
	netDB.Pool.SetWAL(netWAL)
	netDB.Pool.SetRetry(retry)

	// Dirty one page through the WAL so the durable LSN — the failover
	// staleness floor — is nonzero, and wait for the replica to prove it
	// has caught up past it.
	f, err := netDB.Pool.Fix(disk.PageID(0))
	if err != nil {
		t.Fatal(err)
	}
	if err := netDB.Pool.Unfix(f, true); err != nil {
		t.Fatal(err)
	}
	if err := netDB.Pool.FlushAll(); err != nil {
		t.Fatal(err)
	}
	if netWAL.DurableLSN() == 0 {
		t.Fatal("durable LSN still zero after a flush")
	}
	waitApplied(t, repl, netWAL.DurableLSN())

	// Bracket the run (cold pool, counter snapshots, tracer attach) and
	// open a query trace carrying a retry budget.
	meas, err := bench.StartMeasurement("shard-chaos", 8, router, netDB.Pool, tr)
	if err != nil {
		t.Fatal(err)
	}
	qcol := qtrace.NewCollector(8)
	qt, root := qcol.Begin("shard-chaos")
	budget := NewBudget(256)
	ctx := WithBudget(qtrace.With(context.Background(), root), budget)

	// Kill the victim once the query is demonstrably under way there.
	victimDev := members[victim].Primary
	baseReads := victimDev.Stats().Reads
	killed := make(chan struct{})
	go func() {
		defer close(killed)
		deadline := time.Now().Add(10 * time.Second)
		for victimDev.Stats().Reads-baseReads < 15 {
			if time.Now().After(deadline) {
				return
			}
			time.Sleep(100 * time.Microsecond)
		}
		srvs[victim].Close()
	}()

	op := assembly.New(rootsIter(netDB.Roots), netDB.Store, netDB.Template, assembly.Options{
		Window:          8,
		CustomScheduler: assembly.NewShardElevator(router.Shards(), router.ShardOf),
		ShardPrefetch:   true,
		FaultPolicy:     assembly.RetryFaults,
		Tracer:          tr,
	})
	op.BindContext(ctx)
	items, err := volcano.Drain(op)
	<-killed
	if err != nil {
		t.Fatalf("query did not survive the shard's death: %v", err)
	}
	m := meas.End(op.Stats())
	qcol.Finish(qt, "ok", nil)

	// Byte-identical to the fault-free oracle, nothing lost.
	if len(items) != len(oracle) {
		t.Fatalf("assembled %d complex objects, oracle has %d", len(items), len(oracle))
	}
	for _, it := range items {
		inst := it.(*assembly.Instance)
		want, ok := oracle[inst.OID()]
		if !ok {
			t.Fatalf("assembled unknown root %v", inst.OID())
		}
		if got := render(inst); got != want {
			t.Errorf("root %v diverges from oracle:\n got %s\nwant %s", inst.OID(), got, want)
		}
	}

	// The victim demonstrably broke and failed over; the healthy shards
	// never ran degraded.
	if got := router.Trips(victim); got < 1 {
		t.Errorf("victim breaker trips = %d, want >= 1", got)
	}
	if got := router.DegradedReads(victim); got < 1 {
		t.Errorf("victim degraded reads = %d, want >= 1", got)
	}
	for i := 0; i < fleet; i++ {
		if i == victim {
			continue
		}
		if got := router.DegradedReads(i); got != 0 {
			t.Errorf("healthy shard %d ran %d degraded reads, want 0", i, got)
		}
	}

	// Agreement, leg 1 — the query trace: total span reads equal the
	// bracketed device delta, degraded-read attribution equals the
	// router's own books, and every shard lane span did real work.
	tot := qcol.TotalAll()
	if tot.Reads != m.Dev.Reads {
		t.Errorf("query-trace reads %d != bracketed device reads %d", tot.Reads, m.Dev.Reads)
	}
	var degraded int64
	for i := 0; i < fleet; i++ {
		degraded += router.DegradedReads(i)
	}
	if tot.DegradedReads != degraded {
		t.Errorf("query-trace degraded reads %d != router degraded reads %d", tot.DegradedReads, degraded)
	}
	var laneReads int64
	for i := 0; i < fleet; i++ {
		found := false
		for _, sp := range qt.Spans() {
			if sp.Layer() == qtrace.LayerAssembly && sp.Name() == fmt.Sprintf("shard%d", i) {
				found = true
				laneReads += sp.Counters().Reads
				if sp.Counters().Reads == 0 {
					t.Errorf("lane span shard%d charged no reads", i)
				}
			}
		}
		if !found {
			t.Errorf("no lane span for shard %d", i)
		}
	}
	if laneReads > tot.Reads {
		t.Errorf("lane spans charge %d reads, more than the query total %d", laneReads, tot.Reads)
	}

	// Leg 2 — the metrics registry: the per-shard scrape series agree
	// with the router's accessors (trips cross-checks two independent
	// cells: the breaker's own count and the OnTrip-hooked counter).
	snap := reg.Snapshot()
	for i := 0; i < fleet; i++ {
		name := router.MemberName(i)
		if got := snap.Value("asm_shard_degraded_reads_total", "shard", name); got != router.DegradedReads(i) {
			t.Errorf("registry degraded reads for %s = %d, router says %d", name, got, router.DegradedReads(i))
		}
		if got := snap.Value("asm_shard_breaker_trips_total", "shard", name); got != router.Trips(i) {
			t.Errorf("registry trips for %s = %d, breaker says %d", name, got, router.Trips(i))
		}
	}
	if got := snap.Sum("asm_shard_budget_exhausted_total"); got != 0 {
		t.Errorf("budget exhausted %d times under a generous budget, want 0", got)
	}

	// Leg 3 — the event-trace replay: the bracketed run reconstructs to
	// exactly the harness-reported counters, the failover edge is in the
	// stream, and the net-layer replay matches the registry's scrape.
	runs := trace.SplitRuns(col.Events())
	verified := false
	for _, run := range runs {
		if run.Name != "shard-chaos" {
			continue
		}
		verified = true
		rep, err := run.Verify()
		if err != nil {
			t.Errorf("trace replay: %v", err)
		}
		if rep.Failovers < 1 {
			t.Errorf("replay failovers = %d, want >= 1", rep.Failovers)
		}
	}
	if !verified {
		t.Error("no shard-chaos run in the trace")
	}
	full := trace.ReplayEvents(col.Events())
	if got := snap.Sum("asm_net_sends_total"); got != full.NetSends {
		t.Errorf("registry sends %d != replayed sends %d", got, full.NetSends)
	}
	if got := snap.Sum("asm_net_recvs_total"); got != full.NetRecvs {
		t.Errorf("registry recvs %d != replayed recvs %d", got, full.NetRecvs)
	}

	// Books at zero: no pinned frames, no goroutine leaks.
	if got := netDB.Pool.PinnedFrames(); got != 0 {
		t.Errorf("pinned frames after query = %d, want 0", got)
	}
	walClient.Close()
	router.Close()
	stopRepl()
	replSrv.Close()
	for i := 0; i < fleet; i++ {
		srvs[i].Close()
	}
	leakcheck.CheckWithin(t, before, 5*time.Second)
}

// TestShardNoReplicaSkipObjectPoisonedSet kills a replica-less shard
// before the query runs: under SkipObject the query must complete
// partial, quarantining exactly the complex objects with a component on
// the dead shard — predicted up front from the generator's page map and
// the router's own assignment — and assembling every other object
// byte-identical to the oracle.
func TestShardNoReplicaSkipObjectPoisonedSet(t *testing.T) {
	db, err := gen.Build(gen.Config{
		NumComplexObjects: 120,
		Clustering:        gen.IntraObject,
		Seed:              777,
	})
	if err != nil {
		t.Fatal(err)
	}
	oracle := oracleRenders(t, db)
	comp, err := db.ComponentPages()
	if err != nil {
		t.Fatal(err)
	}
	manifest := filepath.Join(t.TempDir(), "manifest")
	if err := db.SaveManifest(manifest); err != nil {
		t.Fatal(err)
	}
	if err := db.Pool.FlushAll(); err != nil {
		t.Fatal(err)
	}

	// A local fleet: three fault-injectable members, no replicas.
	const fleet = 3
	const victim = 0
	reg := metrics.NewRegistry()
	var faulty [fleet]*disk.Faulty
	var members [fleet]Member
	for i := 0; i < fleet; i++ {
		data := disk.New(0)
		copyPages(t, db.Device, data)
		faulty[i] = disk.NewFaulty(data, disk.FaultConfig{})
		members[i] = Member{Name: fmt.Sprintf("s%d", i), Primary: faulty[i]}
	}
	router, err := New(Config{
		Members: members[:],
		Breaker: BreakerConfig{
			FailureThreshold:  2,
			OpenTimeout:       10 * time.Millisecond,
			HalfOpenSuccesses: 1,
		},
		Retry:    disk.RetryPolicy{MaxAttempts: 2, BaseBackoff: 50 * time.Microsecond, MaxBackoff: 200 * time.Microsecond},
		Registry: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer router.Close()

	// The poisoned set, predicted before anything fails: every root with
	// a component page owned by the victim.
	poisoned := map[object.OID]bool{}
	for root, pages := range comp {
		for _, p := range pages {
			if router.ShardOf(p) == victim {
				poisoned[root] = true
				break
			}
		}
	}
	if len(poisoned) == 0 || len(poisoned) == len(oracle) {
		t.Fatalf("degenerate poisoned set: %d of %d objects", len(poisoned), len(oracle))
	}

	mp, err := gen.LoadManifest(manifest)
	if err != nil {
		t.Fatal(err)
	}
	netDB, err := gen.OpenDatabaseOn(router, mp, 64)
	if err != nil {
		t.Fatal(err)
	}

	// Kill the victim before the query: every read of its pages fails
	// transiently, forever, and nothing is cached.
	faulty[victim].SetConfig(disk.FaultConfig{Seed: 3, TransientRate: 1, TransientFailures: 1 << 30})
	if err := netDB.Pool.EvictAll(); err != nil {
		t.Fatal(err)
	}

	// A deliberately tiny budget: the first few poisoned accesses spend
	// it on retries, the rest surface immediately — either way SkipObject
	// quarantines, and the partial result below proves the outcome is
	// identical.
	qcol := qtrace.NewCollector(8)
	qt, root := qcol.Begin("shard-skip")
	budget := NewBudget(8)
	ctx := WithBudget(qtrace.With(context.Background(), root), budget)

	op := assembly.New(rootsIter(netDB.Roots), netDB.Store, netDB.Template, assembly.Options{
		Window:          8,
		CustomScheduler: assembly.NewShardElevator(router.Shards(), router.ShardOf),
		ShardPrefetch:   true,
		FaultPolicy:     assembly.SkipObject,
	})
	op.BindContext(ctx)
	items, err := volcano.Drain(op)
	if err != nil {
		t.Fatalf("partial query failed outright: %v", err)
	}
	qcol.Finish(qt, "ok", nil)

	// Exactly the predicted survivors, each byte-identical to the
	// oracle.
	got := map[object.OID]string{}
	for _, it := range items {
		inst := it.(*assembly.Instance)
		got[inst.OID()] = render(inst)
	}
	for oid, want := range oracle {
		if poisoned[oid] {
			if _, ok := got[oid]; ok {
				t.Errorf("root %v has a component on the dead shard but was emitted", oid)
			}
			continue
		}
		if g, ok := got[oid]; !ok {
			t.Errorf("root %v lost: no component on the dead shard, not emitted", oid)
		} else if g != want {
			t.Errorf("root %v diverges from oracle:\n got %s\nwant %s", oid, g, want)
		}
	}
	if len(got) != len(oracle)-len(poisoned) {
		t.Errorf("emitted %d objects, want %d (%d oracle - %d poisoned)",
			len(got), len(oracle)-len(poisoned), len(oracle), len(poisoned))
	}
	st := op.Stats()
	if st.Skipped != len(poisoned) {
		t.Errorf("Stats.Skipped = %d, want %d", st.Skipped, len(poisoned))
	}

	// The degraded plumbing fired: breaker opened, degraded reads were
	// refused (no replica), the tiny budget ran dry, and the query trace
	// agrees with the router's books.
	if got := router.Trips(victim); got < 1 {
		t.Errorf("victim trips = %d, want >= 1", got)
	}
	if got := router.DegradedReads(victim); got < 1 {
		t.Errorf("victim degraded reads = %d, want >= 1", got)
	}
	if got := budget.Remaining(); got != 0 {
		t.Errorf("budget remaining = %d, want 0", got)
	}
	snap := reg.Snapshot()
	if got := snap.Sum("asm_shard_budget_exhausted_total"); got < 1 {
		t.Errorf("budget exhaustions = %d, want >= 1", got)
	}
	var degraded int64
	for i := 0; i < fleet; i++ {
		degraded += router.DegradedReads(i)
	}
	if tot := qcol.TotalAll(); tot.DegradedReads != degraded {
		t.Errorf("query-trace degraded reads %d != router degraded reads %d", tot.DegradedReads, degraded)
	}
}
