package shard

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"revelation/internal/disk"
	"revelation/internal/metrics"
	"revelation/internal/qtrace"
	"revelation/internal/trace"
)

// ErrShardDown marks a read or write that failed because its shard's
// circuit breaker is open and no fresh replica could serve it. It
// always travels wrapped together with disk.ErrTransient: the shard
// may come back, so RetryFaults-style callers keep the query alive
// across half-open probes while SkipObject callers quarantine.
var ErrShardDown = errors.New("shard: shard down")

// Member is one shard of the fleet: a primary device (typically a
// pagesvc.Client pointed at one asmpaged primary) plus an optional
// read-only replica for breaker-aware failover.
type Member struct {
	// Name is the shard's stable identity — the rendezvous hash input.
	// Two fleets listing the same names in any order route every page
	// identically. Typically the primary's address.
	Name string
	// Primary serves reads and all writes.
	Primary disk.Device
	// Replica, when non-nil, serves reads while the primary's breaker
	// is open (and as the same-attempt fallback when the primary fails
	// transiently).
	Replica disk.Device
	// AppliedLSN, when non-nil, reports the replica's replication
	// progress for the staleness guard; nil means always fresh.
	AppliedLSN func() uint64
}

// Config tunes a Router.
type Config struct {
	// Members are the shards. At least one is required.
	Members []Member
	// Breaker configures every shard's circuit breaker.
	Breaker BreakerConfig
	// Retry bounds the router's per-access attempts and paces them.
	// The zero policy means disk.DefaultRetryPolicy. Each retry beyond
	// the first attempt also draws from the query's Budget when the
	// context carries one; an exhausted budget stops retrying
	// immediately.
	Retry disk.RetryPolicy
	// LSNFloor, when set, is the replica staleness guard: a replica
	// whose AppliedLSN is below the floor is not eligible to serve
	// degraded reads. Wire it to the local wal.Writer's DurableLSN.
	LSNFloor func() uint64
	// Tracer receives net-layer failover events when a shard enters or
	// leaves degraded mode; nil disables them.
	Tracer *trace.Tracer
	// Registry, when set, receives asm_shard_* counters.
	Registry *metrics.Registry
}

// shardState is the router's per-shard health bookkeeping.
type shardState struct {
	breaker *Breaker
	// degraded marks an ongoing degraded episode (replica serving or
	// shard unreachable); the edge into it emits one failover event.
	degraded bool

	degradedReads metrics.Counter
	trips         metrics.Counter
}

// Router implements disk.Device over a fleet of shards with
// deterministic rendezvous routing: page p lives on the member whose
// hash(name, p) is highest. The assignment is a pure function of the
// member-name set — independent of slice order and of request history
// — and adding or removing a member moves only the pages whose argmax
// changes (≈ 1/N of the keys).
type Router struct {
	cfg      Config
	members  []Member
	nameSeed []uint64 // per-member hash of Name, precomputed
	shards   []shardState
	retry    disk.RetryPolicy

	mu     sync.Mutex
	size   int
	last   disk.PageID // last global page touched, for Head()
	closed bool

	retries         metrics.Counter
	budgetExhausted metrics.Counter
}

// New builds a router over the given members. All member devices must
// share a page size; each must already cover (or be growable to) the
// full global page space — the router grows them in lockstep on
// Allocate. The initial size is the smallest member size, so opening
// over an existing fleet sees every commonly covered page.
func New(cfg Config) (*Router, error) {
	if len(cfg.Members) == 0 {
		return nil, fmt.Errorf("shard: router needs at least one member")
	}
	ps := cfg.Members[0].Primary.PageSize()
	seen := map[string]bool{}
	for _, m := range cfg.Members {
		if m.Name == "" {
			return nil, fmt.Errorf("shard: member needs a name (the hash identity)")
		}
		if seen[m.Name] {
			return nil, fmt.Errorf("shard: duplicate member name %q", m.Name)
		}
		seen[m.Name] = true
		if m.Primary == nil {
			return nil, fmt.Errorf("shard: member %q has no primary device", m.Name)
		}
		if m.Primary.PageSize() != ps {
			return nil, fmt.Errorf("shard: members disagree on page size")
		}
		if m.Replica != nil && m.Replica.PageSize() != ps {
			return nil, fmt.Errorf("shard: member %q replica disagrees on page size", m.Name)
		}
	}
	retry := cfg.Retry
	if retry.MaxAttempts == 0 {
		retry = disk.DefaultRetryPolicy
	}
	r := &Router{cfg: cfg, members: cfg.Members, retry: retry}
	r.shards = make([]shardState, len(cfg.Members))
	size := cfg.Members[0].Primary.NumPages()
	for i, m := range cfg.Members {
		r.nameSeed = append(r.nameSeed, hashName(m.Name))
		bcfg := cfg.Breaker
		trips := &r.shards[i].trips
		bcfg.OnTrip = func() { trips.Inc() }
		r.shards[i].breaker = NewBreaker(bcfg)
		if n := m.Primary.NumPages(); n < size {
			size = n
		}
	}
	r.size = size
	if reg := cfg.Registry; reg != nil {
		reg.Attach("asm_shard_retries_total", "Router-level access retries across all shards.", &r.retries)
		reg.Attach("asm_shard_budget_exhausted_total", "Accesses abandoned because the query's retry budget ran dry.", &r.budgetExhausted)
		for i := range r.shards {
			reg.Attach("asm_shard_degraded_reads_total", "Reads served by a shard's replica or refused with the breaker open.",
				&r.shards[i].degradedReads, "shard", r.members[i].Name)
			reg.Attach("asm_shard_breaker_trips_total", "Circuit-breaker open transitions.",
				&r.shards[i].trips, "shard", r.members[i].Name)
		}
	}
	return r, nil
}

// hashName is FNV-1a over the member name, finished with a splitmix64
// round so short names still spread across the 64-bit space.
func hashName(name string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= 1099511628211
	}
	return mix64(h)
}

func mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// ShardOf routes a global page to its owning member index by highest
// rendezvous score; ties break toward the lexically smaller name so
// the choice stays a pure function of the name set.
func (r *Router) ShardOf(p disk.PageID) int {
	best, bestScore := 0, uint64(0)
	for i, seed := range r.nameSeed {
		score := mix64(seed ^ (uint64(p)+1)*0x9E3779B97F4A7C15)
		if i == 0 || score > bestScore ||
			(score == bestScore && r.members[i].Name < r.members[best].Name) {
			best, bestScore = i, score
		}
	}
	return best
}

// Shards returns the fleet width.
func (r *Router) Shards() int { return len(r.members) }

// MemberName returns shard i's hash identity.
func (r *Router) MemberName(i int) string { return r.members[i].Name }

// BreakerState exposes shard i's breaker position (for /statusz and
// tests).
func (r *Router) BreakerState(i int) BreakerState { return r.shards[i].breaker.State() }

// Trips returns how many times shard i's breaker has opened.
func (r *Router) Trips(i int) int64 { return r.shards[i].breaker.Trips() }

// DegradedReads returns how many of shard i's reads ran degraded.
func (r *Router) DegradedReads(i int) int64 { return r.shards[i].degradedReads.Value() }

// checkAccess validates the access and books the head movement.
func (r *Router) checkAccess(p disk.PageID, buf []byte) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return disk.ErrClosed
	}
	if len(buf) != r.members[0].Primary.PageSize() {
		return disk.ErrBadLength
	}
	if int(p) >= r.size {
		return fmt.Errorf("%w: page %d of %d", disk.ErrOutOfRange, p, r.size)
	}
	r.last = p
	return nil
}

// replicaFresh reports whether shard i's replica exists and clears the
// staleness floor.
func (r *Router) replicaFresh(i int) bool {
	m := &r.members[i]
	if m.Replica == nil {
		return false
	}
	if r.cfg.LSNFloor == nil || m.AppliedLSN == nil {
		return true
	}
	return m.AppliedLSN() >= r.cfg.LSNFloor()
}

// noteDegraded books one degraded read on shard i and emits a
// failover event on the edge into the episode.
func (r *Router) noteDegraded(i int, sp *qtrace.Span) {
	st := &r.shards[i]
	st.degradedReads.Inc()
	sp.OnDegraded()
	r.mu.Lock()
	edge := !st.degraded
	st.degraded = true
	r.mu.Unlock()
	if edge {
		r.cfg.Tracer.Net(trace.KindFailover, trace.NoPage, 0, "shard:"+r.members[i].Name)
	}
}

// noteHealthy clears shard i's degraded episode after a primary
// success.
func (r *Router) noteHealthy(i int) {
	r.mu.Lock()
	r.shards[i].degraded = false
	r.mu.Unlock()
}

// access runs one routed read or write with breaker gating, replica
// fallback (reads only), retry pacing, and budget accounting.
func (r *Router) access(ctx context.Context, p disk.PageID, buf []byte, write bool) error {
	i := r.ShardOf(p)
	m := &r.members[i]
	st := &r.shards[i]
	sp := qtrace.From(ctx)
	attempts := r.retry.MaxAttempts
	if attempts < 1 {
		attempts = 1
	}
	for attempt := 0; ; attempt++ {
		var err error
		if st.breaker.Allow() {
			if write {
				err = m.Primary.WritePage(p, buf)
			} else {
				err = disk.ReadPageCtx(ctx, m.Primary, p, buf)
			}
			// A permanent page error is an answer, not an outage: the
			// shard responded, so only transient failures count against
			// its health.
			st.breaker.Record(err == nil || !disk.Retryable(err))
			if err == nil {
				r.noteHealthy(i)
				return nil
			}
			if !disk.Retryable(err) {
				return err
			}
			// The primary failed transiently: a fresh replica can serve
			// the read right now instead of burning a retry.
			if !write && r.replicaFresh(i) {
				if rerr := disk.ReadPageCtx(ctx, m.Replica, p, buf); rerr == nil {
					r.noteDegraded(i, sp)
					return nil
				}
			}
		} else {
			// Breaker open: reads go straight to the replica; without a
			// fresh one the shard is down for this access.
			if !write && r.replicaFresh(i) {
				if rerr := disk.ReadPageCtx(ctx, m.Replica, p, buf); rerr == nil {
					r.noteDegraded(i, sp)
					return nil
				}
			}
			err = fmt.Errorf("%w: shard %s: breaker open: %w", ErrShardDown, m.Name, disk.ErrTransient)
			st.degradedReads.Inc()
			sp.OnDegraded()
		}
		if attempt+1 >= attempts {
			return err
		}
		// A retry beyond the first attempt draws from the per-query
		// budget: when the query has spent its shared allowance —
		// anywhere in the fleet — the error surfaces now and the fault
		// policy above decides the object's fate.
		if b := BudgetFrom(ctx); b != nil && !b.Take() {
			r.budgetExhausted.Inc()
			return fmt.Errorf("shard %s: retry budget exhausted: %w", m.Name, err)
		}
		r.retries.Inc()
		sp.OnIORetries(1)
		if d := r.retry.Backoff(attempt); d > 0 {
			timer := time.NewTimer(d)
			select {
			case <-ctx.Done():
				timer.Stop()
				return ctx.Err()
			case <-timer.C:
			}
		}
	}
}

// --- disk.Device ---

// ReadPage implements disk.Device.
func (r *Router) ReadPage(p disk.PageID, buf []byte) error {
	return r.ReadPageCtx(context.Background(), p, buf)
}

// ReadPageCtx implements disk.CtxReader: the read is routed to the
// owning shard and attributed (device-side) to the query span in ctx.
func (r *Router) ReadPageCtx(ctx context.Context, p disk.PageID, buf []byte) error {
	if err := r.checkAccess(p, buf); err != nil {
		return err
	}
	return r.access(ctx, p, buf, false)
}

// WritePage implements disk.Device: writes go to the owning shard's
// primary only — one write master per shard — and fail transiently
// while it is down.
func (r *Router) WritePage(p disk.PageID, buf []byte) error {
	if err := r.checkAccess(p, buf); err != nil {
		return err
	}
	return r.access(context.Background(), p, buf, true)
}

// Allocate implements disk.Device: the global space grows, and every
// member grows in lockstep so any member can cover any page it may be
// assigned (rendezvous assignment is scattered, so each shard backs
// the full space and stores only its owned subset).
func (r *Router) Allocate(n int) (disk.PageID, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return disk.InvalidPage, disk.ErrClosed
	}
	first := disk.PageID(r.size)
	newSize := r.size + n
	for _, m := range r.members {
		if grow := newSize - m.Primary.NumPages(); grow > 0 {
			if _, err := m.Primary.Allocate(grow); err != nil {
				return disk.InvalidPage, err
			}
		}
	}
	r.size = newSize
	return first, nil
}

// NumPages implements disk.Device.
func (r *Router) NumPages() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.size
}

// PageSize implements disk.Device.
func (r *Router) PageSize() int { return r.members[0].Primary.PageSize() }

// Head implements disk.Device: the last global page touched. Member
// heads are the physically meaningful ones; the per-shard elevator
// keeps its own per-lane positions.
func (r *Router) Head() disk.PageID {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.last
}

// Stats implements disk.Device: the aggregate over every member
// primary and replica (a degraded read moves a replica's head, and the
// combined view must count it).
func (r *Router) Stats() disk.Stats {
	var total disk.Stats
	add := func(st disk.Stats) {
		total.Reads += st.Reads
		total.Writes += st.Writes
		total.SeekTotal += st.SeekTotal
		total.SeekReads += st.SeekReads
		if st.MaxSeek > total.MaxSeek {
			total.MaxSeek = st.MaxSeek
		}
	}
	for _, m := range r.members {
		add(m.Primary.Stats())
		if m.Replica != nil {
			add(m.Replica.Stats())
		}
	}
	return total
}

// ResetStats implements disk.Device.
func (r *Router) ResetStats() {
	for _, m := range r.members {
		m.Primary.ResetStats()
		if m.Replica != nil {
			m.Replica.ResetStats()
		}
	}
}

// ResetHead implements disk.Device.
func (r *Router) ResetHead() {
	r.mu.Lock()
	r.last = 0
	r.mu.Unlock()
	for _, m := range r.members {
		m.Primary.ResetHead()
		if m.Replica != nil {
			m.Replica.ResetHead()
		}
	}
}

// Close implements disk.Device: it closes every member device.
func (r *Router) Close() error {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return nil
	}
	r.closed = true
	r.mu.Unlock()
	var first error
	for _, m := range r.members {
		if err := m.Primary.Close(); err != nil && first == nil {
			first = err
		}
		if m.Replica != nil {
			if err := m.Replica.Close(); err != nil && first == nil {
				first = err
			}
		}
	}
	return first
}

// SetTracer implements disk.TracerSetter by forwarding to every member
// device: traced reads carry each member's own head accounting, which
// is the physically meaningful view.
func (r *Router) SetTracer(t *trace.Tracer) {
	for _, m := range r.members {
		disk.AttachTracer(m.Primary, t)
		if m.Replica != nil {
			disk.AttachTracer(m.Replica, t)
		}
	}
}

// RegisterMetrics implements disk.MetricsRegistrar by registering
// every member primary under "<dev><index>" (replicas under
// "<dev><index>r"), mirroring disk.Striped.
func (r *Router) RegisterMetrics(reg *metrics.Registry, dev string) {
	for i, m := range r.members {
		disk.RegisterMetrics(m.Primary, reg, fmt.Sprintf("%s%d", dev, i))
		if m.Replica != nil {
			disk.RegisterMetrics(m.Replica, reg, fmt.Sprintf("%s%dr", dev, i))
		}
	}
}

var _ disk.Device = (*Router)(nil)
var _ disk.CtxReader = (*Router)(nil)
