package shard

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"revelation/internal/disk"
	"revelation/internal/metrics"
	"revelation/internal/qtrace"
	"revelation/internal/trace"
)

// ErrShardDown marks a read or write that failed because its shard's
// circuit breaker is open and no fresh replica could serve it. It
// always travels wrapped together with disk.ErrTransient: the shard
// may come back, so RetryFaults-style callers keep the query alive
// across half-open probes while SkipObject callers quarantine.
var ErrShardDown = errors.New("shard: shard down")

// ErrFencedPage marks a write refused because its page is mid-cutover:
// the resharding migrator has copied the page and fenced it so no write
// lands on the old owner and is lost at the flip. Always transient —
// the fence lifts as soon as the cutover record is durable.
var ErrFencedPage = errors.New("shard: page fenced for migration")

// MemberError attributes a routed-access failure to the shard member
// it happened on, so callers (and the fleet controller) can tell WHICH
// shard starved a retry budget or has its breaker open without parsing
// message text.
type MemberError struct {
	// Member is the shard's name (Member.Name).
	Member string
	// Err is the underlying failure.
	Err error
}

func (e *MemberError) Error() string { return fmt.Sprintf("shard %s: %v", e.Member, e.Err) }
func (e *MemberError) Unwrap() error { return e.Err }

// Member is one shard of the fleet: a primary device (typically a
// pagesvc.Client pointed at one asmpaged primary) plus an optional
// read-only replica for breaker-aware failover.
type Member struct {
	// Name is the shard's stable identity — the rendezvous hash input.
	// Two fleets listing the same names in any order route every page
	// identically. Typically the primary's address.
	Name string
	// Primary serves reads and all writes.
	Primary disk.Device
	// Replica, when non-nil, serves reads while the primary's breaker
	// is open (and as the same-attempt fallback when the primary fails
	// transiently).
	Replica disk.Device
	// AppliedLSN, when non-nil, reports the replica's replication
	// progress for the staleness guard; nil means always fresh.
	AppliedLSN func() uint64
}

// Config tunes a Router.
type Config struct {
	// Members are the shards. At least one is required.
	Members []Member
	// Breaker configures every shard's circuit breaker.
	Breaker BreakerConfig
	// Retry bounds the router's per-access attempts and paces them.
	// The zero policy means disk.DefaultRetryPolicy. Each retry beyond
	// the first attempt also draws from the query's Budget when the
	// context carries one; an exhausted budget stops retrying
	// immediately.
	Retry disk.RetryPolicy
	// LSNFloor, when set, is the replica staleness guard: a replica
	// whose AppliedLSN is below the floor is not eligible to serve
	// degraded reads. Wire it to the local wal.Writer's DurableLSN.
	LSNFloor func() uint64
	// Tracer receives net-layer failover events when a shard enters or
	// leaves degraded mode; nil disables them.
	Tracer *trace.Tracer
	// Registry, when set, receives asm_shard_* counters.
	Registry *metrics.Registry
}

// shardState is the router's per-shard health bookkeeping. States are
// held by pointer so they survive the members slice growing on
// AddMember.
type shardState struct {
	breaker *Breaker
	// degraded marks an ongoing degraded episode (replica serving or
	// shard unreachable); the edge into it emits one failover event.
	degraded bool
	// epoch is the shard's fencing epoch, bumped by PromoteReplica and
	// stamped into epoch-aware primaries.
	epoch uint64

	degradedReads   metrics.Counter
	trips           metrics.Counter
	budgetExhausted metrics.Counter
}

// Router implements disk.Device over a fleet of shards with
// deterministic rendezvous routing: page p lives on the member whose
// hash(name, p) is highest. The assignment is a pure function of the
// member-name set — independent of slice order and of request history
// — and adding or removing a member moves only the pages whose argmax
// changes (≈ 1/N of the keys).
//
// The membership is live: PromoteReplica swaps a failed primary for
// its replica under a new fencing epoch, and AddMember joins a new
// shard whose rendezvous-owed pages keep routing to their old owners
// until the migrator cuts them over (FenceRange/CutOver). All routing
// state is guarded by one mutex; member devices are copied out under
// it, so accesses in flight during a promotion finish against a
// coherent member view.
type Router struct {
	cfg   Config
	retry disk.RetryPolicy
	ps    int // page size, immutable

	// wmu is the migration write barrier: every write attempt holds it
	// for read from its fence check through its device write, and
	// FenceRange takes it for write AFTER setting fence flags — so once
	// FenceRange returns, every in-flight write has either landed (and
	// the migrator's re-copy will see it) or will observe the fence.
	wmu sync.RWMutex

	mu       sync.Mutex
	members  []Member
	nameSeed []uint64 // per-member hash of Name, precomputed
	shards   []*shardState
	// pending maps a global page whose rendezvous owner is a newly
	// joined member to its PRE-join owner index: reads and writes keep
	// flowing to the old owner until the migrator cuts the page over.
	pending map[disk.PageID]int
	// fence marks pages mid-cutover: writes fail transiently until the
	// ownership record is durable and CutOver lifts the fence.
	fence  map[disk.PageID]bool
	size   int
	last   disk.PageID // last global page touched, for Head()
	closed bool

	// Late-join attachment state: SetTracer/RegisterMetrics remember
	// their arguments so AddMember can wire a new member's device the
	// same way the originals were wired.
	devTracer *trace.Tracer
	devReg    *metrics.Registry
	devPrefix string

	retries metrics.Counter
}

// New builds a router over the given members. All member devices must
// share a page size; each must already cover (or be growable to) the
// full global page space — the router grows them in lockstep on
// Allocate. The initial size is the smallest member size, so opening
// over an existing fleet sees every commonly covered page.
func New(cfg Config) (*Router, error) {
	if len(cfg.Members) == 0 {
		return nil, fmt.Errorf("shard: router needs at least one member")
	}
	ps := cfg.Members[0].Primary.PageSize()
	seen := map[string]bool{}
	for _, m := range cfg.Members {
		if m.Name == "" {
			return nil, fmt.Errorf("shard: member needs a name (the hash identity)")
		}
		if seen[m.Name] {
			return nil, fmt.Errorf("shard: duplicate member name %q", m.Name)
		}
		seen[m.Name] = true
		if m.Primary == nil {
			return nil, fmt.Errorf("shard: member %q has no primary device", m.Name)
		}
		if m.Primary.PageSize() != ps {
			return nil, fmt.Errorf("shard: members disagree on page size")
		}
		if m.Replica != nil && m.Replica.PageSize() != ps {
			return nil, fmt.Errorf("shard: member %q replica disagrees on page size", m.Name)
		}
	}
	retry := cfg.Retry
	if retry.MaxAttempts == 0 {
		retry = disk.DefaultRetryPolicy
	}
	r := &Router{
		cfg:     cfg,
		retry:   retry,
		ps:      ps,
		members: append([]Member(nil), cfg.Members...),
		pending: map[disk.PageID]int{},
		fence:   map[disk.PageID]bool{},
	}
	size := cfg.Members[0].Primary.NumPages()
	for _, m := range cfg.Members {
		r.nameSeed = append(r.nameSeed, hashName(m.Name))
		r.shards = append(r.shards, r.newShardState())
		if n := m.Primary.NumPages(); n < size {
			size = n
		}
	}
	r.size = size
	if reg := cfg.Registry; reg != nil {
		reg.Attach("asm_shard_retries_total", "Router-level access retries across all shards.", &r.retries)
		for i := range r.shards {
			r.attachShardMetrics(reg, r.shards[i], r.members[i].Name)
		}
	}
	return r, nil
}

// newShardState builds a fresh per-shard state with its breaker wired
// to the trip counter.
func (r *Router) newShardState() *shardState {
	st := &shardState{}
	bcfg := r.cfg.Breaker
	bcfg.OnTrip = func() { st.trips.Inc() }
	st.breaker = NewBreaker(bcfg)
	return st
}

// attachShardMetrics registers one shard's labeled counters.
func (r *Router) attachShardMetrics(reg *metrics.Registry, st *shardState, name string) {
	reg.Attach("asm_shard_degraded_reads_total", "Reads served by a shard's replica or refused with the breaker open.",
		&st.degradedReads, "shard", name)
	reg.Attach("asm_shard_breaker_trips_total", "Circuit-breaker open transitions.",
		&st.trips, "shard", name)
	reg.Attach("asm_shard_budget_exhausted_total", "Accesses abandoned because the query's retry budget ran dry.",
		&st.budgetExhausted, "shard", name)
}

// hashName is FNV-1a over the member name, finished with a splitmix64
// round so short names still spread across the 64-bit space.
func hashName(name string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= 1099511628211
	}
	return mix64(h)
}

func mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// rendezvousLocked is the pure rendezvous argmax over the CURRENT
// member set; ties break toward the lexically smaller name so the
// choice stays a pure function of the name set. Caller holds r.mu.
func (r *Router) rendezvousLocked(p disk.PageID) int {
	best, bestScore := 0, uint64(0)
	for i, seed := range r.nameSeed {
		score := mix64(seed ^ (uint64(p)+1)*0x9E3779B97F4A7C15)
		if i == 0 || score > bestScore ||
			(score == bestScore && r.members[i].Name < r.members[best].Name) {
			best, bestScore = i, score
		}
	}
	return best
}

// shardOfLocked is the ROUTING owner: the rendezvous owner, except that
// a page still pending migration routes to its pre-join owner. Caller
// holds r.mu.
func (r *Router) shardOfLocked(p disk.PageID) int {
	if old, ok := r.pending[p]; ok {
		return old
	}
	return r.rendezvousLocked(p)
}

// ShardOf routes a global page to its owning member index: the highest
// rendezvous score over the member-name set, overridden toward the old
// owner for pages a live reshard has not yet cut over.
func (r *Router) ShardOf(p disk.PageID) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.shardOfLocked(p)
}

// RendezvousOwner returns the pure rendezvous owner of p over the
// current member set, ignoring any in-flight migration — where the
// page WILL live once resharding completes.
func (r *Router) RendezvousOwner(p disk.PageID) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.rendezvousLocked(p)
}

// Shards returns the fleet width.
func (r *Router) Shards() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.members)
}

// MemberName returns shard i's hash identity.
func (r *Router) MemberName(i int) string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.members[i].Name
}

// MemberIndex returns the index of the member with the given name, or
// -1 if no such member.
func (r *Router) MemberIndex(name string) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.memberIndexLocked(name)
}

func (r *Router) memberIndexLocked(name string) int {
	for i := range r.members {
		if r.members[i].Name == name {
			return i
		}
	}
	return -1
}

// Epoch returns shard i's current fencing epoch (0 until a promotion).
func (r *Router) Epoch(i int) uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.shards[i].epoch
}

// HasReplica reports whether shard i currently has a failover replica.
func (r *Router) HasReplica(i int) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.members[i].Replica != nil
}

// ReplicaLSN returns shard i's replica applied LSN, or 0 when the
// shard has no replica or no progress reporter.
func (r *Router) ReplicaLSN(i int) uint64 {
	r.mu.Lock()
	fn := r.members[i].AppliedLSN
	r.mu.Unlock()
	if fn == nil {
		return 0
	}
	return fn()
}

// BreakerState exposes shard i's breaker position (for /statusz and
// tests).
func (r *Router) BreakerState(i int) BreakerState {
	r.mu.Lock()
	b := r.shards[i].breaker
	r.mu.Unlock()
	return b.State()
}

// Trips returns how many times shard i's breaker has opened.
func (r *Router) Trips(i int) int64 {
	r.mu.Lock()
	b := r.shards[i].breaker
	r.mu.Unlock()
	return b.Trips()
}

// DegradedReads returns how many of shard i's reads ran degraded.
func (r *Router) DegradedReads(i int) int64 {
	r.mu.Lock()
	st := r.shards[i]
	r.mu.Unlock()
	return st.degradedReads.Value()
}

// PendingPages returns how many pages still route to their pre-join
// owner (0 when no reshard is in flight).
func (r *Router) PendingPages() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.pending)
}

// --- live membership ---

// PromoteReplica flips shard i's replica to writable primary under the
// given fencing epoch: the replica device becomes the shard's Primary,
// the breaker resets (the new primary starts with a clean health
// record), the degraded episode ends, and — when the device is
// epoch-aware (pagesvc.Client's SetEpoch) — every subsequent request
// carries the new epoch so the old primary's zombie writes are fenced.
// The demoted device is returned for the caller to close or retire; it
// is NOT closed here, because a fenced zombie may still be draining.
func (r *Router) PromoteReplica(i int, epoch uint64) (disk.Device, error) {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return nil, disk.ErrClosed
	}
	if i < 0 || i >= len(r.members) {
		r.mu.Unlock()
		return nil, fmt.Errorf("shard: promote: no shard %d", i)
	}
	m := &r.members[i]
	if m.Replica == nil {
		r.mu.Unlock()
		return nil, &MemberError{Member: m.Name, Err: fmt.Errorf("promote: no replica")}
	}
	if epoch <= r.shards[i].epoch {
		name, cur := m.Name, r.shards[i].epoch
		r.mu.Unlock()
		return nil, &MemberError{Member: name, Err: fmt.Errorf("promote: epoch %d not beyond current %d", epoch, cur)}
	}
	old := m.Primary
	m.Primary = m.Replica
	m.Replica = nil
	m.AppliedLSN = nil
	r.shards[i].epoch = epoch
	r.shards[i].degraded = false
	st := r.shards[i]
	promoted := m.Primary
	name := m.Name
	r.mu.Unlock()

	st.breaker.Reset()
	if es, ok := promoted.(interface{ SetEpoch(uint64) }); ok {
		es.SetEpoch(epoch)
	}
	r.cfg.Tracer.Net(trace.KindPromote, trace.NoPage, int64(epoch), "shard:"+name)
	return old, nil
}

// AddMember joins a new shard to the fleet. The rendezvous assignment
// over the enlarged name set owes the newcomer ≈ 1/(N+1) of the pages;
// AddMember marks exactly those pages pending — they keep routing to
// their pre-join owners — and returns them in ascending order for the
// migrator to copy and cut over. The new member's primary is grown to
// the global page space, and wired to the tracer/registry the router's
// own devices use. One join at a time: AddMember refuses while a prior
// join still has pending pages.
func (r *Router) AddMember(m Member) ([]disk.PageID, error) {
	if m.Name == "" {
		return nil, fmt.Errorf("shard: member needs a name (the hash identity)")
	}
	if m.Primary == nil {
		return nil, fmt.Errorf("shard: member %q has no primary device", m.Name)
	}
	if m.Primary.PageSize() != r.ps {
		return nil, fmt.Errorf("shard: members disagree on page size")
	}
	if m.Replica != nil && m.Replica.PageSize() != r.ps {
		return nil, fmt.Errorf("shard: member %q replica disagrees on page size", m.Name)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return nil, disk.ErrClosed
	}
	if r.memberIndexLocked(m.Name) >= 0 {
		return nil, fmt.Errorf("shard: duplicate member name %q", m.Name)
	}
	if len(r.pending) > 0 {
		return nil, fmt.Errorf("shard: a reshard is already in flight (%d pages pending)", len(r.pending))
	}
	if grow := r.size - m.Primary.NumPages(); grow > 0 {
		if _, err := m.Primary.Allocate(grow); err != nil {
			return nil, fmt.Errorf("shard: grow joining member %q: %w", m.Name, err)
		}
	}
	newIdx := len(r.members)
	r.members = append(r.members, m)
	r.nameSeed = append(r.nameSeed, hashName(m.Name))
	r.shards = append(r.shards, r.newShardState())
	if r.cfg.Registry != nil {
		r.attachShardMetrics(r.cfg.Registry, r.shards[newIdx], m.Name)
	}
	if r.devTracer != nil {
		disk.AttachTracer(m.Primary, r.devTracer)
		if m.Replica != nil {
			disk.AttachTracer(m.Replica, r.devTracer)
		}
	}
	if r.devReg != nil {
		disk.RegisterMetrics(m.Primary, r.devReg, fmt.Sprintf("%s%d", r.devPrefix, newIdx))
		if m.Replica != nil {
			disk.RegisterMetrics(m.Replica, r.devReg, fmt.Sprintf("%s%dr", r.devPrefix, newIdx))
		}
	}

	// The delta: every page whose post-join argmax is the newcomer.
	// Its pre-join owner is the argmax over the old prefix — recorded
	// so routing keeps hitting the data until the cutover.
	var delta []disk.PageID
	for p := 0; p < r.size; p++ {
		id := disk.PageID(p)
		if r.rendezvousLocked(id) == newIdx {
			old, oldScore := 0, uint64(0)
			for i := 0; i < newIdx; i++ {
				score := mix64(r.nameSeed[i] ^ (uint64(id)+1)*0x9E3779B97F4A7C15)
				if i == 0 || score > oldScore ||
					(score == oldScore && r.members[i].Name < r.members[old].Name) {
					old, oldScore = i, score
				}
			}
			r.pending[id] = old
			delta = append(delta, id)
		}
	}
	sort.Slice(delta, func(a, b int) bool { return delta[a] < delta[b] })
	return delta, nil
}

// FenceRange fences every pending page in [lo, hi): writes to fenced
// pages fail transiently until CutOver lifts the fence, so the copy the
// migrator takes after fencing cannot be silently invalidated on the
// old owner. Reads keep flowing. FenceRange does not return until every
// write already in flight has landed — the migrator may trust that a
// post-fence read of the old owner sees all surviving writes. Fencing
// an already-fenced or non-pending page is a no-op; it returns how many
// pages are newly fenced.
func (r *Router) FenceRange(lo, hi disk.PageID) int {
	r.mu.Lock()
	n := 0
	for p := range r.pending {
		if p >= lo && p < hi && !r.fence[p] {
			r.fence[p] = true
			n++
		}
	}
	r.mu.Unlock()
	// Barrier: wait out writes that checked the fence before it was set.
	r.wmu.Lock()
	r.wmu.Unlock() //nolint:staticcheck // empty critical section IS the barrier
	return n
}

// UnfenceRange lifts fences in [lo, hi) without cutting over — the
// migrator's abort path when a copy fails and must be retried.
func (r *Router) UnfenceRange(lo, hi disk.PageID) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for p := range r.fence {
		if p >= lo && p < hi {
			delete(r.fence, p)
		}
	}
}

// CutOver applies one durable ownership record: every pending page in
// [lo, hi) whose rendezvous owner is the named member flips to it —
// subsequent accesses route to the new owner — and its fence lifts. It
// returns how many pages flipped. Replaying a cutover (recovery after
// a migrator crash) is idempotent: already-flipped pages are no longer
// pending and count zero.
func (r *Router) CutOver(lo, hi disk.PageID, owner string) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	idx := r.memberIndexLocked(owner)
	if idx < 0 {
		return 0
	}
	n := 0
	for p := range r.pending {
		if p >= lo && p < hi && r.rendezvousLocked(p) == idx {
			delete(r.pending, p)
			delete(r.fence, p)
			n++
		}
	}
	if n > 0 {
		r.cfg.Tracer.Net(trace.KindMigrate, int64(lo), int64(n), "shard:"+owner)
	}
	return n
}

// --- access path ---

// checkAccess validates the access and books the head movement.
func (r *Router) checkAccess(p disk.PageID, buf []byte) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return disk.ErrClosed
	}
	if len(buf) != r.ps {
		return disk.ErrBadLength
	}
	if int(p) >= r.size {
		return fmt.Errorf("%w: page %d of %d", disk.ErrOutOfRange, p, r.size)
	}
	r.last = p
	return nil
}

// replicaFresh reports whether the member copy's replica exists and
// clears the staleness floor.
func (r *Router) replicaFresh(m Member) bool {
	if m.Replica == nil {
		return false
	}
	if r.cfg.LSNFloor == nil || m.AppliedLSN == nil {
		return true
	}
	return m.AppliedLSN() >= r.cfg.LSNFloor()
}

// noteDegraded books one degraded read on shard i and emits a
// failover event on the edge into the episode.
func (r *Router) noteDegraded(st *shardState, name string, sp *qtrace.Span) {
	st.degradedReads.Inc()
	sp.OnDegraded()
	r.mu.Lock()
	edge := !st.degraded
	st.degraded = true
	r.mu.Unlock()
	if edge {
		r.cfg.Tracer.Net(trace.KindFailover, trace.NoPage, 0, "shard:"+name)
	}
}

// noteHealthy clears a shard's degraded episode after a primary
// success.
func (r *Router) noteHealthy(st *shardState) {
	r.mu.Lock()
	st.degraded = false
	r.mu.Unlock()
}

// attemptOnce runs one routed attempt. final reports that err (nil or
// not) is the access's answer; !final means a transient failure the
// retry loop may spend an attempt on. The returned name and state
// identify the member the attempt ran against, for error attribution.
func (r *Router) attemptOnce(ctx context.Context, p disk.PageID, buf []byte, write bool, sp *qtrace.Span) (err error, final bool, name string, st *shardState) {
	if write {
		// Hold the write barrier from the fence check through the device
		// write (released before the caller's backoff sleep), so
		// FenceRange can wait out writes that raced past the fence.
		r.wmu.RLock()
		defer r.wmu.RUnlock()
	}
	// Resolve the route and copy the member under the lock, then
	// release before touching the (possibly remote, slow) device —
	// a promotion or cutover may swap members mid-access, and the
	// attempt in flight just finishes against its coherent copy.
	r.mu.Lock()
	i := r.shardOfLocked(p)
	m := r.members[i]
	st = r.shards[i]
	fenced := write && r.fence[p]
	r.mu.Unlock()
	name = m.Name

	switch {
	case fenced:
		// Mid-cutover: the migrator holds the pen on this page. The
		// fence lifts in well under a retry interval, and the retry
		// re-routes to whichever owner wins.
		return fmt.Errorf("%w: page %d: %w", ErrFencedPage, p, disk.ErrTransient), false, name, st
	case st.breaker.Allow():
		if write {
			err = m.Primary.WritePage(p, buf)
		} else {
			err = disk.ReadPageCtx(ctx, m.Primary, p, buf)
		}
		// A permanent page error is an answer, not an outage: the
		// shard responded, so only transient failures count against
		// its health.
		st.breaker.Record(err == nil || !disk.Retryable(err))
		if err == nil {
			r.noteHealthy(st)
			return nil, true, name, st
		}
		if !disk.Retryable(err) {
			return err, true, name, st
		}
		// The primary failed transiently: a fresh replica can serve
		// the read right now instead of burning a retry.
		if !write && r.replicaFresh(m) {
			if rerr := disk.ReadPageCtx(ctx, m.Replica, p, buf); rerr == nil {
				r.noteDegraded(st, m.Name, sp)
				return nil, true, name, st
			}
		}
		return err, false, name, st
	default:
		// Breaker open: reads go straight to the replica; without a
		// fresh one the shard is down for this access.
		if !write && r.replicaFresh(m) {
			if rerr := disk.ReadPageCtx(ctx, m.Replica, p, buf); rerr == nil {
				r.noteDegraded(st, m.Name, sp)
				return nil, true, name, st
			}
		}
		err = &MemberError{Member: m.Name, Err: fmt.Errorf("%w: breaker open: %w", ErrShardDown, disk.ErrTransient)}
		st.degradedReads.Inc()
		sp.OnDegraded()
		return err, false, name, st
	}
}

// access runs one routed read or write with breaker gating, replica
// fallback (reads only), retry pacing, and budget accounting. Routing
// re-resolves on every attempt: a page cut over or a replica promoted
// between attempts is picked up by the next one.
func (r *Router) access(ctx context.Context, p disk.PageID, buf []byte, write bool) error {
	sp := qtrace.From(ctx)
	attempts := r.retry.MaxAttempts
	if attempts < 1 {
		attempts = 1
	}
	for attempt := 0; ; attempt++ {
		err, final, name, st := r.attemptOnce(ctx, p, buf, write, sp)
		if final {
			return err
		}
		if attempt+1 >= attempts {
			return err
		}
		// A retry beyond the first attempt draws from the per-query
		// budget: when the query has spent its shared allowance —
		// anywhere in the fleet — the error surfaces now and the fault
		// policy above decides the object's fate.
		if b := BudgetFrom(ctx); b != nil && !b.Take() {
			st.budgetExhausted.Inc()
			return &MemberError{Member: name, Err: fmt.Errorf("retry budget exhausted: %w", err)}
		}
		r.retries.Inc()
		sp.OnIORetries(1)
		if d := r.retry.Backoff(attempt); d > 0 {
			timer := time.NewTimer(d)
			select {
			case <-ctx.Done():
				timer.Stop()
				return ctx.Err()
			case <-timer.C:
			}
		}
	}
}

// --- disk.Device ---

// membersSnapshot copies the member slice under the lock for iteration
// without holding it across device calls.
func (r *Router) membersSnapshot() []Member {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]Member(nil), r.members...)
}

// ReadPage implements disk.Device.
func (r *Router) ReadPage(p disk.PageID, buf []byte) error {
	return r.ReadPageCtx(context.Background(), p, buf)
}

// ReadPageCtx implements disk.CtxReader: the read is routed to the
// owning shard and attributed (device-side) to the query span in ctx.
func (r *Router) ReadPageCtx(ctx context.Context, p disk.PageID, buf []byte) error {
	if err := r.checkAccess(p, buf); err != nil {
		return err
	}
	return r.access(ctx, p, buf, false)
}

// WritePage implements disk.Device: writes go to the owning shard's
// primary only — one write master per shard — and fail transiently
// while it is down.
func (r *Router) WritePage(p disk.PageID, buf []byte) error {
	if err := r.checkAccess(p, buf); err != nil {
		return err
	}
	return r.access(context.Background(), p, buf, true)
}

// Allocate implements disk.Device: the global space grows, and every
// member grows in lockstep so any member can cover any page it may be
// assigned (rendezvous assignment is scattered, so each shard backs
// the full space and stores only its owned subset).
func (r *Router) Allocate(n int) (disk.PageID, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return disk.InvalidPage, disk.ErrClosed
	}
	first := disk.PageID(r.size)
	newSize := r.size + n
	for _, m := range r.members {
		if grow := newSize - m.Primary.NumPages(); grow > 0 {
			if _, err := m.Primary.Allocate(grow); err != nil {
				return disk.InvalidPage, err
			}
		}
	}
	r.size = newSize
	return first, nil
}

// NumPages implements disk.Device.
func (r *Router) NumPages() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.size
}

// PageSize implements disk.Device.
func (r *Router) PageSize() int { return r.ps }

// Head implements disk.Device: the last global page touched. Member
// heads are the physically meaningful ones; the per-shard elevator
// keeps its own per-lane positions.
func (r *Router) Head() disk.PageID {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.last
}

// Stats implements disk.Device: the aggregate over every member
// primary and replica (a degraded read moves a replica's head, and the
// combined view must count it).
func (r *Router) Stats() disk.Stats {
	var total disk.Stats
	add := func(st disk.Stats) {
		total.Reads += st.Reads
		total.Writes += st.Writes
		total.SeekTotal += st.SeekTotal
		total.SeekReads += st.SeekReads
		if st.MaxSeek > total.MaxSeek {
			total.MaxSeek = st.MaxSeek
		}
	}
	for _, m := range r.membersSnapshot() {
		add(m.Primary.Stats())
		if m.Replica != nil {
			add(m.Replica.Stats())
		}
	}
	return total
}

// ResetStats implements disk.Device.
func (r *Router) ResetStats() {
	for _, m := range r.membersSnapshot() {
		m.Primary.ResetStats()
		if m.Replica != nil {
			m.Replica.ResetStats()
		}
	}
}

// ResetHead implements disk.Device.
func (r *Router) ResetHead() {
	r.mu.Lock()
	r.last = 0
	r.mu.Unlock()
	for _, m := range r.membersSnapshot() {
		m.Primary.ResetHead()
		if m.Replica != nil {
			m.Replica.ResetHead()
		}
	}
}

// Close implements disk.Device: it closes every member device.
func (r *Router) Close() error {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return nil
	}
	r.closed = true
	members := append([]Member(nil), r.members...)
	r.mu.Unlock()
	var first error
	for _, m := range members {
		if err := m.Primary.Close(); err != nil && first == nil {
			first = err
		}
		if m.Replica != nil {
			if err := m.Replica.Close(); err != nil && first == nil {
				first = err
			}
		}
	}
	return first
}

// SetTracer implements disk.TracerSetter by forwarding to every member
// device: traced reads carry each member's own head accounting, which
// is the physically meaningful view. The tracer is remembered so
// members joining later get it too.
func (r *Router) SetTracer(t *trace.Tracer) {
	r.mu.Lock()
	r.devTracer = t
	members := append([]Member(nil), r.members...)
	r.mu.Unlock()
	for _, m := range members {
		disk.AttachTracer(m.Primary, t)
		if m.Replica != nil {
			disk.AttachTracer(m.Replica, t)
		}
	}
}

// RegisterMetrics implements disk.MetricsRegistrar by registering
// every member primary under "<dev><index>" (replicas under
// "<dev><index>r"), mirroring disk.Striped. The registry is remembered
// so members joining later register the same way.
func (r *Router) RegisterMetrics(reg *metrics.Registry, dev string) {
	r.mu.Lock()
	r.devReg, r.devPrefix = reg, dev
	members := append([]Member(nil), r.members...)
	r.mu.Unlock()
	for i, m := range members {
		disk.RegisterMetrics(m.Primary, reg, fmt.Sprintf("%s%d", dev, i))
		if m.Replica != nil {
			disk.RegisterMetrics(m.Replica, reg, fmt.Sprintf("%s%dr", dev, i))
		}
	}
}

var _ disk.Device = (*Router)(nil)
var _ disk.CtxReader = (*Router)(nil)
