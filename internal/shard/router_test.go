package shard

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"revelation/internal/disk"
	"revelation/internal/metrics"
)

// newMembers builds one single-page stub member per name, in the given
// order. Assignment is a pure function of the name set, so stub devices
// are enough to exercise routing.
func newMembers(names []string) []Member {
	ms := make([]Member, len(names))
	for i, n := range names {
		ms[i] = Member{Name: n, Primary: disk.New(1)}
	}
	return ms
}

// assignment maps every page in [0, n) to its owning member name.
func assignment(t *testing.T, names []string, n int) map[disk.PageID]string {
	t.Helper()
	r, err := New(Config{Members: newMembers(names)})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer r.Close()
	out := make(map[disk.PageID]string, n)
	for p := 0; p < n; p++ {
		out[disk.PageID(p)] = r.MemberName(r.ShardOf(disk.PageID(p)))
	}
	return out
}

func TestRouterAssignmentDeterministic(t *testing.T) {
	const pages = 4096
	names := []string{"alpha", "bravo", "charlie", "delta", "echo"}
	base := assignment(t, names, pages)

	// A fresh router over the same names routes identically: no request
	// history, no process state, no randomness.
	again := assignment(t, names, pages)
	// And slice order must not matter — the hash identity is the name
	// set, not the member index.
	permuted := assignment(t, []string{"delta", "alpha", "echo", "charlie", "bravo"}, pages)
	for p := 0; p < pages; p++ {
		pid := disk.PageID(p)
		if again[pid] != base[pid] {
			t.Fatalf("page %d: fresh router assigns %s, first assigned %s", p, again[pid], base[pid])
		}
		if permuted[pid] != base[pid] {
			t.Fatalf("page %d: permuted member order assigns %s, want %s", p, permuted[pid], base[pid])
		}
	}

	// Sanity: every member owns a non-trivial share.
	byName := map[string]int{}
	for _, n := range base {
		byName[n]++
	}
	for _, n := range names {
		if byName[n] < pages/len(names)/2 {
			t.Fatalf("member %s owns only %d of %d pages — rendezvous hash is badly skewed", n, byName[n], pages)
		}
	}
}

func TestRouterRebalanceMovesOnlyToNewMember(t *testing.T) {
	const pages = 4096
	names := []string{"alpha", "bravo", "charlie", "delta", "echo"}
	before := assignment(t, names, pages)
	after := assignment(t, append(append([]string{}, names...), "foxtrot"), pages)

	moved := 0
	for p := 0; p < pages; p++ {
		pid := disk.PageID(p)
		if after[pid] == before[pid] {
			continue
		}
		moved++
		// Rendezvous property: adding a member can only move pages TO
		// it; no page shuffles between surviving members.
		if after[pid] != "foxtrot" {
			t.Fatalf("page %d moved %s -> %s, not to the new member", p, before[pid], after[pid])
		}
	}
	// The expected fraction is 1/6 ≈ 17%; allow generous slack for hash
	// variance at 4096 keys.
	frac := float64(moved) / pages
	if frac < 0.08 || frac > 0.28 {
		t.Fatalf("adding 1 of 6 members moved %.1f%% of pages, want ≈16.7%%", 100*frac)
	}
}

// fillPages writes a distinct recognizable pattern to every page of dev.
func fillPages(t *testing.T, dev disk.Device, tag byte) {
	t.Helper()
	buf := make([]byte, dev.PageSize())
	for p := 0; p < dev.NumPages(); p++ {
		for i := range buf {
			buf[i] = tag ^ byte(p)
		}
		if err := dev.WritePage(disk.PageID(p), buf); err != nil {
			t.Fatalf("fill page %d: %v", p, err)
		}
	}
}

func TestRouterFailoverBreakerAndStalenessGuard(t *testing.T) {
	clk := newFakeClock()
	prim := disk.NewFaulty(disk.New(8), disk.FaultConfig{})
	repl := disk.New(8)
	fillPages(t, prim, 0)
	fillPages(t, repl, 0)

	floor := uint64(5)
	applied := uint64(10)
	r, err := New(Config{
		Members: []Member{{
			Name:       "s0",
			Primary:    prim,
			Replica:    repl,
			AppliedLSN: func() uint64 { return applied },
		}},
		Breaker: BreakerConfig{
			FailureThreshold:  2,
			OpenTimeout:       100 * time.Millisecond,
			HalfOpenSuccesses: 1,
			Clock:             clk.Now,
		},
		Retry:    disk.RetryPolicy{MaxAttempts: 1},
		LSNFloor: func() uint64 { return floor },
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer r.Close()

	buf := make([]byte, r.PageSize())
	read := func(p disk.PageID) error { return r.ReadPage(p, buf) }
	check := func(p disk.PageID) {
		t.Helper()
		if buf[0] != byte(p) {
			t.Fatalf("page %d read back %#x, want %#x", p, buf[0], byte(p))
		}
	}

	// Healthy: the primary serves.
	if err := read(3); err != nil {
		t.Fatalf("healthy read: %v", err)
	}
	check(3)
	if got := r.DegradedReads(0); got != 0 {
		t.Fatalf("degraded reads after healthy read = %d, want 0", got)
	}

	// Break the primary: every read fails transiently, forever.
	prim.SetConfig(disk.FaultConfig{Seed: 7, TransientRate: 1, TransientFailures: 1 << 30})

	// First failure: same-attempt failover to the replica; breaker still
	// closed (one of two needed failures).
	if err := read(4); err != nil {
		t.Fatalf("degraded read 1: %v", err)
	}
	check(4)
	if got, want := r.DegradedReads(0), int64(1); got != want {
		t.Fatalf("degraded reads = %d, want %d", got, want)
	}
	if got := r.BreakerState(0); got != Closed {
		t.Fatalf("breaker after 1 failure = %v, want closed", got)
	}

	// Second failure trips the breaker.
	if err := read(5); err != nil {
		t.Fatalf("degraded read 2: %v", err)
	}
	check(5)
	if got := r.BreakerState(0); got != Open {
		t.Fatalf("breaker after 2 failures = %v, want open", got)
	}
	if got := r.Trips(0); got != 1 {
		t.Fatalf("trips = %d, want 1", got)
	}

	// Open breaker: reads skip the primary entirely.
	primReads := prim.Stats().Reads
	if err := read(6); err != nil {
		t.Fatalf("breaker-open read: %v", err)
	}
	check(6)
	if got := prim.Stats().Reads; got != primReads {
		t.Fatalf("open breaker still touched the primary (%d -> %d reads)", primReads, got)
	}
	if got := r.DegradedReads(0); got != 3 {
		t.Fatalf("degraded reads = %d, want 3", got)
	}

	// Staleness guard: a replica behind the LSN floor may not serve.
	applied = 3
	err = read(7)
	if err == nil {
		t.Fatal("stale replica served a degraded read")
	}
	if !errors.Is(err, ErrShardDown) || !disk.Retryable(err) {
		t.Fatalf("stale-replica error = %v, want ErrShardDown wrapping a transient", err)
	}
	// The refused access still counts as a degraded read on the shard.
	if got := r.DegradedReads(0); got != 4 {
		t.Fatalf("degraded reads after refused access = %d, want 4", got)
	}
	applied = 10

	// Heal the primary; after the open timeout one successful probe
	// closes the breaker (HalfOpenSuccesses=1).
	prim.SetConfig(disk.FaultConfig{})
	clk.Advance(100 * time.Millisecond)
	if got := r.BreakerState(0); got != HalfOpen {
		t.Fatalf("breaker after timeout = %v, want half-open", got)
	}
	if err := read(2); err != nil {
		t.Fatalf("half-open probe read: %v", err)
	}
	check(2)
	if got := r.BreakerState(0); got != Closed {
		t.Fatalf("breaker after successful probe = %v, want closed", got)
	}
	if got := r.DegradedReads(0); got != 4 {
		t.Fatalf("probe success counted as degraded: %d reads", got)
	}
}

func TestRouterRetryBudget(t *testing.T) {
	reg := metrics.NewRegistry()
	prim := disk.NewFaulty(disk.New(4), disk.FaultConfig{})
	fillPages(t, prim, 0)
	prim.SetConfig(disk.FaultConfig{Seed: 1, TransientRate: 1, TransientFailures: 1 << 30})
	r, err := New(Config{
		Members:  []Member{{Name: "s0", Primary: prim}},
		Retry:    disk.RetryPolicy{MaxAttempts: 4, BaseBackoff: time.Microsecond, MaxBackoff: time.Microsecond},
		Registry: reg,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer r.Close()

	buf := make([]byte, r.PageSize())

	// A budget of 1 allows exactly one retry; the second retry is
	// refused and the failure surfaces immediately.
	b := NewBudget(1)
	ctx := WithBudget(context.Background(), b)
	err = r.ReadPageCtx(ctx, 0, buf)
	if err == nil {
		t.Fatal("read through an all-transient shard succeeded")
	}
	if !strings.Contains(err.Error(), "retry budget exhausted") {
		t.Fatalf("error = %v, want a retry-budget-exhausted wrap", err)
	}
	if !disk.Retryable(err) {
		t.Fatalf("budget-exhausted error = %v, want transient (the shard may recover)", err)
	}
	if got := b.Used(); got != 1 {
		t.Fatalf("budget used = %d, want 1", got)
	}
	snap := reg.Snapshot()
	if got := snap.Value("asm_shard_retries_total"); got != 1 {
		t.Fatalf("asm_shard_retries_total = %d, want 1", got)
	}
	if got := snap.Sum("asm_shard_budget_exhausted_total"); got != 1 {
		t.Fatalf("asm_shard_budget_exhausted_total = %d, want 1", got)
	}

	// Without a budget in the context the policy's attempt cap governs:
	// MaxAttempts=4 means 3 more retries.
	if err := r.ReadPage(0, buf); err == nil {
		t.Fatal("read through an all-transient shard succeeded")
	}
	if got := reg.Snapshot().Value("asm_shard_retries_total"); got != 4 {
		t.Fatalf("asm_shard_retries_total = %d, want 4 (1 budgeted + 3 uncapped)", got)
	}
}
