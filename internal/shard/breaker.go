// Package shard routes pages across a fleet of page services with a
// consistent hash, so a buffer pool, WAL writer, or assembly operator
// stacks on N shards through the one disk.Device interface it already
// knows. Robustness is the point: each shard carries a three-state
// circuit breaker, reads fail over to the shard's replica under the
// same LSN-floor staleness guard the single-primary client uses, and
// retries draw from a per-query budget shared across shards so one
// flaky shard cannot starve the rest of the query's deadline.
package shard

import (
	"sync"
	"time"
)

// BreakerState is the circuit breaker's position.
type BreakerState int

// Breaker states. Closed passes traffic and counts consecutive
// failures; Open fails fast (reads go straight to the replica) until
// the open timeout elapses; HalfOpen admits one probe at a time to the
// primary and closes again after enough consecutive probe successes.
const (
	Closed BreakerState = iota
	Open
	HalfOpen
)

func (s BreakerState) String() string {
	switch s {
	case Open:
		return "open"
	case HalfOpen:
		return "half-open"
	default:
		return "closed"
	}
}

// BreakerConfig tunes a Breaker. The zero value gets production
// defaults; tests inject Clock to walk the state machine without
// sleeping.
type BreakerConfig struct {
	// FailureThreshold is how many consecutive primary failures trip
	// the breaker open; values < 1 mean 3.
	FailureThreshold int
	// OpenTimeout is how long the breaker stays open before admitting
	// a half-open probe; zero means 100ms.
	OpenTimeout time.Duration
	// HalfOpenSuccesses is how many consecutive probe successes close
	// the breaker again; values < 1 mean 2.
	HalfOpenSuccesses int
	// Clock supplies the time; nil means time.Now. A seeded fake clock
	// makes every transition deterministic in tests.
	Clock func() time.Time
	// OnTrip, when non-nil, runs (under the breaker lock) at every
	// open transition — the router hooks its per-shard trip counter
	// here so the metric and Trips() can never drift apart.
	OnTrip func()
}

func (c BreakerConfig) withDefaults() BreakerConfig {
	if c.FailureThreshold < 1 {
		c.FailureThreshold = 3
	}
	if c.OpenTimeout <= 0 {
		c.OpenTimeout = 100 * time.Millisecond
	}
	if c.HalfOpenSuccesses < 1 {
		c.HalfOpenSuccesses = 2
	}
	if c.Clock == nil {
		c.Clock = time.Now
	}
	return c
}

// Breaker is a three-state circuit breaker guarding one shard's
// primary. Allow asks whether the caller may attempt the primary;
// every Allow()==true must be paired with exactly one Record reporting
// how the attempt went.
type Breaker struct {
	cfg BreakerConfig

	mu        sync.Mutex
	state     BreakerState
	fails     int // consecutive failures while closed
	successes int // consecutive probe successes while half-open
	probing   bool
	openedAt  time.Time
	trips     int64 // closed/half-open -> open transitions
}

// NewBreaker builds a breaker with the given configuration.
func NewBreaker(cfg BreakerConfig) *Breaker {
	return &Breaker{cfg: cfg.withDefaults()}
}

// Allow reports whether the caller may attempt the primary. While
// open it returns false until OpenTimeout has elapsed, at which point
// the breaker turns half-open and admits a single probe; in half-open
// it admits one probe at a time.
func (b *Breaker) Allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case Closed:
		return true
	case Open:
		if b.cfg.Clock().Sub(b.openedAt) < b.cfg.OpenTimeout {
			return false
		}
		b.state = HalfOpen
		b.successes = 0
		b.probing = true
		return true
	default: // HalfOpen
		if b.probing {
			return false
		}
		b.probing = true
		return true
	}
}

// Record reports the outcome of an attempt admitted by Allow. A
// failure while closed counts toward the trip threshold; a failure
// while half-open re-opens immediately; enough consecutive half-open
// successes close the breaker.
func (b *Breaker) Record(ok bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case Closed:
		if ok {
			b.fails = 0
			return
		}
		b.fails++
		if b.fails >= b.cfg.FailureThreshold {
			b.trip()
		}
	case HalfOpen:
		b.probing = false
		if !ok {
			b.trip()
			return
		}
		b.successes++
		if b.successes >= b.cfg.HalfOpenSuccesses {
			b.state = Closed
			b.fails = 0
		}
	default: // Open: a late Record from an attempt admitted earlier.
		if ok {
			// The shard answered after all; treat it as a half-open
			// success would be too eager — leave the timer to decide.
			return
		}
	}
}

// Reset forces the breaker closed with its counters cleared (the trip
// history is kept). The router calls it when a shard's replica is
// promoted: the new primary deserves a clean health record rather than
// inheriting the dead primary's open breaker.
func (b *Breaker) Reset() {
	b.mu.Lock()
	b.state = Closed
	b.fails = 0
	b.successes = 0
	b.probing = false
	b.mu.Unlock()
}

func (b *Breaker) trip() {
	b.state = Open
	b.openedAt = b.cfg.Clock()
	b.fails = 0
	b.probing = false
	b.trips++
	if b.cfg.OnTrip != nil {
		b.cfg.OnTrip()
	}
}

// State returns the breaker's current position, advancing Open to
// HalfOpen when the open timeout has already elapsed (so observers see
// the same state a caller would).
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == Open && b.cfg.Clock().Sub(b.openedAt) >= b.cfg.OpenTimeout {
		return HalfOpen
	}
	return b.state
}

// Trips returns how many times the breaker has opened.
func (b *Breaker) Trips() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.trips
}
