package shard

import (
	"context"
	"errors"
	"testing"
	"time"

	"revelation/internal/disk"
	"revelation/internal/metrics"
)

// TestMemberErrorAttribution checks that budget-exhausted and
// breaker-open failures name the shard they happened on — structurally,
// via MemberError — and that the budget counter carries the shard
// label.
func TestMemberErrorAttribution(t *testing.T) {
	reg := metrics.NewRegistry()
	good := disk.New(4)
	bad := disk.NewFaulty(disk.New(4), disk.FaultConfig{})
	fillPages(t, good, 0)
	fillPages(t, bad, 0)
	bad.SetConfig(disk.FaultConfig{Seed: 3, TransientRate: 1, TransientFailures: 1 << 30})
	r, err := New(Config{
		Members: []Member{
			{Name: "healthy", Primary: good},
			{Name: "sick", Primary: bad},
		},
		Breaker:  BreakerConfig{FailureThreshold: 1, OpenTimeout: time.Hour},
		Retry:    disk.RetryPolicy{MaxAttempts: 4, BaseBackoff: time.Microsecond, MaxBackoff: time.Microsecond},
		Registry: reg,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer r.Close()

	// Find a page owned by the sick member.
	sick := r.MemberIndex("sick")
	var p disk.PageID
	for ; r.ShardOf(p) != sick; p++ {
	}

	buf := make([]byte, r.PageSize())
	ctx := WithBudget(context.Background(), NewBudget(1))
	err = r.ReadPageCtx(ctx, p, buf)
	if err == nil {
		t.Fatal("read through an all-transient shard succeeded")
	}
	var me *MemberError
	if !errors.As(err, &me) || me.Member != "sick" {
		t.Fatalf("budget-exhausted error = %v, want a MemberError naming \"sick\"", err)
	}
	snap := reg.Snapshot()
	if got := snap.Value("asm_shard_budget_exhausted_total", "shard", "sick"); got != 1 {
		t.Errorf("budget counter for sick = %d, want 1", got)
	}
	if got := snap.Value("asm_shard_budget_exhausted_total", "shard", "healthy"); got != 0 {
		t.Errorf("budget counter for healthy = %d, want 0", got)
	}

	// The first failure tripped the breaker (threshold 1); with no
	// replica, the next access is a breaker-open refusal that must also
	// name the shard.
	err = r.ReadPageCtx(context.Background(), p, buf)
	if err == nil {
		t.Fatal("breaker-open read succeeded")
	}
	me = nil
	if !errors.As(err, &me) || me.Member != "sick" {
		t.Fatalf("breaker-open error = %v, want a MemberError naming \"sick\"", err)
	}
	if !errors.Is(err, ErrShardDown) || !disk.Retryable(err) {
		t.Fatalf("breaker-open error = %v, want ErrShardDown wrapping a transient", err)
	}
}

// TestPromoteReplicaFlipsWriteMaster walks a promotion end to end: the
// replica becomes the write master at the new epoch, the breaker
// resets, and stale or replica-less promotions are refused.
func TestPromoteReplicaFlipsWriteMaster(t *testing.T) {
	prim := disk.NewFaulty(disk.New(4), disk.FaultConfig{})
	repl := disk.New(4)
	fillPages(t, prim, 0)
	fillPages(t, repl, 0)
	r, err := New(Config{
		Members: []Member{{Name: "s0", Primary: prim, Replica: repl}},
		Breaker: BreakerConfig{FailureThreshold: 1, OpenTimeout: time.Hour},
		Retry:   disk.RetryPolicy{MaxAttempts: 1},
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer r.Close()

	// Kill the primary and trip the breaker with one failed write.
	prim.SetConfig(disk.FaultConfig{Seed: 9, TransientRate: 1, TransientFailures: 1 << 30, Writes: true})
	buf := make([]byte, r.PageSize())
	if err := r.WritePage(0, buf); err == nil {
		t.Fatal("write to a dead primary succeeded")
	}
	if got := r.BreakerState(0); got != Open {
		t.Fatalf("breaker = %v, want open", got)
	}

	old, err := r.PromoteReplica(0, 2)
	if err != nil {
		t.Fatalf("PromoteReplica: %v", err)
	}
	if old != prim {
		t.Error("PromoteReplica did not hand back the demoted primary")
	}
	if got := r.Epoch(0); got != 2 {
		t.Errorf("epoch = %d, want 2", got)
	}
	if got := r.BreakerState(0); got != Closed {
		t.Errorf("breaker after promotion = %v, want closed (clean record)", got)
	}
	if r.HasReplica(0) {
		t.Error("promoted shard still reports a replica")
	}

	// Writes now land on the old replica device.
	for i := range buf {
		buf[i] = 0xAB
	}
	if err := r.WritePage(1, buf); err != nil {
		t.Fatalf("write after promotion: %v", err)
	}
	got := make([]byte, r.PageSize())
	if err := repl.ReadPage(1, got); err != nil {
		t.Fatal(err)
	}
	if got[0] != 0xAB {
		t.Error("post-promotion write did not land on the promoted device")
	}

	// A stale or equal epoch must not win; nor can a shard with no
	// replica promote again.
	if _, err := r.PromoteReplica(0, 2); err == nil {
		t.Error("re-promotion at the same epoch succeeded")
	}
	var me *MemberError
	if _, err := r.PromoteReplica(0, 9); !errors.As(err, &me) || me.Member != "s0" {
		t.Errorf("promotion without a replica = %v, want MemberError for s0", err)
	}
}

// TestAddMemberPendingRouting checks the live-reshard routing contract:
// joining a member moves exactly the rendezvous delta, those pages keep
// routing to their old owners until cut over, fenced writes stall
// transiently, and cutover flips routing atomically.
func TestAddMemberPendingRouting(t *testing.T) {
	const pages = 512
	names := []string{"alpha", "bravo", "charlie"}
	ms := make([]Member, len(names))
	for i, n := range names {
		ms[i] = Member{Name: n, Primary: disk.New(pages)}
	}
	r, err := New(Config{Members: ms, Retry: disk.RetryPolicy{MaxAttempts: 1}})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer r.Close()

	before := make([]int, pages)
	for p := 0; p < pages; p++ {
		before[p] = r.ShardOf(disk.PageID(p))
	}

	newDev := disk.New(0)
	delta, err := r.AddMember(Member{Name: "delta", Primary: newDev})
	if err != nil {
		t.Fatalf("AddMember: %v", err)
	}
	if newDev.NumPages() != pages {
		t.Errorf("joining member grew to %d pages, want %d", newDev.NumPages(), pages)
	}
	if len(delta) == 0 || len(delta) > pages/2 {
		t.Fatalf("delta = %d pages of %d, want a ≈1/4 share", len(delta), pages)
	}
	if got := r.PendingPages(); got != len(delta) {
		t.Errorf("PendingPages = %d, want %d", got, len(delta))
	}

	// The delta is exactly the set whose rendezvous owner changed, and
	// every one still ROUTES to its pre-join owner.
	newIdx := r.MemberIndex("delta")
	inDelta := map[disk.PageID]bool{}
	for _, p := range delta {
		inDelta[p] = true
	}
	for p := 0; p < pages; p++ {
		id := disk.PageID(p)
		if inDelta[id] {
			if got := r.RendezvousOwner(id); got != newIdx {
				t.Fatalf("delta page %d rendezvous owner = %d, want the newcomer", p, got)
			}
			if got := r.ShardOf(id); got != before[p] {
				t.Fatalf("pending page %d routes to %d, want old owner %d", p, got, before[p])
			}
		} else {
			if got := r.ShardOf(id); got != before[p] {
				t.Fatalf("non-delta page %d moved %d -> %d on join", p, before[p], got)
			}
			if got := r.RendezvousOwner(id); got == newIdx {
				t.Fatalf("page %d owed to newcomer but not in delta", p)
			}
		}
	}

	// A second join while this one is pending is refused.
	if _, err := r.AddMember(Member{Name: "echo", Primary: disk.New(pages)}); err == nil {
		t.Error("overlapping join accepted")
	}

	// Fence one delta page: its write fails transiently, reads still
	// flow, and other pages write fine.
	victim := delta[0]
	if n := r.FenceRange(victim, victim+1); n != 1 {
		t.Fatalf("FenceRange fenced %d pages, want 1", n)
	}
	buf := make([]byte, r.PageSize())
	if err := r.WritePage(victim, buf); !errors.Is(err, ErrFencedPage) || !disk.Retryable(err) {
		t.Fatalf("fenced write = %v, want transient ErrFencedPage", err)
	}
	if err := r.ReadPage(victim, buf); err != nil {
		t.Fatalf("read of fenced page: %v", err)
	}

	// Cut the whole delta over: exactly len(delta) pages flip, routing
	// becomes the pure rendezvous assignment, the fence lifts.
	if n := r.CutOver(0, disk.PageID(pages), "delta"); n != len(delta) {
		t.Fatalf("CutOver flipped %d pages, want %d", n, len(delta))
	}
	if got := r.PendingPages(); got != 0 {
		t.Errorf("PendingPages after cutover = %d, want 0", got)
	}
	for _, p := range delta {
		if got := r.ShardOf(p); got != newIdx {
			t.Fatalf("cut-over page %d routes to %d, want the newcomer", p, got)
		}
	}
	for i := range buf {
		buf[i] = 0xCD
	}
	if err := r.WritePage(victim, buf); err != nil {
		t.Fatalf("write after cutover: %v", err)
	}
	got := make([]byte, r.PageSize())
	if err := newDev.ReadPage(victim, got); err != nil {
		t.Fatal(err)
	}
	if got[0] != 0xCD {
		t.Error("post-cutover write did not land on the new owner")
	}

	// Replaying the cutover (crash recovery) is idempotent.
	if n := r.CutOver(0, disk.PageID(pages), "delta"); n != 0 {
		t.Errorf("replayed cutover flipped %d pages, want 0", n)
	}
}
