package shard

import (
	"context"
	"testing"
	"time"
)

// fakeClock is a manually advanced clock for deterministic breaker
// transitions.
type fakeClock struct{ t time.Time }

func (c *fakeClock) Now() time.Time          { return c.t }
func (c *fakeClock) Advance(d time.Duration) { c.t = c.t.Add(d) }
func newFakeClock() *fakeClock               { return &fakeClock{t: time.Unix(1000, 0)} }
func breakerCfg(clk *fakeClock) BreakerConfig {
	return BreakerConfig{
		FailureThreshold:  3,
		OpenTimeout:       100 * time.Millisecond,
		HalfOpenSuccesses: 2,
		Clock:             clk.Now,
	}
}

func TestBreakerTripsAfterConsecutiveFailures(t *testing.T) {
	clk := newFakeClock()
	b := NewBreaker(breakerCfg(clk))

	// Interleaved successes reset the consecutive-failure count.
	for i := 0; i < 10; i++ {
		if !b.Allow() {
			t.Fatalf("closed breaker refused attempt %d", i)
		}
		b.Record(i%3 == 2) // two failures, then a success, repeated
	}
	if got := b.State(); got != Closed {
		t.Fatalf("state after interleaved failures = %v, want closed", got)
	}
	if got := b.Trips(); got != 0 {
		t.Fatalf("trips = %d, want 0", got)
	}

	// Reset the streak (the loop above ended on a failure), then three
	// consecutive failures trip it.
	b.Allow()
	b.Record(true)
	for i := 0; i < 3; i++ {
		if !b.Allow() {
			t.Fatalf("attempt %d refused before the trip", i)
		}
		b.Record(false)
	}
	if got := b.State(); got != Open {
		t.Fatalf("state = %v, want open", got)
	}
	if got := b.Trips(); got != 1 {
		t.Fatalf("trips = %d, want 1", got)
	}
	if b.Allow() {
		t.Fatal("open breaker admitted an attempt before the timeout")
	}
}

func TestBreakerHalfOpenSingleProbeAndClose(t *testing.T) {
	clk := newFakeClock()
	trips := 0
	cfg := breakerCfg(clk)
	cfg.OnTrip = func() { trips++ }
	b := NewBreaker(cfg)
	for i := 0; i < 3; i++ {
		b.Allow()
		b.Record(false)
	}
	if trips != 1 {
		t.Fatalf("OnTrip ran %d times, want 1", trips)
	}

	clk.Advance(100 * time.Millisecond)
	if got := b.State(); got != HalfOpen {
		t.Fatalf("state after timeout = %v, want half-open", got)
	}
	if !b.Allow() {
		t.Fatal("half-open breaker refused the first probe")
	}
	if b.Allow() {
		t.Fatal("half-open breaker admitted a second concurrent probe")
	}
	b.Record(true)
	// One success is not enough at HalfOpenSuccesses=2.
	if got := b.State(); got != HalfOpen {
		t.Fatalf("state after one probe success = %v, want half-open", got)
	}
	if !b.Allow() {
		t.Fatal("half-open breaker refused the second probe")
	}
	b.Record(true)
	if got := b.State(); got != Closed {
		t.Fatalf("state after two probe successes = %v, want closed", got)
	}
	if !b.Allow() {
		t.Fatal("re-closed breaker refused traffic")
	}
}

func TestBreakerHalfOpenFailureReopens(t *testing.T) {
	clk := newFakeClock()
	b := NewBreaker(breakerCfg(clk))
	for i := 0; i < 3; i++ {
		b.Allow()
		b.Record(false)
	}
	clk.Advance(150 * time.Millisecond)
	if !b.Allow() {
		t.Fatal("half-open breaker refused the probe")
	}
	b.Record(false)
	if got := b.State(); got != Open {
		t.Fatalf("state after failed probe = %v, want open", got)
	}
	if got := b.Trips(); got != 2 {
		t.Fatalf("trips = %d, want 2", got)
	}
	// The open window restarts from the failed probe.
	clk.Advance(50 * time.Millisecond)
	if b.Allow() {
		t.Fatal("re-opened breaker admitted an attempt inside the restarted window")
	}
	clk.Advance(50 * time.Millisecond)
	if !b.Allow() {
		t.Fatal("re-opened breaker refused the probe after the restarted window")
	}
}

func TestBudgetTakeAndContext(t *testing.T) {
	b := NewBudget(2)
	if !b.Take() || !b.Take() {
		t.Fatal("budget of 2 refused its tokens")
	}
	if b.Take() {
		t.Fatal("exhausted budget granted a token")
	}
	if got := b.Used(); got != 2 {
		t.Fatalf("Used = %d, want 2", got)
	}
	if got := b.Remaining(); got != 0 {
		t.Fatalf("Remaining = %d, want 0", got)
	}

	unlimited := NewBudget(-1)
	for i := 0; i < 1000; i++ {
		if !unlimited.Take() {
			t.Fatalf("unlimited budget refused token %d", i)
		}
	}

	ctx := WithBudget(context.Background(), b)
	if got := BudgetFrom(ctx); got != b {
		t.Fatal("BudgetFrom did not return the attached budget")
	}
	if got := BudgetFrom(context.Background()); got != nil {
		t.Fatalf("BudgetFrom(empty ctx) = %v, want nil", got)
	}
}
