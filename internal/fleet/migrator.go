package fleet

import (
	"fmt"
	"io"

	"revelation/internal/disk"
	"revelation/internal/metrics"
	"revelation/internal/shard"
	"revelation/internal/wal"
)

// MigratorConfig tunes a Migrator.
type MigratorConfig struct {
	// Router is the fleet's data plane; Join mutates its membership.
	Router *shard.Router
	// MetaDev backs the migration's ownership log: every cutover is
	// made durable here BEFORE routing flips, so a crash mid-migration
	// recovers by replaying this log. Dedicate a device to it.
	MetaDev disk.Device
	// ChunkPages bounds how many delta pages one cutover record covers;
	// zero means 64. Smaller chunks shorten each fence window; larger
	// ones amortize the meta-log fsync.
	ChunkPages int
	// Watermark, when set, reports the data WAL's durable LSN. The
	// migrator copies a chunk unfenced, then fences and re-copies ONLY
	// if the watermark moved during the copy — under WAL-before-data,
	// an unmoved durable LSN proves no data write landed. nil always
	// re-copies (correct for direct-write backends with no WAL).
	Watermark func() uint64
	// Registry, when set, receives asm_fleet_pages_migrated_total.
	Registry *metrics.Registry
}

// Migrator performs crash-safe live resharding: Join adds a member to
// the router and walks the rendezvous delta — the ≈1/(N+1) of pages
// the newcomer is owed — in chunks: copy (reads keep flowing through
// the old owner), fence writes, re-copy if needed, log the ownership
// record durably, flip routing, unfence. The sequence never leaves a
// page with zero or two owners: until the cutover record is durable
// the old owner serves, after it the new one does, and recovery after
// a crash replays exactly the durable cutovers.
type Migrator struct {
	cfg  MigratorConfig
	meta *wal.Writer

	pagesMigrated metrics.Counter
}

// NewMigrator opens the ownership log on MetaDev (resuming a prior
// migration's log if one is there) and builds the migrator.
func NewMigrator(cfg MigratorConfig) (*Migrator, error) {
	if cfg.Router == nil {
		return nil, fmt.Errorf("fleet: migrator needs a router")
	}
	if cfg.MetaDev == nil {
		return nil, fmt.Errorf("fleet: migrator needs a meta device for the ownership log")
	}
	if cfg.ChunkPages <= 0 {
		cfg.ChunkPages = 64
	}
	meta, err := wal.Open(cfg.MetaDev)
	if err != nil {
		return nil, fmt.Errorf("fleet: open ownership log: %w", err)
	}
	mg := &Migrator{cfg: cfg, meta: meta}
	if reg := cfg.Registry; reg != nil {
		reg.Attach("asm_fleet_pages_migrated_total", "Pages cut over to a new owner by live resharding.", &mg.pagesMigrated)
	}
	return mg, nil
}

// PagesMigrated returns how many pages this migrator has cut over.
func (mg *Migrator) PagesMigrated() int64 { return mg.pagesMigrated.Value() }

// Close closes the ownership log (not the router).
func (mg *Migrator) Close() error { return mg.meta.Close() }

// Join adds m to the fleet and migrates its rendezvous-owed pages. If
// the ownership log already holds durable cutovers — this process, or
// a predecessor that crashed mid-migration, already flipped some
// ranges — they are replayed against the router first and only the
// remainder is copied, so calling Join again after a crash converges
// to the pure rendezvous assignment of the enlarged member set. It
// returns how many pages were newly cut over by this call.
func (mg *Migrator) Join(m shard.Member) (int, error) {
	delta, err := mg.cfg.Router.AddMember(m)
	if err != nil {
		return 0, err
	}
	return mg.finish(m, delta)
}

// Resume continues a crashed migration: the caller rebuilt the router
// over the PRE-join member set (the crash lost the in-memory routing
// table), and Resume re-adds the joining member, replays the durable
// cutovers, and migrates what is still pending. Identical to Join —
// the name marks intent at the call site.
func (mg *Migrator) Resume(m shard.Member) (int, error) { return mg.Join(m) }

// finish replays durable cutovers and migrates the remaining delta.
func (mg *Migrator) finish(m shard.Member, delta []disk.PageID) (int, error) {
	r := mg.cfg.Router
	// Recovery leg: re-apply every ownership record already durable.
	// CutOver is idempotent, so replaying a complete history over a
	// fresh AddMember is exactly a redo pass.
	recs, err := wal.ScanOwnership(mg.cfg.MetaDev)
	if err != nil {
		return 0, fmt.Errorf("fleet: scan ownership log: %w", err)
	}
	for _, rec := range recs {
		r.CutOver(rec.Lo, rec.Hi, rec.Owner)
	}

	// What's left: delta pages still routing to their old owner.
	newIdx := r.MemberIndex(m.Name)
	var rest []disk.PageID
	for _, p := range delta {
		if r.ShardOf(p) != newIdx {
			rest = append(rest, p)
		}
	}

	migrated := 0
	for len(rest) > 0 {
		n := mg.cfg.ChunkPages
		if n > len(rest) {
			n = len(rest)
		}
		chunk := rest[:n]
		rest = rest[n:]
		if err := mg.migrateChunk(chunk, m.Primary, m.Name); err != nil {
			return migrated, err
		}
		migrated += len(chunk)
	}
	return migrated, nil
}

// migrateChunk moves one ascending run of delta pages: copy, fence,
// re-copy under the fence if the watermark moved, make the ownership
// record durable, flip routing, and the fence lifts with the flip.
func (mg *Migrator) migrateChunk(chunk []disk.PageID, target disk.Device, owner string) error {
	r := mg.cfg.Router
	lo, hi := chunk[0], chunk[len(chunk)-1]+1
	buf := make([]byte, r.PageSize())
	copyChunk := func() error {
		for _, p := range chunk {
			// The router still routes p to the old owner (pending), so
			// this read is the authoritative image...
			if err := r.ReadPage(p, buf); err != nil {
				return fmt.Errorf("fleet: copy page %d from old owner: %w", p, err)
			}
			// ...and the write goes DIRECT to the joining member, not
			// through the router (which would bounce it to the old owner).
			if err := target.WritePage(p, buf); err != nil {
				return fmt.Errorf("fleet: install page %d on %s: %w", p, owner, err)
			}
		}
		return nil
	}

	// Bulk copy with writes still flowing; note the watermark first.
	var wm uint64
	if mg.cfg.Watermark != nil {
		wm = mg.cfg.Watermark()
	}
	if err := copyChunk(); err != nil {
		return err
	}

	// Fence the chunk (FenceRange waits out in-flight writes) and
	// close the race: if any data write could have landed during the
	// bulk copy, copy again — this pass runs with writers fenced, so
	// it cannot be invalidated.
	r.FenceRange(lo, hi)
	if mg.cfg.Watermark == nil || mg.cfg.Watermark() != wm {
		if err := copyChunk(); err != nil {
			r.UnfenceRange(lo, hi)
			return err
		}
	}

	// WAL-before-ownership: the record must be durable before routing
	// flips, so a crash after the flip replays it and a crash before
	// the flip leaves the old owner serving — either way one owner.
	if _, err := mg.meta.AppendOwnership(lo, hi, owner); err != nil {
		r.UnfenceRange(lo, hi)
		return fmt.Errorf("fleet: log cutover [%d,%d): %w", lo, hi, err)
	}
	if err := mg.meta.Sync(); err != nil {
		r.UnfenceRange(lo, hi)
		return fmt.Errorf("fleet: sync cutover [%d,%d): %w", lo, hi, err)
	}
	n := r.CutOver(lo, hi, owner)
	mg.pagesMigrated.Add(int64(n))
	return nil
}

// WriteStatus renders the migrator's progress (the /fleetz body's
// resharding section).
func (mg *Migrator) WriteStatus(w io.Writer) {
	fmt.Fprintf(w, "reshard: %d pages migrated, %d pending\n",
		mg.PagesMigrated(), mg.cfg.Router.PendingPages())
}
