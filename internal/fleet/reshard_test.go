package fleet

// The resharding crash-point sweep, in the mold of the WAL sweep: a
// deterministic migration (three members, one joiner, seeded page
// contents) runs with the ownership meta log on a crash-point device.
// A disarmed run counts the W meta-log writes; the sweep then crashes
// a fresh migration at every write ordinal k = 1..W, torn and untorn,
// and verifies after every crash:
//
//   - exactly-one-owner BEFORE recovery: a router over the pre-join
//     member set still serves every page with its golden contents (the
//     copy phase never deletes from the old owner);
//   - the durable cutovers are a subset of the rendezvous-predicted
//     delta, owned by the joiner;
//   - recovery (fresh router + Migrator.Resume over the revived meta
//     device) converges: no pending pages, routing equals the pure
//     rendezvous assignment of the enlarged set, and every page —
//     migrated or not — reads back its golden contents through the
//     recovered router.

import (
	"errors"
	"fmt"
	"testing"

	"revelation/internal/disk"
	"revelation/internal/shard"
	"revelation/internal/wal"
)

const (
	sweepPages = 256
	sweepChunk = 16
)

var sweepNames = []string{"alpha", "bravo", "charlie"}

const sweepJoiner = "delta"

// goldenImage fills buf with page p's canonical contents.
func goldenImage(p disk.PageID, buf []byte) {
	for i := range buf {
		buf[i] = byte(p) ^ byte(i*7+13)
	}
}

// buildSweepFleet builds three members with golden contents and a
// router over them.
func buildSweepFleet(t *testing.T) (*shard.Router, []shard.Member) {
	t.Helper()
	ms := make([]shard.Member, len(sweepNames))
	for i, n := range sweepNames {
		dev := disk.New(sweepPages)
		buf := make([]byte, dev.PageSize())
		for p := 0; p < sweepPages; p++ {
			goldenImage(disk.PageID(p), buf)
			if err := dev.WritePage(disk.PageID(p), buf); err != nil {
				t.Fatal(err)
			}
		}
		ms[i] = shard.Member{Name: n, Primary: dev}
	}
	r, err := shard.New(shard.Config{Members: ms, Retry: disk.RetryPolicy{MaxAttempts: 1}})
	if err != nil {
		t.Fatal(err)
	}
	return r, ms
}

// verifyGolden reads every page through the router and compares to the
// canonical contents.
func verifyGolden(t *testing.T, r *shard.Router, label string) {
	t.Helper()
	buf := make([]byte, r.PageSize())
	want := make([]byte, r.PageSize())
	for p := 0; p < sweepPages; p++ {
		if err := r.ReadPage(disk.PageID(p), buf); err != nil {
			t.Fatalf("%s: read page %d: %v", label, p, err)
		}
		goldenImage(disk.PageID(p), want)
		if string(buf) != string(want) {
			t.Fatalf("%s: page %d contents diverged", label, p)
		}
	}
}

// predictDelta computes the rendezvous-predicted migration set from
// name sets alone (stub devices), proving the delta is a pure function
// of the names.
func predictDelta(t *testing.T) map[disk.PageID]bool {
	t.Helper()
	mk := func(names []string) *shard.Router {
		ms := make([]shard.Member, len(names))
		for i, n := range names {
			ms[i] = shard.Member{Name: n, Primary: disk.New(sweepPages)}
		}
		r, err := shard.New(shard.Config{Members: ms})
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	before := mk(sweepNames)
	after := mk(append(append([]string{}, sweepNames...), sweepJoiner))
	defer before.Close()
	defer after.Close()
	joiner := after.MemberIndex(sweepJoiner)
	delta := map[disk.PageID]bool{}
	for p := 0; p < sweepPages; p++ {
		id := disk.PageID(p)
		if after.ShardOf(id) == joiner {
			delta[id] = true
		} else if before.ShardOf(id) != after.ShardOf(id) {
			t.Fatalf("page %d moved between survivors on join", p)
		}
	}
	return delta
}

// runMigration joins the joiner (on joinerDev — the joining machine's
// own durable disk, which survives a migrator crash) through a
// migrator whose meta log lives on metaDev.
func runMigration(t *testing.T, r *shard.Router, metaDev, joinerDev disk.Device) (int, error) {
	t.Helper()
	mg, err := NewMigrator(MigratorConfig{Router: r, MetaDev: metaDev, ChunkPages: sweepChunk})
	if err != nil {
		// Opening the log can itself hit the crash point's dead device.
		return 0, err
	}
	defer mg.Close()
	return mg.Join(shard.Member{Name: sweepJoiner, Primary: joinerDev})
}

func TestReshardCrashSweep(t *testing.T) {
	delta := predictDelta(t)
	if len(delta) == 0 {
		t.Fatal("degenerate: empty predicted delta")
	}

	// Disarmed run: count the meta-log writes and sanity-check a clean
	// migration.
	probe := disk.NewCrashPoint(0, false, 0)
	metaInner := disk.New(0)
	meta := disk.NewFaulty(metaInner, disk.FaultConfig{})
	meta.SetCrash(probe)
	r, _ := buildSweepFleet(t)
	n, err := runMigration(t, r, meta, disk.New(0))
	if err != nil {
		t.Fatalf("clean migration: %v", err)
	}
	if n != len(delta) {
		t.Fatalf("clean migration moved %d pages, predicted delta is %d", n, len(delta))
	}
	if got := r.PendingPages(); got != 0 {
		t.Fatalf("clean migration left %d pending pages", got)
	}
	verifyGolden(t, r, "clean migration")
	r.Close()
	totalWrites := probe.Writes()
	if totalWrites < 2 {
		t.Fatalf("meta log saw only %d writes — sweep is vacuous", totalWrites)
	}

	for _, torn := range []bool{false, true} {
		for k := int64(1); k <= totalWrites; k++ {
			name := fmt.Sprintf("torn=%v/write=%d", torn, k)

			cp := disk.NewCrashPoint(k, torn, int64(k)*31)
			inner := disk.New(0)
			metaDev := disk.NewFaulty(inner, disk.FaultConfig{})
			metaDev.SetCrash(cp)

			// The joiner's own disk outlives the migrator process: the
			// pages installed before the crash stay installed, which is
			// exactly why a durable cutover may be replayed safely.
			joinerDev := disk.New(0)
			r1, _ := buildSweepFleet(t)
			_, err := runMigration(t, r1, metaDev, joinerDev)
			if err != nil && !errors.Is(err, disk.ErrCrashed) {
				t.Fatalf("%s: migration failed with a non-crash error: %v", name, err)
			}
			// No r1.Close(): the crash is an abrupt machine death, and
			// closing would also close the joiner's (surviving) disk.
			if !cp.Crashed() {
				t.Fatalf("%s: crash point never fired", name)
			}

			// The machine is down. The pre-join fleet must still serve
			// every page (the old owners were never deprived), and the
			// durable cutovers must be a joiner-owned subset of the
			// predicted delta.
			cp.Revive()
			r2, _ := buildSweepFleet(t)
			verifyGolden(t, r2, name+"/pre-recovery")
			recs, err := wal.ScanOwnership(metaDev)
			if err != nil {
				t.Fatalf("%s: scan ownership after crash: %v", name, err)
			}
			durable := 0
			for _, rec := range recs {
				if rec.Owner != sweepJoiner {
					t.Fatalf("%s: ownership record names %q, want %q", name, rec.Owner, sweepJoiner)
				}
				for p := rec.Lo; p < rec.Hi; p++ {
					if delta[p] {
						durable++
					}
				}
			}

			// Recovery: resume the migration over the same meta log.
			mg, err := NewMigrator(MigratorConfig{Router: r2, MetaDev: metaDev, ChunkPages: sweepChunk})
			if err != nil {
				t.Fatalf("%s: reopen migrator: %v", name, err)
			}
			resumed, err := mg.Resume(shard.Member{Name: sweepJoiner, Primary: joinerDev})
			if err != nil {
				t.Fatalf("%s: resume: %v", name, err)
			}
			mg.Close()
			if durable+resumed != len(delta) {
				t.Fatalf("%s: %d durable + %d resumed != %d delta pages", name, durable, resumed, len(delta))
			}
			if got := r2.PendingPages(); got != 0 {
				t.Fatalf("%s: recovery left %d pending pages", name, got)
			}

			// Converged: routing is the pure rendezvous assignment of
			// the enlarged set, and every page reads back golden.
			joiner := r2.MemberIndex(sweepJoiner)
			for p := 0; p < sweepPages; p++ {
				id := disk.PageID(p)
				if got, want := r2.ShardOf(id) == joiner, delta[id]; got != want {
					t.Fatalf("%s: page %d routed to joiner=%v, predicted %v", name, p, got, want)
				}
			}
			verifyGolden(t, r2, name+"/post-recovery")
			r2.Close()
		}
	}
}
