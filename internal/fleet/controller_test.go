package fleet

import (
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"revelation/internal/metrics"
)

// fakeClock is a manually advanced clock for deterministic windows.
type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{now: time.Unix(1_700_000_000, 0)}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

// probeMember is a scriptable member: probe failures, replica LSN, and
// the promotion outcome are all test-controlled.
type probeMember struct {
	mu       sync.Mutex
	down     bool
	lsn      uint64
	epoch    uint64
	promoted []uint64
}

func (p *probeMember) member(name string) Member {
	return Member{
		Name: name,
		Probe: func() error {
			p.mu.Lock()
			defer p.mu.Unlock()
			if p.down {
				return errors.New("probe: connection refused")
			}
			return nil
		},
		ReplicaLSN: func() uint64 {
			p.mu.Lock()
			defer p.mu.Unlock()
			return p.lsn
		},
		Epoch: func() uint64 {
			p.mu.Lock()
			defer p.mu.Unlock()
			return p.epoch
		},
		Promote: func(epoch uint64) error {
			p.mu.Lock()
			defer p.mu.Unlock()
			p.promoted = append(p.promoted, epoch)
			p.epoch = epoch
			return nil
		},
	}
}

func (p *probeMember) setDown(d bool) {
	p.mu.Lock()
	p.down = d
	p.mu.Unlock()
}

func TestControllerSustainedLossPromotes(t *testing.T) {
	clk := newFakeClock()
	reg := metrics.NewRegistry()
	floor := uint64(10)
	pm := &probeMember{lsn: 12}
	c := NewController(Config{
		Members:       []Member{pm.member("s0")},
		SustainedLoss: 500 * time.Millisecond,
		ConfirmProbes: 2,
		LSNFloor:      func() uint64 { return floor },
		Clock:         clk.Now,
		Registry:      reg,
	})
	defer c.Stop()

	// Healthy: nothing happens.
	if got := c.Tick(clk.Now()); len(got) != 0 {
		t.Fatalf("healthy tick promoted %v", got)
	}

	// A blip shorter than the window must NOT promote: down, window
	// half-elapsed, then back up.
	pm.setDown(true)
	c.Tick(clk.Now()) // marks down
	clk.Advance(250 * time.Millisecond)
	if got := c.Tick(clk.Now()); len(got) != 0 {
		t.Fatalf("mid-window tick promoted %v", got)
	}
	pm.setDown(false)
	c.Tick(clk.Now()) // clears
	clk.Advance(time.Hour)
	if got := c.Tick(clk.Now()); len(got) != 0 {
		t.Fatalf("recovered member promoted %v", got)
	}

	// Sustained loss: down through the whole window plus confirmation.
	pm.setDown(true)
	c.Tick(clk.Now())
	clk.Advance(500 * time.Millisecond)
	got := c.Tick(clk.Now())
	if len(got) != 1 || got[0].Member != "s0" || got[0].Epoch != 1 {
		t.Fatalf("sustained loss promoted %v, want s0 at epoch 1", got)
	}
	pm.mu.Lock()
	promoted := append([]uint64(nil), pm.promoted...)
	pm.mu.Unlock()
	if len(promoted) != 1 || promoted[0] != 1 {
		t.Fatalf("member saw promotions %v, want [1]", promoted)
	}
	if c.Promotions() != 1 {
		t.Fatalf("Promotions() = %d, want 1", c.Promotions())
	}
	if got := reg.Snapshot().Value("asm_fleet_promotions_total"); got != 1 {
		t.Fatalf("asm_fleet_promotions_total = %d, want 1", got)
	}

	// A promoted member is done: further ticks are no-ops even with the
	// probe still failing.
	clk.Advance(time.Hour)
	if got := c.Tick(clk.Now()); len(got) != 0 {
		t.Fatalf("already-promoted member promoted again: %v", got)
	}

	// /fleetz sees it.
	var sb strings.Builder
	c.WriteStatus(&sb)
	if !strings.Contains(sb.String(), "promoted (epoch 1)") {
		t.Errorf("status missing promotion:\n%s", sb.String())
	}
}

// TestControllerConfirmProbeVetoes checks that one confirmation probe
// succeeding cancels the promotion and resets the loss window — the
// jittered double-check that keeps a flapping network from burning
// replicas.
func TestControllerConfirmProbeVetoes(t *testing.T) {
	clk := newFakeClock()
	var calls int
	pm := &probeMember{lsn: 100}
	m := pm.member("s0")
	inner := m.Probe
	// The member recovers exactly when the confirmation probes start:
	// the initial probe fails, every later probe succeeds.
	m.Probe = func() error {
		calls++
		if calls == 1 {
			return errors.New("probe: lost")
		}
		_ = inner
		return nil
	}
	c := NewController(Config{
		Members:       []Member{m},
		SustainedLoss: time.Millisecond,
		ConfirmProbes: 2,
		Clock:         clk.Now,
	})
	defer c.Stop()

	c.Tick(clk.Now()) // marks down (first probe fails)
	clk.Advance(time.Minute)
	// Second tick: the tick probe now SUCCEEDS, clearing the episode
	// before confirmation even starts.
	if got := c.Tick(clk.Now()); len(got) != 0 {
		t.Fatalf("recovered member promoted %v", got)
	}

	// Now: tick probe fails but confirmation probes succeed.
	calls = 0
	fail := true
	m2 := pm.member("s1")
	m2.Probe = func() error {
		calls++
		if fail && calls <= 2 { // the down-marking and window ticks fail
			return errors.New("probe: lost")
		}
		return nil // confirmation probes pass
	}
	c2 := NewController(Config{
		Members:       []Member{m2},
		SustainedLoss: time.Millisecond,
		ConfirmProbes: 2,
		Clock:         clk.Now,
	})
	defer c2.Stop()
	c2.Tick(clk.Now())
	clk.Advance(time.Minute)
	if got := c2.Tick(clk.Now()); len(got) != 0 {
		t.Fatalf("member with passing confirmation probes promoted: %v", got)
	}
	if c2.Promotions() != 0 {
		t.Fatalf("Promotions() = %d, want 0", c2.Promotions())
	}
}

// TestControllerRefusesLaggingReplica checks the catch-up floor: a
// replica behind the data WAL's durable LSN is not promoted, and the
// refusal is visible in the status; once caught up, promotion fires.
func TestControllerRefusesLaggingReplica(t *testing.T) {
	clk := newFakeClock()
	pm := &probeMember{lsn: 3}
	c := NewController(Config{
		Members:       []Member{pm.member("s0")},
		SustainedLoss: time.Millisecond,
		ConfirmProbes: 1,
		LSNFloor:      func() uint64 { return 10 },
		Clock:         clk.Now,
	})
	defer c.Stop()

	pm.setDown(true)
	c.Tick(clk.Now())
	clk.Advance(time.Minute)
	if got := c.Tick(clk.Now()); len(got) != 0 {
		t.Fatalf("lagging replica promoted: %v", got)
	}
	sts := c.Status()
	if len(sts) != 1 || !strings.Contains(sts[0].LastErr, "behind floor") {
		t.Fatalf("status = %+v, want a behind-floor refusal", sts)
	}

	// Catch up; the next tick promotes.
	pm.mu.Lock()
	pm.lsn = 10
	pm.mu.Unlock()
	if got := c.Tick(clk.Now()); len(got) != 1 {
		t.Fatalf("caught-up replica not promoted: %v", got)
	}
}
