package fleet

import (
	"fmt"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"revelation/internal/assembly"
	"revelation/internal/disk"
	"revelation/internal/gen"
	"revelation/internal/leakcheck"
	"revelation/internal/metrics"
	"revelation/internal/object"
	"revelation/internal/pagesvc"
	"revelation/internal/shard"
	"revelation/internal/trace"
	"revelation/internal/volcano"
	"revelation/internal/wal"
)

// render flattens an assembled instance into a canonical string so two
// runs can be compared for exact equality.
func render(in *assembly.Instance) string {
	out := fmt.Sprintf("%d(", uint64(in.OID()))
	for _, c := range in.Children {
		if c == nil {
			out += "-,"
			continue
		}
		out += render(c) + ","
	}
	return out + ")"
}

func rootsIter(roots []object.OID) volcano.Iterator {
	items := make([]volcano.Item, len(roots))
	for i, r := range roots {
		items[i] = r
	}
	return volcano.NewSlice(items)
}

// copyPages base-backs-up src onto dst.
func copyPages(t *testing.T, src, dst disk.Device) {
	t.Helper()
	if n := src.NumPages() - dst.NumPages(); n > 0 {
		if _, err := dst.Allocate(n); err != nil {
			t.Fatal(err)
		}
	}
	buf := make([]byte, src.PageSize())
	for p := 0; p < src.NumPages(); p++ {
		if err := src.ReadPage(disk.PageID(p), buf); err != nil {
			t.Fatal(err)
		}
		if err := dst.WritePage(disk.PageID(p), buf); err != nil {
			t.Fatal(err)
		}
	}
}

// waitApplied blocks until the replica has applied at least lsn.
func waitApplied(t *testing.T, r *pagesvc.Replica, lsn uint64) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for r.AppliedLSN() < lsn {
		if time.Now().After(deadline) {
			t.Fatalf("replica stuck at LSN %d, want >= %d", r.AppliedLSN(), lsn)
		}
		time.Sleep(200 * time.Microsecond)
	}
}

// oracleRenders assembles the database locally, fault-free, and returns
// the canonical rendering of every complex object.
func oracleRenders(t *testing.T, db *gen.Database) map[object.OID]string {
	t.Helper()
	op := assembly.New(rootsIter(db.Roots), db.Store, db.Template,
		assembly.Options{Window: 8, Scheduler: assembly.Elevator})
	items, err := volcano.Drain(op)
	if err != nil {
		t.Fatal(err)
	}
	oracle := map[object.OID]string{}
	for _, it := range items {
		inst := it.(*assembly.Instance)
		oracle[inst.OID()] = render(inst)
	}
	return oracle
}

// checkOracle compares a drained result set against the oracle.
func checkOracle(t *testing.T, label string, items []volcano.Item, oracle map[object.OID]string) {
	t.Helper()
	if len(items) != len(oracle) {
		t.Fatalf("%s: assembled %d complex objects, oracle has %d", label, len(items), len(oracle))
	}
	for _, it := range items {
		inst := it.(*assembly.Instance)
		want, ok := oracle[inst.OID()]
		if !ok {
			t.Fatalf("%s: assembled unknown root %v", label, inst.OID())
		}
		if got := render(inst); got != want {
			t.Errorf("%s: root %v diverges from oracle:\n got %s\nwant %s", label, inst.OID(), got, want)
		}
	}
}

// TestFleetPromotionChaosKillPrimary is the promotion tentpole proof:
// an assembly query runs over a three-member networked fleet whose
// member 0 ships its WAL to a read-only replica, the fleet controller
// watches all three primaries, and member 0's primary is killed
// mid-query and HELD down. The query must finish byte-identical to the
// fault-free oracle on replica failover; the controller must then
// detect sustained loss, confirm it, and promote the replica to
// writable primary at epoch 1 — after which a second query and a write
// run healthy against the promoted member, with the controller's
// books, the metrics registry, and the event-trace replay agreeing on
// exactly one promotion, and no goroutine leaks.
func TestFleetPromotionChaosKillPrimary(t *testing.T) {
	before := leakcheck.Snapshot()

	db, err := gen.Build(gen.Config{
		NumComplexObjects: 150,
		Clustering:        gen.Unclustered,
		Seed:              4062,
	})
	if err != nil {
		t.Fatal(err)
	}
	oracle := oracleRenders(t, db)
	manifest := filepath.Join(t.TempDir(), "manifest")
	if err := db.SaveManifest(manifest); err != nil {
		t.Fatal(err)
	}
	if err := db.Pool.FlushAll(); err != nil {
		t.Fatal(err)
	}

	// Three primaries; the victim also serves a WAL device.
	const width = 3
	const victim = 0
	var srvs [width]*pagesvc.Server
	var addrs [width]string
	for i := 0; i < width; i++ {
		data := disk.New(0)
		copyPages(t, db.Device, data)
		devs := []disk.Device{data}
		if i == victim {
			devs = append(devs, disk.New(0)) // WAL device
		}
		srvs[i] = pagesvc.NewServer(devs, pagesvc.ServerConfig{})
		addr, err := srvs[i].Listen("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		defer srvs[i].Close()
		addrs[i] = addr
	}

	// The victim's replica: a follower applying the shipped WAL onto a
	// base backup, fronted by a READ-ONLY server that stops following
	// when promoted to writable.
	replData := disk.New(0)
	copyPages(t, db.Device, replData)
	repl := pagesvc.NewReplica(replData, pagesvc.ReplicaConfig{Primary: addrs[victim], WALDev: pagesvc.WALDev})
	var stopOnce sync.Once
	var replDone <-chan error
	stopRepl := func() {
		stopOnce.Do(func() {
			repl.Close()
			if replDone != nil {
				<-replDone
			}
		})
	}
	replSrv := pagesvc.NewServer([]disk.Device{replData}, pagesvc.ServerConfig{
		AppliedLSN: repl.AppliedLSN,
		ReadOnly:   true,
		OnPromote: func(epoch uint64, writable bool) {
			if writable {
				go stopRepl()
			}
		},
	})
	replAddr, err := replSrv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer replSrv.Close()
	replDone = repl.Start()
	defer stopRepl()

	retry := disk.RetryPolicy{MaxAttempts: 6, BaseBackoff: time.Millisecond, MaxBackoff: 20 * time.Millisecond}
	walClient, err := pagesvc.Dial(pagesvc.ClientConfig{Primary: addrs[victim], Dev: pagesvc.WALDev, Retry: retry})
	if err != nil {
		t.Fatal(err)
	}
	netWAL, err := wal.Open(walClient)
	if err != nil {
		t.Fatal(err)
	}

	reg := metrics.NewRegistry()
	col := trace.NewCollector()
	tr := trace.New(col)
	var clients [width]*pagesvc.Client
	var members [width]shard.Member
	for i := 0; i < width; i++ {
		c, err := pagesvc.Dial(pagesvc.ClientConfig{
			Primary: addrs[i],
			Dev:     pagesvc.DataDev,
			Retry:   disk.RetryPolicy{MaxAttempts: 1},
			Timeout: time.Second,
			Tracer:  tr,
			Label:   fmt.Sprintf("net-s%d", i),
		})
		if err != nil {
			t.Fatal(err)
		}
		clients[i] = c
		members[i] = shard.Member{Name: fmt.Sprintf("s%d", i), Primary: c}
	}
	replClient, err := pagesvc.Dial(pagesvc.ClientConfig{
		Primary: replAddr,
		Dev:     pagesvc.DataDev,
		Retry:   disk.RetryPolicy{MaxAttempts: 1},
		Timeout: time.Second,
		Tracer:  tr,
		Label:   fmt.Sprintf("net-s%dr", victim),
	})
	if err != nil {
		t.Fatal(err)
	}
	members[victim].Replica = replClient
	members[victim].AppliedLSN = func() uint64 {
		lsn, err := replClient.AppliedLSN()
		if err != nil {
			return 0
		}
		return lsn
	}
	router, err := shard.New(shard.Config{
		Members: members[:],
		Breaker: shard.BreakerConfig{
			FailureThreshold:  2,
			OpenTimeout:       50 * time.Millisecond,
			HalfOpenSuccesses: 1,
		},
		Retry:    retry,
		LSNFloor: netWAL.DurableLSN,
		Tracer:   tr,
		Registry: reg,
	})
	if err != nil {
		t.Fatal(err)
	}

	mp, err := gen.LoadManifest(manifest)
	if err != nil {
		t.Fatal(err)
	}
	netDB, err := gen.OpenDatabaseOn(router, mp, 64)
	if err != nil {
		t.Fatal(err)
	}
	netDB.Pool.SetWAL(netWAL)
	netDB.Pool.SetRetry(retry)

	// Seed a nonzero durable LSN (the staleness floor and promotion
	// floor) and wait for the replica to catch up past it.
	f, err := netDB.Pool.Fix(disk.PageID(0))
	if err != nil {
		t.Fatal(err)
	}
	if err := netDB.Pool.Unfix(f, true); err != nil {
		t.Fatal(err)
	}
	if err := netDB.Pool.FlushAll(); err != nil {
		t.Fatal(err)
	}
	floor := netWAL.DurableLSN()
	if floor == 0 {
		t.Fatal("durable LSN still zero after a flush")
	}
	waitApplied(t, repl, floor)

	// The control plane: probe every primary; the victim's member has
	// the replica handles so it is the only promotable one.
	ctrlMembers := make([]Member, width)
	for i := 0; i < width; i++ {
		i := i
		ctrlMembers[i] = Member{
			Name:  members[i].Name,
			Probe: clients[i].Ping,
			Epoch: func() uint64 { return router.Epoch(i) },
		}
	}
	ctrlMembers[victim].ReplicaLSN = members[victim].AppliedLSN
	ctrlMembers[victim].Promote = func(epoch uint64) error {
		// Promotion order matters: the replica's server goes writable
		// at the new epoch first (it starts refusing stale-epoch
		// zombies), then the router flips routing and stamps the epoch
		// into the promoted client.
		if err := replClient.Promote(epoch, floor, true); err != nil {
			return err
		}
		_, err := router.PromoteReplica(victim, epoch)
		return err
	}
	ctrl := NewController(Config{
		Members:       ctrlMembers,
		SustainedLoss: 30 * time.Millisecond,
		ConfirmProbes: 2,
		ProbeJitter:   2 * time.Millisecond,
		JitterSeed:    42,
		LSNFloor:      func() uint64 { return floor },
		Registry:      reg,
	})
	ctrlDone := make(chan struct{})
	go func() { defer close(ctrlDone); ctrl.Run(5 * time.Millisecond) }()
	stopCtrl := func() {
		ctrl.Stop()
		<-ctrlDone
	}
	defer stopCtrl()

	// Kill the victim once the query is demonstrably under way there,
	// and HOLD it down — unlike a blip, this must end in promotion.
	victimDev := members[victim].Primary
	baseReads := victimDev.Stats().Reads
	killed := make(chan struct{})
	go func() {
		defer close(killed)
		deadline := time.Now().Add(10 * time.Second)
		for victimDev.Stats().Reads-baseReads < 15 {
			if time.Now().After(deadline) {
				return
			}
			time.Sleep(100 * time.Microsecond)
		}
		srvs[victim].Close()
	}()

	op := assembly.New(rootsIter(netDB.Roots), netDB.Store, netDB.Template, assembly.Options{
		Window:          8,
		CustomScheduler: assembly.NewShardElevator(router.Shards(), router.ShardOf),
		ShardPrefetch:   true,
		FaultPolicy:     assembly.RetryFaults,
		Tracer:          tr,
	})
	items, err := volcano.Drain(op)
	<-killed
	if err != nil {
		t.Fatalf("query did not survive the primary's death: %v", err)
	}
	checkOracle(t, "mid-kill query", items, oracle)

	// The primary stays down; the controller must promote. Wait for it.
	deadline := time.Now().Add(10 * time.Second)
	for ctrl.Promotions() < 1 {
		if time.Now().After(deadline) {
			t.Fatalf("no promotion within deadline; status: %+v", ctrl.Status())
		}
		time.Sleep(time.Millisecond)
	}
	if got := router.Epoch(victim); got != 1 {
		t.Errorf("router epoch for victim = %d, want 1", got)
	}
	if replSrv.Epoch() != 1 || replSrv.ReadOnly() {
		t.Errorf("promoted server epoch=%d readOnly=%v, want epoch 1, writable", replSrv.Epoch(), replSrv.ReadOnly())
	}
	if router.HasReplica(victim) {
		t.Error("victim still has a replica after promotion")
	}

	// Healthy again: a fresh query runs entirely on primaries — the
	// promoted member serves its share — and stays byte-identical.
	if err := netDB.Pool.EvictAll(); err != nil {
		t.Fatal(err)
	}
	degradedBefore := router.DegradedReads(victim)
	op2 := assembly.New(rootsIter(netDB.Roots), netDB.Store, netDB.Template, assembly.Options{
		Window:          8,
		CustomScheduler: assembly.NewShardElevator(router.Shards(), router.ShardOf),
		ShardPrefetch:   true,
		Tracer:          tr,
	})
	items2, err := volcano.Drain(op2)
	if err != nil {
		t.Fatalf("post-promotion query: %v", err)
	}
	checkOracle(t, "post-promotion query", items2, oracle)
	if got := router.DegradedReads(victim) - degradedBefore; got != 0 {
		t.Errorf("post-promotion query ran %d degraded reads, want 0", got)
	}

	// The promoted member accepts writes: read a victim-owned page and
	// write it back (a content no-op through the write path).
	var vp disk.PageID
	for ; router.ShardOf(vp) != victim; vp++ {
	}
	buf := make([]byte, router.PageSize())
	if err := router.ReadPage(vp, buf); err != nil {
		t.Fatal(err)
	}
	if err := router.WritePage(vp, buf); err != nil {
		t.Errorf("write to the promoted member: %v", err)
	}

	// Agreement: the controller's count, the registry's scrape, and the
	// event-trace replay all say exactly one promotion — and the
	// failover edge preceding it is in the stream too.
	if got := ctrl.Promotions(); got != 1 {
		t.Errorf("controller promotions = %d, want 1", got)
	}
	snap := reg.Snapshot()
	if got := snap.Value("asm_fleet_promotions_total"); got != 1 {
		t.Errorf("asm_fleet_promotions_total = %d, want 1", got)
	}
	rep := trace.ReplayEvents(col.Events())
	if rep.Promotions != 1 {
		t.Errorf("replay promotions = %d, want 1", rep.Promotions)
	}
	if rep.Failovers < 1 {
		t.Errorf("replay failovers = %d, want >= 1 (the degraded episode before promotion)", rep.Failovers)
	}
	if got := netDB.Pool.PinnedFrames(); got != 0 {
		t.Errorf("pinned frames after queries = %d, want 0", got)
	}

	stopCtrl()
	walClient.Close()
	router.Close()
	stopRepl()
	replSrv.Close()
	for i := 0; i < width; i++ {
		srvs[i].Close()
	}
	leakcheck.CheckWithin(t, before, 5*time.Second)
}

// TestFleetReshardAddMemberMidQuery is the resharding tentpole proof:
// while an assembly query streams over a three-member fleet, a fourth
// member joins and the migrator moves its pages live. The query must
// finish byte-identical to the oracle (no read ever sees zero or two
// owners), exactly the rendezvous-predicted page set must migrate, and
// the migrator's count, the registry, and the trace replay must agree.
func TestFleetReshardAddMemberMidQuery(t *testing.T) {
	before := leakcheck.Snapshot()

	db, err := gen.Build(gen.Config{
		NumComplexObjects: 150,
		Clustering:        gen.Unclustered,
		Seed:              907,
	})
	if err != nil {
		t.Fatal(err)
	}
	oracle := oracleRenders(t, db)
	manifest := filepath.Join(t.TempDir(), "manifest")
	if err := db.SaveManifest(manifest); err != nil {
		t.Fatal(err)
	}
	if err := db.Pool.FlushAll(); err != nil {
		t.Fatal(err)
	}

	names := []string{"m0", "m1", "m2"}
	const joiner = "m3"
	ms := make([]shard.Member, len(names))
	for i, n := range names {
		data := disk.New(0)
		copyPages(t, db.Device, data)
		ms[i] = shard.Member{Name: n, Primary: data}
	}
	reg := metrics.NewRegistry()
	col := trace.NewCollector()
	tr := trace.New(col)
	router, err := shard.New(shard.Config{
		Members:  ms,
		Retry:    disk.RetryPolicy{MaxAttempts: 4, BaseBackoff: 100 * time.Microsecond, MaxBackoff: time.Millisecond},
		Tracer:   tr,
		Registry: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer router.Close()

	// The predicted delta, from name sets alone (stub routers): the
	// pages the joiner is owed under pure rendezvous.
	predict := func(withJoiner bool) *shard.Router {
		ns := append([]string{}, names...)
		if withJoiner {
			ns = append(ns, joiner)
		}
		stub := make([]shard.Member, len(ns))
		for i, n := range ns {
			stub[i] = shard.Member{Name: n, Primary: disk.New(router.NumPages())}
		}
		sr, err := shard.New(shard.Config{Members: stub})
		if err != nil {
			t.Fatal(err)
		}
		return sr
	}
	post := predict(true)
	defer post.Close()
	postJoiner := post.MemberIndex(joiner)
	predicted := map[disk.PageID]bool{}
	for p := 0; p < router.NumPages(); p++ {
		if post.ShardOf(disk.PageID(p)) == postJoiner {
			predicted[disk.PageID(p)] = true
		}
	}
	if len(predicted) == 0 {
		t.Fatal("degenerate: joiner owed no pages")
	}

	mp, err := gen.LoadManifest(manifest)
	if err != nil {
		t.Fatal(err)
	}
	netDB, err := gen.OpenDatabaseOn(router, mp, 64)
	if err != nil {
		t.Fatal(err)
	}

	metaDev := disk.New(0)
	mg, err := NewMigrator(MigratorConfig{
		Router:     router,
		MetaDev:    metaDev,
		ChunkPages: 16,
		Registry:   reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer mg.Close()

	// Join once the query is demonstrably under way.
	baseReads := router.Stats().Reads
	joinerDev := disk.New(0)
	joined := make(chan struct{})
	var migrated int
	var joinErr error
	go func() {
		defer close(joined)
		deadline := time.Now().Add(10 * time.Second)
		for router.Stats().Reads-baseReads < 15 {
			if time.Now().After(deadline) {
				return
			}
			time.Sleep(100 * time.Microsecond)
		}
		migrated, joinErr = mg.Join(shard.Member{Name: joiner, Primary: joinerDev})
	}()

	// The elevator is built at the POST-join width: lanes are stable
	// identities, and pre-join no page routes to the empty fourth lane.
	op := assembly.New(rootsIter(netDB.Roots), netDB.Store, netDB.Template, assembly.Options{
		Window:          8,
		CustomScheduler: assembly.NewShardElevator(len(names)+1, router.ShardOf),
		ShardPrefetch:   true,
		Tracer:          tr,
	})
	items, err := volcano.Drain(op)
	<-joined
	if err != nil {
		t.Fatalf("query did not survive the live reshard: %v", err)
	}
	if joinErr != nil {
		t.Fatalf("join: %v", joinErr)
	}
	checkOracle(t, "mid-reshard query", items, oracle)

	// Exactly the predicted set moved.
	if migrated != len(predicted) {
		t.Errorf("migrated %d pages, predicted delta is %d", migrated, len(predicted))
	}
	if got := router.PendingPages(); got != 0 {
		t.Errorf("pending pages after join = %d, want 0", got)
	}
	newIdx := router.MemberIndex(joiner)
	for p := 0; p < router.NumPages(); p++ {
		id := disk.PageID(p)
		if got, want := router.ShardOf(id) == newIdx, predicted[id]; got != want {
			t.Fatalf("page %d routes to joiner=%v, predicted %v", p, got, want)
		}
	}

	// The durable ownership log covers the delta, attributed to the
	// joiner.
	recs, err := wal.ScanOwnership(metaDev)
	if err != nil {
		t.Fatal(err)
	}
	durable := 0
	for _, rec := range recs {
		if rec.Owner != joiner {
			t.Fatalf("ownership record names %q, want %q", rec.Owner, joiner)
		}
		for p := rec.Lo; p < rec.Hi; p++ {
			if predicted[p] {
				durable++
			}
		}
	}
	if durable != len(predicted) {
		t.Errorf("ownership log covers %d delta pages, want %d", durable, len(predicted))
	}

	// Agreement: migrator count == registry scrape == trace replay.
	if got := mg.PagesMigrated(); got != int64(len(predicted)) {
		t.Errorf("PagesMigrated = %d, want %d", got, len(predicted))
	}
	snap := reg.Snapshot()
	if got := snap.Value("asm_fleet_pages_migrated_total"); got != int64(len(predicted)) {
		t.Errorf("asm_fleet_pages_migrated_total = %d, want %d", got, len(predicted))
	}
	rep := trace.ReplayEvents(col.Events())
	if rep.PagesMigrated != int64(len(predicted)) {
		t.Errorf("replay pages migrated = %d, want %d", rep.PagesMigrated, len(predicted))
	}

	// A post-reshard query over the rebalanced fleet is still
	// byte-identical, with the joiner's lane doing real work.
	if err := netDB.Pool.EvictAll(); err != nil {
		t.Fatal(err)
	}
	joinerReadsBefore := joinerDev.Stats().Reads
	op2 := assembly.New(rootsIter(netDB.Roots), netDB.Store, netDB.Template, assembly.Options{
		Window:          8,
		CustomScheduler: assembly.NewShardElevator(router.Shards(), router.ShardOf),
		ShardPrefetch:   true,
		Tracer:          tr,
	})
	items2, err := volcano.Drain(op2)
	if err != nil {
		t.Fatalf("post-reshard query: %v", err)
	}
	checkOracle(t, "post-reshard query", items2, oracle)
	if got := joinerDev.Stats().Reads - joinerReadsBefore; got == 0 {
		t.Error("post-reshard query never read from the joiner")
	}
	if got := netDB.Pool.PinnedFrames(); got != 0 {
		t.Errorf("pinned frames = %d, want 0", got)
	}
	leakcheck.CheckWithin(t, before, 5*time.Second)
}
