// Package fleet is the control plane over a sharded page-service
// fleet: a Controller that watches per-shard health and promotes a
// member's WAL-shipped replica to writable primary after sustained
// loss, and a Migrator that reshards live — copying a joining member's
// rendezvous-owed pages and cutting them over under WAL-logged
// ownership records so a crash mid-migration recovers to exactly-one-
// owner state.
//
// Both halves drive the data plane through injectable handles (probe,
// promote, LSN functions; a shard.Router; a wal.Writer), so tests run
// them against in-process fleets with deterministic clocks, and the
// daemons wire them to real pagesvc clients.
package fleet

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"time"

	"revelation/internal/disk"
	"revelation/internal/metrics"
)

// Member is one shard as the controller sees it, through handles the
// caller wires to the data plane.
type Member struct {
	// Name is the shard's identity (shard.Member.Name).
	Name string
	// Probe checks the primary's liveness — typically
	// pagesvc.Client.Ping, one attempt, short timeout. nil members are
	// never probed (and never promoted).
	Probe func() error
	// ReplicaLSN reports the replica's applied LSN, 0 when there is no
	// replica (which also disqualifies promotion).
	ReplicaLSN func() uint64
	// Epoch reports the shard's current fencing epoch
	// (shard.Router.Epoch).
	Epoch func() uint64
	// Promote performs the full promotion at the given epoch: tell the
	// replica's server to go writable (pagesvc.Client.Promote) and flip
	// the router (shard.Router.PromoteReplica). An error leaves the
	// member down and the controller retrying next tick.
	Promote func(epoch uint64) error
}

// Config tunes a Controller.
type Config struct {
	// Members are the shards under watch.
	Members []Member
	// SustainedLoss is how long a member's probe must fail continuously
	// before promotion is considered; zero means 500ms. Blips shorter
	// than this never promote.
	SustainedLoss time.Duration
	// ConfirmProbes is how many extra jittered probes must ALL fail,
	// after the sustained-loss window, before promotion fires; zero
	// means 2. One probe succeeding resets the loss window: promotion
	// is deliberately pessimistic, a needless promotion costs a
	// replica.
	ConfirmProbes int
	// ProbeJitter bounds the random pause between confirmation probes
	// (full jitter, so a fleet of controllers does not stampede); zero
	// means none.
	ProbeJitter time.Duration
	// JitterSeed seeds the jitter; zero uses a fixed default.
	JitterSeed int64
	// LSNFloor, when set, is the promotion catch-up floor: a replica
	// whose applied LSN is behind it is not promoted yet (promoting it
	// would serve stale pages as the new write master). Wire it to the
	// data WAL's DurableLSN.
	LSNFloor func() uint64
	// Clock supplies the time; nil means time.Now. Tests inject a fake
	// to walk the sustained-loss window deterministically.
	Clock func() time.Time
	// Registry, when set, receives asm_fleet_promotions_total.
	Registry *metrics.Registry
}

// memberState is the controller's per-member health bookkeeping.
type memberState struct {
	downSince time.Time
	down      bool
	promoted  bool
	epoch     uint64
	lastErr   string
}

// Promotion records one promotion the controller performed.
type Promotion struct {
	Member string
	Epoch  uint64
}

// Controller watches the fleet and promotes replicas. Drive it either
// by calling Tick at will (tests) or Run in a goroutine (daemons).
type Controller struct {
	cfg    Config
	jitter *disk.Jitter

	mu     sync.Mutex
	states []memberState
	done   chan struct{}
	closed bool

	promotions metrics.Counter
}

// NewController builds a controller; it does nothing until Tick or Run.
func NewController(cfg Config) *Controller {
	if cfg.SustainedLoss <= 0 {
		cfg.SustainedLoss = 500 * time.Millisecond
	}
	if cfg.ConfirmProbes <= 0 {
		cfg.ConfirmProbes = 2
	}
	if cfg.Clock == nil {
		cfg.Clock = time.Now
	}
	seed := cfg.JitterSeed
	if seed == 0 {
		seed = 0x1eef
	}
	c := &Controller{
		cfg:    cfg,
		jitter: disk.NewJitter(seed),
		states: make([]memberState, len(cfg.Members)),
		done:   make(chan struct{}),
	}
	if reg := cfg.Registry; reg != nil {
		reg.Attach("asm_fleet_promotions_total", "Replica promotions performed by the fleet controller.", &c.promotions)
	}
	return c
}

// Promotions returns how many promotions the controller has performed.
func (c *Controller) Promotions() int64 { return c.promotions.Value() }

// Tick probes every member once and promotes any that has been down
// past the sustained-loss window, survived the confirmation probes,
// and has a caught-up replica. It returns the promotions performed
// this tick. Tick is safe to call concurrently with itself only in the
// trivial sense (it serializes internally); the intended use is one
// caller.
func (c *Controller) Tick(now time.Time) []Promotion {
	var fired []Promotion
	for i := range c.cfg.Members {
		if p, ok := c.tickMember(i, now); ok {
			fired = append(fired, p)
		}
	}
	return fired
}

func (c *Controller) tickMember(i int, now time.Time) (Promotion, bool) {
	m := &c.cfg.Members[i]
	if m.Probe == nil {
		return Promotion{}, false
	}
	c.mu.Lock()
	st := &c.states[i]
	if st.promoted {
		c.mu.Unlock()
		return Promotion{}, false
	}
	c.mu.Unlock()

	err := m.Probe()
	c.mu.Lock()
	if err == nil {
		st.down = false
		st.lastErr = ""
		c.mu.Unlock()
		return Promotion{}, false
	}
	st.lastErr = err.Error()
	if !st.down {
		st.down = true
		st.downSince = now
		c.mu.Unlock()
		return Promotion{}, false
	}
	if now.Sub(st.downSince) < c.cfg.SustainedLoss {
		c.mu.Unlock()
		return Promotion{}, false
	}
	c.mu.Unlock()

	// Sustained loss established. Confirmation probes, jitter-spaced:
	// ONE success is a stay of execution — the window resets.
	for n := 0; n < c.cfg.ConfirmProbes; n++ {
		if jit := c.cfg.ProbeJitter; jit > 0 {
			d := c.jitter.Backoff(disk.RetryPolicy{BaseBackoff: jit, MaxBackoff: jit}, 1)
			select {
			case <-c.done:
				return Promotion{}, false
			case <-time.After(d):
			}
		}
		if m.Probe() == nil {
			c.mu.Lock()
			st.down = false
			c.mu.Unlock()
			return Promotion{}, false
		}
	}

	// The replica must exist and be caught up to the floor: promoting
	// a laggard would resurrect old page images as the write master.
	if m.ReplicaLSN == nil {
		return Promotion{}, false
	}
	applied := m.ReplicaLSN()
	if c.cfg.LSNFloor != nil {
		if floor := c.cfg.LSNFloor(); applied < floor {
			c.mu.Lock()
			st.lastErr = fmt.Sprintf("replica at LSN %d behind floor %d", applied, floor)
			c.mu.Unlock()
			return Promotion{}, false
		}
	}

	epoch := uint64(1)
	if m.Epoch != nil {
		epoch = m.Epoch() + 1
	}
	if m.Promote == nil {
		return Promotion{}, false
	}
	if perr := m.Promote(epoch); perr != nil {
		c.mu.Lock()
		st.lastErr = perr.Error()
		c.mu.Unlock()
		return Promotion{}, false
	}
	c.mu.Lock()
	st.promoted = true
	st.epoch = epoch
	st.down = false
	c.mu.Unlock()
	c.promotions.Inc()
	return Promotion{Member: m.Name, Epoch: epoch}, true
}

// Run ticks the controller at the given interval until Stop. It is the
// daemon entry point; tests prefer Tick.
func (c *Controller) Run(interval time.Duration) {
	if interval <= 0 {
		interval = 100 * time.Millisecond
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-c.done:
			return
		case <-t.C:
			c.Tick(c.cfg.Clock())
		}
	}
}

// Stop halts Run and any in-flight confirmation pause.
func (c *Controller) Stop() {
	c.mu.Lock()
	if !c.closed {
		c.closed = true
		close(c.done)
	}
	c.mu.Unlock()
}

// MemberStatus is one member's controller-eye view, for /fleetz.
type MemberStatus struct {
	Name     string
	Down     bool
	Promoted bool
	Epoch    uint64
	LastErr  string
}

// Status returns every member's state, in member order.
func (c *Controller) Status() []MemberStatus {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]MemberStatus, len(c.cfg.Members))
	for i := range c.cfg.Members {
		st := c.states[i]
		out[i] = MemberStatus{
			Name:     c.cfg.Members[i].Name,
			Down:     st.down,
			Promoted: st.promoted,
			Epoch:    st.epoch,
			LastErr:  st.lastErr,
		}
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Name < out[b].Name })
	return out
}

// WriteStatus renders the controller's view as text (the /fleetz
// body).
func (c *Controller) WriteStatus(w io.Writer) {
	fmt.Fprintf(w, "fleet: %d members, %d promotions\n", len(c.cfg.Members), c.Promotions())
	for _, st := range c.Status() {
		health := "up"
		if st.Down {
			health = "down"
		}
		if st.Promoted {
			health = fmt.Sprintf("promoted (epoch %d)", st.Epoch)
		}
		fmt.Fprintf(w, "  %-20s %s", st.Name, health)
		if st.LastErr != "" {
			fmt.Fprintf(w, "  last error: %s", st.LastErr)
		}
		fmt.Fprintln(w)
	}
}
