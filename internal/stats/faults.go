package stats

import (
	"fmt"

	"revelation/internal/assembly"
	"revelation/internal/buffer"
	"revelation/internal/disk"
)

// FaultReport aggregates the fault and recovery counters of one
// assembly run across the whole I/O stack: what the device injected,
// what the buffer pool and disk server absorbed by retrying, and what
// the operator retried, quarantined, or stalled on.
type FaultReport struct {
	// Device is the injector's view: faults actually delivered.
	Device disk.FaultStats
	// PoolRetries counts device reads/writes the buffer pool repeated
	// under its retry policy.
	PoolRetries int64
	// ServerRetries counts reads the disk server repeated under its
	// retry policy.
	ServerRetries int64
	// Assembled and Skipped partition the complex objects the operator
	// finished with: emitted versus quarantined.
	Assembled int
	Skipped   int
	// FaultRetries counts reference fetches the operator re-queued
	// after a transient fault (the RetryFaults policy).
	FaultRetries int
	// WindowStalls counts buffer-pressure episodes in which the
	// effective window shrank.
	WindowStalls int
}

// CollectFaults builds a FaultReport from the layers of one run. Any
// of dev, pool, srv may be nil when that layer was not in play.
func CollectFaults(dev *disk.Faulty, pool *buffer.Pool, srv *disk.Server, st assembly.Stats) FaultReport {
	r := FaultReport{
		Assembled:    st.Assembled,
		Skipped:      st.Skipped,
		FaultRetries: st.FaultRetries,
		WindowStalls: st.WindowStalls,
	}
	if dev != nil {
		r.Device = dev.FaultStats()
	}
	if pool != nil {
		r.PoolRetries = pool.Stats().Retries
	}
	if srv != nil {
		r.ServerRetries = srv.Retries()
	}
	return r
}

// LossRate is the fraction of finished complex objects that were
// quarantined; 0 when nothing finished.
func (r FaultReport) LossRate() float64 {
	total := r.Assembled + r.Skipped
	if total == 0 {
		return 0
	}
	return float64(r.Skipped) / float64(total)
}

func (r FaultReport) String() string {
	return fmt.Sprintf(
		"faults: injected %d transient / %d permanent / %d latency; "+
			"retried %d (pool) + %d (server) + %d (operator); "+
			"assembled %d, quarantined %d (loss %.1f%%), window stalls %d",
		r.Device.Transient, r.Device.Permanent, r.Device.Latency,
		r.PoolRetries, r.ServerRetries, r.FaultRetries,
		r.Assembled, r.Skipped, 100*r.LossRate(), r.WindowStalls)
}
