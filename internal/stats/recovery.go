package stats

import (
	"fmt"

	"revelation/internal/buffer"
	"revelation/internal/disk"
	"revelation/internal/page"
	"revelation/internal/wal"
)

// RecoveryReport aggregates one crash-recovery cycle across the
// durability stack: what the checksum scan caught before redo ran, what
// the log replay reinstalled, and what the scan says afterwards. It is
// the recovery-side sibling of FaultReport.
type RecoveryReport struct {
	// BadBefore lists the data pages failing checksum verification
	// before recovery — the damage the crash actually left.
	BadBefore []disk.PageID
	// BadAfter lists pages still failing after recovery; a correct
	// recovery always leaves this empty.
	BadAfter []disk.PageID
	// Log is the replay's own accounting (records scanned, images
	// redone, pages already current, torn tail).
	Log wal.Result
	// PoolChecksumFails counts corrupt reads the buffer pool refused
	// during the post-recovery verification pass, when a pool is given.
	PoolChecksumFails int64
}

// CollectRecovery scans dataDev before and after replaying walDev onto
// it, returning the aggregated report. The pool, when non-nil, is read
// for its checksum-failure counter (pass the pool used for verification
// after recovery). Scan errors and recovery errors are returned as-is;
// the report is valid only on a nil error.
func CollectRecovery(walDev, dataDev disk.Device, pool *buffer.Pool, opts wal.Options) (RecoveryReport, error) {
	var r RecoveryReport
	bad, err := page.VerifyDevice(dataDev)
	if err != nil {
		return r, err
	}
	r.BadBefore = bad
	res, err := wal.Recover(walDev, dataDev, opts)
	if err != nil {
		return r, err
	}
	r.Log = *res
	if r.BadAfter, err = page.VerifyDevice(dataDev); err != nil {
		return r, err
	}
	if pool != nil {
		r.PoolChecksumFails = pool.Stats().ChecksumFails
	}
	return r, nil
}

// Clean reports whether recovery restored full integrity: nothing fails
// checksum verification afterwards.
func (r RecoveryReport) Clean() bool { return len(r.BadAfter) == 0 }

func (r RecoveryReport) String() string {
	tail := "clean tail"
	if r.Log.TornTail {
		tail = "torn tail discarded"
	}
	return fmt.Sprintf(
		"recovery: %d pages corrupt before, %d after; "+
			"log replayed %d records (%d redone, %d current, %s, next LSN %d)",
		len(r.BadBefore), len(r.BadAfter),
		r.Log.Records, r.Log.Redone, r.Log.SkippedOlder, tail, r.Log.NextLSN)
}
