// Package stats collects the statistical annotations the assembly
// templates carry (Section 5 of the paper): the degree of sharing
// between objects, and predicate selectivities. The paper assumes the
// statistics exist; this package derives them from the data, the way a
// Revelation statistics pass would.
package stats

import (
	"errors"
	"fmt"

	"revelation/internal/assembly"
	"revelation/internal/expr"
	"revelation/internal/heap"
	"revelation/internal/object"
)

// SharingReport describes one template node's observed sharing.
type SharingReport struct {
	Node *assembly.Template
	// Refs counts references that reached the node in the sample.
	Refs int
	// Distinct counts distinct target objects.
	Distinct int
	// Degree is Distinct/Refs — the paper's "ratio of shared objects
	// to sharing objects" (1.0 means no sharing).
	Degree float64
}

// SharedThreshold is the degree below which CollectSharing marks a
// node shared: below it, a meaningful fraction of references point at
// common objects.
const SharedThreshold = 0.95

// CollectSharing samples up to `sample` complex objects (all of them
// when sample <= 0), measures the sharing degree at every template
// node, and writes Shared/SharingDegree annotations back into the
// template. It returns the per-node reports in template walk order.
func CollectSharing(store *object.Store, tmpl *assembly.Template, roots []object.OID, sample int) ([]SharingReport, error) {
	if tmpl == nil {
		return nil, errors.New("stats: nil template")
	}
	if sample <= 0 || sample > len(roots) {
		sample = len(roots)
	}
	type acc struct {
		refs    int
		targets map[object.OID]bool
	}
	counts := map[*assembly.Template]*acc{}
	tmpl.Walk(func(n *assembly.Template, _ int) {
		counts[n] = &acc{targets: map[object.OID]bool{}}
	})

	var visit func(oid object.OID, node *assembly.Template) error
	visit = func(oid object.OID, node *assembly.Template) error {
		a := counts[node]
		a.refs++
		a.targets[oid] = true
		o, err := store.Get(oid)
		if err != nil {
			return fmt.Errorf("stats: %v: %w", oid, err)
		}
		for _, c := range node.Children {
			if c.RefField >= len(o.Refs) {
				continue
			}
			ref := o.Refs[c.RefField]
			if ref.IsNil() {
				continue
			}
			if err := visit(ref, c); err != nil {
				return err
			}
		}
		return nil
	}
	for _, root := range roots[:sample] {
		if err := visit(root, tmpl); err != nil {
			return nil, err
		}
	}

	var reports []SharingReport
	tmpl.Walk(func(n *assembly.Template, _ int) {
		a := counts[n]
		degree := 1.0
		if a.refs > 0 {
			degree = float64(len(a.targets)) / float64(a.refs)
		}
		// The root is referenced once per complex object by
		// definition; only annotate real component nodes.
		if n != tmpl {
			n.Shared = degree < SharedThreshold
			if n.Shared {
				n.SharingDegree = degree
			} else {
				n.SharingDegree = 0
			}
		}
		reports = append(reports, SharingReport{
			Node:     n,
			Refs:     a.refs,
			Distinct: len(a.targets),
			Degree:   degree,
		})
	})
	return reports, nil
}

// EstimateSelectivity samples up to `sample` objects of the given
// class from the file (all when sample <= 0) and returns the fraction
// that satisfy pred. It fails when no objects of the class exist.
func EstimateSelectivity(f *heap.File, class object.ClassID, pred expr.Predicate, sample int) (float64, error) {
	if pred == nil {
		return 1, nil
	}
	seen, passed := 0, 0
	err := f.Scan(func(_ heap.RID, rec []byte) bool {
		cls, err := object.PeekClass(rec)
		if err != nil || (class != 0 && cls != class) {
			return true
		}
		o, err := object.Decode(rec)
		if err != nil {
			return true
		}
		seen++
		if pred.Eval(o) {
			passed++
		}
		return sample <= 0 || seen < sample
	})
	if err != nil {
		return 0, err
	}
	if seen == 0 {
		return 0, fmt.Errorf("stats: no objects of class %d sampled", class)
	}
	return float64(passed) / float64(seen), nil
}

// Measured wraps a predicate with a measured selectivity, overriding
// its own estimate for scheduling purposes.
type Measured struct {
	expr.Predicate
	Sel float64
}

// Selectivity implements expr.Predicate.
func (m Measured) Selectivity() float64 {
	if m.Sel <= 0 || m.Sel > 1 {
		return m.Predicate.Selectivity()
	}
	return m.Sel
}

func (m Measured) String() string {
	return fmt.Sprintf("%s [measured sel=%.3f]", m.Predicate, m.Sel)
}

// AnnotatePredicate measures pred's selectivity over the class and
// installs the measured wrapper on the template node.
func AnnotatePredicate(f *heap.File, node *assembly.Template, pred expr.Predicate, sample int) error {
	sel, err := EstimateSelectivity(f, node.Class, pred, sample)
	if err != nil {
		return err
	}
	node.Pred = Measured{Predicate: pred, Sel: sel}
	return nil
}
