package stats

import (
	"math"
	"testing"

	"revelation/internal/assembly"
	"revelation/internal/expr"
	"revelation/internal/gen"
	"revelation/internal/object"
	"revelation/internal/volcano"
)

func buildShared(t *testing.T, sharing float64) *gen.Database {
	t.Helper()
	db, err := gen.Build(gen.Config{NumComplexObjects: 500, Sharing: sharing, Seed: 31})
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func TestCollectSharingFindsLeafSharing(t *testing.T) {
	db := buildShared(t, 0.25)
	// Start from a blank template (no annotations).
	tmpl := db.Template.Clone()
	tmpl.Walk(func(n *assembly.Template, _ int) { n.Shared = false; n.SharingDegree = 0 })

	reports, err := CollectSharing(db.Store, tmpl, db.Roots, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 7 {
		t.Fatalf("reports = %d", len(reports))
	}
	// Inner nodes (positions B, C) are unshared: degree ~1.
	for _, name := range []string{"B", "C"} {
		n := tmpl.FindByName(name)
		if n.Shared {
			t.Errorf("inner node %s marked shared", name)
		}
	}
	// Leaves: degree should approximate the generator's 0.25 (random
	// draws hit most of each pool; tolerance is generous).
	for _, name := range []string{"D", "E", "F", "G"} {
		n := tmpl.FindByName(name)
		if !n.Shared {
			t.Fatalf("leaf %s not marked shared", name)
		}
		if n.SharingDegree < 0.15 || n.SharingDegree > 0.35 {
			t.Errorf("leaf %s degree = %v, want ~0.25", name, n.SharingDegree)
		}
	}
}

func TestCollectSharingNoSharing(t *testing.T) {
	db := buildShared(t, 0)
	tmpl := db.Template.Clone()
	if _, err := CollectSharing(db.Store, tmpl, db.Roots, 100); err != nil {
		t.Fatal(err)
	}
	tmpl.Walk(func(n *assembly.Template, _ int) {
		if n.Shared {
			t.Errorf("node %s marked shared in a sharing-free database", n.Name)
		}
	})
}

func TestCollectSharingSampling(t *testing.T) {
	db := buildShared(t, 0.25)
	tmpl := db.Template.Clone()
	reports, err := CollectSharing(db.Store, tmpl, db.Roots, 50)
	if err != nil {
		t.Fatal(err)
	}
	// The root report must show exactly the sample size.
	if reports[0].Refs != 50 {
		t.Errorf("sampled %d roots, want 50", reports[0].Refs)
	}
}

func TestCollectSharingErrors(t *testing.T) {
	db := buildShared(t, 0)
	if _, err := CollectSharing(db.Store, nil, db.Roots, 0); err == nil {
		t.Error("nil template accepted")
	}
	if _, err := CollectSharing(db.Store, db.Template, []object.OID{999999}, 0); err == nil {
		t.Error("dangling root not reported")
	}
}

func TestEstimateSelectivity(t *testing.T) {
	db := buildShared(t, 0)
	// ints[1] is uniform over [0, 1000): a < 100 predicate should
	// measure ~0.1 over any class.
	cls := db.Positions[6] // leaf class G
	sel, err := EstimateSelectivity(db.Store.File, cls.ID, expr.IntCmp{Field: 1, Op: expr.LT, Value: 100}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sel-0.1) > 0.04 {
		t.Errorf("selectivity = %v, want ~0.1", sel)
	}
	// Unknown class errors.
	if _, err := EstimateSelectivity(db.Store.File, 999, expr.True{}, 0); err == nil {
		t.Error("empty class sample accepted")
	}
	// Nil predicate has selectivity 1.
	if s, err := EstimateSelectivity(db.Store.File, cls.ID, nil, 0); err != nil || s != 1 {
		t.Errorf("nil predicate = (%v, %v)", s, err)
	}
}

func TestMeasuredWrapper(t *testing.T) {
	base := expr.IntCmp{Field: 0, Op: expr.LT, Value: 5} // default sel 0.5
	m := Measured{Predicate: base, Sel: 0.07}
	if m.Selectivity() != 0.07 {
		t.Errorf("measured selectivity = %v", m.Selectivity())
	}
	o := &object.Object{Ints: []int32{3}}
	if !m.Eval(o) {
		t.Error("wrapper broke evaluation")
	}
	bad := Measured{Predicate: base, Sel: 0}
	if bad.Selectivity() != 0.5 {
		t.Errorf("invalid measured sel should fall back: %v", bad.Selectivity())
	}
	if m.String() == "" {
		t.Error("empty string")
	}
}

func TestAnnotatePredicateDrivesScheduling(t *testing.T) {
	// End to end: measure a predicate's selectivity, annotate the
	// template, and confirm predicate-first scheduling reads less than
	// the unannotated plan.
	db, err := gen.Build(gen.Config{NumComplexObjects: 400, Clustering: gen.Unclustered, Seed: 33})
	if err != nil {
		t.Fatal(err)
	}
	tmpl := db.Template.Clone()
	leaf := tmpl.Children[1].Children[1]
	if err := AnnotatePredicate(db.Store.File, leaf, expr.IntCmp{Field: 1, Op: expr.LT, Value: 100}, 0); err != nil {
		t.Fatal(err)
	}
	if leaf.Pred.Selectivity() > 0.2 {
		t.Fatalf("annotated selectivity = %v", leaf.Pred.Selectivity())
	}
	if err := db.Pool.EvictAll(); err != nil {
		t.Fatal(err)
	}
	items := make([]volcano.Item, len(db.Roots))
	for i, r := range db.Roots {
		items[i] = r
	}
	op := assembly.New(volcano.NewSlice(items), db.Store, tmpl, assembly.Options{
		Window: 25, Scheduler: assembly.Elevator, PredicateFirst: true,
	})
	if _, err := volcano.Drain(op); err != nil {
		t.Fatal(err)
	}
	st := op.Stats()
	if st.Assembled+st.Aborted != 400 {
		t.Fatalf("stats = %+v", st)
	}
	// ~90% of trees abort after root+one-level fetches: far fewer than
	// the full 2800 fetches.
	if st.Fetched >= 2400 {
		t.Errorf("predicate-first with measured stats fetched %d", st.Fetched)
	}
}
