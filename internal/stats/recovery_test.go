package stats

import (
	"strings"
	"testing"

	"revelation/internal/buffer"
	"revelation/internal/disk"
	"revelation/internal/page"
	"revelation/internal/wal"
)

// TestCollectRecovery crashes a tiny workload with a torn final write,
// then checks the report sees the damage before recovery and none
// after.
func TestCollectRecovery(t *testing.T) {
	walDev := disk.New(0)
	dataDev := disk.New(2)
	w, err := wal.Open(walDev)
	if err != nil {
		t.Fatal(err)
	}
	pool := buffer.New(dataDev, 4, buffer.LRU)
	pool.SetWAL(w)
	f, err := pool.Fix(1)
	if err != nil {
		t.Fatal(err)
	}
	p := page.Wrap(f.Data())
	p.Init(0x5754)
	if _, err := p.Insert([]byte("the only record")); err != nil {
		t.Fatal(err)
	}
	if err := pool.Unfix(f, true); err != nil {
		t.Fatal(err)
	}
	if err := pool.FlushAll(); err != nil {
		t.Fatal(err)
	}

	// Tear the flushed page by hand: keep the first sector, zero the
	// rest, as an interrupted write would.
	buf := make([]byte, dataDev.PageSize())
	if err := dataDev.ReadPage(1, buf); err != nil {
		t.Fatal(err)
	}
	for i := disk.SectorSize; i < len(buf); i++ {
		buf[i] = 0xEE
	}
	if err := dataDev.WritePage(1, buf); err != nil {
		t.Fatal(err)
	}

	r, err := CollectRecovery(walDev, dataDev, pool, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.BadBefore) != 1 || r.BadBefore[0] != 1 {
		t.Errorf("BadBefore = %v, want [1]", r.BadBefore)
	}
	if !r.Clean() {
		t.Errorf("recovery left corrupt pages: %v", r.BadAfter)
	}
	if r.Log.Redone != 1 {
		t.Errorf("Redone = %d, want 1", r.Log.Redone)
	}
	if s := r.String(); !strings.Contains(s, "1 pages corrupt before, 0 after") {
		t.Errorf("String() = %q", s)
	}
}
