package stats

import (
	"strings"
	"testing"

	"revelation/internal/assembly"
	"revelation/internal/disk"
	"revelation/internal/gen"
	"revelation/internal/volcano"
)

// TestCollectFaults runs a faulted assembly end to end and checks the
// report agrees with every layer's own counters.
func TestCollectFaults(t *testing.T) {
	fd := disk.NewFaulty(disk.New(0), disk.FaultConfig{})
	db, err := gen.Build(gen.Config{
		NumComplexObjects: 80,
		Clustering:        gen.Unclustered,
		Seed:              7,
		Device:            fd,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Pool.EvictAll(); err != nil {
		t.Fatal(err)
	}
	fd.SetConfig(disk.FaultConfig{
		Seed:              21,
		TransientRate:     0.05,
		TransientFailures: 1,
		PermanentRate:     0.01,
	})

	items := make([]volcano.Item, len(db.Roots))
	for i, root := range db.Roots {
		items[i] = root
	}
	op := assembly.New(volcano.NewSlice(items), db.Store, db.Template, assembly.Options{
		Window:      16,
		Scheduler:   assembly.Elevator,
		FaultPolicy: assembly.RetryFaults,
	})
	if _, err := volcano.Count(op); err != nil {
		t.Fatalf("faulted run: %v", err)
	}

	st := op.Stats()
	rep := CollectFaults(fd, db.Pool, nil, st)
	if rep.Device != fd.FaultStats() {
		t.Errorf("Device = %+v, want %+v", rep.Device, fd.FaultStats())
	}
	if rep.Device.Transient == 0 {
		t.Error("no transient faults injected — test is vacuous")
	}
	if rep.Assembled != st.Assembled || rep.Skipped != st.Skipped {
		t.Errorf("objects: report %d/%d, operator %d/%d", rep.Assembled, rep.Skipped, st.Assembled, st.Skipped)
	}
	if rep.FaultRetries != st.FaultRetries || rep.FaultRetries == 0 {
		t.Errorf("FaultRetries = %d, operator says %d", rep.FaultRetries, st.FaultRetries)
	}
	if rep.Assembled+rep.Skipped != len(db.Roots) {
		t.Errorf("finished %d complex objects, want %d", rep.Assembled+rep.Skipped, len(db.Roots))
	}
	if got, want := rep.LossRate(), float64(rep.Skipped)/float64(len(db.Roots)); got != want {
		t.Errorf("LossRate = %v, want %v", got, want)
	}
	for _, frag := range []string{"assembled", "quarantined", "transient", "pool"} {
		if !strings.Contains(rep.String(), frag) {
			t.Errorf("String() missing %q: %s", frag, rep)
		}
	}
}

// TestCollectFaultsNilLayers: absent layers contribute zeroes, not
// panics.
func TestCollectFaultsNilLayers(t *testing.T) {
	rep := CollectFaults(nil, nil, nil, assembly.Stats{Assembled: 3, Skipped: 1})
	if rep.PoolRetries != 0 || rep.ServerRetries != 0 || rep.Device != (disk.FaultStats{}) {
		t.Errorf("nil layers leaked counters: %+v", rep)
	}
	if rep.LossRate() != 0.25 {
		t.Errorf("LossRate = %v, want 0.25", rep.LossRate())
	}
	if (FaultReport{}).LossRate() != 0 {
		t.Error("empty report LossRate != 0")
	}
}
