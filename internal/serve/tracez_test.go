package serve

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"revelation/internal/leakcheck"
	"revelation/internal/metrics"
	"revelation/internal/qtrace"
)

// tracedServer wires a collector-backed server whose query opens a
// child span and books some attributable work.
func tracedServer(t *testing.T, ringCap int) (*httptest.Server, *qtrace.Collector) {
	t.Helper()
	qc := qtrace.NewCollector(ringCap)
	s := New(Options{
		Registry: metrics.NewRegistry(),
		QTrace:   qc,
		Query: func(ctx context.Context) (string, error) {
			sp, _ := qtrace.Start(ctx, qtrace.LayerAssembly, "work")
			for i := 0; i < 5; i++ {
				sp.OnFetch()
			}
			sp.OnRead(3)
			sp.End()
			return "assembled 5 complex objects", nil
		},
	})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return ts, qc
}

func TestQueryIsTraced(t *testing.T) {
	ts, qc := tracedServer(t, 8)
	_, resp := get(t, ts.URL+"/query")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	qid, err := strconv.ParseUint(resp.Header.Get("X-Query-Id"), 10, 64)
	if err != nil || qid == 0 {
		t.Fatalf("X-Query-Id header %q: %v", resp.Header.Get("X-Query-Id"), err)
	}
	done := qc.Completed()
	if len(done) != 1 || done[0].QID != qid {
		t.Fatalf("collector completed %d traces, want the one with qid %d", len(done), qid)
	}
	total := done[0].Total()
	if total.Fetches != 5 || total.Reads != 1 || total.SeekPages != 3 {
		t.Errorf("trace counters %+v, want 5 fetches, 1 read, 3 seek pages", total)
	}

	body, resp := get(t, ts.URL+"/tracez")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("tracez status %d", resp.StatusCode)
	}
	for _, want := range []string{fmt.Sprintf("qid=%d", qid), "/query", "work", "fetches=5"} {
		if !strings.Contains(body, want) {
			t.Errorf("tracez missing %q in:\n%s", want, body)
		}
	}

	body, _ = get(t, ts.URL+"/statusz")
	if !strings.Contains(body, "query latency over 1 queries") {
		t.Errorf("statusz missing the latency quantile line:\n%s", body)
	}
}

// TestTracezUnderConcurrentQueries hammers /query, /tracez, and
// /statusz from concurrent goroutines — the data-race and leak check
// for the whole tracing read path. Run with -race.
func TestTracezUnderConcurrentQueries(t *testing.T) {
	goroutines := leakcheck.Snapshot()

	const workers = 8
	const perWorker = 20
	// A ring holding every query keeps TotalAll() the aggregate of the
	// whole run rather than the retained suffix.
	ts, qc := tracedServer(t, workers*perWorker)
	var wg sync.WaitGroup
	var mu sync.Mutex
	seen := map[uint64]bool{}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				_, resp := get(t, ts.URL+"/query")
				if resp.StatusCode != http.StatusOK {
					t.Errorf("query status %d", resp.StatusCode)
					return
				}
				qid, err := strconv.ParseUint(resp.Header.Get("X-Query-Id"), 10, 64)
				if err != nil || qid == 0 {
					t.Errorf("bad X-Query-Id %q", resp.Header.Get("X-Query-Id"))
					return
				}
				mu.Lock()
				if seen[qid] {
					t.Errorf("qid %d issued twice", qid)
				}
				seen[qid] = true
				mu.Unlock()
			}
		}()
	}
	// Readers race the queries: they must always get a coherent page,
	// never a torn trace or a race report.
	stop := make(chan struct{})
	var readers sync.WaitGroup
	for _, path := range []string{"/tracez", "/statusz"} {
		readers.Add(1)
		go func(path string) {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				body, resp := get(t, ts.URL+path)
				if resp.StatusCode != http.StatusOK || body == "" {
					t.Errorf("%s: status %d, %d bytes", path, resp.StatusCode, len(body))
					return
				}
			}
		}(path)
	}
	wg.Wait()
	close(stop)
	readers.Wait()

	if got := len(seen); got != workers*perWorker {
		t.Fatalf("issued %d distinct qids, want %d", got, workers*perWorker)
	}
	lat := qc.Latency()
	if lat.Count != workers*perWorker {
		t.Errorf("latency histogram holds %d samples, want %d", lat.Count, workers*perWorker)
	}
	total := qc.TotalAll()
	if want := int64(workers * perWorker * 5); total.Fetches != want {
		t.Errorf("aggregate fetches %d, want %d", total.Fetches, want)
	}

	ts.Close()
	leakcheck.CheckWithin(t, goroutines, 2*time.Second)
}
