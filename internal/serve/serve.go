// Package serve exposes a running workload for live inspection: GET
// /metrics renders the metrics registry in Prometheus text format, GET
// /statusz is a human-readable snapshot with a window-occupancy
// sparkline, and /debug/pprof/* serves the standard Go profiler
// endpoints. cmd/asmserve wires a benchmark workload to this package;
// anything else holding a *metrics.Registry can do the same.
package serve

import (
	"fmt"
	"net/http"
	"net/http/pprof"
	"sort"
	"sync"
	"time"

	"revelation/internal/metrics"
	"revelation/internal/trace"
)

// Options configure a Server.
type Options struct {
	// Registry backs /metrics and the /statusz counter table.
	Registry *metrics.Registry
	// Occupancy, when non-nil, is sampled every SamplePeriod and
	// rendered as the /statusz sparkline (typically the registry's
	// asm_assembly_window_occupancy gauge summed over policies).
	Occupancy func() int64
	// SamplePeriod is the occupancy sampling interval (default 250ms).
	SamplePeriod time.Duration
	// Info lines render verbatim at the top of /statusz (workload
	// description, figure name, scale, ...).
	Info []string
}

// maxSamples bounds the occupancy ring; when full, the oldest half is
// dropped (the sparkline downsamples anyway).
const maxSamples = 4096

// Server holds the handlers and the occupancy sampler.
type Server struct {
	opts  Options
	start time.Time

	mu      sync.Mutex
	samples []int
	peak    int

	stop chan struct{}
	done chan struct{}
}

// New builds a Server over the given options.
func New(opts Options) *Server {
	if opts.SamplePeriod <= 0 {
		opts.SamplePeriod = 250 * time.Millisecond
	}
	return &Server{opts: opts, start: time.Now()}
}

// Handler returns the HTTP mux: /metrics, /statusz, /debug/pprof/*.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.Handle("/metrics", s.opts.Registry.Handler())
	mux.HandleFunc("/statusz", s.statusz)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		fmt.Fprintln(w, "asmserve: /metrics /statusz /debug/pprof/")
	})
	return mux
}

// Start launches the occupancy sampler (no-op without an Occupancy
// source). Stop ends it.
func (s *Server) Start() {
	if s.opts.Occupancy == nil || s.stop != nil {
		return
	}
	s.stop = make(chan struct{})
	s.done = make(chan struct{})
	go func() {
		defer close(s.done)
		tick := time.NewTicker(s.opts.SamplePeriod)
		defer tick.Stop()
		for {
			select {
			case <-s.stop:
				return
			case <-tick.C:
				s.sample(int(s.opts.Occupancy()))
			}
		}
	}()
}

// Stop ends the sampler and waits for it.
func (s *Server) Stop() {
	if s.stop == nil {
		return
	}
	close(s.stop)
	<-s.done
	s.stop = nil
}

func (s *Server) sample(v int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if v > s.peak {
		s.peak = v
	}
	if len(s.samples) >= maxSamples {
		half := len(s.samples) / 2
		s.samples = append(s.samples[:0], s.samples[half:]...)
	}
	s.samples = append(s.samples, v)
}

// statusz renders the human-readable snapshot: uptime and info lines,
// the occupancy sparkline, and every registry sample sorted by name.
func (s *Server) statusz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintf(w, "asmserve status — uptime %s\n", time.Since(s.start).Round(time.Second))
	for _, line := range s.opts.Info {
		fmt.Fprintln(w, line)
	}

	s.mu.Lock()
	samples := append([]int(nil), s.samples...)
	peak := s.peak
	s.mu.Unlock()
	if len(samples) > 0 {
		fmt.Fprintf(w, "\nwindow occupancy over %d samples, peak %d\n", len(samples), peak)
		fmt.Fprintf(w, "  [%s]\n", trace.Sparkline(samples, peak, 64))
	}

	snap := s.opts.Registry.Snapshot()
	keys := make([]string, 0, len(snap))
	for k := range snap {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	fmt.Fprintf(w, "\n%d samples:\n", len(keys))
	for _, k := range keys {
		fmt.Fprintf(w, "  %-60s %d\n", k, snap[k])
	}
}
