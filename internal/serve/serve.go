// Package serve exposes a running workload for live inspection: GET
// /metrics renders the metrics registry in Prometheus text format, GET
// /statusz is a human-readable snapshot with a window-occupancy
// sparkline, /debug/pprof/* serves the standard Go profiler endpoints,
// and GET /query (when a Query function is wired) executes one query
// under a per-request deadline behind a concurrency limiter — overload
// answers 503 immediately instead of queueing into a hang, an expired
// deadline answers 504. GET /fleetz (when a Fleet renderer is wired)
// shows the control plane's view of the shard fleet: member health,
// promotions, resharding progress. cmd/asmserve wires a benchmark
// workload to this package; anything else holding a *metrics.Registry
// can do the same.
package serve

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/pprof"
	"sort"
	"sync"
	"time"

	"revelation/internal/assembly"
	"revelation/internal/buffer"
	"revelation/internal/metrics"
	"revelation/internal/qtrace"
	"revelation/internal/shard"
	"revelation/internal/trace"
)

// Options configure a Server.
type Options struct {
	// Registry backs /metrics and the /statusz counter table.
	Registry *metrics.Registry
	// Occupancy, when non-nil, is sampled every SamplePeriod and
	// rendered as the /statusz sparkline (typically the registry's
	// asm_assembly_window_occupancy gauge summed over policies).
	Occupancy func() int64
	// SamplePeriod is the occupancy sampling interval (default 250ms).
	SamplePeriod time.Duration
	// Info lines render verbatim at the top of /statusz (workload
	// description, figure name, scale, ...).
	Info []string
	// Query, when non-nil, enables GET /query: it runs one query under
	// the request's context (deadline included) and returns a summary
	// line for the response body. It must observe ctx — the serve layer
	// relies on cancellation reaching the iterators (volcano.Bind).
	Query func(ctx context.Context) (string, error)
	// MaxConcurrent bounds in-flight /query requests; excess requests
	// are shed with 503 instead of queued. Zero means unlimited.
	MaxConcurrent int
	// QueryTimeout is the default per-request deadline, overridable per
	// request with ?deadline=500ms. Zero means no default deadline.
	QueryTimeout time.Duration
	// QTrace, when non-nil, gives every /query request a query ID and a
	// span tree: the root span rides the request context through the
	// plan, completed traces show up on GET /tracez, and the response
	// carries the ID in an X-Query-Id header. Nil disables per-query
	// tracing (and /tracez) with zero overhead on the query path.
	QTrace *qtrace.Collector
	// RetryBudget, when positive, caps the I/O retries one /query may
	// spend across all shards combined: each request's context carries a
	// fresh shard.Budget of this many tokens, so a brown-out on one
	// shard degrades that query instead of letting unbounded retries
	// hold its slot. Zero means no budget (retry policies alone govern).
	RetryBudget int
	// Fleet, when non-nil, renders the fleet control plane's status
	// (controller health, promotions, resharding progress) and mounts
	// it on GET /fleetz. Wire it to fleet.Controller.WriteStatus and
	// friends.
	Fleet func(w io.Writer)
}

// maxSamples bounds the occupancy ring; when full, the oldest half is
// dropped (the sparkline downsamples anyway).
const maxSamples = 4096

// Server holds the handlers and the occupancy sampler.
type Server struct {
	opts  Options
	start time.Time

	// slots is the /query concurrency limiter (nil = unlimited): a
	// request that cannot take a slot without blocking is shed.
	slots chan struct{}

	queriesOK     *metrics.Counter
	queriesShed   *metrics.Counter
	queryTimeouts *metrics.Counter
	queryCancels  *metrics.Counter
	queryErrors   *metrics.Counter

	mu      sync.Mutex
	samples []int
	peak    int

	stop chan struct{}
	done chan struct{}
}

// New builds a Server over the given options.
func New(opts Options) *Server {
	if opts.SamplePeriod <= 0 {
		opts.SamplePeriod = 250 * time.Millisecond
	}
	s := &Server{opts: opts, start: time.Now()}
	if opts.MaxConcurrent > 0 {
		s.slots = make(chan struct{}, opts.MaxConcurrent)
	}
	r := opts.Registry
	s.queriesOK = r.Counter("asm_serve_queries_total", "Queries answered successfully.")
	s.queriesShed = r.Counter("asm_serve_query_shed_total", "Queries rejected 503 by load shedding (limiter or admission).")
	s.queryTimeouts = r.Counter("asm_serve_query_timeouts_total", "Queries terminated 504 by their deadline.")
	s.queryCancels = r.Counter("asm_serve_query_cancels_total", "Queries abandoned by the client before completing.")
	s.queryErrors = r.Counter("asm_serve_query_errors_total", "Queries failed 500 for non-lifecycle reasons.")
	return s
}

// Handler returns the HTTP mux: /metrics, /statusz, /query (when
// wired), /debug/pprof/*.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.Handle("/metrics", s.opts.Registry.Handler())
	mux.HandleFunc("/statusz", s.statusz)
	if s.opts.QTrace != nil {
		mux.Handle("/tracez", qtrace.Handler(s.opts.QTrace))
	}
	if s.opts.Query != nil {
		mux.HandleFunc("/query", s.query)
	}
	if s.opts.Fleet != nil {
		mux.HandleFunc("/fleetz", func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			s.opts.Fleet(w)
		})
	}
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		fmt.Fprintln(w, "asmserve: /metrics /statusz /tracez /fleetz /debug/pprof/")
	})
	return mux
}

// Start launches the occupancy sampler (no-op without an Occupancy
// source). Stop ends it.
func (s *Server) Start() {
	if s.opts.Occupancy == nil || s.stop != nil {
		return
	}
	s.stop = make(chan struct{})
	s.done = make(chan struct{})
	go func() {
		defer close(s.done)
		tick := time.NewTicker(s.opts.SamplePeriod)
		defer tick.Stop()
		for {
			select {
			case <-s.stop:
				return
			case <-tick.C:
				s.sample(int(s.opts.Occupancy()))
			}
		}
	}()
}

// Stop ends the sampler and waits for it.
func (s *Server) Stop() {
	if s.stop == nil {
		return
	}
	close(s.stop)
	<-s.done
	s.stop = nil
}

func (s *Server) sample(v int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if v > s.peak {
		s.peak = v
	}
	if len(s.samples) >= maxSamples {
		half := len(s.samples) / 2
		s.samples = append(s.samples[:0], s.samples[half:]...)
	}
	s.samples = append(s.samples, v)
}

// query executes one query under the request lifecycle. The shed
// decision is made before any work: a full limiter answers 503 without
// blocking, so overload degrades to fast rejections rather than a
// convoy of hung requests. Admission rejections and operator sheds from
// below map to 503 too (same client remedy: back off and retry); an
// expired deadline maps to 504.
func (s *Server) query(w http.ResponseWriter, r *http.Request) {
	if s.slots != nil {
		select {
		case s.slots <- struct{}{}:
			defer func() { <-s.slots }()
		default:
			s.queriesShed.Inc()
			http.Error(w, "query shed: server at concurrency limit", http.StatusServiceUnavailable)
			return
		}
	}
	timeout := s.opts.QueryTimeout
	if d := r.URL.Query().Get("deadline"); d != "" {
		parsed, err := time.ParseDuration(d)
		if err != nil || parsed <= 0 {
			http.Error(w, fmt.Sprintf("bad deadline %q: want a positive Go duration like 500ms", d), http.StatusBadRequest)
			return
		}
		timeout = parsed
	}
	ctx := r.Context()
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	qt, root := s.opts.QTrace.Begin("/query")
	if qt != nil {
		ctx = qtrace.With(ctx, root)
		w.Header().Set("X-Query-Id", fmt.Sprintf("%d", qt.QID))
	}
	if s.opts.RetryBudget > 0 {
		ctx = shard.WithBudget(ctx, shard.NewBudget(s.opts.RetryBudget))
	}
	summary, err := s.opts.Query(ctx)
	status := "ok"
	switch {
	case err == nil:
		s.queriesOK.Inc()
		fmt.Fprintln(w, summary)
	case errors.Is(err, context.DeadlineExceeded):
		status = "timeout"
		s.queryTimeouts.Inc()
		http.Error(w, fmt.Sprintf("query deadline exceeded: %v", err), http.StatusGatewayTimeout)
	case errors.Is(err, context.Canceled):
		// The client went away; the status code is for the log only.
		status = "canceled"
		s.queryCancels.Inc()
		http.Error(w, fmt.Sprintf("query canceled: %v", err), http.StatusServiceUnavailable)
	case errors.Is(err, buffer.ErrAdmission), errors.Is(err, assembly.ErrShed):
		status = "shed"
		s.queriesShed.Inc()
		http.Error(w, fmt.Sprintf("query shed: %v", err), http.StatusServiceUnavailable)
	default:
		status = "error"
		s.queryErrors.Inc()
		http.Error(w, fmt.Sprintf("query failed: %v", err), http.StatusInternalServerError)
	}
	s.opts.QTrace.Finish(qt, status, err)
}

// statusz renders the human-readable snapshot: uptime and info lines,
// the occupancy sparkline, and every registry sample sorted by name.
func (s *Server) statusz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintf(w, "asmserve status — uptime %s\n", time.Since(s.start).Round(time.Second))
	for _, line := range s.opts.Info {
		fmt.Fprintln(w, line)
	}

	s.mu.Lock()
	samples := append([]int(nil), s.samples...)
	peak := s.peak
	s.mu.Unlock()
	if len(samples) > 0 {
		fmt.Fprintf(w, "\nwindow occupancy over %d samples, peak %d\n", len(samples), peak)
		fmt.Fprintf(w, "  [%s]\n", trace.Sparkline(samples, peak, 64))
	}

	if lat := s.opts.QTrace.Latency(); lat.Count > 0 {
		fmt.Fprintf(w, "\nquery latency over %d queries: p50 %s p90 %s p99 %s max %s\n",
			lat.Count,
			time.Duration(lat.Quantile(0.50)),
			time.Duration(lat.Quantile(0.90)),
			time.Duration(lat.Quantile(0.99)),
			time.Duration(lat.Max))
	}

	snap := s.opts.Registry.Snapshot()
	keys := make([]string, 0, len(snap))
	for k := range snap {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	fmt.Fprintf(w, "\n%d samples:\n", len(keys))
	for _, k := range keys {
		fmt.Fprintf(w, "  %-60s %d\n", k, snap[k])
	}
}
