package serve

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"revelation/internal/metrics"
)

func newTestServer(t *testing.T) (*Server, *httptest.Server, *metrics.Registry) {
	t.Helper()
	reg := metrics.NewRegistry()
	reg.Counter("asm_disk_reads_total", "physical page reads", "dev", "0").Add(42)
	reg.Gauge("asm_assembly_window_occupancy", "live objects", "policy", "elevator").Set(7)
	s := New(Options{
		Registry:     reg,
		Occupancy:    func() int64 { return 7 },
		SamplePeriod: time.Millisecond,
		Info:         []string{"workload: test"},
	})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts, reg
}

func get(t *testing.T, url string) (string, *http.Response) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body), resp
}

func TestMetricsEndpoint(t *testing.T) {
	_, ts, _ := newTestServer(t)
	body, resp := get(t, ts.URL+"/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("content-type %q", ct)
	}
	for _, want := range []string{
		"# TYPE asm_disk_reads_total counter",
		`asm_disk_reads_total{dev="0"} 42`,
		`asm_assembly_window_occupancy{policy="elevator"} 7`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing %q in:\n%s", want, body)
		}
	}
}

func TestStatuszEndpoint(t *testing.T) {
	s, ts, _ := newTestServer(t)
	s.Start()
	defer s.Stop()
	// Wait for the sampler to record at least one occupancy sample.
	deadline := time.Now().Add(2 * time.Second)
	for {
		s.mu.Lock()
		n := len(s.samples)
		s.mu.Unlock()
		if n > 0 || time.Now().After(deadline) {
			break
		}
		time.Sleep(time.Millisecond)
	}
	body, resp := get(t, ts.URL+"/statusz")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	for _, want := range []string{
		"uptime",
		"workload: test",
		"window occupancy over",
		`asm_disk_reads_total{dev="0"}`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("statusz missing %q in:\n%s", want, body)
		}
	}
}

func TestPprofEndpoint(t *testing.T) {
	_, ts, _ := newTestServer(t)
	body, resp := get(t, ts.URL+"/debug/pprof/")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if !strings.Contains(body, "goroutine") {
		t.Errorf("pprof index missing goroutine profile:\n%s", body)
	}
}

func TestRootAndNotFound(t *testing.T) {
	_, ts, _ := newTestServer(t)
	body, resp := get(t, ts.URL+"/")
	if resp.StatusCode != http.StatusOK || !strings.Contains(body, "/metrics") {
		t.Errorf("root: status %d body %q", resp.StatusCode, body)
	}
	_, resp = get(t, ts.URL+"/nope")
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown path: status %d, want 404", resp.StatusCode)
	}
}
