package serve

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"revelation/internal/buffer"
	"revelation/internal/metrics"
)

func newTestServer(t *testing.T) (*Server, *httptest.Server, *metrics.Registry) {
	t.Helper()
	reg := metrics.NewRegistry()
	reg.Counter("asm_disk_reads_total", "physical page reads", "dev", "0").Add(42)
	reg.Gauge("asm_assembly_window_occupancy", "live objects", "policy", "elevator").Set(7)
	s := New(Options{
		Registry:     reg,
		Occupancy:    func() int64 { return 7 },
		SamplePeriod: time.Millisecond,
		Info:         []string{"workload: test"},
	})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts, reg
}

func get(t *testing.T, url string) (string, *http.Response) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body), resp
}

func TestMetricsEndpoint(t *testing.T) {
	_, ts, _ := newTestServer(t)
	body, resp := get(t, ts.URL+"/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("content-type %q", ct)
	}
	for _, want := range []string{
		"# TYPE asm_disk_reads_total counter",
		`asm_disk_reads_total{dev="0"} 42`,
		`asm_assembly_window_occupancy{policy="elevator"} 7`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing %q in:\n%s", want, body)
		}
	}
}

func TestStatuszEndpoint(t *testing.T) {
	s, ts, _ := newTestServer(t)
	s.Start()
	defer s.Stop()
	// Wait for the sampler to record at least one occupancy sample.
	deadline := time.Now().Add(2 * time.Second)
	for {
		s.mu.Lock()
		n := len(s.samples)
		s.mu.Unlock()
		if n > 0 || time.Now().After(deadline) {
			break
		}
		time.Sleep(time.Millisecond)
	}
	body, resp := get(t, ts.URL+"/statusz")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	for _, want := range []string{
		"uptime",
		"workload: test",
		"window occupancy over",
		`asm_disk_reads_total{dev="0"}`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("statusz missing %q in:\n%s", want, body)
		}
	}
}

func TestPprofEndpoint(t *testing.T) {
	_, ts, _ := newTestServer(t)
	body, resp := get(t, ts.URL+"/debug/pprof/")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if !strings.Contains(body, "goroutine") {
		t.Errorf("pprof index missing goroutine profile:\n%s", body)
	}
}

// queryServer wires a fake query that blocks until release (or ctx
// end), behind a limiter of max in-flight requests.
func queryServer(t *testing.T, max int, timeout time.Duration, q func(ctx context.Context) (string, error)) (*httptest.Server, *metrics.Registry) {
	t.Helper()
	reg := metrics.NewRegistry()
	s := New(Options{
		Registry:      reg,
		MaxConcurrent: max,
		QueryTimeout:  timeout,
		Query:         q,
	})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return ts, reg
}

func TestQueryOK(t *testing.T) {
	ts, reg := queryServer(t, 2, 0, func(ctx context.Context) (string, error) {
		return "assembled 7 complex objects", nil
	})
	body, resp := get(t, ts.URL+"/query")
	if resp.StatusCode != http.StatusOK || !strings.Contains(body, "assembled 7") {
		t.Fatalf("status %d body %q", resp.StatusCode, body)
	}
	if n := reg.Snapshot()["asm_serve_queries_total"]; n != 1 {
		t.Errorf("queries_total = %d, want 1", n)
	}
}

// TestQueryLoadShed503 is the overload acceptance test: with every slot
// occupied by a parked query, the next request must come back 503
// immediately — not hang in a queue.
func TestQueryLoadShed503(t *testing.T) {
	release := make(chan struct{})
	started := make(chan struct{}, 4)
	ts, reg := queryServer(t, 2, 0, func(ctx context.Context) (string, error) {
		started <- struct{}{}
		select {
		case <-release:
			return "ok", nil
		case <-ctx.Done():
			return "", ctx.Err()
		}
	})
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			get(t, ts.URL+"/query")
		}()
	}
	for i := 0; i < 2; i++ {
		select {
		case <-started:
		case <-time.After(5 * time.Second):
			t.Fatal("parked queries never started")
		}
	}
	done := make(chan *http.Response, 1)
	go func() {
		_, resp := get(t, ts.URL+"/query")
		done <- resp
	}()
	select {
	case resp := <-done:
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("overloaded query: status %d, want 503", resp.StatusCode)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("overloaded query hung instead of returning 503")
	}
	close(release)
	wg.Wait()
	if n := reg.Snapshot()["asm_serve_query_shed_total"]; n != 1 {
		t.Errorf("query_shed_total = %d, want 1", n)
	}
}

func TestQueryDeadline504(t *testing.T) {
	ts, reg := queryServer(t, 0, time.Hour, func(ctx context.Context) (string, error) {
		<-ctx.Done()
		return "", ctx.Err()
	})
	// The per-request override shrinks the hour default to 20ms.
	_, resp := get(t, ts.URL+"/query?deadline=20ms")
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("expired query: status %d, want 504", resp.StatusCode)
	}
	if n := reg.Snapshot()["asm_serve_query_timeouts_total"]; n != 1 {
		t.Errorf("query_timeouts_total = %d, want 1", n)
	}
	_, resp = get(t, ts.URL+"/query?deadline=banana")
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad deadline: status %d, want 400", resp.StatusCode)
	}
}

func TestQueryAdmissionRejectionIs503(t *testing.T) {
	ts, reg := queryServer(t, 0, 0, func(ctx context.Context) (string, error) {
		return "", buffer.ErrAdmission
	})
	_, resp := get(t, ts.URL+"/query")
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("admission-rejected query: status %d, want 503", resp.StatusCode)
	}
	if n := reg.Snapshot()["asm_serve_query_shed_total"]; n != 1 {
		t.Errorf("query_shed_total = %d, want 1", n)
	}
}

func TestRootAndNotFound(t *testing.T) {
	_, ts, _ := newTestServer(t)
	body, resp := get(t, ts.URL+"/")
	if resp.StatusCode != http.StatusOK || !strings.Contains(body, "/metrics") {
		t.Errorf("root: status %d body %q", resp.StatusCode, body)
	}
	_, resp = get(t, ts.URL+"/nope")
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown path: status %d, want 404", resp.StatusCode)
	}
}

func TestFleetzEndpoint(t *testing.T) {
	reg := metrics.NewRegistry()
	s := New(Options{
		Registry: reg,
		Fleet: func(w io.Writer) {
			io.WriteString(w, "fleet: 3 members, 1 promotions\n")
		},
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	body, resp := get(t, ts.URL+"/fleetz")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if !strings.Contains(body, "fleet: 3 members, 1 promotions") {
		t.Errorf("/fleetz body = %q", body)
	}

	// Without a Fleet renderer the route does not exist.
	s2 := New(Options{Registry: metrics.NewRegistry()})
	ts2 := httptest.NewServer(s2.Handler())
	defer ts2.Close()
	if _, resp := get(t, ts2.URL+"/fleetz"); resp.StatusCode != http.StatusNotFound {
		t.Errorf("unwired /fleetz answered %d, want 404", resp.StatusCode)
	}
}
