package suite

import (
	"encoding/json"
	"sort"
)

// SchemaVersion is the BENCH_*.json schema version. Bump it whenever a
// field changes meaning or moves; consumers comparing trajectories
// across commits key on it.
const SchemaVersion = 1

// Report is one suite execution: the BENCH_<suite>.json document.
// Field order is the struct order and is part of the golden-tested
// contract — append new fields at the end of the structs.
type Report struct {
	Schema    int              `json:"schema"`
	Suite     string           `json:"suite"`
	Scenarios []ScenarioResult `json:"scenarios"`
}

// ScenarioResult is one scenario's aggregated measurement. All fields
// except the wall-clock group at the end are deterministic functions of
// the scenario definition: two runs of the same config at the same
// commit produce identical values, which is what makes the file a
// reviewable trajectory rather than noise.
type ScenarioResult struct {
	Name       string `json:"name"`
	Workload   string `json:"workload"`
	Shape      string `json:"shape"`
	Scheduler  string `json:"scheduler"`
	Backend    string `json:"backend"`
	Clustering string `json:"clustering"`
	Window     int    `json:"window"`
	Objects    int    `json:"objects"`
	Seed       int64  `json:"seed"`
	Iters      int    `json:"iters"`

	// Ops is the number of complex objects assembled per iteration —
	// the unit the per-op rates normalize by.
	Ops int `json:"ops"`

	// Deterministic I/O and operator counters (per iteration).
	Reads           int64   `json:"reads"`
	SeekReads       int64   `json:"seek_reads"`
	SeekTotal       int64   `json:"seek_total"`
	AvgSeek         float64 `json:"avg_seek"`
	BufferHits      int64   `json:"buffer_hits"`
	BufferMisses    int64   `json:"buffer_misses"`
	Assembled       int     `json:"assembled"`
	Aborted         int     `json:"aborted"`
	Skipped         int     `json:"skipped"`
	Retries         int     `json:"retries"`
	Stalls          int     `json:"stalls"`
	PeakWindow      int     `json:"peak_window"`
	PeakWindowPages int     `json:"peak_window_pages"`

	// Verified records that the iteration passed three-way
	// verification: harness counters == trace replay == metrics
	// registry delta. The runner fails hard when it doesn't, so a
	// written report always says true — the field exists so consumers
	// need not know that contract.
	Verified bool `json:"verified"`

	// Wall-clock fields: machine-dependent, excluded from Canonical().
	NsPerOp     int64 `json:"ns_per_op"`
	AllocsPerOp int64 `json:"allocs_per_op"`
	BytesPerOp  int64 `json:"bytes_per_op"`
}

// sortScenarios orders results by name — the report's ordering-stable
// contract.
func (r *Report) sortScenarios() {
	sort.Slice(r.Scenarios, func(a, b int) bool {
		return r.Scenarios[a].Name < r.Scenarios[b].Name
	})
}

// JSON renders the report, scenarios sorted by name, with a trailing
// newline.
func (r *Report) JSON() ([]byte, error) {
	r.sortScenarios()
	out, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(out, '\n'), nil
}

// Canonical returns a copy with the wall-clock fields zeroed: the
// deterministic projection two runs of the same suite at the same
// commit must agree on byte-for-byte. Golden and determinism tests
// compare Canonical().JSON().
func (r *Report) Canonical() *Report {
	c := &Report{Schema: r.Schema, Suite: r.Suite, Scenarios: append([]ScenarioResult(nil), r.Scenarios...)}
	for i := range c.Scenarios {
		c.Scenarios[i].NsPerOp = 0
		c.Scenarios[i].AllocsPerOp = 0
		c.Scenarios[i].BytesPerOp = 0
	}
	c.sortScenarios()
	return c
}
