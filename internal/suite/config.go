// Package suite is the continuous scenario suite: a declarative
// registry of named benchmark scenarios — DB shape, scheduling policy,
// window and buffer knobs, fault/stall injection, device backend —
// loaded from a checked-in config, executed by a runner that measures
// each scenario through the shared bench measurement core, three-way
// verifies every run (harness counters == trace replay == metrics
// registry delta), and emits a schema-versioned BENCH_<suite>.json
// trajectory at the repo root.
//
// The config format is a deliberately small TOML subset, in the spirit
// of the Go toolchain's benchmark suites: [[scenario]] table arrays of
// `key = value` lines. Only the forms the suite needs parse — strings,
// integers, floats, booleans, and string arrays — and every error
// carries the line number it came from, because a config that fails
// silently is a scenario that silently stops running.
package suite

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Value is one parsed right-hand side with its source line.
type Value struct {
	Line int
	// Exactly one of the following is meaningful, per Kind.
	Kind ValueKind
	Str  string
	Int  int64
	F    float64
	Bool bool
	Strs []string
}

// ValueKind discriminates Value.
type ValueKind int

// Value kinds.
const (
	KindString ValueKind = iota
	KindInt
	KindFloat
	KindBool
	KindStrings
)

func (k ValueKind) String() string {
	switch k {
	case KindString:
		return "string"
	case KindInt:
		return "integer"
	case KindFloat:
		return "float"
	case KindBool:
		return "boolean"
	case KindStrings:
		return "string array"
	}
	return "unknown"
}

// Table is one [[scenario]] section: its keys and its header line.
type Table struct {
	Line int
	Keys map[string]Value
}

// parseConfig splits src into [[scenario]] tables. name is used in
// error messages (typically the file path).
func parseConfig(name, src string) ([]Table, error) {
	var tables []Table
	var cur *Table
	for i, raw := range strings.Split(src, "\n") {
		ln := i + 1
		line := strings.TrimSpace(stripComment(raw))
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "[[") {
			if !strings.HasSuffix(line, "]]") {
				return nil, fmt.Errorf("%s:%d: malformed table header %q", name, ln, line)
			}
			section := strings.TrimSpace(line[2 : len(line)-2])
			if section != "scenario" {
				return nil, fmt.Errorf("%s:%d: unknown section [[%s]] (only [[scenario]] is recognized)", name, ln, section)
			}
			tables = append(tables, Table{Line: ln, Keys: map[string]Value{}})
			cur = &tables[len(tables)-1]
			continue
		}
		if strings.HasPrefix(line, "[") {
			return nil, fmt.Errorf("%s:%d: plain [tables] are not supported; use [[scenario]]", name, ln)
		}
		eq := strings.Index(line, "=")
		if eq < 0 {
			return nil, fmt.Errorf("%s:%d: expected key = value, got %q", name, ln, line)
		}
		if cur == nil {
			return nil, fmt.Errorf("%s:%d: key outside any [[scenario]] section", name, ln)
		}
		key := strings.TrimSpace(line[:eq])
		if key == "" {
			return nil, fmt.Errorf("%s:%d: empty key", name, ln)
		}
		if _, dup := cur.Keys[key]; dup {
			return nil, fmt.Errorf("%s:%d: duplicate key %q in this scenario", name, ln, key)
		}
		v, err := parseValue(strings.TrimSpace(line[eq+1:]))
		if err != nil {
			return nil, fmt.Errorf("%s:%d: key %q: %v", name, ln, key, err)
		}
		v.Line = ln
		cur.Keys[key] = v
	}
	return tables, nil
}

// stripComment removes a # comment, honouring # inside quoted strings.
func stripComment(line string) string {
	inStr := false
	for i := 0; i < len(line); i++ {
		switch line[i] {
		case '"':
			inStr = !inStr
		case '#':
			if !inStr {
				return line[:i]
			}
		}
	}
	return line
}

// parseValue parses one right-hand side.
func parseValue(s string) (Value, error) {
	switch {
	case s == "":
		return Value{}, fmt.Errorf("empty value")
	case s == "true" || s == "false":
		return Value{Kind: KindBool, Bool: s == "true"}, nil
	case strings.HasPrefix(s, `"`):
		str, err := parseQuoted(s)
		if err != nil {
			return Value{}, err
		}
		return Value{Kind: KindString, Str: str}, nil
	case strings.HasPrefix(s, "["):
		if !strings.HasSuffix(s, "]") {
			return Value{}, fmt.Errorf("unterminated array %q", s)
		}
		inner := strings.TrimSpace(s[1 : len(s)-1])
		var strs []string
		if inner != "" {
			for _, part := range splitArray(inner) {
				part = strings.TrimSpace(part)
				str, err := parseQuoted(part)
				if err != nil {
					return Value{}, fmt.Errorf("array element %q: %v", part, err)
				}
				strs = append(strs, str)
			}
		}
		return Value{Kind: KindStrings, Strs: strs}, nil
	case strings.ContainsAny(s, ".eE") && !strings.HasPrefix(s, "0x"):
		f, err := strconv.ParseFloat(s, 64)
		if err != nil {
			return Value{}, fmt.Errorf("bad float %q", s)
		}
		return Value{Kind: KindFloat, F: f}, nil
	default:
		n, err := strconv.ParseInt(s, 0, 64)
		if err != nil {
			return Value{}, fmt.Errorf("bad value %q (expected string, number, bool, or array)", s)
		}
		return Value{Kind: KindInt, Int: n}, nil
	}
}

func parseQuoted(s string) (string, error) {
	if len(s) < 2 || !strings.HasPrefix(s, `"`) || !strings.HasSuffix(s, `"`) {
		return "", fmt.Errorf("expected quoted string, got %q", s)
	}
	inner := s[1 : len(s)-1]
	if strings.Contains(inner, `"`) {
		return "", fmt.Errorf("stray quote inside %q", s)
	}
	return inner, nil
}

// splitArray splits a comma-separated list, honouring quotes.
func splitArray(s string) []string {
	var parts []string
	inStr := false
	start := 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '"':
			inStr = !inStr
		case ',':
			if !inStr {
				parts = append(parts, s[start:i])
				start = i + 1
			}
		}
	}
	parts = append(parts, s[start:])
	return parts
}

// field reads one typed key out of a table, deleting it from the
// remaining-keys set so unknown keys can be reported afterwards.
type field struct {
	tab  *Table
	name string // config name for errors
	left map[string]int
	errs *[]string
}

func (f *field) take(key string, kind ValueKind) (Value, bool) {
	v, ok := f.tab.Keys[key]
	if !ok {
		return Value{}, false
	}
	delete(f.left, key)
	if v.Kind != kind {
		// Ints are acceptable where floats are expected.
		if kind == KindFloat && v.Kind == KindInt {
			v.Kind, v.F = KindFloat, float64(v.Int)
			return v, true
		}
		*f.errs = append(*f.errs, fmt.Sprintf("%s:%d: key %q: got %s, want %s", f.name, v.Line, key, v.Kind, kind))
		return Value{}, false
	}
	return v, true
}

func (f *field) str(key, def string) string {
	if v, ok := f.take(key, KindString); ok {
		return v.Str
	}
	return def
}

func (f *field) integer(key string, def int) int {
	if v, ok := f.take(key, KindInt); ok {
		return int(v.Int)
	}
	return def
}

func (f *field) float(key string, def float64) float64 {
	if v, ok := f.take(key, KindFloat); ok {
		return v.F
	}
	return def
}

func (f *field) boolean(key string, def bool) bool {
	if v, ok := f.take(key, KindBool); ok {
		return v.Bool
	}
	return def
}

func (f *field) strings(key string) []string {
	if v, ok := f.take(key, KindStrings); ok {
		return v.Strs
	}
	return nil
}

// errf records a validation error anchored at the line of key (falling
// back to the section header when the key is absent).
func (f *field) errf(key, format string, args ...any) {
	ln := f.tab.Line
	if v, ok := f.tab.Keys[key]; ok {
		ln = v.Line
	}
	*f.errs = append(*f.errs, fmt.Sprintf("%s:%d: %s", f.name, ln, fmt.Sprintf(format, args...)))
}

// ParseScenarios parses and validates a suite config. Every scenario
// must name a seed explicitly — a trajectory whose workloads drift
// because a default seed changed is worse than no trajectory — and
// unknown keys or contradictory knob combinations are errors with the
// offending line attached.
func ParseScenarios(name, src string) ([]Scenario, error) {
	tables, err := parseConfig(name, src)
	if err != nil {
		return nil, err
	}
	var errs []string
	var scenarios []Scenario
	seen := map[string]int{}
	for i := range tables {
		tab := &tables[i]
		left := map[string]int{}
		for k, v := range tab.Keys {
			left[k] = v.Line
		}
		f := &field{tab: tab, name: name, left: left, errs: &errs}
		sc := scenarioFromTable(f)
		if prev, dup := seen[sc.Name]; dup && sc.Name != "" {
			f.errf("name", "scenario %q already defined at line %d", sc.Name, prev)
		} else if sc.Name != "" {
			seen[sc.Name] = tab.Line
		}
		// Unknown keys, reported in line order for stable output.
		var unknown []string
		for k := range left {
			unknown = append(unknown, k)
		}
		sort.Slice(unknown, func(a, b int) bool { return left[unknown[a]] < left[unknown[b]] })
		for _, k := range unknown {
			errs = append(errs, fmt.Sprintf("%s:%d: unknown key %q", name, left[k], k))
		}
		scenarios = append(scenarios, sc)
	}
	if len(errs) > 0 {
		return nil, fmt.Errorf("suite config:\n  %s", strings.Join(errs, "\n  "))
	}
	if len(scenarios) == 0 {
		return nil, fmt.Errorf("suite config %s: no [[scenario]] sections", name)
	}
	return scenarios, nil
}
