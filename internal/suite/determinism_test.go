package suite

import (
	"bytes"
	"testing"
)

// TestSuiteDeterminism is the regression gate for the trajectory
// premise: every scenario registered in the checked-in config — fault
// and stall knobs included — run twice from scratch yields
// byte-identical canonical JSON. Anything nondeterministic here would
// turn BENCH_*.json diffs into noise. (The runner additionally
// cross-checks iterations within each run; this test covers whole-run
// repeatability, fresh environments and all.)
//
// One iteration per scenario keeps the double run affordable under
// -race; iteration-level determinism is already enforced inside Run.
func TestSuiteDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("double full-suite run in -short mode")
	}
	scs := loadRepoConfig(t)
	render := func() []byte {
		rep, err := Run(scs, RunOptions{Suite: "core", Iters: 1})
		if err != nil {
			t.Fatal(err)
		}
		out, err := rep.Canonical().JSON()
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	a, b := render(), render()
	if !bytes.Equal(a, b) {
		t.Errorf("two runs of the core suite produced different canonical JSON:\nfirst:\n%s\nsecond:\n%s", a, b)
	}
}
