package suite

import (
	"time"

	"revelation/internal/assembly"
	"revelation/internal/gen"
)

// Workload names the measured phase's access pattern.
type Workload string

// Workloads.
const (
	// WorkloadAssemble assembles every complex object in the database —
	// the paper's Section 6 read benchmark.
	WorkloadAssemble Workload = "assemble"
	// WorkloadTimeSeries appends fresh complex objects at the extent's
	// tail (time-ordered arrivals) and assembles the appended window —
	// the append+assemble pattern of telemetry stores.
	WorkloadTimeSeries Workload = "timeseries"
	// WorkloadIncremental registers a standing query over every root,
	// mutates a batch of components, and re-assembles only the roots
	// the mutations invalidated.
	WorkloadIncremental Workload = "incremental"
	// WorkloadReshard assembles half the roots over a three-member shard
	// fleet, live-migrates a fourth member's rendezvous delta into the
	// fleet (crash-safe cutover through the ownership log), then
	// assembles the rest over the enlarged fleet. Sharded backend only.
	WorkloadReshard Workload = "reshard"
)

// Shape names the object-graph template a scenario generates.
type Shape string

// Shapes. The paper's shape is the 3-level binary tree; the OO7-style
// shapes stress the axes the OO7 benchmark made standard: assembly
// depth, composite width, and shared subobjects.
const (
	ShapePaper  Shape = "paper"  // 3-level binary tree, 7 components
	ShapeDeep   Shape = "deep"   // fanouts [2,2,2,2]: 5 levels, 31 components
	ShapeWide   Shape = "wide"   // fanouts [8,4]: 3 levels, 41 components
	ShapeShared Shape = "shared" // fanouts [3,3] with shared leaves
)

// fanouts returns the per-level fanout vector for the shape (nil means
// gen's default paper shape).
func (s Shape) fanouts() []int {
	switch s {
	case ShapeDeep:
		return []int{2, 2, 2, 2}
	case ShapeWide:
		return []int{8, 4}
	case ShapeShared:
		return []int{3, 3}
	default:
		return nil
	}
}

// Backend names the device stack under the buffer pool.
type Backend string

// Backends.
const (
	BackendLocal   Backend = "local"   // in-memory simulated disk
	BackendFile    Backend = "file"    // file-backed device in a temp dir
	BackendPagesvc Backend = "pagesvc" // in-process page service over TCP loopback
	// BackendSharded runs an in-process three-shard page-service fleet
	// behind the rendezvous router, assembled with the per-shard
	// elevator and shard prefetch (the scheduler key is ignored).
	BackendSharded Backend = "sharded"
)

// Scenario is one named benchmark configuration. The zero value is not
// runnable; scenarios come from ParseScenarios, which applies defaults
// and validates knob combinations.
type Scenario struct {
	Name   string
	Suites []string // suite names this scenario belongs to

	Workload   Workload
	Shape      Shape
	Seed       int64
	Objects    int // complex objects in the generated database
	Clustering gen.Clustering
	Scheduler  assembly.SchedulerKind
	Window     int
	BufferPgs  int // 0 = hold the whole database
	Backend    Backend
	Iters      int
	Warmup     int

	Sharing         float64
	UseSharingStats bool

	// Time-series knobs.
	AppendCount int // complex objects appended per iteration

	// Incremental knobs.
	MutateCount int // components mutated per iteration

	// Fault/stall knobs (local backend only; the injector wraps the
	// simulated device).
	FaultTransient float64
	FaultPermanent float64
	FaultSeed      int64
	FaultPolicy    assembly.FaultPolicy
	StallRate      float64
	Stall          time.Duration

	PinWindow bool
	PageBatch bool
}

// scenarioFromTable decodes and validates one [[scenario]] table,
// recording every problem in f.errs with its source line.
func scenarioFromTable(f *field) Scenario {
	sc := Scenario{
		Workload: WorkloadAssemble,
		Shape:    ShapePaper,
		Objects:  200,
		Window:   20,
		Backend:  BackendLocal,
		Iters:    3,
		Warmup:   1,
	}
	sc.Name = f.str("name", "")
	if sc.Name == "" {
		f.errf("name", "scenario needs a name")
	}
	sc.Suites = f.strings("suites")
	if len(sc.Suites) == 0 {
		f.errf("suites", "scenario %q: suites list is required (e.g. [\"core\"])", sc.Name)
	}

	if v, ok := f.take("seed", KindInt); ok {
		sc.Seed = v.Int
	} else {
		f.errf("seed", "scenario %q: seed is required — trajectories must not drift with defaults", sc.Name)
	}

	switch w := f.str("workload", string(WorkloadAssemble)); Workload(w) {
	case WorkloadAssemble, WorkloadTimeSeries, WorkloadIncremental, WorkloadReshard:
		sc.Workload = Workload(w)
	default:
		f.errf("workload", "scenario %q: unknown workload %q (assemble, timeseries, incremental, reshard)", sc.Name, w)
	}
	switch s := f.str("shape", string(ShapePaper)); Shape(s) {
	case ShapePaper, ShapeDeep, ShapeWide, ShapeShared:
		sc.Shape = Shape(s)
	default:
		f.errf("shape", "scenario %q: unknown shape %q (paper, deep, wide, shared)", sc.Name, s)
	}
	switch c := f.str("clustering", "unclustered"); c {
	case "unclustered":
		sc.Clustering = gen.Unclustered
	case "inter-object":
		sc.Clustering = gen.InterObject
	case "intra-object":
		sc.Clustering = gen.IntraObject
	default:
		f.errf("clustering", "scenario %q: unknown clustering %q (unclustered, inter-object, intra-object)", sc.Name, c)
	}
	switch s := f.str("scheduler", "elevator"); s {
	case "depth-first":
		sc.Scheduler = assembly.DepthFirst
	case "breadth-first":
		sc.Scheduler = assembly.BreadthFirst
	case "elevator":
		sc.Scheduler = assembly.Elevator
	default:
		f.errf("scheduler", "scenario %q: unknown scheduler %q (depth-first, breadth-first, elevator)", sc.Name, s)
	}
	switch b := f.str("backend", string(BackendLocal)); Backend(b) {
	case BackendLocal, BackendFile, BackendPagesvc, BackendSharded:
		sc.Backend = Backend(b)
	default:
		f.errf("backend", "scenario %q: unknown backend %q (local, file, pagesvc, sharded)", sc.Name, b)
	}
	switch p := f.str("fault_policy", "retry"); p {
	case "fail":
		sc.FaultPolicy = assembly.FailFast
	case "skip":
		sc.FaultPolicy = assembly.SkipObject
	case "retry":
		sc.FaultPolicy = assembly.RetryFaults
	default:
		f.errf("fault_policy", "scenario %q: unknown fault_policy %q (fail, skip, retry)", sc.Name, p)
	}

	sc.Objects = f.integer("objects", sc.Objects)
	sc.Window = f.integer("window", sc.Window)
	sc.BufferPgs = f.integer("buffer_pages", 0)
	sc.Iters = f.integer("iters", sc.Iters)
	sc.Warmup = f.integer("warmup", sc.Warmup)
	sc.Sharing = f.float("sharing", 0)
	sc.UseSharingStats = f.boolean("use_sharing_stats", false)
	sc.AppendCount = f.integer("append_count", 0)
	sc.MutateCount = f.integer("mutate_count", 0)
	sc.FaultTransient = f.float("fault_transient", 0)
	sc.FaultPermanent = f.float("fault_permanent", 0)
	if v, ok := f.take("fault_seed", KindInt); ok {
		sc.FaultSeed = v.Int
	} else {
		sc.FaultSeed = sc.Seed
	}
	sc.StallRate = f.float("stall_rate", 0)
	sc.Stall = time.Duration(f.integer("stall_us", 0)) * time.Microsecond
	sc.PinWindow = f.boolean("pin_window", false)
	sc.PageBatch = f.boolean("page_batch", false)

	// Range checks.
	if sc.Objects < 1 {
		f.errf("objects", "scenario %q: objects must be >= 1", sc.Name)
	}
	if sc.Window < 1 {
		f.errf("window", "scenario %q: window must be >= 1", sc.Name)
	}
	if sc.Iters < 1 {
		f.errf("iters", "scenario %q: iters must be >= 1", sc.Name)
	}
	if sc.Warmup < 0 {
		f.errf("warmup", "scenario %q: warmup must be >= 0", sc.Name)
	}
	if sc.Sharing < 0 || sc.Sharing >= 1 {
		f.errf("sharing", "scenario %q: sharing must be in [0, 1)", sc.Name)
	}
	for _, r := range []struct {
		key string
		val float64
	}{
		{"fault_transient", sc.FaultTransient},
		{"fault_permanent", sc.FaultPermanent},
		{"stall_rate", sc.StallRate},
	} {
		if r.val < 0 || r.val > 1 {
			f.errf(r.key, "scenario %q: %s must be in [0, 1]", sc.Name, r.key)
		}
	}

	// Knob-combination checks: a scenario whose knobs contradict its
	// workload would silently measure something else.
	faulted := sc.FaultTransient > 0 || sc.FaultPermanent > 0 || sc.StallRate > 0
	if faulted && sc.Backend != BackendLocal {
		f.errf("backend", "scenario %q: fault/stall knobs require backend = \"local\" (the injector wraps the simulated device)", sc.Name)
	}
	if sc.Workload == WorkloadTimeSeries {
		if sc.AppendCount < 1 {
			f.errf("append_count", "scenario %q: timeseries workload needs append_count >= 1", sc.Name)
		}
		if sc.Sharing > 0 {
			f.errf("sharing", "scenario %q: timeseries appends are whole trees; sharing is not supported", sc.Name)
		}
	} else if sc.AppendCount != 0 {
		f.errf("append_count", "scenario %q: append_count only applies to the timeseries workload", sc.Name)
	}
	if sc.Workload == WorkloadIncremental {
		if sc.MutateCount < 1 {
			f.errf("mutate_count", "scenario %q: incremental workload needs mutate_count >= 1", sc.Name)
		}
		if faulted {
			f.errf("fault_transient", "scenario %q: incremental workload does not support fault injection", sc.Name)
		}
	} else if sc.MutateCount != 0 {
		f.errf("mutate_count", "scenario %q: mutate_count only applies to the incremental workload", sc.Name)
	}
	if sc.Workload == WorkloadReshard && sc.Backend != BackendSharded {
		f.errf("backend", "scenario %q: reshard workload needs backend = \"sharded\" (it migrates pages between fleet members)", sc.Name)
	}
	if sc.UseSharingStats && sc.Sharing == 0 {
		f.errf("use_sharing_stats", "scenario %q: use_sharing_stats needs sharing > 0", sc.Name)
	}
	if sc.Shape == ShapeShared && sc.Sharing == 0 {
		sc.Sharing = 0.25
	}
	return sc
}

// InSuite reports whether the scenario belongs to the named suite.
func (sc Scenario) InSuite(suite string) bool {
	for _, s := range sc.Suites {
		if s == suite {
			return true
		}
	}
	return false
}

// genConfig translates the scenario into a generator configuration.
func (sc Scenario) genConfig() gen.Config {
	cfg := gen.Config{
		NumComplexObjects: sc.Objects,
		Fanouts:           sc.Shape.fanouts(),
		Clustering:        sc.Clustering,
		Sharing:           sc.Sharing,
		Seed:              sc.Seed,
		BufferPages:       sc.BufferPgs,
	}
	if sc.Clustering == gen.InterObject {
		// Size type regions to the database instead of the generator's
		// generous default, so wide shapes don't blow up the extent.
		cfg.RegionPages = sc.Objects/9 + 2
	}
	if sc.Workload == WorkloadTimeSeries {
		// Headroom for the appended trees: components per tree times
		// appends, at 9 objects per page, rounded up generously.
		nodes := 7
		if fo := sc.Shape.fanouts(); fo != nil {
			nodes = 1
			w := 1
			for _, f := range fo {
				w *= f
				nodes += w
			}
		}
		cfg.ExtraPages = (sc.AppendCount*nodes)/9 + 2
	}
	return cfg
}
