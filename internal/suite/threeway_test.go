package suite

import (
	"strings"
	"testing"
)

// TestThreeWaySuiteRuns extends the bench package's capstone invariant
// to the scenario suite: for every workload and backend the suite
// registers, one measured iteration must pass both verification legs —
// the trace replay must reconstruct exactly the harness-reported
// counters, and the metrics registry delta must agree with both.
// runIteration fails hard on any disagreement, so these assert success
// plus the cross-accounting relations that make the run meaningful.
func TestThreeWaySuiteRuns(t *testing.T) {
	cases := []struct {
		name string
		src  string
	}{
		{"oo7-deep", `
[[scenario]]
name = "tw-oo7"
suites = ["tw"]
seed = 91
shape = "deep"
objects = 30
window = 10
`},
		{"oo7-shared-sharing-stats", `
[[scenario]]
name = "tw-shared"
suites = ["tw"]
seed = 91
shape = "shared"
objects = 40
window = 10
sharing = 0.25
use_sharing_stats = true
`},
		{"timeseries", `
[[scenario]]
name = "tw-ts"
suites = ["tw"]
seed = 91
workload = "timeseries"
objects = 60
append_count = 15
window = 10
`},
		{"incremental", `
[[scenario]]
name = "tw-inc"
suites = ["tw"]
seed = 91
workload = "incremental"
objects = 60
mutate_count = 10
window = 10
`},
		{"file-backend", `
[[scenario]]
name = "tw-file"
suites = ["tw"]
seed = 91
backend = "file"
objects = 40
window = 10
`},
		{"pagesvc-backend", `
[[scenario]]
name = "tw-net"
suites = ["tw"]
seed = 91
backend = "pagesvc"
objects = 40
window = 10
`},
		{"faulty-retry", `
[[scenario]]
name = "tw-fault"
suites = ["tw"]
seed = 91
objects = 60
window = 10
fault_transient = 0.1
fault_policy = "retry"
`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			scs, err := ParseScenarios("tw.toml", tc.src)
			if err != nil {
				t.Fatal(err)
			}
			sc := scs[0]
			it, err := runIteration(sc)
			if err != nil {
				t.Fatalf("three-way verification failed: %v", err)
			}
			d := it.det
			if d.Assembled != d.Ops || d.Ops == 0 {
				t.Errorf("assembled %d != ops %d (or zero)", d.Assembled, d.Ops)
			}
			if d.Reads == 0 {
				t.Error("no reads measured — the bracket missed the workload")
			}
			// A cold pool faults once per distinct page it reads:
			// misses equal physical reads in every scenario that never
			// writes back mid-run.
			if d.Misses != d.Reads {
				t.Errorf("pool misses %d != device reads %d", d.Misses, d.Reads)
			}
			if d.PeakWindow == 0 || d.PeakWindow > sc.Window {
				t.Errorf("replayed peak window %d out of (0, %d]", d.PeakWindow, sc.Window)
			}
			if strings.HasPrefix(tc.name, "faulty") && d.Retries == 0 {
				t.Error("faulty scenario retried nothing — injector not armed?")
			}
		})
	}
}

// TestRunRejectsUnknownSuite pins the selector contract.
func TestRunRejectsUnknownSuite(t *testing.T) {
	scs, err := ParseScenarios("t.toml", minimal)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(scs, RunOptions{Suite: "nope"}); err == nil {
		t.Error("Run accepted a suite no scenario belongs to")
	}
}
