package suite

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files from current output")

// loadRepoConfig parses the checked-in suites/core.toml.
func loadRepoConfig(t *testing.T) []Scenario {
	t.Helper()
	path := filepath.Join("..", "..", "suites", "core.toml")
	src, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	scs, err := ParseScenarios(path, string(src))
	if err != nil {
		t.Fatal(err)
	}
	return scs
}

// goldenConfig is a fixed two-scenario suite for the golden test. It is
// deliberately NOT the repo config: BENCH_core.json is the trajectory
// that moves when the operator improves, while this file pins the
// report schema itself — version field, field order, name ordering,
// canonicalization — so schema drift is always a deliberate diff here.
const goldenConfig = `
[[scenario]]
name = "golden-b"
suites = ["golden"]
seed = 91
objects = 60
window = 10
iters = 1
warmup = 0

[[scenario]]
name = "golden-a"
suites = ["golden"]
seed = 91
objects = 60
window = 10
scheduler = "depth-first"
iters = 1
warmup = 0
`

// TestReportGolden pins the canonical BENCH_*.json bytes of a fixed
// seeded mini-suite: schema version, field order, and scenario
// ordering (by name, regardless of config order). Refresh with:
// go test ./internal/suite -run Golden -update
func TestReportGolden(t *testing.T) {
	scs, err := ParseScenarios("golden.toml", goldenConfig)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Run(scs, RunOptions{Suite: "golden"})
	if err != nil {
		t.Fatal(err)
	}
	got, err := rep.Canonical().JSON()
	if err != nil {
		t.Fatal(err)
	}

	golden := filepath.Join("testdata", "suite.golden.json")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("suite report drifted from %s (re-run with -update if intended)\ngot:\n%s\nwant:\n%s",
			golden, got, want)
	}

	// Ordering contract: scenarios sorted by name even though the
	// config declares golden-b first.
	if rep.Scenarios[0].Name != "golden-a" || rep.Scenarios[1].Name != "golden-b" {
		t.Errorf("scenarios not name-sorted: %s, %s", rep.Scenarios[0].Name, rep.Scenarios[1].Name)
	}
}

// TestReportSchemaShape decodes the report generically and checks the
// schema contract consumers rely on: a version field, sorted scenario
// names, verified flags, and zeroed wall-clock fields under Canonical.
func TestReportSchemaShape(t *testing.T) {
	scs, err := ParseScenarios("golden.toml", goldenConfig)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Run(scs, RunOptions{Suite: "golden"})
	if err != nil {
		t.Fatal(err)
	}
	data, err := rep.Canonical().JSON()
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Schema    int    `json:"schema"`
		Suite     string `json:"suite"`
		Scenarios []map[string]any
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Schema != SchemaVersion {
		t.Errorf("schema = %d, want %d", doc.Schema, SchemaVersion)
	}
	if doc.Suite != "golden" {
		t.Errorf("suite = %q", doc.Suite)
	}
	for i, sc := range doc.Scenarios {
		if v, ok := sc["verified"].(bool); !ok || !v {
			t.Errorf("scenario %d: verified = %v", i, sc["verified"])
		}
		for _, k := range []string{"ns_per_op", "allocs_per_op", "bytes_per_op"} {
			if sc[k] != float64(0) {
				t.Errorf("scenario %d: canonical %s = %v, want 0", i, k, sc[k])
			}
		}
		if i > 0 && doc.Scenarios[i-1]["name"].(string) >= sc["name"].(string) {
			t.Errorf("scenarios out of order at %d: %v >= %v", i, doc.Scenarios[i-1]["name"], sc["name"])
		}
	}
}
