package suite

import (
	"strings"
	"testing"

	"revelation/internal/assembly"
	"revelation/internal/gen"
)

// minimal is a valid single-scenario config other cases perturb.
const minimal = `
[[scenario]]
name = "s1"
suites = ["core"]
seed = 91
`

func TestParseScenariosValid(t *testing.T) {
	scs, err := ParseScenarios("t.toml", minimal)
	if err != nil {
		t.Fatal(err)
	}
	if len(scs) != 1 {
		t.Fatalf("got %d scenarios", len(scs))
	}
	sc := scs[0]
	// Defaults.
	if sc.Name != "s1" || sc.Seed != 91 || sc.Workload != WorkloadAssemble ||
		sc.Shape != ShapePaper || sc.Backend != BackendLocal ||
		sc.Scheduler != assembly.Elevator || sc.Clustering != gen.Unclustered ||
		sc.Iters != 3 || sc.Warmup != 1 || sc.Window != 20 || sc.Objects != 200 {
		t.Errorf("defaults wrong: %+v", sc)
	}
	if sc.FaultSeed != sc.Seed {
		t.Errorf("fault seed defaults to seed, got %d", sc.FaultSeed)
	}
	if sc.FaultPolicy != assembly.RetryFaults {
		t.Errorf("fault policy defaults to retry, got %v", sc.FaultPolicy)
	}
}

func TestParseScenariosFullKnobs(t *testing.T) {
	src := `
[[scenario]]
name = "full"            # inline comment with "quotes # inside"
suites = ["core", "smoke"]
seed = 7
workload = "timeseries"
shape = "deep"
clustering = "inter-object"
scheduler = "breadth-first"
backend = "local"
objects = 40
window = 5
buffer_pages = 64
iters = 2
warmup = 0
append_count = 10
stall_rate = 0.5
stall_us = 250
pin_window = true
page_batch = true
`
	scs, err := ParseScenarios("t.toml", src)
	if err != nil {
		t.Fatal(err)
	}
	sc := scs[0]
	if sc.Workload != WorkloadTimeSeries || sc.Shape != ShapeDeep ||
		sc.Clustering != gen.InterObject || sc.Scheduler != assembly.BreadthFirst ||
		sc.BufferPgs != 64 || sc.AppendCount != 10 || sc.StallRate != 0.5 ||
		sc.Stall.Microseconds() != 250 || !sc.PinWindow || !sc.PageBatch {
		t.Errorf("knobs wrong: %+v", sc)
	}
	if len(sc.Suites) != 2 || !sc.InSuite("core") || !sc.InSuite("smoke") || sc.InSuite("other") {
		t.Errorf("suites wrong: %v", sc.Suites)
	}
}

// TestParseScenariosErrors is the table-driven validation contract:
// every bad config is rejected, the message carries the offending line
// number, and names the problem.
func TestParseScenariosErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
		// want are substrings the error must contain; a ":N:" entry
		// pins the reported line number.
		want []string
	}{
		{
			name: "unknown key",
			src:  minimal + "wibble = 3\n",
			want: []string{`unknown key "wibble"`, ":6:"},
		},
		{
			name: "seed required",
			src:  "[[scenario]]\nname = \"s\"\nsuites = [\"core\"]\n",
			want: []string{"seed is required"},
		},
		{
			name: "missing name",
			src:  "[[scenario]]\nsuites = [\"core\"]\nseed = 1\n",
			want: []string{"needs a name"},
		},
		{
			name: "missing suites",
			src:  "[[scenario]]\nname = \"s\"\nseed = 1\n",
			want: []string{"suites list is required"},
		},
		{
			name: "duplicate scenario name",
			src:  minimal + "\n[[scenario]]\nname = \"s1\"\nsuites = [\"core\"]\nseed = 2\n",
			want: []string{`scenario "s1" already defined`},
		},
		{
			name: "duplicate key",
			src:  minimal + "seed = 92\n",
			want: []string{`duplicate key "seed"`, ":6:"},
		},
		{
			name: "wrong type",
			src:  minimal + "window = \"big\"\n",
			want: []string{`key "window": got string, want integer`, ":6:"},
		},
		{
			name: "unknown workload",
			src:  minimal + "workload = \"scan\"\n",
			want: []string{`unknown workload "scan"`, ":6:"},
		},
		{
			name: "unknown scheduler",
			src:  minimal + "scheduler = \"random\"\n",
			want: []string{`unknown scheduler "random"`},
		},
		{
			name: "unknown backend",
			src:  minimal + "backend = \"cloud\"\n",
			want: []string{`unknown backend "cloud"`},
		},
		{
			name: "sharing out of range",
			src:  minimal + "sharing = 1.5\n",
			want: []string{"sharing must be in [0, 1)", ":6:"},
		},
		{
			name: "rate out of range",
			src:  minimal + "fault_transient = 2.0\n",
			want: []string{"fault_transient must be in [0, 1]"},
		},
		{
			name: "faults need local backend",
			src:  minimal + "backend = \"pagesvc\"\nfault_transient = 0.1\n",
			want: []string{`fault/stall knobs require backend = "local"`, ":6:"},
		},
		{
			name: "timeseries needs append_count",
			src:  minimal + "workload = \"timeseries\"\n",
			want: []string{"needs append_count"},
		},
		{
			name: "append_count only for timeseries",
			src:  minimal + "append_count = 5\n",
			want: []string{"append_count only applies to the timeseries workload", ":6:"},
		},
		{
			name: "timeseries forbids sharing",
			src:  minimal + "workload = \"timeseries\"\nappend_count = 5\nsharing = 0.5\n",
			want: []string{"sharing is not supported", ":8:"},
		},
		{
			name: "incremental needs mutate_count",
			src:  minimal + "workload = \"incremental\"\n",
			want: []string{"needs mutate_count"},
		},
		{
			name: "mutate_count only for incremental",
			src:  minimal + "mutate_count = 5\n",
			want: []string{"mutate_count only applies to the incremental workload"},
		},
		{
			name: "incremental forbids faults",
			src:  minimal + "workload = \"incremental\"\nmutate_count = 5\nfault_transient = 0.1\n",
			want: []string{"does not support fault injection"},
		},
		{
			name: "sharing stats need sharing",
			src:  minimal + "use_sharing_stats = true\n",
			want: []string{"use_sharing_stats needs sharing > 0"},
		},
		{
			name: "zero window",
			src:  minimal + "window = 0\n",
			want: []string{"window must be >= 1", ":6:"},
		},
		{
			name: "unknown section",
			src:  "[[workload]]\nname = \"x\"\n",
			want: []string{"unknown section [[workload]]", ":1:"},
		},
		{
			name: "plain table",
			src:  "[scenario]\nname = \"x\"\n",
			want: []string{"plain [tables] are not supported"},
		},
		{
			name: "key outside section",
			src:  "name = \"x\"\n",
			want: []string{"key outside any [[scenario]] section", ":1:"},
		},
		{
			name: "malformed value",
			src:  minimal + "objects = 10abc\n",
			want: []string{`bad value "10abc"`, ":6:"},
		},
		{
			name: "unterminated array",
			src:  "[[scenario]]\nname = \"s\"\nsuites = [\"core\"\nseed = 1\n",
			want: []string{"unterminated array", ":3:"},
		},
		{
			name: "empty config",
			src:  "# nothing here\n",
			want: []string{"no [[scenario]] sections"},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ParseScenarios("t.toml", tc.src)
			if err == nil {
				t.Fatalf("config accepted:\n%s", tc.src)
			}
			for _, w := range tc.want {
				if !strings.Contains(err.Error(), w) {
					t.Errorf("error %q\n  missing %q", err, w)
				}
			}
		})
	}
}

// TestRepoConfigParses pins the checked-in config: it must parse, and
// it must cover the suite contract — at least 6 core scenarios across
// at least 2 scheduling policies and 2 backends, including the three
// workloads, plus a non-empty smoke subset.
func TestRepoConfigParses(t *testing.T) {
	scs := loadRepoConfig(t)
	schedulers := map[string]bool{}
	backends := map[Backend]bool{}
	workloads := map[Workload]bool{}
	core, smoke := 0, 0
	for _, sc := range scs {
		if sc.InSuite("core") {
			core++
			schedulers[sc.Scheduler.String()] = true
			backends[sc.Backend] = true
			workloads[sc.Workload] = true
		}
		if sc.InSuite("smoke") {
			smoke++
		}
	}
	if core < 6 {
		t.Errorf("core suite has %d scenarios, want >= 6", core)
	}
	if smoke < 2 || smoke > 4 {
		t.Errorf("smoke suite has %d scenarios, want a small CI subset (2-4)", smoke)
	}
	if len(schedulers) < 2 {
		t.Errorf("core covers %d scheduling policies, want >= 2: %v", len(schedulers), schedulers)
	}
	if len(backends) < 2 {
		t.Errorf("core covers %d backends, want >= 2: %v", len(backends), backends)
	}
	for _, w := range []Workload{WorkloadAssemble, WorkloadTimeSeries, WorkloadIncremental} {
		if !workloads[w] {
			t.Errorf("core is missing the %s workload", w)
		}
	}
}
