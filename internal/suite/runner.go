package suite

import (
	"fmt"
	"runtime"
	"time"

	"revelation/internal/assembly"
	"revelation/internal/bench"
	"revelation/internal/disk"
	"revelation/internal/metrics"
	"revelation/internal/trace"
)

// RunOptions tunes a suite execution.
type RunOptions struct {
	// Suite selects which scenarios run (Scenario.Suites membership).
	Suite string
	// Iters overrides every scenario's iteration count when positive.
	Iters int
	// Logf, when non-nil, receives one progress line per scenario.
	Logf func(format string, args ...any)
}

// detCounters is the deterministic projection of one iteration — the
// values that must be identical across iterations of the same scenario
// and across whole suite runs under the same seeds.
type detCounters struct {
	Ops             int
	Reads           int64
	SeekReads       int64
	SeekTotal       int64
	Hits            int64
	Misses          int64
	Assembled       int
	Aborted         int
	Skipped         int
	Retries         int
	Stalls          int
	PeakWindow      int
	PeakWindowPages int
	Migrated        int
}

// iterResult is one iteration's full measurement.
type iterResult struct {
	det     detCounters
	elapsed time.Duration
	mallocs uint64
	bytes   uint64
}

// Run executes every scenario belonging to opt.Suite and returns the
// report. Every iteration of every scenario is three-way verified —
// harness counters against the trace replay against the metrics
// registry delta — and iterations are cross-checked for determinism;
// any disagreement fails the run.
func Run(all []Scenario, opt RunOptions) (*Report, error) {
	if opt.Suite == "" {
		opt.Suite = "core"
	}
	logf := opt.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	rep := &Report{Schema: SchemaVersion, Suite: opt.Suite}
	matched := 0
	for _, sc := range all {
		if !sc.InSuite(opt.Suite) {
			continue
		}
		matched++
		if opt.Iters > 0 {
			sc.Iters = opt.Iters
		}
		res, err := runScenario(sc)
		if err != nil {
			return nil, fmt.Errorf("scenario %s: %w", sc.Name, err)
		}
		logf("%-32s %-11s ops=%-5d reads=%-6d avgseek=%7.1f ns/op=%d",
			sc.Name, sc.Workload, res.Ops, res.Reads, res.AvgSeek, res.NsPerOp)
		rep.Scenarios = append(rep.Scenarios, res)
	}
	if matched == 0 {
		return nil, fmt.Errorf("no scenarios in suite %q", opt.Suite)
	}
	rep.sortScenarios()
	return rep, nil
}

// runScenario executes warmup + iters iterations and aggregates. The
// deterministic counters of every iteration (warmup included) must be
// identical; the wall-clock rates average over the measured iterations.
func runScenario(sc Scenario) (ScenarioResult, error) {
	var first *detCounters
	var elapsed time.Duration
	var mallocs, bytes uint64
	for i := 0; i < sc.Warmup+sc.Iters; i++ {
		it, err := runIteration(sc)
		if err != nil {
			return ScenarioResult{}, fmt.Errorf("iteration %d: %w", i, err)
		}
		if first == nil {
			d := it.det
			first = &d
		} else if it.det != *first {
			return ScenarioResult{}, fmt.Errorf(
				"iteration %d not deterministic:\n  first %+v\n  now   %+v", i, *first, it.det)
		}
		if i >= sc.Warmup {
			elapsed += it.elapsed
			mallocs += it.mallocs
			bytes += it.bytes
		}
	}
	d := *first
	n := int64(sc.Iters)
	perOp := int64(d.Ops) * n
	if perOp == 0 {
		perOp = 1 // avoid dividing by zero when nothing assembled
	}
	avgSeek := 0.0
	if d.Reads > 0 {
		avgSeek = float64(d.SeekReads) / float64(d.Reads)
	}
	return ScenarioResult{
		Name:            sc.Name,
		Workload:        string(sc.Workload),
		Shape:           string(sc.Shape),
		Scheduler:       sc.Scheduler.String(),
		Backend:         string(sc.Backend),
		Clustering:      sc.Clustering.String(),
		Window:          sc.Window,
		Objects:         sc.Objects,
		Seed:            sc.Seed,
		Iters:           sc.Iters,
		Ops:             d.Ops,
		Reads:           d.Reads,
		SeekReads:       d.SeekReads,
		SeekTotal:       d.SeekTotal,
		AvgSeek:         avgSeek,
		BufferHits:      d.Hits,
		BufferMisses:    d.Misses,
		Assembled:       d.Assembled,
		Aborted:         d.Aborted,
		Skipped:         d.Skipped,
		Retries:         d.Retries,
		Stalls:          d.Stalls,
		PeakWindow:      d.PeakWindow,
		PeakWindowPages: d.PeakWindowPages,
		Verified:        true,
		NsPerOp:         elapsed.Nanoseconds() / perOp,
		AllocsPerOp:     int64(mallocs) / perOp,
		BytesPerOp:      int64(bytes) / perOp,
	}, nil
}

// runIteration builds a fresh environment, measures one execution of
// the workload through the shared bench measurement core, and three-way
// verifies it.
func runIteration(sc Scenario) (iterResult, error) {
	col := trace.NewCollector()
	tr := trace.New(col)
	reg := metrics.NewRegistry()
	e, err := buildEnv(sc, tr, reg)
	if err != nil {
		return iterResult{}, err
	}
	defer e.close()

	disk.RegisterMetrics(e.db.Device, reg, "dev")
	e.db.Pool.RegisterMetrics(reg, "pool")

	var prep *prepared
	if sc.Workload == WorkloadIncremental {
		// Standing-query registration is part of setup, not of the
		// measured incremental maintenance.
		if prep, err = register(e); err != nil {
			return iterResult{}, err
		}
	}
	e.armFaults(sc)

	m, err := bench.StartMeasurement(sc.Name, sc.Window, e.db.Device, e.db.Pool, tr)
	if err != nil {
		return iterResult{}, err
	}
	before := reg.Snapshot()
	var ms0, ms1 runtime.MemStats
	runtime.ReadMemStats(&ms0)

	st, ops, err := runWorkload(sc, e, tr, reg, prep)
	if err != nil {
		m.Abort()
		return iterResult{}, err
	}

	runtime.ReadMemStats(&ms1)
	got := m.End(st)
	delta := reg.Snapshot().Delta(before)

	// Leg 1: the trace replay must reconstruct exactly the counters the
	// harness reported in the end-of-run marker.
	var run *trace.Run
	for _, r := range trace.SplitRuns(col.Events()) {
		if r.Name == sc.Name {
			rr := r
			run = &rr
		}
	}
	if run == nil || run.Reported == nil {
		return iterResult{}, fmt.Errorf("trace has no completed run %q", sc.Name)
	}
	replay, err := run.Verify()
	if err != nil {
		return iterResult{}, fmt.Errorf("trace replay disagrees with harness: %w", err)
	}
	if int(replay.PagesMigrated) != e.migrated {
		return iterResult{}, fmt.Errorf("trace replay counted %d migrated pages, migrator reported %d",
			replay.PagesMigrated, e.migrated)
	}

	// Leg 2: the metrics registry's delta over the measured phase must
	// agree with the same counters.
	if err := verifyRegistry(sc, e, delta, got, st); err != nil {
		return iterResult{}, err
	}

	return iterResult{
		det: detCounters{
			Ops:             ops,
			Reads:           got.Dev.Reads,
			SeekReads:       got.Dev.SeekReads,
			SeekTotal:       got.Dev.SeekTotal,
			Hits:            got.Pool.Hits,
			Misses:          got.Pool.Faults,
			Assembled:       st.Assembled,
			Aborted:         st.Aborted,
			Skipped:         st.Skipped,
			Retries:         st.FaultRetries,
			Stalls:          st.WindowStalls,
			PeakWindow:      replay.PeakWindow,
			PeakWindowPages: st.PeakWindowPgs,
			Migrated:        e.migrated,
		},
		elapsed: got.Elapsed,
		mallocs: ms1.Mallocs - ms0.Mallocs,
		bytes:   ms1.TotalAlloc - ms0.TotalAlloc,
	}, nil
}

// verifyRegistry is the registry leg of the three-way check: assembly
// and buffer counters always, disk counters when the device exports
// them, and the page-service client's net counters on the pagesvc
// backend (one send and one recv per logical page access in a
// fault-free run).
func verifyRegistry(sc Scenario, e *env, d metrics.Snapshot, got bench.Measured, st assembly.Stats) error {
	policy := sc.Scheduler.String()
	if e.shards > 0 {
		// The sharded backend assembles under the per-shard elevator,
		// whose name is the operator's policy label.
		policy = fmt.Sprintf("shard-elevator(%d)", e.shards)
	}
	for _, c := range []struct {
		name string
		reg  int64
		want int64
	}{
		{"asm_assembly_assembled_total", d.Value("asm_assembly_assembled_total", "policy", policy), int64(st.Assembled)},
		{"asm_assembly_aborted_total", d.Value("asm_assembly_aborted_total", "policy", policy), int64(st.Aborted)},
		{"asm_assembly_skipped_total", d.Value("asm_assembly_skipped_total", "policy", policy), int64(st.Skipped)},
		{"asm_assembly_fault_retries_total", d.Value("asm_assembly_fault_retries_total", "policy", policy), int64(st.FaultRetries)},
		{"asm_assembly_window_stalls_total", d.Value("asm_assembly_window_stalls_total", "policy", policy), int64(st.WindowStalls)},
		{"asm_buffer_hits_total", d.Value("asm_buffer_hits_total", "pool", "pool"), got.Pool.Hits},
		{"asm_buffer_misses_total", d.Value("asm_buffer_misses_total", "pool", "pool"), got.Pool.Faults},
	} {
		if c.reg != c.want {
			return fmt.Errorf("registry disagrees with harness: %s delta %d, harness %d", c.name, c.reg, c.want)
		}
	}
	if len(e.shardLabels) > 0 {
		// Every member client exports its own net series; summed across
		// the fleet they must cover every logical page access exactly
		// once — the router never duplicates or drops an access. The
		// migrator's direct installs on the joiner are page accesses too
		// (the router's stats sum every member's device, routed or not);
		// the one extra net op of a reshard is the join's Allocate RPC
		// growing the joiner to the fleet's extent.
		accesses := got.Dev.Reads + got.Dev.Writes
		if sc.Workload == WorkloadReshard {
			accesses++
		}
		var sends, recvs int64
		for _, lbl := range e.shardLabels {
			sends += d.Value("asm_net_sends_total", "dev", lbl)
			recvs += d.Value("asm_net_recvs_total", "dev", lbl)
		}
		if sends != accesses || recvs != accesses {
			return fmt.Errorf("registry disagrees with harness: fleet sends/recvs %d/%d, page accesses %d",
				sends, recvs, accesses)
		}
		if sc.Workload == WorkloadReshard {
			if reg := d.Value("asm_fleet_pages_migrated_total"); reg != int64(e.migrated) {
				return fmt.Errorf("registry disagrees with harness: asm_fleet_pages_migrated_total %d, migrator reported %d", reg, e.migrated)
			}
		}
		return nil
	}
	if e.netDev != "" {
		// The client exports net counters instead of disk counters: a
		// fault-free run sends exactly one request and receives exactly
		// one response per logical page access.
		accesses := got.Dev.Reads + got.Dev.Writes
		sends := d.Value("asm_net_sends_total", "dev", e.netDev)
		recvs := d.Value("asm_net_recvs_total", "dev", e.netDev)
		if sends != accesses || recvs != accesses {
			return fmt.Errorf("registry disagrees with harness: net sends/recvs %d/%d, page accesses %d",
				sends, recvs, accesses)
		}
		return nil
	}
	for _, c := range []struct {
		name string
		want int64
	}{
		{"asm_disk_reads_total", got.Dev.Reads},
		{"asm_disk_read_seek_pages_total", got.Dev.SeekReads},
		{"asm_disk_seek_pages_total", got.Dev.SeekTotal},
	} {
		if reg := d.Value(c.name, "dev", "dev"); reg != c.want {
			return fmt.Errorf("registry disagrees with harness: %s delta %d, harness %d", c.name, reg, c.want)
		}
	}
	return nil
}
