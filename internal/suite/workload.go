package suite

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sort"

	"revelation/internal/assembly"
	"revelation/internal/disk"
	"revelation/internal/fleet"
	"revelation/internal/gen"
	"revelation/internal/metrics"
	"revelation/internal/object"
	"revelation/internal/pagesvc"
	"revelation/internal/shard"
	"revelation/internal/trace"
	"revelation/internal/volcano"
)

// env is one fully built scenario environment: a fresh database on the
// scenario's device backend. Every iteration gets its own env, so
// iterations are independent and byte-identical under the same seed.
type env struct {
	db     *gen.Database
	faulty *disk.Faulty // non-nil when the scenario arms fault/stall knobs
	netDev string       // metrics label of the pagesvc client, "" otherwise
	// Sharded backend: the fleet width, the per-member client metric
	// labels, and the router's page-to-shard assignment (which also
	// drives the per-shard elevator).
	shards      int
	shardLabels []string
	shardOf     func(disk.PageID) int
	// Reshard workload: the router itself, the prepared fourth member
	// (dialed but not yet joined), and how many pages the measured
	// migration cut over.
	router   *shard.Router
	joiner   shard.Member
	migrated int
	closes   []func() error
}

func (e *env) close() {
	for i := len(e.closes) - 1; i >= 0; i-- {
		e.closes[i]()
	}
}

// buildEnv constructs the scenario's device stack and generates the
// database onto it. The tracer is wired only into the page-service
// client's net layer here; disk-layer tracing is attached by the
// measurement bracket. The registry receives the client's asm_net_*
// counters (device and pool counters are registered by the runner).
func buildEnv(sc Scenario, tr *trace.Tracer, reg *metrics.Registry) (*env, error) {
	e := &env{}
	cfg := sc.genConfig()
	faulted := sc.FaultTransient > 0 || sc.FaultPermanent > 0 || sc.StallRate > 0

	switch sc.Backend {
	case BackendLocal:
		if faulted {
			// The injector stays disarmed during the build; the runner
			// arms it right before the measured phase.
			e.faulty = disk.NewFaulty(disk.New(0), disk.FaultConfig{})
			cfg.Device = e.faulty
		}
	case BackendFile:
		dir, err := os.MkdirTemp("", "asmsuite-*")
		if err != nil {
			return nil, err
		}
		e.closes = append(e.closes, func() error { return os.RemoveAll(dir) })
		fd, err := disk.OpenFile(filepath.Join(dir, sc.Name+".db"), disk.DefaultPageSize)
		if err != nil {
			e.close()
			return nil, err
		}
		e.closes = append(e.closes, fd.Close)
		cfg.Device = fd
	case BackendPagesvc:
		sim := disk.New(0)
		srv := pagesvc.NewServer([]disk.Device{sim}, pagesvc.ServerConfig{})
		addr, err := srv.Listen("127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		e.closes = append(e.closes, srv.Close)
		client, err := pagesvc.Dial(pagesvc.ClientConfig{
			Primary:  addr,
			Dev:      pagesvc.DataDev,
			Tracer:   tr,
			Registry: reg,
		})
		if err != nil {
			e.close()
			return nil, err
		}
		e.closes = append(e.closes, client.Close)
		e.netDev = fmt.Sprintf("net%d", pagesvc.DataDev)
		cfg.Device = client
	case BackendSharded:
		// A three-shard fleet: each member is its own in-process page
		// service, each client labeled so the registry keeps per-shard
		// series. Closing the router closes the clients (Close is
		// idempotent, so the individual closers registered on the error
		// path stay safe).
		const fleet = 3
		members := make([]shard.Member, fleet)
		for i := 0; i < fleet; i++ {
			srv := pagesvc.NewServer([]disk.Device{disk.New(0)}, pagesvc.ServerConfig{})
			addr, err := srv.Listen("127.0.0.1:0")
			if err != nil {
				e.close()
				return nil, err
			}
			e.closes = append(e.closes, srv.Close)
			label := fmt.Sprintf("net-s%d", i)
			client, err := pagesvc.Dial(pagesvc.ClientConfig{
				Primary:  addr,
				Dev:      pagesvc.DataDev,
				Tracer:   tr,
				Registry: reg,
				Label:    label,
			})
			if err != nil {
				e.close()
				return nil, err
			}
			e.closes = append(e.closes, client.Close)
			members[i] = shard.Member{Name: fmt.Sprintf("s%d", i), Primary: client}
			e.shardLabels = append(e.shardLabels, label)
		}
		router, err := shard.New(shard.Config{Members: members, Tracer: tr, Registry: reg})
		if err != nil {
			e.close()
			return nil, err
		}
		e.closes = append(e.closes, router.Close)
		e.router = router
		e.shards = fleet
		e.shardOf = router.ShardOf
		cfg.Device = router
		if sc.Workload == WorkloadReshard {
			// Prepare the fourth member now (dial is setup, not workload)
			// but leave the join to the measured phase. The elevator and
			// the policy label both use the POST-join width: lanes are
			// fixed identities, and pre-join no page routes to the empty
			// fourth lane.
			srv := pagesvc.NewServer([]disk.Device{disk.New(0)}, pagesvc.ServerConfig{})
			addr, err := srv.Listen("127.0.0.1:0")
			if err != nil {
				e.close()
				return nil, err
			}
			e.closes = append(e.closes, srv.Close)
			label := fmt.Sprintf("net-s%d", fleet)
			client, err := pagesvc.Dial(pagesvc.ClientConfig{
				Primary:  addr,
				Dev:      pagesvc.DataDev,
				Tracer:   tr,
				Registry: reg,
				Label:    label,
			})
			if err != nil {
				e.close()
				return nil, err
			}
			e.closes = append(e.closes, client.Close)
			e.joiner = shard.Member{Name: fmt.Sprintf("s%d", fleet), Primary: client}
			e.shardLabels = append(e.shardLabels, label)
			e.shards = fleet + 1
		}
	default:
		return nil, fmt.Errorf("suite: unknown backend %q", sc.Backend)
	}

	db, err := gen.Build(cfg)
	if err != nil {
		e.close()
		return nil, err
	}
	e.db = db
	return e, nil
}

// armFaults configures the injector for the measured phase.
func (e *env) armFaults(sc Scenario) {
	if e.faulty == nil {
		return
	}
	e.faulty.SetConfig(disk.FaultConfig{
		Seed:              sc.FaultSeed,
		TransientRate:     sc.FaultTransient,
		TransientFailures: 2,
		PermanentRate:     sc.FaultPermanent,
		StallRate:         sc.StallRate,
		Stall:             sc.Stall,
	})
}

// options builds the operator options for the scenario. On the sharded
// backend the per-shard elevator (with shard prefetch) replaces the
// configured scheduler: pending references partition by the router's
// assignment and each lane keeps its own SCAN order.
func (sc Scenario) options(e *env, tr *trace.Tracer, reg *metrics.Registry) assembly.Options {
	opts := assembly.Options{
		Window:          sc.Window,
		Scheduler:       sc.Scheduler,
		UseSharingStats: sc.UseSharingStats,
		PinWindowPages:  sc.PinWindow,
		PageBatch:       sc.PageBatch,
		FaultPolicy:     sc.FaultPolicy,
		Tracer:          tr,
		Metrics:         reg,
	}
	if e.shards > 0 {
		opts.CustomScheduler = assembly.NewShardElevator(e.shards, e.shardOf)
		opts.ShardPrefetch = true
	}
	return opts
}

// assembleRoots runs the assembly operator over the given roots and
// returns its stats after checking the drain count matches.
func assembleRoots(sc Scenario, e *env, roots []object.OID, tr *trace.Tracer, reg *metrics.Registry) (assembly.Stats, error) {
	items := make([]volcano.Item, len(roots))
	for i, r := range roots {
		items[i] = r
	}
	op := assembly.New(volcano.NewSlice(items), e.db.Store, e.db.Template, sc.options(e, tr, reg))
	n, err := volcano.Count(op)
	if err != nil {
		return assembly.Stats{}, err
	}
	st := op.Stats()
	if n != st.Assembled {
		return st, fmt.Errorf("suite %s: drained %d objects but operator assembled %d", sc.Name, n, st.Assembled)
	}
	return st, nil
}

// runWorkload executes the scenario's measured phase and returns the
// operator stats plus the op count (assembled complex objects) the
// per-op rates normalize by.
func runWorkload(sc Scenario, e *env, tr *trace.Tracer, reg *metrics.Registry, prep *prepared) (assembly.Stats, int, error) {
	switch sc.Workload {
	case WorkloadTimeSeries:
		roots, err := appendTrees(sc, e)
		if err != nil {
			return assembly.Stats{}, 0, err
		}
		st, err := assembleRoots(sc, e, roots, tr, reg)
		return st, st.Assembled, err
	case WorkloadIncremental:
		roots, err := mutateComponents(sc, e, prep)
		if err != nil {
			return assembly.Stats{}, 0, err
		}
		st, err := assembleRoots(sc, e, roots, tr, reg)
		return st, st.Assembled, err
	case WorkloadReshard:
		// Assemble the first half of the roots on the three-member
		// fleet, live-reshard the fourth member in, assemble the rest on
		// the enlarged fleet. The migration is part of the measured
		// phase: its copy reads flow through the router and its cutovers
		// are WAL-logged to a dedicated meta device.
		half := len(e.db.Roots) / 2
		st1, err := assembleRoots(sc, e, e.db.Roots[:half], tr, reg)
		if err != nil {
			return assembly.Stats{}, 0, err
		}
		mg, err := fleet.NewMigrator(fleet.MigratorConfig{
			Router:     e.router,
			MetaDev:    disk.New(0),
			ChunkPages: 32,
			Registry:   reg,
		})
		if err != nil {
			return assembly.Stats{}, 0, err
		}
		e.migrated, err = mg.Join(e.joiner)
		mg.Close()
		if err != nil {
			return assembly.Stats{}, 0, fmt.Errorf("suite %s: reshard: %w", sc.Name, err)
		}
		st2, err := assembleRoots(sc, e, e.db.Roots[half:], tr, reg)
		st := addStats(st1, st2)
		return st, st.Assembled, err
	default: // WorkloadAssemble
		st, err := assembleRoots(sc, e, e.db.Roots, tr, reg)
		return st, st.Assembled, err
	}
}

// addStats merges two sequential operator runs' stats: totals add,
// peaks take the max (the runs never overlap in time).
func addStats(a, b assembly.Stats) assembly.Stats {
	s := assembly.Stats{
		Assembled:      a.Assembled + b.Assembled,
		Aborted:        a.Aborted + b.Aborted,
		Resolved:       a.Resolved + b.Resolved,
		Fetched:        a.Fetched + b.Fetched,
		PageRequests:   a.PageRequests + b.PageRequests,
		SharedLinks:    a.SharedLinks + b.SharedLinks,
		PredicateFails: a.PredicateFails + b.PredicateFails,
		NilRefs:        a.NilRefs + b.NilRefs,
		Skipped:        a.Skipped + b.Skipped,
		FaultRetries:   a.FaultRetries + b.FaultRetries,
		WindowStalls:   a.WindowStalls + b.WindowStalls,
		PeakRefPool:    a.PeakRefPool,
		PeakWindowPgs:  a.PeakWindowPgs,
	}
	if b.PeakRefPool > s.PeakRefPool {
		s.PeakRefPool = b.PeakRefPool
	}
	if b.PeakWindowPgs > s.PeakWindowPgs {
		s.PeakWindowPgs = b.PeakWindowPgs
	}
	return s
}

// appendTrees materializes AppendCount fresh complex objects at the
// extent's tail — time-ordered arrivals landing on the headroom pages —
// and returns their roots. Runs inside the measured phase: the page
// faults the appends take are part of the workload.
func appendTrees(sc Scenario, e *env) ([]object.OID, error) {
	db := e.db
	rng := rand.New(rand.NewSource(sc.Seed + 1))
	positions := len(db.Positions)
	objPerPage := (disk.DefaultPageSize - 32) / (96 + 4)
	nextOID := db.NextOID
	placed := 0
	roots := make([]object.OID, 0, sc.AppendCount)
	for t := 0; t < sc.AppendCount; t++ {
		oids := make([]object.OID, positions)
		for p := range oids {
			oids[p] = nextOID
			nextOID++
		}
		roots = append(roots, oids[0])
		for p := 0; p < positions; p++ {
			o := &object.Object{
				OID:   oids[p],
				Class: db.Positions[p].ID,
				Ints:  []int32{int32(t), int32(rng.Intn(1000)), int32(t), int32(p)},
				Refs:  make([]object.OID, 8),
			}
			for f, cp := range db.Children[p] {
				o.Refs[f] = oids[cp]
			}
			page := db.DataPages + placed/objPerPage
			if _, err := db.Store.PutAt(o, page); err != nil {
				return nil, fmt.Errorf("suite %s: append tree %d: %w", sc.Name, t, err)
			}
			placed++
		}
	}
	return roots, nil
}

// prepared is the standing-query registration the incremental workload
// builds before measurement: for every component, the roots whose
// assembled result it feeds.
type prepared struct {
	rootsOf map[object.OID][]object.OID
	// comps is the deterministic mutation candidate list: every
	// component OID in ascending order.
	comps []object.OID
}

// register walks every root's object graph (unmeasured — this is the
// standing query's registration pass) and builds the reverse
// dependency index. Shared components map to every root that reaches
// them, which is what makes re-assembly after a shared-leaf mutation
// touch all its dependents.
func register(e *env) (*prepared, error) {
	p := &prepared{rootsOf: map[object.OID][]object.OID{}}
	seenComp := map[object.OID]bool{}
	for _, root := range e.db.Roots {
		var walk func(oid object.OID) error
		seen := map[object.OID]bool{}
		walk = func(oid object.OID) error {
			if oid.IsNil() || seen[oid] {
				return nil
			}
			seen[oid] = true
			if !seenComp[oid] {
				seenComp[oid] = true
				p.comps = append(p.comps, oid)
			}
			rs := p.rootsOf[oid]
			if len(rs) == 0 || rs[len(rs)-1] != root {
				p.rootsOf[oid] = append(rs, root)
			}
			o, err := e.db.Store.Get(oid)
			if err != nil {
				return err
			}
			for _, ref := range o.Refs {
				if err := walk(ref); err != nil {
					return err
				}
			}
			return nil
		}
		if err := walk(root); err != nil {
			return nil, err
		}
	}
	sort.Slice(p.comps, func(a, b int) bool { return p.comps[a] < p.comps[b] })
	return p, nil
}

// mutateComponents updates MutateCount components in place and returns
// the affected roots in deterministic order — the set the standing
// query must re-assemble. Runs inside the measured phase: the reads
// and in-place writes are part of the workload.
func mutateComponents(sc Scenario, e *env, prep *prepared) ([]object.OID, error) {
	rng := rand.New(rand.NewSource(sc.Seed + 2))
	affected := map[object.OID]bool{}
	for i := 0; i < sc.MutateCount; i++ {
		oid := prep.comps[rng.Intn(len(prep.comps))]
		o, err := e.db.Store.Get(oid)
		if err != nil {
			return nil, err
		}
		o.Ints[1] = int32(rng.Intn(1000))
		if err := e.db.Store.Update(o); err != nil {
			return nil, err
		}
		for _, root := range prep.rootsOf[oid] {
			affected[root] = true
		}
	}
	roots := make([]object.OID, 0, len(affected))
	for r := range affected {
		roots = append(roots, r)
	}
	sort.Slice(roots, func(a, b int) bool { return roots[a] < roots[b] })
	return roots, nil
}
