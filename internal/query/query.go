// Package query is a miniature of the Revelation flow in the paper's
// Figure 1: a query over a set of complex objects "can be executed
// naively within the run-time system or it can be revealed" — rewritten
// into a physical plan whose data preparation is the assembly operator.
//
// A Query names the complex-object shape (a template), the extent (the
// root references), per-component predicates the revealer may push into
// the template (with their selectivities), and an arbitrary residual
// condition over the assembled complex object — the part that is "not
// algebraically expressible" (Section 4), like the paper's
// latitude/longitude distance computation.
//
// Execute it two ways:
//
//   - Naive: object-at-a-time recursive traversal, the way a compiled
//     method runs; components are fetched in method order and every
//     complex object is fully traversed before the next is considered.
//   - Reveal: builds a Volcano plan — assembly operator with the
//     predicates pushed into the template (predicate-first
//     scheduling), then a residual filter.
//
// Both produce the same result set; the plans differ in disk behaviour.
package query

import (
	"errors"
	"fmt"

	"revelation/internal/assembly"
	"revelation/internal/expr"
	"revelation/internal/object"
	"revelation/internal/volcano"
)

// Query is a selection over a set of complex objects.
type Query struct {
	// Template is the complex-object shape the query traverses.
	Template *assembly.Template
	// Roots is the extent: the root references of the candidate set.
	Roots []object.OID
	// NodePreds maps template node names to predicates on that
	// component — the algebraically expressible part, eligible for
	// push-down by the revealer.
	NodePreds map[string]expr.Predicate
	// Where is the residual condition over the assembled complex
	// object; nil means "no residual".
	Where func(*assembly.Instance) bool
}

// validate checks the query shape against the template.
func (q *Query) validate() error {
	if q.Template == nil {
		return errors.New("query: no template")
	}
	for name := range q.NodePreds {
		if q.Template.FindByName(name) == nil {
			return fmt.Errorf("query: predicate on unknown component %q", name)
		}
	}
	return nil
}

// NaiveExec runs the query object-at-a-time: each complex object is
// assembled by recursive traversal in field order (the compiled-method
// order), then the predicates and residual are evaluated. This is the
// baseline the paper's introduction criticizes: fetch order is fixed by
// the method text, not by physical layout, and predicate evaluation
// happens only once the object is in memory.
func NaiveExec(store *object.Store, q *Query) ([]*assembly.Instance, error) {
	if err := q.validate(); err != nil {
		return nil, err
	}
	var out []*assembly.Instance
	for _, root := range q.Roots {
		inst, err := naiveAssemble(store, root, q.Template)
		if err != nil {
			return nil, err
		}
		if inst == nil {
			continue // a required component was missing
		}
		if !naivePasses(inst, q) {
			continue
		}
		out = append(out, inst)
	}
	return out, nil
}

// naiveAssemble is the depth-first recursive fetch a method performs.
func naiveAssemble(store *object.Store, oid object.OID, node *assembly.Template) (*assembly.Instance, error) {
	o, err := store.Get(oid)
	if err != nil {
		return nil, fmt.Errorf("query: fetch %v: %w", oid, err)
	}
	inst := &assembly.Instance{
		Object:   o,
		Node:     node,
		Children: make([]*assembly.Instance, len(node.Children)),
	}
	for slot, ct := range node.Children {
		if ct.RefField >= len(o.Refs) {
			if ct.Required {
				return nil, nil
			}
			continue
		}
		ref := o.Refs[ct.RefField]
		if ref.IsNil() {
			if ct.Required {
				return nil, nil
			}
			continue
		}
		child, err := naiveAssemble(store, ref, ct)
		if err != nil {
			return nil, err
		}
		if child == nil {
			return nil, nil
		}
		child.Parent = inst
		inst.Children[slot] = child
	}
	return inst, nil
}

// naivePasses applies node predicates and the residual to a fully
// assembled complex object.
func naivePasses(inst *assembly.Instance, q *Query) bool {
	pass := true
	inst.Walk(func(in *assembly.Instance) {
		if !pass {
			return
		}
		if p, ok := q.NodePreds[in.Node.Name]; ok && !p.Eval(in.Object) {
			pass = false
		}
	})
	if !pass {
		return false
	}
	return q.Where == nil || q.Where(inst)
}

// Reveal rewrites the query into a physical Volcano plan: the node
// predicates are pushed into a cloned template (selective assembly
// with early abort and predicate-first scheduling), the assembly
// operator prepares the complex objects, and a residual filter applies
// Where. Use volcano.Explain on the result to see the plan.
func Reveal(store *object.Store, q *Query, opts assembly.Options) (volcano.Iterator, error) {
	if err := q.validate(); err != nil {
		return nil, err
	}
	tmpl := q.Template.Clone()
	for name, pred := range q.NodePreds {
		node := tmpl.FindByName(name)
		if node.Pred != nil {
			node.Pred = expr.And{Preds: []expr.Predicate{node.Pred, pred}}
		} else {
			node.Pred = pred
		}
	}
	if len(q.NodePreds) > 0 {
		opts.PredicateFirst = true
	}
	items := make([]volcano.Item, len(q.Roots))
	for i, r := range q.Roots {
		items[i] = r
	}
	var plan volcano.Iterator = assembly.New(volcano.NewSlice(items), store, tmpl, opts)
	if q.Where != nil {
		plan = volcano.NewFilter(plan, func(item volcano.Item) (bool, error) {
			inst, ok := item.(*assembly.Instance)
			if !ok {
				return false, fmt.Errorf("query: plan produced %T", item)
			}
			return q.Where(inst), nil
		})
	}
	return plan, nil
}

// RevealExec is Reveal followed by a full drain, returning instances.
func RevealExec(store *object.Store, q *Query, opts assembly.Options) ([]*assembly.Instance, error) {
	plan, err := Reveal(store, q, opts)
	if err != nil {
		return nil, err
	}
	items, err := volcano.Drain(plan)
	if err != nil {
		return nil, err
	}
	out := make([]*assembly.Instance, len(items))
	for i, it := range items {
		out[i] = it.(*assembly.Instance)
	}
	return out, nil
}
