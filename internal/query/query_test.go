package query

import (
	"sort"
	"strings"
	"testing"

	"revelation/internal/assembly"
	"revelation/internal/expr"
	"revelation/internal/gen"
	"revelation/internal/object"
	"revelation/internal/volcano"
)

func buildDB(t *testing.T, cfg gen.Config) *gen.Database {
	t.Helper()
	db, err := gen.Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func oidSet(insts []*assembly.Instance) []uint64 {
	var out []uint64
	for _, in := range insts {
		out = append(out, uint64(in.OID()))
	}
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	return out
}

func TestNaiveAndRevealedAgree(t *testing.T) {
	db := buildDB(t, gen.Config{NumComplexObjects: 300, Clustering: gen.Unclustered, Seed: 71})
	q := &Query{
		Template: db.Template,
		Roots:    db.Roots,
		NodePreds: map[string]expr.Predicate{
			"G": expr.IntCmp{Field: 1, Op: expr.LT, Value: 300, Sel: 0.3},
		},
		// Residual: root rand below leaf D's rand — not algebraically
		// expressible per component.
		Where: func(in *assembly.Instance) bool {
			d := in.Children[0].Children[0]
			return in.Object.Ints[1] < d.Object.Ints[1]
		},
	}
	naive, err := NaiveExec(db.Store, q)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Pool.EvictAll(); err != nil {
		t.Fatal(err)
	}
	revealed, err := RevealExec(db.Store, q, assembly.Options{Window: 25, Scheduler: assembly.Elevator})
	if err != nil {
		t.Fatal(err)
	}
	a, b := oidSet(naive), oidSet(revealed)
	if len(a) != len(b) {
		t.Fatalf("naive %d results, revealed %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("result sets differ at %d: %d vs %d", i, a[i], b[i])
		}
	}
	if len(a) == 0 || len(a) == len(db.Roots) {
		t.Fatalf("degenerate selection: %d of %d", len(a), len(db.Roots))
	}
}

func TestRevealedPlanSavesIO(t *testing.T) {
	db := buildDB(t, gen.Config{NumComplexObjects: 500, Clustering: gen.Unclustered, Seed: 72, BufferPages: 64})
	q := &Query{
		Template: db.Template,
		Roots:    db.Roots,
		NodePreds: map[string]expr.Predicate{
			"G": expr.IntCmp{Field: 1, Op: expr.LT, Value: 100, Sel: 0.1},
		},
	}
	if err := db.Pool.EvictAll(); err != nil {
		t.Fatal(err)
	}
	db.Device.ResetStats()
	db.Device.ResetHead()
	if _, err := NaiveExec(db.Store, q); err != nil {
		t.Fatal(err)
	}
	naiveStats := db.Device.Stats()

	if err := db.Pool.EvictAll(); err != nil {
		t.Fatal(err)
	}
	db.Device.ResetStats()
	db.Device.ResetHead()
	if _, err := RevealExec(db.Store, q, assembly.Options{Window: 50, Scheduler: assembly.Elevator}); err != nil {
		t.Fatal(err)
	}
	revStats := db.Device.Stats()

	if revStats.Reads >= naiveStats.Reads {
		t.Errorf("revealed plan reads %d, naive %d", revStats.Reads, naiveStats.Reads)
	}
	if revStats.AvgSeekPerRead() >= naiveStats.AvgSeekPerRead() {
		t.Errorf("revealed avg seek %.1f, naive %.1f",
			revStats.AvgSeekPerRead(), naiveStats.AvgSeekPerRead())
	}
}

func TestRevealMergesWithExistingPredicate(t *testing.T) {
	db := buildDB(t, gen.Config{NumComplexObjects: 100, Seed: 73})
	tmpl := db.Template.Clone()
	tmpl.FindByName("G").Pred = expr.IntCmp{Field: 1, Op: expr.GE, Value: 100, Sel: 0.9}
	q := &Query{
		Template: tmpl,
		Roots:    db.Roots,
		NodePreds: map[string]expr.Predicate{
			"G": expr.IntCmp{Field: 1, Op: expr.LT, Value: 500, Sel: 0.5},
		},
	}
	out, err := RevealExec(db.Store, q, assembly.Options{Window: 10, Scheduler: assembly.Elevator})
	if err != nil {
		t.Fatal(err)
	}
	for _, inst := range out {
		v := inst.Children[1].Children[1].Object.Ints[1]
		if v < 100 || v >= 500 {
			t.Fatalf("conjunction violated: %d", v)
		}
	}
}

func TestQueryValidation(t *testing.T) {
	db := buildDB(t, gen.Config{NumComplexObjects: 10, Seed: 74})
	bad := &Query{Template: db.Template, Roots: db.Roots,
		NodePreds: map[string]expr.Predicate{"nope": expr.True{}}}
	if _, err := NaiveExec(db.Store, bad); err == nil {
		t.Error("unknown component accepted by NaiveExec")
	}
	if _, err := Reveal(db.Store, bad, assembly.Options{}); err == nil {
		t.Error("unknown component accepted by Reveal")
	}
	if _, err := NaiveExec(db.Store, &Query{}); err == nil {
		t.Error("nil template accepted")
	}
}

func TestRevealedPlanExplains(t *testing.T) {
	db := buildDB(t, gen.Config{NumComplexObjects: 10, Seed: 75})
	q := &Query{
		Template:  db.Template,
		Roots:     db.Roots,
		NodePreds: map[string]expr.Predicate{"G": expr.True{}},
		Where:     func(*assembly.Instance) bool { return true },
	}
	plan, err := Reveal(db.Store, q, assembly.Options{Window: 50, Scheduler: assembly.Elevator})
	if err != nil {
		t.Fatal(err)
	}
	out := volcano.Explain(plan)
	for _, want := range []string{"filter", "assembly(predicate-first/elevator, window 50", "slice(10 items)"} {
		if !strings.Contains(out, want) {
			t.Errorf("plan missing %q:\n%s", want, out)
		}
	}
}

func TestNaiveExecDanglingRoot(t *testing.T) {
	db := buildDB(t, gen.Config{NumComplexObjects: 5, Seed: 76})
	q := &Query{Template: db.Template, Roots: []object.OID{424242}}
	if _, err := NaiveExec(db.Store, q); err == nil {
		t.Error("dangling root accepted")
	}
}
