package bench

// Concurrent query-lifecycle chaos: many queries over one shared
// database, each with its own context, tracer, and registry, cancelled
// at seeded random points. The invariants under fire:
//
//   - no goroutine leaks (exchange producers exit on cancellation),
//   - no leaked pins or reservations once every query is done,
//   - per-query three-way agreement — the operator's stats, the trace
//     replay, and the metrics-registry delta agree exactly, extending
//     TestThreeWayAgreement to concurrent, cancelled runs. (The disk
//     legs are zero here: the shared device is not traced per query.)

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"revelation/internal/assembly"
	"revelation/internal/buffer"
	"revelation/internal/gen"
	"revelation/internal/leakcheck"
	"revelation/internal/metrics"
	"revelation/internal/trace"
	"revelation/internal/volcano"
)

// chaosResult is one query's outcome under the chaos harness.
type chaosResult struct {
	name     string
	shed     bool // admission-rejected at Open
	received int  // items the harness actually consumed
	stats    assembly.Stats
	col      *trace.Collector
	reg      *metrics.Registry
	err      error // unexpected terminal error (lifecycle errors excluded)
}

// runChaosQuery executes one full query lifecycle: reserve frames at
// Open (ErrAdmission = shed), drain with an optional cancel point
// (cancelAt items received, -1 = run to completion) or deadline, and
// settle the books at Close. Odd query indices consume their roots
// through an Exchange so producer goroutines face the cancellation too.
func runChaosQuery(db *gen.Database, q, cancelAt int, deadline time.Duration, reserve int) chaosResult {
	res := chaosResult{
		name: fmt.Sprintf("chaos-%d", q),
		col:  trace.NewCollector(),
		reg:  metrics.NewRegistry(),
	}
	tr := trace.New(res.col)

	ctx := context.Background()
	var cancel context.CancelFunc
	if deadline > 0 {
		ctx, cancel = context.WithTimeout(ctx, deadline)
	} else {
		ctx, cancel = context.WithCancel(ctx)
	}
	defer cancel()

	items := make([]volcano.Item, len(db.Roots))
	for i, r := range db.Roots {
		items[i] = r
	}
	var input volcano.Iterator
	if q%2 == 1 {
		parts := volcano.PartitionSlice(items, 4)
		ex := volcano.NewExchange(4, func(part int) (volcano.Iterator, error) {
			return volcano.NewSlice(parts[part]), nil
		})
		ex.QueueLen = 2 // keep producers parked mid-stream when cancelled
		input = ex
	} else {
		input = volcano.NewSlice(items)
	}

	op := assembly.New(input, db.Store, db.Template, assembly.Options{
		Window:         4,
		Scheduler:      assembly.Elevator,
		PinWindowPages: true,
		ReserveFrames:  reserve,
		Tracer:         tr,
		Metrics:        res.reg,
	})
	volcano.Bind(ctx, op)
	tr.BeginRun(res.name, 4)

	if err := op.Open(); err != nil {
		tr.EndRun(res.name, trace.RunStats{})
		if errors.Is(err, buffer.ErrAdmission) {
			res.shed = true
			return res
		}
		res.err = fmt.Errorf("open: %w", err)
		return res
	}
	var terminal error
	for {
		if cancelAt >= 0 && res.received == cancelAt {
			cancel()
		}
		_, err := op.Next()
		if errors.Is(err, volcano.Done) {
			break
		}
		if err != nil {
			terminal = err
			break
		}
		res.received++
	}
	res.stats = op.Stats()
	if err := op.Close(); err != nil {
		res.err = fmt.Errorf("close: %w", err)
	}
	tr.EndRun(res.name, trace.RunStats{
		Assembled: res.stats.Assembled,
		Aborted:   res.stats.Aborted,
		Skipped:   res.stats.Skipped,
		Retries:   res.stats.FaultRetries,
		Stalls:    res.stats.WindowStalls,
	})
	if terminal != nil && !errors.Is(terminal, context.Canceled) &&
		!errors.Is(terminal, context.DeadlineExceeded) && res.err == nil {
		res.err = fmt.Errorf("next: %w", terminal)
	}
	return res
}

// verifyChaosQuery closes the per-query three-way triangle: replay ==
// reported (Run.Verify) and registry delta == reported. The registry
// was fresh per query, so its snapshot IS the delta.
func verifyChaosQuery(t *testing.T, res chaosResult) {
	t.Helper()
	runs := trace.SplitRuns(res.col.Events())
	if len(runs) != 1 {
		t.Errorf("%s: trace has %d runs, want 1", res.name, len(runs))
		return
	}
	run := runs[0]
	if run.Reported == nil {
		t.Errorf("%s: no end marker", res.name)
		return
	}
	if _, err := run.Verify(); err != nil {
		t.Errorf("%s: %v", res.name, err)
	}
	d := res.reg.Snapshot()
	fromRegistry := trace.RunStats{
		Assembled: int(d.Value("asm_assembly_assembled_total", "policy", "elevator")),
		Aborted:   int(d.Value("asm_assembly_aborted_total", "policy", "elevator")),
		Skipped:   int(d.Value("asm_assembly_skipped_total", "policy", "elevator")),
		Retries:   int(d.Value("asm_assembly_fault_retries_total", "policy", "elevator")),
		Stalls:    int(d.Value("asm_assembly_window_stalls_total", "policy", "elevator")),
	}
	if fromRegistry != *run.Reported {
		t.Errorf("%s: registry delta disagrees with harness:\nregistry %+v\nharness  %+v",
			res.name, fromRegistry, *run.Reported)
	}
	if occ := d.Value("asm_assembly_window_occupancy", "policy", "elevator"); occ != 0 {
		t.Errorf("%s: window occupancy gauge %d after the query ended, want 0", res.name, occ)
	}
}

// TestChaosConcurrentCancellation is the acceptance chaos test: at
// least 8 concurrent queries under the race detector, cancelled at
// seeded random points, with zero goroutine leaks, zero leaked pins or
// reservations, and exact per-query three-way agreement.
func TestChaosConcurrentCancellation(t *testing.T) {
	db, err := gen.Build(gen.Config{
		NumComplexObjects: 150,
		Clustering:        gen.Unclustered,
		Seed:              benchSeed,
		BufferPages:       512,
	})
	if err != nil {
		t.Fatal(err)
	}
	const nQueries = 8
	// 8 * 40 = 320 <= 512: every query admits; contention happens at
	// the pin level, resolved by bounded waits, not at admission.
	reserve := 4*db.NodesPerObject + 12

	rng := rand.New(rand.NewSource(91))
	cancelAts := make([]int, nQueries)
	deadlines := make([]time.Duration, nQueries)
	for q := range cancelAts {
		switch q % 4 {
		case 0: // run to completion
			cancelAts[q] = -1
		case 3: // die by deadline mid-flight
			cancelAts[q] = -1
			deadlines[q] = time.Duration(1+rng.Intn(10)) * time.Millisecond
		default: // cancel at a random emission point
			cancelAts[q] = rng.Intn(len(db.Roots))
		}
	}

	before := leakcheck.Snapshot()
	results := make([]chaosResult, nQueries)
	var wg sync.WaitGroup
	start := make(chan struct{})
	for q := 0; q < nQueries; q++ {
		wg.Add(1)
		go func(q int) {
			defer wg.Done()
			<-start
			results[q] = runChaosQuery(db, q, cancelAts[q], deadlines[q], reserve)
		}(q)
	}
	close(start)
	wg.Wait()

	completed, cancelled, shed := 0, 0, 0
	for _, res := range results {
		if res.err != nil {
			t.Errorf("%s: %v", res.name, res.err)
			continue
		}
		if res.shed {
			shed++
			continue
		}
		switch {
		case res.stats.Assembled == len(db.Roots):
			completed++
		default:
			cancelled++
		}
		verifyChaosQuery(t, res)
	}
	t.Logf("chaos: %d completed, %d cancelled mid-flight, %d shed", completed, cancelled, shed)
	if completed+cancelled+shed != nQueries {
		t.Errorf("queries unaccounted for: %d+%d+%d != %d", completed, cancelled, shed, nQueries)
	}
	if completed == 0 {
		t.Error("no query ran to completion — the chaos mix is degenerate")
	}
	if cancelled == 0 {
		t.Error("no query was cancelled mid-flight — the chaos mix is degenerate")
	}

	// The shared pool's books return to zero: no leaked pins, no leaked
	// reservations, no goroutines left behind.
	if got := db.Pool.PinnedFrames(); got != 0 {
		t.Errorf("%d frames still pinned after all queries ended", got)
	}
	if got := db.Pool.ReservedFrames(); got != 0 {
		t.Errorf("%d frames still reserved after all queries ended", got)
	}
	leakcheck.Check(t, before)
}

// TestFigConcurrencySmoke exercises the concurrent-throughput figure at
// tiny scale: every level must account for all its queries and leave
// the pool's books at zero (RunConcurrent errors otherwise).
func TestFigConcurrencySmoke(t *testing.T) {
	r := NewRunner()
	fig, err := r.FigConcurrency(0.1, ConcurrencyOptions{MaxConcurrent: 4, Queries: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != 1 {
		t.Fatalf("figure has %d series, want 1", len(fig.Series))
	}
	s := fig.Series[0]
	if len(s.X) != 3 || s.X[0] != 1 || s.X[2] != 4 { // levels 1, 2, 4
		t.Fatalf("levels %v, want [1 2 4]", s.X)
	}
	for i, y := range s.Y {
		if y <= 0 {
			t.Errorf("level %v: throughput %v, want > 0", s.X[i], y)
		}
	}
}

// TestChaosOverloadSheds runs more reservation demand than the pool can
// admit: the excess queries shed cleanly at Open with ErrAdmission and
// the books still return to zero. (The serve layer turns this exact
// signal into HTTP 503; see internal/serve.)
func TestChaosOverloadSheds(t *testing.T) {
	db, err := gen.Build(gen.Config{
		NumComplexObjects: 100,
		Clustering:        gen.Unclustered,
		Seed:              benchSeed,
		BufferPages:       96,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Each query demands 40 of 96 frames: at most 2 hold reservations
	// at once; with all 8 launched together the rest mostly shed.
	const nQueries = 8
	reserve := 40

	before := leakcheck.Snapshot()
	results := make([]chaosResult, nQueries)
	var wg sync.WaitGroup
	start := make(chan struct{})
	for q := 0; q < nQueries; q++ {
		wg.Add(1)
		go func(q int) {
			defer wg.Done()
			<-start
			results[q] = runChaosQuery(db, q, -1, 0, reserve)
		}(q)
	}
	close(start)
	wg.Wait()

	completed, shed := 0, 0
	for _, res := range results {
		if res.err != nil {
			t.Errorf("%s: %v", res.name, res.err)
			continue
		}
		if res.shed {
			shed++
			continue
		}
		completed++
		if res.stats.Assembled != len(db.Roots) {
			t.Errorf("%s: assembled %d of %d", res.name, res.stats.Assembled, len(db.Roots))
		}
		verifyChaosQuery(t, res)
	}
	t.Logf("overload: %d completed, %d shed", completed, shed)
	if completed+shed != nQueries {
		t.Errorf("queries unaccounted for: %d completed + %d shed != %d", completed, shed, nQueries)
	}
	if completed == 0 {
		t.Error("every query shed — admission must always admit someone")
	}
	if got := db.Pool.PinnedFrames(); got != 0 {
		t.Errorf("%d frames still pinned", got)
	}
	if got := db.Pool.ReservedFrames(); got != 0 {
		t.Errorf("%d frames still reserved", got)
	}
	leakcheck.Check(t, before)
}
