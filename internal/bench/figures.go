package bench

import (
	"encoding/json"
	"fmt"
	"strings"

	"revelation/internal/assembly"
	"revelation/internal/disk"
	"revelation/internal/gen"
	"revelation/internal/trace"
	"revelation/internal/volcano"
)

// Series is one labelled line of a figure. The JSON tags define the
// asmbench -json schema; field order is the struct order and is part of
// the golden-tested contract — append new fields at the end.
type Series struct {
	Label string    `json:"label"`
	X     []float64 `json:"x"`
	Y     []float64 `json:"y"`
	// Extra carries a secondary metric per point (e.g. total reads)
	// when a figure's discussion references one; may be nil.
	Extra []float64 `json:"extra,omitempty"`
}

// Figure is a reproduced paper figure: a set of series over a shared
// x-axis.
type Figure struct {
	ID     string   `json:"id"`
	Title  string   `json:"title"`
	XLabel string   `json:"x_label"`
	YLabel string   `json:"y_label"`
	Series []Series `json:"series"`
	Notes  []string `json:"notes,omitempty"`
}

// Table renders the figure as an aligned text table (x down the rows,
// one column per series).
func (f Figure) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "=== %s: %s ===\n", f.ID, f.Title)
	fmt.Fprintf(&b, "%-14s", f.XLabel)
	for _, s := range f.Series {
		fmt.Fprintf(&b, "%22s", s.Label)
	}
	b.WriteString("\n")
	if len(f.Series) > 0 {
		for i := range f.Series[0].X {
			fmt.Fprintf(&b, "%-14.0f", f.Series[0].X[i])
			for _, s := range f.Series {
				if i < len(s.Y) {
					fmt.Fprintf(&b, "%22.1f", s.Y[i])
				} else {
					fmt.Fprintf(&b, "%22s", "-")
				}
			}
			b.WriteString("\n")
		}
	}
	for _, n := range f.Notes {
		fmt.Fprintf(&b, "  note: %s\n", n)
	}
	fmt.Fprintf(&b, "  (y: %s)\n", f.YLabel)
	return b.String()
}

// FiguresJSON renders figures as deterministic, indented JSON: field
// order follows the struct declarations and a seeded run produces the
// same bytes every time, which is what the golden-file test pins down.
func FiguresJSON(figs []Figure) ([]byte, error) {
	out, err := json.MarshalIndent(figs, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(out, '\n'), nil
}

// Scale shrinks database sizes for quick runs; 1.0 is paper scale.
// Sizes never drop below 50 complex objects.
func scaled(size int, scale float64) int {
	n := int(float64(size) * scale)
	if n < 50 {
		n = 50
	}
	return n
}

var paperSizes = []int{1000, 2000, 3000, 4000}

const benchSeed = 91 // fixed seed: the experiments are deterministic

// clusteringName maps figure suffixes.
func clusteringFor(sub byte) (gen.Clustering, string) {
	switch sub {
	case 'a':
		return gen.InterObject, "Inter-Object Clustering"
	case 'b':
		return gen.IntraObject, "Intra-Object Clustering"
	default:
		return gen.Unclustered, "Unclustered"
	}
}

// FigScheduling reproduces Figures 11(A–C) and 13(A–C): scheduling
// algorithm versus database size at a fixed window size (1 for Fig.
// 11, 50 for Fig. 13), under the clustering policy selected by sub
// ('a' = inter-object, 'b' = intra-object, 'c' = unclustered).
func (r *Runner) FigScheduling(window int, sub byte, scale float64) (Figure, error) {
	clustering, cname := clusteringFor(sub)
	figNum := "11"
	if window > 1 {
		figNum = "13"
	}
	fig := Figure{
		ID:     fmt.Sprintf("fig%s%c", figNum, sub),
		Title:  fmt.Sprintf("Window Size = %d, %s", window, cname),
		XLabel: "complex objs",
		YLabel: "average seek distance per read (pages)",
	}
	for _, sched := range []assembly.SchedulerKind{assembly.BreadthFirst, assembly.DepthFirst, assembly.Elevator} {
		s := Series{Label: sched.String()}
		for _, size := range paperSizes {
			res, err := r.Run(Experiment{
				Name:       fig.ID,
				DBSize:     scaled(size, scale),
				Clustering: clustering,
				Scheduler:  sched,
				Window:     window,
				Seed:       benchSeed,
			})
			if err != nil {
				return Figure{}, err
			}
			s.X = append(s.X, float64(scaled(size, scale)))
			s.Y = append(s.Y, res.AvgSeek)
			s.Extra = append(s.Extra, float64(res.Reads))
		}
		fig.Series = append(fig.Series, s)
	}
	return fig, nil
}

// Fig14 reproduces Figure 14: window size versus average seek distance
// with elevator scheduling at the largest database size, one series
// per clustering policy.
func (r *Runner) Fig14(scale float64) (Figure, error) {
	fig := Figure{
		ID:     "fig14",
		Title:  "Database Size = 4000, Elevator Scheduling",
		XLabel: "window size",
		YLabel: "average seek distance per read (pages)",
	}
	windows := []int{1, 50, 100, 150, 200}
	size := scaled(4000, scale)
	for _, cl := range []gen.Clustering{gen.InterObject, gen.IntraObject, gen.Unclustered} {
		s := Series{Label: cl.String()}
		for _, w := range windows {
			res, err := r.Run(Experiment{
				Name:       "fig14",
				DBSize:     size,
				Clustering: cl,
				Scheduler:  assembly.Elevator,
				Window:     w,
				Seed:       benchSeed,
			})
			if err != nil {
				return Figure{}, err
			}
			s.X = append(s.X, float64(w))
			s.Y = append(s.Y, res.AvgSeek)
		}
		fig.Series = append(fig.Series, s)
	}
	return fig, nil
}

// Fig15 reproduces Figure 15: databases containing shared sub-objects
// (degree 0.25, inter-object clustering): depth-first object-at-a-time
// versus elevator with windows of 1 and 50 using the sharing
// statistics. The Extra channel carries total reads, since the paper
// notes sharing statistics also "reduce the total number of reads".
func (r *Runner) Fig15(scale float64) (Figure, error) {
	fig := Figure{
		ID:     "fig15",
		Title:  "Degree of Sharing = 25%",
		XLabel: "complex objs",
		YLabel: "average seek distance per read (pages)",
		Notes:  []string{"elevator series use sharing statistics; depth-first is object-at-a-time"},
	}
	// A realistic (restricted) buffer: with a pool big enough to hold
	// the whole database, shared pages never leave memory and the
	// sharing statistics would have nothing to save — the paper's
	// claim is precisely about preventing shared objects from being
	// flushed.
	bufPages := scaled(256, scale)
	fig.Notes = append(fig.Notes, fmt.Sprintf("buffer restricted to %d pages", bufPages))
	type cfg struct {
		label  string
		sched  assembly.SchedulerKind
		window int
		stats  bool
	}
	for _, c := range []cfg{
		{"depth-first", assembly.DepthFirst, 1, false},
		{"elevator w=1", assembly.Elevator, 1, true},
		{"elevator w=50", assembly.Elevator, 50, true},
	} {
		s := Series{Label: c.label}
		for _, size := range paperSizes {
			res, err := r.Run(Experiment{
				Name:            "fig15",
				DBSize:          scaled(size, scale),
				Clustering:      gen.InterObject,
				Scheduler:       c.sched,
				Window:          c.window,
				Sharing:         0.25,
				UseSharingStats: c.stats,
				BufferPages:     bufPages,
				Seed:            benchSeed,
			})
			if err != nil {
				return Figure{}, err
			}
			s.X = append(s.X, float64(scaled(size, scale)))
			s.Y = append(s.Y, res.AvgSeek)
			s.Extra = append(s.Extra, float64(res.Reads))
		}
		fig.Series = append(fig.Series, s)
	}
	return fig, nil
}

// Fig16 reproduces Figure 16: predicates and selectivities. A
// predicate with the given selectivity sits on a leaf component;
// selective assembly aborts failing complex objects as early as
// possible and fetches predicate-relevant components first.
func (r *Runner) Fig16(scale float64) (Figure, error) {
	fig := Figure{
		ID:     "fig16",
		Title:  "Predicates and Selectivities (DB = 4000, unclustered)",
		XLabel: "selectivity %",
		YLabel: "average seek distance per read (pages)",
	}
	size := scaled(4000, scale)
	sels := []float64{0.05, 0.10, 0.20, 0.30, 0.40, 0.50}
	// Restricted buffer, as for Fig. 15: a whole-database pool would
	// absorb the saved fetches as buffer hits and hide the effect.
	bufPages := scaled(320, scale)
	fig.Notes = append(fig.Notes, fmt.Sprintf("buffer restricted to %d pages", bufPages))
	type cfg struct {
		label     string
		sched     assembly.SchedulerKind
		window    int
		predFirst bool
	}
	for _, c := range []cfg{
		{"object-at-a-time", assembly.DepthFirst, 1, false},
		{"elevator w=1", assembly.Elevator, 1, true},
		{"elevator w=50", assembly.Elevator, 50, true},
	} {
		s := Series{Label: c.label}
		for _, sel := range sels {
			res, err := r.Run(Experiment{
				Name:           "fig16",
				DBSize:         size,
				Clustering:     gen.Unclustered,
				Scheduler:      c.sched,
				Window:         c.window,
				Selectivity:    sel,
				PredicateFirst: c.predFirst,
				BufferPages:    bufPages,
				Seed:           benchSeed,
			})
			if err != nil {
				return Figure{}, err
			}
			s.X = append(s.X, sel*100)
			s.Y = append(s.Y, res.AvgSeek)
			s.Extra = append(s.Extra, float64(res.Reads))
		}
		fig.Series = append(fig.Series, s)
	}
	return fig, nil
}

// WindowFootprint reproduces the Section 6.3.3 buffer-requirement
// calculation: the peak number of distinct pages backing the window,
// against the paper's bound 6·(W−1) + 7.
func (r *Runner) WindowFootprint(scale float64) (Figure, error) {
	fig := Figure{
		ID:     "footprint",
		Title:  "Window buffer footprint (Section 6.3.3)",
		XLabel: "window size",
		YLabel: "pages",
	}
	size := scaled(2000, scale)
	windows := []int{1, 10, 50, 100}
	measured := Series{Label: "measured peak"}
	bound := Series{Label: "paper bound 6(W-1)+7"}
	for _, w := range windows {
		res, err := r.Run(Experiment{
			Name:       "footprint",
			DBSize:     size,
			Clustering: gen.Unclustered,
			Scheduler:  assembly.Elevator,
			Window:     w,
			Seed:       benchSeed,
		})
		if err != nil {
			return Figure{}, err
		}
		measured.X = append(measured.X, float64(w))
		measured.Y = append(measured.Y, float64(res.Stats.PeakWindowPgs))
		bound.X = append(bound.X, float64(w))
		bound.Y = append(bound.Y, float64(6*(w-1)+7))
	}
	fig.Series = []Series{measured, bound}
	return fig, nil
}

// BufferWindow is the Section 7 ablation the paper leaves as future
// work: restricted buffer sizes versus window sizes (unclustered,
// fixed database). Series are buffer sizes; x is window size; y is
// average seek distance (re-reads included).
func (r *Runner) BufferWindow(scale float64) (Figure, error) {
	fig := Figure{
		ID:     "buffer-window",
		Title:  "Restricted buffer size vs window size (Section 7 ablation)",
		XLabel: "window size",
		YLabel: "total seek distance (thousands of pages; re-reads included)",
		Notes: []string{
			"a window too large for its buffer evicts and re-reads pages; " +
				"average seek per read would hide that, so this ablation reports totals",
		},
	}
	size := scaled(2000, scale)
	for _, bufPages := range []int{64, 128, 256, 512} {
		s := Series{Label: fmt.Sprintf("buffer=%d", bufPages)}
		for _, w := range []int{1, 25, 50, 100} {
			res, err := r.Run(Experiment{
				Name:        "buffer-window",
				DBSize:      size,
				Clustering:  gen.Unclustered,
				Scheduler:   assembly.Elevator,
				Window:      w,
				BufferPages: bufPages,
				PinWindow:   true,
				Seed:        benchSeed,
			})
			if err != nil {
				return Figure{}, err
			}
			s.X = append(s.X, float64(w))
			s.Y = append(s.Y, float64(res.SeekTotal)/1000)
			s.Extra = append(s.Extra, float64(res.Reads))
		}
		fig.Series = append(fig.Series, s)
	}
	return fig, nil
}

// MultiDevice is the Section 7 multi-device exploration: the same
// unclustered database striped across 1, 2, 4, and 8 devices, assembled
// with the global elevator and with the per-device multi-elevator.
// y is the aggregate seek across all arms per read; the point of the
// table is that striping divides each arm's travel (arms only cover
// their own stripes) and the per-device scheduler keeps totals at the
// global elevator's level while giving every arm its own queue.
func (r *Runner) MultiDevice(scale float64) (Figure, error) {
	fig := Figure{
		ID:     "multi-device",
		Title:  "Striped devices (Section 7): global vs per-device elevator",
		XLabel: "devices",
		YLabel: "aggregate average seek distance per read (pages)",
	}
	size := scaled(2000, scale)
	type variant struct {
		label string
		multi bool
	}
	for _, v := range []variant{{"global elevator", false}, {"multi-elevator", true}} {
		s := Series{Label: v.label}
		for _, n := range []int{1, 2, 4, 8} {
			var devs []disk.Device
			for i := 0; i < n; i++ {
				devs = append(devs, disk.New(0))
			}
			striped, err := disk.NewStriped(devs, 8)
			if err != nil {
				return Figure{}, err
			}
			db, err := gen.Build(gen.Config{
				NumComplexObjects: size,
				Clustering:        gen.Unclustered,
				Seed:              benchSeed,
				Device:            striped,
			})
			if err != nil {
				return Figure{}, err
			}
			items := make([]volcano.Item, len(db.Roots))
			for i, root := range db.Roots {
				items[i] = root
			}
			opts := assembly.Options{Window: 50, Scheduler: assembly.Elevator, Tracer: r.Tracer}
			if v.multi {
				opts.CustomScheduler = assembly.NewMultiElevator(n, striped.DeviceOf)
			}
			if r.Tracer != nil {
				disk.AttachTracer(striped, r.Tracer)
				db.Pool.SetTracer(r.Tracer)
				r.Tracer.BeginRun(fmt.Sprintf("multi-device/%s/n%d", v.label, n), 50)
			}
			op := assembly.New(volcano.NewSlice(items), db.Store, db.Template, opts)
			if _, err := volcano.Count(op); err != nil {
				return Figure{}, err
			}
			st := striped.Stats()
			if r.Tracer != nil {
				r.Tracer.EndRun(fmt.Sprintf("multi-device/%s/n%d", v.label, n), trace.RunStats{
					Reads:     st.Reads,
					SeekReads: st.SeekReads,
					SeekTotal: st.SeekTotal,
					Assembled: op.Stats().Assembled,
				})
				disk.AttachTracer(striped, nil)
				db.Pool.SetTracer(nil)
			}
			s.X = append(s.X, float64(n))
			s.Y = append(s.Y, st.AvgSeekPerRead())
		}
		fig.Series = append(fig.Series, s)
	}
	return fig, nil
}

// PageBatch is the Section 4 single-buffer-request ablation: buffer
// requests issued by the assembly operator with and without same-page
// batching, per clustering policy. The paper's footnote 5 is the
// motivation: "even buffer hits can be expensive, since a table must
// be searched while protected against concurrent update".
func (r *Runner) PageBatch(scale float64) (Figure, error) {
	fig := Figure{
		ID:     "page-batch",
		Title:  "Same-page batching (Section 4): buffer requests per 1000 objects",
		XLabel: "clustering",
		YLabel: "buffer requests per 1000 objects fetched",
		Notes:  []string{"x: 0 = unclustered, 1 = inter-object, 2 = intra-object"},
	}
	size := scaled(2000, scale)
	for _, batched := range []bool{false, true} {
		label := "per-reference requests"
		if batched {
			label = "page-batched requests"
		}
		s := Series{Label: label}
		for i, cl := range []gen.Clustering{gen.Unclustered, gen.InterObject, gen.IntraObject} {
			res, err := r.Run(Experiment{
				Name:       "page-batch",
				DBSize:     size,
				Clustering: cl,
				Scheduler:  assembly.Elevator,
				Window:     50,
				PageBatch:  batched,
				Seed:       benchSeed,
			})
			if err != nil {
				return Figure{}, err
			}
			s.X = append(s.X, float64(i))
			s.Y = append(s.Y, 1000*float64(res.Stats.PageRequests)/float64(res.Stats.Fetched))
		}
		fig.Series = append(fig.Series, s)
	}
	return fig, nil
}

// FaultOptions parameterises the fault-tolerance sweep.
type FaultOptions struct {
	// Seed drives the deterministic injector.
	Seed int64
	// Transient is the sweep's maximum transient-fault rate (fraction
	// of page reads); points run at 0, ¼, ½, and 1 times it.
	Transient float64
	// Permanent is the maximum permanent-fault rate, swept in the same
	// proportions.
	Permanent float64
}

// DefaultFaultOptions is the sweep cmd/asmbench runs when no fault
// flags are given: up to 10% transient and 0.5% permanent faults.
var DefaultFaultOptions = FaultOptions{Seed: benchSeed, Transient: 0.10, Permanent: 0.005}

// FigFaults is the robustness extension (no paper counterpart): the
// same database assembled under increasing fault rates, once per fault
// policy. y is the fraction of complex objects assembled; Extra
// carries the operator's transient-fault retries (retry series) and
// quarantined objects (skip series). The point of the table: retrying
// holds the loss to the permanently poisoned objects, while
// skip-on-first-fault loses every object a transient blip touches.
func (r *Runner) FigFaults(scale float64, opts FaultOptions) (Figure, error) {
	if opts.Transient < 0 {
		opts.Transient = 0
	}
	if opts.Permanent < 0 {
		opts.Permanent = 0
	}
	if opts.Transient == 0 && opts.Permanent == 0 {
		opts = FaultOptions{Seed: opts.Seed, Transient: DefaultFaultOptions.Transient, Permanent: DefaultFaultOptions.Permanent}
	}
	fig := Figure{
		ID:     "faults",
		Title:  "Fault injection vs assembly completion (robustness extension)",
		XLabel: "transient %",
		YLabel: "complex objects assembled (%)",
		Notes: []string{
			fmt.Sprintf("permanent-fault rate swept proportionally up to %.2f%%; injector seed %d", 100*opts.Permanent, opts.Seed),
			"extra channel: operator fault retries (retry series), quarantined objects (skip series)",
		},
	}
	size := scaled(1000, scale)
	fd := disk.NewFaulty(disk.New(0), disk.FaultConfig{})
	db, err := gen.Build(gen.Config{
		NumComplexObjects: size,
		Clustering:        gen.Unclustered,
		Seed:              benchSeed,
		Device:            fd,
	})
	if err != nil {
		return Figure{}, err
	}
	// The sweep's counters are never reset; each point reports the
	// delta between snapshots (the shared measurement core), so a
	// concurrent scraper sees the registered families stay monotone
	// across the whole sweep.
	if r.Metrics != nil {
		fd.RegisterMetrics(r.Metrics, "faults")
		db.Pool.RegisterMetrics(r.Metrics, "faults")
	}
	items := make([]volcano.Item, len(db.Roots))
	for i, root := range db.Roots {
		items[i] = root
	}
	fractions := []float64{0, 0.25, 0.5, 1}
	type policy struct {
		label string
		fp    assembly.FaultPolicy
	}
	for _, p := range []policy{{"retry", assembly.RetryFaults}, {"skip-object", assembly.SkipObject}} {
		s := Series{Label: p.label}
		for _, f := range fractions {
			// Per-point cold start: injector re-armed, then the shared
			// measurement bracket (evict, snapshot, park head) so the
			// previous point's dirty write-backs are excluded from this
			// point's delta. Re-arming first is safe: write-backs are
			// never faulted.
			fd.SetConfig(disk.FaultConfig{
				Seed:              opts.Seed,
				TransientRate:     f * opts.Transient,
				TransientFailures: 2,
				PermanentRate:     f * opts.Permanent,
			})
			runName := fmt.Sprintf("faults/%s/t%.3f", p.label, f*opts.Transient)
			m, err := StartMeasurement(runName, 50, fd, db.Pool, r.Tracer)
			if err != nil {
				return Figure{}, err
			}
			op := assembly.New(volcano.NewSlice(items), db.Store, db.Template, assembly.Options{
				Window:      50,
				Scheduler:   assembly.Elevator,
				FaultPolicy: p.fp,
				Tracer:      r.Tracer,
				Metrics:     r.Metrics,
			})
			if _, err := volcano.Count(op); err != nil {
				m.Abort()
				return Figure{}, err
			}
			st := op.Stats()
			m.End(st)
			s.X = append(s.X, 100*f*opts.Transient)
			s.Y = append(s.Y, 100*float64(st.Assembled)/float64(len(db.Roots)))
			if p.fp == assembly.RetryFaults {
				s.Extra = append(s.Extra, float64(st.FaultRetries))
			} else {
				s.Extra = append(s.Extra, float64(st.Skipped))
			}
		}
		fig.Series = append(fig.Series, s)
	}
	return fig, nil
}

// AllFigures runs every reproduced figure at the given scale.
func (r *Runner) AllFigures(scale float64) ([]Figure, error) {
	var out []Figure
	for _, w := range []int{1, 50} {
		for _, sub := range []byte{'a', 'b', 'c'} {
			f, err := r.FigScheduling(w, sub, scale)
			if err != nil {
				return nil, err
			}
			out = append(out, f)
		}
	}
	faults := func(s float64) (Figure, error) { return r.FigFaults(s, DefaultFaultOptions) }
	for _, fn := range []func(float64) (Figure, error){r.Fig14, r.Fig15, r.Fig16, r.WindowFootprint, r.BufferWindow, r.MultiDevice, r.PageBatch, faults} {
		f, err := fn(scale)
		if err != nil {
			return nil, err
		}
		out = append(out, f)
	}
	return out, nil
}
