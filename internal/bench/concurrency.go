package bench

// Concurrent-throughput experiment: N queries at a time over one shared
// database, each holding a frame reservation and running under an
// optional per-query deadline. This figure measures the lifecycle
// machinery itself — admission, bounded pin waits, deadline aborts —
// so unlike the paper reproductions its y-axis is wall-clock throughput
// and it is deliberately NOT part of AllFigures (the golden-file test
// pins deterministic output; timing is not).

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"revelation/internal/assembly"
	"revelation/internal/buffer"
	"revelation/internal/gen"
	"revelation/internal/volcano"
)

// ConcurrencyOptions parameterize FigConcurrency.
type ConcurrencyOptions struct {
	// MaxConcurrent is the largest concurrency level swept; the sweep
	// doubles up from 1 (1, 2, 4, ... MaxConcurrent). Values < 1 mean 8.
	MaxConcurrent int
	// Deadline bounds each individual query; zero means unbounded.
	Deadline time.Duration
	// Queries is the total number of queries run at every level, spread
	// over the workers; values < 1 mean 2*MaxConcurrent.
	Queries int
	// Window is the per-query assembly window (default 4).
	Window int
	// BufferPages sizes the shared pool (default 512). Smaller pools
	// shed more queries at admission.
	BufferPages int
}

// ConcurrentLevel is the measurement at one concurrency level.
type ConcurrentLevel struct {
	Level     int
	Completed int           // queries that assembled every root
	Shed      int           // queries rejected at admission
	TimedOut  int           // queries aborted by their deadline
	Assembled int           // complex objects emitted across all queries
	Elapsed   time.Duration // wall clock for the whole level
}

// RunConcurrent runs opts.Queries queries at the given concurrency
// level over db and reports the aggregate outcome. Queries that shed at
// admission or die at their deadline are counted, not failed: under
// overload those are correct outcomes — what must hold is that the
// books balance afterwards (zero pins, zero reservations).
func (r *Runner) RunConcurrent(db *gen.Database, level int, opts ConcurrencyOptions) (ConcurrentLevel, error) {
	window := opts.Window
	if window < 1 {
		window = 4
	}
	queries := opts.Queries
	if queries < 1 {
		queries = 2 * level
	}
	reserve := window*db.NodesPerObject + 12
	if reserve > db.Pool.Size() {
		// Never demand more than the pool holds, or nothing ever runs.
		reserve = db.Pool.Size()
	}

	var completed, shed, timedOut, assembled atomic.Int64
	var firstErr atomic.Value
	work := make(chan int)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < level; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for range work {
				ctx := context.Background()
				var cancel context.CancelFunc = func() {}
				if opts.Deadline > 0 {
					ctx, cancel = context.WithTimeout(ctx, opts.Deadline)
				}
				items := make([]volcano.Item, len(db.Roots))
				for i, root := range db.Roots {
					items[i] = root
				}
				op := assembly.New(volcano.NewSlice(items), db.Store, db.Template, assembly.Options{
					Window:         window,
					Scheduler:      assembly.Elevator,
					PinWindowPages: true,
					ReserveFrames:  reserve,
					Tracer:         r.Tracer,
					Metrics:        r.Metrics,
				})
				volcano.Bind(ctx, op)
				n, err := volcano.Count(op)
				cancel()
				assembled.Add(int64(n))
				switch {
				case err == nil:
					completed.Add(1)
				case errors.Is(err, buffer.ErrAdmission), errors.Is(err, assembly.ErrShed):
					shed.Add(1)
				case errors.Is(err, context.DeadlineExceeded):
					timedOut.Add(1)
				default:
					firstErr.CompareAndSwap(nil, err)
				}
			}
		}()
	}
	for q := 0; q < queries; q++ {
		work <- q
	}
	close(work)
	wg.Wait()
	lvl := ConcurrentLevel{
		Level:     level,
		Completed: int(completed.Load()),
		Shed:      int(shed.Load()),
		TimedOut:  int(timedOut.Load()),
		Assembled: int(assembled.Load()),
		Elapsed:   time.Since(start),
	}
	if err, _ := firstErr.Load().(error); err != nil {
		return lvl, err
	}
	if got := db.Pool.PinnedFrames(); got != 0 {
		return lvl, fmt.Errorf("bench: %d frames still pinned after level %d", got, level)
	}
	if got := db.Pool.ReservedFrames(); got != 0 {
		return lvl, fmt.Errorf("bench: %d frames still reserved after level %d", got, level)
	}
	return lvl, nil
}

// FigConcurrency sweeps concurrency levels and reports throughput
// (assembled complex objects per second; Extra carries the shed+timeout
// count per level). Not part of AllFigures: wall-clock y-values are not
// deterministic and must not meet the golden-file test.
func (r *Runner) FigConcurrency(scale float64, opts ConcurrencyOptions) (Figure, error) {
	maxLevel := opts.MaxConcurrent
	if maxLevel < 1 {
		maxLevel = 8
	}
	bufferPages := opts.BufferPages
	if bufferPages <= 0 {
		bufferPages = 512
	}
	db, err := gen.Build(gen.Config{
		NumComplexObjects: scaled(1000, scale),
		Clustering:        gen.Unclustered,
		Seed:              benchSeed,
		BufferPages:       bufferPages,
	})
	if err != nil {
		return Figure{}, err
	}
	fig := Figure{
		ID:     "concurrency",
		Title:  "Concurrent query throughput under admission control",
		XLabel: "concurrent queries",
		YLabel: "complex objects assembled / second",
		Notes: []string{
			fmt.Sprintf("pool %d frames, per-query reservation, deadline %v", bufferPages, opts.Deadline),
			"wall-clock measurement: values vary run to run (excluded from golden output)",
		},
	}
	tput := Series{Label: "elevator"}
	for level := 1; level <= maxLevel; level *= 2 {
		lvl, err := r.RunConcurrent(db, level, opts)
		if err != nil {
			return fig, err
		}
		secs := lvl.Elapsed.Seconds()
		if secs <= 0 {
			secs = 1e-9
		}
		tput.X = append(tput.X, float64(level))
		tput.Y = append(tput.Y, float64(lvl.Assembled)/secs)
		tput.Extra = append(tput.Extra, float64(lvl.Shed+lvl.TimedOut))
	}
	fig.Series = []Series{tput}
	return fig, nil
}
