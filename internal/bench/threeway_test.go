package bench

import (
	"fmt"
	"testing"

	"revelation/internal/assembly"
	"revelation/internal/gen"
	"revelation/internal/metrics"
	"revelation/internal/trace"
)

// TestThreeWayAgreement is the subsystem's capstone invariant: for a
// traced, metered run, three independent accountings must agree exactly
// — the harness counters (Result / the end-of-run marker), the trace
// replay reconstruction, and the metrics registry's snapshot delta.
// The trace-vs-harness leg is Run.Verify; this test adds the registry
// leg by rebuilding the run's RunStats from registry deltas.
func TestThreeWayAgreement(t *testing.T) {
	col := trace.NewCollector()
	reg := metrics.NewRegistry()
	r := NewRunner()
	r.Tracer = trace.New(col)
	r.Metrics = reg

	e := Experiment{
		Name:       "threeway",
		DBSize:     120,
		Clustering: gen.Unclustered,
		Scheduler:  assembly.Elevator,
		Window:     20,
		Seed:       benchSeed,
	}
	// A first run builds and registers the database, so the second run's
	// registry delta covers exactly that run (the build I/O and the
	// first run's activity land before the `before` snapshot, and
	// nothing is dirty in the pool when the second run starts cold).
	if _, err := r.Run(e); err != nil {
		t.Fatal(err)
	}
	before := reg.Snapshot()
	res, err := r.Run(e)
	if err != nil {
		t.Fatal(err)
	}
	d := reg.Snapshot().Delta(before)

	// Leg 1: trace replay == harness-reported counters.
	runs := trace.SplitRuns(col.Events())
	if len(runs) != 2 {
		t.Fatalf("trace has %d runs, want 2", len(runs))
	}
	run := runs[1]
	if run.Reported == nil {
		t.Fatal("second run has no end marker")
	}
	if _, err := run.Verify(); err != nil {
		t.Fatalf("trace replay disagrees with harness: %v", err)
	}

	// Leg 2: registry delta == harness-reported counters.
	devLabel := fmt.Sprintf("db%d-%s", e.DBSize, e.Clustering)
	policy := e.Scheduler.String()
	fromRegistry := trace.RunStats{
		Reads:     d.Value("asm_disk_reads_total", "dev", devLabel),
		SeekReads: d.Value("asm_disk_read_seek_pages_total", "dev", devLabel),
		SeekTotal: d.Value("asm_disk_seek_pages_total", "dev", devLabel),
		Assembled: int(d.Value("asm_assembly_assembled_total", "policy", policy)),
		Aborted:   int(d.Value("asm_assembly_aborted_total", "policy", policy)),
		Skipped:   int(d.Value("asm_assembly_skipped_total", "policy", policy)),
		Retries:   int(d.Value("asm_assembly_fault_retries_total", "policy", policy)),
		Stalls:    int(d.Value("asm_assembly_window_stalls_total", "policy", policy)),
	}
	if fromRegistry != *run.Reported {
		t.Errorf("registry delta disagrees with harness:\nregistry %+v\nharness  %+v",
			fromRegistry, *run.Reported)
	}

	// And the harness result itself must match both (spot checks; the
	// RunStats equality above covers the rest).
	if res.Reads != fromRegistry.Reads {
		t.Errorf("result reads %d != registry reads %d", res.Reads, fromRegistry.Reads)
	}
	if res.Stats.Assembled != fromRegistry.Assembled {
		t.Errorf("result assembled %d != registry assembled %d", res.Stats.Assembled, fromRegistry.Assembled)
	}
	// Buffer accounting: pool hits+misses deltas must match the result.
	hits := d.Value("asm_buffer_hits_total", "pool", devLabel)
	misses := d.Value("asm_buffer_misses_total", "pool", devLabel)
	if hits != res.BufferHits || misses != res.BufferFaults {
		t.Errorf("registry pool hits/misses %d/%d != result %d/%d",
			hits, misses, res.BufferHits, res.BufferFaults)
	}
}

// TestThreeWayAgreementFaults extends the invariant to the faulty
// sweep: FigFaults brackets each sweep point with the shared
// measurement core (no counter resets, end markers derived from device
// deltas), so verifying every traced run against its replay closes the
// triangle; TestFigureRunScrapeConsistent adds the registry leg.
func TestThreeWayAgreementFaults(t *testing.T) {
	col := trace.NewCollector()
	r := NewRunner()
	r.Tracer = trace.New(col)
	r.Metrics = metrics.NewRegistry()

	fig, err := r.FigFaults(0.1, DefaultFaultOptions)
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) == 0 {
		t.Fatal("faults figure has no series")
	}
	runs := trace.SplitRuns(col.Events())
	verified := 0
	for _, run := range runs {
		if run.Reported == nil {
			t.Errorf("run %q has no end marker", run.Name)
			continue
		}
		if _, err := run.Verify(); err != nil {
			t.Errorf("run %q: %v", run.Name, err)
			continue
		}
		verified++
	}
	if verified < 8 { // two policies x four sweep points
		t.Errorf("verified %d runs, want at least 8", verified)
	}
}

// TestFigureRunScrapeConsistent pins the scraper-facing contract of a
// figure run: counters are never reset mid-sweep, so a concurrent
// scraper sees every registered family stay monotone, and the sweep's
// total registry delta equals the sum of the per-run reported deltas —
// no run's activity is double-counted or dropped between brackets.
func TestFigureRunScrapeConsistent(t *testing.T) {
	col := trace.NewCollector()
	reg := metrics.NewRegistry()
	r := NewRunner()
	r.Tracer = trace.New(col)
	r.Metrics = reg

	before := reg.Snapshot()
	if _, err := r.FigFaults(0.1, DefaultFaultOptions); err != nil {
		t.Fatal(err)
	}
	d := reg.Snapshot().Delta(before)

	// Monotone: every family's delta over the sweep is non-negative.
	for _, fam := range []struct{ name, k, v string }{
		{"asm_disk_reads_total", "dev", "faults"},
		{"asm_disk_read_seek_pages_total", "dev", "faults"},
		{"asm_disk_seek_pages_total", "dev", "faults"},
		{"asm_buffer_hits_total", "pool", "faults"},
		{"asm_buffer_misses_total", "pool", "faults"},
	} {
		if got := d.Value(fam.name, fam.k, fam.v); got < 0 {
			t.Errorf("%s{%s=%q} went backwards over the sweep: delta %d", fam.name, fam.k, fam.v, got)
		}
	}

	// Sum of per-run reported reads == the registry's total delta: the
	// measurement brackets partition the sweep's read activity exactly
	// (pool evictions between points write back dirty pages but never
	// read, so no I/O falls outside a bracket).
	var reported int64
	for _, run := range trace.SplitRuns(col.Events()) {
		if run.Reported == nil {
			t.Fatalf("run %q has no end marker", run.Name)
		}
		reported += run.Reported.Reads
	}
	if got := d.Value("asm_disk_reads_total", "dev", "faults"); got != reported {
		t.Errorf("registry reads delta %d != sum of per-run reported reads %d", got, reported)
	}
}
