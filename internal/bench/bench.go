// Package bench is the experiment harness for the paper's Section 6
// evaluation: it builds benchmark databases, runs the assembly operator
// under a configuration, and reports the paper's metric — average seek
// distance per read, in pages — plus the auxiliary counters the paper
// discusses (total reads, buffer behaviour, window footprint).
//
// Figure definitions live in figures.go; both bench_test.go (go test
// -bench) and cmd/asmbench regenerate the paper's tables through this
// package.
package bench

import (
	"fmt"
	"time"

	"revelation/internal/assembly"
	"revelation/internal/disk"
	"revelation/internal/expr"
	"revelation/internal/gen"
	"revelation/internal/metrics"
	"revelation/internal/object"
	"revelation/internal/trace"
	"revelation/internal/volcano"
)

// Experiment is one benchmark configuration.
type Experiment struct {
	Name       string
	DBSize     int // complex objects
	Clustering gen.Clustering
	Scheduler  assembly.SchedulerKind
	Window     int
	// Sharing enables shared leaf sub-objects at the given degree;
	// UseSharingStats turns the template statistic on in the operator.
	Sharing         float64
	UseSharingStats bool
	// Selectivity, when positive, attaches a predicate of that
	// selectivity (fraction passing, 0–1) to a leaf component.
	Selectivity    float64
	PredicateFirst bool
	// BufferPages restricts the pool; zero holds the whole database
	// (the paper's first benchmark group has "enough buffer space to
	// hold the largest database, so no page replacement occurs").
	BufferPages int
	// PinWindow keeps window pages pinned, reproducing the paper's
	// buffer economics (Section 4); used by the window/buffer ablation.
	PinWindow bool
	// PageBatch resolves all pending same-page references per buffer
	// request (Section 4's single-request observation).
	PageBatch bool
	Seed      int64
}

// Result is what one run measured.
type Result struct {
	Experiment
	// AvgSeek is the paper's metric: average seek distance per read,
	// in pages.
	AvgSeek float64
	// Reads is the number of physical page reads.
	Reads int64
	// SeekTotal is total head movement attributable to reads.
	SeekTotal int64
	// Assembly operator counters.
	Stats assembly.Stats
	// BufferHits and BufferFaults describe pool behaviour.
	BufferHits, BufferFaults int64
	Elapsed                  time.Duration
}

// String renders a one-line summary.
func (r Result) String() string {
	return fmt.Sprintf("%-28s db=%-5d %-12s %-13s W=%-4d avgseek=%8.1f reads=%-6d assembled=%d aborted=%d",
		r.Name, r.DBSize, r.Clustering, r.Scheduler, r.Window,
		r.AvgSeek, r.Reads, r.Stats.Assembled, r.Stats.Aborted)
}

// dbKey identifies a reusable generated database.
type dbKey struct {
	size        int
	clustering  gen.Clustering
	sharing     float64
	bufferPages int
	seed        int64
}

// Runner executes experiments, caching generated databases across runs
// with the same physical configuration (the logical run state — buffer
// contents, device statistics — is reset cold before every run).
type Runner struct {
	cache map[dbKey]*gen.Database
	// Tracer, when non-nil, traces every run: the device, pool, and
	// operator are instrumented for the duration of the run, bracketed
	// by bench begin/end markers that carry the run's reported counters
	// — so a trace replay can verify the run (see trace.Run.Verify).
	Tracer *trace.Tracer
	// Metrics, when non-nil, registers every database's device and pool
	// and the assembly operator into the registry. Device and pool
	// counters are never reset between runs — the harness reports
	// per-run deltas via Stats().Sub — so a concurrent scraper always
	// sees monotone counters.
	Metrics *metrics.Registry
}

// NewRunner returns an empty runner.
func NewRunner() *Runner { return &Runner{cache: map[dbKey]*gen.Database{}} }

func (r *Runner) database(e Experiment) (*gen.Database, error) {
	key := dbKey{e.DBSize, e.Clustering, e.Sharing, e.BufferPages, e.Seed}
	if db, ok := r.cache[key]; ok {
		return db, nil
	}
	db, err := gen.Build(gen.Config{
		NumComplexObjects: e.DBSize,
		Clustering:        e.Clustering,
		Sharing:           e.Sharing,
		Seed:              e.Seed,
		BufferPages:       e.BufferPages,
	})
	if err != nil {
		return nil, err
	}
	if r.Metrics != nil {
		label := fmt.Sprintf("db%d-%s", e.DBSize, e.Clustering)
		disk.RegisterMetrics(db.Device, r.Metrics, label)
		db.Pool.RegisterMetrics(r.Metrics, label)
	}
	r.cache[key] = db
	return db, nil
}

// Run executes one experiment cold and returns its measurements.
func (r *Runner) Run(e Experiment) (Result, error) {
	if e.DBSize <= 0 {
		e.DBSize = 1000
	}
	if e.Window <= 0 {
		e.Window = 1
	}
	db, err := r.database(e)
	if err != nil {
		return Result{}, err
	}
	tmpl := db.Template
	if e.Selectivity > 0 {
		tmpl = tmpl.Clone()
		// Predicate on the rightmost leaf (position G): ints[1] is
		// uniform over [0,1000).
		leaf := tmpl.Children[1].Children[1]
		leaf.Pred = expr.IntCmp{
			Field: 1,
			Op:    expr.LT,
			Value: int32(e.Selectivity * 1000),
			Sel:   e.Selectivity,
		}
	}

	items := make([]volcano.Item, len(db.Roots))
	for i, root := range db.Roots {
		items[i] = root
	}
	// Cold-start and instrument the stack for the run's duration via the
	// shared measurement core; detaching afterwards keeps cached
	// databases trace-free between runs.
	sched := e.Scheduler.String()
	if e.PredicateFirst {
		sched = "predicate-first/" + sched
	}
	runName := fmt.Sprintf("%s/%s/w%d/db%d", e.Name, sched, e.Window, e.DBSize)
	m, err := StartMeasurement(runName, e.Window, db.Device, db.Pool, r.Tracer)
	if err != nil {
		return Result{}, err
	}
	op := assembly.New(volcano.NewSlice(items), db.Store, tmpl, assembly.Options{
		Window:          e.Window,
		Scheduler:       e.Scheduler,
		UseSharingStats: e.UseSharingStats,
		PredicateFirst:  e.PredicateFirst,
		PinWindowPages:  e.PinWindow,
		PageBatch:       e.PageBatch,
		Tracer:          r.Tracer,
		Metrics:         r.Metrics,
	})
	n, err := volcano.Count(op)
	if err != nil {
		m.Abort()
		return Result{}, fmt.Errorf("bench %s: %w", e.Name, err)
	}
	if st := op.Stats(); n != st.Assembled {
		m.Abort()
		return Result{}, fmt.Errorf("bench %s: drained %d but operator assembled %d", e.Name, n, st.Assembled)
	}

	got := m.End(op.Stats())
	return Result{
		Experiment:   e,
		AvgSeek:      got.Dev.AvgSeekPerRead(),
		Reads:        got.Dev.Reads,
		SeekTotal:    got.Dev.SeekReads,
		Stats:        op.Stats(),
		BufferHits:   got.Pool.Hits,
		BufferFaults: got.Pool.Faults,
		Elapsed:      got.Elapsed,
	}, nil
}

// RunNaive assembles object-at-a-time without the assembly operator at
// all: a plain recursive traversal per complex object, the baseline
// the paper's introduction criticizes. It exists to confirm that
// depth-first window-1 assembly matches true naive traversal I/O.
func (r *Runner) RunNaive(e Experiment) (Result, error) {
	db, err := r.database(e)
	if err != nil {
		return Result{}, err
	}
	if err := db.Pool.EvictAll(); err != nil {
		return Result{}, err
	}
	dev0 := db.Device.Stats()
	db.Device.ResetHead()

	start := time.Now()
	var fetch func(oid object.OID) error
	fetch = func(oid object.OID) error {
		if oid.IsNil() {
			return nil
		}
		o, err := db.Store.Get(oid)
		if err != nil {
			return err
		}
		for _, c := range []object.OID{o.Refs[0], o.Refs[1]} {
			if err := fetch(c); err != nil {
				return err
			}
		}
		return nil
	}
	for _, root := range db.Roots {
		if err := fetch(root); err != nil {
			return Result{}, err
		}
	}
	dev := db.Device.Stats().Sub(dev0)
	return Result{
		Experiment: e,
		AvgSeek:    dev.AvgSeekPerRead(),
		Reads:      dev.Reads,
		SeekTotal:  dev.SeekReads,
		Elapsed:    time.Since(start),
	}, nil
}
