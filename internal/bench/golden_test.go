package bench

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files from current output")

// TestFiguresJSONGolden pins the asmbench -json output byte-for-byte:
// field order, indentation, and the numbers of a seeded small-scale
// run. The schema is a contract — downstream plotting scripts and the
// trace replay both consume it — so any change must be deliberate and
// show up in this file's diff. Refresh with: go test ./internal/bench
// -run Golden -update
func TestFiguresJSONGolden(t *testing.T) {
	r := NewRunner()
	fig13c, err := r.FigScheduling(50, 'c', 0.1)
	if err != nil {
		t.Fatalf("FigScheduling: %v", err)
	}
	faults, err := r.FigFaults(0.1, DefaultFaultOptions)
	if err != nil {
		t.Fatalf("FigFaults: %v", err)
	}
	got, err := FiguresJSON([]Figure{fig13c, faults})
	if err != nil {
		t.Fatalf("FiguresJSON: %v", err)
	}

	golden := filepath.Join("testdata", "figures.golden.json")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("figure JSON drifted from %s (re-run with -update if intended)\ngot:\n%s\nwant:\n%s",
			golden, got, want)
	}
}

// TestFiguresJSONDeterministic guards the premise of the golden test:
// two runs from fresh runners must produce identical bytes.
func TestFiguresJSONDeterministic(t *testing.T) {
	render := func() []byte {
		r := NewRunner()
		fig, err := r.FigScheduling(50, 'c', 0.1)
		if err != nil {
			t.Fatalf("FigScheduling: %v", err)
		}
		out, err := FiguresJSON([]Figure{fig})
		if err != nil {
			t.Fatalf("FiguresJSON: %v", err)
		}
		return out
	}
	if a, b := render(), render(); !bytes.Equal(a, b) {
		t.Error("identical seeded runs rendered different JSON")
	}
}
