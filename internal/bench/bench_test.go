package bench

import (
	"strings"
	"testing"

	"revelation/internal/assembly"
	"revelation/internal/gen"
)

// Shape tests: small-scale versions of the paper's figures must show
// the paper's qualitative results. Absolute numbers differ (simulated
// substrate, scaled databases); the winners and orderings must not.

func TestRunBasics(t *testing.T) {
	r := NewRunner()
	res, err := r.Run(Experiment{
		Name: "smoke", DBSize: 200, Clustering: gen.Unclustered,
		Scheduler: assembly.Elevator, Window: 10, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Assembled != 200 {
		t.Errorf("assembled %d", res.Stats.Assembled)
	}
	if res.Reads == 0 || res.AvgSeek <= 0 {
		t.Errorf("no I/O measured: %+v", res)
	}
	if res.String() == "" {
		t.Error("empty result string")
	}
}

func TestRunIsColdEachTime(t *testing.T) {
	r := NewRunner()
	e := Experiment{Name: "cold", DBSize: 150, Scheduler: assembly.Elevator, Window: 5, Seed: 2}
	a, err := r.Run(e)
	if err != nil {
		t.Fatal(err)
	}
	b, err := r.Run(e)
	if err != nil {
		t.Fatal(err)
	}
	if a.Reads != b.Reads || a.SeekTotal != b.SeekTotal {
		t.Errorf("runs not reproducible: %d/%d vs %d/%d reads/seeks",
			a.Reads, a.SeekTotal, b.Reads, b.SeekTotal)
	}
}

func TestNaiveMatchesDepthFirstWindow1(t *testing.T) {
	r := NewRunner()
	e := Experiment{Name: "naive", DBSize: 200, Clustering: gen.Unclustered,
		Scheduler: assembly.DepthFirst, Window: 1, Seed: 3}
	viaOp, err := r.Run(e)
	if err != nil {
		t.Fatal(err)
	}
	naive, err := r.RunNaive(e)
	if err != nil {
		t.Fatal(err)
	}
	if viaOp.Reads != naive.Reads {
		t.Errorf("depth-first W=1 reads %d, naive traversal %d — should match", viaOp.Reads, naive.Reads)
	}
	if viaOp.SeekTotal != naive.SeekTotal {
		t.Errorf("depth-first W=1 seeks %d, naive %d", viaOp.SeekTotal, naive.SeekTotal)
	}
}

func TestElevatorWinsAtWindow50AllClusterings(t *testing.T) {
	// The Fig. 13 headline: "Regardless of how the data is clustered,
	// average seek distance is smallest for elevator scheduling."
	r := NewRunner()
	for _, cl := range []gen.Clustering{gen.Unclustered, gen.InterObject, gen.IntraObject} {
		seeks := map[assembly.SchedulerKind]float64{}
		for _, sched := range []assembly.SchedulerKind{assembly.DepthFirst, assembly.BreadthFirst, assembly.Elevator} {
			res, err := r.Run(Experiment{
				Name: "fig13-shape", DBSize: 400, Clustering: cl,
				Scheduler: sched, Window: 50, Seed: 4,
			})
			if err != nil {
				t.Fatal(err)
			}
			seeks[sched] = res.AvgSeek
		}
		if seeks[assembly.Elevator] > seeks[assembly.DepthFirst] ||
			seeks[assembly.Elevator] > seeks[assembly.BreadthFirst] {
			t.Errorf("%v: elevator %.1f not smallest (df %.1f, bf %.1f)",
				cl, seeks[assembly.Elevator], seeks[assembly.DepthFirst], seeks[assembly.BreadthFirst])
		}
	}
}

func TestBreadthFirstWorstOnInterObjectWindow1(t *testing.T) {
	// The Fig. 11A artifact: breadth-first fetch order fights the
	// cluster layout.
	r := NewRunner()
	seeks := map[assembly.SchedulerKind]float64{}
	for _, sched := range []assembly.SchedulerKind{assembly.DepthFirst, assembly.BreadthFirst, assembly.Elevator} {
		res, err := r.Run(Experiment{
			Name: "fig11a-shape", DBSize: 400, Clustering: gen.InterObject,
			Scheduler: sched, Window: 1, Seed: 5,
		})
		if err != nil {
			t.Fatal(err)
		}
		seeks[sched] = res.AvgSeek
	}
	if seeks[assembly.BreadthFirst] <= seeks[assembly.DepthFirst] {
		t.Errorf("breadth-first %.1f should exceed depth-first %.1f on inter-object clustering",
			seeks[assembly.BreadthFirst], seeks[assembly.DepthFirst])
	}
	if seeks[assembly.Elevator] > seeks[assembly.DepthFirst] {
		t.Errorf("elevator %.1f should not exceed depth-first %.1f", seeks[assembly.Elevator], seeks[assembly.DepthFirst])
	}
}

func TestInterObjectSeekIndependentOfDBSize(t *testing.T) {
	// Fig. 11A's flat lines: regions are larger than any database, so
	// average seek barely moves with database size.
	r := NewRunner()
	var seeks []float64
	for _, size := range []int{200, 400, 600} {
		res, err := r.Run(Experiment{
			Name: "fig11a-flat", DBSize: size, Clustering: gen.InterObject,
			Scheduler: assembly.DepthFirst, Window: 1, Seed: 6,
		})
		if err != nil {
			t.Fatal(err)
		}
		seeks = append(seeks, res.AvgSeek)
	}
	for i := 1; i < len(seeks); i++ {
		ratio := seeks[i] / seeks[0]
		if ratio < 0.8 || ratio > 1.25 {
			t.Errorf("inter-object seek varies with db size: %v", seeks)
		}
	}
}

func TestUnclusteredSeekGrowsWithDBSize(t *testing.T) {
	// Fig. 11C: unclustered seek grows roughly linearly with database
	// size (the file simply gets longer).
	r := NewRunner()
	small, err := r.Run(Experiment{Name: "fig11c", DBSize: 200, Clustering: gen.Unclustered,
		Scheduler: assembly.DepthFirst, Window: 1, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	large, err := r.Run(Experiment{Name: "fig11c", DBSize: 800, Clustering: gen.Unclustered,
		Scheduler: assembly.DepthFirst, Window: 1, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if large.AvgSeek < small.AvgSeek*2 {
		t.Errorf("unclustered seek did not grow with db size: %.1f -> %.1f", small.AvgSeek, large.AvgSeek)
	}
}

func TestElevatorGainsDiminishWithWindow(t *testing.T) {
	// Fig. 14: most of the win arrives before W=50.
	r := NewRunner()
	seek := func(w int) float64 {
		res, err := r.Run(Experiment{Name: "fig14-shape", DBSize: 800,
			Clustering: gen.Unclustered, Scheduler: assembly.Elevator, Window: w, Seed: 8})
		if err != nil {
			t.Fatal(err)
		}
		return res.AvgSeek
	}
	w1, w50, w200 := seek(1), seek(50), seek(200)
	if w50 >= w1 {
		t.Errorf("window 50 (%.1f) not better than window 1 (%.1f)", w50, w1)
	}
	gainEarly := w1 - w50
	gainLate := w50 - w200
	if gainLate > gainEarly/2 {
		t.Errorf("no diminishing returns: early gain %.1f, late gain %.1f", gainEarly, gainLate)
	}
}

func TestSharingStatsReduceReads(t *testing.T) {
	// Fig. 15's second claim: sharing statistics reduce the total
	// number of reads.
	r := NewRunner()
	base := Experiment{Name: "fig15-shape", DBSize: 400, Clustering: gen.InterObject,
		Scheduler: assembly.Elevator, Window: 50, Sharing: 0.25, BufferPages: 64, Seed: 9}
	without, err := r.Run(base)
	if err != nil {
		t.Fatal(err)
	}
	with := base
	with.UseSharingStats = true
	withRes, err := r.Run(with)
	if err != nil {
		t.Fatal(err)
	}
	if withRes.Reads >= without.Reads {
		t.Errorf("sharing stats did not reduce reads: %d vs %d", withRes.Reads, without.Reads)
	}
}

func TestSelectiveAssemblySavesIO(t *testing.T) {
	// Fig. 16: with a selective predicate, the assembly operator
	// (window > 1, predicate-first) needs far fewer reads than
	// object-at-a-time, which fully traverses before selecting.
	r := NewRunner()
	naive, err := r.Run(Experiment{Name: "fig16-shape", DBSize: 400, Clustering: gen.Unclustered,
		Scheduler: assembly.DepthFirst, Window: 1, Selectivity: 0.10, BufferPages: 48, Seed: 10})
	if err != nil {
		t.Fatal(err)
	}
	smart, err := r.Run(Experiment{Name: "fig16-shape", DBSize: 400, Clustering: gen.Unclustered,
		Scheduler: assembly.Elevator, Window: 50, Selectivity: 0.10, PredicateFirst: true, BufferPages: 48, Seed: 10})
	if err != nil {
		t.Fatal(err)
	}
	if smart.Reads >= naive.Reads {
		t.Errorf("selective assembly reads %d, naive %d", smart.Reads, naive.Reads)
	}
	// The deeper savings: object fetches. Naive depth-first visits the
	// predicate leaf last, so failing trees still fetch everything;
	// predicate-first fetches the deciding components first.
	if smart.Stats.Fetched >= naive.Stats.Fetched {
		t.Errorf("selective assembly fetched %d, naive %d", smart.Stats.Fetched, naive.Stats.Fetched)
	}
	if smart.Stats.Assembled != naive.Stats.Assembled {
		t.Errorf("selectivity changed the result: %d vs %d objects", smart.Stats.Assembled, naive.Stats.Assembled)
	}
}

func TestFigureTableRendering(t *testing.T) {
	r := NewRunner()
	fig, err := r.FigScheduling(1, 'c', 0.05)
	if err != nil {
		t.Fatal(err)
	}
	tbl := fig.Table()
	for _, want := range []string{"fig11c", "elevator", "depth-first", "breadth-first"} {
		if !strings.Contains(tbl, want) {
			t.Errorf("table missing %q:\n%s", want, tbl)
		}
	}
}

func TestWindowFootprintFigure(t *testing.T) {
	r := NewRunner()
	fig, err := r.WindowFootprint(0.1)
	if err != nil {
		t.Fatal(err)
	}
	measured, bound := fig.Series[0], fig.Series[1]
	for i := range measured.Y {
		// Allow the small slack for completed objects awaiting Next.
		if measured.Y[i] > bound.Y[i]+7 {
			t.Errorf("W=%.0f: footprint %.0f exceeds bound %.0f", measured.X[i], measured.Y[i], bound.Y[i])
		}
	}
}
