package bench

import (
	"time"

	"revelation/internal/assembly"
	"revelation/internal/buffer"
	"revelation/internal/disk"
	"revelation/internal/trace"
)

// Measurement brackets one instrumented run over a device and a buffer
// pool: cold-start the pool, snapshot the counters, park the head, and
// (when a tracer is given) instrument the stack and emit the bench
// begin marker. End computes the per-run deltas, emits the matching end
// marker carrying the harness-reported counters — the contract
// trace.Run.Verify checks a replay against — and detaches the tracer.
//
// This is the measurement core shared by the figure harness
// (Runner.Run, FigFaults) and the scenario suite (internal/suite):
// counters are never reset, so a concurrent metrics scraper always
// sees them stay monotone while every run still reports exact deltas.
type Measurement struct {
	Name   string
	dev    disk.Device
	pool   *buffer.Pool
	tr     *trace.Tracer
	dev0   disk.Stats
	pool0  buffer.Stats
	start  time.Time
	traced bool
}

// Measured is the delta view of one bracketed run.
type Measured struct {
	Dev     disk.Stats
	Pool    buffer.Stats
	Elapsed time.Duration
}

// StartMeasurement begins a bracketed run. The pool is fully evicted
// first (the previous run's dirty write-backs land before the
// snapshot), then the device and pool counters are snapshotted, the
// head is parked at page 0, and — when tr is non-nil — the device and
// pool are instrumented and the begin marker is emitted.
func StartMeasurement(name string, window int, dev disk.Device, pool *buffer.Pool, tr *trace.Tracer) (*Measurement, error) {
	if err := pool.EvictAll(); err != nil {
		return nil, err
	}
	m := &Measurement{
		Name:  name,
		dev:   dev,
		pool:  pool,
		tr:    tr,
		dev0:  dev.Stats(),
		pool0: pool.Stats(),
	}
	dev.ResetHead()
	if tr != nil {
		m.traced = disk.AttachTracer(dev, tr)
		pool.SetTracer(tr)
		tr.BeginRun(name, window)
	}
	m.start = time.Now()
	return m, nil
}

// Abort detaches the tracer without emitting an end marker, for runs
// that fail mid-flight: the replay then sees a run with no reported
// counters and verifies vacuously instead of against garbage.
func (m *Measurement) Abort() {
	if m.tr != nil {
		if m.traced {
			disk.AttachTracer(m.dev, nil)
		}
		m.pool.SetTracer(nil)
	}
}

// End closes the bracket: it computes the run's device and pool deltas,
// emits the end marker with the reported counters derived from those
// deltas and the operator's stats, and detaches the tracer.
func (m *Measurement) End(st assembly.Stats) Measured {
	elapsed := time.Since(m.start)
	dev := m.dev.Stats().Sub(m.dev0)
	pool := m.pool.Stats().Sub(m.pool0)
	if m.tr != nil {
		m.tr.EndRun(m.Name, trace.RunStats{
			Reads:     dev.Reads,
			SeekReads: dev.SeekReads,
			SeekTotal: dev.SeekTotal,
			Assembled: st.Assembled,
			Aborted:   st.Aborted,
			Skipped:   st.Skipped,
			Retries:   st.FaultRetries,
			Stalls:    st.WindowStalls,
		})
		if m.traced {
			disk.AttachTracer(m.dev, nil)
		}
		m.pool.SetTracer(nil)
	}
	return Measured{Dev: dev, Pool: pool, Elapsed: elapsed}
}
