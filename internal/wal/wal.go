// Package wal implements a physical page-image write-ahead log and the
// redo recovery that replays it — the durability half of the ARIES
// discipline (Mohan et al.; see PAPERS.md) specialized to full-page
// logging: every record carries the complete after-image of one page,
// so recovery is a pure, idempotent redo with no undo pass.
//
// The contract with the buffer pool (which consumes this package
// through the buffer.WAL interface):
//
//  1. Every time a page is dirtied, its full image is Appended. Append
//     assigns the image a fresh LSN, writes that LSN and a CRC-32C
//     checksum into the image itself, and buffers the record in memory.
//  2. Sync (or SyncTo) makes buffered records durable, in order, on the
//     log's own disk.Device. A Sync is the commit point: everything
//     appended before a completed Sync survives any later crash.
//  3. No data-page write may leave the pool before the log is durable
//     through that page's LSN (the WAL-before-data rule, enforced by
//     the pool's flush path calling SyncTo).
//
// After a crash, Recover scans the log from the front, discards the
// torn tail (first record whose header, sequence, or checksum fails),
// and reinstalls every logged image onto any data page that is missing,
// corrupt, or older than the image — restoring the database to exactly
// the state of the last completed Sync.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"sync"

	"revelation/internal/disk"
	"revelation/internal/metrics"
	"revelation/internal/page"
	"revelation/internal/trace"
)

// Record layout on the log device (little endian), a byte stream laid
// over pages from offset zero:
//
//	[0:4)   magic "WALR"
//	[4:12)  LSN uint64 (strictly sequential from 1)
//	[12:16) page id uint32
//	[16:20) image length uint32
//	[20:24) CRC-32C over bytes [0:20) plus the image
//	[24:)   page image
//
// Records span page boundaries freely; the page after the last written
// byte is zero-filled, so a clean log ends at a zero magic.
//
// A second record kind shares the layout with a different magic:
// ownership (cutover) records, appended by the fleet's live-resharding
// migrator. Their header reuses the page-id slot for the range's low
// page and the length slot for the payload — [4B hi page][owner name]:
//
//	[0:4)   magic "WALO"
//	[4:12)  LSN (same sequence as page records)
//	[12:16) lo page id uint32 (inclusive)
//	[16:20) payload length uint32
//	[20:24) CRC-32C over bytes [0:20) plus the payload
//	[24:)   [4B hi page id (exclusive)][owner member name]
//
// An ownership record durably marks a cutover: every page in [lo, hi)
// whose rendezvous assignment under the post-join member set is the
// named owner is, from this record on, served by that owner. Recovery
// replays these in LSN order to rebuild the ownership table; pages in
// ranges never cut stay with their pre-join owner — so at every crash
// point each page has exactly one owner.
const (
	recMagic   = 0x57414C52 // "WALR"
	ownMagic   = 0x57414C4F // "WALO"
	recHdrSize = 24

	// maxImage bounds the length field during scans, so a corrupt
	// header cannot cause a giant allocation.
	maxImage = 1 << 20
)

// ErrClosed reports use of a closed writer.
var ErrClosed = errors.New("wal: writer closed")

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Writer is the append side of the log. It buffers records in memory
// between Syncs (group commit: one Sync makes every buffered record
// durable in a single pass) and owns the log device's write offset.
// Methods are safe for concurrent use.
type Writer struct {
	mu       sync.Mutex
	dev      disk.Device
	pageSize int

	// tail is the durable end of the byte stream; buf holds appended
	// records not yet synced; cur is the in-memory image of the page
	// containing tail (its durable prefix must be rewritten
	// byte-identically when the page is filled further).
	tail int64
	buf  []byte
	cur  []byte

	nextLSN     uint64 // LSN the next Append will take
	appendedLSN uint64 // newest appended (possibly unsynced) LSN
	durableLSN  uint64 // newest synced LSN

	// err is sticky: once the log device fails, every later operation
	// fails the same way — a half-written log must not accept more.
	err    error
	closed bool

	tr      *trace.Tracer
	appends metrics.Counter
	fsyncs  metrics.Counter
}

// Open builds a writer over dev, resuming after any existing log
// content: it scans to the end of the valid prefix and appends from
// there, continuing the LSN sequence. A torn tail left by a crash is
// simply overwritten by subsequent appends. A fresh device yields an
// empty log starting at LSN 1.
func Open(dev disk.Device) (*Writer, error) {
	w := &Writer{
		dev:      dev,
		pageSize: dev.PageSize(),
		cur:      make([]byte, dev.PageSize()),
	}
	end, next, _, err := scan(dev, nil)
	if err != nil {
		return nil, err
	}
	w.tail = end
	w.nextLSN = next
	w.appendedLSN = next - 1
	w.durableLSN = next - 1
	if off := int(end % int64(w.pageSize)); off != 0 {
		pi := disk.PageID(end / int64(w.pageSize))
		if err := dev.ReadPage(pi, w.cur); err != nil {
			return nil, fmt.Errorf("wal: open: reload tail page %d: %w", pi, err)
		}
		for i := off; i < w.pageSize; i++ {
			w.cur[i] = 0
		}
	}
	return w, nil
}

// SetTracer installs an event tracer: appends and syncs emit wal
// events. Pass nil to disable.
func (w *Writer) SetTracer(t *trace.Tracer) {
	w.mu.Lock()
	w.tr = t
	w.mu.Unlock()
}

// RegisterMetrics attaches the writer's counters to r under the given
// log name.
func (w *Writer) RegisterMetrics(r *metrics.Registry, log string) {
	r.Attach("asm_wal_appends_total", "Page images appended to the write-ahead log.",
		&w.appends, "log", log)
	r.Attach("asm_wal_fsyncs_total", "Write-ahead log sync operations.",
		&w.fsyncs, "log", log)
}

// Append logs img as the after-image of page id and returns the LSN it
// was assigned. The image is mutated in place — its LSN and checksum
// fields are stamped — so the caller's frame and the logged record are
// byte-identical. The record is buffered; it is not durable until the
// next Sync.
func (w *Writer) Append(id disk.PageID, img []byte) (uint64, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return 0, ErrClosed
	}
	if w.err != nil {
		return 0, w.err
	}
	lsn := w.nextLSN
	w.nextLSN++
	w.appendedLSN = lsn

	page.Wrap(img).SetLSN(lsn)
	page.Stamp(img)

	var hdr [recHdrSize]byte
	binary.LittleEndian.PutUint32(hdr[0:], recMagic)
	binary.LittleEndian.PutUint64(hdr[4:], lsn)
	binary.LittleEndian.PutUint32(hdr[12:], uint32(id))
	binary.LittleEndian.PutUint32(hdr[16:], uint32(len(img)))
	crc := crc32.Update(0, castagnoli, hdr[:20])
	crc = crc32.Update(crc, castagnoli, img)
	binary.LittleEndian.PutUint32(hdr[20:], crc)

	w.buf = append(w.buf, hdr[:]...)
	w.buf = append(w.buf, img...)
	w.appends.Inc()
	w.tr.WAL(trace.KindAppend, int64(id), lsn, int64(len(img)))
	return lsn, nil
}

// AppendOwnership logs a cutover record: pages in [lo, hi) whose
// rendezvous owner under the new member set is owner are cut over to
// it. The record shares the log's LSN sequence with page images and is
// buffered like them — the cutover is durable only after the next
// Sync, and the migrator must not flip its in-memory routing before
// that Sync returns (WAL-before-ownership, the resharding analogue of
// WAL-before-data).
func (w *Writer) AppendOwnership(lo, hi disk.PageID, owner string) (uint64, error) {
	if hi <= lo {
		return 0, fmt.Errorf("wal: ownership range [%d, %d) is empty", lo, hi)
	}
	if owner == "" {
		return 0, errors.New("wal: ownership record needs an owner name")
	}
	if len(owner) > maxImage-4 {
		return 0, fmt.Errorf("wal: owner name %d bytes long", len(owner))
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return 0, ErrClosed
	}
	if w.err != nil {
		return 0, w.err
	}
	lsn := w.nextLSN
	w.nextLSN++
	w.appendedLSN = lsn

	payload := make([]byte, 4+len(owner))
	binary.LittleEndian.PutUint32(payload[0:], uint32(hi))
	copy(payload[4:], owner)

	var hdr [recHdrSize]byte
	binary.LittleEndian.PutUint32(hdr[0:], ownMagic)
	binary.LittleEndian.PutUint64(hdr[4:], lsn)
	binary.LittleEndian.PutUint32(hdr[12:], uint32(lo))
	binary.LittleEndian.PutUint32(hdr[16:], uint32(len(payload)))
	crc := crc32.Update(0, castagnoli, hdr[:20])
	crc = crc32.Update(crc, castagnoli, payload)
	binary.LittleEndian.PutUint32(hdr[20:], crc)

	w.buf = append(w.buf, hdr[:]...)
	w.buf = append(w.buf, payload...)
	w.appends.Inc()
	w.tr.WAL(trace.KindAppend, int64(lo), lsn, int64(len(payload)))
	return lsn, nil
}

// Sync makes every buffered record durable: the pending bytes are laid
// over log pages from the current tail (rewriting the partial last page
// with its durable prefix intact) and the tail advances. On return,
// DurableLSN has caught up with the newest appended record. Errors are
// sticky.
func (w *Writer) Sync() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.syncLocked()
}

// SyncTo makes the log durable through at least lsn, syncing only if
// needed. lsn 0 (a never-logged page) is vacuously durable.
func (w *Writer) SyncTo(lsn uint64) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if lsn == 0 || w.durableLSN >= lsn {
		return nil
	}
	if err := w.syncLocked(); err != nil {
		return err
	}
	if w.durableLSN < lsn {
		return fmt.Errorf("wal: sync to %d: log ends at %d", lsn, w.durableLSN)
	}
	return nil
}

func (w *Writer) syncLocked() error {
	if w.closed {
		return ErrClosed
	}
	if w.err != nil {
		return w.err
	}
	if len(w.buf) == 0 {
		return nil
	}
	pending := w.buf
	synced := int64(len(pending))
	ps := int64(w.pageSize)
	for len(pending) > 0 {
		off := int(w.tail % ps)
		pi := int(w.tail / ps)
		n := w.pageSize - off
		if n > len(pending) {
			n = len(pending)
		}
		copy(w.cur[off:off+n], pending[:n])
		for i := off + n; i < w.pageSize; i++ {
			w.cur[i] = 0
		}
		for pi >= w.dev.NumPages() {
			if _, err := w.dev.Allocate(1); err != nil {
				w.err = fmt.Errorf("wal: sync: %w", err)
				return w.err
			}
		}
		if err := w.dev.WritePage(disk.PageID(pi), w.cur); err != nil {
			w.err = fmt.Errorf("wal: sync: %w", err)
			return w.err
		}
		w.tail += int64(n)
		pending = pending[n:]
		if off+n == w.pageSize {
			for i := range w.cur {
				w.cur[i] = 0
			}
		}
	}
	w.buf = w.buf[:0]
	w.durableLSN = w.appendedLSN
	w.fsyncs.Inc()
	w.tr.WAL(trace.KindFsync, trace.NoPage, w.durableLSN, synced)
	return nil
}

// DurableLSN returns the newest LSN the log guarantees to survive a
// crash.
func (w *Writer) DurableLSN() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.durableLSN
}

// AppendedLSN returns the newest LSN handed out by Append.
func (w *Writer) AppendedLSN() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.appendedLSN
}

// Tail returns the durable end of the log byte stream.
func (w *Writer) Tail() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.tail
}

// Close syncs any buffered records and marks the writer unusable. Like
// the buffer pool, it refuses to close over a failed sync, so pending
// records are never silently dropped.
func (w *Writer) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return nil
	}
	if err := w.syncLocked(); err != nil {
		return err
	}
	w.closed = true
	return nil
}
