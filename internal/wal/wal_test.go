package wal

import (
	"errors"
	"fmt"
	"testing"

	"revelation/internal/buffer"
	"revelation/internal/disk"
	"revelation/internal/metrics"
	"revelation/internal/page"
	"revelation/internal/trace"
)

// testImage builds a valid slotted-page image holding one record.
func testImage(t *testing.T, pageSize int, payload string) []byte {
	t.Helper()
	buf := make([]byte, pageSize)
	p := page.Wrap(buf)
	p.Init(0x5754) // arbitrary kind tag
	if _, err := p.Insert([]byte(payload)); err != nil {
		t.Fatalf("build test image: %v", err)
	}
	return buf
}

func TestAppendSyncRecover(t *testing.T) {
	walDev := disk.New(0)
	dataDev := disk.New(4)
	w, err := Open(walDev)
	if err != nil {
		t.Fatal(err)
	}

	want := map[disk.PageID][]byte{}
	for i := 0; i < 4; i++ {
		id := disk.PageID(i)
		img := testImage(t, dataDev.PageSize(), fmt.Sprintf("record for page %d", i))
		lsn, err := w.Append(id, img)
		if err != nil {
			t.Fatalf("Append(%d): %v", id, err)
		}
		if lsn != uint64(i+1) {
			t.Errorf("Append(%d) lsn = %d, want %d", id, lsn, i+1)
		}
		if got := page.Wrap(img).LSN(); got != lsn {
			t.Errorf("appended image LSN = %d, want %d", got, lsn)
		}
		if err := page.Verify(img); err != nil {
			t.Errorf("appended image not stamped: %v", err)
		}
		want[id] = append([]byte(nil), img...)
	}
	if w.DurableLSN() != 0 {
		t.Errorf("DurableLSN before sync = %d, want 0", w.DurableLSN())
	}
	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}
	if w.DurableLSN() != 4 {
		t.Errorf("DurableLSN after sync = %d, want 4", w.DurableLSN())
	}

	// The data device never saw a flush: every page is still zero, so
	// every record must be redone.
	res, err := Recover(walDev, dataDev, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Records != 4 || res.Redone != 4 || res.SkippedOlder != 0 || res.TornTail {
		t.Errorf("recover result = %+v, want 4 records all redone, clean tail", res)
	}
	buf := make([]byte, dataDev.PageSize())
	for id, img := range want {
		if err := dataDev.ReadPage(id, buf); err != nil {
			t.Fatal(err)
		}
		if string(buf) != string(img) {
			t.Errorf("page %d differs from logged image after recovery", id)
		}
	}

	// Redo is idempotent: a second recovery finds every page current.
	res, err = Recover(walDev, dataDev, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Redone != 0 || res.SkippedOlder != 4 {
		t.Errorf("second recovery = %+v, want 0 redone, 4 current", res)
	}
}

func TestRecoverPrefersNewestImage(t *testing.T) {
	walDev := disk.New(0)
	dataDev := disk.New(2)
	w, err := Open(walDev)
	if err != nil {
		t.Fatal(err)
	}
	old := testImage(t, dataDev.PageSize(), "version one")
	newer := testImage(t, dataDev.PageSize(), "version two, longer")
	if _, err := w.Append(1, old); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Append(1, newer); err != nil {
		t.Fatal(err)
	}
	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}
	if _, err := Recover(walDev, dataDev, Options{}); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, dataDev.PageSize())
	if err := dataDev.ReadPage(1, buf); err != nil {
		t.Fatal(err)
	}
	if string(buf) != string(newer) {
		t.Error("recovery left an older image in place")
	}
}

func TestRecoverDiscardsTornTail(t *testing.T) {
	walDev := disk.New(0)
	dataDev := disk.New(4)
	w, err := Open(walDev)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		img := testImage(t, dataDev.PageSize(), fmt.Sprintf("page %d", i))
		if _, err := w.Append(disk.PageID(i), img); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}
	// Tear the last record: flip a byte near the end of the stream so
	// its CRC breaks.
	tail := w.Tail()
	ps := int64(walDev.PageSize())
	lastPage := disk.PageID((tail - 1) / ps)
	buf := make([]byte, walDev.PageSize())
	if err := walDev.ReadPage(lastPage, buf); err != nil {
		t.Fatal(err)
	}
	buf[int((tail-1)%ps)] ^= 0xFF
	if err := walDev.WritePage(lastPage, buf); err != nil {
		t.Fatal(err)
	}

	res, err := Recover(walDev, dataDev, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Records != 2 || !res.TornTail {
		t.Errorf("recover over torn log = %+v, want 2 records and a torn tail", res)
	}
	if res.NextLSN != 3 {
		t.Errorf("NextLSN = %d, want 3", res.NextLSN)
	}
}

func TestOpenResumesLog(t *testing.T) {
	walDev := disk.New(0)
	pageSize := disk.DefaultPageSize
	w, err := Open(walDev)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Append(7, testImage(t, pageSize, "first")); err != nil {
		t.Fatal(err)
	}
	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Append(7, testImage(t, pageSize, "after close")); !errors.Is(err, ErrClosed) {
		t.Errorf("Append after Close = %v, want ErrClosed", err)
	}

	// A new writer must resume mid-page, continuing the LSN sequence
	// without clobbering the durable prefix.
	w2, err := Open(walDev)
	if err != nil {
		t.Fatal(err)
	}
	lsn, err := w2.Append(8, testImage(t, pageSize, "second"))
	if err != nil {
		t.Fatal(err)
	}
	if lsn != 2 {
		t.Errorf("resumed Append lsn = %d, want 2", lsn)
	}
	if err := w2.Sync(); err != nil {
		t.Fatal(err)
	}
	var got []uint64
	_, next, torn, err := scan(walDev, func(rec Record) error {
		got = append(got, rec.LSN)
		return nil
	})
	if err != nil || torn {
		t.Fatalf("scan after resume: torn=%v err=%v", torn, err)
	}
	if len(got) != 2 || next != 3 {
		t.Errorf("scan saw %v (next %d), want LSNs 1,2 (next 3)", got, next)
	}
}

func TestSyncToSkipsWhenDurable(t *testing.T) {
	walDev := disk.New(0)
	w, err := Open(walDev)
	if err != nil {
		t.Fatal(err)
	}
	img := testImage(t, disk.DefaultPageSize, "x")
	lsn, err := w.Append(3, img)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.SyncTo(0); err != nil {
		t.Errorf("SyncTo(0) = %v, want nil (LSN 0 is vacuously durable)", err)
	}
	if w.DurableLSN() != 0 {
		t.Error("SyncTo(0) synced the log")
	}
	if err := w.SyncTo(lsn); err != nil {
		t.Fatal(err)
	}
	writesAfter := walDev.Stats().Writes
	if err := w.SyncTo(lsn); err != nil {
		t.Fatal(err)
	}
	if walDev.Stats().Writes != writesAfter {
		t.Error("SyncTo of an already-durable LSN touched the device")
	}
	if err := w.SyncTo(99); err == nil {
		t.Error("SyncTo past the appended LSN succeeded")
	}
}

// TestPoolEnforcesWALBeforeData attaches a writer to a buffer pool and
// checks the flush rule end to end: dirty unfixes append, and by the
// time any data page reaches the device, the log is durable through
// that page's LSN.
func TestPoolEnforcesWALBeforeData(t *testing.T) {
	walDev := disk.New(0)
	dataDev := disk.New(8)
	w, err := Open(walDev)
	if err != nil {
		t.Fatal(err)
	}
	pool := buffer.New(dataDev, 4, buffer.LRU)
	pool.SetWAL(w)

	for i := 0; i < 3; i++ {
		f, err := pool.Fix(disk.PageID(i))
		if err != nil {
			t.Fatal(err)
		}
		page.Wrap(f.Data()).Init(0x5754)
		if _, err := page.Wrap(f.Data()).Insert([]byte("payload")); err != nil {
			t.Fatal(err)
		}
		if err := pool.Unfix(f, true); err != nil {
			t.Fatal(err)
		}
	}
	if w.AppendedLSN() != 3 {
		t.Errorf("AppendedLSN = %d, want 3 (one per dirty unfix)", w.AppendedLSN())
	}
	if err := pool.FlushAll(); err != nil {
		t.Fatal(err)
	}
	if w.DurableLSN() != 3 {
		t.Errorf("DurableLSN after FlushAll = %d, want 3 (WAL-before-data)", w.DurableLSN())
	}
	// Every flushed page must carry a verified checksum and its LSN.
	buf := make([]byte, dataDev.PageSize())
	for i := 0; i < 3; i++ {
		if err := dataDev.ReadPage(disk.PageID(i), buf); err != nil {
			t.Fatal(err)
		}
		if err := page.Verify(buf); err != nil {
			t.Errorf("flushed page %d: %v", i, err)
		}
		if page.Wrap(buf).LSN() == 0 {
			t.Errorf("flushed page %d has no LSN", i)
		}
	}
	if err := pool.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestTraceAndMetricsCrossCheck runs a traced, metered append/sync/
// recover cycle and demands the trace replay, the writer's counters,
// and the registry deltas all agree.
func TestTraceAndMetricsCrossCheck(t *testing.T) {
	walDev := disk.New(0)
	dataDev := disk.New(4)
	col := trace.NewCollector()
	tr := trace.New(col)
	reg := metrics.NewRegistry()

	w, err := Open(walDev)
	if err != nil {
		t.Fatal(err)
	}
	w.SetTracer(tr)
	w.RegisterMetrics(reg, "test")

	for i := 0; i < 3; i++ {
		img := testImage(t, dataDev.PageSize(), fmt.Sprintf("p%d", i))
		if _, err := w.Append(disk.PageID(i), img); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}
	res, err := Recover(walDev, dataDev, Options{Tracer: tr, Registry: reg})
	if err != nil {
		t.Fatal(err)
	}

	r := trace.ReplayEvents(col.Events())
	if r.WALAppends != 3 || r.WALFsyncs != 1 {
		t.Errorf("replay wal counters = %d appends, %d fsyncs; want 3, 1", r.WALAppends, r.WALFsyncs)
	}
	if int(r.Redone) != res.Redone {
		t.Errorf("replay redone = %d, recover reported %d", r.Redone, res.Redone)
	}
	snap := reg.Snapshot()
	for name, want := range map[string]int64{
		"asm_wal_appends_total":           3,
		"asm_wal_fsyncs_total":            1,
		"asm_recovery_pages_redone_total": int64(res.Redone),
	} {
		if got := snap.Sum(name); got != want {
			t.Errorf("registry %s = %d, want %d", name, got, want)
		}
	}

	// A second recovery must accumulate onto the same registry cell,
	// not reset it.
	if _, err := Recover(walDev, dataDev, Options{Registry: reg}); err != nil {
		t.Fatal(err)
	}
	if got := reg.Snapshot().Sum("asm_recovery_pages_redone_total"); got != int64(res.Redone) {
		t.Errorf("redone counter after idempotent recovery = %d, want unchanged %d", got, res.Redone)
	}
}
