package wal

import (
	"fmt"
	"testing"

	"revelation/internal/disk"
	"revelation/internal/page"
)

// benchImage builds one valid page image for the benchmark log.
func benchImage(pageSize int, i int) []byte {
	buf := make([]byte, pageSize)
	p := page.Wrap(buf)
	p.Init(0x5754)
	p.Insert([]byte(fmt.Sprintf("record %d", i)))
	return buf
}

// BenchmarkAppendSync measures group commit: 8 page appends per sync,
// reported per appended page.
func BenchmarkAppendSync(b *testing.B) {
	walDev := disk.New(0)
	w, err := Open(walDev)
	if err != nil {
		b.Fatal(err)
	}
	img := benchImage(disk.DefaultPageSize, 0)
	b.SetBytes(int64(len(img)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := w.Append(disk.PageID(i%64), img); err != nil {
			b.Fatal(err)
		}
		if i%8 == 7 {
			if err := w.Sync(); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkRecover measures redo speed: replaying a 1024-image log onto
// an empty data device, reported per recovered page.
func BenchmarkRecover(b *testing.B) {
	const images = 1024
	walDev := disk.New(0)
	w, err := Open(walDev)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < images; i++ {
		if _, err := w.Append(disk.PageID(i), benchImage(disk.DefaultPageSize, i)); err != nil {
			b.Fatal(err)
		}
	}
	if err := w.Sync(); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(images * disk.DefaultPageSize))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dataDev := disk.New(0)
		res, err := Recover(walDev, dataDev, Options{})
		if err != nil {
			b.Fatal(err)
		}
		if res.Redone != images {
			b.Fatalf("redone %d, want %d", res.Redone, images)
		}
	}
}
