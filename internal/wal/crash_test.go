package wal

// The crash-point sweep: the central durability test. A deterministic
// workload (heap inserts and updates indexed by a B+-tree, committed in
// groups by WAL syncs) runs over a data device and a log device that
// share one crash point. A disarmed run counts the W page writes the
// workload issues; the sweep then crashes a fresh copy of the workload
// at every write ordinal k = 1..W, both cleanly (the k-th write
// completes, then the machine dies) and torn (the k-th write lands only
// a sector prefix), revives the devices, recovers, and verifies:
//
//   - every data page passes checksum verification after recovery;
//   - the B+-tree validates its structural invariants;
//   - every record committed by a completed Sync is present: its key
//     resolves through the tree and the heap returns its exact payload;
//   - every heap page is structurally sound;
//   - untorn crashes never corrupt data pages even before recovery,
//     while across the torn half of the sweep at least one crash point
//     leaves a data page that checksum verification demonstrably
//     catches before recovery repairs it.
//
// CRASH_OPS scales the workload (default keeps the sweep inside a
// tier-1 test run; `make crash-test` raises it).

import (
	"errors"
	"fmt"
	"os"
	"strconv"
	"testing"

	"revelation/internal/btree"
	"revelation/internal/buffer"
	"revelation/internal/disk"
	"revelation/internal/heap"
	"revelation/internal/page"
)

const (
	crashSeed      = 0x5EED
	crashHeapPages = 12
	crashPoolSize  = 8
)

func packRID(r heap.RID) uint64 {
	return uint64(r.Page)<<16 | uint64(r.Slot)
}

func unpackRID(v uint64) heap.RID {
	return heap.RID{Page: disk.PageID(v >> 16), Slot: page.SlotID(v & 0xFFFF)}
}

// crashState is what survives the crash for the verifier: the layout of
// the structures and the records committed by the last completed Sync.
type crashState struct {
	root      disk.PageID
	heapFirst disk.PageID
	committed map[uint64]string
	syncs     int
	crashed   bool
}

// runCrashWorkload drives the seeded workload over the given devices
// until it completes or the crash point fires. Any error other than a
// crash is a real bug and is returned; a crash returns the state as of
// the last completed Sync with crashed set.
func runCrashWorkload(dataDev, walDev disk.Device, ops int) (*crashState, error) {
	st := &crashState{committed: map[uint64]string{}}
	pending := map[uint64]string{}
	versions := map[uint64]int{}

	fail := func(err error) (*crashState, error) {
		if errors.Is(err, disk.ErrCrashed) {
			st.crashed = true
			return st, nil
		}
		return nil, err
	}

	w, err := Open(walDev)
	if err != nil {
		return fail(err)
	}
	pool := buffer.New(dataDev, crashPoolSize, buffer.LRU)
	pool.SetWAL(w)
	hf, err := heap.Create(pool, crashHeapPages)
	if err != nil {
		return fail(err)
	}
	st.heapFirst = hf.First()
	tr, err := btree.Create(pool)
	if err != nil {
		return fail(err)
	}
	st.root = tr.Root()
	// Schema commit: the extent and the empty tree become durable, so
	// any later crash recovers to at least this state.
	if err := w.Sync(); err != nil {
		return fail(err)
	}
	st.syncs++

	for i := 0; i < ops; i++ {
		if i%4 == 3 {
			// Rewrite an existing record in place with a bumped version.
			key := uint64(i-3) + 1
			versions[key]++
			payload := fmt.Sprintf("rec-%06d-v%02d", key, versions[key])
			v, ok, err := tr.Get(key)
			if err != nil {
				return fail(err)
			}
			if !ok {
				return nil, fmt.Errorf("workload: key %d vanished before update", key)
			}
			if err := hf.Update(unpackRID(v), []byte(payload)); err != nil {
				return fail(err)
			}
			pending[key] = payload
		} else {
			key := uint64(i) + 1
			payload := fmt.Sprintf("rec-%06d-v%02d", key, 0)
			rid, err := hf.Insert([]byte(payload))
			if err != nil {
				return fail(err)
			}
			if err := tr.Put(key, packRID(rid)); err != nil {
				return fail(err)
			}
			pending[key] = payload
		}
		if i%8 == 7 {
			// Group commit: everything appended so far becomes durable.
			if err := w.Sync(); err != nil {
				return fail(err)
			}
			st.syncs++
			for k, v := range pending {
				st.committed[k] = v
			}
			pending = map[uint64]string{}
		}
		if i%16 == 11 {
			// Push dirty pages to the data device mid-stream so the
			// sweep crosses data writes, not just log writes. The flush
			// path syncs the log first (WAL-before-data).
			if err := pool.FlushAll(); err != nil {
				return fail(err)
			}
		}
	}
	if err := w.Sync(); err != nil {
		return fail(err)
	}
	st.syncs++
	for k, v := range pending {
		st.committed[k] = v
	}
	if err := pool.FlushAll(); err != nil {
		return fail(err)
	}
	if err := pool.Close(); err != nil {
		return fail(err)
	}
	if err := w.Close(); err != nil {
		return fail(err)
	}
	return st, nil
}

// crashRig wires fresh devices behind Faulty wrappers sharing one crash
// point, so the write clock orders data and log writes globally.
type crashRig struct {
	data *disk.Faulty
	wal  *disk.Faulty
	cp   *disk.CrashPoint
}

func newCrashRig(after int64, torn bool) *crashRig {
	cp := disk.NewCrashPoint(after, torn, crashSeed)
	data := disk.NewFaulty(disk.New(0), disk.FaultConfig{})
	wal := disk.NewFaulty(disk.New(0), disk.FaultConfig{})
	data.SetCrash(cp)
	wal.SetCrash(cp)
	return &crashRig{data: data, wal: wal, cp: cp}
}

// verifyRecovered revives the rig, recovers, and runs the full
// post-recovery verification. It returns the number of data pages that
// failed checksum verification BEFORE recovery — the detection signal
// the torn half of the sweep asserts on.
func verifyRecovered(t *testing.T, tag string, rig *crashRig, st *crashState) int {
	t.Helper()
	rig.cp.Revive()

	preBad, err := page.VerifyDevice(rig.data)
	if err != nil {
		t.Fatalf("%s: pre-recovery checksum scan: %v", tag, err)
	}
	res, err := Recover(rig.wal, rig.data, Options{})
	if err != nil {
		t.Fatalf("%s: recover: %v", tag, err)
	}
	postBad, err := page.VerifyDevice(rig.data)
	if err != nil {
		t.Fatalf("%s: post-recovery checksum scan: %v", tag, err)
	}
	if len(postBad) != 0 {
		t.Fatalf("%s: %d pages fail checksums after recovery (%v); %s", tag, len(postBad), postBad, res)
	}

	// A crash before the schema commit recovers to an empty or partial
	// layout: checksums must hold (checked above), but there is no
	// structure to validate and nothing was committed.
	if st.syncs < 1 {
		return len(preBad)
	}
	pool := buffer.New(rig.data, 16, buffer.LRU)
	tr := btree.Open(pool, st.root)
	if err := tr.Validate(); err != nil {
		t.Fatalf("%s: tree invariants after recovery: %v; %s", tag, err, res)
	}
	hf := heap.Open(pool, st.heapFirst, crashHeapPages)
	if err := hf.Check(); err != nil {
		t.Fatalf("%s: heap check after recovery: %v", tag, err)
	}
	for key, want := range st.committed {
		v, ok, err := tr.Get(key)
		if err != nil {
			t.Fatalf("%s: Get(%d) after recovery: %v", tag, key, err)
		}
		if !ok {
			t.Fatalf("%s: committed key %d missing after recovery; %s", tag, key, res)
		}
		got, err := hf.Read(unpackRID(v))
		if err != nil {
			t.Fatalf("%s: read committed record %d: %v", tag, key, err)
		}
		if string(got) != want {
			t.Fatalf("%s: committed record %d = %q, want %q", tag, key, got, want)
		}
	}
	if err := pool.Close(); err != nil {
		t.Fatalf("%s: close verification pool: %v", tag, err)
	}
	return len(preBad)
}

func crashOps(t *testing.T) int {
	ops := 32
	if s := os.Getenv("CRASH_OPS"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil || n < 1 {
			t.Fatalf("CRASH_OPS=%q: want a positive integer", s)
		}
		ops = n
	}
	return ops
}

// TestCrashPointSweep crashes the workload at every write ordinal, both
// cleanly and torn, and verifies full recovery each time.
func TestCrashPointSweep(t *testing.T) {
	ops := crashOps(t)

	// Disarmed run: learn W, the length of the write sequence, and check
	// the workload itself is sound end to end.
	rig := newCrashRig(0, false)
	st, err := runCrashWorkload(rig.data, rig.wal, ops)
	if err != nil {
		t.Fatal(err)
	}
	if st.crashed {
		t.Fatal("disarmed run crashed")
	}
	writes := rig.cp.Writes()
	if writes < 20 {
		t.Fatalf("workload issued only %d writes; the sweep would be vacuous", writes)
	}
	verifyRecovered(t, "disarmed", rig, st)
	t.Logf("workload: %d ops, %d syncs, %d committed records, W=%d write points",
		ops, st.syncs, len(st.committed), writes)

	tornDetected := 0
	for k := int64(1); k <= writes; k++ {
		for _, torn := range []bool{false, true} {
			tag := fmt.Sprintf("crash@%d/%d torn=%v", k, writes, torn)
			rig := newCrashRig(k, torn)
			st, err := runCrashWorkload(rig.data, rig.wal, ops)
			if err != nil {
				t.Fatalf("%s: %v", tag, err)
			}
			if !st.crashed && k < writes {
				t.Fatalf("%s: workload completed without hitting the crash", tag)
			}
			preBad := verifyRecovered(t, tag, rig, st)
			if torn {
				if preBad > 0 {
					tornDetected++
				}
			} else if preBad > 0 {
				// An untorn crash completes every write it issues, so a
				// data page can be stale but never half-written.
				t.Fatalf("%s: %d data pages fail checksums before recovery after a clean crash", tag, preBad)
			}
		}
	}
	if tornDetected == 0 {
		t.Error("no torn crash point left a checksum-detectable data page: the tear injection never reached the data device")
	}
	t.Logf("sweep: %d crash points x2, torn data pages detected pre-recovery at %d points", writes, tornDetected)
}
