package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"

	"revelation/internal/disk"
	"revelation/internal/page"
)

// Stream-reading errors. Both mark the end of the currently readable
// log, but they mean different things to different callers: recovery
// discards a torn tail for good, while a live follower (replication's
// Follow RPC) treats either as "nothing more yet" and polls again —
// a torn tail on a log that is still being written is usually just a
// Sync caught mid-flight.
var (
	// ErrEndOfLog reports a clean end: the next record slot is
	// zero-filled (or past the device), exactly where the next append
	// will land.
	ErrEndOfLog = errors.New("wal: end of log")
	// ErrTornTail reports an interrupted append: bad magic, broken LSN
	// sequence, truncated record, or checksum mismatch.
	ErrTornTail = errors.New("wal: torn tail")
)

// Record kinds.
const (
	// RecPage is a page-image record: the full after-image of Page.
	RecPage = byte(0)
	// RecOwnership is a cutover record: pages in [Lo, Hi) owned by
	// Owner under the post-join rendezvous assignment are cut over.
	RecOwnership = byte(1)
)

// Record is one log record: a page after-image (RecPage, the common
// case — Page and Img are set) or an ownership cutover (RecOwnership —
// Lo, Hi, and Owner are set).
type Record struct {
	Kind byte
	LSN  uint64
	Page disk.PageID
	Img  []byte

	Lo, Hi disk.PageID
	Owner  string
}

// Reader iterates a log device's records in order, incrementally: it
// remembers its byte offset and last LSN, so a caller can drain to the
// end, wait for the log to grow, and resume — the access pattern of a
// replication follower. Next re-reads the device on every retry after
// an end/torn result, so records appended in the meantime are seen.
//
// A Reader is not safe for concurrent use.
type Reader struct {
	dev    disk.Device
	ps     int64
	pos    int64
	lsn    uint64
	buf    []byte
	loaded int // page index resident in buf; -1 none
}

// NewReader starts a reader at the front of the log (next expected
// LSN 1).
func NewReader(dev disk.Device) *Reader {
	return &Reader{
		dev:    dev,
		ps:     int64(dev.PageSize()),
		buf:    make([]byte, dev.PageSize()),
		loaded: -1,
	}
}

// Offset returns the byte offset of the next record to read — the end
// of the valid prefix consumed so far.
func (r *Reader) Offset() int64 { return r.pos }

// LastLSN returns the LSN of the last record returned (0 before any).
func (r *Reader) LastLSN() uint64 { return r.lsn }

// readAt fills dst from the stream at offset off, failing once the
// stream runs past the device's allocated pages.
func (r *Reader) readAt(off int64, dst []byte) error {
	for len(dst) > 0 {
		pi := int(off / r.ps)
		if pi >= r.dev.NumPages() {
			return fmt.Errorf("wal: log ends inside a record at offset %d", off)
		}
		if pi != r.loaded {
			if err := r.dev.ReadPage(disk.PageID(pi), r.buf); err != nil {
				return err
			}
			r.loaded = pi
		}
		o := int(off % r.ps)
		n := copy(dst, r.buf[o:])
		dst = dst[n:]
		off += int64(n)
	}
	return nil
}

// Next returns the next valid record, or ErrEndOfLog at a clean end,
// or ErrTornTail at an interrupted append. After either error the
// reader stays positioned at the same offset and drops its page cache,
// so a later Next observes appends (or repairs) that happened since.
// The returned image aliases an internal buffer only until the next
// call — it is freshly allocated per record, safe to retain.
func (r *Reader) Next() (Record, error) {
	// Invalidate the cached page: the tail page is exactly the one a
	// concurrent writer rewrites as the log grows.
	r.loaded = -1
	if int(r.pos/r.ps) >= r.dev.NumPages() {
		return Record{}, ErrEndOfLog
	}
	var hdr [recHdrSize]byte
	if err := r.readAt(r.pos, hdr[:]); err != nil {
		// The header runs off the device: the last append never
		// finished allocating its pages.
		return Record{}, ErrTornTail
	}
	magic := binary.LittleEndian.Uint32(hdr[0:])
	if magic == 0 {
		return Record{}, ErrEndOfLog
	}
	if magic != recMagic && magic != ownMagic {
		return Record{}, ErrTornTail
	}
	lsn := binary.LittleEndian.Uint64(hdr[4:])
	id := disk.PageID(binary.LittleEndian.Uint32(hdr[12:]))
	n := int(binary.LittleEndian.Uint32(hdr[16:]))
	want := binary.LittleEndian.Uint32(hdr[20:])
	if lsn != r.lsn+1 || n == 0 || n > maxImage {
		return Record{}, ErrTornTail
	}
	img := make([]byte, n)
	if err := r.readAt(r.pos+recHdrSize, img); err != nil {
		return Record{}, ErrTornTail
	}
	crc := crc32.Update(crc32.Update(0, castagnoli, hdr[:20]), castagnoli, img)
	if crc != want {
		return Record{}, ErrTornTail
	}
	if magic == ownMagic {
		// Ownership payload: [4B hi page][owner name]. The range must
		// be non-empty and named — a violation means corruption that
		// happened to pass the CRC window, treated like any torn tail.
		if n < 5 {
			return Record{}, ErrTornTail
		}
		hi := disk.PageID(binary.LittleEndian.Uint32(img[0:]))
		if hi <= id {
			return Record{}, ErrTornTail
		}
		r.lsn = lsn
		r.pos += int64(recHdrSize + n)
		return Record{Kind: RecOwnership, LSN: lsn, Lo: id, Hi: hi, Owner: string(img[4:])}, nil
	}
	r.lsn = lsn
	r.pos += int64(recHdrSize + n)
	return Record{Kind: RecPage, LSN: lsn, Page: id, Img: img}, nil
}

// ApplyRecord performs the redo-if-newer step for one record against a
// data device: the image is installed iff the resident page is missing,
// fails checksum verification, or carries an older LSN. The device is
// grown as needed. buf must be one page long scratch space (pass nil to
// allocate). It reports whether the image was actually installed —
// re-applying an already-applied record is a no-op, which is what makes
// replica reconnection from a checkpointed LSN safe.
func ApplyRecord(dev disk.Device, rec Record, buf []byte) (bool, error) {
	ps := dev.PageSize()
	if len(rec.Img) != ps {
		return false, fmt.Errorf("wal: record %d holds a %d-byte image for a %d-byte-page device",
			rec.LSN, len(rec.Img), ps)
	}
	if buf == nil {
		buf = make([]byte, ps)
	} else if len(buf) != ps {
		return false, fmt.Errorf("wal: apply scratch buffer is %d bytes, want %d", len(buf), ps)
	}
	for int(rec.Page) >= dev.NumPages() {
		if _, err := dev.Allocate(1); err != nil {
			return false, fmt.Errorf("wal: apply: grow data device: %w", err)
		}
	}
	if err := dev.ReadPage(rec.Page, buf); err == nil {
		if page.Verify(buf) == nil && page.Wrap(buf).LSN() >= rec.LSN {
			return false, nil
		}
	}
	// The logged image carries its LSN and checksum (stamped at append
	// time), so it is installed verbatim.
	if err := dev.WritePage(rec.Page, rec.Img); err != nil {
		return false, fmt.Errorf("wal: apply: redo page %d: %w", rec.Page, err)
	}
	return true, nil
}
