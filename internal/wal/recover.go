package wal

import (
	"errors"
	"fmt"

	"revelation/internal/disk"
	"revelation/internal/metrics"
	"revelation/internal/trace"
)

// scan walks the log from the front using a Reader, invoking fn for
// every valid record in order, and stops at the log's end. It returns
// the byte offset of the valid prefix's end, the next LSN after the
// last valid record, and whether the stop was a torn tail (an
// interrupted append) rather than a clean zero-magic end. fn may be
// nil. An error from fn aborts the scan.
func scan(dev disk.Device, fn func(rec Record) error) (end int64, nextLSN uint64, torn bool, err error) {
	r := NewReader(dev)
	for {
		rec, rerr := r.Next()
		if rerr != nil {
			return r.Offset(), r.LastLSN() + 1, errors.Is(rerr, ErrTornTail), nil
		}
		if fn != nil {
			if err := fn(rec); err != nil {
				return r.Offset(), r.LastLSN() + 1, false, err
			}
		}
	}
}

// ScanOwnership walks a log's valid prefix and returns every ownership
// (cutover) record in LSN order, discarding any torn tail. This is the
// recovery path for a migration log: the returned records replayed
// onto a freshly joined router rebuild exactly the cutovers that were
// durable before a crash.
func ScanOwnership(dev disk.Device) ([]Record, error) {
	var recs []Record
	_, _, _, err := scan(dev, func(rec Record) error {
		if rec.Kind == RecOwnership {
			recs = append(recs, rec)
		}
		return nil
	})
	return recs, err
}

// Options configures Recover's observability hooks; the zero value
// disables both.
type Options struct {
	// Tracer receives recover.redo events.
	Tracer *trace.Tracer
	// Registry, when set, accumulates asm_recovery_pages_redone_total
	// across recovery runs (the counter cell is shared by name, so
	// repeated recoveries keep counting up).
	Registry *metrics.Registry
}

// Result reports what one recovery pass did.
type Result struct {
	// Records is the number of valid log records scanned.
	Records int
	// Redone counts page images reinstalled onto the data device.
	Redone int
	// SkippedOlder counts records whose page was already current (its
	// on-disk LSN was at least the record's and its checksum verified).
	SkippedOlder int
	// Ownership counts cutover records seen (they carry no page image;
	// ScanOwnership retrieves their contents).
	Ownership int
	// TornTail reports whether the scan stopped at an interrupted
	// append rather than a clean log end.
	TornTail bool
	// TailOffset is the byte offset of the valid log prefix's end.
	TailOffset int64
	// NextLSN is the LSN a writer resuming this log would assign next.
	NextLSN uint64
}

func (r *Result) String() string {
	tail := "clean tail"
	if r.TornTail {
		tail = "torn tail discarded"
	}
	return fmt.Sprintf("wal: recovered %d records (%d redone, %d current), %s, next LSN %d",
		r.Records, r.Redone, r.SkippedOlder, tail, r.NextLSN)
}

// Recover replays the log on walDev onto dataDev: it scans the valid
// prefix, discards the torn tail, and reinstalls every logged image
// whose data page is missing, fails checksum verification, or carries
// an older LSN. Redo is idempotent — recovering twice is a no-op the
// second time — and restores exactly the state of the last completed
// Sync. The data device is grown as needed to hold logged pages
// allocated after the last data flush.
func Recover(walDev, dataDev disk.Device, opts Options) (*Result, error) {
	res := &Result{}
	var redone metrics.Counter
	redoneCell := &redone
	if opts.Registry != nil {
		redoneCell = opts.Registry.Counter("asm_recovery_pages_redone_total",
			"Page images reinstalled from the WAL during recovery.")
	}
	buf := make([]byte, dataDev.PageSize())
	end, next, torn, err := scan(walDev, func(rec Record) error {
		res.Records++
		if rec.Kind == RecOwnership {
			// Cutover records carry no page image; redo ignores them
			// (the fleet migrator replays them via ScanOwnership).
			res.Ownership++
			return nil
		}
		applied, aerr := ApplyRecord(dataDev, rec, buf)
		if aerr != nil {
			return fmt.Errorf("wal: recover: %w", aerr)
		}
		if !applied {
			res.SkippedOlder++
			return nil
		}
		res.Redone++
		redoneCell.Inc()
		opts.Tracer.Redo(int64(rec.Page), rec.LSN)
		return nil
	})
	if err != nil {
		return res, err
	}
	res.TornTail = torn
	res.TailOffset = end
	res.NextLSN = next
	return res, nil
}
