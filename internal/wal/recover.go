package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"

	"revelation/internal/disk"
	"revelation/internal/metrics"
	"revelation/internal/page"
	"revelation/internal/trace"
)

// scanner reads the log byte stream across page boundaries with a
// one-page cache.
type scanner struct {
	dev    disk.Device
	buf    []byte
	loaded int // page index resident in buf; -1 none
}

// readAt fills dst from the stream at offset off. It fails once the
// stream runs past the device's allocated pages.
func (s *scanner) readAt(off int64, dst []byte) error {
	ps := int64(s.dev.PageSize())
	for len(dst) > 0 {
		pi := int(off / ps)
		if pi >= s.dev.NumPages() {
			return fmt.Errorf("wal: log ends inside a record at offset %d", off)
		}
		if pi != s.loaded {
			if err := s.dev.ReadPage(disk.PageID(pi), s.buf); err != nil {
				return err
			}
			s.loaded = pi
		}
		o := int(off % ps)
		n := copy(dst, s.buf[o:])
		dst = dst[n:]
		off += int64(n)
	}
	return nil
}

// scan walks the log from the front, invoking fn for every valid record
// in order, and stops at the log's end. It returns the byte offset of
// the valid prefix's end, the next LSN after the last valid record, and
// whether the stop was a torn tail (an interrupted append: bad magic,
// broken LSN sequence, truncated record, or checksum mismatch) rather
// than a clean zero-magic end. fn may be nil. An error from fn aborts
// the scan; device read errors on the first header of a record are
// treated as end-of-log (the stream simply has no more pages).
func scan(dev disk.Device, fn func(lsn uint64, id disk.PageID, img []byte) error) (end int64, nextLSN uint64, torn bool, err error) {
	s := &scanner{dev: dev, buf: make([]byte, dev.PageSize()), loaded: -1}
	var pos int64
	var lsn uint64
	hdr := make([]byte, recHdrSize)
	for {
		if int(pos/int64(dev.PageSize())) >= dev.NumPages() {
			return pos, lsn + 1, false, nil // clean end at the last page
		}
		if err := s.readAt(pos, hdr); err != nil {
			// The header itself runs off the device: the last append
			// never finished allocating its pages.
			return pos, lsn + 1, true, nil
		}
		magic := binary.LittleEndian.Uint32(hdr[0:])
		if magic == 0 {
			return pos, lsn + 1, false, nil // zero-filled tail: clean end
		}
		if magic != recMagic {
			return pos, lsn + 1, true, nil
		}
		recLSN := binary.LittleEndian.Uint64(hdr[4:])
		id := disk.PageID(binary.LittleEndian.Uint32(hdr[12:]))
		n := int(binary.LittleEndian.Uint32(hdr[16:]))
		want := binary.LittleEndian.Uint32(hdr[20:])
		if recLSN != lsn+1 || n == 0 || n > maxImage {
			return pos, lsn + 1, true, nil
		}
		img := make([]byte, n)
		if err := s.readAt(pos+recHdrSize, img); err != nil {
			return pos, lsn + 1, true, nil
		}
		crc := crc32.Update(crc32.Update(0, castagnoli, hdr[:20]), castagnoli, img)
		if crc != want {
			return pos, lsn + 1, true, nil
		}
		if fn != nil {
			if err := fn(recLSN, id, img); err != nil {
				return pos, lsn + 1, false, err
			}
		}
		lsn = recLSN
		pos += int64(recHdrSize + n)
	}
}

// Options configures Recover's observability hooks; the zero value
// disables both.
type Options struct {
	// Tracer receives recover.redo events.
	Tracer *trace.Tracer
	// Registry, when set, accumulates asm_recovery_pages_redone_total
	// across recovery runs (the counter cell is shared by name, so
	// repeated recoveries keep counting up).
	Registry *metrics.Registry
}

// Result reports what one recovery pass did.
type Result struct {
	// Records is the number of valid log records scanned.
	Records int
	// Redone counts page images reinstalled onto the data device.
	Redone int
	// SkippedOlder counts records whose page was already current (its
	// on-disk LSN was at least the record's and its checksum verified).
	SkippedOlder int
	// TornTail reports whether the scan stopped at an interrupted
	// append rather than a clean log end.
	TornTail bool
	// TailOffset is the byte offset of the valid log prefix's end.
	TailOffset int64
	// NextLSN is the LSN a writer resuming this log would assign next.
	NextLSN uint64
}

func (r *Result) String() string {
	tail := "clean tail"
	if r.TornTail {
		tail = "torn tail discarded"
	}
	return fmt.Sprintf("wal: recovered %d records (%d redone, %d current), %s, next LSN %d",
		r.Records, r.Redone, r.SkippedOlder, tail, r.NextLSN)
}

// Recover replays the log on walDev onto dataDev: it scans the valid
// prefix, discards the torn tail, and reinstalls every logged image
// whose data page is missing, fails checksum verification, or carries
// an older LSN. Redo is idempotent — recovering twice is a no-op the
// second time — and restores exactly the state of the last completed
// Sync. The data device is grown as needed to hold logged pages
// allocated after the last data flush.
func Recover(walDev, dataDev disk.Device, opts Options) (*Result, error) {
	res := &Result{}
	var redone metrics.Counter
	redoneCell := &redone
	if opts.Registry != nil {
		redoneCell = opts.Registry.Counter("asm_recovery_pages_redone_total",
			"Page images reinstalled from the WAL during recovery.")
	}
	ps := dataDev.PageSize()
	buf := make([]byte, ps)
	end, next, torn, err := scan(walDev, func(lsn uint64, id disk.PageID, img []byte) error {
		res.Records++
		if len(img) != ps {
			return fmt.Errorf("wal: record %d holds a %d-byte image for a %d-byte-page device", lsn, len(img), ps)
		}
		for int(id) >= dataDev.NumPages() {
			if _, err := dataDev.Allocate(1); err != nil {
				return fmt.Errorf("wal: recover: grow data device: %w", err)
			}
		}
		current := false
		if err := dataDev.ReadPage(id, buf); err == nil {
			current = page.Verify(buf) == nil && page.Wrap(buf).LSN() >= lsn
		}
		if current {
			res.SkippedOlder++
			return nil
		}
		// The logged image already carries its LSN and checksum
		// (stamped at append time), so it is reinstalled verbatim.
		if err := dataDev.WritePage(id, img); err != nil {
			return fmt.Errorf("wal: recover: redo page %d: %w", id, err)
		}
		res.Redone++
		redoneCell.Inc()
		opts.Tracer.Redo(int64(id), lsn)
		return nil
	})
	if err != nil {
		return res, err
	}
	res.TornTail = torn
	res.TailOffset = end
	res.NextLSN = next
	return res, nil
}
