package wal

import (
	"strings"
	"testing"

	"revelation/internal/disk"
)

// TestOwnershipRoundTrip interleaves page and ownership records on one
// log and checks that the shared LSN sequence, the Reader, and
// ScanOwnership all agree on what was written.
func TestOwnershipRoundTrip(t *testing.T) {
	walDev := disk.New(0)
	dataDev := disk.New(4)
	w, err := Open(walDev)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Append(0, testImage(t, dataDev.PageSize(), "before cutover")); err != nil {
		t.Fatal(err)
	}
	lsn, err := w.AppendOwnership(10, 20, "member-b")
	if err != nil {
		t.Fatal(err)
	}
	if lsn != 2 {
		t.Errorf("AppendOwnership lsn = %d, want 2 (shared sequence)", lsn)
	}
	if _, err := w.Append(1, testImage(t, dataDev.PageSize(), "after cutover")); err != nil {
		t.Fatal(err)
	}
	if _, err := w.AppendOwnership(20, 30, "member-c"); err != nil {
		t.Fatal(err)
	}
	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}

	// Reader sees all four records in order with the right kinds.
	r := NewReader(walDev)
	var kinds []byte
	for {
		rec, err := r.Next()
		if err != nil {
			break
		}
		kinds = append(kinds, rec.Kind)
		if rec.Kind == RecOwnership && rec.LSN == 2 {
			if rec.Lo != 10 || rec.Hi != 20 || rec.Owner != "member-b" {
				t.Errorf("ownership record = [%d,%d) %q, want [10,20) member-b", rec.Lo, rec.Hi, rec.Owner)
			}
		}
	}
	if string(kinds) != string([]byte{RecPage, RecOwnership, RecPage, RecOwnership}) {
		t.Errorf("record kinds = %v, want page,own,page,own", kinds)
	}

	// ScanOwnership filters to the cutover records only.
	owns, err := ScanOwnership(walDev)
	if err != nil {
		t.Fatal(err)
	}
	if len(owns) != 2 || owns[0].Owner != "member-b" || owns[1].Owner != "member-c" {
		t.Fatalf("ScanOwnership = %+v, want member-b then member-c", owns)
	}

	// Recover redoes the two page images and skips the cutovers.
	res, err := Recover(walDev, dataDev, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Records != 4 || res.Redone != 2 || res.Ownership != 2 {
		t.Errorf("recover = %+v, want 4 records, 2 redone, 2 ownership", res)
	}
}

// TestOwnershipValidation checks argument guards and torn-tail handling
// for ownership records.
func TestOwnershipValidation(t *testing.T) {
	walDev := disk.New(0)
	w, err := Open(walDev)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.AppendOwnership(5, 5, "x"); err == nil {
		t.Error("empty range accepted")
	}
	if _, err := w.AppendOwnership(5, 4, "x"); err == nil {
		t.Error("inverted range accepted")
	}
	if _, err := w.AppendOwnership(0, 1, ""); err == nil {
		t.Error("empty owner accepted")
	}
	if _, err := w.AppendOwnership(0, 1, strings.Repeat("n", maxImage)); err == nil {
		t.Error("oversized owner accepted")
	}

	// A durable cutover followed by a torn one: the scan keeps the
	// first and discards the tail.
	if _, err := w.AppendOwnership(0, 8, "survivor"); err != nil {
		t.Fatal(err)
	}
	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}
	if _, err := w.AppendOwnership(8, 16, "torn"); err != nil {
		t.Fatal(err)
	}
	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}
	tail := w.Tail()
	ps := int64(walDev.PageSize())
	buf := make([]byte, walDev.PageSize())
	lastPage := disk.PageID((tail - 1) / ps)
	if err := walDev.ReadPage(lastPage, buf); err != nil {
		t.Fatal(err)
	}
	buf[int((tail-1)%ps)] ^= 0xFF
	if err := walDev.WritePage(lastPage, buf); err != nil {
		t.Fatal(err)
	}
	owns, err := ScanOwnership(walDev)
	if err != nil {
		t.Fatal(err)
	}
	if len(owns) != 1 || owns[0].Owner != "survivor" {
		t.Fatalf("ScanOwnership over torn log = %+v, want only the survivor", owns)
	}
}
