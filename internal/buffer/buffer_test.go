package buffer

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"revelation/internal/disk"
)

func newPool(t *testing.T, devPages, frames int, policy Policy) (*Pool, *disk.Sim) {
	t.Helper()
	d := disk.New(devPages)
	return New(d, frames, policy), d
}

func TestFixMissThenHit(t *testing.T) {
	p, d := newPool(t, 8, 4, LRU)
	f, err := p.Fix(3)
	if err != nil {
		t.Fatal(err)
	}
	if f.ID() != 3 {
		t.Errorf("frame holds %d, want 3", f.ID())
	}
	if err := p.Unfix(f, false); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Fix(3); err != nil {
		t.Fatal(err)
	}
	st := p.Stats()
	if st.Faults != 1 || st.Hits != 1 {
		t.Errorf("stats = %+v, want 1 fault 1 hit", st)
	}
	if d.Stats().Reads != 1 {
		t.Errorf("device reads = %d, want 1", d.Stats().Reads)
	}
}

func TestDirtyWriteBack(t *testing.T) {
	p, d := newPool(t, 8, 2, LRU)
	f, err := p.Fix(0)
	if err != nil {
		t.Fatal(err)
	}
	f.Data()[0] = 0xCC
	if err := p.Unfix(f, true); err != nil {
		t.Fatal(err)
	}
	// Evict page 0 by filling both frames with other pages.
	for _, id := range []disk.PageID{1, 2} {
		fr, err := p.Fix(id)
		if err != nil {
			t.Fatal(err)
		}
		if err := p.Unfix(fr, false); err != nil {
			t.Fatal(err)
		}
	}
	buf := make([]byte, d.PageSize())
	if err := d.ReadPage(0, buf); err != nil {
		t.Fatal(err)
	}
	if buf[0] != 0xCC {
		t.Error("dirty page not written back on eviction")
	}
	if p.Stats().Flushes != 1 {
		t.Errorf("Flushes = %d, want 1", p.Stats().Flushes)
	}
}

func TestAllFramesPinned(t *testing.T) {
	p, _ := newPool(t, 8, 2, LRU)
	f0, err := p.Fix(0)
	if err != nil {
		t.Fatal(err)
	}
	f1, err := p.Fix(1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Fix(2); !errors.Is(err, ErrNoFrames) {
		t.Errorf("Fix with all pinned err = %v, want ErrNoFrames", err)
	}
	// Re-fixing a resident page still works.
	again, err := p.Fix(1)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range []*Frame{f0, f1, again} {
		if err := p.Unfix(f, false); err != nil {
			t.Fatal(err)
		}
	}
}

func TestUnfixUnpinned(t *testing.T) {
	p, _ := newPool(t, 4, 2, LRU)
	f, err := p.Fix(0)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Unfix(f, false); err != nil {
		t.Fatal(err)
	}
	if err := p.Unfix(f, false); !errors.Is(err, ErrNotPinned) {
		t.Errorf("double unfix err = %v, want ErrNotPinned", err)
	}
}

func TestLRUEvictsOldest(t *testing.T) {
	p, _ := newPool(t, 8, 3, LRU)
	for _, id := range []disk.PageID{0, 1, 2} {
		f, err := p.Fix(id)
		if err != nil {
			t.Fatal(err)
		}
		if err := p.Unfix(f, false); err != nil {
			t.Fatal(err)
		}
	}
	// Touch page 0 so page 1 is the LRU victim.
	f, _ := p.Fix(0)
	p.Unfix(f, false)
	f, err := p.Fix(5)
	if err != nil {
		t.Fatal(err)
	}
	p.Unfix(f, false)
	if p.Contains(1) {
		t.Error("LRU evicted the wrong page: 1 still resident")
	}
	if !p.Contains(0) || !p.Contains(2) {
		t.Error("LRU evicted a recently used page")
	}
}

func TestClockEventuallyEvicts(t *testing.T) {
	p, _ := newPool(t, 16, 4, Clock)
	for id := disk.PageID(0); id < 12; id++ {
		f, err := p.Fix(id)
		if err != nil {
			t.Fatalf("Fix(%d): %v", id, err)
		}
		if err := p.Unfix(f, false); err != nil {
			t.Fatal(err)
		}
	}
	if got := p.Stats().Evictions; got != 8 {
		t.Errorf("Evictions = %d, want 8", got)
	}
}

func TestStickyPagesSurviveReplacement(t *testing.T) {
	p, _ := newPool(t, 16, 3, LRU)
	f, err := p.Fix(7)
	if err != nil {
		t.Fatal(err)
	}
	p.Unfix(f, false)
	p.SetSticky(7, true)
	// Stream enough pages to evict everything non-sticky repeatedly.
	for id := disk.PageID(0); id < 6; id++ {
		fr, err := p.Fix(id)
		if err != nil {
			t.Fatal(err)
		}
		p.Unfix(fr, false)
	}
	if !p.Contains(7) {
		t.Error("sticky page evicted while non-sticky candidates existed")
	}
	p.SetSticky(7, false)
	for id := disk.PageID(8); id < 12; id++ {
		fr, err := p.Fix(id)
		if err != nil {
			t.Fatal(err)
		}
		p.Unfix(fr, false)
	}
	if p.Contains(7) {
		t.Error("un-stickied page never evicted")
	}
}

func TestStickyFallbackWhenAllSticky(t *testing.T) {
	p, _ := newPool(t, 16, 2, LRU)
	for _, id := range []disk.PageID{1, 2} {
		f, err := p.Fix(id)
		if err != nil {
			t.Fatal(err)
		}
		p.Unfix(f, false)
		p.SetSticky(id, true)
	}
	// All frames sticky but unpinned: replacement must still succeed.
	f, err := p.Fix(9)
	if err != nil {
		t.Fatalf("Fix with all-sticky pool: %v", err)
	}
	p.Unfix(f, false)
}

func TestFixNew(t *testing.T) {
	p, d := newPool(t, 1, 2, LRU)
	f, err := p.FixNew()
	if err != nil {
		t.Fatal(err)
	}
	if f.ID() != 1 {
		t.Errorf("FixNew page id = %d, want 1", f.ID())
	}
	f.Data()[0] = 0x77
	if err := p.Unfix(f, true); err != nil {
		t.Fatal(err)
	}
	if err := p.FlushAll(); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, d.PageSize())
	if err := d.ReadPage(1, buf); err != nil {
		t.Fatal(err)
	}
	if buf[0] != 0x77 {
		t.Error("FixNew page contents not flushed")
	}
}

func TestPeakPins(t *testing.T) {
	p, _ := newPool(t, 8, 4, LRU)
	var frames []*Frame
	for id := disk.PageID(0); id < 3; id++ {
		f, err := p.Fix(id)
		if err != nil {
			t.Fatal(err)
		}
		frames = append(frames, f)
	}
	for _, f := range frames {
		p.Unfix(f, false)
	}
	if got := p.Stats().PeakPins; got != 3 {
		t.Errorf("PeakPins = %d, want 3", got)
	}
}

func TestCloseDetectsLeakedPins(t *testing.T) {
	p, _ := newPool(t, 4, 2, LRU)
	f, err := p.Fix(0)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Close(); err == nil {
		t.Error("Close with pinned frame succeeded")
	}
	p.Unfix(f, false)
	if err := p.Close(); err != nil {
		t.Errorf("Close after unfix: %v", err)
	}
	if _, err := p.Fix(0); !errors.Is(err, ErrPoolClosed) {
		t.Errorf("Fix after close err = %v, want ErrPoolClosed", err)
	}
}

func TestReadErrorPropagates(t *testing.T) {
	d := disk.New(4)
	p := New(d, 2, LRU)
	boom := errors.New("boom")
	d.SetFault(func(pg disk.PageID, write bool) error {
		if pg == 2 && !write {
			return boom
		}
		return nil
	})
	if _, err := p.Fix(2); !errors.Is(err, boom) {
		t.Errorf("Fix err = %v, want boom", err)
	}
	// The pool must stay usable after the failure.
	f, err := p.Fix(1)
	if err != nil {
		t.Fatalf("pool unusable after read error: %v", err)
	}
	p.Unfix(f, false)
}

func TestHitRate(t *testing.T) {
	var s Stats
	if s.HitRate() != 0 {
		t.Errorf("zero HitRate = %v", s.HitRate())
	}
	s = Stats{Hits: 3, Faults: 1}
	if s.HitRate() != 0.75 {
		t.Errorf("HitRate = %v, want 0.75", s.HitRate())
	}
}

// Invariant check under a random workload: contents read through the
// pool always match what was last written through the pool, for both
// policies and a pool much smaller than the working set.
func TestRandomWorkloadConsistency(t *testing.T) {
	for _, policy := range []Policy{LRU, Clock} {
		t.Run(policy.String(), func(t *testing.T) {
			d := disk.New(64)
			p := New(d, 8, policy)
			rng := rand.New(rand.NewSource(42))
			shadow := make([]byte, 64) // first byte of each page
			for i := 0; i < 2000; i++ {
				id := disk.PageID(rng.Intn(64))
				f, err := p.Fix(id)
				if err != nil {
					t.Fatalf("Fix(%d): %v", id, err)
				}
				if f.Data()[0] != shadow[id] {
					t.Fatalf("page %d: got %d want %d", id, f.Data()[0], shadow[id])
				}
				dirty := rng.Intn(2) == 0
				if dirty {
					shadow[id]++
					f.Data()[0] = shadow[id]
				}
				if err := p.Unfix(f, dirty); err != nil {
					t.Fatal(err)
				}
			}
			if err := p.Close(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// --- fault propagation and retry (fault-tolerant I/O stack) ---

// TestPoolSurfacesDeviceFaults exercises disk.Sim.SetFault through the
// pool layer: an injected read fault must surface from Fix with the
// frame left reusable, and clear once the injector is removed.
func TestPoolSurfacesDeviceFaults(t *testing.T) {
	p, d := newPool(t, 8, 2, LRU)
	boom := errors.New("injected read fault")
	d.SetFault(func(pg disk.PageID, write bool) error {
		if pg == 5 && !write {
			return boom
		}
		return nil
	})
	if _, err := p.Fix(5); !errors.Is(err, boom) {
		t.Fatalf("Fix(5) = %v, want injected fault", err)
	}
	// The failed fix must not leak the frame or poison the table.
	if p.Contains(5) {
		t.Error("faulted page cached in pool")
	}
	if n := p.PinnedFrames(); n != 0 {
		t.Errorf("pinned frames after faulted fix = %d", n)
	}
	// Other pages still work, and the page recovers once the fault
	// clears.
	f, err := p.Fix(3)
	if err != nil {
		t.Fatalf("Fix(3) beside faulted page: %v", err)
	}
	if err := p.Unfix(f, false); err != nil {
		t.Fatal(err)
	}
	d.SetFault(nil)
	f, err = p.Fix(5)
	if err != nil {
		t.Fatalf("Fix(5) after clearing fault: %v", err)
	}
	if err := p.Unfix(f, false); err != nil {
		t.Fatal(err)
	}
}

// TestPoolWriteBackFaultSurfaces injects a write fault and checks that
// a dirty eviction reports it instead of losing the page silently.
func TestPoolWriteBackFaultSurfaces(t *testing.T) {
	p, d := newPool(t, 8, 1, LRU)
	f, err := p.Fix(1)
	if err != nil {
		t.Fatal(err)
	}
	f.Data()[0] = 42
	if err := p.Unfix(f, true); err != nil {
		t.Fatal(err)
	}
	boom := errors.New("injected write fault")
	d.SetFault(func(pg disk.PageID, write bool) error {
		if write {
			return boom
		}
		return nil
	})
	// Evicting the dirty page for another fix must surface the fault.
	if _, err := p.Fix(2); !errors.Is(err, boom) {
		t.Fatalf("Fix(2) over dirty faulted page = %v, want injected fault", err)
	}
	d.SetFault(nil)
	if _, err := p.Fix(2); err != nil {
		t.Fatalf("Fix(2) after clearing fault: %v", err)
	}
}

// TestPoolRetryAbsorbsTransientFaults turns on the pool retry policy:
// transient device faults must be invisible to Fix callers and counted
// in Stats.Retries.
func TestPoolRetryAbsorbsTransientFaults(t *testing.T) {
	p, d := newPool(t, 16, 4, LRU)
	p.SetRetry(disk.RetryPolicy{MaxAttempts: 4})
	remaining := map[disk.PageID]int{3: 2, 7: 1}
	d.SetFault(func(pg disk.PageID, write bool) error {
		if remaining[pg] > 0 {
			remaining[pg]--
			return fmt.Errorf("%w: page %d", disk.ErrTransient, pg)
		}
		return nil
	})
	for _, pg := range []disk.PageID{3, 7, 1} {
		f, err := p.Fix(pg)
		if err != nil {
			t.Fatalf("Fix(%d) with retry policy: %v", pg, err)
		}
		if err := p.Unfix(f, false); err != nil {
			t.Fatal(err)
		}
	}
	if got := p.Stats().Retries; got != 3 {
		t.Errorf("Stats.Retries = %d, want 3", got)
	}
}

// TestPoolRetryGivesUpOnPermanent checks classification: permanent
// faults must not burn retry budget.
func TestPoolRetryGivesUpOnPermanent(t *testing.T) {
	p, d := newPool(t, 8, 2, LRU)
	p.SetRetry(disk.RetryPolicy{MaxAttempts: 5})
	calls := 0
	d.SetFault(func(pg disk.PageID, write bool) error {
		calls++
		return fmt.Errorf("%w: page %d", disk.ErrPermanent, pg)
	})
	if _, err := p.Fix(2); !errors.Is(err, disk.ErrPermanent) {
		t.Fatalf("Fix = %v, want ErrPermanent", err)
	}
	if calls != 1 {
		t.Errorf("permanent fault retried: %d device calls", calls)
	}
	if got := p.Stats().Retries; got != 0 {
		t.Errorf("Stats.Retries = %d, want 0", got)
	}
}
