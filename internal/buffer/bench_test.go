package buffer

import (
	"testing"

	"revelation/internal/disk"
)

func BenchmarkFixHit(b *testing.B) {
	d := disk.New(8)
	p := New(d, 8, LRU)
	f, err := p.Fix(3)
	if err != nil {
		b.Fatal(err)
	}
	p.Unfix(f, false)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f, err := p.Fix(3)
		if err != nil {
			b.Fatal(err)
		}
		p.Unfix(f, false)
	}
}

func BenchmarkFixMissLRU(b *testing.B) {
	benchFixMiss(b, LRU)
}

func BenchmarkFixMissClock(b *testing.B) {
	benchFixMiss(b, Clock)
}

func benchFixMiss(b *testing.B, policy Policy) {
	b.Helper()
	d := disk.New(4096)
	p := New(d, 64, policy)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Stride through far more pages than frames: every Fix evicts.
		id := disk.PageID((i * 127) % 4096)
		f, err := p.Fix(id)
		if err != nil {
			b.Fatal(err)
		}
		p.Unfix(f, false)
	}
}

func BenchmarkFixNewAndFlush(b *testing.B) {
	d := disk.New(0)
	p := New(d, 256, LRU)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f, err := p.FixNew()
		if err != nil {
			b.Fatal(err)
		}
		f.Data()[0] = byte(i)
		if err := p.Unfix(f, true); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if err := p.FlushAll(); err != nil {
		b.Fatal(err)
	}
}
