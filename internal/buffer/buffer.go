// Package buffer implements the Volcano-style buffer manager the
// assembly operator runs against: a fixed pool of page frames with
// pinning, pluggable replacement (LRU or Clock), dirty write-back, and
// hit/fault statistics.
//
// The paper leans on two buffer behaviours that this package makes
// explicit. First, partially assembled complex objects keep their pages
// pinned, so the window size bounds the pool footprint (Section 6.3.3's
// "6·(W−1)+7 pages" calculation). Second, sharing statistics let the
// assembly operator hint that a page holding a shared component should
// survive replacement until its expected references are consumed
// (Section 5); hints are advisory priorities consulted by the replacer.
package buffer

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"revelation/internal/disk"
	"revelation/internal/metrics"
	"revelation/internal/page"
	"revelation/internal/qtrace"
	"revelation/internal/trace"
)

// Common errors.
var (
	ErrNoFrames   = errors.New("buffer: all frames pinned")
	ErrNotPinned  = errors.New("buffer: page not pinned")
	ErrPoolClosed = errors.New("buffer: pool closed")
)

// WAL is the write-ahead log contract the pool enforces durability
// against (implemented by internal/wal.Writer; an interface here so the
// dependency points upward). Append logs a page image and returns its
// LSN; SyncTo makes the log durable through at least lsn. With a WAL
// attached, the pool appends every dirtied page image and syncs the log
// before any data-page write — the WAL-before-data rule that makes
// crashes recoverable.
type WAL interface {
	Append(id disk.PageID, img []byte) (uint64, error)
	SyncTo(lsn uint64) error
}

// Stats captures the pool counters used in the evaluation.
type Stats struct {
	Hits          int64 // requests satisfied without device access
	Faults        int64 // requests that required a device read
	Evictions     int64 // frames reused for a different page
	Flushes       int64 // dirty page write-backs
	Retries       int64 // device accesses repeated after transient faults
	ChecksumFails int64 // page reads rejected by checksum verification
	PeakPins      int   // high-water mark of simultaneously pinned frames

	// Terminal device-access failures, classified. A transient error here
	// means the retry budget ran out while the fault could still clear
	// (e.g. a flapping network connection); a permanent error means the
	// device declared the page unrecoverable. Callers deciding whether to
	// quarantine a page should look at the class, not just the failure.
	TransientErrors int64 // accesses that exhausted retries on a retryable error
	PermanentErrors int64 // accesses that failed with a non-retryable error
}

// HitRate returns Hits / (Hits+Faults), or zero before any request.
func (s Stats) HitRate() float64 {
	total := s.Hits + s.Faults
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// Sub returns the counter difference s - prev, for reporting a run's
// activity from two snapshots of a pool that is never reset. PeakPins
// is a high-water mark, not a counter; the result carries s's value.
func (s Stats) Sub(prev Stats) Stats {
	return Stats{
		Hits:            s.Hits - prev.Hits,
		Faults:          s.Faults - prev.Faults,
		Evictions:       s.Evictions - prev.Evictions,
		Flushes:         s.Flushes - prev.Flushes,
		Retries:         s.Retries - prev.Retries,
		ChecksumFails:   s.ChecksumFails - prev.ChecksumFails,
		PeakPins:        s.PeakPins,
		TransientErrors: s.TransientErrors - prev.TransientErrors,
		PermanentErrors: s.PermanentErrors - prev.PermanentErrors,
	}
}

// Frame is a buffer slot. Callers receive *Frame from Fix and must
// return it with Unfix. The page image is valid while pinned.
type Frame struct {
	id     disk.PageID
	data   []byte
	pins   int
	dirty  bool
	hot    bool // clock reference bit
	stamp  int64
	sticky bool // sharing hint: prefer keeping this page
	index  int  // position in pool.frames
}

// ID returns the page id currently held by the frame.
func (f *Frame) ID() disk.PageID { return f.id }

// Data returns the page image. Only valid while the frame is pinned.
func (f *Frame) Data() []byte { return f.data }

// Policy selects the replacement algorithm.
type Policy int

// Replacement policies.
const (
	LRU Policy = iota
	Clock
)

func (p Policy) String() string {
	switch p {
	case LRU:
		return "lru"
	case Clock:
		return "clock"
	default:
		return fmt.Sprintf("policy(%d)", int(p))
	}
}

// Pool is the buffer manager.
type Pool struct {
	mu     sync.Mutex
	dev    disk.Device
	policy Policy

	frames []*Frame
	table  map[disk.PageID]*Frame
	tick   int64
	hand   int
	retry  disk.RetryPolicy
	tr     *trace.Tracer
	wal    WAL
	closed bool

	// reserved is the admitted frame-quota total (see admission.go);
	// freeCh carries one-token free-frame wakeups for bounded pin
	// waits.
	reserved int
	freeCh   chan struct{}

	// Counters live in atomic metric cells so Stats() and a registry
	// scrape read them without taking the pool lock. Updates still
	// happen under mu on the fix/unfix paths.
	hits          metrics.Counter
	faults        metrics.Counter
	evictions     metrics.Counter
	flushes       metrics.Counter
	retries       metrics.Counter
	checksumFails metrics.Counter
	transientErrs metrics.Counter
	permanentErrs metrics.Counter
	pinned        metrics.Gauge // frames with at least one pin, live
	peakPins      metrics.Gauge // high-water mark of pinned

	// Admission-layer cells (see admission.go).
	reservations     metrics.Gauge   // reservations currently admitted
	reservedFrames   metrics.Gauge   // frame quota currently reserved
	admissionRejects metrics.Counter // reservations refused (load shed)
	pinWaits         metrics.Counter // bounded waits entered on frame exhaustion
	pinWaitTimeouts  metrics.Counter // pin waits ended by ctx deadline/cancel
}

// New creates a pool of n frames over dev using the given policy.
func New(dev disk.Device, n int, policy Policy) *Pool {
	if n < 1 {
		n = 1
	}
	p := &Pool{
		dev:    dev,
		policy: policy,
		table:  make(map[disk.PageID]*Frame, n),
		freeCh: make(chan struct{}, 1),
	}
	for i := 0; i < n; i++ {
		p.frames = append(p.frames, &Frame{
			id:    disk.InvalidPage,
			data:  make([]byte, dev.PageSize()),
			index: i,
		})
	}
	return p
}

// Size returns the number of frames in the pool.
func (p *Pool) Size() int { return len(p.frames) }

// Device returns the underlying device.
func (p *Pool) Device() disk.Device { return p.dev }

// Stats returns a snapshot of the counters. It does not take the pool
// lock — the counters are atomic cells — so it is safe to call from a
// metrics scraper while fixes are in flight.
func (p *Pool) Stats() Stats {
	return Stats{
		Hits:            p.hits.Value(),
		Faults:          p.faults.Value(),
		Evictions:       p.evictions.Value(),
		Flushes:         p.flushes.Value(),
		Retries:         p.retries.Value(),
		ChecksumFails:   p.checksumFails.Value(),
		PeakPins:        int(p.peakPins.Value()),
		TransientErrors: p.transientErrs.Value(),
		PermanentErrors: p.permanentErrs.Value(),
	}
}

// ResetStats zeroes the counters.
func (p *Pool) ResetStats() {
	p.hits.Reset()
	p.faults.Reset()
	p.evictions.Reset()
	p.flushes.Reset()
	p.retries.Reset()
	p.checksumFails.Reset()
	p.transientErrs.Reset()
	p.permanentErrs.Reset()
	p.peakPins.Reset()
}

// RegisterMetrics attaches the pool's counters to r under the
// asm_buffer_* families, labeled with the pool name. The registry
// observes the same cells the fix path updates.
func (p *Pool) RegisterMetrics(r *metrics.Registry, pool string) {
	r.Attach("asm_buffer_hits_total", "Requests satisfied without device access.", &p.hits, "pool", pool)
	r.Attach("asm_buffer_misses_total", "Requests that required a device read.", &p.faults, "pool", pool)
	r.Attach("asm_buffer_evictions_total", "Frames reused for a different page.", &p.evictions, "pool", pool)
	r.Attach("asm_buffer_flushes_total", "Dirty page write-backs.", &p.flushes, "pool", pool)
	r.Attach("asm_buffer_retries_total", "Device accesses repeated after transient faults.", &p.retries, "pool", pool)
	r.Attach("asm_checksum_failures_total", "Page reads rejected by checksum verification.", &p.checksumFails, "pool", pool)
	r.Attach("asm_buffer_io_errors_total", "Terminal device-access failures by class.", &p.transientErrs, "pool", pool, "class", "transient")
	r.Attach("asm_buffer_io_errors_total", "Terminal device-access failures by class.", &p.permanentErrs, "pool", pool, "class", "permanent")
	r.Attach("asm_buffer_pinned_frames", "Frames with at least one pin, live.", &p.pinned, "pool", pool)
	r.Attach("asm_buffer_peak_pinned_frames", "High-water mark of pinned frames.", &p.peakPins, "pool", pool)
	r.Attach("asm_buffer_frames", "Total frames in the pool.",
		metrics.GaugeFunc(func() int64 { return int64(p.Size()) }), "pool", pool)
	r.Attach("asm_buffer_reservations", "Query frame reservations currently admitted.", &p.reservations, "pool", pool)
	r.Attach("asm_buffer_reserved_frames", "Frame quota currently reserved by admitted queries.", &p.reservedFrames, "pool", pool)
	r.Attach("asm_buffer_admission_rejects_total", "Frame reservations refused because the pool was oversubscribed.", &p.admissionRejects, "pool", pool)
	r.Attach("asm_buffer_pin_waits_total", "Bounded waits entered because every frame was pinned.", &p.pinWaits, "pool", pool)
	r.Attach("asm_buffer_pin_wait_timeouts_total", "Pin waits ended by context cancellation or deadline.", &p.pinWaitTimeouts, "pool", pool)
}

// SetTracer installs an event tracer on the pool: every hit, miss
// (device read), eviction, flush, and unfix emits a buffer event, and
// fix latencies feed the tracer's in-memory histograms. Pass nil to
// disable tracing; the disabled hot path pays one branch.
func (p *Pool) SetTracer(t *trace.Tracer) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.tr = t
}

// SetWAL attaches a write-ahead log to the pool. From then on every
// page image dirtied through Unfix (and every page born through FixNew)
// is appended to the log, and no data-page write leaves the pool before
// the log is durable through that page's LSN. Pass nil to detach.
func (p *Pool) SetWAL(w WAL) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.wal = w
}

// SetRetry installs a retry-with-backoff policy on the pool's device
// accesses: reads and write-backs that fail with a transient error
// (disk.Retryable) are repeated within the policy's budget, so
// transient faults are absorbed below the pool's callers. The zero
// policy (the default) disables retries.
//
// Retries run while the pool lock is held — consistent with the rest
// of the pool, whose device I/O is synchronous under the lock — so
// backoffs should stay in the microsecond-to-millisecond range.
func (p *Pool) SetRetry(rp disk.RetryPolicy) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.retry = rp
}

// readLocked reads a page under the retry policy, attributing the
// device read and any absorbed transient retries to the query span in
// ctx (nil ctx: unattributed). Caller holds mu.
func (p *Pool) readLocked(ctx context.Context, id disk.PageID, buf []byte) error {
	retries, err := p.retry.Do(func() error { return disk.ReadPageCtx(ctx, p.dev, id, buf) })
	p.retries.Add(int64(retries))
	if retries > 0 {
		qtrace.From(ctx).OnIORetries(int64(retries))
	}
	p.classifyErr(err)
	return err
}

// writeLocked writes a page under the retry policy. Caller holds mu.
func (p *Pool) writeLocked(id disk.PageID, buf []byte) error {
	retries, err := p.retry.Do(func() error { return p.dev.WritePage(id, buf) })
	p.retries.Add(int64(retries))
	p.classifyErr(err)
	return err
}

// classifyErr counts a terminal device-access failure by class. An
// error that is still disk.Retryable after the budget ran out is
// transient — the page is fine, the path to it was flapping — while
// anything else is treated as permanent damage.
func (p *Pool) classifyErr(err error) {
	if err == nil {
		return
	}
	if disk.Retryable(err) {
		p.transientErrs.Inc()
	} else {
		p.permanentErrs.Inc()
	}
}

// PinnedFrames counts currently pinned frames. The count is maintained
// as a live gauge on pin transitions, so no lock or scan is needed.
func (p *Pool) PinnedFrames() int { return int(p.pinned.Value()) }

// Fix pins page id into a frame, reading it from the device on a miss,
// and returns the frame. Every successful Fix must be paired with an
// Unfix.
func (p *Pool) Fix(id disk.PageID) (*Frame, error) {
	return p.fix(nil, id)
}

// FixAs is Fix with per-query attribution: the hit or miss (and the
// device read behind a miss) is charged to the query span carried in
// ctx, and the buffer trace events are stamped with its query ID.
// Unlike FixCtx it never waits — frame exhaustion still returns
// ErrNoFrames immediately, so congestion handling upstream (shedding,
// window shrinking) is unchanged. A nil ctx behaves exactly like Fix.
func (p *Pool) FixAs(ctx context.Context, id disk.PageID) (*Frame, error) {
	return p.fix(ctx, id)
}

func (p *Pool) fix(ctx context.Context, id disk.PageID) (*Frame, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return nil, ErrPoolClosed
	}
	sp := qtrace.From(ctx)
	p.tick++
	var start time.Time
	if p.tr != nil {
		start = time.Now()
	}
	if f, ok := p.table[id]; ok {
		f.pins++
		if f.pins == 1 {
			p.pinned.Add(1)
		}
		f.hot = true
		f.stamp = p.tick
		p.hits.Inc()
		sp.OnHit()
		p.notePins()
		if p.tr != nil {
			p.tr.BufferQ(trace.KindHit, int64(id), 0, sp.QID())
			p.tr.Observe("buffer/hit", time.Since(start))
		}
		return f, nil
	}
	f, err := p.victimLocked()
	if err != nil {
		return nil, err
	}
	if err := p.readLocked(ctx, id, f.data); err != nil {
		// Leave the frame free for the next caller.
		f.id = disk.InvalidPage
		return nil, err
	}
	if err := page.Verify(f.data); err != nil {
		// A torn or corrupt image must never be interpreted: reject the
		// read and leave the frame free. Recovery (internal/wal) is the
		// only path that may overwrite such a page.
		f.id = disk.InvalidPage
		p.checksumFails.Inc()
		if p.tr != nil {
			p.tr.ChecksumFail(int64(id))
		}
		return nil, fmt.Errorf("buffer: fix page %d: %w", id, err)
	}
	f.id = id
	f.pins = 1
	p.pinned.Add(1)
	f.dirty = false
	f.hot = true
	f.sticky = false
	f.stamp = p.tick
	p.table[id] = f
	p.faults.Inc()
	sp.OnMiss()
	p.notePins()
	if p.tr != nil {
		p.tr.BufferQ(trace.KindMiss, int64(id), 0, sp.QID())
		p.tr.Observe("buffer/miss", time.Since(start))
	}
	return f, nil
}

// FixNew allocates a fresh page on the device, pins it with zeroed
// contents, and returns the frame. The page is marked dirty so the
// zero image reaches the device on eviction or flush.
func (p *Pool) FixNew() (*Frame, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return nil, ErrPoolClosed
	}
	id, err := p.dev.Allocate(1)
	if err != nil {
		return nil, err
	}
	f, err := p.victimLocked()
	if err != nil {
		return nil, err
	}
	p.tick++
	for i := range f.data {
		f.data[i] = 0
	}
	f.id = id
	f.pins = 1
	p.pinned.Add(1)
	f.dirty = true
	f.hot = true
	f.sticky = false
	f.stamp = p.tick
	p.table[id] = f
	p.notePins()
	if p.wal != nil {
		// Log the page's birth image now: a page created through FixNew
		// but never unfixed dirty would otherwise reach the device with
		// no WAL record behind it, leaving a torn flush unrecoverable.
		if _, err := p.wal.Append(id, f.data); err != nil {
			return nil, fmt.Errorf("buffer: wal append new page %d: %w", id, err)
		}
	}
	return f, nil
}

func (p *Pool) notePins() {
	p.peakPins.SetMax(p.pinned.Value())
}

// victimLocked finds a frame to (re)use: an empty frame if available,
// otherwise an unpinned victim chosen by the policy. Sticky frames are
// skipped unless every candidate is sticky.
func (p *Pool) victimLocked() (*Frame, error) {
	for _, f := range p.frames {
		if f.id == disk.InvalidPage {
			return f, nil
		}
	}
	var victim *Frame
	switch p.policy {
	case Clock:
		victim = p.clockVictim(false)
		if victim == nil {
			victim = p.clockVictim(true)
		}
	default:
		victim = p.lruVictim(false)
		if victim == nil {
			victim = p.lruVictim(true)
		}
	}
	if victim == nil {
		return nil, ErrNoFrames
	}
	if victim.dirty {
		if err := p.flushFrameLocked(victim); err != nil {
			return nil, err
		}
	}
	if p.tr != nil {
		p.tr.Buffer(trace.KindEvict, int64(victim.id), 0)
	}
	delete(p.table, victim.id)
	victim.id = disk.InvalidPage
	victim.dirty = false
	victim.sticky = false
	p.evictions.Inc()
	return victim, nil
}

func (p *Pool) lruVictim(allowSticky bool) *Frame {
	var victim *Frame
	for _, f := range p.frames {
		if f.pins > 0 {
			continue
		}
		if f.sticky && !allowSticky {
			continue
		}
		if victim == nil || f.stamp < victim.stamp {
			victim = f
		}
	}
	return victim
}

func (p *Pool) clockVictim(allowSticky bool) *Frame {
	n := len(p.frames)
	// Two full sweeps: the first clears reference bits.
	for i := 0; i < 2*n; i++ {
		f := p.frames[p.hand]
		p.hand = (p.hand + 1) % n
		if f.pins > 0 {
			continue
		}
		if f.sticky && !allowSticky {
			continue
		}
		if f.hot {
			f.hot = false
			continue
		}
		return f
	}
	return nil
}

// Unfix releases one pin on the frame; setDirty marks the page as
// modified so it is written back before reuse.
func (p *Pool) Unfix(f *Frame, setDirty bool) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if f.pins <= 0 {
		return fmt.Errorf("%w: page %d", ErrNotPinned, f.id)
	}
	f.pins--
	if f.pins == 0 {
		p.pinned.Add(-1)
		// A frame became evictable: wake one bounded pin waiter.
		p.notifyFree()
	}
	if setDirty {
		f.dirty = true
		if p.wal != nil {
			// Log the modified image before anyone can flush it. Append
			// stamps the image's LSN and checksum in place, so the
			// frame and the log hold byte-identical images.
			if _, err := p.wal.Append(f.id, f.data); err != nil {
				return fmt.Errorf("buffer: wal append page %d: %w", f.id, err)
			}
		}
	}
	if p.tr != nil {
		dirty := int64(0)
		if setDirty {
			dirty = 1
		}
		p.tr.Buffer(trace.KindUnfix, int64(f.id), dirty)
	}
	return nil
}

// SetSticky marks or clears the sharing hint on a resident page: a
// sticky page is passed over by the replacer while any non-sticky
// candidate exists. Missing pages are ignored (the hint is advisory).
func (p *Pool) SetSticky(id disk.PageID, sticky bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if f, ok := p.table[id]; ok {
		f.sticky = sticky
	}
}

// Contains reports whether the page is resident (pinned or not).
func (p *Pool) Contains(id disk.PageID) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	_, ok := p.table[id]
	return ok
}

// FlushAll writes every dirty resident page back to the device.
// Pinned pages are flushed too (their pins remain).
func (p *Pool) FlushAll() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.flushLocked()
}

func (p *Pool) flushLocked() error {
	for _, f := range p.frames {
		if f.id == disk.InvalidPage || !f.dirty {
			continue
		}
		if err := p.flushFrameLocked(f); err != nil {
			return err
		}
	}
	return nil
}

// flushFrameLocked writes one dirty frame back, enforcing the
// WAL-before-data rule (the log must be durable through the page's LSN
// before the page itself may reach the device) and stamping the image's
// checksum on its way out. Caller holds mu; f is dirty.
func (p *Pool) flushFrameLocked(f *Frame) error {
	if p.wal != nil {
		if lsn := page.Wrap(f.data).LSN(); lsn > 0 {
			if err := p.wal.SyncTo(lsn); err != nil {
				return fmt.Errorf("buffer: wal sync before flush of page %d: %w", f.id, err)
			}
		}
	}
	page.Stamp(f.data)
	if err := p.writeLocked(f.id, f.data); err != nil {
		return err
	}
	f.dirty = false
	p.flushes.Inc()
	if p.tr != nil {
		p.tr.Buffer(trace.KindFlush, int64(f.id), 0)
	}
	return nil
}

// EvictAll flushes every dirty page and empties the pool, so the next
// accesses start cold. Experiments call it after database generation:
// the paper measures disk behaviour, which a warm pool would hide. It
// fails if any frame is pinned.
func (p *Pool) EvictAll() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, f := range p.frames {
		if f.pins > 0 {
			return fmt.Errorf("buffer: evict-all with page %d pinned", f.id)
		}
	}
	if err := p.flushLocked(); err != nil {
		return err
	}
	for _, f := range p.frames {
		if f.id != disk.InvalidPage {
			delete(p.table, f.id)
			f.id = disk.InvalidPage
			f.hot = false
			f.sticky = false
		}
	}
	p.notifyFree()
	return nil
}

// Close flushes dirty pages and marks the pool unusable. It fails if
// any frame is still pinned, which indicates a fix/unfix imbalance.
// The pool is marked closed only after a successful flush: a Close
// that fails to write dirty pages back leaves the pool open, so the
// caller can retry (or FlushAll after clearing the fault) instead of
// silently losing the unflushed data to a second Close's "already
// closed" success path.
func (p *Pool) Close() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return nil
	}
	for _, f := range p.frames {
		if f.pins > 0 {
			return fmt.Errorf("buffer: close with page %d still pinned", f.id)
		}
	}
	if p.reserved > 0 {
		// A live reservation means some query never released its quota
		// — the same class of bookkeeping bug as a leaked pin.
		return fmt.Errorf("buffer: close with %d frames still reserved", p.reserved)
	}
	if err := p.flushLocked(); err != nil {
		return err
	}
	p.closed = true
	return nil
}
