package buffer

// Error-path regression tests: a pool that hits an error must refuse
// the operation without corrupting its frame table. These pin down two
// paths the crash-consistency work leans on — a failed flush must not
// let Close mark the pool closed (dropping dirty pages silently), and a
// double Unfix must not push a pin count negative.

import (
	"errors"
	"testing"

	"revelation/internal/disk"
)

func TestCloseAfterFailedFlushKeepsState(t *testing.T) {
	sim := disk.New(4)
	dev := disk.NewFaulty(sim, disk.FaultConfig{})
	p := New(dev, 2, LRU)

	f, err := p.Fix(0)
	if err != nil {
		t.Fatal(err)
	}
	f.Data()[64] = 0xAB
	if err := p.Unfix(f, true); err != nil {
		t.Fatal(err)
	}

	// Arm permanent write faults: every flush now fails.
	dev.SetConfig(disk.FaultConfig{Seed: 1, PermanentRate: 1, Writes: true})
	if err := p.FlushAll(); err == nil {
		t.Fatal("FlushAll over a dead device succeeded")
	}
	if err := p.Close(); err == nil {
		t.Fatal("Close after a failed flush reported success — the dirty page would be dropped")
	}

	// The pool must remain open and intact: the dirty page is still
	// resident with its contents, and pin accounting still works.
	f2, err := p.Fix(0)
	if err != nil {
		t.Fatalf("Fix after failed close: %v", err)
	}
	if f2.Data()[64] != 0xAB {
		t.Error("dirty page contents lost across the failed flush")
	}
	if err := p.Unfix(f2, false); err != nil {
		t.Fatal(err)
	}

	// Disarm the faults: the same Close must now flush and succeed.
	dev.SetConfig(disk.FaultConfig{})
	if err := p.Close(); err != nil {
		t.Fatalf("Close after disarming faults: %v", err)
	}
	buf := make([]byte, sim.PageSize())
	if err := sim.ReadPage(0, buf); err != nil {
		t.Fatal(err)
	}
	if buf[64] != 0xAB {
		t.Error("dirty page never reached the device on the successful close")
	}
}

func TestDoubleUnfixKeepsFrameTable(t *testing.T) {
	p, _ := newPool(t, 4, 2, LRU)
	f, err := p.Fix(1)
	if err != nil {
		t.Fatal(err)
	}
	f.Data()[0] = 7
	if err := p.Unfix(f, true); err != nil {
		t.Fatal(err)
	}
	if err := p.Unfix(f, true); !errors.Is(err, ErrNotPinned) {
		t.Fatalf("double unfix = %v, want ErrNotPinned", err)
	}
	// The frame table must be intact: the page resolves to the same
	// frame with its data, and the pin count is exactly one again.
	f2, err := p.Fix(1)
	if err != nil {
		t.Fatalf("Fix after double unfix: %v", err)
	}
	if f2 != f {
		t.Error("page 1 moved to a different frame after a rejected unfix")
	}
	if f2.Data()[0] != 7 {
		t.Error("page contents lost after a rejected unfix")
	}
	if n := p.PinnedFrames(); n != 1 {
		t.Errorf("pinned frames = %d, want 1", n)
	}
	if err := p.Unfix(f2, false); err != nil {
		t.Fatal(err)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestErrorClassification: terminal device failures are counted by
// class so callers can tell a flapping path (transient exhausted)
// from a dead page (permanent).
func TestErrorClassification(t *testing.T) {
	sim := disk.New(8)
	dev := disk.NewFaulty(sim, disk.FaultConfig{})
	p := New(dev, 4, LRU)
	p.SetRetry(disk.RetryPolicy{MaxAttempts: 2})

	// Endless transient faults on every read: the retry budget runs
	// out while the error is still retryable.
	dev.SetConfig(disk.FaultConfig{Seed: 1, TransientRate: 1, TransientFailures: 100})
	if _, err := p.Fix(0); err == nil || !disk.Retryable(err) {
		t.Fatalf("Fix = %v, want retryable error", err)
	}
	st := p.Stats()
	if st.TransientErrors != 1 || st.PermanentErrors != 0 {
		t.Errorf("after transient exhaustion: %+v", st)
	}

	// Permanent faults classify on the other side.
	dev.SetConfig(disk.FaultConfig{Seed: 1, PermanentRate: 1})
	if _, err := p.Fix(1); err == nil || disk.Retryable(err) {
		t.Fatalf("Fix = %v, want permanent error", err)
	}
	st = p.Stats()
	if st.TransientErrors != 1 || st.PermanentErrors != 1 {
		t.Errorf("after permanent fault: %+v", st)
	}

	// A clean read counts in neither class.
	dev.SetConfig(disk.FaultConfig{})
	f, err := p.Fix(2)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Unfix(f, false); err != nil {
		t.Fatal(err)
	}
	st = p.Stats()
	if st.TransientErrors != 1 || st.PermanentErrors != 1 {
		t.Errorf("clean read changed error classes: %+v", st)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
}
