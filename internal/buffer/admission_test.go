package buffer

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"revelation/internal/disk"
)

// admissionPool builds a small pool over a simulated device.
func admissionPool(t *testing.T, frames, pages int) *Pool {
	t.Helper()
	p, _ := newPool(t, pages, frames, LRU)
	return p
}

func TestReserveAccounting(t *testing.T) {
	p := admissionPool(t, 8, 8)
	r1, err := p.Reserve(5)
	if err != nil {
		t.Fatal(err)
	}
	if got := p.ReservedFrames(); got != 5 {
		t.Fatalf("reserved %d, want 5", got)
	}
	r2, err := p.Reserve(3)
	if err != nil {
		t.Fatal(err)
	}
	// 5 + 3 == 8: full. The next reservation must shed, not queue.
	if _, err := p.Reserve(1); !errors.Is(err, ErrAdmission) {
		t.Fatalf("oversubscribed Reserve: %v, want ErrAdmission", err)
	}
	r1.Release()
	r1.Release() // idempotent
	if got := p.ReservedFrames(); got != 3 {
		t.Fatalf("after release: reserved %d, want 3", got)
	}
	if r1.Frames() != 0 || r2.Frames() != 3 {
		t.Fatalf("quota views: r1=%d r2=%d, want 0 and 3", r1.Frames(), r2.Frames())
	}
	r2.Release()
	if err := p.Close(); err != nil {
		t.Fatalf("close after full release: %v", err)
	}
}

func TestCloseRefusesLeakedReservation(t *testing.T) {
	p := admissionPool(t, 4, 4)
	r, err := p.Reserve(2)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Close(); err == nil {
		t.Fatal("Close succeeded with a live reservation")
	}
	r.Release()
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Reserve(1); !errors.Is(err, ErrPoolClosed) {
		t.Fatalf("Reserve on closed pool: %v, want ErrPoolClosed", err)
	}
}

// TestFixCtxWaitsForFrame: with every frame pinned, FixCtx must wait
// for an unfix instead of returning ErrNoFrames, and succeed once a
// frame frees.
func TestFixCtxWaitsForFrame(t *testing.T) {
	p := admissionPool(t, 2, 4)
	f0, err := p.Fix(0)
	if err != nil {
		t.Fatal(err)
	}
	f1, err := p.Fix(1)
	if err != nil {
		t.Fatal(err)
	}
	// Plain Fix keeps the old contract: immediate congestion error.
	if _, err := p.Fix(2); !errors.Is(err, ErrNoFrames) {
		t.Fatalf("Fix over full pool: %v, want ErrNoFrames", err)
	}
	done := make(chan error, 1)
	go func() {
		f, err := p.FixCtx(context.Background(), 2)
		if err == nil {
			err = p.Unfix(f, false)
		}
		done <- err
	}()
	time.Sleep(20 * time.Millisecond) // let the waiter park
	if err := p.Unfix(f1, false); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("waited FixCtx: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("FixCtx did not wake after a frame freed")
	}
	if err := p.Unfix(f0, false); err != nil {
		t.Fatal(err)
	}
}

// TestFixCtxDeadlineBoundsWait: the wait ends at the context deadline
// with an error that carries both the lifecycle cause and the
// congestion signal.
func TestFixCtxDeadlineBoundsWait(t *testing.T) {
	p := admissionPool(t, 1, 2)
	f0, err := p.Fix(0)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err = p.FixCtx(ctx, 1)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("FixCtx past deadline: %v, want context.DeadlineExceeded", err)
	}
	if !errors.Is(err, ErrNoFrames) {
		t.Fatalf("FixCtx error %v does not wrap ErrNoFrames", err)
	}
	if waited := time.Since(start); waited > 3*time.Second {
		t.Fatalf("FixCtx waited %v past a 30ms deadline", waited)
	}
	if err := p.Unfix(f0, false); err != nil {
		t.Fatal(err)
	}
}

// TestTwoQueriesTinyPoolBothComplete is the satellite regression test:
// two concurrent pin workloads over a pool with fewer frames than
// their combined demand must both run to completion — bounded waits
// resolve the contention with no deadlock and no starvation.
func TestTwoQueriesTinyPoolBothComplete(t *testing.T) {
	const pages = 16
	p := admissionPool(t, 3, pages)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	query := func(start int) error {
		for round := 0; round < 50; round++ {
			for i := 0; i < pages; i++ {
				f, err := p.FixCtx(ctx, disk.PageID((start+i)%pages))
				if err != nil {
					return err
				}
				// Hold two pins at a time to force overlap: combined
				// worst case (4) exceeds the 3-frame pool.
				g, err := p.FixCtx(ctx, disk.PageID((start+i+1)%pages))
				if err != nil {
					p.Unfix(f, false)
					return err
				}
				if err := p.Unfix(g, false); err != nil {
					return err
				}
				if err := p.Unfix(f, false); err != nil {
					return err
				}
			}
		}
		return nil
	}

	var wg sync.WaitGroup
	errs := make([]error, 2)
	for q := 0; q < 2; q++ {
		wg.Add(1)
		go func(q int) {
			defer wg.Done()
			errs[q] = query(q * pages / 2)
		}(q)
	}
	wg.Wait()
	for q, err := range errs {
		if err != nil {
			t.Errorf("query %d: %v", q, err)
		}
	}
	if got := p.PinnedFrames(); got != 0 {
		t.Fatalf("leaked pins: %d frames still pinned", got)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
}
