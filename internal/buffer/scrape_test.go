package buffer

import (
	"strings"
	"sync"
	"testing"

	"revelation/internal/disk"
	"revelation/internal/metrics"
)

// TestConcurrentScrape pins down the Stats() contract under -race:
// snapshots and registry expositions must be safe while fixes, unfixes,
// and evictions are in flight on other goroutines.
func TestConcurrentScrape(t *testing.T) {
	dev := disk.New(64)
	pool := New(dev, 8, LRU)
	reg := metrics.NewRegistry()
	pool.RegisterMetrics(reg, "scrape")
	disk.RegisterMetrics(dev, reg, "scrape")

	const workers, opsPerWorker = 4, 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < opsPerWorker; i++ {
				f, err := pool.Fix(disk.PageID((w*opsPerWorker + i) % 64))
				if err != nil {
					t.Error(err)
					return
				}
				if err := pool.Unfix(f, i%7 == 0); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	for i := 0; i < 50; i++ {
		st := pool.Stats()
		if st.Hits < 0 || st.Faults < 0 {
			t.Errorf("negative counters: %+v", st)
		}
		var sb strings.Builder
		if err := reg.WriteText(&sb); err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(sb.String(), "asm_buffer_hits_total") {
			t.Fatal("exposition missing buffer family")
		}
	}
	wg.Wait()

	st := pool.Stats()
	if got := st.Hits + st.Faults; got != workers*opsPerWorker {
		t.Errorf("hits+faults = %d, want %d", got, workers*opsPerWorker)
	}
	if pool.PinnedFrames() != 0 {
		t.Errorf("pinned frames after drain = %d, want 0", pool.PinnedFrames())
	}
	if got := reg.Snapshot().Value("asm_buffer_hits_total", "pool", "scrape"); got != st.Hits {
		t.Errorf("registry hits %d != stats hits %d", got, st.Hits)
	}
}
