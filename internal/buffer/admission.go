// Admission control and bounded pin waits: the query-lifecycle face of
// the buffer pool.
//
// N concurrent queries over one pool used to fight for frames with no
// arbitration: overload surfaced as ErrNoFrames storms (each query
// shedding and retrying) or, with every query pinning its window,
// as livelock. Two mechanisms replace that:
//
//   - Reservations. A query reserves a minimum frame quota before it
//     starts (assembly.Options.ReserveFrames does this at Open). The
//     pool admits reservations only while the quotas sum to at most the
//     frame count, so every admitted query's worst-case working set
//     fits in aggregate; the excess query gets ErrAdmission immediately
//     — a clean shed signal the serve layer turns into HTTP 503 —
//     instead of joining a livelock. Reservations are bookkeeping, not
//     partitions: frames are still allocated by demand, which keeps the
//     single-query hot path untouched.
//
//   - Bounded pin waits. FixCtx turns frame exhaustion from an instant
//     ErrNoFrames into a wait — woken by the next freed frame, backed
//     off exponentially, and bounded by the query's context — so
//     transient contention between admitted queries resolves by
//     waiting rather than by error-path retries. The caller's own pins
//     are its responsibility: a query that might be holding the frames
//     it is waiting for should shed first and wait second (the
//     assembly operator does exactly that).
package buffer

import (
	"context"
	"errors"
	"fmt"
	"time"

	"revelation/internal/disk"
)

// ErrAdmission rejects a reservation that would oversubscribe the
// pool. It is the load-shed signal: the caller should fail the query
// (or return 503) rather than run it degraded.
var ErrAdmission = errors.New("buffer: admission rejected, frame reservations exhausted")

// Reservation is a query's admitted frame quota. Release returns the
// quota to the pool; it is idempotent and must run on every query exit
// path, error or not (the assembly operator releases in Close).
type Reservation struct {
	pool   *Pool
	frames int
}

// Reserve admits a query that needs at least frames buffer frames,
// failing with ErrAdmission when the pool's outstanding quotas cannot
// accommodate it. Values < 1 reserve 1.
func (p *Pool) Reserve(frames int) (*Reservation, error) {
	if frames < 1 {
		frames = 1
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return nil, ErrPoolClosed
	}
	if p.reserved+frames > len(p.frames) {
		p.admissionRejects.Inc()
		return nil, fmt.Errorf("%w: %d reserved + %d requested > %d frames",
			ErrAdmission, p.reserved, frames, len(p.frames))
	}
	p.reserved += frames
	p.reservations.Add(1)
	p.reservedFrames.Set(int64(p.reserved))
	return &Reservation{pool: p, frames: frames}, nil
}

// Release returns the reservation's quota to the pool and wakes one
// frame waiter (capacity may have opened for a parked admission
// retry). Safe to call more than once and on a nil reservation.
func (r *Reservation) Release() {
	if r == nil {
		return
	}
	p := r.pool
	p.mu.Lock()
	if r.frames > 0 {
		p.reserved -= r.frames
		r.frames = 0
		p.reservations.Add(-1)
		p.reservedFrames.Set(int64(p.reserved))
	}
	p.mu.Unlock()
	p.notifyFree()
}

// Frames reports the quota still held (0 after Release).
func (r *Reservation) Frames() int {
	if r == nil {
		return 0
	}
	r.pool.mu.Lock()
	defer r.pool.mu.Unlock()
	return r.frames
}

// ReservedFrames reports the total frame quota currently reserved.
func (p *Pool) ReservedFrames() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.reserved
}

// notifyFree wakes one FixCtx/WaitFrame waiter. The channel holds one
// token: a wakeup already pending absorbs further notifications, and
// woken waiters re-check under the lock, so lost-wakeup races only
// cost a backoff interval, never a deadline.
func (p *Pool) notifyFree() {
	select {
	case p.freeCh <- struct{}{}:
	default:
	}
}

// pin-wait tuning: waits start at waitBase and double to waitCap; the
// free-frame notification short-circuits the wait whenever a pin
// actually drains, so the backoff only paces the re-check under
// sustained exhaustion.
const (
	waitBase = 100 * time.Microsecond
	waitCap  = 5 * time.Millisecond
)

// FixCtx is Fix with the pin wait bounded by ctx instead of failing
// immediately: when every frame is pinned, it waits for a frame to
// free (or for the backoff to elapse) and retries, until the context
// is cancelled or its deadline passes. The terminal error wraps the
// context's error, so lifecycle handling upstream can tell a deadline
// from a device fault; it also wraps ErrNoFrames, preserving the
// congestion signal. A nil ctx behaves exactly like Fix.
func (p *Pool) FixCtx(ctx context.Context, id disk.PageID) (*Frame, error) {
	f, err := p.fix(ctx, id)
	if err == nil || ctx == nil || !errors.Is(err, ErrNoFrames) {
		return f, err
	}
	backoff := waitBase
	for {
		p.pinWaits.Inc()
		if werr := p.waitFree(ctx, backoff); werr != nil {
			p.pinWaitTimeouts.Inc()
			return nil, fmt.Errorf("buffer: fix page %d: pool exhausted while waiting (%w): %w", id, ErrNoFrames, werr)
		}
		f, err = p.fix(ctx, id)
		if err == nil || !errors.Is(err, ErrNoFrames) {
			return f, err
		}
		if backoff < waitCap {
			backoff *= 2
		}
	}
}

// WaitFrame blocks until a frame may have freed, max elapses, or the
// context ends, returning the context's error in the last case. The
// assembly operator calls it after shedding its own pins: waiting on
// the other queries' unfixes replaces spin-requeueing the faulted
// reference.
func (p *Pool) WaitFrame(ctx context.Context, max time.Duration) error {
	if max <= 0 {
		max = waitCap
	}
	return p.waitFree(ctx, max)
}

// waitFree parks until a free-frame notification, the timeout, or
// context end (the only case that returns an error).
func (p *Pool) waitFree(ctx context.Context, d time.Duration) error {
	timer := time.NewTimer(d)
	defer timer.Stop()
	if ctx == nil {
		select {
		case <-p.freeCh:
		case <-timer.C:
		}
		return nil
	}
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-p.freeCh:
		return nil
	case <-timer.C:
		return nil
	}
}
