package pagesvc

import (
	"context"
	"encoding/binary"
	"fmt"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"revelation/internal/disk"
	"revelation/internal/metrics"
	"revelation/internal/qtrace"
	"revelation/internal/trace"
)

// ClientConfig tunes a Client.
type ClientConfig struct {
	// Primary is the address writes (and reads, until failover) go to.
	Primary string
	// Replicas are read-only fallbacks: hedge targets for straggling
	// reads and failover targets when the primary stops answering.
	Replicas []string
	// Dev is the wire device index this client addresses (DataDev for
	// pages, WALDev for the log).
	Dev byte
	// Timeout bounds each request round trip; zero means 2s.
	Timeout time.Duration
	// Retry absorbs transient failures (network errors, timeouts,
	// remote transient faults) with exponential backoff. The zero
	// policy disables retries.
	Retry disk.RetryPolicy
	// JitterSeed seeds the full jitter applied to retry/reconnect
	// backoff, so a fleet of clients kicked by the same outage
	// desynchronizes instead of re-dialing in lockstep. Zero derives a
	// per-client seed from the primary address; tests set it explicitly
	// for a reproducible delay sequence.
	JitterSeed int64
	// Label overrides the device label this client's asm_net_* metric
	// series carry; empty means "net<Dev>". A sharded fleet gives each
	// member client its own label so their series do not collide in one
	// registry.
	Label string
	// HedgeAfter, when positive, hedges a read to a replica after a
	// fixed delay. When zero, the delay adapts: a read is hedged once
	// it outlives HedgeQuantile of recent read latencies (doubled),
	// after a small warm-up sample.
	HedgeAfter time.Duration
	// HedgeQuantile is the adaptive straggler threshold; zero means
	// 0.9.
	HedgeQuantile float64
	// LSNFloor, when set, is the staleness guard consulted at
	// failover: only replicas whose applied LSN has reached the floor
	// are eligible. Wire it to the local wal.Writer's DurableLSN so a
	// failover can never travel back before the caller's own durable
	// writes. Nil means any replica is eligible.
	LSNFloor func() uint64
	// Tracer receives net-layer events (send, recv, hedge, failover,
	// reconnect); nil disables them.
	Tracer *trace.Tracer
	// Registry, when set, receives the client's counters under
	// asm_net_*.
	Registry *metrics.Registry
}

// endpoint is one server address plus its (lazily dialed) connection.
type endpoint struct {
	addr string

	mu     sync.Mutex
	conn   *clientConn
	everUp bool // a connection has existed before (reconnect detection)
}

// clientConn is one live connection with response demultiplexing:
// requests are pipelined by id, a reader goroutine routes responses to
// the waiting callers.
type clientConn struct {
	c  net.Conn
	wm sync.Mutex // serializes frame writes

	mu      sync.Mutex
	pending map[uint64]chan response
	dead    error
}

// Client talks to a page service and implements disk.Device for one
// remote device, so a buffer pool or WAL writer stacks on it
// unchanged. Seek accounting is kept client-side: the head tracks the
// last page touched, so elevator scheduling and the paper's
// seek-distance metric stay meaningful even though the physical device
// is remote.
type Client struct {
	cfg    ClientConfig
	jitter *disk.Jitter

	// epoch is stamped into every request (protocol v2) when nonzero:
	// the fleet controller raises it after a promotion so a server
	// still living in a superseded epoch rejects this client's traffic
	// — and, symmetrically, a superseded client is rejected by current
	// servers.
	epoch atomic.Uint64

	primary  *endpoint
	replicas []*endpoint

	mu        sync.Mutex
	reqID     uint64
	readFrom  *endpoint // current read target (primary until failover)
	numPages  int
	pageSize  int
	head      disk.PageID
	stats     disk.Stats
	diskTr    *trace.Tracer   // disk-layer events from the local head accounting
	latencies []time.Duration // ring of recent read RTTs
	latNext   int
	closed    bool

	sends      metrics.Counter
	recvs      metrics.Counter
	errors_    metrics.Counter
	timeouts   metrics.Counter
	hedges     metrics.Counter
	hedgeWins  metrics.Counter
	failovers  metrics.Counter
	reconnects metrics.Counter
}

const latencyRing = 64
const hedgeWarmup = 16

// Dial connects to the primary, fetches device geometry, and returns a
// ready Client.
func Dial(cfg ClientConfig) (*Client, error) {
	if cfg.Timeout <= 0 {
		cfg.Timeout = 2 * time.Second
	}
	if cfg.HedgeQuantile <= 0 || cfg.HedgeQuantile >= 1 {
		cfg.HedgeQuantile = 0.9
	}
	c := &Client{
		cfg:     cfg,
		jitter:  disk.NewJitter(jitterSeed(cfg.JitterSeed, cfg.Primary)),
		primary: &endpoint{addr: cfg.Primary},
	}
	for _, a := range cfg.Replicas {
		c.replicas = append(c.replicas, &endpoint{addr: a})
	}
	c.readFrom = c.primary
	if r := cfg.Registry; r != nil {
		dev := cfg.Label
		if dev == "" {
			dev = fmt.Sprintf("net%d", cfg.Dev)
		}
		r.Attach("asm_net_sends_total", "Page-service requests sent.", &c.sends, "dev", dev)
		r.Attach("asm_net_recvs_total", "Page-service responses received.", &c.recvs, "dev", dev)
		r.Attach("asm_net_errors_total", "Page-service requests that failed.", &c.errors_, "dev", dev)
		r.Attach("asm_net_timeouts_total", "Page-service requests abandoned on deadline.", &c.timeouts, "dev", dev)
		r.Attach("asm_net_hedges_total", "Straggler reads hedged to a replica.", &c.hedges, "dev", dev)
		r.Attach("asm_net_hedge_wins_total", "Hedged reads won by the replica.", &c.hedgeWins, "dev", dev)
		r.Attach("asm_net_failovers_total", "Read-routing switches off the primary.", &c.failovers, "dev", dev)
		r.Attach("asm_net_reconnects_total", "Endpoint connections re-established.", &c.reconnects, "dev", dev)
	}
	pages, ps, _, _, err := c.info(c.primary)
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	c.numPages, c.pageSize = pages, ps
	c.mu.Unlock()
	return c, nil
}

// jitterSeed resolves the configured seed: an explicit value wins, and
// zero derives a stable per-address seed (FNV-1a) so distinct members
// of a fleet jitter differently by default.
func jitterSeed(seed int64, addr string) int64 {
	if seed != 0 {
		return seed
	}
	h := uint64(14695981039346656037)
	for i := 0; i < len(addr); i++ {
		h ^= uint64(addr[i])
		h *= 1099511628211
	}
	return int64(h | 1) // never zero
}

// AppliedLSN fetches the endpoint's replication progress from its Info
// reply: the applied LSN for a replica-backed server, 0 for a primary.
// The shard router wires it into its failover staleness guard.
func (c *Client) AppliedLSN() (uint64, error) {
	_, _, lsn, _, err := c.info(c.primary)
	return lsn, err
}

// ServerEpoch fetches the primary endpoint's fencing epoch from its
// Info reply.
func (c *Client) ServerEpoch() (uint64, error) {
	_, _, _, epoch, err := c.info(c.primary)
	return epoch, err
}

// SetEpoch sets the fencing epoch stamped into every subsequent
// request. The fleet controller raises it after a promotion; zero
// (the default) sends unfenced v1-compatible traffic.
func (c *Client) SetEpoch(epoch uint64) { c.epoch.Store(epoch) }

// Epoch returns the client's current stamped epoch.
func (c *Client) Epoch() uint64 { return c.epoch.Load() }

// Ping round-trips an empty request to the primary endpoint without
// retries — the fleet controller's liveness probe. A healthy server
// answers inside the client timeout; anything else is an error.
func (c *Client) Ping() error {
	_, err := c.call(c.primary, opPing, nil, trace.NoPage, c.nextID(), nil)
	return err
}

// Promote asks the primary endpoint to adopt a new fencing epoch:
// writable true promotes a replica server to writable primary (its
// applied LSN must have reached minLSN, or the refusal is transient
// and worth retrying as catch-up progresses); writable false fences a
// server read-only at the epoch (the demotion posture for a returned
// zombie). The epoch must exceed the server's current one — racing
// promotions at the same epoch crown exactly one winner, the rest get
// ErrFenced.
func (c *Client) Promote(epoch, minLSN uint64, writable bool) error {
	_, err := c.call(c.primary, opPromote, encodePromote(epoch, minLSN, writable), trace.NoPage, c.nextID(), nil)
	if err != nil {
		return err
	}
	if !writable {
		return nil
	}
	// The endpoint just became the source of truth; the extent cached
	// at dial time may predate its base backup (or a restart), and the
	// client-side range check would refuse pages the server now holds.
	pages, ps, _, _, err := c.info(c.primary)
	if err != nil {
		return nil // promoted; the stale extent heals on the next Allocate
	}
	c.mu.Lock()
	if pages > c.numPages && ps == c.pageSize {
		c.numPages = pages
	}
	c.mu.Unlock()
	return nil
}

// connect returns ep's live connection, dialing if needed.
func (c *Client) connect(ep *endpoint) (*clientConn, error) {
	ep.mu.Lock()
	defer ep.mu.Unlock()
	if ep.conn != nil {
		ep.conn.mu.Lock()
		dead := ep.conn.dead
		ep.conn.mu.Unlock()
		if dead == nil {
			return ep.conn, nil
		}
		ep.conn = nil
	}
	nc, err := net.DialTimeout("tcp", ep.addr, c.cfg.Timeout)
	if err != nil {
		return nil, netErr("dial "+ep.addr, err)
	}
	if tc, ok := nc.(*net.TCPConn); ok {
		tc.SetNoDelay(true)
	}
	cc := &clientConn{c: nc, pending: map[uint64]chan response{}}
	go cc.readLoop()
	if ep.everUp {
		c.reconnects.Inc()
		c.cfg.Tracer.Net(trace.KindReconnect, trace.NoPage, 0, ep.addr)
	}
	ep.everUp = true
	ep.conn = cc
	return cc, nil
}

// readLoop routes responses to their callers until the conn dies, then
// fails every waiter.
func (cc *clientConn) readLoop() {
	for {
		payload, err := readFrame(cc.c)
		if err != nil {
			cc.fail(netErr("recv", err))
			return
		}
		resp, err := decodeResponse(payload)
		if err != nil {
			cc.fail(err)
			return
		}
		cc.mu.Lock()
		ch := cc.pending[resp.reqID]
		cc.mu.Unlock()
		if ch != nil {
			select {
			case ch <- resp:
			default: // caller already gave up
			}
		}
	}
}

func (cc *clientConn) fail(err error) {
	cc.mu.Lock()
	if cc.dead == nil {
		cc.dead = err
	}
	for id, ch := range cc.pending {
		delete(cc.pending, id)
		select {
		case ch <- response{status: stErr, reqID: id, body: encodeErr(err)}:
		default:
		}
	}
	cc.mu.Unlock()
	cc.c.Close()
}

// start registers a waiter and sends the request frame.
func (cc *clientConn) start(req request) (chan response, error) {
	ch := make(chan response, 1)
	cc.mu.Lock()
	if cc.dead != nil {
		err := cc.dead
		cc.mu.Unlock()
		return nil, err
	}
	cc.pending[req.reqID] = ch
	cc.mu.Unlock()
	cc.wm.Lock()
	err := writeFrame(cc.c, encodeRequest(req))
	cc.wm.Unlock()
	if err != nil {
		cc.forget(req.reqID)
		cc.fail(netErr("send", err))
		return nil, netErr("send", err)
	}
	return ch, nil
}

func (cc *clientConn) forget(id uint64) {
	cc.mu.Lock()
	delete(cc.pending, id)
	cc.mu.Unlock()
}

func (cc *clientConn) close() {
	cc.fail(netErr("conn", fmt.Errorf("closed")))
}

func (c *Client) nextID() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.reqID++
	return c.reqID
}

// call performs one request round trip on ep with the client timeout.
// The reqID is allocated by the caller once per logical operation, so a
// retry or a re-send after reconnect reuses the same id — the wire
// trace of a flaky run is deterministic, and a late response to an
// earlier attempt matches the current waiter instead of being dropped.
// sp, when non-nil, attributes the wire activity to a query span and
// stamps its query id into the request frame (protocol v2).
func (c *Client) call(ep *endpoint, op byte, body []byte, page int64, reqID uint64, sp *qtrace.Span) (response, error) {
	cc, err := c.connect(ep)
	if err != nil {
		c.errors_.Inc()
		return response{}, err
	}
	qid := sp.QID()
	req := request{op: op, dev: c.cfg.Dev, reqID: reqID, qid: qid, epoch: c.epoch.Load(), body: body}
	c.sends.Inc()
	sp.OnNetSend()
	c.cfg.Tracer.NetQ(trace.KindSend, page, 0, ep.addr, qid)
	ch, err := cc.start(req)
	if err != nil {
		c.errors_.Inc()
		return response{}, err
	}
	timer := time.NewTimer(c.cfg.Timeout)
	defer timer.Stop()
	select {
	case resp := <-ch:
		cc.forget(req.reqID)
		if resp.status == stErr {
			c.errors_.Inc()
			c.recvs.Inc()
			err := decodeErr(resp.body)
			sp.OnNetRecv()
			c.cfg.Tracer.NetQ(trace.KindRecv, page, 1, ep.addr, qid)
			return response{}, err
		}
		c.recvs.Inc()
		sp.OnNetRecv()
		c.cfg.Tracer.NetQ(trace.KindRecv, page, 0, ep.addr, qid)
		return resp, nil
	case <-timer.C:
		cc.forget(req.reqID)
		c.timeouts.Inc()
		c.errors_.Inc()
		sp.OnNetTimeout()
		c.cfg.Tracer.NetQ(trace.KindTimeout, page, 1, ep.addr, qid)
		return response{}, netErr("timeout on "+ep.addr, fmt.Errorf("%s after %v", opName(op), c.cfg.Timeout))
	}
}

func opName(op byte) string {
	switch op {
	case opRead:
		return "read"
	case opWrite:
		return "write"
	case opAlloc:
		return "alloc"
	case opInfo:
		return "info"
	case opPing:
		return "ping"
	case opFollow:
		return "follow"
	case opPromote:
		return "promote"
	default:
		return fmt.Sprintf("op%d", op)
	}
}

// info fetches device geometry, replication progress, and the fencing
// epoch from ep.
func (c *Client) info(ep *endpoint) (pages, pageSize int, appliedLSN, epoch uint64, err error) {
	resp, err := c.call(ep, opInfo, nil, trace.NoPage, c.nextID(), nil)
	if err != nil {
		return 0, 0, 0, 0, err
	}
	if len(resp.body) != 28 {
		return 0, 0, 0, 0, fmt.Errorf("%w: %d-byte info", ErrBadFrame, len(resp.body))
	}
	return int(binary.LittleEndian.Uint64(resp.body[0:])),
		int(binary.LittleEndian.Uint32(resp.body[8:])),
		binary.LittleEndian.Uint64(resp.body[12:]),
		binary.LittleEndian.Uint64(resp.body[20:]), nil
}

// hedgeDelay decides how long a read may straggle before it is hedged
// to a replica: the configured fixed delay, or an adaptive threshold
// at the latency quantile (doubled) once enough samples exist. A zero
// return disables hedging for this read.
func (c *Client) hedgeDelay() time.Duration {
	if len(c.replicas) == 0 {
		return 0
	}
	if c.cfg.HedgeAfter > 0 {
		return c.cfg.HedgeAfter
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.latencies) < hedgeWarmup {
		return 0
	}
	sorted := make([]time.Duration, len(c.latencies))
	copy(sorted, c.latencies)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	q := sorted[int(float64(len(sorted)-1)*c.cfg.HedgeQuantile)]
	d := 2 * q
	if d < 100*time.Microsecond {
		d = 100 * time.Microsecond
	}
	return d
}

func (c *Client) observeLatency(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.latencies) < latencyRing {
		c.latencies = append(c.latencies, d)
		return
	}
	c.latencies[c.latNext] = d
	c.latNext = (c.latNext + 1) % latencyRing
}

// readTarget returns the endpoint reads currently route to.
func (c *Client) readTarget() *endpoint {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.readFrom
}

// Failed reports the endpoint reads have failed over to, or "" while
// the primary is still the read target.
func (c *Client) FailedOver() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.readFrom == c.primary {
		return ""
	}
	return c.readFrom.addr
}

// failover probes the replicas and routes reads to the freshest one
// whose applied LSN clears the staleness floor. It reports whether the
// read target changed. The primary stays the write target — writes
// keep failing (transiently) until it returns.
func (c *Client) failover(from *endpoint) bool {
	var floor uint64
	if c.cfg.LSNFloor != nil {
		floor = c.cfg.LSNFloor()
	}
	var best *endpoint
	var bestLSN uint64
	for _, ep := range c.replicas {
		if ep == from {
			continue
		}
		_, _, applied, _, err := c.info(ep)
		if err != nil {
			continue
		}
		if applied < floor {
			continue
		}
		if best == nil || applied > bestLSN {
			best, bestLSN = ep, applied
		}
	}
	if best == nil {
		return false
	}
	c.mu.Lock()
	changed := c.readFrom != best
	c.readFrom = best
	c.mu.Unlock()
	if changed {
		c.failovers.Inc()
		c.cfg.Tracer.Net(trace.KindFailover, trace.NoPage, int64(bestLSN), best.addr)
	}
	return changed
}

// readOnce performs one read attempt with straggler hedging: the
// request goes to the current read target, and if no response arrives
// within the hedge delay, the same read is raced against a replica —
// first success wins. Both legs carry the same reqID: they are one
// logical read, and the id identifies it across endpoints and retries.
func (c *Client) readOnce(p disk.PageID, buf []byte, reqID uint64, sp *qtrace.Span) error {
	target := c.readTarget()
	delay := c.hedgeDelay()
	var body [4]byte
	binary.LittleEndian.PutUint32(body[:], uint32(p))

	type result struct {
		resp response
		err  error
	}
	primCh := make(chan result, 1)
	start := time.Now()
	go func() {
		resp, err := c.call(target, opRead, body[:], int64(p), reqID, sp)
		primCh <- result{resp, err}
	}()

	finish := func(r result) error {
		if r.err != nil {
			return r.err
		}
		if len(r.resp.body) != len(buf) {
			return fmt.Errorf("%w: %d-byte page, want %d", ErrBadFrame, len(r.resp.body), len(buf))
		}
		copy(buf, r.resp.body)
		c.observeLatency(time.Since(start))
		return nil
	}

	if delay <= 0 {
		return finish(<-primCh)
	}
	hedgeTimer := time.NewTimer(delay)
	defer hedgeTimer.Stop()
	select {
	case r := <-primCh:
		return finish(r)
	case <-hedgeTimer.C:
	}

	// The target is straggling: race a replica against it.
	hedge := c.pickHedge(target)
	if hedge == nil {
		return finish(<-primCh)
	}
	c.hedges.Inc()
	sp.OnHedge()
	c.cfg.Tracer.NetQ(trace.KindHedge, int64(p), 0, hedge.addr, sp.QID())
	hedgeCh := make(chan result, 1)
	go func() {
		resp, err := c.call(hedge, opRead, body[:], int64(p), reqID, sp)
		hedgeCh <- result{resp, err}
	}()
	var firstErr error
	for i := 0; i < 2; i++ {
		select {
		case r := <-primCh:
			if r.err == nil {
				return finish(r)
			}
			if firstErr == nil {
				firstErr = r.err
			}
			primCh = nil
		case r := <-hedgeCh:
			if r.err == nil {
				c.hedgeWins.Inc()
				return finish(r)
			}
			if firstErr == nil {
				firstErr = r.err
			}
			hedgeCh = nil
		}
	}
	return firstErr
}

// pickHedge selects a replica other than the current target.
func (c *Client) pickHedge(target *endpoint) *endpoint {
	for _, ep := range c.replicas {
		if ep != target {
			return ep
		}
	}
	return nil
}

// --- disk.Device ---

// ReadPage reads page p from the service: hedged against stragglers,
// retried on transient failures, failing over to a fresh-enough
// replica when the read target stops answering.
func (c *Client) ReadPage(p disk.PageID, buf []byte) error {
	return c.readPage(p, buf, nil)
}

// ReadPageCtx implements disk.CtxReader: the read is attributed to the
// query span carried in ctx, and the query id travels in the request
// frame so the server can attribute its side of the work too.
func (c *Client) ReadPageCtx(ctx context.Context, p disk.PageID, buf []byte) error {
	return c.readPage(p, buf, qtrace.From(ctx))
}

func (c *Client) readPage(p disk.PageID, buf []byte, sp *qtrace.Span) error {
	if err := c.checkAccess(p, buf); err != nil {
		return err
	}
	c.account(p, true, sp)
	// One reqID for the whole logical read: every retry, reconnect
	// re-send, and hedge leg below reuses it.
	reqID := c.nextID()
	_, err := c.cfg.Retry.DoJitter(c.jitter, func() error {
		err := c.readOnce(p, buf, reqID, sp)
		if err != nil && disk.Retryable(err) && c.readTarget() == c.primary {
			// The primary may be down, not just slow: try to move the
			// read target before the next retry burns its backoff.
			c.failover(c.primary)
		}
		return err
	})
	return err
}

// WritePage writes page p through to the primary. Writes never hedge
// and never fail over: there is exactly one write master, and when it
// is down writes fail transiently until it returns.
func (c *Client) WritePage(p disk.PageID, buf []byte) error {
	if err := c.checkAccess(p, buf); err != nil {
		return err
	}
	c.account(p, false, nil)
	body := make([]byte, 4+len(buf))
	binary.LittleEndian.PutUint32(body, uint32(p))
	copy(body[4:], buf)
	reqID := c.nextID()
	_, err := c.cfg.Retry.DoJitter(c.jitter, func() error {
		_, err := c.call(c.primary, opWrite, body, int64(p), reqID, nil)
		return err
	})
	return err
}

// Allocate extends the remote device on the primary.
func (c *Client) Allocate(n int) (disk.PageID, error) {
	var body [4]byte
	binary.LittleEndian.PutUint32(body[:], uint32(n))
	var first disk.PageID
	reqID := c.nextID()
	_, err := c.cfg.Retry.DoJitter(c.jitter, func() error {
		resp, err := c.call(c.primary, opAlloc, body[:], trace.NoPage, reqID, nil)
		if err != nil {
			return err
		}
		if len(resp.body) != 4 {
			return fmt.Errorf("%w: %d-byte alloc reply", ErrBadFrame, len(resp.body))
		}
		first = disk.PageID(binary.LittleEndian.Uint32(resp.body))
		return nil
	})
	if err != nil {
		return disk.InvalidPage, err
	}
	c.mu.Lock()
	if int(first)+n > c.numPages {
		c.numPages = int(first) + n
	}
	c.mu.Unlock()
	return first, nil
}

// NumPages reports the device size as of the last Info/Allocate.
func (c *Client) NumPages() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.numPages
}

// PageSize reports the remote page size.
func (c *Client) PageSize() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.pageSize
}

// Head reports the locally tracked head position: the last page this
// client touched. Scheduling against it keeps the elevator's seek
// ordering meaningful across the network.
func (c *Client) Head() disk.PageID {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.head
}

// Stats reports client-side access counters with local seek
// accounting.
func (c *Client) Stats() disk.Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// ResetStats zeroes the counters.
func (c *Client) ResetStats() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.stats = disk.Stats{}
}

// ResetHead parks the head at page 0 without accounting a seek.
func (c *Client) ResetHead() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.head = 0
}

// Close severs every endpoint connection.
func (c *Client) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	c.mu.Unlock()
	for _, ep := range append([]*endpoint{c.primary}, c.replicas...) {
		ep.mu.Lock()
		if ep.conn != nil {
			ep.conn.close()
			ep.conn = nil
		}
		ep.mu.Unlock()
	}
	return nil
}

func (c *Client) checkAccess(p disk.PageID, buf []byte) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return disk.ErrClosed
	}
	if len(buf) != c.pageSize {
		return disk.ErrBadLength
	}
	if int(p) >= c.numPages {
		return fmt.Errorf("%w: page %d of %d", disk.ErrOutOfRange, p, c.numPages)
	}
	return nil
}

// SetTracer implements disk.TracerSetter: each page access emits a
// disk-layer event from the client-side head accounting, mirroring the
// contract of the local devices — the event carries the head position
// before the access and the (local) seek distance, and is emitted once
// per logical access regardless of retries or hedges. This is distinct
// from ClientConfig.Tracer, which receives the net-layer events (every
// send/recv, including retries). Pass nil to disable.
func (c *Client) SetTracer(t *trace.Tracer) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.diskTr = t
}

// account moves the local head to p and books the seek, charging reads
// to sp when a query span rode in.
func (c *Client) account(p disk.PageID, read bool, sp *qtrace.Span) {
	c.mu.Lock()
	defer c.mu.Unlock()
	prev := c.head
	dist := int64(p) - int64(prev)
	if dist < 0 {
		dist = -dist
	}
	c.head = p
	if read {
		c.stats.Reads++
		c.stats.SeekReads += dist
		sp.OnRead(dist)
	} else {
		c.stats.Writes++
	}
	c.stats.SeekTotal += dist
	if dist > c.stats.MaxSeek {
		c.stats.MaxSeek = dist
	}
	if c.diskTr != nil {
		kind := trace.KindWrite
		if read {
			kind = trace.KindRead
		}
		c.diskTr.DiskQ(kind, int64(p), int64(prev), dist, sp.QID())
	}
}

var _ disk.Device = (*Client)(nil)
