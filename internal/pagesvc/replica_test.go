package pagesvc

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"revelation/internal/disk"
	"revelation/internal/page"
	"revelation/internal/wal"
)

// walImage builds a valid slotted-page image holding one record.
func walImage(t *testing.T, pageSize int, payload string) []byte {
	t.Helper()
	buf := make([]byte, pageSize)
	p := page.Wrap(buf)
	p.Init(0x5754)
	if _, err := p.Insert([]byte(payload)); err != nil {
		t.Fatal(err)
	}
	return buf
}

// waitApplied polls until the replica's applied LSN reaches lsn.
func waitApplied(t *testing.T, r *Replica, lsn uint64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for r.AppliedLSN() < lsn {
		if time.Now().After(deadline) {
			t.Fatalf("replica stuck at LSN %d, want %d", r.AppliedLSN(), lsn)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestReplicaFollowsWAL: records appended and synced on the primary
// arrive on the replica's device, newest image per page winning.
func TestReplicaFollowsWAL(t *testing.T) {
	dataDev := disk.New(0)
	walDev := disk.New(0)
	w, err := wal.Open(walDev)
	if err != nil {
		t.Fatal(err)
	}
	_, addr := startServer(t, []disk.Device{dataDev, walDev}, ServerConfig{})

	replDev := disk.New(0)
	repl := NewReplica(replDev, ReplicaConfig{Primary: addr, WALDev: WALDev})
	done := repl.Start()
	defer func() {
		repl.Close()
		<-done
	}()

	ps := walDev.PageSize()
	want := map[disk.PageID][]byte{}
	var last uint64
	for i := 0; i < 8; i++ {
		id := disk.PageID(i % 4) // pages rewritten: redo-if-newer matters
		img := walImage(t, ps, fmt.Sprintf("v%d of page %d", i, id))
		lsn, err := w.Append(id, img)
		if err != nil {
			t.Fatal(err)
		}
		want[id] = append([]byte(nil), img...)
		last = lsn
	}
	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}
	waitApplied(t, repl, last)

	buf := make([]byte, ps)
	for id, img := range want {
		if err := replDev.ReadPage(id, buf); err != nil {
			t.Fatalf("replica read %d: %v", id, err)
		}
		if !bytes.Equal(buf, img) {
			t.Errorf("replica page %d diverges from primary", id)
		}
	}
}

// TestReplicaCrashMidFollowReconnects is the satellite acceptance
// test: a replica that dies mid-stream and comes back reconnects from
// its applied LSN, re-applies idempotently, and converges — including
// across a torn tail on the primary's log.
func TestReplicaCrashMidFollowReconnects(t *testing.T) {
	dataDev := disk.New(0)
	walDev := disk.New(0)
	w, err := wal.Open(walDev)
	if err != nil {
		t.Fatal(err)
	}
	_, addr := startServer(t, []disk.Device{dataDev, walDev}, ServerConfig{})
	ps := walDev.PageSize()

	// First batch, followed to completion.
	var mid uint64
	for i := 0; i < 5; i++ {
		if mid, err = w.Append(disk.PageID(i), walImage(t, ps, fmt.Sprintf("first %d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}
	replDev := disk.New(0)
	repl := NewReplica(replDev, ReplicaConfig{Primary: addr, WALDev: WALDev})
	done := repl.Start()
	waitApplied(t, repl, mid)

	// Crash the replica process: the follow stream dies mid-flight.
	repl.Close()
	<-done
	applied := repl.AppliedLSN()
	if applied != mid {
		t.Fatalf("applied %d, want %d", applied, mid)
	}

	// The primary moves on while the replica is down.
	var last uint64
	for i := 0; i < 5; i++ {
		if last, err = w.Append(disk.PageID(i), walImage(t, ps, fmt.Sprintf("second %d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}

	// Restart: same device, watermark primed from the checkpointed LSN
	// — Follow resumes past everything already applied.
	repl2 := NewReplica(replDev, ReplicaConfig{Primary: addr, WALDev: WALDev})
	repl2.SetAppliedLSN(applied)
	done2 := repl2.Start()
	defer func() {
		repl2.Close()
		<-done2
	}()
	waitApplied(t, repl2, last)
	if got := repl2.records.Value(); got != 5 {
		t.Errorf("resumed replica applied %d records, want exactly the 5 new ones", got)
	}

	// Convergence check: every page equals the newest logged image.
	buf := make([]byte, ps)
	for i := 0; i < 5; i++ {
		img := walImage(t, ps, fmt.Sprintf("second %d", i))
		// Append stamped LSN+checksum on the primary's copy; re-stamp
		// the expectation the same way for byte equality.
		page.Wrap(img).SetLSN(mid + uint64(i) + 1)
		page.Stamp(img)
		if err := replDev.ReadPage(disk.PageID(i), buf); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf, img) {
			t.Errorf("page %d did not converge after reconnect", i)
		}
	}

	// A cold restart with no checkpoint replays from zero: every record
	// is a reapplied no-op, the state does not change.
	repl3 := NewReplica(replDev, ReplicaConfig{Primary: addr, WALDev: WALDev})
	done3 := repl3.Start()
	defer func() {
		repl3.Close()
		<-done3
	}()
	waitApplied(t, repl3, last)
	if got := repl3.records.Value(); got != 0 {
		t.Errorf("idempotent replay installed %d records, want 0", got)
	}
	if got := repl3.reapplied.Value(); got != 10 {
		t.Errorf("idempotent replay reapplied %d, want 10", got)
	}
}

// TestReplicaSurvivesPrimaryRestart: the follow loop reconnects on its
// own when the primary goes away and returns on the same address.
func TestReplicaSurvivesPrimaryRestart(t *testing.T) {
	dataDev := disk.New(0)
	walDev := disk.New(0)
	w, err := wal.Open(walDev)
	if err != nil {
		t.Fatal(err)
	}
	s1 := NewServer([]disk.Device{dataDev, walDev}, ServerConfig{})
	addr, err := s1.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ps := walDev.PageSize()

	var first uint64
	if first, err = w.Append(0, walImage(t, ps, "before restart")); err != nil {
		t.Fatal(err)
	}
	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}

	replDev := disk.New(0)
	repl := NewReplica(replDev, ReplicaConfig{
		Primary: addr,
		WALDev:  WALDev,
		Retry:   disk.RetryPolicy{MaxAttempts: 200, BaseBackoff: time.Millisecond, MaxBackoff: 20 * time.Millisecond},
	})
	done := repl.Start()
	defer func() {
		repl.Close()
		<-done
	}()
	waitApplied(t, repl, first)

	// Primary restarts on the same address; the log device survives (in
	// production it is the same file).
	s1.Close()
	time.Sleep(5 * time.Millisecond)
	s2 := NewServer([]disk.Device{dataDev, walDev}, ServerConfig{})
	if _, err := s2.Listen(addr); err != nil {
		t.Fatalf("rebind: %v", err)
	}
	defer s2.Close()

	var second uint64
	if second, err = w.Append(1, walImage(t, ps, "after restart")); err != nil {
		t.Fatal(err)
	}
	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}
	waitApplied(t, repl, second)
	if got := repl.reconnects.Value(); got < 1 {
		t.Errorf("reconnects = %d, want >= 1", got)
	}
}
