package pagesvc

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"revelation/internal/disk"
	"revelation/internal/wal"
)

// TestPromoteRefusesMidCatchup: a replica whose Follow stream is still
// behind the caller's durability floor must refuse promotion — with a
// transient error, so the controller can retry as catch-up progresses
// — and accept once its applied LSN clears the floor.
func TestPromoteRefusesMidCatchup(t *testing.T) {
	dataDev := disk.New(0)
	walDev := disk.New(0)
	w, err := wal.Open(walDev)
	if err != nil {
		t.Fatal(err)
	}
	_, addr := startServer(t, []disk.Device{dataDev, walDev}, ServerConfig{})

	ps := walDev.PageSize()
	var floor uint64
	for i := 0; i < 6; i++ {
		img := walImage(t, ps, fmt.Sprintf("record %d", i))
		lsn, err := w.Append(disk.PageID(i), img)
		if err != nil {
			t.Fatal(err)
		}
		floor = lsn
	}
	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}

	// The replica server exists but its follower has not started: its
	// applied LSN is pinned at zero, mid-catch-up by construction.
	replDev := disk.New(0)
	repl := NewReplica(replDev, ReplicaConfig{Primary: addr, WALDev: WALDev})
	rsrv, raddr := startServer(t, []disk.Device{replDev}, ServerConfig{
		AppliedLSN: repl.AppliedLSN,
		ReadOnly:   true,
	})
	rc := dialT(t, ClientConfig{Primary: raddr})

	err = rc.Promote(2, floor, true)
	if err == nil {
		t.Fatal("promotion accepted with applied LSN 0 behind floor")
	}
	if !disk.Retryable(err) {
		t.Fatalf("mid-catch-up refusal must be transient, got %v", err)
	}
	if rsrv.Epoch() != 0 || !rsrv.ReadOnly() {
		t.Fatalf("refused promotion mutated server state: epoch %d, readOnly %v", rsrv.Epoch(), rsrv.ReadOnly())
	}

	// Catch up, then promote for real.
	done := repl.Start()
	defer func() {
		repl.Close()
		<-done
	}()
	waitApplied(t, repl, floor)
	if err := rc.Promote(2, floor, true); err != nil {
		t.Fatalf("promotion after catch-up: %v", err)
	}
	if rsrv.Epoch() != 2 || rsrv.ReadOnly() {
		t.Fatalf("promoted server: epoch %d, readOnly %v, want 2, false", rsrv.Epoch(), rsrv.ReadOnly())
	}
}

// TestPromoteDoubleRace: two controllers racing to promote the same
// replica at the same epoch must crown exactly one winner; the loser
// sees a fenced (non-retryable) error. Run under -race this also
// checks the promote path's synchronization.
func TestPromoteDoubleRace(t *testing.T) {
	replDev := disk.New(4)
	srv, addr := startServer(t, []disk.Device{replDev}, ServerConfig{ReadOnly: true})

	const racers = 4
	errs := make([]error, racers)
	var wg sync.WaitGroup
	for i := 0; i < racers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c, err := Dial(ClientConfig{Primary: addr})
			if err != nil {
				errs[i] = err
				return
			}
			defer c.Close()
			errs[i] = c.Promote(7, 0, true)
		}(i)
	}
	wg.Wait()

	winners := 0
	for i, err := range errs {
		switch {
		case err == nil:
			winners++
		case errors.Is(err, ErrFenced):
			if disk.Retryable(err) {
				t.Errorf("racer %d: fenced error must not be retryable: %v", i, err)
			}
		default:
			t.Errorf("racer %d: unexpected error %v", i, err)
		}
	}
	if winners != 1 {
		t.Fatalf("%d promotion winners, want exactly 1", winners)
	}
	if srv.Epoch() != 7 {
		t.Fatalf("server epoch %d, want 7", srv.Epoch())
	}
}

// TestFencingRejectsZombieWrites: after the fleet moves to a new epoch,
// a returned old primary is fenced read-only — its late writes (and a
// stale router's epoch-stamped traffic) are rejected with ErrFenced,
// while reads keep working.
func TestFencingRejectsZombieWrites(t *testing.T) {
	dev := disk.New(4)
	srv, addr := startServer(t, []disk.Device{dev}, ServerConfig{})
	c := dialT(t, ClientConfig{Primary: addr})
	ps := c.PageSize()
	buf := make([]byte, ps)

	// Healthy at epoch 0: writes land.
	if err := c.WritePage(0, buf); err != nil {
		t.Fatal(err)
	}

	// The control plane fences the zombie at epoch 3 (writable=false).
	if err := c.Promote(3, 0, false); err != nil {
		t.Fatal(err)
	}
	if srv.Epoch() != 3 || !srv.ReadOnly() {
		t.Fatalf("fenced server: epoch %d, readOnly %v", srv.Epoch(), srv.ReadOnly())
	}

	// A zombie's late write — it still thinks it owns the shard.
	err := c.WritePage(0, buf)
	if !errors.Is(err, ErrFenced) {
		t.Fatalf("zombie write = %v, want ErrFenced", err)
	}
	if disk.Retryable(err) {
		t.Fatalf("fenced write must not be retryable: %v", err)
	}
	if _, err := c.Allocate(1); !errors.Is(err, ErrFenced) {
		t.Fatalf("zombie alloc = %v, want ErrFenced", err)
	}
	// Reads still serve (the fenced node remains a usable replica).
	if err := c.ReadPage(0, buf); err != nil {
		t.Fatalf("read from fenced server: %v", err)
	}

	// A request stamped with a superseded epoch is rejected even as a
	// read: the sender's routing table predates the promotion.
	stale := dialT(t, ClientConfig{Primary: addr})
	stale.SetEpoch(2)
	if err := stale.ReadPage(0, buf); !errors.Is(err, ErrFenced) {
		t.Fatalf("stale-epoch read = %v, want ErrFenced", err)
	}
	// Stamping the current epoch is fine.
	stale.SetEpoch(3)
	if err := stale.ReadPage(0, buf); err != nil {
		t.Fatalf("current-epoch read: %v", err)
	}
}

// TestPromoteRefreshesExtent: a client dialed while the replica's
// device was small (or empty — before its base backup landed) caches
// that extent and refuses larger page ids locally. Promotion makes the
// endpoint the source of truth, so it must re-fetch the extent; a page
// the server gained since dial time is readable immediately after.
func TestPromoteRefreshesExtent(t *testing.T) {
	dev := disk.New(0)
	srv, addr := startServer(t, []disk.Device{dev}, ServerConfig{ReadOnly: true})
	c := dialT(t, ClientConfig{Primary: addr})
	if got := c.NumPages(); got != 0 {
		t.Fatalf("extent at dial = %d, want 0", got)
	}

	// The base backup arrives behind the client's back.
	if _, err := dev.Allocate(8); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, dev.PageSize())
	if err := c.ReadPage(5, buf); err == nil {
		t.Fatal("stale extent should refuse page 5 before promotion")
	}

	if err := c.Promote(1, 0, true); err != nil {
		t.Fatal(err)
	}
	if srv.ReadOnly() {
		t.Fatal("server still read-only after promotion")
	}
	if got := c.NumPages(); got != 8 {
		t.Fatalf("extent after promotion = %d, want 8", got)
	}
	if err := c.ReadPage(5, buf); err != nil {
		t.Fatalf("read after promotion: %v", err)
	}
}
