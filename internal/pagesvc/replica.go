package pagesvc

import (
	"encoding/binary"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"revelation/internal/disk"
	"revelation/internal/metrics"
	"revelation/internal/wal"
)

// ReplicaConfig tunes a Replica.
type ReplicaConfig struct {
	// Primary is the address of the primary page service whose WAL
	// device the replica follows.
	Primary string
	// WALDev is the primary's wire index for its WAL device.
	WALDev byte
	// DialTimeout bounds each (re)connection attempt; zero means 2s.
	DialTimeout time.Duration
	// Retry paces reconnection after the follow stream breaks. The
	// zero policy means disk.DefaultRetryPolicy's backoff, retried
	// forever — a follower's job is to keep trying.
	Retry disk.RetryPolicy
	// JitterSeed seeds the full jitter on the reconnect backoff (see
	// ClientConfig.JitterSeed): zero derives a per-replica seed from
	// the primary address, an explicit value makes the delay sequence
	// reproducible.
	JitterSeed int64
	// Registry, when set, receives asm_replica_* counters.
	Registry *metrics.Registry
}

// Replica keeps a local copy of the primary's data device current by
// following its WAL: every shipped record goes through the same
// redo-if-newer apply as crash recovery, so catch-up after a base
// backup, reconnection after a network cut, and restart after a crash
// are one code path. The applied LSN is tracked for two consumers:
// Follow resumption (reconnects ask only for records past it) and the
// client's failover staleness guard (published via Server Info).
type Replica struct {
	dev    disk.Device
	cfg    ReplicaConfig
	jitter *disk.Jitter

	applied atomic.Uint64

	mu     sync.Mutex
	conn   net.Conn
	closed bool
	done   chan struct{}

	records    metrics.Counter // WAL records applied
	reapplied  metrics.Counter // records skipped as already applied
	reconnects metrics.Counter // follow stream re-establishments
	appliedLSN metrics.Gauge
}

// NewReplica builds a replica applying onto dev. The device should be
// seeded from a base backup of the primary's data pages; an empty
// device also works, it just replays the entire log.
func NewReplica(dev disk.Device, cfg ReplicaConfig) *Replica {
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = 2 * time.Second
	}
	if cfg.Retry.MaxAttempts == 0 {
		cfg.Retry = disk.RetryPolicy{
			MaxAttempts: 1 << 30, // effectively forever
			BaseBackoff: disk.DefaultRetryPolicy.BaseBackoff,
			MaxBackoff:  disk.DefaultRetryPolicy.MaxBackoff,
		}
	}
	r := &Replica{
		dev:    dev,
		cfg:    cfg,
		jitter: disk.NewJitter(jitterSeed(cfg.JitterSeed, cfg.Primary)),
		done:   make(chan struct{}),
	}
	if reg := cfg.Registry; reg != nil {
		reg.Attach("asm_replica_records_total", "WAL records applied from the primary.", &r.records)
		reg.Attach("asm_replica_reapplied_total", "Shipped records already applied (reconnect overlap).", &r.reapplied)
		reg.Attach("asm_replica_reconnects_total", "Follow stream re-establishments.", &r.reconnects)
		reg.Attach("asm_replica_applied_lsn", "LSN of the last applied WAL record.", &r.appliedLSN)
	}
	return r
}

// AppliedLSN returns the LSN of the last applied record — hand it to
// ServerConfig.AppliedLSN so clients can judge this replica's
// freshness.
func (r *Replica) AppliedLSN() uint64 { return r.applied.Load() }

// SetAppliedLSN primes the applied-LSN watermark, e.g. after seeding
// the device from a base backup taken at a known LSN. Without it the
// first Follow replays the whole log — correct (apply is idempotent)
// but slower.
func (r *Replica) SetAppliedLSN(lsn uint64) {
	r.applied.Store(lsn)
	r.appliedLSN.Set(int64(lsn))
}

// Run follows the primary until Close: it connects, streams records,
// applies them, and on any stream failure reconnects from the applied
// LSN under the retry policy's backoff. It returns nil on Close, or
// the last error once the retry budget is exhausted.
func (r *Replica) Run() error {
	attempt := 0
	for {
		if r.isClosed() {
			return nil
		}
		err := r.followOnce()
		if r.isClosed() {
			return nil
		}
		attempt++
		if attempt >= r.cfg.Retry.MaxAttempts {
			return fmt.Errorf("pagesvc: replica: follow retries exhausted: %w", err)
		}
		// Full jitter on the reconnect pacing: a fleet of followers cut
		// by one network event spreads its re-dials instead of storming
		// the primary in lockstep.
		select {
		case <-r.done:
			return nil
		case <-time.After(r.jitter.Backoff(r.cfg.Retry, attempt)):
		}
		r.reconnects.Inc()
	}
}

// Start runs the replica in the background; the returned channel
// yields Run's result once.
func (r *Replica) Start() <-chan error {
	ch := make(chan error, 1)
	go func() { ch <- r.Run() }()
	return ch
}

// Close stops the follow loop and severs the stream.
func (r *Replica) Close() error {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return nil
	}
	r.closed = true
	close(r.done)
	if r.conn != nil {
		r.conn.Close()
	}
	r.mu.Unlock()
	return nil
}

func (r *Replica) isClosed() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.closed
}

// followOnce dials the primary, requests the stream from the applied
// LSN, and applies records until the stream breaks.
func (r *Replica) followOnce() error {
	nc, err := net.DialTimeout("tcp", r.cfg.Primary, r.cfg.DialTimeout)
	if err != nil {
		return netErr("replica dial "+r.cfg.Primary, err)
	}
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		nc.Close()
		return nil
	}
	r.conn = nc
	r.mu.Unlock()
	defer func() {
		r.mu.Lock()
		if r.conn == nc {
			r.conn = nil
		}
		r.mu.Unlock()
		nc.Close()
	}()

	var body [8]byte
	binary.LittleEndian.PutUint64(body[:], r.applied.Load())
	req := request{op: opFollow, dev: r.cfg.WALDev, reqID: 1, body: body[:]}
	if err := writeFrame(nc, encodeRequest(req)); err != nil {
		return netErr("replica follow", err)
	}
	buf := make([]byte, r.dev.PageSize())
	for {
		payload, err := readFrame(nc)
		if err != nil {
			return netErr("replica stream", err)
		}
		resp, err := decodeResponse(payload)
		if err != nil {
			return err
		}
		switch resp.status {
		case stStream:
			lsn, page, img, err := decodeStreamRecord(resp.body)
			if err != nil {
				return err
			}
			if err := r.apply(lsn, page, img, buf); err != nil {
				return err
			}
		case stErr:
			return decodeErr(resp.body)
		default:
			return fmt.Errorf("%w: status %d on follow stream", ErrBadFrame, resp.status)
		}
	}
}

// apply installs one shipped record. Records at or below the applied
// watermark — a reconnect overlap, or a record whose page image the
// base backup already carried — count as reapplied no-ops, which is
// exactly what makes crashing mid-Follow and resuming safe.
func (r *Replica) apply(lsn uint64, page disk.PageID, img []byte, buf []byte) error {
	if len(img) == 0 {
		// A watermark-only record (an ownership/cutover record on the
		// primary's log): nothing to install, but the applied LSN must
		// advance past it.
		if lsn > r.applied.Load() {
			r.applied.Store(lsn)
			r.appliedLSN.Set(int64(lsn))
		}
		return nil
	}
	if len(img) != r.dev.PageSize() {
		return fmt.Errorf("%w: %d-byte image for %d-byte pages", ErrBadFrame, len(img), r.dev.PageSize())
	}
	cp := make([]byte, len(img))
	copy(cp, img)
	applied, err := wal.ApplyRecord(r.dev, wal.Record{LSN: lsn, Page: page, Img: cp}, buf)
	if err != nil {
		return err
	}
	if applied {
		r.records.Inc()
	} else {
		r.reapplied.Inc()
	}
	if lsn > r.applied.Load() {
		r.applied.Store(lsn)
		r.appliedLSN.Set(int64(lsn))
	}
	return nil
}
