package pagesvc

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"revelation/internal/disk"
	"revelation/internal/metrics"
	"revelation/internal/qtrace"
	"revelation/internal/wal"
)

// DataDev and WALDev are the conventional device indices a primary
// serves: clients read and write pages on DataDev, and the WAL writer
// appends to WALDev; Follow streams WALDev's records.
const (
	DataDev = byte(0)
	WALDev  = byte(1)
)

// ServerConfig tunes a Server beyond its device list.
type ServerConfig struct {
	// AppliedLSN, when set, is reported in Info responses — a replica
	// publishes its replication progress through it so clients can
	// judge staleness before failing over. Nil reports zero on a
	// replica and is meaningless on a primary (clients track their own
	// durable LSN).
	AppliedLSN func() uint64
	// FollowPoll is how long Follow waits at the end of the log before
	// re-reading the tail; zero means 2ms.
	FollowPoll time.Duration
	// Registry, when set, receives the server's connection and request
	// counters under asm_pagesvc_*.
	Registry *metrics.Registry
	// QTrace, when set, collects server-side spans for requests that
	// arrive with a query id (protocol v2): each such request becomes a
	// span under a remote trace keyed by the id, so the server's
	// /tracez shows per-query timelines even though queries begin and
	// end on the client. Nil disables server-side attribution.
	QTrace *qtrace.Collector
	// Epoch is the server's initial fencing epoch. Requests stamped
	// with a lower (nonzero) epoch are rejected as fenced; a Promote
	// carrying a higher epoch ratchets it. Zero is the pre-fleet epoch:
	// it fences nothing.
	Epoch uint64
	// ReadOnly starts the server refusing writes and allocations with a
	// fenced error — the posture of a replica (its device is written by
	// the Follow apply path, never by clients) and of a demoted
	// ex-primary. A Promote with the writable mode lifts it.
	ReadOnly bool
	// OnPromote, when set, is called after a Promote is accepted, with
	// the adopted epoch and whether the server is now writable. A
	// replica daemon uses it to stop its Follow loop: a promoted
	// primary must not keep applying a dead predecessor's log.
	OnPromote func(epoch uint64, writable bool)
}

// Server owns a listener and serves page requests for a fixed set of
// devices. Requests on one connection are pipelined: each is handled
// in its own goroutine and responses are interleaved in completion
// order, matched by request id.
type Server struct {
	devs []disk.Device
	cfg  ServerConfig

	// epoch and readOnly are the fencing state; promoteMu serializes
	// Promote decisions so racing promotions see a consistent
	// epoch-compare-and-adopt (exactly one winner per epoch value).
	epoch     atomic.Uint64
	readOnly  atomic.Bool
	promoteMu sync.Mutex

	ln     net.Listener
	mu     sync.Mutex
	conns  map[net.Conn]bool
	closed bool
	wg     sync.WaitGroup

	accepted  metrics.Counter // connections accepted
	requests  metrics.Counter
	errs      metrics.Counter
	fenced    metrics.Counter // requests rejected by epoch fencing
	followers metrics.Gauge   // Follow streams currently live
}

// NewServer builds a server for devs (addressed by index on the wire).
// A primary passes [data, wal]; a replica passes just [data].
func NewServer(devs []disk.Device, cfg ServerConfig) *Server {
	if cfg.FollowPoll <= 0 {
		cfg.FollowPoll = 2 * time.Millisecond
	}
	s := &Server{devs: devs, cfg: cfg, conns: map[net.Conn]bool{}}
	s.epoch.Store(cfg.Epoch)
	s.readOnly.Store(cfg.ReadOnly)
	if r := cfg.Registry; r != nil {
		r.Attach("asm_pagesvc_conns_total", "Page-service connections accepted.", &s.accepted)
		r.Attach("asm_pagesvc_requests_total", "Page-service requests handled.", &s.requests)
		r.Attach("asm_pagesvc_request_errors_total", "Page-service requests that failed.", &s.errs)
		r.Attach("asm_pagesvc_fenced_total", "Requests rejected by epoch fencing.", &s.fenced)
		r.Attach("asm_pagesvc_followers", "Live WAL follow streams.", &s.followers)
	}
	return s
}

// Listen binds addr (e.g. "127.0.0.1:0") and starts accepting in the
// background. It returns the bound address, so port 0 works in tests.
func (s *Server) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close()
		return "", errors.New("pagesvc: server closed")
	}
	s.ln = ln
	s.mu.Unlock()
	s.wg.Add(1)
	go s.acceptLoop(ln)
	return ln.Addr().String(), nil
}

// Epoch returns the server's current fencing epoch.
func (s *Server) Epoch() uint64 { return s.epoch.Load() }

// ReadOnly reports whether the server currently refuses writes.
func (s *Server) ReadOnly() bool { return s.readOnly.Load() }

// Addr returns the bound address, or "" before Listen.
func (s *Server) Addr() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Close stops the listener, severs every live connection, and waits
// for all handler goroutines to drain.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	ln := s.ln
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	s.wg.Wait()
	return nil
}

func (s *Server) acceptLoop(ln net.Listener) {
	defer s.wg.Done()
	for {
		c, err := ln.Accept()
		if err != nil {
			return
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			c.Close()
			return
		}
		s.conns[c] = true
		s.mu.Unlock()
		s.accepted.Inc()
		s.wg.Add(1)
		go s.serveConn(c)
	}
}

// connWriter serializes frame writes from concurrent request handlers.
type connWriter struct {
	mu sync.Mutex
	c  net.Conn
}

func (w *connWriter) send(payload []byte) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return writeFrame(w.c, payload)
}

func (s *Server) serveConn(c net.Conn) {
	defer s.wg.Done()
	defer func() {
		s.mu.Lock()
		delete(s.conns, c)
		s.mu.Unlock()
		c.Close()
	}()
	w := &connWriter{c: c}
	var handlers sync.WaitGroup
	defer handlers.Wait()
	for {
		payload, err := readFrame(c)
		if err != nil {
			return // EOF, reset, or garbage: the connection is done.
		}
		req, err := decodeRequest(payload)
		if err != nil {
			// A malformed frame poisons the whole stream (framing state
			// is gone): answer with a classified error — reqID 0, since
			// the real id is unrecoverable — then close the connection.
			s.errs.Inc()
			w.send(encodeResponse(response{status: stErr, body: encodeErr(err)}))
			return
		}
		if req.op == opFollow {
			// Follow takes over the connection: the stream shares the
			// writer with any in-flight request handlers, but no new
			// requests are read until it ends (it ends only when the
			// connection or server dies).
			s.requests.Inc()
			s.serveFollow(w, req)
			return
		}
		s.requests.Inc()
		handlers.Add(1)
		go func(req request) {
			defer handlers.Done()
			resp := s.handle(req)
			if resp.status == stErr {
				s.errs.Inc()
			}
			w.send(encodeResponse(resp)) // a dead conn ends the read loop too
		}(req)
	}
}

// reqSpan opens a server-side span for an attributed request, and a
// context carrying it for the device read underneath. Unattributed
// requests (qid 0) or a nil collector cost nothing.
func (s *Server) reqSpan(req request, name string) (*qtrace.Span, context.Context) {
	if s.cfg.QTrace == nil || req.qid == 0 {
		return nil, nil
	}
	t := s.cfg.QTrace.Remote(req.qid, "remote")
	sp := t.Root().StartChild(qtrace.LayerNet, name)
	return sp, qtrace.With(context.Background(), sp)
}

// handle executes one non-streaming request against its device.
func (s *Server) handle(req request) response {
	fail := func(err error) response {
		return response{status: stErr, reqID: req.reqID, body: encodeErr(err)}
	}
	// Epoch fencing, checked before any device work. A request stamped
	// with an older (nonzero) epoch is from a superseded view of the
	// fleet — a router that has not heard about a promotion yet — and
	// is rejected outright; stamping the current epoch is fine, and a
	// zero stamp is legacy unfenced traffic.
	if cur := s.epoch.Load(); req.epoch != 0 && req.epoch < cur {
		s.fenced.Inc()
		return fail(fmt.Errorf("pagesvc: request epoch %d superseded by %d: %w", req.epoch, cur, ErrFenced))
	}
	if req.op == opPromote {
		return s.handlePromote(req)
	}
	// A read-only server (replica, or a fenced ex-primary) refuses all
	// mutations: this is what rejects a zombie primary's late writes
	// after the fleet has moved on without it.
	if s.readOnly.Load() && (req.op == opWrite || req.op == opAlloc) {
		s.fenced.Inc()
		return fail(fmt.Errorf("pagesvc: read-only at epoch %d: %w", s.epoch.Load(), ErrFenced))
	}
	if int(req.dev) >= len(s.devs) {
		return fail(fmt.Errorf("pagesvc: no device %d", req.dev))
	}
	dev := s.devs[req.dev]
	switch req.op {
	case opRead:
		if len(req.body) != 4 {
			return fail(ErrBadFrame)
		}
		p := disk.PageID(binary.LittleEndian.Uint32(req.body))
		buf := make([]byte, dev.PageSize())
		sp, ctx := s.reqSpan(req, "read")
		err := disk.ReadPageCtx(ctx, dev, p, buf)
		sp.End()
		if err != nil {
			return fail(err)
		}
		return response{status: stOK, reqID: req.reqID, body: buf}
	case opWrite:
		if len(req.body) != 4+dev.PageSize() {
			return fail(ErrBadFrame)
		}
		p := disk.PageID(binary.LittleEndian.Uint32(req.body))
		if err := dev.WritePage(p, req.body[4:]); err != nil {
			return fail(err)
		}
		return response{status: stOK, reqID: req.reqID}
	case opAlloc:
		if len(req.body) != 4 {
			return fail(ErrBadFrame)
		}
		n := int(binary.LittleEndian.Uint32(req.body))
		first, err := dev.Allocate(n)
		if err != nil {
			return fail(err)
		}
		var body [4]byte
		binary.LittleEndian.PutUint32(body[:], uint32(first))
		return response{status: stOK, reqID: req.reqID, body: body[:]}
	case opInfo:
		var applied uint64
		if s.cfg.AppliedLSN != nil {
			applied = s.cfg.AppliedLSN()
		}
		body := make([]byte, 28)
		binary.LittleEndian.PutUint64(body[0:], uint64(dev.NumPages()))
		binary.LittleEndian.PutUint32(body[8:], uint32(dev.PageSize()))
		binary.LittleEndian.PutUint64(body[12:], applied)
		binary.LittleEndian.PutUint64(body[20:], s.epoch.Load())
		return response{status: stOK, reqID: req.reqID, body: body}
	case opPing:
		return response{status: stOK, reqID: req.reqID}
	default:
		return fail(fmt.Errorf("pagesvc: unknown op %d", req.op))
	}
}

// handlePromote runs the epoch compare-and-adopt under promoteMu so
// racing promotions are decided in one place: the first promotion to
// present a given epoch wins it, every later arrival of the same (or a
// lower) epoch is fenced — a double promotion has exactly one winner.
// A promotion is also refused (transiently — the controller retries as
// catch-up progresses) while the server's applied LSN is behind the
// caller's floor: promoting a replica that has not absorbed every
// durable write would lose data the client was promised.
func (s *Server) handlePromote(req request) response {
	fail := func(err error) response {
		return response{status: stErr, reqID: req.reqID, body: encodeErr(err)}
	}
	epoch, minLSN, writable, err := decodePromote(req.body)
	if err != nil {
		return fail(err)
	}
	s.promoteMu.Lock()
	defer s.promoteMu.Unlock()
	if cur := s.epoch.Load(); epoch <= cur {
		s.fenced.Inc()
		return fail(fmt.Errorf("pagesvc: promote epoch %d not above current %d: %w", epoch, cur, ErrFenced))
	}
	if minLSN > 0 {
		var applied uint64
		if s.cfg.AppliedLSN != nil {
			applied = s.cfg.AppliedLSN()
		}
		if applied < minLSN {
			return fail(fmt.Errorf("pagesvc: promote: applied LSN %d behind floor %d: %w",
				applied, minLSN, disk.ErrTransient))
		}
	}
	s.epoch.Store(epoch)
	s.readOnly.Store(!writable)
	if s.cfg.OnPromote != nil {
		s.cfg.OnPromote(epoch, writable)
	}
	var body [8]byte
	binary.LittleEndian.PutUint64(body[:], epoch)
	return response{status: stOK, reqID: req.reqID, body: body[:]}
}

// serveFollow streams WAL records from the requested device, starting
// after fromLSN, polling the tail as the log grows. It returns when
// the connection breaks or the server closes. Both a clean end and a
// torn tail mean "nothing more yet" to a live follower — a torn tail
// on a growing log is usually an append caught mid-flight, and if it
// is real damage, recovery on the primary will repair it before the
// log grows past it.
func (s *Server) serveFollow(w *connWriter, req request) {
	fail := func(err error) {
		w.send(encodeResponse(response{status: stErr, reqID: req.reqID, body: encodeErr(err)}))
	}
	if int(req.dev) >= len(s.devs) {
		fail(fmt.Errorf("pagesvc: no device %d", req.dev))
		return
	}
	if len(req.body) != 8 {
		fail(ErrBadFrame)
		return
	}
	fromLSN := binary.LittleEndian.Uint64(req.body)
	s.followers.Add(1)
	defer s.followers.Add(-1)
	r := wal.NewReader(s.devs[req.dev])
	for {
		rec, err := r.Next()
		if err != nil {
			if !errors.Is(err, wal.ErrEndOfLog) && !errors.Is(err, wal.ErrTornTail) {
				fail(err)
				return
			}
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return
			}
			time.Sleep(s.cfg.FollowPoll)
			continue
		}
		if rec.LSN <= fromLSN {
			continue
		}
		if rec.Kind == wal.RecOwnership {
			// Cutover records carry no page image; ship a watermark-only
			// frame so the follower's applied LSN still advances past
			// them (a stalled watermark would wedge the staleness guard).
			if err := w.send(encodeStreamRecord(req.reqID, rec.LSN, 0, nil)); err != nil {
				return
			}
			continue
		}
		if err := w.send(encodeStreamRecord(req.reqID, rec.LSN, rec.Page, rec.Img)); err != nil {
			return
		}
	}
}

// Serve is a convenience: listen on addr and block until Close. Used
// by the asmpaged daemon; tests drive Listen/Close directly.
func (s *Server) Serve(addr string) error {
	if _, err := s.Listen(addr); err != nil {
		return err
	}
	// Block until Close wakes the accept loop and it exits.
	s.wg.Wait()
	return nil
}

var _ io.Closer = (*Server)(nil)
