package pagesvc

import (
	"fmt"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"revelation/internal/assembly"
	"revelation/internal/disk"
	"revelation/internal/gen"
	"revelation/internal/leakcheck"
	"revelation/internal/metrics"
	"revelation/internal/object"
	"revelation/internal/trace"
	"revelation/internal/volcano"
	"revelation/internal/wal"
)

// render flattens an assembled instance into a canonical string so two
// runs can be compared for exact equality.
func render(in *assembly.Instance) string {
	out := fmt.Sprintf("%d(", uint64(in.OID()))
	for _, c := range in.Children {
		if c == nil {
			out += "-,"
			continue
		}
		out += render(c) + ","
	}
	return out + ")"
}

func rootsIter(roots []object.OID) volcano.Iterator {
	items := make([]volcano.Item, len(roots))
	for i, r := range roots {
		items[i] = r
	}
	return volcano.NewSlice(items)
}

// copyPages base-backs-up src onto dst (both fresh-size devices).
func copyPages(t *testing.T, src, dst disk.Device) {
	t.Helper()
	if n := src.NumPages() - dst.NumPages(); n > 0 {
		if _, err := dst.Allocate(n); err != nil {
			t.Fatal(err)
		}
	}
	buf := make([]byte, src.PageSize())
	for p := 0; p < src.NumPages(); p++ {
		if err := src.ReadPage(disk.PageID(p), buf); err != nil {
			t.Fatal(err)
		}
		if err := dst.WritePage(disk.PageID(p), buf); err != nil {
			t.Fatal(err)
		}
	}
}

// TestNetChaosKillPrimary is the tentpole acceptance test: a full
// assembly query runs over the network page service while the primary
// is killed mid-query. The client must fail over to the WAL-shipped
// replica (which satisfies the durable-LSN staleness floor) and finish
// the query with results byte-identical to the fault-free oracle, with
// zero goroutine or pin leaks and the client's own counters, the
// metrics registry, and the trace replay in agreement.
func TestNetChaosKillPrimary(t *testing.T) {
	before := leakcheck.Snapshot()

	// Build the database locally and capture the fault-free oracle.
	db, err := gen.Build(gen.Config{
		NumComplexObjects: 150,
		Clustering:        gen.Unclustered,
		Seed:              1991,
	})
	if err != nil {
		t.Fatal(err)
	}
	oracleOp := assembly.New(rootsIter(db.Roots), db.Store, db.Template,
		assembly.Options{Window: 8, Scheduler: assembly.Elevator})
	oracleItems, err := volcano.Drain(oracleOp)
	if err != nil {
		t.Fatal(err)
	}
	oracle := map[object.OID]string{}
	for _, it := range oracleItems {
		inst := it.(*assembly.Instance)
		oracle[inst.OID()] = render(inst)
	}
	manifest := filepath.Join(t.TempDir(), "manifest")
	if err := db.SaveManifest(manifest); err != nil {
		t.Fatal(err)
	}
	if err := db.Pool.FlushAll(); err != nil {
		t.Fatal(err)
	}

	// Base backup onto the primary and the replica; the primary also
	// gets an empty WAL device.
	primData := disk.New(0)
	replData := disk.New(0)
	copyPages(t, db.Device, primData)
	copyPages(t, db.Device, replData)
	walDev := disk.New(0)

	primSrv := NewServer([]disk.Device{primData, walDev}, ServerConfig{})
	primAddr, err := primSrv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	repl := NewReplica(replData, ReplicaConfig{Primary: primAddr, WALDev: WALDev})
	replSrv := NewServer([]disk.Device{replData}, ServerConfig{AppliedLSN: repl.AppliedLSN})
	replAddr, err := replSrv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer replSrv.Close()
	replDone := repl.Start()
	var stopOnce sync.Once
	stopRepl := func() {
		stopOnce.Do(func() {
			repl.Close()
			<-replDone
		})
	}
	defer stopRepl()

	// The compute node: WAL writer and buffer pool both stacked on
	// network devices, exactly as they stack on local ones.
	retry := disk.RetryPolicy{MaxAttempts: 6, BaseBackoff: time.Millisecond, MaxBackoff: 50 * time.Millisecond}
	walClient, err := Dial(ClientConfig{Primary: primAddr, Dev: WALDev, Retry: retry})
	if err != nil {
		t.Fatal(err)
	}
	netWAL, err := wal.Open(walClient)
	if err != nil {
		t.Fatal(err)
	}

	reg := metrics.NewRegistry()
	col := trace.NewCollector()
	tr := trace.New(col)
	dataClient, err := Dial(ClientConfig{
		Primary:  primAddr,
		Replicas: []string{replAddr},
		Dev:      DataDev,
		Retry:    retry,
		Timeout:  time.Second,
		LSNFloor: netWAL.DurableLSN,
		Tracer:   tr,
		Registry: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	mp, err := gen.LoadManifest(manifest)
	if err != nil {
		t.Fatal(err)
	}
	netDB, err := gen.OpenDatabaseOn(dataClient, mp, 64)
	if err != nil {
		t.Fatal(err)
	}
	netDB.Pool.SetWAL(netWAL)
	netDB.Pool.SetRetry(retry)

	// Dirty one page through the network WAL so the durable LSN — the
	// failover staleness floor — is nonzero, then wait for the replica
	// to prove it has caught up past it.
	f, err := netDB.Pool.Fix(disk.PageID(0))
	if err != nil {
		t.Fatal(err)
	}
	if err := netDB.Pool.Unfix(f, true); err != nil {
		t.Fatal(err)
	}
	if err := netDB.Pool.FlushAll(); err != nil {
		t.Fatal(err)
	}
	if netWAL.DurableLSN() == 0 {
		t.Fatal("durable LSN still zero after a flush")
	}
	waitApplied(t, repl, netWAL.DurableLSN())

	// Kill the primary once the query is demonstrably under way.
	if err := netDB.Pool.EvictAll(); err != nil {
		t.Fatal(err)
	}
	killed := make(chan struct{})
	go func() {
		defer close(killed)
		deadline := time.Now().Add(10 * time.Second)
		for dataClient.Stats().Reads < 20 {
			if time.Now().After(deadline) {
				return
			}
			time.Sleep(100 * time.Microsecond)
		}
		primSrv.Close()
	}()

	op := assembly.New(rootsIter(netDB.Roots), netDB.Store, netDB.Template,
		assembly.Options{Window: 8, Scheduler: assembly.Elevator, FaultPolicy: assembly.RetryFaults, Tracer: tr})
	items, err := volcano.Drain(op)
	<-killed
	if err != nil {
		t.Fatalf("query did not survive the primary's death: %v", err)
	}

	// Byte-identical to the fault-free oracle, nothing lost.
	if len(items) != len(oracle) {
		t.Fatalf("assembled %d complex objects, oracle has %d", len(items), len(oracle))
	}
	for _, it := range items {
		inst := it.(*assembly.Instance)
		want, ok := oracle[inst.OID()]
		if !ok {
			t.Fatalf("assembled unknown root %v", inst.OID())
		}
		if got := render(inst); got != want {
			t.Errorf("root %v diverges from oracle:\n got %s\nwant %s", inst.OID(), got, want)
		}
	}

	// The failover actually happened and respected the LSN floor.
	if got := dataClient.FailedOver(); got != replAddr {
		t.Errorf("read target = %q, want replica %q", got, replAddr)
	}
	if dataClient.failovers.Value() < 1 {
		t.Error("no failover counted")
	}

	// Three-way agreement: the client's own counters, the metrics
	// registry cells, and the trace replay all describe the same run.
	rep := trace.ReplayEvents(col.Events())
	if rep.NetSends != dataClient.sends.Value() {
		t.Errorf("trace sends %d != client sends %d", rep.NetSends, dataClient.sends.Value())
	}
	if rep.NetRecvs != dataClient.recvs.Value() {
		t.Errorf("trace recvs %d != client recvs %d", rep.NetRecvs, dataClient.recvs.Value())
	}
	if rep.Failovers != dataClient.failovers.Value() {
		t.Errorf("trace failovers %d != client failovers %d", rep.Failovers, dataClient.failovers.Value())
	}
	// The registry observes the same cells the client updates, so a
	// scrape equality on each family closes the loop.
	snap := reg.Snapshot()
	if got := snap.Value("asm_net_sends_total", "dev", "net0"); got != dataClient.sends.Value() {
		t.Errorf("registry sends %d != client sends %d", got, dataClient.sends.Value())
	}
	if got := snap.Value("asm_net_failovers_total", "dev", "net0"); got != dataClient.failovers.Value() {
		t.Errorf("registry failovers %d != client failovers %d", got, dataClient.failovers.Value())
	}

	// Books at zero: no pinned frames, no goroutine leaks.
	if got := netDB.Pool.PinnedFrames(); got != 0 {
		t.Errorf("pinned frames after query = %d, want 0", got)
	}
	walClient.Close()
	dataClient.Close()
	stopRepl()
	replSrv.Close()
	leakcheck.CheckWithin(t, before, 5*time.Second)
}
