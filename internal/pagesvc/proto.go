// Package pagesvc puts a network between the buffer pool and its
// pages: a TCP page service speaking a small length-prefixed binary
// protocol (read, write, allocate, info, ping, and a streaming WAL
// follow), a server fronting any set of disk.Devices, and a client
// that itself implements disk.Device — so the buffer pool, WAL, and
// assembly operator run unchanged whether their pages are a method
// call or a round trip away.
//
// The client is where the distributed-systems behavior lives: requests
// are pipelined over one connection per endpoint, reads are hedged to
// a replica when the primary straggles past a latency quantile,
// transient network errors are retried with the same exponential
// backoff policy the rest of the system uses (disk.RetryPolicy), and
// when the primary stops answering, reads fail over to the freshest
// replica whose applied LSN clears the caller's durability floor.
//
// Replication is WAL shipping: a replica seeds itself from a base
// backup of the primary's pages, then follows the primary's log via
// the Follow stream, applying each record with the same redo-if-newer
// rule crash recovery uses (wal.ApplyRecord) — so replica catch-up,
// reconnection, and crash recovery are one code path.
package pagesvc

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"revelation/internal/disk"
)

// Operation codes (request frames).
const (
	opRead    = byte(1) // body: [4B page]            -> OK body: page image
	opWrite   = byte(2) // body: [4B page][image]     -> OK body: empty
	opAlloc   = byte(3) // body: [4B n]               -> OK body: [4B first]
	opInfo    = byte(4) // body: empty                -> OK body: [8B pages][4B pageSize][8B appliedLSN][8B epoch]
	opPing    = byte(5) // body: empty                -> OK body: empty
	opFollow  = byte(6) // body: [8B fromLSN]         -> stream of stream frames
	opPromote = byte(7) // body: [8B epoch][8B minLSN][1B mode] -> OK body: [8B epoch]
)

// Promote modes (the opPromote body's last byte).
const (
	promoteFence    = byte(0) // adopt the epoch and refuse writes (demote/fence)
	promoteWritable = byte(1) // adopt the epoch and accept writes (promote)
)

// Response status codes.
const (
	stOK     = byte(0) // request succeeded; body is op-specific
	stErr    = byte(1) // request failed; body: [1B class][message]
	stStream = byte(2) // one Follow record: [8B lsn][4B page][4B len][img]
)

// Error classes carried in stErr bodies, mapping the server-side error
// back onto the client-side disk error taxonomy so retry decisions
// survive the network.
const (
	classTransient = byte(0) // wraps disk.ErrTransient on arrival
	classPermanent = byte(1) // wraps disk.ErrPermanent
	classOther     = byte(2) // wrapped verbatim, not retryable
	classFenced    = byte(3) // wraps ErrFenced + disk.ErrPermanent: stale epoch
)

// ErrFenced reports a request rejected by epoch fencing: the sender's
// view of the shard is stale (an old primary's late write after a
// promotion, or a request stamped with a superseded epoch). It is
// permanent by construction — retrying the same request cannot help,
// the caller must learn the new fleet state first.
var ErrFenced = errors.New("pagesvc: fenced")

// reqHdrSize is the fixed request header: [1B op][1B dev][8B reqID].
const reqHdrSize = 10

// opQIDFlag marks an extended request header (protocol v2): when the
// high bit of the op byte is set, 16 more bytes follow the base header
// — a query id attributing the request to a query span on the server,
// and the sender's fencing epoch (0 = unfenced, pre-fleet traffic).
// Requests without the flag are the v1 wire format byte for byte, so
// old clients keep working against new servers and vice versa — a v1
// server would reject flagged ops as unknown, which the v2 client
// avoids by flagging only when a query id or epoch is actually present.
const opQIDFlag = byte(0x80)

// reqHdrSizeQ is the extended header:
// [1B op|flag][1B dev][8B reqID][8B qid][8B epoch].
const reqHdrSizeQ = reqHdrSize + 16

// respHdrSize is the fixed response header: [1B status][8B reqID].
const respHdrSize = 9

// maxFrame bounds a frame payload; large enough for a page image plus
// headers on any sane page size, small enough to refuse garbage.
const maxFrame = 1 << 22

// ErrBadFrame reports a malformed frame on the wire.
var ErrBadFrame = errors.New("pagesvc: malformed frame")

// request is a decoded request frame. qid is the originating query id
// and epoch the sender's fencing epoch (both 0 = unattributed,
// unfenced, encoded as a v1 frame).
type request struct {
	op    byte
	dev   byte
	reqID uint64
	qid   uint64
	epoch uint64
	body  []byte
}

// response is a decoded response frame.
type response struct {
	status byte
	reqID  uint64
	body   []byte
}

// writeFrame sends one length-prefixed payload. Callers serialize.
func writeFrame(w io.Writer, payload []byte) error {
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// readFrame reads one length-prefixed payload.
func readFrame(r io.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n > maxFrame {
		return nil, fmt.Errorf("%w: %d-byte frame", ErrBadFrame, n)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, err
	}
	return payload, nil
}

// encodeRequest frames a request for the wire: the v1 10-byte header,
// extended with the query id and epoch (and flagged op byte) only when
// one is set, so unattributed unfenced traffic stays wire-identical to
// v1.
func encodeRequest(req request) []byte {
	hdr := reqHdrSize
	if req.qid != 0 || req.epoch != 0 {
		hdr = reqHdrSizeQ
	}
	p := make([]byte, hdr+len(req.body))
	p[0] = req.op
	p[1] = req.dev
	binary.LittleEndian.PutUint64(p[2:], req.reqID)
	if hdr == reqHdrSizeQ {
		p[0] |= opQIDFlag
		binary.LittleEndian.PutUint64(p[reqHdrSize:], req.qid)
		binary.LittleEndian.PutUint64(p[reqHdrSize+8:], req.epoch)
	}
	copy(p[hdr:], req.body)
	return p
}

// decodeRequest parses a request frame payload, accepting both header
// versions.
func decodeRequest(p []byte) (request, error) {
	if len(p) < reqHdrSize {
		return request{}, fmt.Errorf("%w: %d-byte request", ErrBadFrame, len(p))
	}
	req := request{
		op:    p[0],
		dev:   p[1],
		reqID: binary.LittleEndian.Uint64(p[2:]),
	}
	if req.op&opQIDFlag != 0 {
		if len(p) < reqHdrSizeQ {
			return request{}, fmt.Errorf("%w: %d-byte extended request", ErrBadFrame, len(p))
		}
		req.op &^= opQIDFlag
		req.qid = binary.LittleEndian.Uint64(p[reqHdrSize:])
		req.epoch = binary.LittleEndian.Uint64(p[reqHdrSize+8:])
		req.body = p[reqHdrSizeQ:]
	} else {
		req.body = p[reqHdrSize:]
	}
	return req, nil
}

// encodeResponse frames a response for the wire.
func encodeResponse(resp response) []byte {
	p := make([]byte, respHdrSize+len(resp.body))
	p[0] = resp.status
	binary.LittleEndian.PutUint64(p[1:], resp.reqID)
	copy(p[respHdrSize:], resp.body)
	return p
}

// decodeResponse parses a response frame payload.
func decodeResponse(p []byte) (response, error) {
	if len(p) < respHdrSize {
		return response{}, fmt.Errorf("%w: %d-byte response", ErrBadFrame, len(p))
	}
	return response{
		status: p[0],
		reqID:  binary.LittleEndian.Uint64(p[1:]),
		body:   p[respHdrSize:],
	}, nil
}

// encodeErr builds an stErr body from a server-side error, classifying
// it so the client can rebuild a retry-equivalent error.
func encodeErr(err error) []byte {
	class := classOther
	switch {
	case errors.Is(err, ErrFenced):
		class = classFenced
	case errors.Is(err, disk.ErrTransient):
		class = classTransient
	case errors.Is(err, disk.ErrPermanent):
		class = classPermanent
	}
	msg := err.Error()
	body := make([]byte, 1+len(msg))
	body[0] = class
	copy(body[1:], msg)
	return body
}

// decodeErr rebuilds a classified error from an stErr body.
func decodeErr(body []byte) error {
	if len(body) < 1 {
		return fmt.Errorf("%w: empty error body", ErrBadFrame)
	}
	msg := string(body[1:])
	switch body[0] {
	case classTransient:
		return fmt.Errorf("pagesvc: %s: %w", msg, disk.ErrTransient)
	case classPermanent:
		return fmt.Errorf("pagesvc: %s: %w", msg, disk.ErrPermanent)
	case classFenced:
		// Fenced is permanent: the request is from a superseded view of
		// the fleet and retrying it verbatim can never succeed.
		return fmt.Errorf("pagesvc: %s: %w: %w", msg, ErrFenced, disk.ErrPermanent)
	default:
		return fmt.Errorf("pagesvc: remote error: %s", msg)
	}
}

// encodePromote builds an opPromote body: the epoch to adopt, the
// applied-LSN floor the server must have reached, and the mode.
func encodePromote(epoch, minLSN uint64, writable bool) []byte {
	body := make([]byte, 17)
	binary.LittleEndian.PutUint64(body[0:], epoch)
	binary.LittleEndian.PutUint64(body[8:], minLSN)
	if writable {
		body[16] = promoteWritable
	}
	return body
}

// decodePromote parses an opPromote body.
func decodePromote(body []byte) (epoch, minLSN uint64, writable bool, err error) {
	if len(body) != 17 {
		return 0, 0, false, fmt.Errorf("%w: %d-byte promote body", ErrBadFrame, len(body))
	}
	if body[16] > promoteWritable {
		return 0, 0, false, fmt.Errorf("%w: promote mode %d", ErrBadFrame, body[16])
	}
	return binary.LittleEndian.Uint64(body[0:]),
		binary.LittleEndian.Uint64(body[8:]),
		body[16] == promoteWritable, nil
}

// netErr wraps a connection-level failure (dial, write, read, timeout)
// as transient: the page is fine, the path to it is not, so the access
// is worth retrying — possibly against a different endpoint.
func netErr(op string, err error) error {
	return fmt.Errorf("pagesvc: %s: %v: %w", op, err, disk.ErrTransient)
}

// encodeStreamRecord frames one Follow record.
func encodeStreamRecord(reqID, lsn uint64, page disk.PageID, img []byte) []byte {
	body := make([]byte, 16+len(img))
	binary.LittleEndian.PutUint64(body[0:], lsn)
	binary.LittleEndian.PutUint32(body[8:], uint32(page))
	binary.LittleEndian.PutUint32(body[12:], uint32(len(img)))
	copy(body[16:], img)
	return encodeResponse(response{status: stStream, reqID: reqID, body: body})
}

// decodeStreamRecord parses one Follow record body.
func decodeStreamRecord(body []byte) (lsn uint64, page disk.PageID, img []byte, err error) {
	if len(body) < 16 {
		return 0, 0, nil, fmt.Errorf("%w: %d-byte stream record", ErrBadFrame, len(body))
	}
	lsn = binary.LittleEndian.Uint64(body[0:])
	page = disk.PageID(binary.LittleEndian.Uint32(body[8:]))
	n := binary.LittleEndian.Uint32(body[12:])
	if int(n) != len(body)-16 {
		return 0, 0, nil, fmt.Errorf("%w: stream record length %d != %d", ErrBadFrame, n, len(body)-16)
	}
	return lsn, page, body[16:], nil
}
