package pagesvc

import (
	"bytes"
	"net"
	"testing"
	"time"

	"revelation/internal/disk"
)

// dialRaw opens a bare TCP connection to the page service, for tests
// that speak the wire protocol by hand.
func dialRaw(t *testing.T, addr string) net.Conn {
	t.Helper()
	conn, err := net.DialTimeout("tcp", addr, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	return conn
}

// FuzzProtoDecode throws arbitrary bytes at every wire-decode path —
// the v1/v2 request header (qid high-bit flag plus the epoch field),
// the response header, the error body, the Follow stream record, and
// the promote body. Whatever the input, decoding must return a
// classified error or a well-formed value, never panic or index out of
// bounds; and any frame that decodes cleanly must survive a
// re-encode/re-decode round trip unchanged (headers are canonical).
func FuzzProtoDecode(f *testing.F) {
	// A valid v1 read request.
	f.Add(encodeRequest(request{op: opRead, dev: DataDev, reqID: 7, body: []byte{1, 0, 0, 0}}))
	// A valid v2 request: qid and epoch ride the extended header.
	f.Add(encodeRequest(request{op: opWrite, dev: DataDev, reqID: 9, qid: 42, epoch: 3, body: []byte{0}}))
	// Flag set but the frame too short for the extended header.
	f.Add([]byte{opRead | opQIDFlag, 0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10})
	// A valid promote body inside a v2 frame.
	f.Add(encodeRequest(request{op: opPromote, reqID: 1, epoch: 5, body: encodePromote(5, 100, true)}))
	// Response frames: ok, error, stream.
	f.Add(encodeResponse(response{status: stOK, reqID: 3, body: []byte("payload")}))
	f.Add(encodeResponse(response{status: stErr, reqID: 4, body: encodeErr(ErrFenced)}))
	f.Add(encodeStreamRecord(5, 9, 2, bytes.Repeat([]byte{0xAB}, 32)))
	f.Add([]byte{})
	f.Add([]byte{0xFF})

	f.Fuzz(func(t *testing.T, p []byte) {
		if req, err := decodeRequest(p); err == nil {
			// Round trip: decoded fields re-encode to a frame that
			// decodes identically. (The raw bytes may differ — a v2
			// frame with qid 0 and epoch 0 re-encodes as v1.)
			again, err := decodeRequest(encodeRequest(req))
			if err != nil {
				t.Fatalf("re-decode of re-encoded request: %v", err)
			}
			if again.op != req.op || again.dev != req.dev || again.reqID != req.reqID ||
				again.qid != req.qid || again.epoch != req.epoch || !bytes.Equal(again.body, req.body) {
				t.Fatalf("request round trip diverged: %+v vs %+v", req, again)
			}
			if req.op == opPromote {
				if epoch, minLSN, writable, err := decodePromote(req.body); err == nil {
					if !bytes.Equal(encodePromote(epoch, minLSN, writable), req.body) {
						t.Fatalf("promote body round trip diverged")
					}
				}
			}
		}
		if resp, err := decodeResponse(p); err == nil {
			again, err := decodeResponse(encodeResponse(resp))
			if err != nil {
				t.Fatalf("re-decode of re-encoded response: %v", err)
			}
			if again.status != resp.status || again.reqID != resp.reqID || !bytes.Equal(again.body, resp.body) {
				t.Fatalf("response round trip diverged")
			}
			if resp.status == stErr {
				_ = decodeErr(resp.body) // must classify, never panic
			}
			if resp.status == stStream {
				if lsn, page, img, err := decodeStreamRecord(resp.body); err == nil {
					redone := encodeStreamRecord(resp.reqID, lsn, page, img)
					if !bytes.Equal(redone, encodeResponse(resp)) {
						t.Fatalf("stream record round trip diverged")
					}
				}
			}
		}
	})
}

// TestMalformedFrameClosesConn: a frame the server cannot decode must
// answer with a classified error and then close the connection — the
// framing state is unrecoverable — and must never take the server
// down. The classified error is what distinguishes "you sent garbage"
// from a silent hang at the client.
func TestMalformedFrameClosesConn(t *testing.T) {
	sim := disk.New(4)
	srv, addr := startServer(t, []disk.Device{sim}, ServerConfig{})

	// An extended-header op with a truncated header: decodeRequest fails.
	bad := []byte{opRead | opQIDFlag, 0, 1, 2, 3, 4, 5, 6, 7, 8}
	conn := dialRaw(t, addr)
	defer conn.Close()
	if err := writeFrame(conn, bad); err != nil {
		t.Fatal(err)
	}
	payload, err := readFrame(conn)
	if err != nil {
		t.Fatalf("want a classified error frame before close, got %v", err)
	}
	resp, err := decodeResponse(payload)
	if err != nil || resp.status != stErr {
		t.Fatalf("bad-frame answer = %+v, %v; want stErr", resp, err)
	}
	if derr := decodeErr(resp.body); derr == nil {
		t.Fatal("bad-frame error body did not classify")
	}
	// The connection is now closed server-side: the next read ends.
	if _, err := readFrame(conn); err == nil {
		t.Fatal("connection survived a malformed frame")
	}

	// The server itself is fine: a fresh client works.
	c := dialT(t, ClientConfig{Primary: addr})
	buf := make([]byte, c.PageSize())
	if err := c.ReadPage(0, buf); err != nil {
		t.Fatalf("server unhealthy after malformed frame: %v", err)
	}
	_ = srv
}
