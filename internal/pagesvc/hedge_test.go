package pagesvc

import (
	"bytes"
	"testing"
	"time"

	"revelation/internal/disk"
	"revelation/internal/trace"
)

// hedgeWorld is a primary whose device stalls on seeded pages plus a
// clean replica holding the same data.
func hedgeWorld(t *testing.T, pages int, stall time.Duration) (*disk.Faulty, string, string) {
	t.Helper()
	prim := disk.New(pages)
	repl := disk.New(pages)
	ps := prim.PageSize()
	img := make([]byte, ps)
	for i := 0; i < pages; i++ {
		for j := range img {
			img[j] = byte(i * 3)
		}
		if err := prim.WritePage(disk.PageID(i), img); err != nil {
			t.Fatal(err)
		}
		if err := repl.WritePage(disk.PageID(i), img); err != nil {
			t.Fatal(err)
		}
	}
	fd := disk.NewFaulty(prim, disk.FaultConfig{Seed: 42, StallRate: 0.2, Stall: stall})
	_, primAddr := startServer(t, []disk.Device{fd}, ServerConfig{})
	_, replAddr := startServer(t, []disk.Device{repl}, ServerConfig{})
	return fd, primAddr, replAddr
}

// TestHedgedReadBeatsStall: a read of a stalled page is hedged to the
// replica after the configured delay and completes far sooner than the
// stall, with the hedge counted and traced.
func TestHedgedReadBeatsStall(t *testing.T) {
	const stall = 300 * time.Millisecond
	fd, primAddr, replAddr := hedgeWorld(t, 32, stall)

	col := trace.NewCollector()
	c := dialT(t, ClientConfig{
		Primary:    primAddr,
		Replicas:   []string{replAddr},
		HedgeAfter: 5 * time.Millisecond,
		Tracer:     trace.New(col),
	})

	// The stall set is seeded and deterministic: pick one stalled page
	// and one clean page via the predicate, no timing needed.
	stalled, clean := disk.InvalidPage, disk.InvalidPage
	for p := disk.PageID(0); int(p) < 32; p++ {
		if fd.Stalled(p) {
			stalled = p
		} else {
			clean = p
		}
	}
	if stalled == disk.InvalidPage || clean == disk.InvalidPage {
		t.Fatal("degenerate stall set")
	}

	buf := make([]byte, c.PageSize())
	want := make([]byte, c.PageSize())
	for j := range want {
		want[j] = byte(int(stalled) * 3)
	}
	start := time.Now()
	if err := c.ReadPage(stalled, buf); err != nil {
		t.Fatalf("hedged read: %v", err)
	}
	if d := time.Since(start); d >= stall {
		t.Errorf("hedged read took %v, stall is %v — hedge never fired", d, stall)
	}
	if !bytes.Equal(buf, want) {
		t.Error("hedged read returned wrong image")
	}
	if got := c.hedges.Value(); got != 1 {
		t.Errorf("hedges = %d, want 1", got)
	}
	if got := c.hedgeWins.Value(); got != 1 {
		t.Errorf("hedge wins = %d, want 1", got)
	}

	// A clean read must not hedge.
	if err := c.ReadPage(clean, buf); err != nil {
		t.Fatal(err)
	}
	if got := c.hedges.Value(); got != 1 {
		t.Errorf("clean read hedged: hedges = %d", got)
	}

	// The trace saw the hedge: sends to both endpoints, one hedge event
	// naming the replica.
	rep := trace.ReplayEvents(col.Events())
	if rep.Hedges != 1 {
		t.Errorf("replayed hedges = %d, want 1", rep.Hedges)
	}
	if rep.NetSends < 3 { // info + 2 reads + hedge, minus any coalescing
		t.Errorf("replayed sends = %d, want >= 3", rep.NetSends)
	}
}

// TestAdaptiveHedgeDelay: with no fixed HedgeAfter the client learns
// the latency distribution; until the warm-up sample exists it never
// hedges.
func TestAdaptiveHedgeDelay(t *testing.T) {
	_, primAddr, replAddr := hedgeWorld(t, 32, 50*time.Millisecond)
	c := dialT(t, ClientConfig{
		Primary:  primAddr,
		Replicas: []string{replAddr},
	})
	if d := c.hedgeDelay(); d != 0 {
		t.Errorf("hedge delay before warm-up = %v, want 0", d)
	}
	buf := make([]byte, c.PageSize())
	for i := 0; i < hedgeWarmup; i++ {
		// Page 0..15; some may stall — that is fine, they feed the
		// distribution exactly like production stragglers.
		if err := c.ReadPage(disk.PageID(i%16), buf); err != nil {
			t.Fatal(err)
		}
	}
	d := c.hedgeDelay()
	if d <= 0 {
		t.Fatalf("hedge delay after warm-up = %v, want > 0", d)
	}
	// The delay tracks the observed quantile: it must be at least the
	// floor and far below the client timeout.
	if d < 100*time.Microsecond || d > time.Second {
		t.Errorf("adaptive hedge delay = %v, outside sane range", d)
	}
}
