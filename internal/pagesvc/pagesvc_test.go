package pagesvc

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"revelation/internal/disk"
	"revelation/internal/leakcheck"
	"revelation/internal/metrics"
	"revelation/internal/trace"
)

// startServer serves devs on a loopback port and tears everything down
// with the test.
func startServer(t *testing.T, devs []disk.Device, cfg ServerConfig) (*Server, string) {
	t.Helper()
	s := NewServer(devs, cfg)
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s, addr
}

func dialT(t *testing.T, cfg ClientConfig) *Client {
	t.Helper()
	c, err := Dial(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func TestClientRoundtrip(t *testing.T) {
	before := leakcheck.Snapshot()
	sim := disk.New(8)
	ps := sim.PageSize()
	for i := 0; i < 8; i++ {
		img := make([]byte, ps)
		for j := range img {
			img[j] = byte(i)
		}
		if err := sim.WritePage(disk.PageID(i), img); err != nil {
			t.Fatal(err)
		}
	}
	srv, addr := startServer(t, []disk.Device{sim}, ServerConfig{})
	c := dialT(t, ClientConfig{Primary: addr})

	if c.NumPages() != 8 || c.PageSize() != ps {
		t.Fatalf("geometry = %d pages x %d bytes, want 8 x %d", c.NumPages(), c.PageSize(), ps)
	}
	buf := make([]byte, ps)
	for i := 7; i >= 0; i-- {
		if err := c.ReadPage(disk.PageID(i), buf); err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
		if buf[0] != byte(i) || buf[ps-1] != byte(i) {
			t.Fatalf("page %d content = %d", i, buf[0])
		}
	}
	// Seek accounting is local: the head jumped to 7 (distance 7) then
	// walked down one page at a time (7 more).
	st := c.Stats()
	if st.Reads != 8 || st.SeekReads != 14 {
		t.Errorf("stats = %+v, want 8 reads / 14 seek", st)
	}
	if c.Head() != 0 {
		t.Errorf("head = %d, want 0", c.Head())
	}

	// Write through and read back via the server's device directly.
	for j := range buf {
		buf[j] = 0xCC
	}
	if err := c.WritePage(3, buf); err != nil {
		t.Fatal(err)
	}
	direct := make([]byte, ps)
	if err := sim.ReadPage(3, direct); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(direct, buf) {
		t.Error("write did not reach the server device")
	}

	// Allocate grows both sides.
	first, err := c.Allocate(3)
	if err != nil {
		t.Fatal(err)
	}
	if first != 8 || c.NumPages() != 11 || sim.NumPages() != 11 {
		t.Errorf("alloc: first=%d client=%d server=%d", first, c.NumPages(), sim.NumPages())
	}

	// Out-of-range and bad-length refused locally.
	if err := c.ReadPage(99, buf); !errors.Is(err, disk.ErrOutOfRange) {
		t.Errorf("read 99 = %v", err)
	}
	if err := c.ReadPage(0, buf[:10]); !errors.Is(err, disk.ErrBadLength) {
		t.Errorf("short read = %v", err)
	}
	c.Close()
	srv.Close()
	leakcheck.CheckWithin(t, before, 2*time.Second)
}

// TestClientDiskTracer pins the client's disk.TracerSetter contract: a
// traced client emits one disk-layer event per logical access with the
// client-side head accounting, so a trace replay reconstructs exactly
// the Stats the client reports — the property the suite's three-way
// verification over the pagesvc backend rests on.
func TestClientDiskTracer(t *testing.T) {
	sim := disk.New(16)
	ps := sim.PageSize()
	_, addr := startServer(t, []disk.Device{sim}, ServerConfig{})
	c := dialT(t, ClientConfig{Primary: addr})

	col := trace.NewCollector()
	if !disk.AttachTracer(c, trace.New(col)) {
		t.Fatal("Client did not accept a disk tracer")
	}
	buf := make([]byte, ps)
	for _, p := range []disk.PageID{9, 2, 2, 14} {
		if err := c.ReadPage(p, buf); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.WritePage(5, buf); err != nil {
		t.Fatal(err)
	}
	disk.AttachTracer(c, nil)
	if err := c.ReadPage(0, buf); err != nil { // untraced
		t.Fatal(err)
	}

	r := trace.ReplayEvents(col.Events())
	if r.Reads != 4 || r.Writes != 1 {
		t.Errorf("replay reads/writes = %d/%d, want 4/1", r.Reads, r.Writes)
	}
	st := c.Stats()
	// The detached read moved the head 5→0 without an event.
	if want := st.SeekReads - 5; r.SeekReads != want {
		t.Errorf("replay SeekReads = %d, want %d", r.SeekReads, want)
	}
	if want := st.SeekTotal - 5; r.SeekTotal != want {
		t.Errorf("replay SeekTotal = %d, want %d", r.SeekTotal, want)
	}
}

// TestPipelining issues many concurrent reads over the one shared
// connection; response demultiplexing must route every reply to its
// caller.
func TestPipelining(t *testing.T) {
	sim := disk.New(64)
	ps := sim.PageSize()
	for i := 0; i < 64; i++ {
		img := make([]byte, ps)
		img[0], img[1] = byte(i), byte(i^0x55)
		if err := sim.WritePage(disk.PageID(i), img); err != nil {
			t.Fatal(err)
		}
	}
	_, addr := startServer(t, []disk.Device{sim}, ServerConfig{})
	c := dialT(t, ClientConfig{Primary: addr})

	var wg sync.WaitGroup
	errs := make(chan error, 256)
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			buf := make([]byte, ps)
			for i := 0; i < 16; i++ {
				p := disk.PageID((g*16 + i) % 64)
				if err := c.ReadPage(p, buf); err != nil {
					errs <- fmt.Errorf("read %d: %v", p, err)
					return
				}
				if buf[0] != byte(p) || buf[1] != byte(p^0x55) {
					errs <- fmt.Errorf("page %d returned page %d's image", p, buf[0])
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if got := c.Stats().Reads; got != 256 {
		t.Errorf("reads = %d, want 256", got)
	}
}

// TestErrorClassSurvivesWire: remote transient and permanent faults
// arrive as the matching disk sentinel, so retry decisions are the
// same as against a local device.
func TestErrorClassSurvivesWire(t *testing.T) {
	sim := disk.New(8)
	fd := disk.NewFaulty(sim, disk.FaultConfig{})
	_, addr := startServer(t, []disk.Device{fd}, ServerConfig{})
	c := dialT(t, ClientConfig{Primary: addr})
	buf := make([]byte, sim.PageSize())

	fd.SetConfig(disk.FaultConfig{Seed: 3, TransientRate: 1, TransientFailures: 1 << 30})
	err := c.ReadPage(0, buf)
	if !errors.Is(err, disk.ErrTransient) || !disk.Retryable(err) {
		t.Errorf("transient fault over the wire = %v", err)
	}

	fd.SetConfig(disk.FaultConfig{Seed: 3, PermanentRate: 1})
	err = c.ReadPage(0, buf)
	if !errors.Is(err, disk.ErrPermanent) || disk.Retryable(err) {
		t.Errorf("permanent fault over the wire = %v", err)
	}

	// With a retry budget, a fault that clears is absorbed below the
	// caller: two failures then success.
	fd.SetConfig(disk.FaultConfig{Seed: 3, TransientRate: 1, TransientFailures: 2})
	c2 := dialT(t, ClientConfig{Primary: addr, Retry: disk.RetryPolicy{MaxAttempts: 4}})
	if err := c2.ReadPage(0, buf); err != nil {
		t.Errorf("retryable fault not absorbed: %v", err)
	}
}

// TestReconnectAfterServerRestart: a client survives its server going
// away and coming back on the same address, counting the reconnect.
func TestReconnectAfterServerRestart(t *testing.T) {
	sim := disk.New(4)
	buf := make([]byte, sim.PageSize())
	reg := metrics.NewRegistry()
	s1 := NewServer([]disk.Device{sim}, ServerConfig{})
	addr, err := s1.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	c := dialT(t, ClientConfig{
		Primary:  addr,
		Retry:    disk.RetryPolicy{MaxAttempts: 20, BaseBackoff: time.Millisecond, MaxBackoff: 20 * time.Millisecond},
		Registry: reg,
		Timeout:  time.Second,
	})
	if err := c.ReadPage(0, buf); err != nil {
		t.Fatal(err)
	}
	s1.Close()

	// Restart on the same address while the client retries.
	done := make(chan error, 1)
	go func() { done <- c.ReadPage(1, buf) }()
	time.Sleep(10 * time.Millisecond)
	s2 := NewServer([]disk.Device{sim}, ServerConfig{})
	if _, err := s2.Listen(addr); err != nil {
		t.Fatalf("rebind %s: %v", addr, err)
	}
	defer s2.Close()
	if err := <-done; err != nil {
		t.Fatalf("read across restart: %v", err)
	}
	if got := c.reconnects.Value(); got < 1 {
		t.Errorf("reconnects = %d, want >= 1", got)
	}
}
